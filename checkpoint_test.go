package streamgnn

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e1 := endToEnd(t, cfg, 8)

	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh engine over an identical graph; load the checkpoint.
	e2, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		e2.AddNode(0, []float64{float64(i % 2), 0, 1})
	}
	for i := 0; i < n; i++ {
		e2.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	if err := e2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if e2.CurrentStep() != e1.CurrentStep() {
		t.Fatalf("step not restored: %d vs %d", e2.CurrentStep(), e1.CurrentStep())
	}
	// Parameters restored bit-for-bit.
	p1, p2 := e1.allParams(), e2.allParams()
	for i := range p1 {
		if !p1[i].Value.Equal(p2[i].Value) {
			t.Fatalf("param %d differs after restore", i)
		}
	}
	// Recurrent state restored: the next inference on the same graph must
	// produce identical embeddings... after one step on identical inputs.
	lab := func(anchor, step int) (float64, bool) { return 1, true }
	if err := e2.AddQuery(Query{Name: "q", Anchors: []int{0}, Delta: 1, Labeler: lab}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(); err != nil {
		t.Fatal(err)
	}
	if len(e2.Embedding(0)) != 8 {
		t.Fatal("restored engine cannot step")
	}
}

// detStream is a precomputed deterministic mutation schedule: the same
// stream can drive an uninterrupted run and, separately, rebuild the exact
// graph of an interrupted run before resuming — which is what checkpoint
// resume requires (the snapshot is not part of the checkpoint).
type detStream struct {
	n     int
	truth map[[2]int]float64 // (anchor, step) -> revealed value
	acts  []float64          // per-step anchor activity feature
	edges [][2]int           // per-step random extra edge
}

func newDetStream(seed int64, n, steps int) *detStream {
	r := rand.New(rand.NewSource(seed))
	d := &detStream{n: n, truth: make(map[[2]int]float64)}
	for s := 0; s < steps; s++ {
		act := 0.5 + 0.4*float64(s%2)
		d.acts = append(d.acts, act)
		for _, a := range []int{0, 5} {
			d.truth[[2]int{a, s}] = act + 0.1*r.Float64()
		}
		d.edges = append(d.edges, [2]int{r.Intn(n), r.Intn(n)})
	}
	return d
}

// init populates a fresh engine with the base graph and the stream's query.
func (d *detStream) init(t *testing.T, e *Engine) {
	t.Helper()
	for i := 0; i < d.n; i++ {
		e.AddNode(0, []float64{float64(i % 2), 0, 1})
		e.SetNodeLabel(i, float64(i%2))
	}
	for i := 0; i < d.n; i++ {
		e.AddUndirectedEdge(i, (i+1)%d.n, 0)
	}
	err := e.AddQuery(Query{
		Name: "activity", Anchors: []int{0, 5}, Delta: 1, Threshold: 0.5,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := d.truth[[2]int{anchor, step}]
			return v, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutate applies step s's mutations (call immediately before Step s).
func (d *detStream) mutate(e *Engine, s int) {
	for _, a := range []int{0, 5} {
		e.SetFeature(a, []float64{d.acts[s], 1, 1})
	}
	e.AddEdge(d.edges[s][0], d.edges[s][1], 0)
}

// resumeEquality runs the stream uninterrupted on one engine and
// save/rebuild/load/resume on another, then asserts that the resumed run's
// stats, chips and metrics are indistinguishable from the uninterrupted
// one. Partition-cache counters are necessarily excluded: the resumed
// engine starts with a cold cache, so its hit/miss split differs even
// though the trained content is identical.
func resumeEquality(t *testing.T, cfg Config) {
	t.Helper()
	const n, saveAt, total = 12, 6, 10
	d := newDetStream(99, n, total)

	e1, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e1)
	for s := 0; s < saveAt; s++ {
		d.mutate(e1, s)
		if err := e1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: fresh engine, rebuild the graph by replaying the
	// stream's mutations (no stepping), then load and resume. The load lands
	// before the engine's first Step, exercising the pending-restore path.
	e2, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e2)
	for s := 0; s < saveAt; s++ {
		d.mutate(e2, s)
	}
	if err := e2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if e2.CurrentStep() != saveAt {
		t.Fatalf("resumed at step %d, want %d", e2.CurrentStep(), saveAt)
	}
	// Restored observability counters are visible before the first Step.
	if s1, s2 := e1.Stats(), e2.Stats(); s2.TrainedPartitions != s1.TrainedPartitions ||
		s2.SelfNodeTargets != s1.SelfNodeTargets {
		t.Fatalf("pre-step restored stats differ: %+v vs %+v", s1, s2)
	}

	for s := saveAt; s < total; s++ {
		d.mutate(e1, s)
		if err := e1.Step(); err != nil {
			t.Fatal(err)
		}
		d.mutate(e2, s)
		if err := e2.Step(); err != nil {
			t.Fatal(err)
		}
	}

	s1, s2 := e1.Stats(), e2.Stats()
	s1.CacheHits, s1.CacheMisses, s1.CacheInvalidations, s1.CacheHitRate = 0, 0, 0, 0
	s2.CacheHits, s2.CacheMisses, s2.CacheInvalidations, s2.CacheHitRate = 0, 0, 0, 0
	if fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Fatalf("stats diverged after resume:\n  uninterrupted: %+v\n  resumed:       %+v", s1, s2)
	}
	if e1.sched.Adaptive != nil {
		c1 := e1.sched.Adaptive.Chips.Counts()
		c2 := e2.sched.Adaptive.Chips.Counts()
		for v := range c1 {
			if c1[v] != c2[v] {
				t.Fatalf("chip counts differ at node %d: %d vs %d", v, c1[v], c2[v])
			}
		}
	}
	// Compare via formatting: AUC is NaN when all outcomes share one class,
	// and NaN != NaN would fail a struct comparison.
	m1, m2 := e1.Metrics(), e2.Metrics()
	if fmt.Sprintf("%+v", m1) != fmt.Sprintf("%+v", m2) {
		t.Fatalf("metrics diverged after resume:\n  uninterrupted: %+v\n  resumed:       %+v", m1, m2)
	}
	// The final inference embeddings must be bit-identical too — in
	// incremental mode this proves the restored cache spliced exactly like
	// the uninterrupted run's.
	if !e1.lastEmb.Equal(e2.lastEmb) {
		t.Fatal("final embeddings diverged after resume")
	}
}

func TestCheckpointResumeEqualityWeighted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	resumeEquality(t, cfg)
}

func TestCheckpointResumeEqualityKDE(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKDE
	cfg.Hidden = 6
	resumeEquality(t, cfg)
}

// Resume equality with the incremental forward path: the checkpoint carries
// the embedding cache (v3), and the resumed run must splice into it exactly
// as the uninterrupted run did. Interval 3 mixes trained steps (cache
// invalidated, full forward) with incremental ones across the save point;
// DirtyFullThreshold 1 keeps every non-trained step incremental.
func TestCheckpointResumeEqualityIncremental(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 3
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1
	resumeEquality(t, cfg)
}

// Resume equality under the conflict-group scheduler: the scheduler keeps no
// persistent state beyond its observability counters (v7) — conflict scratch
// and gradient sinks are rebuilt every step — so a resumed scheduled run must
// match the uninterrupted one bit for bit, counters included (Stats are
// compared verbatim above). Workers 4 keeps the group pool genuinely
// concurrent across the save point.
func TestCheckpointResumeEqualityDependencySchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.DependencySchedule = true
	cfg.Workers = 4
	resumeEquality(t, cfg)
}

// WinGNN resume equality: the winOptimizer's gradient-window history and
// random stream ride along in the checkpoint's optimizer state (v4), so a
// resumed WinGNN run must match the uninterrupted one bit for bit — the
// randomized suffix draws continue the exact same stream and the window
// contents are identical. This used to be a documented gap; it is now a
// hard-equality requirement.
func TestCheckpointResumeEqualityWinGNN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	resumeEquality(t, cfg)
}

// The same requirement holds on the incremental forward path (WinGNN is
// memoryless, so incremental inference is exact for it).
func TestCheckpointResumeEqualityWinGNNIncremental(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 3
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1
	resumeEquality(t, cfg)
}

func TestPeekCheckpoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e := endToEnd(t, cfg, 5)
	var buf bytes.Buffer
	if err := e.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := PeekCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := CheckpointInfo{Version: checkpointVersion, Model: cfg.Model,
		Strategy: cfg.Strategy, Hidden: 8, Step: 5, Shards: 1}
	if info != want {
		t.Fatalf("peek = %+v, want %+v", info, want)
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e1 := endToEnd(t, cfg, 4)
	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := DefaultConfig()
	other.Model = "DCRNN"
	other.Hidden = 8
	e2, _ := NewEngine(3, other)
	if err := e2.LoadCheckpoint(&buf); err == nil {
		t.Fatal("model mismatch accepted")
	}
	e3, _ := NewEngine(3, cfg)
	if err := e3.LoadCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
