package streamgnn

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e1 := endToEnd(t, cfg, 8)

	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh engine over an identical graph; load the checkpoint.
	e2, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		e2.AddNode(0, []float64{float64(i % 2), 0, 1})
	}
	for i := 0; i < n; i++ {
		e2.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	if err := e2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if e2.CurrentStep() != e1.CurrentStep() {
		t.Fatalf("step not restored: %d vs %d", e2.CurrentStep(), e1.CurrentStep())
	}
	// Parameters restored bit-for-bit.
	p1, p2 := e1.allParams(), e2.allParams()
	for i := range p1 {
		if !p1[i].Value.Equal(p2[i].Value) {
			t.Fatalf("param %d differs after restore", i)
		}
	}
	// Recurrent state restored: the next inference on the same graph must
	// produce identical embeddings... after one step on identical inputs.
	lab := func(anchor, step int) (float64, bool) { return 1, true }
	if err := e2.AddQuery(Query{Name: "q", Anchors: []int{0}, Delta: 1, Labeler: lab}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(); err != nil {
		t.Fatal(err)
	}
	if len(e2.Embedding(0)) != 8 {
		t.Fatal("restored engine cannot step")
	}
}

func TestCheckpointChipsSurvive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	e1 := endToEnd(t, cfg, 6)
	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEngine(3, cfg)
	for i := 0; i < 12; i++ {
		e2.AddNode(0, []float64{1, 0, 1})
	}
	for i := 0; i < 12; i++ {
		e2.AddUndirectedEdge(i, (i+1)%12, 0)
	}
	if err := e2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Chips apply lazily at the first step.
	lab := func(anchor, step int) (float64, bool) { return 1, true }
	if err := e2.AddQuery(Query{Name: "q", Anchors: []int{0}, Delta: 1, Labeler: lab}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(); err != nil {
		t.Fatal(err)
	}
	c1 := e1.sched.Adaptive.Chips.Counts()
	c2 := e2.sched.Adaptive.Chips.Counts()
	for v := range c1 {
		if c1[v] != c2[v] {
			t.Fatalf("chip counts differ at node %d: %d vs %d", v, c1[v], c2[v])
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e1 := endToEnd(t, cfg, 4)
	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := DefaultConfig()
	other.Model = "DCRNN"
	other.Hidden = 8
	e2, _ := NewEngine(3, other)
	if err := e2.LoadCheckpoint(&buf); err == nil {
		t.Fatal("model mismatch accepted")
	}
	e3, _ := NewEngine(3, cfg)
	if err := e3.LoadCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
