# Convenience targets; everything is plain go tooling underneath.

GO ?= go

.PHONY: build test race lint fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI lint job: formatting, go vet, and the repository's own
# invariant checker (tools/streamlint — determinism, pool safety, checkpoint
# completeness, atomic alignment).
lint:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./tools/streamlint ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem ./...
