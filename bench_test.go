// Benchmarks regenerating every table and figure of the paper's evaluation.
//
//	go test -bench=. -benchmem
//
// Each benchmark runs one experiment cell per iteration and reports, besides
// the usual ns/op, the paper's columns as custom metrics:
//
//	train-ms   wall-clock spent in training only (the Training Time column)
//	peak-MB    peak per-step training allocation volume (the Memory column)
//	mse        prediction error of the resolved continuous queries
//	auc / mrr  ranking quality
//
// Figure 4 benchmarks report tail-loss(partial)/tail-loss(continuous) — the
// blowup factor that motivates continuous training.
package streamgnn_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"streamgnn"
	"streamgnn/internal/bench"
	"streamgnn/internal/core"
)

// benchSteps keeps a single benchmark iteration around a second.
const benchSteps = 30

func reportCell(b *testing.B, res bench.CellResult) {
	b.ReportMetric(float64(res.TrainTime.Milliseconds()), "train-ms")
	b.ReportMetric(float64(res.PeakStepBytes)/(1<<20), "peak-MB")
	b.ReportMetric(res.Error, "mse")
	if !math.IsNaN(res.AUC) {
		b.ReportMetric(res.AUC, "auc")
	}
	b.ReportMetric(res.MRR, "mrr")
}

func runCellBench(b *testing.B, dataset, model string, strat core.Strategy, mutate func(*bench.CellConfig)) {
	b.Helper()
	var last bench.CellResult
	for i := 0; i < b.N; i++ {
		cfg := bench.EqualizedCell(dataset, model, strat)
		cfg.Gen.Steps = benchSteps
		cfg.Seed = int64(i + 1)
		cfg.Gen.Seed = int64(i + 1)
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := bench.RunCell(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportCell(b, last)
}

// BenchmarkTable1 regenerates Table I: event-monitoring workloads, three
// methods per (dataset, model) cell.
func BenchmarkTable1(b *testing.B) {
	for _, cell := range bench.TableICells() {
		for _, strat := range bench.Strategies() {
			name := fmt.Sprintf("%s/%s/%s", cell[0], cell[1], strat)
			b.Run(name, func(b *testing.B) {
				runCellBench(b, cell[0], cell[1], strat, nil)
			})
		}
	}
}

// BenchmarkTable2 regenerates Table II: continuous link prediction.
func BenchmarkTable2(b *testing.B) {
	for _, cell := range bench.TableIICells() {
		for _, strat := range bench.Strategies() {
			name := fmt.Sprintf("%s/%s/%s", cell[0], cell[1], strat)
			b.Run(name, func(b *testing.B) {
				runCellBench(b, cell[0], cell[1], strat, func(cfg *bench.CellConfig) {
					// Accuracy is Table II's quality column.
				})
			})
		}
	}
}

// BenchmarkTable3 regenerates Table III: the five parameter sweeps, KDE
// method, one sub-benchmark per (parameter, value).
func BenchmarkTable3(b *testing.B) {
	for _, spec := range bench.TableIIISweeps() {
		spec := spec
		for _, v := range spec.Values {
			v := v
			name := fmt.Sprintf("%s=%g/%s/%s", spec.Label, v, spec.Dataset, spec.Model)
			b.Run(name, func(b *testing.B) {
				runCellBench(b, spec.Dataset, spec.Model, core.KDE, func(cfg *bench.CellConfig) {
					spec.Apply(cfg, v)
				})
			})
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: per-dataset continuous vs partial
// training; blowup = tail loss ratio (partial / continuous).
func BenchmarkFigure4(b *testing.B) {
	panels := []struct{ dataset, model string }{
		{"Bitcoin", "TGCN"},
		{"Reddit", "GCLSTM"},
		{"Taxi", "DCRNN"},
	}
	for _, p := range panels {
		p := p
		b.Run(p.dataset, func(b *testing.B) {
			var res bench.MotivationResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = bench.RunMotivation(p.dataset, p.model, 40, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			cont := bench.TailMeanLoss(res.Continuous)
			part := bench.TailMeanLoss(res.Partial)
			b.ReportMetric(cont, "tail-mse-cont")
			b.ReportMetric(part, "tail-mse-part")
			if cont > 0 {
				b.ReportMetric(part/cont, "blowup-x")
			}
		})
	}
}

// --- ablations of design choices called out in DESIGN.md §6 ---

// BenchmarkAblationChipFloor compares the paper's >=1-chip floor against
// allowing node starvation (MinChips = 0).
func BenchmarkAblationChipFloor(b *testing.B) {
	for _, floor := range []int{1, 0} {
		floor := floor
		b.Run(fmt.Sprintf("min-chips=%d", floor), func(b *testing.B) {
			runCellBench(b, "Bitcoin", "TGCN", core.Weighted, func(cfg *bench.CellConfig) {
				cfg.Core.MinChips = floor
			})
		})
	}
}

// BenchmarkAblationUpdateBias compares the update-set bias p_u = 0.5 against
// ignoring data recency entirely (p_u = 0).
func BenchmarkAblationUpdateBias(b *testing.B) {
	for _, pu := range []float64{0.5, 0} {
		pu := pu
		b.Run(fmt.Sprintf("p_u=%g", pu), func(b *testing.B) {
			runCellBench(b, "Taxi", "DCRNN", core.Weighted, func(cfg *bench.CellConfig) {
				cfg.Core.PUpdate = pu
			})
		})
	}
}

// BenchmarkAblationTeleport compares Algorithm 2's teleport (line 12) on and
// off; without it the seed window can trap in one region.
func BenchmarkAblationTeleport(b *testing.B) {
	for _, tele := range []bool{true, false} {
		tele := tele
		b.Run(fmt.Sprintf("teleport=%v", tele), func(b *testing.B) {
			runCellBench(b, "Taxi", "GCLSTM", core.KDE, func(cfg *bench.CellConfig) {
				cfg.Core.Teleport = tele
			})
		})
	}
}

// BenchmarkAblationBallSupervision compares ball-wide supervised targets
// (default) against exact-center-only targets.
func BenchmarkAblationBallSupervision(b *testing.B) {
	for _, ball := range []bool{true, false} {
		ball := ball
		b.Run(fmt.Sprintf("ball=%v", ball), func(b *testing.B) {
			runCellBench(b, "Reddit", "GCLSTM", core.KDE, func(cfg *bench.CellConfig) {
				cfg.Core.BallSupervision = ball
			})
		})
	}
}

// BenchmarkAblationReplay compares the fresh-reveal replay minibatch against
// pure single-partition supervised updates.
func BenchmarkAblationReplay(b *testing.B) {
	for _, replay := range []int{24, 0} {
		replay := replay
		b.Run(fmt.Sprintf("replay=%d", replay), func(b *testing.B) {
			runCellBench(b, "Reddit", "GCLSTM", core.KDE, func(cfg *bench.CellConfig) {
				cfg.Core.ReplaySize = replay
			})
		})
	}
}

// --- hot-path microbenchmarks (partition cache, parallel pair evaluation) ---

// BenchmarkPartitionCache times one partition extraction on a replayed
// Bitcoin snapshot: cold rebuilds the 2-hop ball from scratch every time,
// warm serves it from the version-keyed LRU cache.
func BenchmarkPartitionCache(b *testing.B) {
	for _, mode := range []string{"cold", "warm"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			capacity := 0
			if mode == "warm" {
				capacity = 4096
			}
			cell, err := bench.NewHotPathCell("Bitcoin", "TGCN", core.DefaultConfig(), capacity, 1)
			if err != nil {
				b.Fatal(err)
			}
			n := cell.G.N()
			for v := 0; v < n; v++ { // populate (no-op when cold)
				cell.G.Partition(v, 2)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cell.G.Partition(i%n, 2)
			}
			if mode == "warm" {
				b.ReportMetric(cell.G.PartitionCacheStats().HitRate(), "hit-rate")
			}
		})
	}
}

// BenchmarkParallelPairs times one adaptive training step (warm cache) with
// serial vs. worker-pool pair evaluation across PairsPerStep in {1, 3, 7}.
func BenchmarkParallelPairs(b *testing.B) {
	for _, pairs := range []int{1, 3, 7} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			pairs, workers := pairs, workers
			b.Run(fmt.Sprintf("pairs=%d/workers=%d", pairs, workers), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.PairsPerStep = pairs
				cfg.Workers = workers
				cell, err := bench.NewHotPathCell("Bitcoin", "TGCN", cfg, cfg.PartitionCacheCap, 1)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < 3; i++ { // warm the cache and the pools
					cell.Step()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cell.Step()
				}
			})
		}
	}
}

// BenchmarkIncrementalForward times whole engine steps on a sparse-update
// stream with full-snapshot vs. dirty-region incremental inference — the
// per-iteration wall clock is one Step, so ns/op compares directly.
func BenchmarkIncrementalForward(b *testing.B) {
	for _, mode := range []string{"full", "incremental"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			cfg := streamgnn.DefaultConfig()
			cfg.Strategy = streamgnn.StrategyWeighted
			cfg.Interval = 1 << 30 // isolate inference: train only at step 0
			cfg.IncrementalForward = mode == "incremental"
			e, err := streamgnn.NewEngine(4, cfg)
			if err != nil {
				b.Fatal(err)
			}
			const n = 2000
			for i := 0; i < n; i++ {
				e.AddNode(0, []float64{float64(i % 3), 0, 1, 0})
			}
			for i := 0; i < n; i++ {
				e.AddUndirectedEdge(i, (i+1)%n, 0)
			}
			for s := 0; s < 3; s++ { // warm up past the step-0 training
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SetFeature(i%n, []float64{float64(i % 5), 1, 0, 0})
				if err := e.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mode == "incremental" {
				tel := e.Telemetry()
				total := tel.FullForwards + tel.IncrementalForwards
				b.ReportMetric(float64(tel.IncrementalForwards)/float64(total), "inc-frac")
			}
		})
	}
}

// BenchmarkScaling measures the paper's complexity claim directly: the
// full-vs-adaptive resource gap widens as the graph grows (full training is
// O(n) per pass, a node partition O(d^L)).
func BenchmarkScaling(b *testing.B) {
	for _, scale := range []float64{0.5, 1, 2} {
		scale := scale
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			var pts []bench.ScalingPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = bench.RunScaling([]float64{scale}, benchSteps, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			p := pts[0]
			b.ReportMetric(p.TimeSpeedup, "speedup-x")
			b.ReportMetric(p.MemReduction, "mem-ratio-x")
			b.ReportMetric(float64(p.Nodes), "nodes")
		})
	}
}

// BenchmarkExtensionRTGCN compares this repository's relation-aware RTGCN
// extension against plain TGCN on the heterogeneous Taxi workload (two node
// types, two edge relations).
func BenchmarkExtensionRTGCN(b *testing.B) {
	for _, model := range []string{"TGCN", "RTGCN"} {
		model := model
		b.Run(model, func(b *testing.B) {
			runCellBench(b, "Taxi", model, core.KDE, nil)
		})
	}
}
