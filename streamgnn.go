// Package streamgnn is a resource-efficient online learning engine for
// dynamic graph neural networks over graph streams, implementing "Reducing
// Resource Usage for Continuous Model Updating and Predictive Query
// Answering in Graph Streams" (Liu, King, Ge — ICDE 2024).
//
// An Engine holds a dynamic heterogeneous graph snapshot, a pluggable DGNN
// model (TGCN, DCRNN, GCLSTM, DyGrEncoder, ROLAND, WinGNN, or EvolveGCN),
// and a set of continuous predictive queries. At every stream step the
// engine answers the queries from the model's embeddings and updates the
// model online using one of three strategies:
//
//   - StrategyFull     — the standard baseline: full-graph training
//   - StrategyWeighted — Algorithm 1: adaptive node-weight (chip) learning
//     with node-partition training
//   - StrategyKDE      — Algorithm 1 with graph-KDE sampling (Algorithm 2)
//
// Weighted and KDE reach the same accuracy as Full at a fraction of the
// training time and peak memory; see EXPERIMENTS.md.
//
// Basic usage:
//
//	eng, _ := streamgnn.NewEngine(featDim, streamgnn.DefaultConfig())
//	a := eng.AddNode(0, feats)           // mutate the snapshot ...
//	eng.AddEdge(a, b, 0)
//	eng.AddQuery(streamgnn.Query{...})   // subscribe continuous queries
//	for each stream step {
//	    ... apply this step's updates ...
//	    eng.Step()                       // answer queries + train online
//	    for _, al := range eng.TakeAlerts() { ... }
//	}
package streamgnn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/drift"
	"streamgnn/internal/graph"
	"streamgnn/internal/metrics"
	"streamgnn/internal/query"
	"streamgnn/internal/tensor"
)

// Strategy names accepted by Config.Strategy.
const (
	StrategyFull     = "full"
	StrategyWeighted = "weighted"
	StrategyKDE      = "kde"
)

// ModelNames returns the seven supported DGNN baselines.
func ModelNames() []string {
	names := make([]string, 0, 7)
	for _, k := range dgnn.Kinds() {
		names = append(names, k.String())
	}
	return names
}

// Config configures an Engine. Zero values fall back to the paper's
// defaults (Section VI-F).
type Config struct {
	// Model is the DGNN baseline name; see ModelNames(). Default "TGCN".
	Model string
	// Strategy is "full", "weighted" or "kde". Default "kde".
	Strategy string
	// Hidden is the embedding dimension. Default 16.
	Hidden int
	// Seed drives all randomness. Default 1.
	Seed int64
	// WindowSteps, if > 0, expires edges older than this many steps.
	WindowSteps int

	// Chips is k, the initial chips per node (default 5).
	Chips int
	// PairsPerStep is the node pairs trained per step (default 1).
	PairsPerStep int
	// UpdateBias is p_u, the probability of sampling from the update set
	// (default 0.5).
	UpdateBias float64
	// Interval is the number of steps between training steps (default 1).
	Interval int
	// Seeds is w, the KDE seed-window size (default 15).
	Seeds int
	// StopProb is q, the random-walk stop probability (default 0.5).
	StopProb float64
	// SeedKeep is p, the sample-becomes-seed probability (default 0.8).
	SeedKeep float64
	// LearningRate is the optimizer step size (default 0.02).
	LearningRate float64
	// DriftDetection enables an online Page-Hinkley detector over the
	// per-step query loss; see DriftDetected.
	DriftDetection bool

	// Workers is the number of goroutines evaluating training partitions
	// concurrently in the adaptive strategies. 0 means 1 (serial); any
	// negative value means runtime.NumCPU(). Seeded runs produce
	// bit-identical results for every worker count — only wall-clock time
	// changes.
	Workers int
	// PartitionCacheCap caps the version-keyed LRU cache of training
	// partitions (see Stats.CacheHits). 0 means the default (256); negative
	// disables caching.
	PartitionCacheCap int
	// DisablePooling turns off the tensor buffer pool that recycles tape
	// intermediates between training units.
	DisablePooling bool
}

// DefaultConfig returns the paper's default configuration with the KDE
// strategy.
func DefaultConfig() Config {
	return Config{Model: "TGCN", Strategy: StrategyKDE, Hidden: 16, Seed: 1}
}

func (c Config) fill() (Config, core.Config) {
	if c.Model == "" {
		c.Model = "TGCN"
	}
	if c.Strategy == "" {
		c.Strategy = StrategyKDE
	}
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	cc := core.DefaultConfig()
	if c.Chips > 0 {
		cc.K = c.Chips
	}
	if c.PairsPerStep > 0 {
		cc.PairsPerStep = c.PairsPerStep
	}
	if c.UpdateBias > 0 {
		cc.PUpdate = c.UpdateBias
	}
	if c.Interval > 0 {
		cc.Interval = c.Interval
	}
	if c.Seeds > 0 {
		cc.Seeds = c.Seeds
	}
	if c.StopProb > 0 {
		cc.StopProb = c.StopProb
	}
	if c.SeedKeep > 0 {
		cc.SeedKeep = c.SeedKeep
	}
	if c.LearningRate > 0 {
		cc.LR = c.LearningRate
	}
	if c.Workers < 0 {
		cc.Workers = runtime.NumCPU()
	} else if c.Workers > 0 {
		cc.Workers = c.Workers
	}
	if c.PartitionCacheCap < 0 {
		cc.PartitionCacheCap = 0
	} else if c.PartitionCacheCap > 0 {
		cc.PartitionCacheCap = c.PartitionCacheCap
	}
	return c, cc
}

// Query is a continuous predictive query: at every step t the engine
// predicts, for each anchor, the monitored value at step t+Delta, and fires
// an Alert when the prediction exceeds Threshold. Truth, when it becomes
// available, is obtained from the Labeler and used both for evaluation and
// as delayed supervision.
type Query struct {
	Name      string
	Anchors   []int
	Delta     int
	Threshold float64
	// Labeler returns the true monitored value at an anchor for a step
	// once that step has arrived (ok=false if unavailable).
	Labeler func(anchor, step int) (value float64, ok bool)
}

// Alert is a fired monitoring notification.
type Alert struct {
	Query   string
	Anchor  int
	ForStep int
	Score   float64
}

// Outcome is a resolved prediction (prediction vs. revealed truth).
type Outcome struct {
	Query  string
	Anchor int
	Step   int
	Score  float64
	Truth  float64
	Event  bool
}

// Metrics summarizes resolved predictions.
type Metrics struct {
	N        int
	MSE      float64
	Accuracy float64
	AUC      float64
	MRR      float64
}

// Stats exposes the online trainer's internals for observability: how much
// training material of each kind has been consumed, how many node
// partitions were trained, and how concentrated the learned node-weight
// distribution is.
type Stats struct {
	// SelfNodeTargets .. ReplayTargets count consumed training targets.
	SelfNodeTargets int
	SelfEdgeTargets int
	SupNodeTargets  int
	SupPairTargets  int
	ReplayTargets   int
	// TrainedPartitions counts node partitions trained (0 for "full").
	TrainedPartitions int
	// ChipMoves counts accepted chip moves of Algorithm 1.
	ChipMoves int
	// ChipEntropy is the normalized entropy of the chip distribution in
	// [0, 1]: 1 = uniform (nothing learned yet), lower = concentrated on a
	// profitable region. 0 when the strategy is "full" or before training.
	ChipEntropy float64
	// TopChipNodes lists the highest-weight nodes (up to 5, descending).
	TopChipNodes []int

	// CacheHits/CacheMisses/CacheInvalidations count partition-cache
	// activity; CacheHitRate is Hits/(Hits+Misses), 0 when caching is off.
	CacheHits          int64
	CacheMisses        int64
	CacheInvalidations int64
	CacheHitRate       float64
	// ParallelUnits counts training units evaluated on worker goroutines
	// (0 when Workers <= 1).
	ParallelUnits int64
}

// Engine is the online continuous-learning query engine.
type Engine struct {
	cfg   Config
	ccfg  core.Config
	g     *graph.Dynamic
	model dgnn.Model
	wl    *query.Workload
	sched *core.Scheduler

	step         int
	lastEmb      *tensor.Matrix
	mkScheduler  func() (*core.Scheduler, error)
	pendingChips []int

	driftDet     *drift.PageHinkley
	driftFlag    bool
	seenOutcomes int
}

// allParams returns the trainable parameters (model first, then heads),
// in the stable order checkpoints rely on.
func (e *Engine) allParams() []*autodiff.Node {
	return append(e.model.Params(), e.wl.Heads().Params()...)
}

// NewEngine creates an engine over an empty graph whose nodes carry featDim
// attributes.
func NewEngine(featDim int, cfg Config) (*Engine, error) {
	cfg, ccfg := cfg.fill()
	kind, err := dgnn.ParseKind(cfg.Model)
	if err != nil {
		return nil, err
	}
	strategy, err := core.ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	// Buffer pooling is process-wide; the engine turns it on unless asked
	// not to (metered allocation accounting is identical either way).
	tensor.EnablePooling(!cfg.DisablePooling)
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewDynamic(featDim)
	model := dgnn.New(kind, rng, featDim, cfg.Hidden)
	heads := query.NewHeads(rng, cfg.Hidden)
	wl := query.NewWorkload(heads)
	params := append(model.Params(), heads.Params()...)
	opt := model.WrapOptimizer(autodiff.NewAdam(ccfg.LR, params))
	trainer := core.NewTrainer(g, model, wl, opt, ccfg, rng)
	e := &Engine{cfg: cfg, ccfg: ccfg, g: g, model: model, wl: wl}
	if cfg.DriftDetection {
		e.driftDet = drift.NewPageHinkley(0.05, 3)
	}
	// The adaptive learner needs at least one node; scheduler creation is
	// deferred to the first Step so users can populate the graph first.
	e.mkScheduler = func() (*core.Scheduler, error) {
		return core.NewScheduler(trainer, ccfg, strategy, rng)
	}
	return e, nil
}

// AddNode adds a node of the given type and returns its id.
func (e *Engine) AddNode(nodeType int, feat []float64) int {
	return e.g.AddNode(graph.NodeType(nodeType), feat)
}

// AddEdge adds a directed edge stamped with the current step.
func (e *Engine) AddEdge(u, v, edgeType int) {
	e.g.AddEdge(u, v, graph.EdgeType(edgeType), int64(e.step))
}

// AddUndirectedEdge adds edges in both directions.
func (e *Engine) AddUndirectedEdge(u, v, edgeType int) {
	e.g.AddUndirectedEdge(u, v, graph.EdgeType(edgeType), int64(e.step))
}

// AddLabeledEdge adds a directed edge carrying a self-supervision label.
func (e *Engine) AddLabeledEdge(u, v, edgeType int, label float64) {
	e.g.AddLabeledEdge(u, v, graph.EdgeType(edgeType), int64(e.step), label)
}

// SetFeature replaces a node's attribute vector.
func (e *Engine) SetFeature(v int, feat []float64) { e.g.SetFeature(v, feat) }

// SetNodeLabel attaches a self-supervision label to a node.
func (e *Engine) SetNodeLabel(v int, label float64) { e.g.SetLabel(v, label) }

// NumNodes returns the number of nodes in the snapshot.
func (e *Engine) NumNodes() int { return e.g.N() }

// NumEdges returns the number of directed edges in the snapshot.
func (e *Engine) NumEdges() int { return e.g.NumEdges() }

// CurrentStep returns the index of the next step to execute.
func (e *Engine) CurrentStep() int { return e.step }

// AddQuery subscribes a continuous predictive query.
func (e *Engine) AddQuery(q Query) error {
	if len(q.Anchors) == 0 {
		return fmt.Errorf("streamgnn: query %q has no anchors", q.Name)
	}
	if q.Delta < 1 {
		return fmt.Errorf("streamgnn: query %q needs Delta >= 1", q.Name)
	}
	if q.Labeler == nil {
		return fmt.Errorf("streamgnn: query %q needs a Labeler", q.Name)
	}
	e.wl.AddQuery(&query.EventQuery{
		Name:      q.Name,
		Anchors:   append([]int(nil), q.Anchors...),
		Delta:     q.Delta,
		Threshold: q.Threshold,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return q.Labeler(anchor, step)
		},
	})
	return nil
}

// EnableLinkPrediction subscribes continuous next-step link prediction.
func (e *Engine) EnableLinkPrediction() {
	e.wl.SetLinkTask(query.NewLinkPredTask(e.cfg.Seed + 1))
}

// Step executes one stream step: it reveals truths that arrived with the
// current snapshot, computes embeddings, answers every query, and performs
// the strategy's online training. Mutate the graph (AddNode/AddEdge/...)
// between Step calls to feed the stream.
func (e *Engine) Step() error {
	if e.g.N() == 0 {
		return fmt.Errorf("streamgnn: cannot step an empty graph")
	}
	if e.sched == nil {
		s, err := e.mkScheduler()
		if err != nil {
			return err
		}
		e.sched = s
		if len(e.pendingChips) > 0 && s.Adaptive != nil {
			if err := s.Adaptive.Chips.Restore(e.pendingChips); err != nil {
				return err
			}
			e.pendingChips = nil
		}
	}
	t := e.step
	if e.cfg.WindowSteps > 0 {
		e.g.ExpireEdgesBefore(int64(t - e.cfg.WindowSteps + 1))
	}
	updated := e.g.Updated()
	e.model.BeginStep(t)
	// Inference over the whole snapshot (forward propagation is on the
	// full graph regardless of strategy — Section III-C).
	tp := autodiff.NewTape()
	emb := e.model.Forward(tp, dgnn.FullView(e.g))
	e.lastEmb = emb.Value
	e.wl.Reveal(e.g, t)
	e.observeDrift()
	e.wl.Predict(e.lastEmb, t)
	e.sched.OnStep(t, updated)
	e.g.ResetUpdated()
	e.step++
	return nil
}

// observeDrift feeds this step's mean prediction loss to the detector.
func (e *Engine) observeDrift() {
	e.driftFlag = false
	outs := e.wl.Outcomes()
	if e.driftDet == nil || len(outs) == e.seenOutcomes {
		e.seenOutcomes = len(outs)
		return
	}
	var sum float64
	n := 0
	for _, o := range outs[e.seenOutcomes:] {
		d := o.Score - o.Truth
		sum += d * d
		n++
	}
	e.seenOutcomes = len(outs)
	if n > 0 {
		e.driftFlag = e.driftDet.Add(sum / float64(n))
	}
}

// DriftDetected reports whether the last Step's revealed query losses
// triggered the drift detector (always false unless Config.DriftDetection).
func (e *Engine) DriftDetected() bool { return e.driftFlag }

// Embedding returns a copy of node v's current embedding (nil before the
// first Step or for unknown nodes).
func (e *Engine) Embedding(v int) []float64 {
	if e.lastEmb == nil || v < 0 || v >= e.lastEmb.Rows {
		return nil
	}
	out := make([]float64, e.lastEmb.Cols)
	copy(out, e.lastEmb.Row(v))
	return out
}

// TakeAlerts drains the alerts fired since the last call.
func (e *Engine) TakeAlerts() []Alert {
	raw := e.wl.TakeAlerts()
	out := make([]Alert, len(raw))
	for i, a := range raw {
		out[i] = Alert{Query: a.Query, Anchor: a.Anchor, ForStep: a.ForStep, Score: a.Score}
	}
	return out
}

// Outcomes returns all resolved predictions so far.
func (e *Engine) Outcomes() []Outcome {
	raw := e.wl.Outcomes()
	out := make([]Outcome, len(raw))
	for i, o := range raw {
		out[i] = Outcome{Query: o.Query, Anchor: o.Anchor, Step: o.Step,
			Score: o.Score, Truth: o.Truth, Event: o.Event}
	}
	return out
}

// Stats returns a snapshot of the online trainer's internals.
func (e *Engine) Stats() Stats {
	var s Stats
	if e.sched == nil {
		return s
	}
	ts := e.sched.Trainer.Stats
	s.SelfNodeTargets = int(ts.SelfNodeTargets)
	s.SelfEdgeTargets = int(ts.SelfEdgeTargets)
	s.SupNodeTargets = int(ts.SupNodeTargets)
	s.SupPairTargets = int(ts.SupPairTargets)
	s.ReplayTargets = int(ts.ReplayTargets)
	cs := e.g.PartitionCacheStats()
	s.CacheHits = cs.Hits
	s.CacheMisses = cs.Misses
	s.CacheInvalidations = cs.Invalidations
	s.CacheHitRate = cs.HitRate()
	if a := e.sched.Adaptive; a != nil {
		s.TrainedPartitions = a.Trained
		s.ChipMoves = a.Moves
		s.ParallelUnits = a.ParallelUnits
		probs := a.Probabilities()
		if len(probs) > 1 {
			var h float64
			for _, p := range probs {
				if p > 0 {
					h -= p * math.Log(p)
				}
			}
			s.ChipEntropy = h / math.Log(float64(len(probs)))
		}
		type nodeProb struct {
			v int
			p float64
		}
		top := make([]nodeProb, 0, len(probs))
		for v, p := range probs {
			top = append(top, nodeProb{v, p})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].p > top[j].p })
		for i := 0; i < len(top) && i < 5; i++ {
			s.TopChipNodes = append(s.TopChipNodes, top[i].v)
		}
	}
	return s
}

// Metrics summarizes all resolved predictions (and link-prediction results
// when enabled).
func (e *Engine) Metrics() Metrics {
	outs := e.wl.Outcomes()
	var m Metrics
	var scores, truths []float64
	var events []bool
	for _, o := range outs {
		scores = append(scores, o.Score)
		truths = append(truths, o.Truth)
		events = append(events, o.Event)
	}
	m.N = len(outs)
	if len(outs) > 0 {
		m.MSE = metrics.MSE(scores, truths)
		m.AUC = metrics.AUC(scores, events)
	}
	if lt := e.wl.LinkTask(); lt != nil {
		ls, ll := lt.Scores()
		if len(ls) > 0 {
			m.N += len(ls)
			m.Accuracy = metrics.Accuracy(ls, ll, 0) // logits: threshold 0
			m.AUC = metrics.AUC(ls, ll)
			m.MRR = metrics.MRR(lt.Ranks())
		}
	}
	return m
}
