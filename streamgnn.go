// Package streamgnn is a resource-efficient online learning engine for
// dynamic graph neural networks over graph streams, implementing "Reducing
// Resource Usage for Continuous Model Updating and Predictive Query
// Answering in Graph Streams" (Liu, King, Ge — ICDE 2024).
//
// An Engine holds a dynamic heterogeneous graph snapshot, a pluggable DGNN
// model (TGCN, DCRNN, GCLSTM, DyGrEncoder, ROLAND, WinGNN, or EvolveGCN),
// and a set of continuous predictive queries. At every stream step the
// engine answers the queries from the model's embeddings and updates the
// model online using one of three strategies:
//
//   - StrategyFull     — the standard baseline: full-graph training
//   - StrategyWeighted — Algorithm 1: adaptive node-weight (chip) learning
//     with node-partition training
//   - StrategyKDE      — Algorithm 1 with graph-KDE sampling (Algorithm 2)
//
// Weighted and KDE reach the same accuracy as Full at a fraction of the
// training time and peak memory; see EXPERIMENTS.md.
//
// Basic usage:
//
//	eng, _ := streamgnn.NewEngine(featDim, streamgnn.DefaultConfig())
//	a := eng.AddNode(0, feats)           // mutate the snapshot ...
//	eng.AddEdge(a, b, 0)
//	eng.AddQuery(streamgnn.Query{...})   // subscribe continuous queries
//	for each stream step {
//	    ... apply this step's updates ...
//	    eng.Step()                       // answer queries + train online
//	    for _, al := range eng.TakeAlerts() { ... }
//	}
package streamgnn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/drift"
	"streamgnn/internal/graph"
	"streamgnn/internal/metrics"
	"streamgnn/internal/query"
	"streamgnn/internal/rng"
	"streamgnn/internal/shard"
	"streamgnn/internal/tensor"
)

// Strategy names accepted by Config.Strategy.
const (
	StrategyFull     = "full"
	StrategyWeighted = "weighted"
	StrategyKDE      = "kde"
)

// ModelNames returns the seven supported DGNN baselines.
func ModelNames() []string {
	names := make([]string, 0, 7)
	for _, k := range dgnn.Kinds() {
		names = append(names, k.String())
	}
	return names
}

// Config configures an Engine. Zero values fall back to the paper's
// defaults (Section VI-F).
type Config struct {
	// Model is the DGNN baseline name; see ModelNames(). Default "TGCN".
	Model string
	// Strategy is "full", "weighted" or "kde". Default "kde".
	Strategy string
	// Hidden is the embedding dimension. Default 16.
	Hidden int
	// Seed drives all randomness. Default 1.
	Seed int64
	// WindowSteps, if > 0, expires edges older than this many steps.
	WindowSteps int

	// Chips is k, the initial chips per node (default 5).
	Chips int
	// PairsPerStep is the node pairs trained per step (default 1).
	PairsPerStep int
	// UpdateBias is p_u, the probability of sampling from the update set.
	// nil uses the paper default (0.5); any non-nil value — including an
	// explicit 0, which disables the update-set bias for ablation sweeps —
	// is honored as set. Use the Float helper to set it:
	//
	//	cfg.UpdateBias = streamgnn.Float(0) // p_u = 0
	UpdateBias *float64
	// Interval is the number of steps between training steps (default 1).
	Interval int
	// Seeds is w, the KDE seed-window size (default 15).
	Seeds int
	// StopProb is q, the random-walk stop probability. nil uses the paper
	// default (0.5); a non-nil value is honored as set (it must lie in
	// (0, 1] — a zero stop probability would never terminate the walk).
	// Use Float to set it.
	StopProb *float64
	// SeedKeep is p, the sample-becomes-seed probability. nil uses the
	// paper default (0.8); any non-nil value in [0, 1] — including an
	// explicit 0, i.e. always teleport — is honored as set. Use Float to
	// set it.
	SeedKeep *float64
	// LearningRate is the optimizer step size (default 0.02).
	LearningRate float64
	// DriftDetection enables an online Page-Hinkley detector over the
	// per-step query loss; see DriftDetected.
	DriftDetection bool

	// Workers is the number of goroutines evaluating training partitions
	// concurrently in the adaptive strategies. 0 means 1 (serial); any
	// negative value means runtime.NumCPU(). Seeded runs produce
	// bit-identical results for every worker count — only wall-clock time
	// changes.
	Workers int
	// PartitionCacheCap caps the version-keyed LRU cache of training
	// partitions (see Stats.CacheHits). 0 means the default (256); negative
	// disables caching.
	PartitionCacheCap int
	// DependencySchedule extends worker-pool parallelism from unit
	// *evaluation* to the whole training unit (backprop and gradient
	// accumulation included): the step's units are partitioned into conflict
	// groups — units whose L-hop receptive fields intersect — and
	// independent groups run fully concurrently, with per-unit gradients
	// merged serially in unit-index order before the optimizer step.
	// Grouping depends only on the sampled units and the graph, so seeded
	// runs stay bit-identical for every Workers value. On hub-heavy graphs
	// all units tend to share one group and the schedule degenerates to the
	// serial path. See DESIGN.md §15. Default false.
	DependencySchedule bool
	// DisablePooling turns off the tensor buffer pool that recycles tape
	// intermediates between training units.
	DisablePooling bool

	// IncrementalForward switches the per-step inference phase from a
	// full-snapshot forward to dirty-region recomputation: only nodes whose
	// L-hop neighborhood changed since the previous step are re-embedded,
	// and their fresh rows are spliced into a cached embedding matrix. For
	// memoryless models (WinGNN) the result is bit-identical to the full
	// forward; recurrent models freeze the embedding and hidden state of
	// unaffected nodes, a bounded-staleness approximation resynced by
	// RefreshEverySteps. See DESIGN.md §10.
	IncrementalForward bool
	// DirtyFullThreshold is the compute-region fraction above which an
	// incremental step falls back to a full forward (recomputing a large
	// region via a subgraph costs more than the dense full pass). 0 means
	// the default (0.25); a value of 1 never falls back; values outside
	// [0, 1] are rejected (a fraction above 1 is meaningless and used to be
	// accepted silently). Only meaningful with IncrementalForward. With
	// DeltaForward it bounds the per-stage candidate set instead.
	DirtyFullThreshold float64
	// RefreshEverySteps, when > 0, forces a full forward at least every
	// this many steps in incremental mode, bounding the staleness of
	// recurrent models' frozen rows. 0 never forces a refresh.
	RefreshEverySteps int

	// DeltaForward switches incremental inference from region splicing to
	// event-driven delta propagation: per-edge changes propagate stage by
	// stage through the model, recomputing single rows and pruning frontier
	// nodes whose recomputation stays within DeltaEpsilon of the cached
	// value. Where region splicing recomputes the induced subgraph of
	// Ball(Ball(S,L),L) — which explodes into a full forward as soon as a
	// high-degree hub turns dirty — delta propagation's cost tracks the
	// number of rows that actually change. Implies IncrementalForward.
	// Models without a delta decomposition (DCRNN, EvolveGCN) silently keep
	// the splice ladder. See DESIGN.md §14.
	DeltaForward bool
	// DeltaEpsilon is the per-component pruning threshold of DeltaForward:
	// a recomputed stage row within epsilon of its cached value is
	// discarded, stopping propagation through it. 0 (the default) prunes
	// only bit-identical rows, keeping delta forwards bit-identical to full
	// forwards; larger values trade bounded per-stage error for a smaller
	// frontier. Must lie in [0, 1].
	DeltaEpsilon float64

	// KernelWorkers sets the process-wide tensor-kernel parallelism
	// (tensor.SetParallelism): shards of dense matmuls and SpMM run on this
	// many goroutines with bit-identical results. 0 leaves the current
	// process-wide setting untouched; negative means runtime.NumCPU().
	// Distinct from Workers, which parallelizes whole training partitions.
	KernelWorkers int

	// Shards partitions the node-id space into this many shards and makes
	// the streaming pipeline shard-aware end to end: ingestion routes dirty
	// marks to per-shard trackers, incremental forwards fan the compute
	// region out to one worker per shard (by connected component, so results
	// are bit-identical to the unsharded path on seeded runs — see DESIGN.md
	// §12), and a deterministic merge splices the per-shard rows back.
	// 0 or 1 disables sharding; > 1 implies IncrementalForward. Negative is
	// rejected.
	Shards int
	// ShardLayout selects how node ids map to shards: "hash" (default; a
	// fixed 64-bit mixer, balanced but scatters id ranges) or "range"
	// (blocks of consecutive ids round-robin across shards, keeping streams
	// with id locality shard-local). Only meaningful with Shards > 1.
	ShardLayout string
}

// DefaultConfig returns the paper's default configuration with the KDE
// strategy.
func DefaultConfig() Config {
	return Config{Model: "TGCN", Strategy: StrategyKDE, Hidden: 16, Seed: 1}
}

// Float returns a pointer to v, for the Config fields with explicit-set
// semantics (UpdateBias, StopProb, SeedKeep).
func Float(v float64) *float64 { return &v }

func (c Config) fill() (Config, core.Config) {
	if c.Model == "" {
		c.Model = "TGCN"
	}
	if c.Strategy == "" {
		c.Strategy = StrategyKDE
	}
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards > 1 {
		// The sharded pipeline is the incremental path's fan-out; a full
		// forward has no per-shard structure to exploit.
		c.IncrementalForward = true
	}
	if c.DeltaForward {
		// Delta propagation is a refinement of incremental inference: it
		// needs the same dirty tracking and embedding cache.
		c.IncrementalForward = true
	}
	cc := core.DefaultConfig()
	if c.Chips > 0 {
		cc.K = c.Chips
	}
	if c.PairsPerStep > 0 {
		cc.PairsPerStep = c.PairsPerStep
	}
	if c.UpdateBias != nil {
		cc.PUpdate = *c.UpdateBias
	}
	if c.Interval > 0 {
		cc.Interval = c.Interval
	}
	if c.Seeds > 0 {
		cc.Seeds = c.Seeds
	}
	if c.StopProb != nil {
		cc.StopProb = *c.StopProb
	}
	if c.SeedKeep != nil {
		cc.SeedKeep = *c.SeedKeep
	}
	if c.LearningRate > 0 {
		cc.LR = c.LearningRate
	}
	if c.Workers < 0 {
		cc.Workers = runtime.NumCPU()
	} else if c.Workers > 0 {
		cc.Workers = c.Workers
	}
	if c.PartitionCacheCap < 0 {
		cc.PartitionCacheCap = 0
	} else if c.PartitionCacheCap > 0 {
		cc.PartitionCacheCap = c.PartitionCacheCap
	}
	cc.DependencySchedule = c.DependencySchedule
	return c, cc
}

// Query is a continuous predictive query: at every step t the engine
// predicts, for each anchor, the monitored value at step t+Delta, and fires
// an Alert when the prediction exceeds Threshold. Truth, when it becomes
// available, is obtained from the Labeler and used both for evaluation and
// as delayed supervision.
type Query struct {
	Name      string
	Anchors   []int
	Delta     int
	Threshold float64
	// Labeler returns the true monitored value at an anchor for a step
	// once that step has arrived (ok=false if unavailable).
	Labeler func(anchor, step int) (value float64, ok bool)
}

// Alert is a fired monitoring notification.
type Alert struct {
	Query   string
	Anchor  int
	ForStep int
	Score   float64
}

// Outcome is a resolved prediction (prediction vs. revealed truth).
type Outcome struct {
	Query  string
	Anchor int
	Step   int
	Score  float64
	Truth  float64
	Event  bool
}

// Metrics summarizes resolved predictions. Event-query and link-prediction
// results are reported in distinct fields (EventAUC/EventN vs LinkAUC/LinkN)
// so a mixed workload never shadows one task's quality with the other's;
// the original N and AUC fields are kept as documented aggregates.
type Metrics struct {
	// N is the total number of resolved predictions across both task
	// kinds (EventN + LinkN) — a legacy aggregate; prefer the per-task
	// counts for mixed workloads.
	N int
	// MSE is the mean squared error over resolved event-query predictions.
	MSE float64
	// Accuracy is the link-prediction accuracy at logit threshold 0
	// (0 when link prediction is off).
	Accuracy float64
	// AUC is a legacy aggregate kept for single-task callers: it equals
	// LinkAUC when link prediction is active, otherwise EventAUC. Mixed
	// workloads should read EventAUC and LinkAUC directly.
	AUC float64
	// MRR is the link-prediction mean reciprocal rank.
	MRR float64

	// EventN and EventAUC cover resolved event-query outcomes only.
	EventN   int
	EventAUC float64
	// LinkN and LinkAUC cover link-prediction scores only.
	LinkN   int
	LinkAUC float64
}

// Stats exposes the online trainer's internals for observability: how much
// training material of each kind has been consumed, how many node
// partitions were trained, and how concentrated the learned node-weight
// distribution is.
type Stats struct {
	// SelfNodeTargets .. ReplayTargets count consumed training targets.
	SelfNodeTargets int
	SelfEdgeTargets int
	SupNodeTargets  int
	SupPairTargets  int
	ReplayTargets   int
	// TrainedPartitions counts node partitions trained (0 for "full").
	TrainedPartitions int
	// ChipMoves counts accepted chip moves of Algorithm 1.
	ChipMoves int
	// ChipEntropy is the normalized entropy of the chip distribution in
	// [0, 1]: 1 = uniform (nothing learned yet), lower = concentrated on a
	// profitable region. 0 when the strategy is "full" or before training.
	ChipEntropy float64
	// TopChipNodes lists the highest-weight nodes (up to 5, descending).
	TopChipNodes []int

	// CacheHits/CacheMisses/CacheInvalidations count partition-cache
	// activity; CacheHitRate is Hits/(Hits+Misses), 0 when caching is off.
	CacheHits          int64
	CacheMisses        int64
	CacheInvalidations int64
	CacheHitRate       float64
	// ParallelUnits counts training units evaluated on worker goroutines
	// (0 when Workers <= 1).
	ParallelUnits int64

	// Dependency-schedule counters, zero unless Config.DependencySchedule:
	// SchedSteps counts adaptive training rounds run under the conflict-group
	// schedule, SchedGroups the conflict groups they formed, SchedUnits the
	// units they scheduled, and SchedCollapsedSteps the rounds whose units
	// all fell into a single group (the serial degenerate case on hub-heavy
	// streams). SchedGroups/SchedUnits close to 1 means near-perfect
	// parallelism; close to 1/units means the schedule is collapsing.
	SchedSteps          int64
	SchedGroups         int64
	SchedUnits          int64
	SchedCollapsedSteps int64
}

// Engine is the online continuous-learning query engine.
type Engine struct {
	cfg     Config
	ccfg    core.Config
	g       *graph.Dynamic
	model   dgnn.Model
	wl      *query.Workload
	sched   *core.Scheduler
	trainer *core.Trainer
	opt     autodiff.Optimizer
	src     *rng.SplitMix64 // dumpable source behind every engine rng draw

	step        int
	lastEmb     *tensor.Matrix
	emb         *dgnn.EmbStore  // managed embedding cache (incremental mode)
	delta       dgnn.DeltaState // per-stage delta caches (DeltaForward mode)
	deltaFwd    dgnn.DeltaForwarder
	shards      *shard.Sharding // node-space partition; nil when Shards <= 1
	shardFwd    ShardForwarder  // optional remote executor for sharded forwards
	mkScheduler func() (*core.Scheduler, error)
	// pending is checkpoint state that can only be applied once the
	// scheduler exists (it is created lazily at the first Step).
	pending *pendingRestore

	driftDet     *drift.PageHinkley
	driftFlag    bool
	seenOutcomes int

	// serving is the immutable post-step snapshot query serving reads
	// lock-free; see serving.go.
	serving atomic.Pointer[QuerySnapshot]

	tele engineTelemetry
}

// pendingRestore carries the scheduler-scoped checkpoint state (chips and
// observability counters) between LoadCheckpoint and the first Step.
type pendingRestore struct {
	chips         []int
	trainSteps    int
	trained       int
	moves         int
	parallelUnits int64
	schedSteps    int64
	schedGroups   int64
	schedUnits    int64
	schedCollapse int64
	kdeSeeds      []int
	kdeOldest     int
	hasKDE        bool
}

// ShardForwarder executes the sharded region forwards of incremental steps
// on behalf of the engine — the seam the coordinator/replica split
// (internal/cluster) plugs into. The engine still computes the dirty set,
// the exact/region expansion and the full-forward fallback decision globally
// (so they cannot depend on where parts execute), then hands the
// component-respecting parts and the global exact set to the forwarder,
// which must return per-shard results exactly as dgnn.ForwardShards would:
// res[s].Out carrying the committed values of res[s].IDs, with the model's
// recurrent state rows for those ids advanced in the engine's own model.
// The engine merges the results in the usual deterministic MergeShards
// order, so a forwarder that is row-exact preserves bit-equality with the
// in-process path.
type ShardForwarder interface {
	// ForwardShards runs one forward per non-empty part for the given step
	// and returns results indexed like parts. BeginStep has already run.
	ForwardShards(step int, parts [][]int, exact []int) []dgnn.ShardForward
	// InvalidateMirrors tells the forwarder that every cached model mirror
	// (parameters, recurrent state, serving heads) is stale: training moved
	// the parameters, or a full forward rewrote all state rows.
	InvalidateMirrors()
}

// SetShardForwarder installs f as the executor of sharded region forwards.
// Requires a sharded engine (Config.Shards > 1); incompatible with
// DeltaForward, whose per-stage caches have no per-shard decomposition to
// distribute. Pass nil to restore the in-process fan-out.
func (e *Engine) SetShardForwarder(f ShardForwarder) error {
	if f == nil {
		e.shardFwd = nil
		return nil
	}
	if e.shards == nil {
		return fmt.Errorf("streamgnn: SetShardForwarder requires Shards > 1")
	}
	if e.deltaFwd != nil {
		return fmt.Errorf("streamgnn: SetShardForwarder is incompatible with DeltaForward")
	}
	e.shardFwd = f
	return nil
}

// Model exposes the engine's DGNN model for coordinators that mirror its
// parameters and recurrent state across replicas (internal/cluster). Read
// or snapshot it only between Step calls.
func (e *Engine) Model() dgnn.Model { return e.model }

// Config returns the engine's filled configuration.
func (e *Engine) Config() Config { return e.cfg }

// allParams returns the trainable parameters (model first, then heads),
// in the stable order checkpoints rely on.
func (e *Engine) allParams() []*autodiff.Node {
	return append(e.model.Params(), e.wl.Heads().Params()...)
}

// NewEngine creates an engine over an empty graph whose nodes carry featDim
// attributes.
func NewEngine(featDim int, cfg Config) (*Engine, error) {
	cfg, ccfg := cfg.fill()
	kind, err := dgnn.ParseKind(cfg.Model)
	if err != nil {
		return nil, err
	}
	strategy, err := core.ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	if err := ccfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DirtyFullThreshold < 0 || cfg.DirtyFullThreshold > 1 {
		return nil, fmt.Errorf("streamgnn: DirtyFullThreshold is a fraction of the graph and must lie in [0, 1], got %g", cfg.DirtyFullThreshold)
	}
	if cfg.DeltaEpsilon < 0 || cfg.DeltaEpsilon > 1 {
		return nil, fmt.Errorf("streamgnn: DeltaEpsilon must lie in [0, 1], got %g", cfg.DeltaEpsilon)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("streamgnn: Shards must be >= 0, got %d", cfg.Shards)
	}
	layout, err := shard.ParseLayout(cfg.ShardLayout)
	if err != nil {
		return nil, fmt.Errorf("streamgnn: %w", err)
	}
	// Buffer pooling is process-wide; the engine turns it on unless asked
	// not to (metered allocation accounting is identical either way).
	tensor.EnablePooling(!cfg.DisablePooling)
	// Kernel parallelism is also process-wide, but 0 leaves it alone so an
	// engine built without an opinion does not stomp a host's setting.
	if cfg.KernelWorkers > 0 {
		tensor.SetParallelism(cfg.KernelWorkers)
	} else if cfg.KernelWorkers < 0 {
		tensor.SetParallelism(runtime.NumCPU())
	}
	src := rng.New(cfg.Seed)
	r := rand.New(src)
	g := graph.NewDynamic(featDim)
	model := dgnn.New(kind, r, featDim, cfg.Hidden)
	heads := query.NewHeads(r, cfg.Hidden)
	wl := query.NewWorkload(heads)
	params := append(model.Params(), heads.Params()...)
	opt := model.WrapOptimizer(autodiff.NewAdam(ccfg.LR, params))
	trainer := core.NewTrainer(g, model, wl, opt, ccfg, r)
	e := &Engine{cfg: cfg, ccfg: ccfg, g: g, model: model, wl: wl,
		trainer: trainer, opt: opt, src: src, emb: dgnn.NewEmbStore()}
	if cfg.Shards > 1 {
		e.shards, err = shard.New(cfg.Shards, layout)
		if err != nil {
			return nil, fmt.Errorf("streamgnn: %w", err)
		}
		g.AttachSharding(e.shards)
	}
	e.tele.init(cfg.Shards)
	if cfg.IncrementalForward {
		g.EnableDirtyTracking()
	}
	if cfg.DeltaForward {
		// Models without a delta decomposition keep the splice ladder;
		// deltaFwd stays nil and runForward dispatches as before.
		if df, ok := model.(dgnn.DeltaForwarder); ok {
			e.deltaFwd = df
		}
	}
	if cfg.DriftDetection {
		e.driftDet = drift.NewPageHinkley(0.05, 3)
	}
	// The adaptive learner needs at least one node; scheduler creation is
	// deferred to the first Step so users can populate the graph first.
	e.mkScheduler = func() (*core.Scheduler, error) {
		return core.NewScheduler(trainer, ccfg, strategy, r)
	}
	return e, nil
}

// AddNode adds a node of the given type and returns its id.
func (e *Engine) AddNode(nodeType int, feat []float64) int {
	return e.g.AddNode(graph.NodeType(nodeType), feat)
}

// AddEdge adds a directed edge stamped with the current step.
func (e *Engine) AddEdge(u, v, edgeType int) {
	e.g.AddEdge(u, v, graph.EdgeType(edgeType), int64(e.step))
}

// AddUndirectedEdge adds edges in both directions.
func (e *Engine) AddUndirectedEdge(u, v, edgeType int) {
	e.g.AddUndirectedEdge(u, v, graph.EdgeType(edgeType), int64(e.step))
}

// AddLabeledEdge adds a directed edge carrying a self-supervision label.
func (e *Engine) AddLabeledEdge(u, v, edgeType int, label float64) {
	e.g.AddLabeledEdge(u, v, graph.EdgeType(edgeType), int64(e.step), label)
}

// SetFeature replaces a node's attribute vector.
func (e *Engine) SetFeature(v int, feat []float64) { e.g.SetFeature(v, feat) }

// SetNodeLabel attaches a self-supervision label to a node.
func (e *Engine) SetNodeLabel(v int, label float64) { e.g.SetLabel(v, label) }

// Graph exposes the engine's dynamic graph snapshot for callers that feed it
// from a stream replayer or need direct read access (e.g. labelers computing
// degree-based truths). Mutate it only between Step calls.
func (e *Engine) Graph() *graph.Dynamic { return e.g }

// NumNodes returns the number of nodes in the snapshot.
func (e *Engine) NumNodes() int { return e.g.N() }

// NumEdges returns the number of directed edges in the snapshot.
func (e *Engine) NumEdges() int { return e.g.NumEdges() }

// CurrentStep returns the index of the next step to execute.
func (e *Engine) CurrentStep() int { return e.step }

// AddQuery subscribes a continuous predictive query.
func (e *Engine) AddQuery(q Query) error {
	if len(q.Anchors) == 0 {
		return fmt.Errorf("streamgnn: query %q has no anchors", q.Name)
	}
	if q.Delta < 1 {
		return fmt.Errorf("streamgnn: query %q needs Delta >= 1", q.Name)
	}
	if q.Labeler == nil {
		return fmt.Errorf("streamgnn: query %q needs a Labeler", q.Name)
	}
	e.wl.AddQuery(&query.EventQuery{
		Name:      q.Name,
		Anchors:   append([]int(nil), q.Anchors...),
		Delta:     q.Delta,
		Threshold: q.Threshold,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return q.Labeler(anchor, step)
		},
	})
	return nil
}

// EnableLinkPrediction subscribes continuous next-step link prediction.
func (e *Engine) EnableLinkPrediction() {
	e.wl.SetLinkTask(query.NewLinkPredTask(e.cfg.Seed + 1))
}

// Step executes one stream step: it reveals truths that arrived with the
// current snapshot, computes embeddings, answers every query, and performs
// the strategy's online training. Mutate the graph (AddNode/AddEdge/...)
// between Step calls to feed the stream.
//
// Each phase — window expiry, forward inference, truth reveal, query
// prediction, training — is timed into the engine's telemetry histograms;
// see Telemetry.
//
//streamlint:steploop
func (e *Engine) Step() error {
	if e.g.N() == 0 {
		return fmt.Errorf("streamgnn: cannot step an empty graph")
	}
	if e.sched == nil {
		// When resuming from a checkpoint, scheduler construction must not
		// advance the restored random stream: its draws (e.g. the KDE seed
		// window init) are overwritten by the restored state anyway, and the
		// uninterrupted run made them before the checkpoint was taken.
		resuming := e.pending != nil
		var rngState uint64
		if resuming {
			rngState = e.src.State()
		}
		s, err := e.mkScheduler()
		if err != nil {
			return err
		}
		e.sched = s
		if err := e.applyPendingRestore(); err != nil {
			return err
		}
		if resuming {
			e.src.SetState(rngState)
		}
	}
	t := e.step
	stepStart := time.Now()

	phaseStart := stepStart
	if e.cfg.WindowSteps > 0 {
		e.g.ExpireEdgesBefore(int64(t - e.cfg.WindowSteps + 1))
	}
	e.tele.phases[phaseExpire].ObserveSince(phaseStart)

	phaseStart = time.Now()
	updated := e.g.Updated()
	e.model.BeginStep(t)
	e.runForward(t)
	e.tele.phases[phaseForward].ObserveSince(phaseStart)

	phaseStart = time.Now()
	e.wl.Reveal(e.g, t)
	e.observeDrift()
	e.tele.phases[phaseReveal].ObserveSince(phaseStart)

	phaseStart = time.Now()
	e.wl.Predict(e.lastEmb, t)
	e.tele.phases[phasePredict].ObserveSince(phaseStart)

	phaseStart = time.Now()
	if e.sched.OnStep(t, updated) {
		// Training moved the model parameters, so every cached embedding row
		// is stale — not just the dirty region. The next forward runs full.
		// Incremental inference therefore pays off on the steps *between*
		// training steps (Interval > 1) and on quiet stretches of the stream.
		e.invalidateInference()
	}
	e.tele.phases[phaseTrain].ObserveSince(phaseStart)
	e.observeSchedule()

	e.g.ResetUpdated()
	e.publishServing(t)
	e.step++
	e.tele.step.ObserveSince(stepStart)
	e.tele.steps.Inc()
	return nil
}

// defaultDirtyFullThreshold is the compute-region fraction above which an
// incremental step falls back to a full forward when the user did not set
// Config.DirtyFullThreshold.
const defaultDirtyFullThreshold = 0.25

func (e *Engine) dirtyFullThreshold() float64 {
	if e.cfg.DirtyFullThreshold > 0 {
		return e.cfg.DirtyFullThreshold
	}
	return defaultDirtyFullThreshold
}

// runForward computes this step's inference embeddings into e.lastEmb.
//
// Without IncrementalForward it is the paper's baseline: a forward over the
// whole snapshot every step (Section III-C). With it, the engine tracks the
// nodes whose features or incident edges changed since the last forward
// (label writes are supervision, not forward input, and don't count),
// expands them to the exact frontier D = Ball(dirty, L) — the nodes
// whose embedding can differ — and forwards only the induced compute region
// Ball(D, L), whose boundary supplies D's receptive fields. Rows of D are
// spliced into the cached embedding matrix; every other row is reused.
// Subgraph normalization uses global degrees and the same summation order as
// the full pass, so for memoryless models the spliced rows are bit-identical
// to a full forward. Recurrent models additionally freeze the hidden state
// of untouched nodes (the DirtyView's CommitRows mask), a bounded-staleness
// approximation; RefreshEverySteps bounds how long a row may stay frozen.
//
// The incremental path falls back to a full forward when the cache is
// invalid (first step, post-restore), a refresh is due, or the compute
// region exceeds dirtyFullThreshold of the graph.
//
// With Shards > 1 the dirty drain, the exact/region expansion and the
// fallback decision are unchanged — computed globally, so they cannot depend
// on P — and only the region forward itself fans out: RegionParts groups the
// region's connected components by owning shard, one worker forwards each
// shard's part, and MergeShards splices the results in shard-index order.
// Component isolation keeps every row bit-identical to the unsharded
// computation; see DESIGN.md §12.
func (e *Engine) runForward(t int) {
	if !e.cfg.IncrementalForward {
		tp := autodiff.NewTape()
		e.lastEmb = e.model.Forward(tp, dgnn.FullView(e.g)).Value
		e.tele.fullForwards.Inc()
		return
	}
	if e.deltaFwd != nil {
		e.runDeltaForward(t)
		return
	}

	dirty := e.g.TakeDirty()
	n := e.g.N()
	full := !e.emb.Valid()
	if !full && e.cfg.RefreshEverySteps > 0 && t-e.emb.LastFullStep() >= e.cfg.RefreshEverySteps {
		full = true
	}
	if !full && len(dirty) == 0 && e.emb.Rows() == n {
		// Quiet step: nothing changed, serve the cache as-is.
		e.lastEmb = e.emb.Matrix()
		e.tele.incForwards.Inc()
		e.tele.skippedRows.Add(int64(n))
		e.tele.dirtyFrac.Observe(0)
		return
	}

	var exact, region []int
	if !full {
		L := e.model.Layers()
		exact = e.g.Ball(dirty, L)
		region = e.g.Ball(exact, L)
		if len(region) == 0 || float64(len(region)) > e.dirtyFullThreshold()*float64(n) {
			full = true
		}
	}
	if full {
		// The forward's output matrix is owned by the store from here on:
		// inference tapes are never released, so its buffer is not pooled.
		tp := autodiff.NewTape()
		out := e.model.Forward(tp, dgnn.FullView(e.g)).Value
		e.emb.SetFull(out, t)
		e.lastEmb = out
		e.tele.fullForwards.Inc()
		e.tele.dirtyFrac.Observe(1)
		if e.shardFwd != nil {
			// The unmasked full forward advanced every live state row, so
			// replica state mirrors no longer match row-for-row.
			e.shardFwd.InvalidateMirrors()
		}
		return
	}

	if e.shards != nil {
		// Sharded fan-out: the exact/region sets and the fallback decision
		// above were computed globally — identically to the unsharded path —
		// so only the grouping of the work differs with P. RegionParts keeps
		// connected components whole, making each shard's rows bit-identical
		// to the same rows of the single-region forward; the merge then
		// splices them in fixed shard-index order.
		parts := e.g.RegionParts(region)
		var res []dgnn.ShardForward
		if e.shardFwd != nil {
			res = e.shardFwd.ForwardShards(t, parts, exact)
		} else {
			res = dgnn.ForwardShards(e.g, e.model, parts, exact)
		}
		mergeStart := time.Now()
		dgnn.MergeShards(e.emb, res)
		e.tele.shardMerge.ObserveSince(mergeStart)
		for s := range res {
			if res[s].Out != nil {
				e.tele.shardRows[s].Add(int64(len(res[s].IDs)))
			}
		}
	} else {
		sub := e.g.Induced(region, region[0])
		rows := dgnn.LocalRows(sub.Nodes, exact)
		tp := autodiff.NewTape()
		out := e.model.Forward(tp, dgnn.DirtyView(sub, rows)).Value
		e.emb.Splice(out, rows, exact)
	}
	e.lastEmb = e.emb.Matrix()
	e.tele.incForwards.Inc()
	e.tele.skippedRows.Add(int64(n - len(region)))
	e.tele.dirtyFrac.Observe(float64(len(region)) / float64(n))
}

// invalidateInference drops every inference cache after a parameter change:
// the embedding store and, in delta mode, the per-stage delta caches (their
// rows were produced by the old weights).
func (e *Engine) invalidateInference() {
	e.emb.Invalidate()
	e.delta.Invalidate()
	if e.shardFwd != nil {
		e.shardFwd.InvalidateMirrors()
	}
}

// runDeltaForward is the event-driven variant of the incremental forward
// (Config.DeltaForward): per-edge deltas propagate stage by stage through the
// model's delta decomposition, recomputing single rows and pruning frontier
// nodes whose change stays within DeltaEpsilon. The fallback ladder is
//
//	invalid caches / refresh due  →  full delta forward (refills caches)
//	quiet step                    →  serve the cache
//	frontier above the candidate budget (dirtyFullThreshold · n per stage)
//	                              →  abort, commit nothing, full delta forward
//
// The full delta forward is bit-identical to the tape's full forward, so the
// serving path and checkpoint regime see exactly the matrices they would see
// under region splicing's full fallback.
func (e *Engine) runDeltaForward(t int) {
	dirty := e.g.TakeDirty()
	n := e.g.N()
	full := !e.emb.Valid() || !e.delta.Valid()
	if !full && e.cfg.RefreshEverySteps > 0 && t-e.emb.LastFullStep() >= e.cfg.RefreshEverySteps {
		full = true
	}
	if !full && len(dirty) == 0 && len(e.delta.LastCommitted()) == 0 && e.emb.Rows() == n {
		// Quiet step: no graph change and no recurrent-state drift pending.
		e.lastEmb = e.emb.Matrix()
		e.tele.incForwards.Inc()
		e.tele.skippedRows.Add(int64(n))
		e.tele.dirtyFrac.Observe(0)
		return
	}
	if !full {
		maxCand := int(e.dirtyFullThreshold() * float64(n))
		res := dgnn.RunDelta(e.g, e.deltaFwd, &e.delta, e.emb, dirty, e.cfg.DeltaEpsilon, maxCand)
		if !res.Aborted {
			e.lastEmb = res.Out
			e.tele.deltaForwards.Inc()
			e.tele.incForwards.Inc()
			e.tele.deltaCandidateRows.Add(int64(res.Candidates))
			e.tele.deltaPrunedRows.Add(int64(res.Pruned))
			e.tele.skippedRows.Add(int64(n - (res.Candidates - res.Pruned)))
			if res.Candidates > 0 {
				e.tele.deltaPrunedFrac.Observe(float64(res.Pruned) / float64(res.Candidates))
			}
			e.tele.dirtyFrac.Observe(float64(res.Candidates) / float64(n*e.deltaFwd.DeltaStages()))
			return
		}
		e.tele.deltaAborts.Inc()
	}
	// Full delta forward: refills every stage cache alongside the embedding,
	// bit-identical to the tape's full pass.
	out := dgnn.RunDeltaFull(e.g, e.deltaFwd, &e.delta)
	e.emb.SetFull(out, t)
	e.lastEmb = out
	e.tele.fullForwards.Inc()
	e.tele.dirtyFrac.Observe(1)
}

// observeSchedule records the dependency scheduler's per-step group/unit
// fraction against the learner-counter watermarks (a training step may run
// several adaptive rounds; the observation aggregates them).
func (e *Engine) observeSchedule() {
	if !e.cfg.DependencySchedule || e.sched == nil {
		return
	}
	a := e.sched.Adaptive
	if a == nil {
		return
	}
	groups := atomic.LoadInt64(&a.SchedGroups)
	units := atomic.LoadInt64(&a.SchedUnits)
	dg := groups - e.tele.prevSchedGroups
	du := units - e.tele.prevSchedUnits
	e.tele.prevSchedGroups, e.tele.prevSchedUnits = groups, units
	if du > 0 {
		e.tele.schedGroupFrac.Observe(float64(dg) / float64(du))
	}
}

// applyPendingRestore pushes checkpoint state stashed by LoadCheckpoint into
// the freshly created scheduler.
func (e *Engine) applyPendingRestore() error {
	p := e.pending
	if p == nil {
		return nil
	}
	e.pending = nil
	e.sched.TrainSteps = p.trainSteps
	a := e.sched.Adaptive
	if a == nil {
		return nil
	}
	if len(p.chips) > 0 {
		if err := a.Chips.Restore(p.chips); err != nil {
			return err
		}
	}
	a.Trained, a.Moves = p.trained, p.moves
	atomic.StoreInt64(&a.ParallelUnits, p.parallelUnits)
	atomic.StoreInt64(&a.SchedSteps, p.schedSteps)
	atomic.StoreInt64(&a.SchedGroups, p.schedGroups)
	atomic.StoreInt64(&a.SchedUnits, p.schedUnits)
	atomic.StoreInt64(&a.SchedCollapsed, p.schedCollapse)
	// Sync the telemetry watermarks so the first post-resume step observes
	// only its own group fraction, not the whole restored history.
	e.tele.prevSchedGroups, e.tele.prevSchedUnits = p.schedGroups, p.schedUnits
	if p.hasKDE {
		if ks, ok := a.Sampler().(*core.KDESampler); ok {
			if err := ks.RestoreSeedState(p.kdeSeeds, p.kdeOldest); err != nil {
				return err
			}
		}
	}
	return nil
}

// observeDrift feeds this step's mean prediction loss to the detector.
func (e *Engine) observeDrift() {
	e.driftFlag = false
	outs := e.wl.Outcomes()
	if e.driftDet == nil || len(outs) == e.seenOutcomes {
		e.seenOutcomes = len(outs)
		return
	}
	var sum float64
	n := 0
	for _, o := range outs[e.seenOutcomes:] {
		d := o.Score - o.Truth
		sum += d * d
		n++
	}
	e.seenOutcomes = len(outs)
	if n > 0 {
		e.driftFlag = e.driftDet.Add(sum / float64(n))
	}
}

// DriftDetected reports whether the last Step's revealed query losses
// triggered the drift detector (always false unless Config.DriftDetection).
func (e *Engine) DriftDetected() bool { return e.driftFlag }

// Embedding returns a copy of node v's current embedding (nil before the
// first Step or for unknown nodes).
func (e *Engine) Embedding(v int) []float64 {
	if e.lastEmb == nil || v < 0 || v >= e.lastEmb.Rows {
		return nil
	}
	out := make([]float64, e.lastEmb.Cols)
	copy(out, e.lastEmb.Row(v))
	return out
}

// TakeAlerts drains the alerts fired since the last call.
func (e *Engine) TakeAlerts() []Alert {
	raw := e.wl.TakeAlerts()
	out := make([]Alert, len(raw))
	for i, a := range raw {
		out[i] = Alert{Query: a.Query, Anchor: a.Anchor, ForStep: a.ForStep, Score: a.Score}
	}
	return out
}

// Outcomes returns all resolved predictions so far.
func (e *Engine) Outcomes() []Outcome {
	raw := e.wl.Outcomes()
	out := make([]Outcome, len(raw))
	for i, o := range raw {
		out[i] = Outcome{Query: o.Query, Anchor: o.Anchor, Step: o.Step,
			Score: o.Score, Truth: o.Truth, Event: o.Event}
	}
	return out
}

// Stats returns a snapshot of the online trainer's internals. After
// LoadCheckpoint (and before the first Step re-creates the scheduler) the
// restored counters are reported from the stashed checkpoint state, so a
// resumed engine never shows a dip to zero.
func (e *Engine) Stats() Stats {
	var s Stats
	// Field-by-field atomic loads: the trainer's workers bump these counters
	// with atomic adds, so a whole-struct copy here would race them.
	ts := &e.trainer.Stats
	s.SelfNodeTargets = int(atomic.LoadInt64(&ts.SelfNodeTargets))
	s.SelfEdgeTargets = int(atomic.LoadInt64(&ts.SelfEdgeTargets))
	s.SupNodeTargets = int(atomic.LoadInt64(&ts.SupNodeTargets))
	s.SupPairTargets = int(atomic.LoadInt64(&ts.SupPairTargets))
	s.ReplayTargets = int(atomic.LoadInt64(&ts.ReplayTargets))
	cs := e.g.PartitionCacheStats()
	s.CacheHits = cs.Hits
	s.CacheMisses = cs.Misses
	s.CacheInvalidations = cs.Invalidations
	s.CacheHitRate = cs.HitRate()
	if e.sched == nil {
		if p := e.pending; p != nil {
			s.TrainedPartitions = p.trained
			s.ChipMoves = p.moves
			s.ParallelUnits = p.parallelUnits
			s.SchedSteps = p.schedSteps
			s.SchedGroups = p.schedGroups
			s.SchedUnits = p.schedUnits
			s.SchedCollapsedSteps = p.schedCollapse
		}
		return s
	}
	if a := e.sched.Adaptive; a != nil {
		s.TrainedPartitions = a.Trained
		s.ChipMoves = a.Moves
		s.ParallelUnits = atomic.LoadInt64(&a.ParallelUnits)
		s.SchedSteps = atomic.LoadInt64(&a.SchedSteps)
		s.SchedGroups = atomic.LoadInt64(&a.SchedGroups)
		s.SchedUnits = atomic.LoadInt64(&a.SchedUnits)
		s.SchedCollapsedSteps = atomic.LoadInt64(&a.SchedCollapsed)
		probs := a.Probabilities()
		if len(probs) > 1 {
			var h float64
			for _, p := range probs {
				if p > 0 {
					h -= p * math.Log(p)
				}
			}
			s.ChipEntropy = h / math.Log(float64(len(probs)))
		}
		type nodeProb struct {
			v int
			p float64
		}
		top := make([]nodeProb, 0, len(probs))
		for v, p := range probs {
			top = append(top, nodeProb{v, p})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].p > top[j].p })
		for i := 0; i < len(top) && i < 5; i++ {
			s.TopChipNodes = append(s.TopChipNodes, top[i].v)
		}
	}
	return s
}

// Metrics summarizes all resolved predictions (and link-prediction results
// when enabled). Event and link quality land in separate fields; see the
// Metrics type for the aggregate semantics of N and AUC.
func (e *Engine) Metrics() Metrics {
	outs := e.wl.Outcomes()
	var m Metrics
	var scores, truths []float64
	var events []bool
	for _, o := range outs {
		scores = append(scores, o.Score)
		truths = append(truths, o.Truth)
		events = append(events, o.Event)
	}
	m.EventN = len(outs)
	if len(outs) > 0 {
		m.MSE = metrics.MSE(scores, truths)
		m.EventAUC = metrics.AUC(scores, events)
		m.AUC = m.EventAUC
	}
	if lt := e.wl.LinkTask(); lt != nil {
		ls, ll := lt.Scores()
		if len(ls) > 0 {
			m.LinkN = len(ls)
			m.Accuracy = metrics.Accuracy(ls, ll, 0) // logits: threshold 0
			m.LinkAUC = metrics.AUC(ls, ll)
			m.AUC = m.LinkAUC // legacy aggregate: link wins when present
			m.MRR = metrics.MRR(lt.Ranks())
		}
	}
	m.N = m.EventN + m.LinkN
	return m
}
