module streamgnn

go 1.22
