package streamgnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"streamgnn/internal/dgnn"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpoint is the gob-encoded engine state: everything *learned* — model
// and head parameters, recurrent state, the chip distribution — plus the
// step counter. The graph snapshot itself is NOT included: reconstruct it by
// replaying the stream (see internal/stream's JSONL encoding), then load the
// checkpoint to resume with a trained model. Optimizer moments and pending
// (not yet revealed) predictions are transient and start fresh on resume.
type checkpoint struct {
	Version  int
	Model    string
	Strategy string
	Hidden   int
	Step     int
	Params   []dgnn.StateDump
	States   []dgnn.StateDump
	Chips    []int
}

// SaveCheckpoint writes the engine's learned state to w.
func (e *Engine) SaveCheckpoint(w io.Writer) error {
	ck := checkpoint{
		Version:  checkpointVersion,
		Model:    e.cfg.Model,
		Strategy: e.cfg.Strategy,
		Hidden:   e.cfg.Hidden,
		Step:     e.step,
		States:   e.model.DumpState(),
	}
	for _, p := range e.allParams() {
		ck.Params = append(ck.Params, dgnn.StateDump{
			Rows: p.Value.Rows, Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	if e.sched != nil && e.sched.Adaptive != nil {
		ck.Chips = e.sched.Adaptive.Chips.Counts()
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint restores learned state saved by SaveCheckpoint into a
// compatible engine (same model, strategy and hidden size). The graph
// snapshot must be reconstructed separately before stepping resumes.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("streamgnn: decoding checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return fmt.Errorf("streamgnn: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Model != e.cfg.Model || ck.Strategy != e.cfg.Strategy || ck.Hidden != e.cfg.Hidden {
		return fmt.Errorf("streamgnn: checkpoint is for %s/%s/h=%d, engine is %s/%s/h=%d",
			ck.Model, ck.Strategy, ck.Hidden, e.cfg.Model, e.cfg.Strategy, e.cfg.Hidden)
	}
	params := e.allParams()
	if len(ck.Params) != len(params) {
		return fmt.Errorf("streamgnn: checkpoint has %d parameters, engine has %d", len(ck.Params), len(params))
	}
	for i, p := range params {
		d := ck.Params[i]
		if d.Rows != p.Value.Rows || d.Cols != p.Value.Cols || len(d.Data) != len(p.Value.Data) {
			return fmt.Errorf("streamgnn: parameter %d shape mismatch (%dx%d vs %dx%d)",
				i, d.Rows, d.Cols, p.Value.Rows, p.Value.Cols)
		}
	}
	for i, p := range params {
		copy(p.Value.Data, ck.Params[i].Data)
	}
	if err := e.model.RestoreState(ck.States); err != nil {
		return err
	}
	e.step = ck.Step
	e.pendingChips = ck.Chips
	if e.sched != nil && e.sched.Adaptive != nil && len(ck.Chips) > 0 {
		if err := e.sched.Adaptive.Chips.Restore(ck.Chips); err != nil {
			return err
		}
		e.pendingChips = nil
	}
	return nil
}
