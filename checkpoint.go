package streamgnn

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync/atomic"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/drift"
	"streamgnn/internal/query"
)

// checkpointVersion guards the on-disk format. Version 2 extended the
// learned-state-only v1 with the full runtime state (random stream,
// optimizer moments, workload, scheduler counters), making a graceful
// shutdown + resume reproduce the uninterrupted run. Version 3 added the
// incremental-forward embedding cache (Emb/EmbLastFull), so a resumed
// incremental run splices into the same matrix instead of starting with a
// forced full forward. Version 4 extended the optimizer state with WinGNN's
// gradient-aggregation window (nested inner state, window RNG position,
// gradient history) — new fields on the gob-encoded OptState, so v3
// checkpoints still decode; checkpointVersionMin marks the oldest readable
// format. A v3 WinGNN checkpoint simply carries no optimizer state (the old
// winOptimizer was not Stateful) and resumes with an empty window. Version 5
// records the shard layout (Shards/ShardLayout) so a resumed engine can be
// validated against — and a service can adopt — the saved partition; the
// fields gob-decode to zero from older checkpoints, which skips the
// validation (pre-v5 runs were always unsharded). Version 6 adds the
// delta-propagation caches (Delta/DeltaCommitted/HasDelta) so a resumed
// DeltaForward run with a nonzero epsilon continues from the exact stage
// caches of the uninterrupted run instead of resynchronizing with a full
// forward; the fields gob-decode to zero from v3-v5 checkpoints, which simply
// leaves the caches invalid (the first resumed delta step runs full — at
// epsilon 0 that is bit-identical anyway). Version 7 adds the dependency
// scheduler's observability counters (SchedSteps/SchedGroups/SchedUnits/
// SchedCollapsed) — the scheduler keeps no other persistent state (its
// conflict scratch and gradient sinks are rebuilt every step), so resumed
// runs stay bit-identical; the fields gob-decode to zero from older
// checkpoints.
const (
	checkpointVersion    = 7
	checkpointVersionMin = 3
)

// checkpoint is the gob-encoded engine state: everything *learned* — model
// and head parameters, recurrent state, the chip distribution — plus the
// runtime state needed to continue the exact trajectory: the engine's random
// stream, optimizer moments, the workload's revealed/pending/replay state,
// KDE seed window, drift-detector statistics, and the observability
// counters. The graph snapshot itself is NOT included: reconstruct it by
// replaying the stream (see internal/stream's JSONL encoding), then load the
// checkpoint to resume.
type checkpoint struct {
	Version  int
	Model    string
	Strategy string
	Hidden   int
	Step     int
	Params   []dgnn.StateDump
	States   []dgnn.StateDump
	Chips    []int

	// Runtime state (v2).
	RngState      uint64
	TrainerStats  [5]int64
	TrainSteps    int
	Trained       int
	Moves         int
	ParallelUnits int64
	KDESeeds      []int
	KDEOldest     int
	HasKDESeeds   bool
	Opt           *autodiff.OptState
	Workload      query.WorkloadState
	Drift         *drift.PageHinkleyState
	SeenOutcomes  int

	// Incremental-forward embedding cache (v3); nil when the cache was
	// invalid at save time (engine not in incremental mode, or pre-Step).
	Emb         *dgnn.StateDump
	EmbLastFull int

	// Shard layout (v5): the effective shard count (1 when unsharded) and
	// the layout name ("" when unsharded). 0 in pre-v5 checkpoints.
	Shards      int
	ShardLayout string

	// Delta-propagation caches (v6): one stage-output dump per model stage
	// plus the ids whose recurrent state the last pass committed. HasDelta
	// is false — and the slices nil — when the engine was not in delta mode
	// or the caches were invalid at save time, and in pre-v6 checkpoints.
	Delta          []dgnn.StateDump
	DeltaCommitted []int
	HasDelta       bool

	// Dependency-scheduler counters (v7): steps, groups, units, collapsed
	// steps. Zero in pre-v7 checkpoints.
	SchedSteps     int64
	SchedGroups    int64
	SchedUnits     int64
	SchedCollapsed int64
}

// CheckpointInfo is the identifying header of a saved checkpoint.
type CheckpointInfo struct {
	Version  int
	Model    string
	Strategy string
	Hidden   int
	// Step is the next step the resumed engine will execute.
	Step int
	// Shards is the saved run's effective shard count (1 = unsharded, 0 =
	// pre-v5 checkpoint) and ShardLayout its layout name; a resuming
	// service configures its engine to match (cmd/queryd does).
	Shards      int
	ShardLayout string
}

// PeekCheckpoint decodes just the identifying header of a checkpoint, so a
// service can learn how far to replay the stream (Info.Step) and which
// model/strategy to configure before constructing the engine.
func PeekCheckpoint(r io.Reader) (CheckpointInfo, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return CheckpointInfo{}, fmt.Errorf("streamgnn: decoding checkpoint: %w", err)
	}
	return CheckpointInfo{Version: ck.Version, Model: ck.Model, Strategy: ck.Strategy,
		Hidden: ck.Hidden, Step: ck.Step, Shards: ck.Shards, ShardLayout: ck.ShardLayout}, nil
}

// ModelSnapshot is the learned-state slice of a checkpoint — identifying
// header plus parameter and recurrent-state dumps — the part a shard replica
// needs to seed its model mirror from a coordinator checkpoint without
// constructing a full Engine.
type ModelSnapshot struct {
	Info   CheckpointInfo
	Params []dgnn.StateDump
	States []dgnn.StateDump
}

// ReadModelSnapshot decodes the learned state of a checkpoint written by any
// readable version (v3..v7): the replica-path loader of internal/cluster.
// Version bounds are enforced exactly as LoadCheckpoint does; all other
// validation (parameter shapes against a concrete model) is the caller's.
func ReadModelSnapshot(r io.Reader) (*ModelSnapshot, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("streamgnn: decoding checkpoint: %w", err)
	}
	if ck.Version < checkpointVersionMin || ck.Version > checkpointVersion {
		return nil, fmt.Errorf("streamgnn: checkpoint version %d, want %d..%d", ck.Version, checkpointVersionMin, checkpointVersion)
	}
	return &ModelSnapshot{
		Info: CheckpointInfo{Version: ck.Version, Model: ck.Model, Strategy: ck.Strategy,
			Hidden: ck.Hidden, Step: ck.Step, Shards: ck.Shards, ShardLayout: ck.ShardLayout},
		Params: ck.Params,
		States: ck.States,
	}, nil
}

// SaveCheckpoint writes the engine's learned and runtime state to w.
func (e *Engine) SaveCheckpoint(w io.Writer) error {
	ck := checkpoint{
		Version:      checkpointVersion,
		Model:        e.cfg.Model,
		Strategy:     e.cfg.Strategy,
		Hidden:       e.cfg.Hidden,
		Step:         e.step,
		States:       e.model.DumpState(),
		RngState:     e.src.State(),
		Workload:     e.wl.DumpState(),
		SeenOutcomes: e.seenOutcomes,
		Emb:          e.emb.Dump(),
		EmbLastFull:  e.emb.LastFullStep(),
		Shards:       1,
	}
	if e.shards != nil {
		ck.Shards = e.shards.P
		ck.ShardLayout = e.shards.Layout.String()
	}
	if e.deltaFwd != nil {
		ck.Delta, ck.DeltaCommitted, ck.HasDelta = e.delta.DeltaDump()
	}
	for _, p := range e.allParams() {
		ck.Params = append(ck.Params, dgnn.StateDump{
			Rows: p.Value.Rows, Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	st := &e.trainer.Stats
	ck.TrainerStats = [5]int64{
		atomic.LoadInt64(&st.SelfNodeTargets),
		atomic.LoadInt64(&st.SelfEdgeTargets),
		atomic.LoadInt64(&st.SupNodeTargets),
		atomic.LoadInt64(&st.SupPairTargets),
		atomic.LoadInt64(&st.ReplayTargets),
	}
	if opt, ok := e.opt.(autodiff.Stateful); ok {
		os := opt.DumpState()
		ck.Opt = &os
	}
	if e.driftDet != nil {
		ds := e.driftDet.State()
		ck.Drift = &ds
	}
	switch {
	case e.sched != nil:
		ck.TrainSteps = e.sched.TrainSteps
		if a := e.sched.Adaptive; a != nil {
			ck.Chips = a.Chips.Counts()
			ck.Trained, ck.Moves = a.Trained, a.Moves
			ck.ParallelUnits = atomic.LoadInt64(&a.ParallelUnits)
			ck.SchedSteps = atomic.LoadInt64(&a.SchedSteps)
			ck.SchedGroups = atomic.LoadInt64(&a.SchedGroups)
			ck.SchedUnits = atomic.LoadInt64(&a.SchedUnits)
			ck.SchedCollapsed = atomic.LoadInt64(&a.SchedCollapsed)
			if ks, ok := a.Sampler().(*core.KDESampler); ok {
				ck.KDESeeds, ck.KDEOldest = ks.SeedState()
				ck.HasKDESeeds = true
			}
		}
	case e.pending != nil:
		// Saved after a restore but before the first Step: pass the stashed
		// state through unchanged.
		p := e.pending
		ck.Chips = append([]int(nil), p.chips...)
		ck.TrainSteps, ck.Trained, ck.Moves, ck.ParallelUnits = p.trainSteps, p.trained, p.moves, p.parallelUnits
		ck.SchedSteps, ck.SchedGroups = p.schedSteps, p.schedGroups
		ck.SchedUnits, ck.SchedCollapsed = p.schedUnits, p.schedCollapse
		ck.KDESeeds, ck.KDEOldest, ck.HasKDESeeds = append([]int(nil), p.kdeSeeds...), p.kdeOldest, p.hasKDE
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint restores state saved by SaveCheckpoint into a compatible
// engine (same model, strategy and hidden size). The graph snapshot must be
// reconstructed separately — by replaying the stream up to the checkpoint's
// step — before stepping resumes, and queries (plus the link task, if it was
// enabled) must be re-registered before the call. After a successful load,
// continued stepping follows the exact trajectory of the uninterrupted run:
// the random stream, optimizer moments, replay buffers and chip distribution
// all pick up where they left off.
func (e *Engine) LoadCheckpoint(r io.Reader) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("streamgnn: decoding checkpoint: %w", err)
	}
	if ck.Version < checkpointVersionMin || ck.Version > checkpointVersion {
		return fmt.Errorf("streamgnn: checkpoint version %d, want %d..%d", ck.Version, checkpointVersionMin, checkpointVersion)
	}
	if ck.Model != e.cfg.Model || ck.Strategy != e.cfg.Strategy || ck.Hidden != e.cfg.Hidden {
		return fmt.Errorf("streamgnn: checkpoint is for %s/%s/h=%d, engine is %s/%s/h=%d",
			ck.Model, ck.Strategy, ck.Hidden, e.cfg.Model, e.cfg.Strategy, e.cfg.Hidden)
	}
	if ck.Shards != 0 { // 0 = pre-v5 checkpoint: always unsharded, skip
		engShards, engLayout := 1, ""
		if e.shards != nil {
			engShards, engLayout = e.shards.P, e.shards.Layout.String()
		}
		if ck.Shards != engShards || ck.ShardLayout != engLayout {
			return fmt.Errorf("streamgnn: checkpoint is for shards=%d/%s, engine is shards=%d/%s (resume with the saved partition; services adopt it from CheckpointInfo)",
				ck.Shards, ck.ShardLayout, engShards, engLayout)
		}
	}
	params := e.allParams()
	if len(ck.Params) != len(params) {
		return fmt.Errorf("streamgnn: checkpoint has %d parameters, engine has %d", len(ck.Params), len(params))
	}
	for i, p := range params {
		d := ck.Params[i]
		if d.Rows != p.Value.Rows || d.Cols != p.Value.Cols || len(d.Data) != len(p.Value.Data) {
			return fmt.Errorf("streamgnn: parameter %d shape mismatch (%dx%d vs %dx%d)",
				i, d.Rows, d.Cols, p.Value.Rows, p.Value.Cols)
		}
	}
	// All validations that can fail cleanly come before any mutation.
	if ck.Opt != nil {
		opt, ok := e.opt.(autodiff.Stateful)
		if !ok {
			return fmt.Errorf("streamgnn: checkpoint carries optimizer state but the %s optimizer cannot restore it", e.cfg.Model)
		}
		if err := opt.RestoreState(*ck.Opt); err != nil {
			return err
		}
	}
	if err := e.wl.RestoreState(ck.Workload); err != nil {
		return err
	}
	for i, p := range params {
		copy(p.Value.Data, ck.Params[i].Data)
	}
	if err := e.model.RestoreState(ck.States); err != nil {
		return err
	}
	e.step = ck.Step
	e.src.SetState(ck.RngState)
	e.seenOutcomes = ck.SeenOutcomes
	st := &e.trainer.Stats
	atomic.StoreInt64(&st.SelfNodeTargets, ck.TrainerStats[0])
	atomic.StoreInt64(&st.SelfEdgeTargets, ck.TrainerStats[1])
	atomic.StoreInt64(&st.SupNodeTargets, ck.TrainerStats[2])
	atomic.StoreInt64(&st.SupPairTargets, ck.TrainerStats[3])
	atomic.StoreInt64(&st.ReplayTargets, ck.TrainerStats[4])
	if e.driftDet != nil && ck.Drift != nil {
		e.driftDet.RestoreState(*ck.Drift)
	}
	e.pending = &pendingRestore{
		chips:         ck.Chips,
		trainSteps:    ck.TrainSteps,
		trained:       ck.Trained,
		moves:         ck.Moves,
		parallelUnits: ck.ParallelUnits,
		schedSteps:    ck.SchedSteps,
		schedGroups:   ck.SchedGroups,
		schedUnits:    ck.SchedUnits,
		schedCollapse: ck.SchedCollapsed,
		kdeSeeds:      ck.KDESeeds,
		kdeOldest:     ck.KDEOldest,
		hasKDE:        ck.HasKDESeeds,
	}
	if e.sched != nil {
		if err := e.applyPendingRestore(); err != nil {
			return err
		}
	}
	if err := e.emb.Restore(ck.Emb, ck.EmbLastFull); err != nil {
		return err
	}
	if ck.HasDelta && e.deltaFwd != nil {
		// DeltaRestore validates the stage count and widths before mutating;
		// a checkpoint without delta caches (pre-v6, or saved invalid) leaves
		// them invalid and the first resumed delta step runs full.
		if err := e.delta.DeltaRestore(e.deltaFwd, ck.Delta, ck.DeltaCommitted); err != nil {
			return err
		}
	} else {
		e.delta.Invalidate()
	}
	if e.emb.Valid() {
		e.lastEmb = e.emb.Matrix()
	}
	// The caller rebuilt the graph by replaying the whole stream, which marks
	// every node updated; the saved run had cleared the set at the end of its
	// last step. Clear it so the first resumed step sees only the mutations
	// applied after this load. The forward-dirty set accumulated the same
	// replay churn: drain it too, or the first resumed incremental step would
	// recompute the whole graph.
	e.g.ResetUpdated()
	e.g.TakeDirty()
	return nil
}
