package streamgnn

import (
	"math"
	"math/rand"
	"testing"
)

// Regression: Config used to treat the zero value of UpdateBias, StopProb
// and SeedKeep as "unset" and silently substitute the paper defaults, which
// made the p_u = 0 and p = 0 ablation points unreachable. The fields are now
// pointers with explicit-set semantics.
func TestConfigExplicitZeroHonored(t *testing.T) {
	// nil falls back to the paper defaults.
	_, cc := DefaultConfig().fill()
	if cc.PUpdate != 0.5 || cc.StopProb != 0.5 || cc.SeedKeep != 0.8 {
		t.Fatalf("nil fields lost the paper defaults: p_u=%v q=%v p=%v", cc.PUpdate, cc.StopProb, cc.SeedKeep)
	}

	// An explicit zero is honored, not swallowed.
	cfg := DefaultConfig()
	cfg.UpdateBias = Float(0)
	cfg.SeedKeep = Float(0)
	_, cc = cfg.fill()
	if cc.PUpdate != 0 {
		t.Fatalf("UpdateBias=0 mapped to p_u=%v, want 0", cc.PUpdate)
	}
	if cc.SeedKeep != 0 {
		t.Fatalf("SeedKeep=0 mapped to p=%v, want 0", cc.SeedKeep)
	}

	// Non-zero explicit values still map through.
	cfg = DefaultConfig()
	cfg.UpdateBias = Float(0.25)
	cfg.StopProb = Float(0.75)
	_, cc = cfg.fill()
	if cc.PUpdate != 0.25 || cc.StopProb != 0.75 {
		t.Fatalf("explicit values lost: p_u=%v q=%v", cc.PUpdate, cc.StopProb)
	}

	// StopProb = 0 is genuinely invalid (the walk would never stop) and is
	// rejected eagerly at construction, not at the first Step.
	cfg = DefaultConfig()
	cfg.StopProb = Float(0)
	if _, err := NewEngine(3, cfg); err == nil {
		t.Fatal("StopProb=0 accepted")
	}

	// An engine with the update-set bias disabled runs end to end.
	cfg = DefaultConfig()
	cfg.Hidden = 6
	cfg.UpdateBias = Float(0)
	endToEnd(t, cfg, 3)
}

// Regression: Engine.Metrics used to overwrite the event-query AUC with the
// link-prediction AUC and fold both sample counts into one N, so a mixed
// workload could not tell the two tasks apart. Event and link quality now
// land in separate fields, with N/AUC kept as documented aggregates.
func TestMetricsSeparateEventAndLink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 6
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableLinkPrediction()

	const n = 12
	r := rand.New(rand.NewSource(7))
	truth := make(map[[2]int]float64)
	for i := 0; i < n; i++ {
		e.AddNode(0, []float64{float64(i % 2), 0, 1})
		e.SetNodeLabel(i, float64(i%2))
	}
	for i := 0; i < n; i++ {
		e.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	// Threshold between the two activity regimes so revealed outcomes carry
	// both event classes and the event AUC is well-defined.
	err = e.AddQuery(Query{
		Name: "activity", Anchors: []int{0, 5}, Delta: 1, Threshold: 0.7,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := truth[[2]int{anchor, step}]
			return v, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		act := 0.5 + 0.4*float64(s%2)
		for _, a := range []int{0, 5} {
			e.SetFeature(a, []float64{act, 1, 1})
			truth[[2]int{a, s}] = act + 0.05*r.Float64()
		}
		e.AddUndirectedEdge(r.Intn(n), r.Intn(n), 0)
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}

	m := e.Metrics()
	if m.EventN == 0 {
		t.Fatal("no event outcomes resolved")
	}
	if m.LinkN == 0 {
		t.Fatal("no link predictions evaluated")
	}
	if m.N != m.EventN+m.LinkN {
		t.Fatalf("N = %d, want EventN+LinkN = %d", m.N, m.EventN+m.LinkN)
	}
	if math.IsNaN(m.EventAUC) {
		t.Fatal("event AUC is NaN despite mixed event classes")
	}
	if m.AUC != m.LinkAUC {
		t.Fatalf("legacy AUC = %v, want the link AUC %v when link prediction is active", m.AUC, m.LinkAUC)
	}
	// The event AUC must come from the event outcomes alone: it has to match
	// a recomputation over Outcomes(), independent of the link scores.
	if m.EventAUC == m.LinkAUC {
		t.Logf("event and link AUC coincide (%v); fields still reported separately", m.EventAUC)
	}
}
