package bench

import (
	"fmt"
	"time"

	"streamgnn"
)

// DeltaAB compares region-splicing incremental forward against event-driven
// delta propagation (Config.DeltaForward) on a hub-heavy stream: the graph is
// a ring of hub nodes, each fanning out to its own leaf cluster, and every
// step rewrites a handful of leaf features around one rotating hub. The
// splice region Ball(Ball(S,L),L) then spans several whole clusters — past
// the DirtyFullThreshold budget — so the splice ladder falls back to a full
// forward on every step, while the delta pass recomputes only the touched
// cluster stage by stage. This is the workload the delta path exists for.
type DeltaAB struct {
	Nodes        int
	Hubs         int
	DirtyPerStep int
	Model        string
	Epsilon      float64
	// SpliceStepsPerSec / DeltaStepsPerSec are whole-Step throughputs of the
	// two incremental engines on the identical stream; Speedup their ratio.
	SpliceStepsPerSec float64
	DeltaStepsPerSec  float64
	Speedup           float64
	// SpliceFullForwards counts the splice engine's fallback full forwards —
	// the evidence that ball expansion blew the budget. SpliceSteps is its
	// total step count for scale.
	SpliceFullForwards int64
	SpliceSteps        int64
	// DeltaForwards / DeltaAborts break down how the delta engine's steps
	// were served; CandidateRows totals the stage rows its passes touched
	// and PrunedFraction is the mean pruned-frontier fraction per pass.
	DeltaForwards  int64
	DeltaAborts    int64
	CandidateRows  int64
	PrunedFraction float64
}

// newHubEngine builds an engine over a hub-and-spoke graph: hubs hubs in a
// ring, each connected to its cluster's n/hubs−1 leaves. Training is
// effectively disabled (huge Interval) so the comparison isolates inference.
func newHubEngine(model string, n, hubs int, delta bool) (*streamgnn.Engine, error) {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = model
	cfg.Strategy = streamgnn.StrategyWeighted
	cfg.Hidden = 16
	cfg.Seed = 42
	cfg.Interval = 1 << 30
	cfg.IncrementalForward = true
	if delta {
		cfg.DeltaForward = true
		cfg.DeltaEpsilon = deltaBenchEpsilon
	}
	e, err := streamgnn.NewEngine(8, cfg)
	if err != nil {
		return nil, err
	}
	sz := n / hubs
	for i := 0; i < n; i++ {
		f := make([]float64, 8)
		f[i%8] = 1
		e.AddNode(0, f)
	}
	for c := 0; c < hubs; c++ {
		hub := c * sz
		for leaf := hub + 1; leaf < hub+sz; leaf++ {
			e.AddUndirectedEdge(hub, leaf, 0)
		}
		e.AddUndirectedEdge(hub, ((c+1)%hubs)*sz, 0)
	}
	return e, nil
}

// deltaBenchEpsilon is the pruning threshold the delta engine runs at: large
// enough that mutateHub's sub-epsilon nudges prune at the first stage, small
// enough that the real rewrites always propagate.
const deltaBenchEpsilon = 1e-4

// mutateHub applies step s's mutations: dirty leaf-feature rewrites inside
// the rotating cluster s%hubs plus one new leaf-leaf edge there, and an equal
// number of sub-epsilon feature nudges in the opposite cluster. Every touched
// node is at most two hops from a hub, so the splice frontier absorbs whole
// clusters while the delta frontier stays cluster-local — and the nudged
// leaves prune at the first stage instead of waking their cluster at all.
func mutateHub(e *streamgnn.Engine, n, hubs, dirty, s int) {
	sz := n / hubs
	hub := (s % hubs) * sz
	for k := 0; k < dirty; k++ {
		v := hub + 1 + (s*31+k*97)%(sz-1)
		f := make([]float64, 8)
		f[(s+k)%8] = float64(s%7) * 0.3
		e.SetFeature(v, f)
	}
	a := hub + 1 + (s*13)%(sz-1)
	b := hub + 1 + (s*17+5)%(sz-1)
	e.AddEdge(a, b, 0)
	far := ((s + hubs/2) % hubs) * sz
	for k := 0; k < dirty; k++ {
		v := far + 1 + (s*29+k*89)%(sz-1)
		f := append([]float64(nil), e.Graph().Feature(v)...)
		f[(s+k)%8] += 1e-7 // well under deltaBenchEpsilon after any one stage
		e.SetFeature(v, f)
	}
}

// RunDeltaAB measures whole-Step throughput of a splice-incremental engine
// and a DeltaForward engine on the same hub-heavy stream of the given
// length, after an identical warmup.
func RunDeltaAB(model string, steps int) (DeltaAB, error) {
	const n, hubs = 2400, 8
	dirty := 24
	ab := DeltaAB{Nodes: n, Hubs: hubs, DirtyPerStep: dirty, Model: model, Epsilon: deltaBenchEpsilon}

	run := func(delta bool) (float64, *streamgnn.Engine, error) {
		e, err := newHubEngine(model, n, hubs, delta)
		if err != nil {
			return 0, nil, err
		}
		// Warmup: step 0 trains once (0 % Interval == 0) and invalidates the
		// inference caches; two more steps re-establish them.
		for s := 0; s < 3; s++ {
			mutateHub(e, n, hubs, dirty, s)
			if err := e.Step(); err != nil {
				return 0, nil, err
			}
		}
		start := time.Now()
		for s := 3; s < 3+steps; s++ {
			mutateHub(e, n, hubs, dirty, s)
			if err := e.Step(); err != nil {
				return 0, nil, err
			}
		}
		return float64(steps) / time.Since(start).Seconds(), e, nil
	}

	// Interleave three reps of each mode and keep the medians, like the
	// forward A/B.
	var spl, del [3]float64
	var splEngine, delEngine *streamgnn.Engine
	for r := 0; r < 3; r++ {
		var err error
		if spl[r], splEngine, err = run(false); err != nil {
			return ab, err
		}
		if del[r], delEngine, err = run(true); err != nil {
			return ab, err
		}
	}
	ab.SpliceStepsPerSec = median3(spl[0], spl[1], spl[2])
	ab.DeltaStepsPerSec = median3(del[0], del[1], del[2])
	if ab.SpliceStepsPerSec > 0 {
		ab.Speedup = ab.DeltaStepsPerSec / ab.SpliceStepsPerSec
	}
	st := splEngine.Telemetry()
	ab.SpliceFullForwards = st.FullForwards
	ab.SpliceSteps = st.Steps
	dt := delEngine.Telemetry()
	ab.DeltaForwards = dt.DeltaForwards
	ab.DeltaAborts = dt.DeltaAborts
	ab.CandidateRows = dt.DeltaCandidateRows
	ab.PrunedFraction = dt.DeltaPrunedFraction.Mean()
	return ab, nil
}

// String renders the comparison for the streambench table output.
func (ab DeltaAB) String() string {
	return fmt.Sprintf(
		"Delta propagation (%s, %d nodes, %d hubs, %d dirty/step, eps %g)\n"+
			"  splice %.1f st/s (%d/%d steps fell back to full), delta %.1f st/s (%.2fx)\n"+
			"  delta passes %d (%d aborts), %d candidate rows, pruned-frontier fraction %.3f\n",
		ab.Model, ab.Nodes, ab.Hubs, ab.DirtyPerStep, ab.Epsilon,
		ab.SpliceStepsPerSec, ab.SpliceFullForwards, ab.SpliceSteps,
		ab.DeltaStepsPerSec, ab.Speedup,
		ab.DeltaForwards, ab.DeltaAborts, ab.CandidateRows, ab.PrunedFraction)
}
