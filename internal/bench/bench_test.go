package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"streamgnn/internal/core"
)

func quickCell(dataset, model string, strat core.Strategy) CellConfig {
	cfg := DefaultCell(dataset, model, strat)
	cfg.Gen.Steps = 14
	cfg.Gen.Scale = 0.5
	cfg.Hidden = 8
	return cfg
}

func TestRunCellEventWorkload(t *testing.T) {
	res, err := RunCell(quickCell("Bitcoin", "TGCN", core.KDE))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainTime <= 0 {
		t.Fatal("no training time recorded")
	}
	if res.PeakStepBytes <= 0 {
		t.Fatal("no memory recorded")
	}
	if res.Error <= 0 {
		t.Fatal("no error recorded")
	}
	if res.TrainedPartitions == 0 {
		t.Fatal("no partitions trained")
	}
	if len(res.FinalChips) == 0 {
		t.Fatal("no chip distribution")
	}
	if len(res.StepLoss) != 14 {
		t.Fatalf("StepLoss len %d", len(res.StepLoss))
	}
}

func TestRunCellLinkWorkload(t *testing.T) {
	res, err := RunCell(quickCell("UCIMessages", "ROLAND", core.Weighted))
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR <= 0 || math.IsNaN(res.AUC) {
		t.Fatalf("link metrics missing: %+v", res)
	}
}

func TestRunCellFullStrategy(t *testing.T) {
	res, err := RunCell(quickCell("Reddit", "GCLSTM", core.Full))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainedPartitions != 0 || res.FinalChips != nil {
		t.Fatal("Full strategy should have no adaptive state")
	}
	if res.TrainTime <= 0 {
		t.Fatal("no training time")
	}
}

func TestRunCellValidation(t *testing.T) {
	if _, err := RunCell(quickCell("Nope", "TGCN", core.Full)); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := RunCell(quickCell("Bitcoin", "Nope", core.Full)); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// The headline claim: weighted/KDE training is much cheaper than full
// training in both time and peak per-step memory.
func TestWeightedBeatsFullOnResources(t *testing.T) {
	full, err := RunCell(quickCell("Taxi", "DCRNN", core.Full))
	if err != nil {
		t.Fatal(err)
	}
	kde, err := RunCell(quickCell("Taxi", "DCRNN", core.KDE))
	if err != nil {
		t.Fatal(err)
	}
	if kde.TrainTime >= full.TrainTime {
		t.Fatalf("KDE training (%v) not faster than full (%v)", kde.TrainTime, full.TrainTime)
	}
	if kde.PeakStepBytes >= full.PeakStepBytes {
		t.Fatalf("KDE memory (%d) not below full (%d)", kde.PeakStepBytes, full.PeakStepBytes)
	}
}

func TestStopTrainingAfter(t *testing.T) {
	cfg := quickCell("Bitcoin", "TGCN", core.KDE)
	cfg.StopTrainingAfter = 3
	res, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := RunCell(quickCell("Bitcoin", "TGCN", core.KDE))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainTime >= cont.TrainTime {
		t.Fatal("partial training should spend less time training")
	}
}

func TestRunRepeatedAggregates(t *testing.T) {
	agg, err := RunRepeated(quickCell("Bitcoin", "TGCN", core.Weighted), 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Time.N() != 3 || agg.Error.N() != 3 {
		t.Fatalf("runs not aggregated: %d", agg.Time.N())
	}
	if agg.PeakBytes <= 0 {
		t.Fatal("peak bytes missing")
	}
}

func TestRunMotivationSeries(t *testing.T) {
	res, err := RunMotivation("Bitcoin", "TGCN", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopStep != 4 {
		t.Fatalf("StopStep = %d", res.StopStep)
	}
	if len(res.Continuous) != 16 || len(res.Partial) != 16 {
		t.Fatal("series lengths wrong")
	}
}

func TestTableCellsAndStrategies(t *testing.T) {
	if len(TableICells()) != 6 || len(TableIICells()) != 2 {
		t.Fatal("cell counts wrong")
	}
	if len(Strategies()) != 3 {
		t.Fatal("strategy count wrong")
	}
	if len(TableIIISweeps()) != 5 {
		t.Fatal("sweep count wrong")
	}
}

func TestRunSweepWritesRows(t *testing.T) {
	spec := SweepSpec{
		Label: "Interval", Dataset: "Bitcoin", Model: "TGCN",
		Values: []float64{1, 2},
		Apply: func(c *CellConfig, v float64) {
			c.Core.Interval = int(v)
			c.Gen.Steps = 12
			c.Gen.Scale = 0.5
			c.Hidden = 8
		},
	}
	var buf bytes.Buffer
	if err := RunSweep(&buf, spec, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 values
		t.Fatalf("sweep output:\n%s", buf.String())
	}
}

func TestRunTableWritesRows(t *testing.T) {
	var buf bytes.Buffer
	// Single tiny cell to keep the test fast: reuse RunTable's machinery
	// through a custom cell list.
	cells := [][2]string{{"UCIMessages", "ROLAND"}}
	// Patch: RunTable uses DefaultCell; accept the default 40 steps being
	// too slow by scaling via a tiny custom run instead.
	if testing.Short() {
		t.Skip("table run in short mode")
	}
	if err := RunTable(&buf, cells, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UCIMessages") {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2048:      "2KB",
		3 << 20:   "3.0MB",
		1<<20 + 1: "1.0MB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTailMeanLoss(t *testing.T) {
	series := []float64{1, 1, 1, 1, 2, 2, math.NaN(), 4}
	// last quarter of 8 = indices 6,7 -> mean of {4} skipping NaN
	if got := TailMeanLoss(series); got != 4 {
		t.Fatalf("TailMeanLoss = %v", got)
	}
	if TailMeanLoss([]float64{math.NaN()}) != 0 {
		t.Fatal("all-NaN tail should be 0")
	}
}

func TestRunScaling(t *testing.T) {
	pts, err := RunScaling([]float64{0.4, 0.8}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.FullSeconds <= 0 || p.KDESeconds <= 0 || p.TimeSpeedup <= 0 || p.MemReduction <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
	if pts[1].Nodes <= pts[0].Nodes {
		t.Fatal("scale did not grow the graph")
	}
	var buf bytes.Buffer
	WriteScaling(&buf, pts)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("WriteScaling output missing header")
	}
}

func TestRunForwardAB(t *testing.T) {
	ab, err := RunForwardAB("TGCN", 6)
	if err != nil {
		t.Fatal(err)
	}
	if ab.FullStepsPerSec <= 0 || ab.IncStepsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", ab)
	}
	if ab.IncIncForwards == 0 {
		t.Fatal("incremental engine never took the incremental path")
	}
	// The acceptance bar (>= 2x on a sparse-update stream) is checked by the
	// CI bench job; here only assert the direction so ambient load cannot
	// flake the unit suite.
	if ab.Speedup <= 1 {
		t.Fatalf("incremental slower than full: %+v", ab)
	}
	if !strings.Contains(ab.String(), "incremental") {
		t.Fatal("ForwardAB String missing mode label")
	}
}

func TestRunScheduleAB(t *testing.T) {
	ab, err := RunScheduleAB(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Legs) != 3 {
		t.Fatalf("legs = %d, want sparse/hub/churn", len(ab.Legs))
	}
	for _, l := range ab.Legs {
		if l.BaselinePerSec <= 0 || l.ScheduledPerSec <= 0 {
			t.Fatalf("%s: degenerate throughput: %+v", l.Name, l)
		}
		if l.SchedSteps == 0 {
			t.Fatalf("%s: scheduler never ran", l.Name)
		}
	}
	// The structural evidence is load-independent: the sparse stream must
	// actually form concurrent groups, the hub stream must collapse every
	// step. (The >= 1.3x sparse speedup floor is a CI bench-job gate — on a
	// loaded or single-core machine raw speedups would flake the unit suite.)
	sparse := ab.Leg("sparse")
	if sparse.GroupsPerStep <= 1 {
		t.Fatalf("sparse stream never grouped: %+v", *sparse)
	}
	hub := ab.Leg("hub")
	if hub.GroupsPerStep != 1 || hub.CollapsedSteps != hub.SchedSteps {
		t.Fatalf("hub stream did not collapse to serial: %+v", *hub)
	}
	if !strings.Contains(ab.String(), "collapsed") {
		t.Fatal("SchedAB String missing evidence columns")
	}
}
