package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
)

// This file benchmarks the conflict-group scheduler (Config.DependencySchedule)
// against the serial-apply baseline on three streams chosen to span its
// operating range: a sparse community graph where most sampled units are
// independent (the scheduler's best case), a hub-and-spoke star where every
// unit conflicts (the documented collapse-to-serial case), and the
// adversarial churn workload whose edge storms keep merging and splitting
// groups between steps.

const (
	schedBenchFeatDim = 3
	schedBenchHidden  = 8
	schedBenchPairs   = 8
)

// SchedLeg is one stream's serial-apply vs. conflict-group comparison. Both
// arms run the same worker count; the only difference is whether backprop and
// gradient accumulation are serialized after the parallel eval (baseline) or
// run whole conflict groups concurrently (scheduled).
type SchedLeg struct {
	Name            string
	BaselinePerSec  float64
	ScheduledPerSec float64
	Speedup         float64
	// Scheduler evidence from the scheduled arm's learner counters:
	// GroupsPerStep near UnitsPerStep means fully independent units,
	// GroupsPerStep == 1 means every step collapsed to the serial schedule.
	SchedSteps     int64
	GroupsPerStep  float64
	UnitsPerStep   float64
	CollapsedSteps int64
}

// SchedAB aggregates the scheduler comparison for cmd/streambench.
type SchedAB struct {
	Workers int
	Pairs   int
	Legs    []SchedLeg
}

// Leg returns the named leg (nil if absent).
func (ab *SchedAB) Leg(name string) *SchedLeg {
	for i := range ab.Legs {
		if ab.Legs[i].Name == name {
			return &ab.Legs[i]
		}
	}
	return nil
}

// sparseCommunityGraph builds nC disjoint labeled rings of size nodes each:
// 2-hop training partitions never cross rings, so sampled units conflict only
// when they land in the same community.
func sparseCommunityGraph(nC, size int) *graph.Dynamic {
	g := graph.NewDynamic(schedBenchFeatDim)
	for c := 0; c < nC; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			g.AddNode(0, []float64{float64(i % 2), float64(c % 3), 1})
			g.SetLabel(base+i, float64(i%2))
		}
		for i := 0; i < size; i++ {
			g.AddUndirectedEdge(base+i, base+(i+1)%size, 0, 0)
		}
	}
	return g
}

// hubStarGraph builds one hub fanning out to n-1 labeled leaves: every 2-hop
// partition contains the hub, so all sampled units share one conflict group.
func hubStarGraph(n int) *graph.Dynamic {
	g := graph.NewDynamic(schedBenchFeatDim)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 2), 0, 1})
		g.SetLabel(i, float64(i%2))
	}
	for i := 1; i < n; i++ {
		g.AddUndirectedEdge(0, i, 0, 0)
	}
	return g
}

// schedCell is one runnable arm of the A/B: a step function plus the learner
// whose counters provide the evidence.
type schedCell struct {
	step    func()
	learner *core.AdaptiveLearner
}

// schedConfig is the shared configuration of both arms; only
// DependencySchedule differs between them.
func schedConfig(on bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = runtime.NumCPU()
	cfg.PairsPerStep = schedBenchPairs
	cfg.DependencySchedule = on
	return cfg
}

// topoCell wires an adaptive learner over a synthetic topology.
func topoCell(build func() *graph.Dynamic, on bool, seed int64) schedCell {
	cfg := schedConfig(on)
	rng := rand.New(rand.NewSource(seed))
	g := build()
	g.EnablePartitionCache(cfg.PartitionCacheCap)
	m := dgnn.NewTGCN(rng, schedBenchFeatDim, schedBenchHidden)
	heads := query.NewHeads(rng, schedBenchHidden)
	w := query.NewWorkload(heads)
	opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, append(m.Params(), heads.Params()...)))
	tr := core.NewTrainer(g, m, w, opt, cfg, rng)
	l := core.NewAdaptiveLearner(tr, cfg, core.Weighted, rng)
	return schedCell{step: func() { l.Step(nil) }, learner: l}
}

// churnCell wires the adversarial churn workload through the standard
// hot-path cell (full replay to the final snapshot, then frozen-stream
// training steps).
func churnCell(on bool, seed int64) (schedCell, error) {
	cell, err := NewHotPathCell("Churn", "TGCN", schedConfig(on), schedConfig(on).PartitionCacheCap, seed)
	if err != nil {
		return schedCell{}, err
	}
	return schedCell{step: cell.Step, learner: cell.Learner}, nil
}

// timeSchedLeg interleaves three baseline/scheduled rep pairs (so ambient
// load hits both arms alike), reports the median throughputs, and extracts
// the evidence counters from the last scheduled learner.
func timeSchedLeg(name string, mk func(on bool) (schedCell, error), steps int) (SchedLeg, error) {
	leg := SchedLeg{Name: name}
	var base, sched [3]float64
	var last *core.AdaptiveLearner
	for r := 0; r < 3; r++ {
		for _, on := range []bool{false, true} {
			cell, err := mk(on)
			if err != nil {
				return leg, err
			}
			for i := 0; i < 3; i++ { // warm the cache, pools and scratch
				cell.step()
			}
			start := time.Now()
			for i := 0; i < steps; i++ {
				cell.step()
			}
			perSec := float64(steps) / time.Since(start).Seconds()
			if on {
				sched[r] = perSec
				last = cell.learner
			} else {
				base[r] = perSec
			}
		}
	}
	leg.BaselinePerSec = median3(base[0], base[1], base[2])
	leg.ScheduledPerSec = median3(sched[0], sched[1], sched[2])
	if leg.BaselinePerSec > 0 {
		leg.Speedup = leg.ScheduledPerSec / leg.BaselinePerSec
	}
	leg.SchedSteps = atomic.LoadInt64(&last.SchedSteps)
	leg.CollapsedSteps = atomic.LoadInt64(&last.SchedCollapsed)
	if leg.SchedSteps > 0 {
		leg.GroupsPerStep = float64(atomic.LoadInt64(&last.SchedGroups)) / float64(leg.SchedSteps)
		leg.UnitsPerStep = float64(atomic.LoadInt64(&last.SchedUnits)) / float64(leg.SchedSteps)
	}
	return leg, nil
}

// RunScheduleAB measures adaptive-step throughput with and without the
// conflict-group scheduler on the sparse, hub and churn streams.
func RunScheduleAB(steps int, seed int64) (SchedAB, error) {
	ab := SchedAB{Workers: runtime.NumCPU(), Pairs: schedBenchPairs}
	legs := []struct {
		name string
		mk   func(on bool) (schedCell, error)
	}{
		{"sparse", func(on bool) (schedCell, error) {
			return topoCell(func() *graph.Dynamic { return sparseCommunityGraph(48, 12) }, on, seed), nil
		}},
		{"hub", func(on bool) (schedCell, error) {
			return topoCell(func() *graph.Dynamic { return hubStarGraph(576) }, on, seed), nil
		}},
		{"churn", func(on bool) (schedCell, error) { return churnCell(on, seed) }},
	}
	for _, l := range legs {
		leg, err := timeSchedLeg(l.name, l.mk, steps)
		if err != nil {
			return ab, err
		}
		ab.Legs = append(ab.Legs, leg)
	}
	return ab, nil
}

// String renders the comparison for the streambench table output.
func (ab SchedAB) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dependency schedule (workers %d, pairs %d)\n", ab.Workers, ab.Pairs)
	for _, l := range ab.Legs {
		fmt.Fprintf(&b, "  %-7s baseline %.1f st/s, scheduled %.1f st/s (%.2fx); %.1f groups over %.1f units/step, %d/%d steps collapsed\n",
			l.Name, l.BaselinePerSec, l.ScheduledPerSec, l.Speedup,
			l.GroupsPerStep, l.UnitsPerStep, l.CollapsedSteps, l.SchedSteps)
	}
	return b.String()
}
