package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamgnn"
	"streamgnn/internal/query"
	"streamgnn/internal/serve"
)

// QPSReport is the result of the -qps load mode: predictive-query serving
// measured against a live synthetic stream. It captures the three claims the
// batched serving path makes — sustained QPS under a rated load through the
// micro-batching admission queue, no ingestion stall while serving (the step
// loop and the serving readers share no lock), and a batched-vs-per-query
// saturation A/B whose speedup is the work-sharing win of one stacked head
// application over B scalar ones.
type QPSReport struct {
	Nodes        int
	DirtyPerStep int
	Model        string
	BatchMax     int
	Clients      int
	MaxProcs     int

	// Rated-load phase: single-query submissions through the admission
	// queue at TargetQPS while the stream ingests. Latencies come from the
	// batcher's per-query admission-to-answer histogram.
	TargetQPS         float64
	SustainedQPS      float64
	P50LatencySeconds float64
	P99LatencySeconds float64
	MeanBatchSize     float64

	// Ingestion-stall evidence: mean whole-step latency of the ingestion
	// loop without serving load vs. under the rated load, and their ratio
	// (~1.0 means serving does not stall the stream).
	NoLoadStepSeconds float64
	LoadedStepSeconds float64
	StepTimeRatio     float64
	NoLoadStepsPerSec float64
	LoadedStepsPerSec float64

	// Saturation A/B (closed loop, ingestion idle): queries/sec with each
	// client answering 1 query per call vs. BatchMax queries per call.
	PerQueryQPS float64
	BatchedQPS  float64
	Speedup     float64

	// BatchedEqualsSerial reports whether a BatchMax-sized batch answered in
	// one call was bit-identical to answering its queries one at a time.
	BatchedEqualsSerial bool
}

// newQPSEngine builds the serving-load engine: the ring-plus-chords topology
// of the other A/Bs, incremental forwards, and online training every 4th
// step so the step loop exercises both the copy-on-write splice path and the
// invalidate-then-full-forward path while queries are served.
func newQPSEngine(model string, n int) (*streamgnn.Engine, error) {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = model
	cfg.Strategy = streamgnn.StrategyWeighted
	cfg.Hidden = 16
	cfg.Seed = 42
	cfg.Interval = 4
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1
	e, err := streamgnn.NewEngine(8, cfg)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		f := make([]float64, 8)
		f[i%8] = 1
		e.AddNode(0, f)
	}
	for i := 0; i < n; i++ {
		e.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	for i := 0; i < n/50; i++ {
		e.AddUndirectedEdge(r.Intn(n), r.Intn(n), 0)
	}
	return e, nil
}

// qpsRequests builds a deterministic mixed batch of event and link queries
// over n nodes.
func qpsRequests(r *rand.Rand, n, count int) []query.Request {
	reqs := make([]query.Request, count)
	for i := range reqs {
		if r.Intn(2) == 0 {
			reqs[i] = query.Request{Kind: query.KindEvent, Anchor: r.Intn(n)}
		} else {
			reqs[i] = query.Request{Kind: query.KindLink, Src: r.Intn(n), Dst: r.Intn(n)}
		}
	}
	return reqs
}

// stepMeans extracts mean step latency and steps/sec from a telemetry delta.
func stepMeans(before, after streamgnn.Telemetry, wall float64) (mean, perSec float64) {
	dc := after.Step.Count - before.Step.Count
	if dc > 0 {
		mean = (after.Step.Sum - before.Step.Sum) / float64(dc)
	}
	if wall > 0 {
		perSec = float64(dc) / wall
	}
	return mean, perSec
}

// RunQPS runs the -qps load mode: an ingestion goroutine steps the engine
// continuously (mutating `dirty` nodes per step) while serving phases run
// against its published snapshots. Each phase lasts `seconds`.
func RunQPS(model string, seconds, targetQPS float64, batchMax, clients int) (QPSReport, error) {
	const n = 4000
	dirty := n / 50
	rep := QPSReport{Nodes: n, DirtyPerStep: dirty, Model: model,
		BatchMax: batchMax, Clients: clients, TargetQPS: targetQPS,
		MaxProcs: runtime.GOMAXPROCS(0)}
	d := time.Duration(seconds * float64(time.Second))

	e, err := newQPSEngine(model, n)
	if err != nil {
		return rep, err
	}
	stepIdx := 0
	for ; stepIdx < 8; stepIdx++ { // warmup: settle caches, train twice
		mutateSparse(e, n, dirty, stepIdx)
		if err := e.Step(); err != nil {
			return rep, err
		}
	}
	runtime.GC()

	// Ingestion loop: the ONLY goroutine that mutates the graph or steps the
	// engine. Serving readers touch nothing but the atomic QuerySnapshot, so
	// no lock is shared with it.
	var stepErr error
	ingest := func(until time.Duration) func() {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(until)
			for time.Now().Before(deadline) {
				select {
				case <-stop:
					return
				default:
				}
				mutateSparse(e, n, dirty, stepIdx)
				if err := e.Step(); err != nil {
					stepErr = err
					return
				}
				stepIdx++
			}
		}()
		return func() { close(stop); wg.Wait() }
	}

	// Phase 1 — no-load baseline: ingestion alone.
	tel0 := e.Telemetry()
	start := time.Now()
	stopIngest := ingest(d)
	time.Sleep(d)
	stopIngest()
	if stepErr != nil {
		return rep, stepErr
	}
	rep.NoLoadStepSeconds, rep.NoLoadStepsPerSec = stepMeans(tel0, e.Telemetry(), time.Since(start).Seconds())

	// Phase 2 — rated load: single-query submissions through the admission
	// queue at targetQPS while ingestion continues. Submissions arrive in
	// small paced bursts of independent queries; the batcher's B/T knobs do
	// all the coalescing.
	batcher := serve.NewBatcher(serve.Config{MaxBatch: batchMax, MaxWait: 2 * time.Millisecond},
		func(reqs []query.Request) []query.Answer {
			return e.QuerySnapshot().Answer(reqs, nil)
		})
	pool := qpsRequests(rand.New(rand.NewSource(33)), n, 1024)
	const tickHz = 200
	tel1 := e.Telemetry()
	start = time.Now()
	stopIngest = ingest(d + time.Second)
	var answered atomic.Int64
	var subWG sync.WaitGroup
	// Deficit-based pacing: each wakeup submits however many queries the
	// target rate says are due, so coalesced ticks (the scheduler is busy
	// stepping the engine) catch up in a burst instead of silently slipping
	// the rate.
	tick := time.NewTicker(time.Second / tickHz)
	sent := 0
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		<-tick.C
		due := int(time.Since(start).Seconds() * targetQPS)
		for ; sent < due; sent++ {
			rq := pool[sent%len(pool)]
			subWG.Add(1)
			go func(rq query.Request) {
				defer subWG.Done()
				if batcher.Submit([]query.Request{rq}) != nil {
					answered.Add(1)
				}
			}(rq)
		}
	}
	tick.Stop()
	subWG.Wait()
	loadWall := time.Since(start).Seconds()
	stopIngest()
	if stepErr != nil {
		return rep, stepErr
	}
	rep.LoadedStepSeconds, rep.LoadedStepsPerSec = stepMeans(tel1, e.Telemetry(), loadWall)
	rep.SustainedQPS = float64(answered.Load()) / loadWall
	lat := batcher.LatencySnapshot()
	rep.P50LatencySeconds = lat.Quantile(0.5)
	rep.P99LatencySeconds = lat.Quantile(0.99)
	if b := batcher.Batches(); b > 0 {
		rep.MeanBatchSize = float64(batcher.Queries()) / float64(b)
	}
	batcher.Close()
	if rep.NoLoadStepSeconds > 0 {
		rep.StepTimeRatio = rep.LoadedStepSeconds / rep.NoLoadStepSeconds
	}

	// Determinism: a BatchMax-sized batch answered in one call must be
	// bit-identical to answering each of its queries alone.
	snap := e.QuerySnapshot()
	detReqs := qpsRequests(rand.New(rand.NewSource(11)), snap.Rows(), batchMax)
	batched := snap.Answer(detReqs, nil)
	rep.BatchedEqualsSerial = true
	for i, rq := range detReqs {
		if snap.Answer([]query.Request{rq}, nil)[0] != batched[i] {
			rep.BatchedEqualsSerial = false
			break
		}
	}

	// Phases 3/4 — saturation A/B with ingestion idle: closed-loop clients
	// driving the same admission queue, one query per request (per-query
	// serving, B=1) vs. BatchMax queries per request (batched serving). The
	// ratio is the work-sharing win: one admission and one stacked head
	// application per batch, against per-query admissions and scalar applies.
	saturate := func(perCall, maxBatch int) float64 {
		b := serve.NewBatcher(serve.Config{MaxBatch: maxBatch, MaxWait: 2 * time.Millisecond},
			func(reqs []query.Request) []query.Answer {
				return e.QuerySnapshot().Answer(reqs, nil)
			})
		var total atomic.Int64
		var wg sync.WaitGroup
		deadline := time.Now().Add(d)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				reqs := qpsRequests(rand.New(rand.NewSource(int64(100+c))), n, perCall)
				for time.Now().Before(deadline) {
					if b.Submit(reqs) != nil {
						total.Add(int64(perCall))
					}
				}
			}(c)
		}
		wg.Wait()
		qps := float64(total.Load()) / time.Since(start).Seconds()
		b.Close()
		return qps
	}
	rep.PerQueryQPS = saturate(1, 1)
	runtime.GC()
	rep.BatchedQPS = saturate(batchMax, batchMax)
	if rep.PerQueryQPS > 0 {
		rep.Speedup = rep.BatchedQPS / rep.PerQueryQPS
	}
	return rep, nil
}

// String renders the report for the streambench output.
func (r QPSReport) String() string {
	eq := "bit-identical"
	if !r.BatchedEqualsSerial {
		eq = "MISMATCH"
	}
	return fmt.Sprintf(
		"QPS load (%s, %d nodes, %d dirty/step, B=%d, %d clients, GOMAXPROCS=%d)\n"+
			"  rated load  %.0f qps target: %.0f qps sustained, p50 %.3fms, p99 %.3fms, mean batch %.1f\n"+
			"  ingestion   %.2fms/step no-load vs %.2fms/step loaded (ratio %.2f; %.1f vs %.1f st/s)\n"+
			"  saturation  per-query %.0f qps vs batched %.0f qps (%.1fx, answers %s)\n",
		r.Model, r.Nodes, r.DirtyPerStep, r.BatchMax, r.Clients, r.MaxProcs,
		r.TargetQPS, r.SustainedQPS, r.P50LatencySeconds*1e3, r.P99LatencySeconds*1e3, r.MeanBatchSize,
		r.NoLoadStepSeconds*1e3, r.LoadedStepSeconds*1e3, r.StepTimeRatio,
		r.NoLoadStepsPerSec, r.LoadedStepsPerSec,
		r.PerQueryQPS, r.BatchedQPS, r.Speedup, eq)
}
