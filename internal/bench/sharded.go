package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"streamgnn"
)

// ShardedAB compares the unsharded incremental forward against the sharded
// fan-out (Config.Shards) on a synthetic sparse-update stream whose dirty
// balls form scattered islands: the compute region then decomposes into many
// connected components, which is the workload the per-shard workers can
// actually split. Both engines run the identical stream with identical
// incremental settings — results are bit-identical by construction (see
// DESIGN.md §12) — so the ratio isolates the fan-out's parallelism against
// its partitioning and merge overhead.
type ShardedAB struct {
	Nodes        int
	DirtyPerStep int
	Shards       int
	Model        string
	Layout       string
	// MaxProcs is runtime.GOMAXPROCS at measurement time. The fan-out does
	// the same flops as the unsharded forward, just on P workers, so the
	// speedup is bounded by min(P, MaxProcs); on a single-CPU machine expect
	// ~1.0x (the overhead of partitioning + merge, which this A/B bounds).
	MaxProcs int
	// BaseStepsPerSec / ShardedStepsPerSec are whole-Step throughputs of
	// the shards=1 and shards=P engines; Speedup is their ratio.
	BaseStepsPerSec    float64
	ShardedStepsPerSec float64
	Speedup            float64
	// CrossShardEdgeFraction is the sharded engine's final cross-shard edge
	// fraction — how much of the graph structure straddles the partition.
	CrossShardEdgeFraction float64
}

// newShardedEngine builds an incremental-forward engine over the same
// ring-plus-chords topology as the forward A/B. shards > 1 enables the
// sharded pipeline; the range layout keeps the ring's consecutive-id arcs —
// and therefore most dirty-region components — shard-local.
func newShardedEngine(model string, n, shards int) (*streamgnn.Engine, error) {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = model
	cfg.Strategy = streamgnn.StrategyWeighted
	cfg.Hidden = 64
	cfg.Seed = 42
	cfg.Interval = 1 << 30
	cfg.IncrementalForward = true
	// Scattered islands sum to a sizable region; never fall back to full.
	cfg.DirtyFullThreshold = 1
	if shards > 1 {
		cfg.Shards = shards
		cfg.ShardLayout = "range"
	}
	e, err := streamgnn.NewEngine(8, cfg)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		f := make([]float64, 8)
		f[i%8] = 1
		e.AddNode(0, f)
	}
	for i := 0; i < n; i++ {
		e.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	for i := 0; i < n/50; i++ {
		e.AddUndirectedEdge(r.Intn(n), r.Intn(n), 0)
	}
	return e, nil
}

// RunShardedAB measures whole-Step throughput of the unsharded incremental
// engine against the sharded fan-out at the given width on the same
// sparse-update stream.
func RunShardedAB(model string, steps, shards int) (ShardedAB, error) {
	const n = 6000
	dirty := n / 20 // 2% of nodes per step, scattered
	ab := ShardedAB{Nodes: n, DirtyPerStep: dirty, Shards: shards,
		Model: model, Layout: "range", MaxProcs: runtime.GOMAXPROCS(0)}

	run := func(width int) (float64, *streamgnn.Engine, error) {
		e, err := newShardedEngine(model, n, width)
		if err != nil {
			return 0, nil, err
		}
		for s := 0; s < 3; s++ { // warmup: train once, re-establish the cache
			mutateSparse(e, n, dirty, s)
			if err := e.Step(); err != nil {
				return 0, nil, err
			}
		}
		// Settle the heap before timing: earlier runs leave garbage behind,
		// and without this the run that happens to go second pays the GC
		// debt of the one before it.
		runtime.GC()
		start := time.Now()
		for s := 3; s < 3+steps; s++ {
			mutateSparse(e, n, dirty, s)
			if err := e.Step(); err != nil {
				return 0, nil, err
			}
		}
		return float64(steps) / time.Since(start).Seconds(), e, nil
	}

	// Interleave three reps of each width and keep the medians, like the
	// other A/Bs — alternating which width goes first so neither always
	// inherits the other's heap.
	var base, shrd [3]float64
	var shardedEngine *streamgnn.Engine
	for r := 0; r < 3; r++ {
		var err error
		if r%2 == 0 {
			if base[r], _, err = run(1); err != nil {
				return ab, err
			}
			if shrd[r], shardedEngine, err = run(shards); err != nil {
				return ab, err
			}
		} else {
			if shrd[r], shardedEngine, err = run(shards); err != nil {
				return ab, err
			}
			if base[r], _, err = run(1); err != nil {
				return ab, err
			}
		}
	}
	ab.BaseStepsPerSec = median3(base[0], base[1], base[2])
	ab.ShardedStepsPerSec = median3(shrd[0], shrd[1], shrd[2])
	if ab.BaseStepsPerSec > 0 {
		ab.Speedup = ab.ShardedStepsPerSec / ab.BaseStepsPerSec
	}
	ab.CrossShardEdgeFraction = shardedEngine.Telemetry().CrossShardEdgeFraction
	return ab, nil
}

// String renders the comparison for the streambench table output.
func (ab ShardedAB) String() string {
	return fmt.Sprintf(
		"Sharded forward (%s, %d nodes, %d dirty/step, %d shards, %s layout, GOMAXPROCS=%d)\n  shards=1 %.1f st/s, shards=%d %.1f st/s (%.2fx; cross-shard edge fraction %.3f)\n",
		ab.Model, ab.Nodes, ab.DirtyPerStep, ab.Shards, ab.Layout, ab.MaxProcs,
		ab.BaseStepsPerSec, ab.Shards, ab.ShardedStepsPerSec, ab.Speedup,
		ab.CrossShardEdgeFraction)
}
