package bench

import (
	"fmt"
	"io"

	"streamgnn/internal/core"
)

// TableICells returns the (dataset, model) pairs of Table I.
func TableICells() [][2]string {
	return [][2]string{
		{"Bitcoin", "TGCN"},
		{"Bitcoin", "WinGNN"},
		{"Reddit", "GCLSTM"},
		{"Reddit", "DyGrEncoder"},
		{"Taxi", "DCRNN"},
		{"Taxi", "ROLAND"},
	}
}

// TableIICells returns the (dataset, model) pairs of Table II.
func TableIICells() [][2]string {
	return [][2]string{
		{"StackOverflow", "EvolveGCN"},
		{"UCIMessages", "ROLAND"},
	}
}

// Strategies returns the three methods compared in Tables I and II.
func Strategies() []core.Strategy {
	return []core.Strategy{core.Full, core.Weighted, core.KDE}
}

// RunTable runs all cells of Table I or II and writes paper-style rows.
// linkPred selects Table II formatting (Accuracy instead of Error).
func RunTable(w io.Writer, cells [][2]string, runs int, linkPred bool) error {
	if linkPred {
		fmt.Fprintf(w, "%-14s %-12s %-13s %12s %10s %14s %14s %14s\n",
			"Dataset", "Model", "Method", "TrainTime(s)", "Memory", "Accuracy", "AUC", "MRR")
	} else {
		fmt.Fprintf(w, "%-14s %-12s %-13s %12s %10s %14s %14s %14s\n",
			"Dataset", "Model", "Method", "TrainTime(s)", "Memory", "Error", "AUC", "MRR")
	}
	for _, cell := range cells {
		for _, strat := range Strategies() {
			cfg := EqualizedCell(cell[0], cell[1], strat)
			agg, err := RunRepeated(cfg, runs)
			if err != nil {
				return err
			}
			quality := agg.Error
			if linkPred {
				quality = agg.Accuracy
			}
			fmt.Fprintf(w, "%-14s %-12s %-13s %12s %10s %14s %14s %14s\n",
				cell[0], cell[1], strat,
				fmt.Sprintf("%.3f±%.3f", agg.Time.Mean(), agg.Time.Std()),
				FormatBytes(agg.PeakBytes),
				fmt.Sprintf("%.3f±%.3f", quality.Mean(), quality.Std()),
				fmt.Sprintf("%.3f±%.3f", agg.AUC.Mean(), agg.AUC.Std()),
				fmt.Sprintf("%.3f±%.3f", agg.MRR.Mean(), agg.MRR.Std()))
		}
	}
	return nil
}

// SweepSpec defines one parameter sweep row-group of Table III.
type SweepSpec struct {
	Label   string
	Dataset string
	Model   string
	Values  []float64
	// Apply installs the parameter value into the cell config.
	Apply func(*CellConfig, float64)
}

// TableIIISweeps returns the five sweeps of Table III with the paper's
// dataset/model pairings and values.
func TableIIISweeps() []SweepSpec {
	return []SweepSpec{
		{
			Label: "Interval", Dataset: "Bitcoin", Model: "TGCN",
			Values: []float64{1, 2, 5, 10},
			Apply:  func(c *CellConfig, v float64) { c.Core.Interval = int(v) },
		},
		{
			Label: "#pairs", Dataset: "Reddit", Model: "DCRNN",
			Values: []float64{1, 3, 7},
			Apply:  func(c *CellConfig, v float64) { c.Core.PairsPerStep = int(v) },
		},
		{
			Label: "#seeds", Dataset: "Taxi", Model: "GCLSTM",
			Values: []float64{5, 15, 50},
			Apply:  func(c *CellConfig, v float64) { c.Core.Seeds = int(v) },
		},
		{
			Label: "q", Dataset: "Bitcoin", Model: "DyGrEncoder",
			Values: []float64{0.1, 0.5, 0.9},
			Apply:  func(c *CellConfig, v float64) { c.Core.StopProb = v },
		},
		{
			Label: "p", Dataset: "Reddit", Model: "WinGNN",
			Values: []float64{0.1, 0.5, 0.8},
			Apply:  func(c *CellConfig, v float64) { c.Core.SeedKeep = v },
		},
	}
}

// RunSweep runs one Table III sweep with the KDE method and writes rows.
func RunSweep(w io.Writer, spec SweepSpec, runs int) error {
	fmt.Fprintf(w, "%-22s %-24s %12s %10s %14s %14s %14s\n",
		"Dataset/Model", "Parameter", "TrainTime(s)", "Memory", "Error", "AUC", "MRR")
	for _, v := range spec.Values {
		cfg := EqualizedCell(spec.Dataset, spec.Model, core.KDE)
		spec.Apply(&cfg, v)
		agg, err := RunRepeated(cfg, runs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %-24s %12s %10s %14s %14s %14s\n",
			spec.Dataset+" ("+spec.Model+")",
			fmt.Sprintf("%s = %g", spec.Label, v),
			fmt.Sprintf("%.3f±%.3f", agg.Time.Mean(), agg.Time.Std()),
			FormatBytes(agg.PeakBytes),
			fmt.Sprintf("%.3f±%.3f", agg.Error.Mean(), agg.Error.Std()),
			fmt.Sprintf("%.3f±%.3f", agg.AUC.Mean(), agg.AUC.Std()),
			fmt.Sprintf("%.3f±%.3f", agg.MRR.Mean(), agg.MRR.Std()))
	}
	return nil
}

// MotivationResult holds the Figure 4 series for one dataset.
type MotivationResult struct {
	Dataset    string
	Model      string
	StopStep   int
	Continuous []float64 // per-step eval MSE, training at every step
	Partial    []float64 // per-step eval MSE, training stops at StopStep
	// ContTailAUC and PartTailAUC are the last-quarter AUCs of the two
	// conditions: on workloads where the loss gap is small (Reddit in the
	// paper), the staleness shows up as an accuracy/AUC drop instead.
	ContTailAUC float64
	PartTailAUC float64
}

// RunMotivation reproduces one Figure 4 panel: continuous training vs
// training stopped after the first quarter of the steps.
func RunMotivation(dataset, model string, steps int, seed int64) (MotivationResult, error) {
	res := MotivationResult{Dataset: dataset, Model: model, StopStep: steps / 4}
	cont := DefaultCell(dataset, model, core.KDE)
	cont.Gen.Steps = steps
	cont.Gen.Seed = seed
	cont.Seed = seed
	cr, err := RunCell(cont)
	if err != nil {
		return res, err
	}
	part := cont
	part.StopTrainingAfter = res.StopStep
	pr, err := RunCell(part)
	if err != nil {
		return res, err
	}
	res.Continuous = cr.StepLoss
	res.Partial = pr.StepLoss
	res.ContTailAUC = cr.TailAUC
	res.PartTailAUC = pr.TailAUC
	return res, nil
}

// TailMeanLoss averages the last quarter of a Figure 4 loss series,
// skipping NaN steps — the regime where partial training has gone stale.
func TailMeanLoss(series []float64) float64 {
	from := len(series) * 3 / 4
	var sum float64
	var n int
	for _, v := range series[from:] {
		if v == v { // skip NaN
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
