// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section VI): Figure 4 (the need for
// continuous training), Table I (event-monitoring workloads), Table II
// (link prediction), and Table III (parameter study), plus the ablations
// called out in DESIGN.md.
//
// Each cell runs the same engine loop the public API uses, but instruments
// the training section with a wall clock and the tensor allocation meter so
// training time and peak memory are attributable to the strategy alone
// (inference is common to all strategies).
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/metrics"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
	"streamgnn/internal/tensor"
	"streamgnn/internal/workload"
)

// CellConfig identifies one (dataset, model, method) experiment cell.
type CellConfig struct {
	Dataset  string
	Model    string
	Strategy core.Strategy
	Gen      workload.GenConfig
	Core     core.Config
	Hidden   int
	Seed     int64
	// StopTrainingAfter, if positive, halts training after that many steps
	// (the "partial training" condition of Figure 4b).
	StopTrainingAfter int
}

// DefaultCell returns a cell with the paper's default parameters.
func DefaultCell(dataset, model string, strategy core.Strategy) CellConfig {
	return CellConfig{
		Dataset:  dataset,
		Model:    model,
		Strategy: strategy,
		Gen:      workload.GenConfig{Seed: 1, Steps: 40},
		Core:     core.DefaultConfig(),
		Hidden:   16,
		Seed:     1,
	}
}

// EqualizedCell returns a cell with the per-method training budget used for
// Tables I and II. Following the paper's protocol ("we adjust each method's
// training interval so that they give similar errors, and then fairly
// compare time and memory"), the adaptive strategies run more — much
// cheaper — training rounds per step than full training.
func EqualizedCell(dataset, model string, strategy core.Strategy) CellConfig {
	cfg := DefaultCell(dataset, model, strategy)
	if strategy == core.Full {
		cfg.Core.RoundsPerStep = 10
	} else {
		cfg.Core.RoundsPerStep = 30
	}
	return cfg
}

// CellResult is one measured row.
type CellResult struct {
	// TrainTime is the wall-clock time spent inside training only.
	TrainTime time.Duration
	// PeakStepBytes is the largest per-step training allocation volume, in
	// bytes of float64 tensor data (the machine-independent analogue of
	// "maximum memory consumption during training").
	PeakStepBytes int64
	// Error is the MSE of resolved query predictions (event workloads).
	Error float64
	// Accuracy, AUC, MRR follow the paper's metric suite.
	Accuracy float64
	AUC      float64
	MRR      float64
	// TailAUC is the AUC over the last quarter of the stream — where the
	// partial-training condition of Figure 4 has gone stale.
	TailAUC float64
	// StepLoss is the per-step evaluation MSE (Figure 4 series).
	StepLoss []float64
	// TrainedPartitions counts node partitions trained (adaptive only).
	TrainedPartitions int
	// FinalChips is the normalized chip distribution after the run
	// (adaptive only; nil for Full).
	FinalChips []float64
}

// RunCell executes one experiment cell.
func RunCell(cfg CellConfig) (CellResult, error) {
	var res CellResult
	ds, err := workload.ByName(cfg.Dataset, cfg.Gen)
	if err != nil {
		return res, err
	}
	kind, err := dgnn.ParseKind(cfg.Model)
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewDynamic(ds.FeatDim)
	rep := stream.NewReplayer(g, ds.Source(), ds.WindowSteps)
	model := dgnn.New(kind, rng, ds.FeatDim, cfg.Hidden)
	heads := query.NewHeads(rng, cfg.Hidden)
	wl := query.NewWorkload(heads)
	ds.Attach(wl, cfg.Seed+1)
	params := append(model.Params(), heads.Params()...)
	opt := model.WrapOptimizer(autodiff.NewAdam(cfg.Core.LR, params))
	trainer := core.NewTrainer(g, model, wl, opt, cfg.Core, rng)

	var sched *core.Scheduler
	tensor.EnableMeter(true)
	defer tensor.EnableMeter(false)

	for rep.Advance() {
		t := rep.Step()
		updated := g.Updated()
		model.BeginStep(t)
		// Inference: full-graph forward, common to every strategy.
		tp := autodiff.NewTape()
		emb := model.Forward(tp, dgnn.FullView(g))
		wl.Reveal(g, t)
		wl.Predict(emb.Value, t)
		// Training section: metered and timed.
		if sched == nil {
			sched, err = core.NewScheduler(trainer, cfg.Core, cfg.Strategy, rng)
			if err != nil {
				return res, err
			}
		}
		if cfg.StopTrainingAfter <= 0 || t < cfg.StopTrainingAfter {
			tensor.ResetMeter()
			start := time.Now()
			sched.OnStep(t, updated)
			res.TrainTime += time.Since(start)
			if b := tensor.TotalBytes(); b > res.PeakStepBytes {
				res.PeakStepBytes = b
			}
		}
		g.ResetUpdated()
	}

	res.StepLoss = perStepLoss(wl.Outcomes(), ds.Steps)
	fillMetrics(&res, wl, ds.Steps)
	if sched != nil && sched.Adaptive != nil {
		res.TrainedPartitions = sched.Adaptive.Trained
		res.FinalChips = sched.Adaptive.Probabilities()
	}
	return res, nil
}

func perStepLoss(outs []query.Outcome, steps int) []float64 {
	sums := make([]float64, steps)
	counts := make([]float64, steps)
	for _, o := range outs {
		if o.Step < steps {
			d := o.Score - o.Truth
			sums[o.Step] += d * d
			counts[o.Step]++
		}
	}
	loss := make([]float64, steps)
	for s := range loss {
		if counts[s] > 0 {
			loss[s] = sums[s] / counts[s]
		} else {
			loss[s] = math.NaN()
		}
	}
	return loss
}

func fillMetrics(res *CellResult, wl *query.Workload, steps int) {
	outs := wl.Outcomes()
	if len(outs) > 0 {
		var scores, truths []float64
		var events []bool
		var tailScores []float64
		var tailEvents []bool
		for _, o := range outs {
			scores = append(scores, o.Score)
			truths = append(truths, o.Truth)
			events = append(events, o.Event)
			if o.Step >= steps*3/4 {
				tailScores = append(tailScores, o.Score)
				tailEvents = append(tailEvents, o.Event)
			}
		}
		res.Error = metrics.MSE(scores, truths)
		res.AUC = metrics.AUC(scores, events)
		res.TailAUC = metrics.AUC(tailScores, tailEvents)
		res.Accuracy = metrics.Accuracy(scores, events, threshold(outs))
		// Event MRR: rank each positive event's score among negatives.
		res.MRR = eventMRR(scores, events)
	}
	if lt := wl.LinkTask(); lt != nil {
		ls, ll := lt.Scores()
		if len(ls) > 0 {
			res.AUC = metrics.AUC(ls, ll)
			res.Accuracy = metrics.Accuracy(ls, ll, 0)
			res.MRR = metrics.MRR(lt.Ranks())
		}
	}
}

// threshold recovers the (single) query threshold from outcomes so accuracy
// measures event detection.
func threshold(outs []query.Outcome) float64 {
	// Event flag was computed as Truth > thresh; recover an equivalent
	// score threshold as the midpoint between event and non-event truths.
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, o := range outs {
		if o.Event && o.Truth < lo {
			lo = o.Truth
		}
		if !o.Event && o.Truth > hi {
			hi = o.Truth
		}
	}
	if math.IsInf(lo, 1) || math.IsInf(hi, -1) {
		return 0.5
	}
	return (lo + hi) / 2
}

// eventMRR ranks each positive event's score against up to 20 negative
// scores, mirroring the link-prediction MRR protocol.
func eventMRR(scores []float64, events []bool) float64 {
	var negs []float64
	for i, e := range events {
		if !e {
			negs = append(negs, scores[i])
			if len(negs) == 20 {
				break
			}
		}
	}
	if len(negs) == 0 {
		return 0
	}
	var ranks []int
	for i, e := range events {
		if e {
			ranks = append(ranks, metrics.RankOf(scores[i], negs))
		}
	}
	return metrics.MRR(ranks)
}

// AggResult aggregates repeated runs of one cell (the ± rows of the paper).
type AggResult struct {
	Cell      CellConfig
	Time      metrics.Summary // seconds
	Error     metrics.Summary
	Accuracy  metrics.Summary
	AUC       metrics.Summary
	MRR       metrics.Summary
	PeakBytes int64 // max over runs
}

// RunRepeated executes a cell `runs` times with distinct seeds.
func RunRepeated(cfg CellConfig, runs int) (AggResult, error) {
	agg := AggResult{Cell: cfg}
	for r := 0; r < runs; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		c.Gen.Seed = cfg.Gen.Seed + int64(r)
		res, err := RunCell(c)
		if err != nil {
			return agg, err
		}
		agg.Time.Add(res.TrainTime.Seconds())
		agg.Error.Add(res.Error)
		agg.Accuracy.Add(res.Accuracy)
		if !math.IsNaN(res.AUC) {
			agg.AUC.Add(res.AUC)
		}
		agg.MRR.Add(res.MRR)
		if res.PeakStepBytes > agg.PeakBytes {
			agg.PeakBytes = res.PeakStepBytes
		}
	}
	return agg, nil
}

// FormatBytes renders a byte count the way the paper's Memory column does.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
