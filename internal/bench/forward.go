package bench

import (
	"fmt"
	"math/rand"
	"time"

	"streamgnn"
)

// ForwardAB compares full-snapshot forward inference against the
// dirty-region incremental path (Config.IncrementalForward) on a synthetic
// sparse-update stream: per step only DirtyPerStep nodes (well under 5% of
// the graph) change features or gain an edge, so the compute region stays a
// small fraction of the snapshot and the incremental engine splices instead
// of recomputing.
type ForwardAB struct {
	Nodes        int
	DirtyPerStep int
	Model        string
	// FullStepsPerSec / IncStepsPerSec are whole-Step throughputs of the
	// baseline and incremental engines on the identical stream; Speedup is
	// their ratio.
	FullStepsPerSec float64
	IncStepsPerSec  float64
	Speedup         float64
	// IncFullForwards / IncIncForwards break down how the incremental
	// engine's measured steps were served.
	IncFullForwards int64
	IncIncForwards  int64
}

// newForwardEngine builds an engine over a ring-plus-chords graph of n
// nodes. Training is effectively disabled (huge Interval) so the comparison
// isolates the inference phase, which is what the incremental path changes.
func newForwardEngine(model string, n int, incremental bool) (*streamgnn.Engine, error) {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = model
	cfg.Strategy = streamgnn.StrategyWeighted
	cfg.Hidden = 16
	cfg.Seed = 42
	cfg.Interval = 1 << 30
	cfg.IncrementalForward = incremental
	e, err := streamgnn.NewEngine(8, cfg)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		f := make([]float64, 8)
		f[i%8] = 1
		e.AddNode(0, f)
	}
	for i := 0; i < n; i++ {
		e.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	// Sparse chords keep L-hop balls small while breaking pure-ring symmetry.
	for i := 0; i < n/50; i++ {
		e.AddUndirectedEdge(r.Intn(n), r.Intn(n), 0)
	}
	return e, nil
}

// mutateSparse applies step s's mutations: dirty feature rewrites plus one
// new edge, touching the same nodes in both engines.
func mutateSparse(e *streamgnn.Engine, n, dirty, s int) {
	for k := 0; k < dirty; k++ {
		v := (s*31 + k*97) % n
		f := make([]float64, 8)
		f[(s+k)%8] = float64(s%7) * 0.3
		e.SetFeature(v, f)
	}
	e.AddEdge((s*13)%n, (s*17+5)%n, 0)
}

// RunForwardAB measures whole-Step throughput of a full-forward engine and
// an incremental-forward engine on the same sparse-update stream of the
// given length, after an identical warmup.
func RunForwardAB(model string, steps int) (ForwardAB, error) {
	const n = 3000
	dirty := n / 100 // 1% of nodes per step
	ab := ForwardAB{Nodes: n, DirtyPerStep: dirty, Model: model}

	run := func(incremental bool) (float64, *streamgnn.Engine, error) {
		e, err := newForwardEngine(model, n, incremental)
		if err != nil {
			return 0, nil, err
		}
		// Warmup: step 0 trains once (0 % Interval == 0) and invalidates the
		// incremental cache; two more steps re-establish it.
		for s := 0; s < 3; s++ {
			mutateSparse(e, n, dirty, s)
			if err := e.Step(); err != nil {
				return 0, nil, err
			}
		}
		start := time.Now()
		for s := 3; s < 3+steps; s++ {
			mutateSparse(e, n, dirty, s)
			if err := e.Step(); err != nil {
				return 0, nil, err
			}
		}
		return float64(steps) / time.Since(start).Seconds(), e, nil
	}

	// Interleave three reps of each mode and keep the medians, like the
	// hot-path training comparison.
	var full, inc [3]float64
	var incEngine *streamgnn.Engine
	for r := 0; r < 3; r++ {
		var err error
		if full[r], _, err = run(false); err != nil {
			return ab, err
		}
		if inc[r], incEngine, err = run(true); err != nil {
			return ab, err
		}
	}
	ab.FullStepsPerSec = median3(full[0], full[1], full[2])
	ab.IncStepsPerSec = median3(inc[0], inc[1], inc[2])
	if ab.FullStepsPerSec > 0 {
		ab.Speedup = ab.IncStepsPerSec / ab.FullStepsPerSec
	}
	tele := incEngine.Telemetry()
	ab.IncFullForwards = tele.FullForwards
	ab.IncIncForwards = tele.IncrementalForwards
	return ab, nil
}

// String renders the comparison for the streambench table output.
func (ab ForwardAB) String() string {
	return fmt.Sprintf(
		"Forward inference (%s, %d nodes, %d dirty/step)\n  full %.1f st/s, incremental %.1f st/s (%.2fx; %d inc / %d full forwards)\n",
		ab.Model, ab.Nodes, ab.DirtyPerStep,
		ab.FullStepsPerSec, ab.IncStepsPerSec, ab.Speedup,
		ab.IncIncForwards, ab.IncFullForwards)
}
