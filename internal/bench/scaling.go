package bench

import (
	"fmt"
	"io"

	"streamgnn/internal/core"
)

// ScalingPoint is one measurement of the scaling study: training cost of
// full vs adaptive training as the stream (and with it the snapshot) grows.
type ScalingPoint struct {
	Scale        float64
	Nodes        int
	FullSeconds  float64
	KDESeconds   float64
	FullPeak     int64
	KDEPeak      int64
	FullError    float64
	KDEError     float64
	TimeSpeedup  float64
	MemReduction float64
}

// RunScaling measures the paper's complexity argument directly: per-step
// full training is O(n) while a node partition is O(d^L), so the resource
// gap must widen as the workload scales. Uses the Taxi generator, whose node
// count grows with scale and steps.
func RunScaling(scales []float64, steps int, seed int64) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, scale := range scales {
		full := EqualizedCell("Taxi", "DCRNN", core.Full)
		full.Gen.Scale = scale
		full.Gen.Steps = steps
		full.Seed = seed
		full.Gen.Seed = seed
		fr, err := RunCell(full)
		if err != nil {
			return nil, err
		}
		kde := EqualizedCell("Taxi", "DCRNN", core.KDE)
		kde.Gen.Scale = scale
		kde.Gen.Steps = steps
		kde.Seed = seed
		kde.Gen.Seed = seed
		kr, err := RunCell(kde)
		if err != nil {
			return nil, err
		}
		p := ScalingPoint{
			Scale:       scale,
			Nodes:       36 + int(scale*22)*(steps-1), // grid + trips
			FullSeconds: fr.TrainTime.Seconds(),
			KDESeconds:  kr.TrainTime.Seconds(),
			FullPeak:    fr.PeakStepBytes,
			KDEPeak:     kr.PeakStepBytes,
			FullError:   fr.Error,
			KDEError:    kr.Error,
		}
		if p.KDESeconds > 0 {
			p.TimeSpeedup = p.FullSeconds / p.KDESeconds
		}
		if p.KDEPeak > 0 {
			p.MemReduction = float64(p.FullPeak) / float64(p.KDEPeak)
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteScaling prints the scaling study as a table.
func WriteScaling(w io.Writer, points []ScalingPoint) {
	fmt.Fprintf(w, "%8s %8s %12s %12s %10s %10s %10s %10s\n",
		"scale", "~nodes", "full-time(s)", "kde-time(s)", "full-mem", "kde-mem", "speedup", "mem-ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%8.2f %8d %12.3f %12.3f %10s %10s %9.1fx %9.1fx\n",
			p.Scale, p.Nodes, p.FullSeconds, p.KDESeconds,
			FormatBytes(p.FullPeak), FormatBytes(p.KDEPeak),
			p.TimeSpeedup, p.MemReduction)
	}
}
