package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
	"streamgnn/internal/tensor"
	"streamgnn/internal/workload"
)

// This file benchmarks the adaptive hot path in isolation: partition
// extraction (cold vs. cached) and Algorithm-1 steps (serial vs. worker-pool
// pair evaluation). The stream is replayed to its final snapshot once,
// outside the measured region, so the numbers attribute to training alone.

// HotPathCell is a fully replayed dataset snapshot with a live trainer and
// adaptive learner, ready to execute training steps back to back.
type HotPathCell struct {
	G       *graph.Dynamic
	Trainer *core.Trainer
	Learner *core.AdaptiveLearner
	// Updated is the last stream step's update set, reused for every bench
	// step so the p_u-biased sampling path stays realistic.
	Updated []int
}

// NewHotPathCell replays the dataset to its final snapshot (running full
// inference each step so recurrent model state is populated exactly as in a
// live engine) and wires an adaptive learner with the given core config.
// cacheCap > 0 attaches the version-keyed partition cache; pooling follows
// the engine default (on).
func NewHotPathCell(dataset, model string, cfg core.Config, cacheCap int, seed int64) (*HotPathCell, error) {
	cell := DefaultCell(dataset, model, core.Weighted)
	cell.Gen.Seed = seed
	ds, err := workload.ByName(cell.Dataset, cell.Gen)
	if err != nil {
		return nil, err
	}
	kind, err := dgnn.ParseKind(cell.Model)
	if err != nil {
		return nil, err
	}
	tensor.EnablePooling(true)
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDynamic(ds.FeatDim)
	rep := stream.NewReplayer(g, ds.Source(), ds.WindowSteps)
	m := dgnn.New(kind, rng, ds.FeatDim, cell.Hidden)
	heads := query.NewHeads(rng, cell.Hidden)
	wl := query.NewWorkload(heads)
	ds.Attach(wl, seed+1)
	params := append(m.Params(), heads.Params()...)
	opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, params))
	trainer := core.NewTrainer(g, m, wl, opt, cfg, rng)

	var updated []int
	for rep.Advance() {
		t := rep.Step()
		updated = append(updated[:0], g.Updated()...)
		m.BeginStep(t)
		tp := autodiff.NewTape()
		emb := m.Forward(tp, dgnn.FullView(g))
		wl.Reveal(g, t)
		wl.Predict(emb.Value, t)
		g.ResetUpdated()
	}
	if cacheCap > 0 {
		g.EnablePartitionCache(cacheCap)
	}
	learner := core.NewAdaptiveLearner(trainer, cfg, core.Weighted, rng)
	return &HotPathCell{G: g, Trainer: trainer, Learner: learner, Updated: updated}, nil
}

// Step runs one Algorithm-1 training step at the frozen snapshot.
func (h *HotPathCell) Step() { h.Learner.Step(h.Updated) }

// HotPathPoint is one PairsPerStep throughput comparison: the sequential
// baseline (per-unit optimizer steps, no partition cache, no buffer pooling,
// Workers=1 — the pre-optimization schedule) against the optimized hot path
// (gradient accumulation, warm cache, pooling, Workers=NumCPU).
type HotPathPoint struct {
	Pairs           int
	Workers         int
	BaselinePerSec  float64
	OptimizedPerSec float64
	Speedup         float64
}

// HotPathReport aggregates the hot-path comparison for cmd/streambench.
type HotPathReport struct {
	Dataset, Model string
	Points         []HotPathPoint
	// ColdNs / WarmNs are per-extraction partition build costs without and
	// with the cache; CacheSpeedup is their ratio.
	ColdNs, WarmNs float64
	CacheSpeedup   float64
	HitRate        float64
	// Forward is the full vs. incremental inference comparison (see
	// RunForwardAB); nil when the forward A/B was not run.
	Forward *ForwardAB
	// Sharded is the unsharded vs. sharded incremental-forward comparison
	// (see RunShardedAB); nil when the sharded A/B was not run.
	Sharded *ShardedAB
	// Delta is the region-splice vs. delta-propagation comparison on the
	// hub-heavy stream (see RunDeltaAB); nil when the delta A/B was not run.
	Delta *DeltaAB
	// Sched is the serial-apply vs. conflict-group-schedule comparison (see
	// RunScheduleAB); nil when the scheduler A/B was not run.
	Sched *SchedAB
}

// timeSteps measures adaptive-step throughput (steps/sec) for one
// configuration. optimized selects the full hot path (gradient accumulation,
// warm partition cache, buffer pooling, Workers=NumCPU); otherwise the
// sequential baseline (per-unit Adam steps, no cache, no pooling, Workers=1).
func timeSteps(dataset, model string, optimized bool, pairs, steps int, seed int64) (float64, error) {
	cfg := core.DefaultConfig()
	cfg.PairsPerStep = pairs
	capacity := 0
	if optimized {
		cfg.Workers = runtime.NumCPU()
		capacity = cfg.PartitionCacheCap
	} else {
		cfg.Workers = 1
		cfg.PerUnitApply = true
	}
	cell, err := NewHotPathCell(dataset, model, cfg, capacity, seed)
	if err != nil {
		return 0, err
	}
	tensor.EnablePooling(optimized)
	defer tensor.EnablePooling(true)
	for i := 0; i < 3; i++ { // warm the cache and the pools
		cell.Step()
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		cell.Step()
	}
	return float64(steps) / time.Since(start).Seconds(), nil
}

// median3 returns the median of three samples (robust against a single
// noisy measurement on a shared machine).
func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// RunHotPath produces the full hot-path comparison: partition extraction
// cold vs. warm, and step throughput of the sequential baseline vs. the
// optimized configuration at PairsPerStep in {1, 3, 7}.
func RunHotPath(dataset, model string, steps int, seed int64) (HotPathReport, error) {
	rep := HotPathReport{Dataset: dataset, Model: model}

	// Partition extraction: the trainer's 2-hop balls around every node.
	cfg := core.DefaultConfig()
	cold, err := NewHotPathCell(dataset, model, cfg, 0, seed)
	if err != nil {
		return rep, err
	}
	const rounds = 20
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for v := 0; v < cold.G.N(); v++ {
			cold.G.Partition(v, 2)
		}
	}
	rep.ColdNs = float64(time.Since(start).Nanoseconds()) / float64(rounds*cold.G.N())

	warm, err := NewHotPathCell(dataset, model, cfg, 4096, seed)
	if err != nil {
		return rep, err
	}
	for v := 0; v < warm.G.N(); v++ { // populate
		warm.G.Partition(v, 2)
	}
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for v := 0; v < warm.G.N(); v++ {
			warm.G.Partition(v, 2)
		}
	}
	rep.WarmNs = float64(time.Since(start).Nanoseconds()) / float64(rounds*warm.G.N())
	if rep.WarmNs > 0 {
		rep.CacheSpeedup = rep.ColdNs / rep.WarmNs
	}
	rep.HitRate = warm.G.PartitionCacheStats().HitRate()

	ncpu := runtime.NumCPU()
	// Each throughput sample runs well past the stream length: individual
	// adaptive steps are sub-millisecond, so short windows measure timer and
	// warm-up noise rather than steady-state throughput.
	measure := steps * 30
	if measure < 1200 {
		measure = 1200
	}
	for _, pairs := range []int{1, 3, 7} {
		// Interleave baseline and optimized reps so ambient load on a shared
		// machine hits both configurations alike; report the medians.
		var base, opt [3]float64
		for r := 0; r < 3; r++ {
			if base[r], err = timeSteps(dataset, model, false, pairs, measure, seed); err != nil {
				return rep, err
			}
			if opt[r], err = timeSteps(dataset, model, true, pairs, measure, seed); err != nil {
				return rep, err
			}
		}
		p := HotPathPoint{
			Pairs:           pairs,
			Workers:         ncpu,
			BaselinePerSec:  median3(base[0], base[1], base[2]),
			OptimizedPerSec: median3(opt[0], opt[1], opt[2]),
		}
		if p.BaselinePerSec > 0 {
			p.Speedup = p.OptimizedPerSec / p.BaselinePerSec
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// FormatHotPath renders the report as the streambench table.
func (r HotPathReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot path (%s / %s)\n", r.Dataset, r.Model)
	fmt.Fprintf(&b, "  partition extraction: cold %.0f ns, warm %.0f ns (%.1fx, hit rate %.2f)\n",
		r.ColdNs, r.WarmNs, r.CacheSpeedup, r.HitRate)
	fmt.Fprintf(&b, "  %-8s %-9s %14s %15s %9s\n", "pairs", "workers", "baseline st/s", "optimized st/s", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-8d %-9d %14.1f %15.1f %8.2fx\n",
			p.Pairs, p.Workers, p.BaselinePerSec, p.OptimizedPerSec, p.Speedup)
	}
	if r.Forward != nil {
		b.WriteString(r.Forward.String())
	}
	if r.Sharded != nil {
		b.WriteString(r.Sharded.String())
	}
	if r.Delta != nil {
		b.WriteString(r.Delta.String())
	}
	if r.Sched != nil {
		b.WriteString(r.Sched.String())
	}
	return b.String()
}
