package query

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
	"streamgnn/internal/tensor"
)

func testGraph(n int) *graph.Dynamic {
	g := graph.NewDynamic(2)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i), 1})
	}
	for i := 0; i+1 < n; i++ {
		g.AddUndirectedEdge(i, i+1, 0, 0)
	}
	return g
}

func TestHeadsParams(t *testing.T) {
	h := NewHeads(rand.New(rand.NewSource(1)), 4)
	if len(h.Params()) != 4*4 {
		t.Fatalf("param count %d", len(h.Params()))
	}
}

func TestPredictRevealCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHeads(rng, 4)
	w := NewWorkload(h)
	q := &EventQuery{
		Name:      "abnormal",
		Anchors:   []int{0, 2},
		Delta:     2,
		Threshold: 0.5,
		Labeler: func(g *graph.Dynamic, anchor, step int) (float64, bool) {
			return float64(anchor) + float64(step)/10, true
		},
	}
	w.AddQuery(q)

	emb := tensor.NewRandom(rng, 5, 4, 1)
	w.Predict(emb, 3) // predicts for step 5
	if len(w.Outcomes()) != 0 {
		t.Fatal("outcomes before reveal")
	}
	g := testGraph(5)
	w.Reveal(g, 4) // nothing due
	if len(w.Outcomes()) != 0 {
		t.Fatal("premature reveal")
	}
	w.Reveal(g, 5)
	outs := w.Outcomes()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for _, o := range outs {
		wantTruth := float64(o.Anchor) + 0.5
		if math.Abs(o.Truth-wantTruth) > 1e-12 || o.Step != 5 || o.Query != "abnormal" {
			t.Fatalf("outcome wrong: %+v", o)
		}
		if o.Event != (o.Truth > 0.5) {
			t.Fatal("event flag wrong")
		}
	}
	// Revealed targets exposed for supervision.
	if tgt, ok := w.RevealedTarget(2); !ok || tgt.Value != 2.5 || tgt.Step != 5 {
		t.Fatalf("revealed target wrong: %+v ok=%v", tgt, ok)
	}
	if _, ok := w.RevealedTarget(1); ok {
		t.Fatal("non-anchor has a target")
	}
	w.ResetOutcomes()
	if len(w.Outcomes()) != 0 {
		t.Fatal("ResetOutcomes failed")
	}
}

func TestPredictSkipsMissingAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWorkload(NewHeads(rng, 4))
	w.AddQuery(&EventQuery{
		Name:    "q",
		Anchors: []int{0, 99},
		Delta:   1,
		Labeler: func(g *graph.Dynamic, anchor, step int) (float64, bool) { return 1, true },
	})
	emb := tensor.NewRandom(rng, 3, 4, 1)
	w.Predict(emb, 0)
	w.Reveal(testGraph(3), 1)
	if len(w.Outcomes()) != 1 {
		t.Fatalf("outcomes = %d, want 1 (missing anchor skipped)", len(w.Outcomes()))
	}
}

func TestLabelerCanWithholdTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewWorkload(NewHeads(rng, 4))
	w.AddQuery(&EventQuery{
		Name:    "q",
		Anchors: []int{0},
		Delta:   1,
		Labeler: func(g *graph.Dynamic, anchor, step int) (float64, bool) { return 0, false },
	})
	w.Predict(tensor.NewRandom(rng, 2, 4, 1), 0)
	w.Reveal(testGraph(2), 1)
	if len(w.Outcomes()) != 0 {
		t.Fatal("withheld truth should produce no outcome")
	}
}

func TestSupervisionFromSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWorkload(NewHeads(rng, 4))
	w.AddQuery(&EventQuery{
		Name:    "q",
		Anchors: []int{1, 4},
		Delta:   1,
		Labeler: func(g *graph.Dynamic, anchor, step int) (float64, bool) {
			return float64(anchor), true
		},
	})
	g := testGraph(6)
	w.Predict(tensor.NewRandom(rng, 6, 4, 1), 0)
	w.Reveal(g, 1)
	sub := g.Partition(1, 1) // nodes {0,1,2}
	sup := w.Supervision(sub, nil)
	if len(sup.NodeRows) != 1 || sup.NodeTargets[0] != 1 {
		t.Fatalf("supervision = %+v", sup)
	}
	if sup.Empty() {
		t.Fatal("Empty() wrong")
	}
	empty := w.Supervision(g.Partition(3, 0), nil)
	if !empty.Empty() {
		t.Fatal("partition without anchors should be empty")
	}
}

func TestLinkPredRevealAndRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := NewHeads(rng, 4)
	w := NewWorkload(h)
	lt := NewLinkPredTask(7)
	w.SetLinkTask(lt)

	g := testGraph(6)
	emb := tensor.NewRandom(rng, 6, 4, 1)
	w.Predict(emb, 0)
	// Edges arriving at step 1.
	g.AddEdge(0, 3, 0, 1)
	g.AddEdge(2, 5, 0, 1)
	w.Reveal(g, 1)

	scores, labels := lt.Scores()
	if len(scores) != 2*(1+lt.NegPerPos) || len(labels) != len(scores) {
		t.Fatalf("scores len %d", len(scores))
	}
	npos := 0
	for _, l := range labels {
		if l {
			npos++
		}
	}
	if npos != 2 {
		t.Fatalf("positives = %d", npos)
	}
	ranks := lt.Ranks()
	if len(ranks) != 2 {
		t.Fatalf("ranks len %d", len(ranks))
	}
	for _, r := range ranks {
		if r < 1 || r > lt.RankNegs+1 {
			t.Fatalf("rank out of range: %d", r)
		}
	}
	if len(lt.RecentPairs()) != 2*(1+lt.NegPerPos) {
		t.Fatalf("recent pairs %d", len(lt.RecentPairs()))
	}
	// Supervision pairs inside a subgraph containing 0 and 3.
	sub := g.Induced([]int{0, 3}, -1)
	sup := w.Supervision(sub, nil)
	foundPos := false
	for i := range sup.PairSrc {
		if sup.PairLabels[i] == 1 {
			foundPos = true
		}
	}
	if !foundPos {
		t.Fatal("positive pair not exposed as supervision")
	}
	lt.ResetOutcomes()
	if s, _ := lt.Scores(); len(s) != 0 || len(lt.Ranks()) != 0 {
		t.Fatal("ResetOutcomes failed")
	}
}

func TestLinkPredSkipsWithoutEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := NewHeads(rng, 4)
	lt := NewLinkPredTask(1)
	g := testGraph(4)
	g.AddEdge(0, 2, 0, 1)
	lt.reveal(g, 1, h) // no observed embeddings yet
	if len(lt.Ranks()) != 0 {
		t.Fatal("reveal without embeddings should no-op")
	}
	// Stale embeddings (step gap) are also skipped.
	lt.observeEmbeddings(tensor.NewRandom(rng, 4, 4, 1), 5)
	lt.reveal(g, 9, h)
	if len(lt.Ranks()) != 0 {
		t.Fatal("stale embeddings should be skipped")
	}
}

func TestLinkPredCapsPositives(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewHeads(rng, 4)
	lt := NewLinkPredTask(2)
	lt.MaxPositives = 3
	g := testGraph(10)
	lt.observeEmbeddings(tensor.NewRandom(rng, 10, 4, 1), 0)
	for i := 0; i < 8; i++ {
		g.AddEdge(i, (i+2)%10, 0, 1)
	}
	lt.reveal(g, 1, h)
	if len(lt.Ranks()) != 3 {
		t.Fatalf("positives not capped: %d", len(lt.Ranks()))
	}
}
