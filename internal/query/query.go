// Package query implements the continuous analytics workload of the paper's
// Section II: continuous predictive queries that, at every step t, predict a
// function of the data in snapshot t+δ. Predictions are made from DGNN
// embeddings through per-task MLP heads (Figure 2); when step t+δ arrives
// the ground truth is revealed, producing both evaluation outcomes and the
// delayed supervision targets that drive the supervised part of training
// (Section III-B).
package query

import (
	"math/rand"
	"sort"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// Heads bundles the MLP prediction heads stacked on DGNN embeddings: one for
// event-monitoring queries, one for link prediction, and two for the
// self-supervised node/edge-label tasks.
type Heads struct {
	Event    *nn.MLP // hidden -> 1: monitored value at an anchor
	Link     *nn.MLP // 3*hidden -> 1: logit that an edge appears
	SelfNode *nn.MLP // hidden -> 1: node label
	SelfEdge *nn.MLP // 3*hidden -> 1: edge label
}

// NewHeads returns heads for the given embedding dimension.
func NewHeads(rng *rand.Rand, hidden int) *Heads {
	return &Heads{
		Event:    nn.NewMLP(rng, hidden, hidden, 1),
		Link:     nn.NewMLP(rng, 3*hidden, hidden, 1),
		SelfNode: nn.NewMLP(rng, hidden, hidden, 1),
		SelfEdge: nn.NewMLP(rng, 3*hidden, hidden, 1),
	}
}

// Params returns all head parameters.
func (h *Heads) Params() []*autodiff.Node {
	return nn.CollectParams(h.Event, h.Link, h.SelfNode, h.SelfEdge)
}

// PairInput builds the [emb_u | emb_v | emb_u∘emb_v] input rows for pair
// heads; the Hadamard channel makes co-membership linearly separable, which
// matters for ranking candidate links.
func PairInput(tp *autodiff.Tape, emb *autodiff.Node, src, dst []int) *autodiff.Node {
	u := tp.GatherRows(emb, src)
	v := tp.GatherRows(emb, dst)
	return tp.ConcatCols(tp.ConcatCols(u, v), tp.Mul(u, v))
}

// EventQuery is one continuous predictive query: at every step t it predicts
// the monitored value at each anchor node for step t+Delta, and fires an
// event when the value exceeds Threshold.
type EventQuery struct {
	Name      string
	Anchors   []int
	Delta     int
	Threshold float64
	// Labeler returns the ground-truth monitored value at anchor for step
	// (revealed once the stream reaches that step), and whether truth is
	// available.
	Labeler func(g *graph.Dynamic, anchor, step int) (float64, bool)
}

// Outcome is one resolved prediction, used for metric computation.
type Outcome struct {
	Query  string
	Anchor int
	Step   int // the predicted-for step
	Score  float64
	Truth  float64
	Event  bool // Truth > query threshold
}

// Target is a revealed supervision target at a node.
type Target struct {
	Value float64
	Step  int
}

type pendingPred struct {
	q      *EventQuery
	anchor int
	score  float64
	emb    []float64 // anchor's embedding at prediction time
}

// replayExample is one revealed supervision pair: the embedding the
// prediction was made from and the truth that later arrived. The buffer
// holds only the freshest reveals (it is cleared at each reveal step), so
// every training unit can refit the event head on a minibatch of the most
// recent query results (constant inputs — only the head trains through
// replay). This removes the catastrophic interference of single-target
// online updates without feeding back pre-drift targets.
type replayExample struct {
	emb   []float64
	truth float64
}

// Alert is a fired monitoring notification: at some step the system
// predicted that a query's monitored value will exceed its threshold at
// ForStep (the "notify me when it is predicted that ..." semantics of the
// paper's Example 1).
type Alert struct {
	Query   string
	Anchor  int
	ForStep int
	Score   float64
}

// Workload is the set of continuous queries the engine answers and trains
// against. It tracks in-flight predictions, resolves them when their step
// arrives, accumulates evaluation outcomes, and exposes revealed targets as
// supervision for node-partition training.
type Workload struct {
	//streamlint:ckpt-exempt head parameters are serialized through Params() by the engine checkpoint
	heads   *Heads
	queries []*EventQuery
	link    *LinkPredTask

	pending  map[int][]pendingPred
	revealed map[int]Target
	outcomes []Outcome
	alerts   []Alert

	replay    []replayExample
	replayPos int
}

// replayCap bounds the supervised replay ring (a few steps of reveals).
const replayCap = 192

// NewWorkload returns an empty workload using the given heads.
func NewWorkload(heads *Heads) *Workload {
	return &Workload{
		heads:    heads,
		pending:  make(map[int][]pendingPred),
		revealed: make(map[int]Target),
	}
}

// Heads returns the workload's prediction heads.
func (w *Workload) Heads() *Heads { return w.heads }

// AddQuery registers a continuous predictive query.
func (w *Workload) AddQuery(q *EventQuery) { w.queries = append(w.queries, q) }

// Queries returns the registered event queries.
func (w *Workload) Queries() []*EventQuery { return w.queries }

// SetLinkTask attaches a continuous link-prediction task.
func (w *Workload) SetLinkTask(t *LinkPredTask) { w.link = t }

// LinkTask returns the attached link-prediction task, or nil.
func (w *Workload) LinkTask() *LinkPredTask { return w.link }

// Predict issues every query's prediction at step t from the full-graph
// embedding matrix (value-only; no gradients). Predictions for step t+δ are
// parked until Reveal(t+δ).
func (w *Workload) Predict(emb *tensor.Matrix, step int) {
	// Collect every (query, anchor) slot, then score all anchors through one
	// stacked event-head application — the same batched path AnswerBatch
	// serves ad-hoc queries with, so per-step prediction and serving share
	// one code path (and bit-identical scores).
	type slot struct {
		q      *EventQuery
		anchor int
	}
	var slots []slot
	var anchors []int
	for _, q := range w.queries {
		for _, a := range q.Anchors {
			if a >= emb.Rows {
				continue // anchor node not in the graph yet
			}
			slots = append(slots, slot{q: q, anchor: a})
			anchors = append(anchors, a)
		}
	}
	if len(slots) > 0 {
		rows := tensor.GatherRows(emb, anchors)
		scores := headColumn(w.heads.Event, rows)
		for i, s := range slots {
			score := scores[i]
			due := step + s.q.Delta
			row := append([]float64(nil), rows.Row(i)...)
			w.pending[due] = append(w.pending[due], pendingPred{q: s.q, anchor: s.anchor, score: score, emb: row})
			if score > s.q.Threshold {
				w.alerts = append(w.alerts, Alert{Query: s.q.Name, Anchor: s.anchor, ForStep: due, Score: score})
			}
		}
	}
	if w.link != nil {
		w.link.observeEmbeddings(emb, step)
	}
}

// Reveal resolves the predictions that were made for `step`, now that the
// snapshot has arrived: it computes truths, records outcomes, and refreshes
// the revealed supervision targets.
func (w *Workload) Reveal(g *graph.Dynamic, step int) {
	if len(w.pending[step]) > 0 {
		// Fresh reveals replace the replay buffer wholesale: under drift,
		// pre-regime-change targets would actively mistrain the heads.
		w.replay = w.replay[:0]
		w.replayPos = 0
	}
	for _, p := range w.pending[step] {
		truth, ok := p.q.Labeler(g, p.anchor, step)
		if !ok {
			continue
		}
		w.outcomes = append(w.outcomes, Outcome{
			Query:  p.q.Name,
			Anchor: p.anchor,
			Step:   step,
			Score:  p.score,
			Truth:  truth,
			Event:  truth > p.q.Threshold,
		})
		w.revealed[p.anchor] = Target{Value: truth, Step: step}
		ex := replayExample{emb: p.emb, truth: truth}
		if len(w.replay) < replayCap {
			w.replay = append(w.replay, ex)
		} else {
			w.replay[w.replayPos] = ex
			w.replayPos = (w.replayPos + 1) % replayCap
		}
	}
	delete(w.pending, step)
	if w.link != nil {
		w.link.reveal(g, step, w.heads)
	}
}

// Outcomes returns all resolved predictions so far.
func (w *Workload) Outcomes() []Outcome { return w.outcomes }

// ReplayBatch samples up to n revealed (embedding, truth) pairs from the
// replay ring. It returns nil when no reveals have happened yet.
func (w *Workload) ReplayBatch(rng *rand.Rand, n int) (emb *tensor.Matrix, truths []float64) {
	if len(w.replay) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(w.replay) {
		n = len(w.replay)
	}
	dim := len(w.replay[0].emb)
	emb = tensor.New(n, dim)
	truths = make([]float64, n)
	for i := 0; i < n; i++ {
		ex := w.replay[rng.Intn(len(w.replay))]
		copy(emb.Row(i), ex.emb)
		truths[i] = ex.truth
	}
	return emb, truths
}

// TakeAlerts drains and returns the alerts fired since the last call.
func (w *Workload) TakeAlerts() []Alert {
	a := w.alerts
	w.alerts = nil
	return a
}

// ResetOutcomes clears accumulated outcomes (between measurement windows).
func (w *Workload) ResetOutcomes() { w.outcomes = nil }

// RevealedTarget returns the most recent revealed target at node v.
func (w *Workload) RevealedTarget(v int) (Target, bool) {
	t, ok := w.revealed[v]
	return t, ok
}

// Supervision is the training material available inside one node partition:
// revealed event targets at anchor nodes, and labeled link pairs.
type Supervision struct {
	NodeRows    []int // local indices into the subgraph
	NodeTargets []float64
	PairSrc     []int
	PairDst     []int
	PairLabels  []float64
}

// Empty reports whether no supervised material is available.
func (s Supervision) Empty() bool {
	return len(s.NodeRows) == 0 && len(s.PairSrc) == 0
}

// SupervisionFull collects every revealed target and labeled pair for a
// full-graph training pass over n nodes (indices are global node ids).
func (w *Workload) SupervisionFull(n int) Supervision {
	var sup Supervision
	ids := make([]int, 0, len(w.revealed))
	for v := range w.revealed {
		if v < n {
			ids = append(ids, v)
		}
	}
	sort.Ints(ids) // deterministic loss composition across runs
	for _, v := range ids {
		sup.NodeRows = append(sup.NodeRows, v)
		sup.NodeTargets = append(sup.NodeTargets, w.revealed[v].Value)
	}
	if w.link != nil {
		for _, p := range w.link.recentPairs {
			if p.U < n && p.V < n {
				sup.PairSrc = append(sup.PairSrc, p.U)
				sup.PairDst = append(sup.PairDst, p.V)
				sup.PairLabels = append(sup.PairLabels, p.Label)
			}
		}
	}
	return sup
}

// Supervision collects the workload's supervised targets that fall inside
// the given subgraph (a node's training partition). rng draws the balancing
// in-partition negatives; pass the training unit's private rng when units
// are evaluated concurrently (nil falls back to the link task's own rng,
// which is only safe single-threaded).
func (w *Workload) Supervision(sub *graph.Subgraph, rng *rand.Rand) Supervision {
	var sup Supervision
	if rng == nil && w.link != nil {
		rng = w.link.rng
	}
	for li, v := range sub.Nodes {
		if t, ok := w.revealed[v]; ok {
			sup.NodeRows = append(sup.NodeRows, li)
			sup.NodeTargets = append(sup.NodeTargets, t.Value)
		}
	}
	if w.link != nil {
		for _, p := range w.link.recentPairs {
			lu, lv := sub.LocalID(p.U), sub.LocalID(p.V)
			if lu < 0 || lv < 0 {
				continue
			}
			sup.PairSrc = append(sup.PairSrc, lu)
			sup.PairDst = append(sup.PairDst, lv)
			sup.PairLabels = append(sup.PairLabels, p.Label)
			if p.Label == 1 && sub.N() > 2 {
				// Globally sampled negatives almost never have both
				// endpoints inside a small partition, so balance each
				// positive with negatives drawn inside the subgraph.
				for k := 0; k < w.link.NegPerPos; k++ {
					nv := rng.Intn(sub.N())
					if nv == lu || nv == lv {
						continue
					}
					sup.PairSrc = append(sup.PairSrc, lu)
					sup.PairDst = append(sup.PairDst, nv)
					sup.PairLabels = append(sup.PairLabels, 0)
				}
			}
		}
	}
	return sup
}
