package query

import (
	"fmt"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// This file is the batched query-serving path: N predictive queries are
// answered against one embedding matrix with one head application per task
// kind — a single stacked GatherRows + MLP forward instead of N scalar
// applies — and, for density queries, one shared KDE seed-window density
// vector per batch. Because every kernel in the stack (GatherRows,
// ConcatCols, Mul, MatMul, AddBias, ReLU) computes each output row with the
// same floating-point order as its 1-row counterpart, batched scores are
// bit-identical to the serial per-query scores for any batch size; the
// per-step Workload.Predict and LinkPredTask.reveal paths reuse these same
// functions, so ad-hoc serving and continuous prediction share one code path.

// Request kinds accepted by AnswerBatch.
const (
	// KindEvent scores the event head at one anchor node's embedding: the
	// predicted monitored value Delta steps ahead, as in Workload.Predict.
	KindEvent = "event"
	// KindLink scores the link head on one (src, dst) node pair: the logit
	// that the edge appears next step.
	KindLink = "link"
	// KindDensity reads the graph-KDE seed-window sampling density at one
	// node. The density vector is evaluated once per batch and shared by
	// every density request in it.
	KindDensity = "density"
)

// Request is one predictive query in a served batch. Exactly the fields of
// its kind are consulted: Anchor for event queries, Src/Dst for link
// queries, Node for density queries.
type Request struct {
	Kind   string `json:"kind"`
	Anchor int    `json:"anchor,omitempty"`
	Src    int    `json:"src,omitempty"`
	Dst    int    `json:"dst,omitempty"`
	Node   int    `json:"node,omitempty"`
}

// Answer is the result for one Request; answers are returned in request
// order. OK is false when the request could not be served (node outside the
// embedding matrix, unknown kind, no density vector for a density request),
// with Err naming the reason.
type Answer struct {
	Score float64 `json:"score"`
	OK    bool    `json:"ok"`
	Err   string  `json:"error,omitempty"`
}

// headColumn applies an MLP head to a stacked input matrix (value-only) and
// returns its single output column.
func headColumn(head *nn.MLP, in *tensor.Matrix) []float64 {
	tp := autodiff.NewTape()
	out := head.Apply(tp, autodiff.Constant(in)).Value
	scores := make([]float64, out.Rows)
	for i := range scores {
		scores[i] = out.At(i, 0)
	}
	return scores
}

// EventScores scores the event head at every anchor through one stacked
// forward. Each score is bit-identical to a 1-row gather + apply of the same
// anchor. Anchors must be valid rows of emb.
func EventScores(h *Heads, emb *tensor.Matrix, anchors []int) []float64 {
	if len(anchors) == 0 {
		return nil
	}
	return headColumn(h.Event, tensor.GatherRows(emb, anchors))
}

// PairInputRows builds the stacked [emb_u | emb_v | emb_u∘emb_v] pair-input
// matrix for the link head — the value-level counterpart of PairInput, fused
// into one pass: each output row is written once instead of gathered and
// re-copied through two ConcatCols. The values (and therefore the link-head
// scores) are bit-identical to the tape path's.
func PairInputRows(emb *tensor.Matrix, src, dst []int) *tensor.Matrix {
	d := emb.Cols
	out := tensor.New(len(src), 3*d)
	for i := range src {
		u, v, row := emb.Row(src[i]), emb.Row(dst[i]), out.Row(i)
		copy(row[:d], u)
		copy(row[d:2*d], v)
		had := row[2*d:]
		for k := range u {
			had[k] = u[k] * v[k]
		}
	}
	return out
}

// LinkScores scores the link head on every (src, dst) pair through one
// stacked pair-input forward. src and dst must have equal length and index
// valid rows of emb.
func LinkScores(h *Heads, emb *tensor.Matrix, src, dst []int) []float64 {
	if len(src) == 0 {
		return nil
	}
	return headColumn(h.Link, PairInputRows(emb, src, dst))
}

// AnswerBatch answers a batch of predictive queries against one embedding
// matrix: all event requests share a single event-head application, all link
// requests a single link-head application over one stacked pair-input
// matrix, and all density requests index the caller-supplied seed-window
// density vector (evaluated once per batch; nil when density serving is
// unavailable). Answers are returned in request order and are bit-identical
// to answering each request alone.
func AnswerBatch(h *Heads, emb *tensor.Matrix, reqs []Request, density []float64) []Answer {
	answers := make([]Answer, len(reqs))
	var evIdx, anchors []int
	var lnIdx, src, dst []int
	for i, r := range reqs {
		switch r.Kind {
		case KindEvent:
			if emb == nil || r.Anchor < 0 || r.Anchor >= emb.Rows {
				answers[i] = Answer{Err: "anchor outside the embedding matrix"}
				continue
			}
			evIdx = append(evIdx, i)
			anchors = append(anchors, r.Anchor)
		case KindLink:
			if emb == nil || r.Src < 0 || r.Src >= emb.Rows || r.Dst < 0 || r.Dst >= emb.Rows {
				answers[i] = Answer{Err: "pair endpoint outside the embedding matrix"}
				continue
			}
			lnIdx = append(lnIdx, i)
			src = append(src, r.Src)
			dst = append(dst, r.Dst)
		case KindDensity:
			if density == nil {
				answers[i] = Answer{Err: "no seed-window density available"}
				continue
			}
			if r.Node < 0 || r.Node >= len(density) {
				answers[i] = Answer{Err: "node outside the density vector"}
				continue
			}
			answers[i] = Answer{Score: density[r.Node], OK: true}
		default:
			answers[i] = Answer{Err: fmt.Sprintf("unknown query kind %q", r.Kind)}
		}
	}
	for k, s := range EventScores(h, emb, anchors) {
		answers[evIdx[k]] = Answer{Score: s, OK: true}
	}
	for k, s := range LinkScores(h, emb, src, dst) {
		answers[lnIdx[k]] = Answer{Score: s, OK: true}
	}
	return answers
}

// Clone returns a deep value copy of the heads: fresh parameter matrices
// detached from any optimizer or tape. Serving snapshots clone the heads so
// concurrent readers never observe a training step's in-place parameter
// updates.
func (h *Heads) Clone() *Heads {
	return &Heads{
		Event:    h.Event.Clone(),
		Link:     h.Link.Clone(),
		SelfNode: h.SelfNode.Clone(),
		SelfEdge: h.SelfEdge.Clone(),
	}
}
