package query

import (
	"fmt"
	"sort"

	"streamgnn/internal/tensor"
)

// WorkloadState is a checkpointable snapshot of everything a Workload
// accumulates at runtime: revealed supervision targets, the replay ring,
// in-flight (not yet revealed) predictions, resolved outcomes, and the link
// task's evaluation and supervision state. Restoring it — together with the
// model parameters, optimizer moments and the engine's random stream — makes
// a resumed run continue the exact trajectory of the saved one, so a
// graceful-shutdown/resume cycle is invisible in the Stats accounting.
type WorkloadState struct {
	Revealed map[int]Target
	Replay   []ReplayExample
	// ReplayPos is the ring cursor of the replay buffer.
	ReplayPos int
	Pending   []PendingPrediction
	Outcomes  []Outcome
	Link      *LinkState
}

// ReplayExample is one revealed (embedding, truth) supervision pair.
type ReplayExample struct {
	Emb   []float64
	Truth float64
}

// PendingPrediction is one in-flight prediction awaiting its reveal step.
// Query is the issuing query's name; predictions whose query is no longer
// registered at restore time are dropped (the queries must be re-added
// before the state is restored for an exact resume).
type PendingPrediction struct {
	Query  string
	Anchor int
	Due    int // the step whose arrival reveals the truth
	Score  float64
	Emb    []float64
}

// LinkState is the link-prediction task's checkpointable state.
type LinkState struct {
	RngState    uint64
	LastStep    int
	LastEmbRows int
	LastEmbCols int
	LastEmbData []float64
	RecentPairs []Pair
	Scores      []float64
	Labels      []bool
	Ranks       []int
	ReplayEmb   [][]float64
	ReplayLbl   []float64
}

// DumpState captures the workload's runtime state for checkpointing.
func (w *Workload) DumpState() WorkloadState {
	st := WorkloadState{
		Revealed:  make(map[int]Target, len(w.revealed)),
		ReplayPos: w.replayPos,
	}
	for v, t := range w.revealed {
		st.Revealed[v] = t
	}
	for _, ex := range w.replay {
		st.Replay = append(st.Replay, ReplayExample{Emb: append([]float64(nil), ex.emb...), Truth: ex.truth})
	}
	// Walk due steps in sorted order so the checkpoint bytes do not depend
	// on map iteration order (checkpoints of identical runs must be
	// bit-identical).
	dues := make([]int, 0, len(w.pending))
	for due := range w.pending {
		dues = append(dues, due)
	}
	sort.Ints(dues)
	for _, due := range dues {
		for _, p := range w.pending[due] {
			st.Pending = append(st.Pending, PendingPrediction{
				Query: p.q.Name, Anchor: p.anchor, Due: due, Score: p.score,
				Emb: append([]float64(nil), p.emb...),
			})
		}
	}
	st.Outcomes = append([]Outcome(nil), w.outcomes...)
	if w.link != nil {
		st.Link = w.link.dumpState()
	}
	return st
}

// RestoreState restores a snapshot captured with DumpState. Queries (and the
// link task, if any) must be registered before the call; pending predictions
// whose query name is unknown are dropped so that learned state saved with a
// richer workload still loads into a narrower one.
func (w *Workload) RestoreState(st WorkloadState) error {
	w.revealed = make(map[int]Target, len(st.Revealed))
	for v, t := range st.Revealed {
		w.revealed[v] = t
	}
	w.replay = w.replay[:0]
	for _, ex := range st.Replay {
		w.replay = append(w.replay, replayExample{emb: append([]float64(nil), ex.Emb...), truth: ex.Truth})
	}
	w.replayPos = st.ReplayPos
	if w.replayPos < 0 || (len(w.replay) > 0 && w.replayPos >= replayCap) {
		return fmt.Errorf("query: replay cursor %d out of range", w.replayPos)
	}
	byName := make(map[string]*EventQuery, len(w.queries))
	for _, q := range w.queries {
		byName[q.Name] = q
	}
	w.pending = make(map[int][]pendingPred)
	for _, p := range st.Pending {
		q, ok := byName[p.Query]
		if !ok {
			continue
		}
		w.pending[p.Due] = append(w.pending[p.Due], pendingPred{
			q: q, anchor: p.Anchor, score: p.Score, emb: append([]float64(nil), p.Emb...),
		})
	}
	w.outcomes = append([]Outcome(nil), st.Outcomes...)
	w.alerts = nil
	if st.Link != nil {
		if w.link == nil {
			return fmt.Errorf("query: checkpoint carries link-task state but no link task is attached")
		}
		w.link.restoreState(st.Link)
	}
	return nil
}

func (l *LinkPredTask) dumpState() *LinkState {
	st := &LinkState{
		RngState:    l.src.State(),
		LastStep:    l.lastStep,
		RecentPairs: append([]Pair(nil), l.recentPairs...),
		Scores:      append([]float64(nil), l.scores...),
		Labels:      append([]bool(nil), l.labels...),
		Ranks:       append([]int(nil), l.ranks...),
		ReplayLbl:   append([]float64(nil), l.replayLabels...),
	}
	if l.lastEmb != nil {
		st.LastEmbRows, st.LastEmbCols = l.lastEmb.Rows, l.lastEmb.Cols
		st.LastEmbData = append([]float64(nil), l.lastEmb.Data...)
	}
	for _, e := range l.replayEmb {
		st.ReplayEmb = append(st.ReplayEmb, append([]float64(nil), e...))
	}
	return st
}

func (l *LinkPredTask) restoreState(st *LinkState) {
	l.src.SetState(st.RngState)
	l.lastStep = st.LastStep
	l.lastEmb = nil
	if st.LastEmbRows > 0 {
		m := tensor.New(st.LastEmbRows, st.LastEmbCols)
		copy(m.Data, st.LastEmbData)
		l.lastEmb = m
	}
	l.recentPairs = append(l.recentPairs[:0], st.RecentPairs...)
	l.scores = append([]float64(nil), st.Scores...)
	l.labels = append([]bool(nil), st.Labels...)
	l.ranks = append([]int(nil), st.Ranks...)
	l.replayEmb = nil
	for _, e := range st.ReplayEmb {
		l.replayEmb = append(l.replayEmb, append([]float64(nil), e...))
	}
	l.replayLabels = append([]float64(nil), st.ReplayLbl...)
}
