package query

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/metrics"
	"streamgnn/internal/rng"
	"streamgnn/internal/tensor"
)

// Pair is one labeled node pair (1 = edge appeared, 0 = negative sample).
type Pair struct {
	U, V  int
	Label float64
}

// LinkPredTask is the continuous link-prediction workload used for the Stack
// Overflow and UCI Messages experiments (Table II): at every step t, the
// embeddings of step t score candidate edges of step t+1; when step t+1
// arrives, the new edges are the positives and uniformly sampled non-edges
// the negatives.
type LinkPredTask struct {
	// NegPerPos is the number of sampled negatives per positive used for
	// accuracy/AUC and for supervision pairs.
	//streamlint:ckpt-exempt evaluation tuning is configuration, set at task construction
	NegPerPos int
	// RankNegs is the candidate-set size for MRR ranks.
	//streamlint:ckpt-exempt evaluation tuning is configuration, set at task construction
	RankNegs int
	// MaxPositives caps the positives evaluated per step.
	//streamlint:ckpt-exempt evaluation tuning is configuration, set at task construction
	MaxPositives int

	src *rng.SplitMix64 // dumpable source behind rng (checkpointing)
	//streamlint:ckpt-exempt stateless wrapper around src, whose word IS the stream state
	rng      *rand.Rand
	lastEmb  *tensor.Matrix
	lastStep int

	recentPairs []Pair
	scores      []float64
	labels      []bool
	ranks       []int

	// replay holds the freshest revealed pair examples: the concatenated
	// endpoint embeddings the pair was scored from and its 0/1 label. Like
	// the event replay, it lets every training unit refit the link head on
	// a balanced minibatch (constants; only the head trains through it).
	replayEmb    []([]float64)
	replayLabels []float64
}

// NewLinkPredTask returns a link-prediction task with standard settings.
func NewLinkPredTask(seed int64) *LinkPredTask {
	src := rng.New(seed)
	return &LinkPredTask{
		NegPerPos:    5,
		RankNegs:     20,
		MaxPositives: 64,
		src:          src,
		rng:          rand.New(src),
		lastStep:     -1,
	}
}

// observeEmbeddings stores the step-t embeddings used to score step-t+1
// edges at reveal time.
func (l *LinkPredTask) observeEmbeddings(emb *tensor.Matrix, step int) {
	l.lastEmb = emb.Clone()
	l.lastStep = step
}

func (l *LinkPredTask) pairInput(u, v int) []float64 {
	ru := tensor.GatherRows(l.lastEmb, []int{u})
	rv := tensor.GatherRows(l.lastEmb, []int{v})
	return tensor.ConcatCols(tensor.ConcatCols(ru, rv), tensor.Mul(ru, rv)).Data
}

func (l *LinkPredTask) pairScore(h *Heads, u, v int) float64 {
	in := autodiff.Constant(tensor.FromSlice(1, 3*l.lastEmb.Cols, l.pairInput(u, v)))
	tp := autodiff.NewTape()
	return h.Link.Apply(tp, in).Value.Data[0]
}

// reveal evaluates last step's predictions against the edges that actually
// arrived at `step` and refreshes the supervision pair set.
func (l *LinkPredTask) reveal(g *graph.Dynamic, step int, h *Heads) {
	if l.lastEmb == nil || l.lastStep != step-1 {
		return
	}
	n := l.lastEmb.Rows
	if n < 2 {
		return
	}
	// Positives: edges stamped with this step whose endpoints existed at
	// prediction time.
	var pos []Pair
	for u := 0; u < n && len(pos) < l.MaxPositives; u++ {
		for _, e := range g.OutEdges(u) {
			if e.Time == int64(step) && e.To < n {
				pos = append(pos, Pair{U: u, V: e.To, Label: 1})
				if len(pos) >= l.MaxPositives {
					break
				}
			}
		}
	}
	if len(pos) == 0 {
		return
	}
	l.recentPairs = l.recentPairs[:0]
	l.replayEmb = l.replayEmb[:0]
	l.replayLabels = l.replayLabels[:0]
	for _, p := range pos {
		s := l.pairScore(h, p.U, p.V)
		l.scores = append(l.scores, s)
		l.labels = append(l.labels, true)
		l.recentPairs = append(l.recentPairs, p)
		l.replayEmb = append(l.replayEmb, l.pairInput(p.U, p.V))
		l.replayLabels = append(l.replayLabels, 1)
		// Sampled negatives for accuracy/AUC and supervision.
		for k := 0; k < l.NegPerPos; k++ {
			v := l.rng.Intn(n)
			neg := Pair{U: p.U, V: v, Label: 0}
			l.scores = append(l.scores, l.pairScore(h, neg.U, neg.V))
			l.labels = append(l.labels, false)
			l.recentPairs = append(l.recentPairs, neg)
			l.replayEmb = append(l.replayEmb, l.pairInput(neg.U, neg.V))
			l.replayLabels = append(l.replayLabels, 0)
		}
		// Rank of the true endpoint among RankNegs random candidates.
		negScores := make([]float64, 0, l.RankNegs)
		for k := 0; k < l.RankNegs; k++ {
			negScores = append(negScores, l.pairScore(h, p.U, l.rng.Intn(n)))
		}
		l.ranks = append(l.ranks, metrics.RankOf(s, negScores))
	}
}

// Scores returns accumulated (score, positive?) evaluation pairs.
func (l *LinkPredTask) Scores() ([]float64, []bool) { return l.scores, l.labels }

// Ranks returns accumulated 1-based MRR ranks.
func (l *LinkPredTask) Ranks() []int { return l.ranks }

// RecentPairs returns the supervision pairs from the latest reveal.
func (l *LinkPredTask) RecentPairs() []Pair { return l.recentPairs }

// EmbeddingRow returns node v's row of the last observed inference
// embeddings (ok=false before the first observation or for unknown nodes).
func (l *LinkPredTask) EmbeddingRow(v int) ([]float64, bool) {
	if l.lastEmb == nil || v < 0 || v >= l.lastEmb.Rows {
		return nil, false
	}
	return l.lastEmb.Row(v), true
}

// NumEmbedded returns the node count of the last observed embeddings.
func (l *LinkPredTask) NumEmbedded() int {
	if l.lastEmb == nil {
		return 0
	}
	return l.lastEmb.Rows
}

// ReplayBatch samples up to n of the freshest revealed pair examples.
func (l *LinkPredTask) ReplayBatch(rng *rand.Rand, n int) (emb *tensor.Matrix, labels []float64) {
	if len(l.replayEmb) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(l.replayEmb) {
		n = len(l.replayEmb)
	}
	emb = tensor.New(n, len(l.replayEmb[0]))
	labels = make([]float64, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(len(l.replayEmb))
		copy(emb.Row(i), l.replayEmb[j])
		labels[i] = l.replayLabels[j]
	}
	return emb, labels
}

// ResetOutcomes clears accumulated evaluation state.
func (l *LinkPredTask) ResetOutcomes() {
	l.scores, l.labels, l.ranks = nil, nil, nil
}
