package query

import (
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/metrics"
	"streamgnn/internal/rng"
	"streamgnn/internal/tensor"
)

// Pair is one labeled node pair (1 = edge appeared, 0 = negative sample).
type Pair struct {
	U, V  int
	Label float64
}

// LinkPredTask is the continuous link-prediction workload used for the Stack
// Overflow and UCI Messages experiments (Table II): at every step t, the
// embeddings of step t score candidate edges of step t+1; when step t+1
// arrives, the new edges are the positives and uniformly sampled non-edges
// the negatives.
type LinkPredTask struct {
	// NegPerPos is the number of sampled negatives per positive used for
	// accuracy/AUC and for supervision pairs.
	//streamlint:ckpt-exempt evaluation tuning is configuration, set at task construction
	NegPerPos int
	// RankNegs is the candidate-set size for MRR ranks.
	//streamlint:ckpt-exempt evaluation tuning is configuration, set at task construction
	RankNegs int
	// MaxPositives caps the positives evaluated per step.
	//streamlint:ckpt-exempt evaluation tuning is configuration, set at task construction
	MaxPositives int

	src *rng.SplitMix64 // dumpable source behind rng (checkpointing)
	//streamlint:ckpt-exempt stateless wrapper around src, whose word IS the stream state
	rng      *rand.Rand
	lastEmb  *tensor.Matrix
	lastStep int

	recentPairs []Pair
	scores      []float64
	labels      []bool
	ranks       []int

	// replay holds the freshest revealed pair examples: the concatenated
	// endpoint embeddings the pair was scored from and its 0/1 label. Like
	// the event replay, it lets every training unit refit the link head on
	// a balanced minibatch (constants; only the head trains through it).
	replayEmb    []([]float64)
	replayLabels []float64
}

// NewLinkPredTask returns a link-prediction task with standard settings.
func NewLinkPredTask(seed int64) *LinkPredTask {
	src := rng.New(seed)
	return &LinkPredTask{
		NegPerPos:    5,
		RankNegs:     20,
		MaxPositives: 64,
		src:          src,
		rng:          rand.New(src),
		lastStep:     -1,
	}
}

// observeEmbeddings stores the step-t embeddings used to score step-t+1
// edges at reveal time.
func (l *LinkPredTask) observeEmbeddings(emb *tensor.Matrix, step int) {
	l.lastEmb = emb.Clone()
	l.lastStep = step
}

// reveal evaluates last step's predictions against the edges that actually
// arrived at `step` and refreshes the supervision pair set.
func (l *LinkPredTask) reveal(g *graph.Dynamic, step int, h *Heads) {
	if l.lastEmb == nil || l.lastStep != step-1 {
		return
	}
	n := l.lastEmb.Rows
	if n < 2 {
		return
	}
	// Positives: edges stamped with this step whose endpoints existed at
	// prediction time.
	var pos []Pair
	for u := 0; u < n && len(pos) < l.MaxPositives; u++ {
		for _, e := range g.OutEdges(u) {
			if e.Time == int64(step) && e.To < n {
				pos = append(pos, Pair{U: u, V: e.To, Label: 1})
				if len(pos) >= l.MaxPositives {
					break
				}
			}
		}
	}
	if len(pos) == 0 {
		return
	}
	// Collect every pair to score — each positive, its accuracy/supervision
	// negatives, then its MRR rank candidates — drawing the random endpoints
	// in exactly the order per-pair scoring drew them, so the RNG stream
	// (and therefore checkpoints and repeat runs) is unchanged. All pairs
	// then go through one stacked link-head application instead of
	// len(pos)*(1+NegPerPos+RankNegs) scalar pairScore calls.
	group := 1 + l.NegPerPos + l.RankNegs
	src := make([]int, 0, len(pos)*group)
	dst := make([]int, 0, len(pos)*group)
	for _, p := range pos {
		src = append(src, p.U)
		dst = append(dst, p.V)
		for k := 0; k < l.NegPerPos; k++ {
			src = append(src, p.U)
			dst = append(dst, l.rng.Intn(n))
		}
		for k := 0; k < l.RankNegs; k++ {
			src = append(src, p.U)
			dst = append(dst, l.rng.Intn(n))
		}
	}
	in := PairInputRows(l.lastEmb, src, dst)
	scores := headColumn(h.Link, in)
	pairRow := func(i int) []float64 { return append([]float64(nil), in.Row(i)...) }

	l.recentPairs = l.recentPairs[:0]
	l.replayEmb = l.replayEmb[:0]
	l.replayLabels = l.replayLabels[:0]
	for j, p := range pos {
		base := j * group
		s := scores[base]
		l.scores = append(l.scores, s)
		l.labels = append(l.labels, true)
		l.recentPairs = append(l.recentPairs, p)
		l.replayEmb = append(l.replayEmb, pairRow(base))
		l.replayLabels = append(l.replayLabels, 1)
		// Sampled negatives for accuracy/AUC and supervision.
		for k := 0; k < l.NegPerPos; k++ {
			i := base + 1 + k
			neg := Pair{U: p.U, V: dst[i], Label: 0}
			l.scores = append(l.scores, scores[i])
			l.labels = append(l.labels, false)
			l.recentPairs = append(l.recentPairs, neg)
			l.replayEmb = append(l.replayEmb, pairRow(i))
			l.replayLabels = append(l.replayLabels, 0)
		}
		// Rank of the true endpoint among its RankNegs candidates.
		l.ranks = append(l.ranks, metrics.RankOf(s, scores[base+1+l.NegPerPos:base+group]))
	}
}

// Scores returns accumulated (score, positive?) evaluation pairs.
func (l *LinkPredTask) Scores() ([]float64, []bool) { return l.scores, l.labels }

// Ranks returns accumulated 1-based MRR ranks.
func (l *LinkPredTask) Ranks() []int { return l.ranks }

// RecentPairs returns the supervision pairs from the latest reveal.
func (l *LinkPredTask) RecentPairs() []Pair { return l.recentPairs }

// EmbeddingRow returns node v's row of the last observed inference
// embeddings (ok=false before the first observation or for unknown nodes).
func (l *LinkPredTask) EmbeddingRow(v int) ([]float64, bool) {
	if l.lastEmb == nil || v < 0 || v >= l.lastEmb.Rows {
		return nil, false
	}
	return l.lastEmb.Row(v), true
}

// NumEmbedded returns the node count of the last observed embeddings.
func (l *LinkPredTask) NumEmbedded() int {
	if l.lastEmb == nil {
		return 0
	}
	return l.lastEmb.Rows
}

// ReplayBatch samples up to n of the freshest revealed pair examples.
func (l *LinkPredTask) ReplayBatch(rng *rand.Rand, n int) (emb *tensor.Matrix, labels []float64) {
	if len(l.replayEmb) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(l.replayEmb) {
		n = len(l.replayEmb)
	}
	emb = tensor.New(n, len(l.replayEmb[0]))
	labels = make([]float64, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(len(l.replayEmb))
		copy(emb.Row(i), l.replayEmb[j])
		labels[i] = l.replayLabels[j]
	}
	return emb, labels
}

// ResetOutcomes clears accumulated evaluation state.
func (l *LinkPredTask) ResetOutcomes() {
	l.scores, l.labels, l.ranks = nil, nil, nil
}
