package query

import (
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
	"streamgnn/internal/tensor"
)

func revealOnce(t *testing.T, w *Workload, g *graph.Dynamic, emb *tensor.Matrix, step int) {
	t.Helper()
	w.Predict(emb, step)
	w.Reveal(g, step+1)
}

func TestReplayBatchFromReveals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWorkload(NewHeads(rng, 4))
	w.AddQuery(&EventQuery{
		Name:    "q",
		Anchors: []int{0, 1, 2},
		Delta:   1,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return float64(anchor) + 10, true
		},
	})
	g := testGraph(4)
	if e, _ := w.ReplayBatch(rng, 8); e != nil {
		t.Fatal("replay before any reveal should be empty")
	}
	emb := tensor.NewRandom(rng, 4, 4, 1)
	revealOnce(t, w, g, emb, 0)
	e, truths := w.ReplayBatch(rng, 8)
	if e == nil || e.Rows != 3 || e.Cols != 4 || len(truths) != 3 {
		t.Fatalf("replay batch wrong: %v %v", e, truths)
	}
	for _, tr := range truths {
		if tr < 10 || tr > 12 {
			t.Fatalf("replay truth %v out of range", tr)
		}
	}
	// Requesting fewer samples than available caps the batch.
	e, truths = w.ReplayBatch(rng, 2)
	if e.Rows != 2 || len(truths) != 2 {
		t.Fatal("batch size not respected")
	}
	if e, _ := w.ReplayBatch(rng, 0); e != nil {
		t.Fatal("zero-size replay should be nil")
	}
}

func TestReplayIsFreshOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWorkload(NewHeads(rng, 4))
	truthVal := 1.0
	w.AddQuery(&EventQuery{
		Name:    "q",
		Anchors: []int{0},
		Delta:   1,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return truthVal, true
		},
	})
	g := testGraph(3)
	emb := tensor.NewRandom(rng, 3, 4, 1)
	revealOnce(t, w, g, emb, 0)
	truthVal = 99 // regime change
	revealOnce(t, w, g, emb, 1)
	e, truths := w.ReplayBatch(rng, 16)
	if e.Rows != 1 {
		t.Fatalf("stale reveals kept: %d rows", e.Rows)
	}
	if truths[0] != 99 {
		t.Fatalf("replay holds pre-drift truth %v", truths[0])
	}
}

func TestLinkReplayBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHeads(rng, 4)
	lt := NewLinkPredTask(5)
	g := testGraph(8)
	lt.observeEmbeddings(tensor.NewRandom(rng, 8, 4, 1), 0)
	g.AddEdge(0, 3, 0, 1)
	lt.reveal(g, 1, h)
	e, labels := lt.ReplayBatch(rng, 4)
	if e == nil || e.Rows != 4 || e.Cols != 3*4 {
		t.Fatalf("link replay shape wrong: %+v", e)
	}
	for _, l := range labels {
		if l != 0 && l != 1 {
			t.Fatalf("label %v not binary", l)
		}
	}
	if e, _ := NewLinkPredTask(1).ReplayBatch(rng, 4); e != nil {
		t.Fatal("replay before reveal should be nil")
	}
}

func TestEmbeddingRowAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lt := NewLinkPredTask(6)
	if lt.NumEmbedded() != 0 {
		t.Fatal("NumEmbedded before observe")
	}
	if _, ok := lt.EmbeddingRow(0); ok {
		t.Fatal("EmbeddingRow before observe")
	}
	m := tensor.NewRandom(rng, 5, 3, 1)
	lt.observeEmbeddings(m, 0)
	if lt.NumEmbedded() != 5 {
		t.Fatalf("NumEmbedded = %d", lt.NumEmbedded())
	}
	row, ok := lt.EmbeddingRow(2)
	if !ok || len(row) != 3 || row[0] != m.At(2, 0) {
		t.Fatal("EmbeddingRow wrong")
	}
	if _, ok := lt.EmbeddingRow(9); ok {
		t.Fatal("out-of-range row accepted")
	}
}

func TestSupervisionAddsInPartitionNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHeads(rng, 4)
	w := NewWorkload(h)
	lt := NewLinkPredTask(8)
	w.SetLinkTask(lt)
	g := testGraph(10)
	lt.observeEmbeddings(tensor.NewRandom(rng, 10, 4, 1), 0)
	g.AddEdge(1, 2, 0, 1)
	w.Reveal(g, 1)
	sub := g.Induced([]int{0, 1, 2, 3, 4}, -1)
	sup := w.Supervision(sub, nil)
	pos, neg := 0, 0
	for _, l := range sup.PairLabels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 {
		t.Fatal("positive pair missing")
	}
	if neg == 0 {
		t.Fatal("in-partition negatives missing")
	}
}
