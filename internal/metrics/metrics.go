// Package metrics implements the evaluation metrics of the paper's Section
// VI-E — MSE, accuracy, rank-based AUC, and mean reciprocal rank — plus
// mean±std aggregation over repeated runs for the error bars of Tables I-III.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// MSE returns the mean squared error between predictions and truths.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("metrics: MSE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// Accuracy returns the fraction of score/label pairs where (score > thresh)
// matches the binary label.
func Accuracy(scores []float64, labels []bool, thresh float64) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: Accuracy length mismatch %d vs %d", len(scores), len(labels)))
	}
	if len(scores) == 0 {
		return 0
	}
	var hit float64
	for i, s := range scores {
		if (s > thresh) == labels[i] {
			hit++
		}
	}
	return hit / float64(len(scores))
}

// AUC returns the area under the ROC curve, computed as the normalized
// Mann-Whitney U statistic with midrank handling of ties. It returns NaN if
// either class is empty.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: AUC length mismatch %d vs %d", len(scores), len(labels)))
	}
	type item struct {
		score float64
		pos   bool
	}
	items := make([]item, len(scores))
	var nPos, nNeg float64
	for i, s := range scores {
		items[i] = item{s, labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score < items[j].score })
	// Midranks over ties.
	var rankSumPos float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if items[k].pos {
				rankSumPos += mid
			}
		}
		i = j
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// MRR returns the mean reciprocal rank of 1-based ranks.
func MRR(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var s float64
	for _, r := range ranks {
		if r < 1 {
			panic(fmt.Sprintf("metrics: rank %d < 1", r))
		}
		s += 1 / float64(r)
	}
	return s / float64(len(ranks))
}

// RankOf returns the 1-based rank of target among scores (target included),
// counting ties optimistically at the midpoint, with higher scores ranking
// first.
func RankOf(target float64, negatives []float64) int {
	higher, equal := 0, 0
	for _, s := range negatives {
		if s > target {
			higher++
		} else if s == target {
			equal++
		}
	}
	return 1 + higher + equal/2
}

// Summary accumulates values and reports mean, standard deviation, min and
// max using Welford's online algorithm.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add accumulates one value.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of accumulated values.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean.
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (0 for fewer than 2 values).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest accumulated value.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest accumulated value.
func (s *Summary) Max() float64 { return s.max }

// String formats the summary as the paper's "mean ± std".
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean(), s.Std())
}

// Confusion is the 2x2 confusion matrix of a binary detector.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse tallies scores against binary labels at the given threshold.
func Confuse(scores []float64, labels []bool, thresh float64) Confusion {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: Confuse length mismatch %d vs %d", len(scores), len(labels)))
	}
	var c Confusion
	for i, s := range scores {
		pred := s > thresh
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (0 when undefined).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
