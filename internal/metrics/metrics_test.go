package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 4}); got != 2 {
		t.Fatalf("MSE = %v", got)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE([]float64{1}, []float64{1, 2})
}

func TestAccuracy(t *testing.T) {
	scores := []float64{0.9, 0.2, 0.7, 0.1}
	labels := []bool{true, false, false, true}
	if got := Accuracy(scores, labels, 0.5); got != 0.5 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil, 0) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{false, false, true, true}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := []bool{true, true, false, false}
	if got := AUC(scores, inverted); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.5
	}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("random AUC = %v", got)
	}
}

func TestAUCTiesGiveHalfCredit(t *testing.T) {
	// All scores identical: AUC should be exactly 0.5.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if !math.IsNaN(AUC([]float64{1, 2}, []bool{true, true})) {
		t.Fatal("single-class AUC should be NaN")
	}
}

// Property: AUC is invariant under strictly monotone score transforms.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos, neg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
			if labels[i] {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			return true
		}
		a := AUC(scores, labels)
		warped := make([]float64, n)
		for i, s := range scores {
			warped[i] = math.Exp(s) + 3
		}
		return math.Abs(a-AUC(warped, labels)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMRR(t *testing.T) {
	if got := MRR([]int{1, 2, 4}); math.Abs(got-(1+0.5+0.25)/3) > 1e-12 {
		t.Fatalf("MRR = %v", got)
	}
	if MRR(nil) != 0 {
		t.Fatal("empty MRR should be 0")
	}
}

func TestMRRRejectsBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MRR([]int{0})
}

func TestRankOf(t *testing.T) {
	if got := RankOf(0.9, []float64{0.1, 0.2, 0.3}); got != 1 {
		t.Fatalf("best rank = %d", got)
	}
	if got := RankOf(0.1, []float64{0.5, 0.9}); got != 3 {
		t.Fatalf("worst rank = %d", got)
	}
	if got := RankOf(0.5, []float64{0.5, 0.5}); got != 2 {
		t.Fatalf("tied rank = %d", got)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	wantStd := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-wantStd) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std(), wantStd)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Std() != 0 || s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-value summary wrong")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if s.String() != "2.00 ± 1.41" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestConfusionAndF1(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.2, 0.7}
	labels := []bool{true, false, true, false, true}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should yield zeros")
	}
	// No predicted positives.
	c = Confuse([]float64{0.1, 0.1}, []bool{true, false}, 0.5)
	if c.Precision() != 0 {
		t.Fatal("precision without positives should be 0")
	}
}

func TestConfusePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Confuse([]float64{1}, []bool{true, false}, 0)
}
