package dgnn

import (
	"fmt"
	"math"

	"streamgnn/internal/graph"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// This file is the event-driven delta-propagation forward (InkStream-style):
// instead of recomputing the induced subgraph of Ball(Ball(S,L),L) — which
// explodes on high-degree hubs — the model is decomposed into stages (one per
// neighborhood aggregation or recurrent update), each stage keeps a cache of
// its last-accepted per-node outputs, and a step recomputes only candidate
// rows whose inputs could have changed. A recomputed row is accepted (cache
// and downstream frontier updated) only when it differs from the cached row
// by more than DeltaEpsilon in any component; sub-epsilon changes are
// discarded, stopping propagation early. At epsilon 0 every changed row is
// accepted, so the pass is bit-identical to a full forward; at epsilon > 0
// each cached stage row is within epsilon per component of its last accepted
// recomputation — the bounded-error regime, mirroring region splicing's
// bounded staleness for stateful models.
//
// Every row kernel below replicates the exact floating-point accumulation
// order of the full tensor path (MatMul's ascending-k skip-zero inner loop,
// SpMM's per-entry full-column accumulation in norm-row order, AddBias after
// aggregation), which is what makes epsilon-0 equality bitwise rather than
// approximate.

// DeltaForwarder is implemented by models that support event-driven delta
// propagation. The model is decomposed into DeltaStages sequential stages;
// stage outputs are cached per node in a DeltaState owned by the engine. The
// final stage's first Hidden() columns are the embedding.
type DeltaForwarder interface {
	Model
	// DeltaStages returns the number of propagation stages.
	DeltaStages() int
	// DeltaStageCols returns the cached output width of stage s.
	DeltaStageCols(s int) int
	// DeltaFull runs a full forward with plain tensor kernels, bit-identical
	// to Forward over FullView(g): it fills every stage cache in st, commits
	// recurrent state for all nodes, and returns a fresh embedding matrix the
	// caller owns (not aliased to any stage cache).
	DeltaFull(g *graph.Dynamic, st *DeltaState) *tensor.Matrix
	// DeltaRows recomputes stage s for the given global node ids (ascending),
	// reading earlier-stage inputs through p (overlay first, then cache) and
	// recurrent state live. It must not mutate any cache or state.
	DeltaRows(p *DeltaPass, s int, ids []int) *tensor.Matrix
	// DeltaCommit writes the accepted rows of a state-committing stage back
	// into the model's recurrent state, returning whether state was written.
	// rows[k] is the stage output for ids[k].
	DeltaCommit(s int, ids []int, rows *tensor.Matrix) bool
}

// DeltaState is the engine-owned cache behind delta propagation: one
// last-accepted output matrix per stage, plus the node ids whose recurrent
// state the previous pass committed (those nodes' state changed, so they
// seed the next pass's candidate set).
type DeltaState struct {
	stages        []*tensor.Matrix
	lastCommitted []int
}

// Valid reports whether the state holds stage caches to propagate against.
func (st *DeltaState) Valid() bool { return len(st.stages) > 0 }

// Invalidate drops all stage caches, forcing the next delta forward to be
// full. Called whenever model parameters change (training steps).
func (st *DeltaState) Invalidate() {
	st.stages = nil
	st.lastCommitted = nil
}

// LastCommitted returns the ids whose recurrent state the previous pass
// committed (ascending); empty for memoryless models and quiet states.
func (st *DeltaState) LastCommitted() []int { return st.lastCommitted }

// setStages installs full stage caches (DeltaFull's commit).
func (st *DeltaState) setStages(ms ...*tensor.Matrix) { st.stages = ms }

// DeltaDump serializes the delta caches for checkpointing: one StateDump per
// stage plus the committed-id set. ok is false when the state is invalid.
func (st *DeltaState) DeltaDump() (stages []StateDump, committed []int, ok bool) {
	if !st.Valid() {
		return nil, nil, false
	}
	stages = make([]StateDump, len(st.stages))
	for i, m := range st.stages {
		stages[i] = dumpMatrix(m)
	}
	return stages, append([]int(nil), st.lastCommitted...), true
}

// DeltaRestore replaces the delta caches from a checkpoint. All validations
// come before any mutation.
func (st *DeltaState) DeltaRestore(m DeltaForwarder, stages []StateDump, committed []int) error {
	if len(stages) != m.DeltaStages() {
		return fmt.Errorf("dgnn: delta checkpoint has %d stage caches, model %s needs %d",
			len(stages), m.Name(), m.DeltaStages())
	}
	ms := make([]*tensor.Matrix, len(stages))
	for i, d := range stages {
		if d.Cols != m.DeltaStageCols(i) {
			return fmt.Errorf("dgnn: delta stage %d cache is %d wide, model %s needs %d",
				i, d.Cols, m.Name(), m.DeltaStageCols(i))
		}
		mat, err := d.matrix()
		if err != nil {
			return err
		}
		ms[i] = mat
	}
	st.stages = ms
	st.lastCommitted = append([]int(nil), committed...)
	return nil
}

// DeltaPass is the read context handed to DeltaRows: stage reads go through
// the pass's overlay (rows accepted earlier in this pass, not yet committed)
// before falling back to the last-accepted cache, so an aborted pass commits
// nothing.
type DeltaPass struct {
	g       *graph.Dynamic
	st      *DeltaState
	overlay []map[int][]float64
	entries []tensor.CSREntry
	zero    []float64
}

func newDeltaPass(g *graph.Dynamic, m DeltaForwarder, st *DeltaState) *DeltaPass {
	n := m.DeltaStages()
	p := &DeltaPass{g: g, st: st, overlay: make([]map[int][]float64, n)}
	maxCols := 0
	for s := 0; s < n; s++ {
		p.overlay[s] = make(map[int][]float64)
		if c := m.DeltaStageCols(s); c > maxCols {
			maxCols = c
		}
	}
	p.zero = make([]float64, maxCols)
	return p
}

// Feat returns node id's live attribute vector.
func (p *DeltaPass) Feat(id int) []float64 { return p.g.Feature(id) }

// StageRow returns node id's stage-s output: this pass's accepted value if
// one exists, else the last-accepted cache row, else zero (a node the stage
// has never produced). Callers must not mutate the returned slice.
func (p *DeltaPass) StageRow(s, id int) []float64 {
	if row, ok := p.overlay[s][id]; ok {
		return row
	}
	c := p.st.stages[s]
	if id < c.Rows {
		return c.Row(id)
	}
	return p.zero[:c.Cols]
}

// ConvRow computes row v of a GCN convolution (AddBias(SpMM(norm, MatMul(x,
// W)), B)) with input rows supplied by input(u), replicating the full path's
// floating-point order: for each normalized-adjacency entry of row v (self
// loop, out-edges, in-edges — the cache construction order), the neighbor's
// x·W row is computed with the MatMul inner loop and accumulated with SpMM's
// per-entry full-column add; the bias lands after aggregation. out receives
// the row; xw is a Conv.Out()-wide scratch.
func (p *DeltaPass) ConvRow(conv *nn.GCNConv, v int, input func(u int) []float64, out, xw []float64) {
	for j := range out {
		out[j] = 0
	}
	p.entries = p.g.NormRowAppend(v, p.entries[:0])
	w := conv.Weight().Value
	for _, e := range p.entries {
		matVecRow(input(e.Col), w, xw)
		for j, xv := range xw {
			out[j] += e.Val * xv
		}
	}
	b := conv.Bias().Value.Data
	for j := range out {
		out[j] += b[j]
	}
}

// matVecRow computes one row of MatMul: acc = xrow·w, with the exact inner
// loop of the full kernel (ascending k, skipping zero inputs).
func matVecRow(xrow []float64, w *tensor.Matrix, acc []float64) {
	for j := range acc {
		acc[j] = 0
	}
	for k, av := range xrow {
		if av == 0 {
			continue
		}
		wrow := w.Row(k)
		for j, wv := range wrow {
			acc[j] += av * wv
		}
	}
}

// linearRow computes one row of a Linear apply: out = xrow·W + b.
func linearRow(xrow []float64, lin *nn.Linear, out []float64) {
	matVecRow(xrow, lin.W.Value, out)
	b := lin.B.Value.Data
	for j := range out {
		out[j] += b[j]
	}
}

func reluInPlace(row []float64) {
	for j, v := range row {
		if v <= 0 {
			row[j] = 0
		}
	}
}

func sigmoidInPlace(row []float64) {
	for j, v := range row {
		row[j] = tensor.Sigmoid(v)
	}
}

func tanhInPlace(row []float64) {
	for j, v := range row {
		row[j] = math.Tanh(v)
	}
}

// exceedsEps reports whether any component of the recomputed row differs
// from the cached row by more than eps (NaNs always count as changed).
func exceedsEps(fresh, cached []float64, eps float64) bool {
	for j := range fresh {
		d := math.Abs(fresh[j] - cached[j])
		if d > eps || math.IsNaN(d) {
			return true
		}
	}
	return false
}

// mergeSorted merges two ascending id slices into a fresh ascending slice
// without duplicates.
func mergeSorted(a, b []int) []int {
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	if len(b) == 0 {
		return append([]int(nil), a...)
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// RunDeltaFull runs the model's full-tensor forward, refreshing every stage
// cache, and records the full id range as committed for stateful models — a
// full forward rewrites every node's recurrent state, so every node must
// seed the next pass's candidate set. The returned matrix is fresh and owned
// by the caller. Bit-identical to Forward over FullView.
func RunDeltaFull(g *graph.Dynamic, m DeltaForwarder, st *DeltaState) *tensor.Matrix {
	out := m.DeltaFull(g, st)
	if m.Memoryless() {
		st.lastCommitted = nil
	} else {
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		st.lastCommitted = all
	}
	return out
}

// DeltaResult summarizes one delta pass for the engine's telemetry.
type DeltaResult struct {
	// Out is the store's live embedding matrix after the splice; nil when
	// the pass aborted.
	Out *tensor.Matrix
	// Aborted is set when a stage's candidate set exceeded the frontier
	// budget; nothing was committed and the caller must fall back to a full
	// forward.
	Aborted bool
	// Candidates counts candidate-row recomputations summed over stages.
	Candidates int
	// Pruned counts candidate rows whose recomputation stayed within epsilon
	// of the cache and was discarded.
	Pruned int
}

// RunDelta runs one delta-propagation pass: per stage, the candidate set is
// the 1-hop ball around the previous stage's accepted frontier plus this
// step's dirty nodes and the previous pass's state commits (covering
// normalization-row changes, changed neighbor inputs, and recurrent-state
// drift). Candidates are recomputed row-by-row; rows within eps of the cache
// are pruned. All commits — stage caches, recurrent state, the embedding
// splice — are deferred until every stage has run, so an abort (candidate
// set above maxCand) leaves the caches, the model, and the store untouched.
//
// dirty and st.lastCommitted must be ascending. emb must be valid and hold
// rows for every node the previous pass knew.
func RunDelta(g *graph.Dynamic, m DeltaForwarder, st *DeltaState, emb *EmbStore, dirty []int, eps float64, maxCand int) DeltaResult {
	n := g.N()
	nStages := m.DeltaStages()
	sources := mergeSorted(dirty, st.lastCommitted)
	p := newDeltaPass(g, m, st)

	type stageCommit struct {
		ids  []int
		rows *tensor.Matrix
	}
	commits := make([]stageCommit, nStages)
	var res DeltaResult
	var frontier []int
	for s := 0; s < nStages; s++ {
		cand := g.Ball(mergeSorted(frontier, sources), 1)
		if len(cand) > maxCand {
			return DeltaResult{Aborted: true}
		}
		res.Candidates += len(cand)
		rows := m.DeltaRows(p, s, cand)
		cache := st.stages[s]
		accepted := make([]int, 0, len(cand))
		for k, id := range cand {
			if id < cache.Rows && !exceedsEps(rows.Row(k), cache.Row(id), eps) {
				continue
			}
			accepted = append(accepted, k)
		}
		res.Pruned += len(cand) - len(accepted)
		ids := make([]int, len(accepted))
		acc := tensor.New(len(accepted), rows.Cols)
		for a, k := range accepted {
			ids[a] = cand[k]
			copy(acc.Row(a), rows.Row(k))
			p.overlay[s][cand[k]] = acc.Row(a)
		}
		commits[s] = stageCommit{ids: ids, rows: acc}
		frontier = ids
	}

	// Commit phase: grow and update stage caches, write recurrent state,
	// splice the final stage's embedding rows.
	var committed []int
	for s := 0; s < nStages; s++ {
		c := commits[s]
		if cache := st.stages[s]; cache.Rows < n {
			grown := tensor.New(n, cache.Cols)
			copy(grown.Data, cache.Data)
			st.stages[s] = grown
		}
		cache := st.stages[s]
		for a, id := range c.ids {
			copy(cache.Row(id), c.rows.Row(a))
		}
		if m.DeltaCommit(s, c.ids, c.rows) {
			committed = mergeSorted(committed, c.ids)
		}
	}
	st.lastCommitted = committed

	final := commits[nStages-1]
	hd := m.Hidden()
	if len(final.ids) > 0 {
		rows := make([]int, len(final.ids))
		embRows := tensor.New(len(final.ids), hd)
		for a := range final.ids {
			rows[a] = a
			copy(embRows.Row(a), final.rows.Row(a)[:hd])
		}
		emb.Splice(embRows, rows, final.ids)
	}
	res.Out = emb.Matrix()
	return res
}
