package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// DefaultRelations is the edge-type budget RTGCN reserves when built through
// dgnn.New; edges with larger type ids fall back to the self transform only.
const DefaultRelations = 4

// RTGCNModel is this repository's relation-aware extension of TGCN: an RGCN
// encoder and RGCN-gated GRU, one transform per edge type, built for the
// heterogeneous streams that motivate the paper (Example 1's lab events,
// prescriptions and procedure relations should not share a weight matrix).
// It is not one of the paper's seven evaluated baselines.
type RTGCNModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	enc *nn.RGCNConv
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	cell *nn.ConvGRUCell
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	//streamlint:ckpt-exempt edge-type count is construction-time configuration
	relations int
	state     *nodeState
}

// NewRTGCN returns a relation-aware TGCN over `relations` edge types.
func NewRTGCN(rng *rand.Rand, featDim, hidden, relations int) *RTGCNModel {
	if relations < 1 {
		relations = 1
	}
	return &RTGCNModel{
		enc: nn.NewRGCNConv(rng, featDim, hidden, relations),
		cell: nn.NewConvGRUCell(hidden, func() nn.Module {
			return nn.NewRGCNConv(rng, hidden+hidden, hidden, relations)
		}),
		hidden:    hidden,
		relations: relations,
		state:     newNodeState(hidden),
	}
}

// Name implements Model.
func (m *RTGCNModel) Name() string { return "RTGCN" }

// Layers implements Model.
func (m *RTGCNModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *RTGCNModel) Hidden() int { return m.hidden }

// Relations returns the edge-type budget.
func (m *RTGCNModel) Relations() int { return m.relations }

// Params implements Model.
func (m *RTGCNModel) Params() []*autodiff.Node { return nn.CollectParams(m.enc, m.cell) }

// BeginStep implements Model.
func (m *RTGCNModel) BeginStep(t int) { m.state.snapshot() }

// Memoryless implements Model: RTGCN carries per-node GRU state.
func (m *RTGCNModel) Memoryless() bool { return false }

// PregrowState sizes the hidden-state buffers for n nodes ahead of a
// concurrent shard fan-out.
func (m *RTGCNModel) PregrowState(n int) { m.state.pregrow(n) }

// Reset implements Model.
func (m *RTGCNModel) Reset() { m.state.reset() }

// WrapOptimizer implements Model.
func (m *RTGCNModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// DumpState implements Model.
func (m *RTGCNModel) DumpState() []StateDump { return []StateDump{m.state.dump()} }

// RestoreState implements Model.
func (m *RTGCNModel) RestoreState(d []StateDump) error { return restoreStates(d, m.state) }

// Forward implements Model. Views without typed adjacency support fall back
// to treating every edge as relation 0.
func (m *RTGCNModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	var typed []*tensor.CSR
	if v.TypedFn != nil {
		typed = v.TypedFn(m.relations)
	} else {
		typed = []*tensor.CSR{v.Norm}
	}
	x := tp.ReLU(m.enc.Apply(tp, typed, autodiff.Constant(v.Feat)))
	h := autodiff.Constant(m.state.gather(v))
	conv := func(mod nn.Module, in *autodiff.Node) *autodiff.Node {
		return mod.(*nn.RGCNConv).Apply(tp, typed, in)
	}
	hNew := m.cell.Apply(tp, conv, x, h)
	if !v.NoCommit {
		m.state.write(v, hNew.Value)
	}
	return hNew
}
