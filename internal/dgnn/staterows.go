package dgnn

import (
	"fmt"
	"sort"
)

// Row-granular recurrent-state transfer for the coordinator/replica split
// (internal/cluster). A replica's committed incremental forward advances the
// live state of exactly the exact rows its part contains; the coordinator
// must fold those rows back into its own authoritative model — and ship the
// rows a lagging replica missed — without disturbing anything else.
//
// DumpState/RestoreState are the wrong tool for that: nodeState.restore
// replaces the whole buffer and drops the BeginStep snapshot, which NoCommit
// training gathers later in the same step still read. GatherStateRows and
// ScatterStateRows move only the named rows of the *live* buffer and leave
// the snapshot untouched, so a mid-step scatter is exactly equivalent to the
// masked CommitRows write the local fan-out would have performed.

// StateRows is implemented by models whose recurrent state is per-node and
// can therefore be synchronized row-by-row across replicas. Models without
// per-node state (WinGNN) or with non-node state (EvolveGCN's weight
// recurrence) do not implement it.
type StateRows interface {
	// GatherStateRows copies the live state rows for the given ascending
	// global node ids, one StateDump per state matrix (same order and count
	// as DumpState). Rows the state has never stored gather as zeros —
	// the value a forward would read for them.
	GatherStateRows(ids []int) []StateDump
	// ScatterStateRows writes previously gathered rows back into the live
	// state at the given ids, growing the buffers as needed. The BeginStep
	// snapshot is not modified.
	ScatterStateRows(ids []int, dumps []StateDump) error
}

// gatherRows copies the live rows for ids into a StateDump. Unlike gather it
// never consults the snapshot: callers want the current committed values.
func (s *nodeState) gatherRows(ids []int) StateDump {
	d := StateDump{Rows: len(ids), Cols: s.dim, Data: make([]float64, len(ids)*s.dim)}
	for k, id := range ids {
		s.rowInto(id, d.Data[k*s.dim:(k+1)*s.dim])
	}
	return d
}

// scatterRows writes d's rows into the live buffer at ids. The snapshot is
// left alone: a scatter stands in for this step's masked commit, which also
// only touches live state.
func (s *nodeState) scatterRows(ids []int, d StateDump) error {
	if d.Cols != s.dim {
		return fmt.Errorf("dgnn: state row scatter dim %d does not match model dim %d", d.Cols, s.dim)
	}
	if d.Rows != len(ids) || len(d.Data) != d.Rows*d.Cols {
		return fmt.Errorf("dgnn: state row scatter %dx%d for %d ids carries %d values",
			d.Rows, d.Cols, len(ids), len(d.Data))
	}
	if len(ids) == 0 {
		return nil
	}
	if !sort.IntsAreSorted(ids) {
		return fmt.Errorf("dgnn: state row scatter ids must be ascending")
	}
	s.ensure(ids[len(ids)-1] + 1)
	for k, id := range ids {
		copy(s.data[id*s.dim:(id+1)*s.dim], d.Data[k*s.dim:(k+1)*s.dim])
	}
	return nil
}

func gatherStateRows(ids []int, states ...*nodeState) []StateDump {
	out := make([]StateDump, len(states))
	for i, st := range states {
		out[i] = st.gatherRows(ids)
	}
	return out
}

func scatterStateRows(ids []int, dumps []StateDump, states ...*nodeState) error {
	if len(dumps) != len(states) {
		return fmt.Errorf("dgnn: state row scatter has %d matrices, model needs %d", len(dumps), len(states))
	}
	for i, st := range states {
		if err := st.scatterRows(ids, dumps[i]); err != nil {
			return err
		}
	}
	return nil
}

// GatherStateRows implements StateRows.
func (m *TGCNModel) GatherStateRows(ids []int) []StateDump { return gatherStateRows(ids, m.state) }

// ScatterStateRows implements StateRows.
func (m *TGCNModel) ScatterStateRows(ids []int, d []StateDump) error {
	return scatterStateRows(ids, d, m.state)
}

// GatherStateRows implements StateRows.
func (m *DCRNNModel) GatherStateRows(ids []int) []StateDump { return gatherStateRows(ids, m.state) }

// ScatterStateRows implements StateRows.
func (m *DCRNNModel) ScatterStateRows(ids []int, d []StateDump) error {
	return scatterStateRows(ids, d, m.state)
}

// GatherStateRows implements StateRows.
func (m *GCLSTMModel) GatherStateRows(ids []int) []StateDump {
	return gatherStateRows(ids, m.hState, m.cState)
}

// ScatterStateRows implements StateRows.
func (m *GCLSTMModel) ScatterStateRows(ids []int, d []StateDump) error {
	return scatterStateRows(ids, d, m.hState, m.cState)
}

// GatherStateRows implements StateRows.
func (m *DyGrEncoderModel) GatherStateRows(ids []int) []StateDump {
	return gatherStateRows(ids, m.hState, m.cState)
}

// ScatterStateRows implements StateRows.
func (m *DyGrEncoderModel) ScatterStateRows(ids []int, d []StateDump) error {
	return scatterStateRows(ids, d, m.hState, m.cState)
}

// GatherStateRows implements StateRows.
func (m *ROLANDModel) GatherStateRows(ids []int) []StateDump {
	return gatherStateRows(ids, m.h1, m.h2)
}

// ScatterStateRows implements StateRows.
func (m *ROLANDModel) ScatterStateRows(ids []int, d []StateDump) error {
	return scatterStateRows(ids, d, m.h1, m.h2)
}

// GatherStateRows implements StateRows.
func (m *RTGCNModel) GatherStateRows(ids []int) []StateDump { return gatherStateRows(ids, m.state) }

// ScatterStateRows implements StateRows.
func (m *RTGCNModel) ScatterStateRows(ids []int, d []StateDump) error {
	return scatterStateRows(ids, d, m.state)
}
