package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
)

// DCRNNModel is DCRNN (Li et al.): a GRU whose gate transforms are K-step
// bidirectional diffusion convolutions over the forward and reverse
// random-walk transition matrices. K == 2, so Layers() == 2.
type DCRNNModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	cell *nn.ConvGRUCell
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	//streamlint:ckpt-exempt diffusion order is construction-time configuration
	k     int
	state *nodeState
}

// NewDCRNN returns a DCRNN with diffusion order 2.
func NewDCRNN(rng *rand.Rand, featDim, hidden int) *DCRNNModel {
	const k = 2
	return &DCRNNModel{
		cell: nn.NewConvGRUCell(hidden, func() nn.Module {
			return nn.NewDiffusionConv(rng, featDim+hidden, hidden, k)
		}),
		hidden: hidden,
		k:      k,
		state:  newNodeState(hidden),
	}
}

// Name implements Model.
func (m *DCRNNModel) Name() string { return "DCRNN" }

// Layers implements Model.
func (m *DCRNNModel) Layers() int { return m.k }

// Hidden implements Model.
func (m *DCRNNModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *DCRNNModel) Params() []*autodiff.Node { return m.cell.Params() }

// BeginStep implements Model: snapshots recurrent state for the step's
// training forwards.
func (m *DCRNNModel) BeginStep(t int) { m.state.snapshot() }

// Memoryless implements Model: DCRNN carries per-node GRU state.
func (m *DCRNNModel) Memoryless() bool { return false }

// PregrowState sizes the hidden-state buffers for n nodes ahead of a
// concurrent shard fan-out.
func (m *DCRNNModel) PregrowState(n int) { m.state.pregrow(n) }

// Reset implements Model.
func (m *DCRNNModel) Reset() { m.state.reset() }

// WrapOptimizer implements Model.
func (m *DCRNNModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// Forward implements Model.
func (m *DCRNNModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	h := autodiff.Constant(m.state.gather(v))
	conv := func(mod nn.Module, in *autodiff.Node) *autodiff.Node {
		return mod.(*nn.DiffusionConv).Apply(tp, v.RWFwd, v.RWRev, in)
	}
	hNew := m.cell.Apply(tp, conv, autodiff.Constant(v.Feat), h)
	if !v.NoCommit {
		m.state.write(v, hNew.Value)
	}
	return hNew
}
