package dgnn

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
)

// The invariant behind node-level training partitions: within a step, a
// NoCommit forward over a node's L-hop partition reproduces the inference
// embedding of that node — exactly for models whose receptive field equals
// Layers() (GCLSTM, DyGrEncoder, ROLAND, WinGNN, EvolveGCN), and to within
// a small epsilon for the gated-conv recurrences whose reset-gate nesting
// adds one effective hop (TGCN, DCRNN).
func TestPartitionCenterEmbeddingMatchesInference(t *testing.T) {
	g := ring(12, 3)
	tolerance := map[Kind]float64{
		TGCN:  1e-3,
		DCRNN: 1e-2, // K=2 diffusion inside the reset gate: 2 extra hops
		RTGCN: 5e-3, // same gate nesting as TGCN
	}
	for _, k := range Kinds() {
		tol, ok := tolerance[k]
		if !ok {
			tol = 1e-9
		}
		rng := rand.New(rand.NewSource(3))
		m := New(k, rng, 3, 4)
		// Warm up two committed steps so state is non-trivial.
		for step := 0; step < 2; step++ {
			m.BeginStep(step)
			tp := autodiff.NewTape()
			m.Forward(tp, FullView(g))
		}
		m.BeginStep(2)
		tp := autodiff.NewTape()
		inf := m.Forward(tp, FullView(g)).Value
		for _, v := range []int{0, 5, 9} {
			sub := g.Partition(v, m.Layers())
			sv := SubView(sub)
			sv.NoCommit = true
			tp2 := autodiff.NewTape()
			part := m.Forward(tp2, sv).Value
			for c := 0; c < 4; c++ {
				got := part.At(sub.Center, c)
				want := inf.At(v, c)
				if diff := got - want; diff > tol || diff < -tol {
					t.Fatalf("%s: node %d dim %d: partition %v vs inference %v", k, v, c, got, want)
				}
			}
		}
	}
}

// The state snapshot must survive multiple training forwards within a step:
// repeated NoCommit forwards are idempotent even after inference committed.
func TestNoCommitIdempotentAfterCommit(t *testing.T) {
	g := ring(8, 3)
	for _, k := range []Kind{TGCN, DCRNN, GCLSTM, DyGrEncoder, ROLAND} {
		rng := rand.New(rand.NewSource(4))
		m := New(k, rng, 3, 4)
		m.BeginStep(0)
		tp := autodiff.NewTape()
		m.Forward(tp, FullView(g)) // commit
		sub := g.Partition(2, m.Layers())
		sv := SubView(sub)
		sv.NoCommit = true
		tp = autodiff.NewTape()
		out1 := m.Forward(tp, sv).Value.Clone()
		tp = autodiff.NewTape()
		out2 := m.Forward(tp, sv).Value
		if !out1.AllClose(out2, 1e-12) {
			t.Fatalf("%s: NoCommit forwards differ within a step", k)
		}
	}
}

// Snapshot growth: nodes added after a snapshot still forward safely.
func TestSnapshotWithGraphGrowth(t *testing.T) {
	g := ring(6, 3)
	rng := rand.New(rand.NewSource(5))
	m := NewTGCN(rng, 3, 4)
	m.BeginStep(0)
	tp := autodiff.NewTape()
	m.Forward(tp, FullView(g))
	// New node arrives mid-step; a training forward touching it must not
	// panic and must see zero state for it.
	v := g.AddNode(0, []float64{1, 0, 0})
	g.AddUndirectedEdge(v, 0, 0, 1)
	sub := g.Partition(v, m.Layers())
	sv := SubView(sub)
	sv.NoCommit = true
	tp = autodiff.NewTape()
	out := m.Forward(tp, sv)
	if out.Value.Rows != sub.N() {
		t.Fatal("growth forward wrong shape")
	}
}
