package dgnn

import (
	"math"

	"streamgnn/internal/graph"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// This file holds the per-model stage decompositions behind DeltaForwarder:
// each neighborhood aggregation (or recurrent update that consumes one) is a
// stage with a cached per-node output. Five of the eight kinds implement the
// interface — WinGNN, TGCN, GCLSTM, ROLAND, DyGrEncoder. DCRNN's K-step
// diffusion, EvolveGCN's per-step weight recurrence, and RTGCN's per-relation
// adjacencies do not decompose into per-node cached stages the same way;
// those kinds keep the region-splice ladder even when DeltaForward is
// configured.
//
// The DeltaFull implementations run the same tensor kernels, in the same
// order, as the tape ops inside Forward — the tape's MatMul/SpMM/AddBias/
// Apply delegate to exactly these functions — so their outputs are bitwise
// equal to Forward over FullView, which the delta tests assert for every
// delta-capable kind.

func reluVal(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

func oneMinusVal(v float64) float64 { return 1 - v }

// fullConv computes AddBias(SpMM(norm, MatMul(x, W)), B) — the value path of
// GCNConv.Apply.
func fullConv(conv *nn.GCNConv, norm *tensor.CSR, x *tensor.Matrix) *tensor.Matrix {
	return tensor.AddRowVector(tensor.SpMM(norm, tensor.MatMul(x, conv.Weight().Value)), conv.Bias().Value)
}

// fullLinear computes AddBias(MatMul(x, W), B) — the value path of
// Linear.Apply.
func fullLinear(lin *nn.Linear, x *tensor.Matrix) *tensor.Matrix {
	return tensor.AddRowVector(tensor.MatMul(x, lin.W.Value), lin.B.Value)
}

// fullConvGRU advances a graph-gated GRU over the full graph — the value
// path of ConvGRUCell.Apply with GCNConv gates.
func fullConvGRU(cell *nn.ConvGRUCell, norm *tensor.CSR, x, h *tensor.Matrix) *tensor.Matrix {
	zc, rc, cc := cell.Gates()
	xh := tensor.ConcatCols(x, h)
	z := tensor.Apply(fullConv(zc.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	r := tensor.Apply(fullConv(rc.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	cand := tensor.Apply(fullConv(cc.(*nn.GCNConv), norm, tensor.ConcatCols(x, tensor.Mul(r, h))), math.Tanh)
	return tensor.Add(tensor.Mul(z, h), tensor.Mul(tensor.Apply(z, oneMinusVal), cand))
}

// zrFull computes the full [z|r] gate matrix of a graph-gated GRU — the
// stage-1 cache of TGCN's decomposition.
func zrFull(cell *nn.ConvGRUCell, norm *tensor.CSR, x, h *tensor.Matrix) *tensor.Matrix {
	zc, rc, _ := cell.Gates()
	xh := tensor.ConcatCols(x, h)
	z := tensor.Apply(fullConv(zc.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	r := tensor.Apply(fullConv(rc.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	return tensor.ConcatCols(z, r)
}

// fullConvLSTM advances a graph-gated LSTM over the full graph — the value
// path of ConvLSTMCell.Apply with GCNConv gates.
func fullConvLSTM(cell *nn.ConvLSTMCell, norm *tensor.CSR, x, h, c *tensor.Matrix) (hNew, cNew *tensor.Matrix) {
	ci, cf, co, cg := cell.Gates()
	xh := tensor.ConcatCols(x, h)
	i := tensor.Apply(fullConv(ci.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	f := tensor.Apply(fullConv(cf.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	o := tensor.Apply(fullConv(co.(*nn.GCNConv), norm, xh), tensor.Sigmoid)
	g := tensor.Apply(fullConv(cg.(*nn.GCNConv), norm, xh), math.Tanh)
	cNew = tensor.Add(tensor.Mul(f, c), tensor.Mul(i, g))
	hNew = tensor.Mul(o, tensor.Apply(cNew, math.Tanh))
	return hNew, cNew
}

// fullGRU advances a dense GRU — the value path of GRUCell.Apply.
func fullGRU(cell *nn.GRUCell, x, h *tensor.Matrix) *tensor.Matrix {
	wz, wr, wc := cell.Gates()
	xh := tensor.ConcatCols(x, h)
	z := tensor.Apply(fullLinear(wz, xh), tensor.Sigmoid)
	r := tensor.Apply(fullLinear(wr, xh), tensor.Sigmoid)
	cand := tensor.Apply(fullLinear(wc, tensor.ConcatCols(x, tensor.Mul(r, h))), math.Tanh)
	return tensor.Add(tensor.Mul(z, h), tensor.Mul(tensor.Apply(z, oneMinusVal), cand))
}

// fullLSTM advances a dense LSTM — the value path of LSTMCell.Apply.
func fullLSTM(cell *nn.LSTMCell, x, h, c *tensor.Matrix) (hNew, cNew *tensor.Matrix) {
	wi, wf, wo, wg := cell.Gates()
	xh := tensor.ConcatCols(x, h)
	i := tensor.Apply(fullLinear(wi, xh), tensor.Sigmoid)
	f := tensor.Apply(fullLinear(wf, xh), tensor.Sigmoid)
	o := tensor.Apply(fullLinear(wo, xh), tensor.Sigmoid)
	g := tensor.Apply(fullLinear(wg, xh), math.Tanh)
	cNew = tensor.Add(tensor.Mul(f, c), tensor.Mul(i, g))
	hNew = tensor.Mul(o, tensor.Apply(cNew, math.Tanh))
	return hNew, cNew
}

// liveMatrix returns the live recurrent state of nodes [0, n) as a matrix
// (zero rows beyond the stored prefix) — the values a committed full
// forward's gather reads.
func (s *nodeState) liveMatrix(n int) *tensor.Matrix {
	out := tensor.New(n, s.dim)
	stored := len(s.data) / s.dim
	if stored > n {
		stored = n
	}
	copy(out.Data[:stored*s.dim], s.data[:stored*s.dim])
	return out
}

// gruRow computes one row of GRUCell.Apply. x is the input row, h the prior
// hidden row; scratch slices xh (len(x)+hd), xr (len(x)+hd), z, r, cand (hd
// each) are caller-owned.
func gruRow(cell *nn.GRUCell, x, h, out, xh, xr, z, r, cand []float64) {
	wz, wr, wc := cell.Gates()
	copy(xh[:len(x)], x)
	copy(xh[len(x):], h)
	linearRow(xh, wz, z)
	sigmoidInPlace(z)
	linearRow(xh, wr, r)
	sigmoidInPlace(r)
	copy(xr[:len(x)], x)
	for j := range h {
		xr[len(x)+j] = r[j] * h[j]
	}
	linearRow(xr, wc, cand)
	tanhInPlace(cand)
	for j := range h {
		out[j] = z[j]*h[j] + (1-z[j])*cand[j]
	}
}

// ---------------------------------------------------------------- WinGNN
// Stage 0: s0 = ReLU(conv1(x));  stage 1 (embedding): tanh(conv2(s0) +
// skip(x)). Memoryless — epsilon 0 keeps delta exactly equal to full.

// DeltaStages implements DeltaForwarder.
func (m *WinGNNModel) DeltaStages() int { return 2 }

// DeltaStageCols implements DeltaForwarder.
func (m *WinGNNModel) DeltaStageCols(s int) int { return m.hidden }

// DeltaFull implements DeltaForwarder.
func (m *WinGNNModel) DeltaFull(g *graph.Dynamic, st *DeltaState) *tensor.Matrix {
	x := g.Features()
	norm := g.NormAdj()
	s0 := tensor.Apply(fullConv(m.conv1, norm, x), reluVal)
	h := fullConv(m.conv2, norm, s0)
	out := tensor.Apply(tensor.Add(h, fullLinear(m.skip, x)), math.Tanh)
	st.setStages(s0, out.Clone())
	return out
}

// DeltaRows implements DeltaForwarder.
func (m *WinGNNModel) DeltaRows(p *DeltaPass, s int, ids []int) *tensor.Matrix {
	hd := m.hidden
	out := tensor.New(len(ids), hd)
	xw := make([]float64, hd)
	switch s {
	case 0:
		for k, v := range ids {
			row := out.Row(k)
			p.ConvRow(m.conv1, v, p.Feat, row, xw)
			reluInPlace(row)
		}
	case 1:
		sk := make([]float64, hd)
		prev := func(u int) []float64 { return p.StageRow(0, u) }
		for k, v := range ids {
			row := out.Row(k)
			p.ConvRow(m.conv2, v, prev, row, xw)
			linearRow(p.Feat(v), m.skip, sk)
			for j := range row {
				row[j] = math.Tanh(row[j] + sk[j])
			}
		}
	}
	return out
}

// DeltaCommit implements DeltaForwarder: WinGNN keeps no recurrent state.
func (m *WinGNNModel) DeltaCommit(s int, ids []int, rows *tensor.Matrix) bool { return false }

// ------------------------------------------------------------------ TGCN
// Stage 0: x1 = ReLU(enc(x)); stage 1: the gate matrix [z|r] (each a conv
// over [x1|h]); stage 2 (embedding, commits h): hNew = z∘h + (1−z)∘tanh(
// convC([x1 | r∘h])).

// DeltaStages implements DeltaForwarder.
func (m *TGCNModel) DeltaStages() int { return 3 }

// DeltaStageCols implements DeltaForwarder.
func (m *TGCNModel) DeltaStageCols(s int) int {
	if s == 1 {
		return 2 * m.hidden
	}
	return m.hidden
}

// DeltaFull implements DeltaForwarder.
func (m *TGCNModel) DeltaFull(g *graph.Dynamic, st *DeltaState) *tensor.Matrix {
	n := g.N()
	norm := g.NormAdj()
	x1 := tensor.Apply(fullConv(m.enc, norm, g.Features()), reluVal)
	h := m.state.liveMatrix(n)
	zr := zrFull(m.cell, norm, x1, h)
	hNew := fullConvGRU(m.cell, norm, x1, h)
	m.state.setAll(hNew)
	st.setStages(x1, zr, hNew.Clone())
	return hNew
}

// DeltaRows implements DeltaForwarder.
func (m *TGCNModel) DeltaRows(p *DeltaPass, s int, ids []int) *tensor.Matrix {
	hd := m.hidden
	xw := make([]float64, hd)
	switch s {
	case 0:
		out := tensor.New(len(ids), hd)
		for k, v := range ids {
			row := out.Row(k)
			p.ConvRow(m.enc, v, p.Feat, row, xw)
			reluInPlace(row)
		}
		return out
	case 1:
		zc, rc, _ := m.cell.Gates()
		out := tensor.New(len(ids), 2*hd)
		xh := make([]float64, 2*hd)
		input := func(u int) []float64 {
			copy(xh[:hd], p.StageRow(0, u))
			m.state.rowInto(u, xh[hd:])
			return xh
		}
		for k, v := range ids {
			row := out.Row(k)
			p.ConvRow(zc.(*nn.GCNConv), v, input, row[:hd], xw)
			sigmoidInPlace(row[:hd])
			p.ConvRow(rc.(*nn.GCNConv), v, input, row[hd:], xw)
			sigmoidInPlace(row[hd:])
		}
		return out
	default:
		_, _, cc := m.cell.Gates()
		out := tensor.New(len(ids), hd)
		in2 := make([]float64, 2*hd)
		hu := make([]float64, hd)
		input := func(u int) []float64 {
			copy(in2[:hd], p.StageRow(0, u))
			zr := p.StageRow(1, u)
			m.state.rowInto(u, hu)
			for j := 0; j < hd; j++ {
				in2[hd+j] = zr[hd+j] * hu[j]
			}
			return in2
		}
		cand := make([]float64, hd)
		hv := make([]float64, hd)
		for k, v := range ids {
			p.ConvRow(cc.(*nn.GCNConv), v, input, cand, xw)
			tanhInPlace(cand)
			zr := p.StageRow(1, v)
			m.state.rowInto(v, hv)
			row := out.Row(k)
			for j := 0; j < hd; j++ {
				row[j] = zr[j]*hv[j] + (1-zr[j])*cand[j]
			}
		}
		return out
	}
}

// DeltaCommit implements DeltaForwarder: stage 2 is the GRU state.
func (m *TGCNModel) DeltaCommit(s int, ids []int, rows *tensor.Matrix) bool {
	if s != 2 {
		return false
	}
	m.state.writeRows(ids, rows, 0)
	return true
}

// ---------------------------------------------------------------- GCLSTM
// Stage 0: x1 = ReLU(enc(x)); stage 1 (embedding = first half, commits h
// and c): [hNew|cNew] from the four conv gates over [x1|h].

// DeltaStages implements DeltaForwarder.
func (m *GCLSTMModel) DeltaStages() int { return 2 }

// DeltaStageCols implements DeltaForwarder.
func (m *GCLSTMModel) DeltaStageCols(s int) int {
	if s == 1 {
		return 2 * m.hidden
	}
	return m.hidden
}

// DeltaFull implements DeltaForwarder.
func (m *GCLSTMModel) DeltaFull(g *graph.Dynamic, st *DeltaState) *tensor.Matrix {
	n := g.N()
	norm := g.NormAdj()
	x1 := tensor.Apply(fullConv(m.enc, norm, g.Features()), reluVal)
	h := m.hState.liveMatrix(n)
	c := m.cState.liveMatrix(n)
	hNew, cNew := fullConvLSTM(m.cell, norm, x1, h, c)
	m.hState.setAll(hNew)
	m.cState.setAll(cNew)
	st.setStages(x1, tensor.ConcatCols(hNew, cNew))
	return hNew
}

// DeltaRows implements DeltaForwarder.
func (m *GCLSTMModel) DeltaRows(p *DeltaPass, s int, ids []int) *tensor.Matrix {
	hd := m.hidden
	xw := make([]float64, hd)
	if s == 0 {
		out := tensor.New(len(ids), hd)
		for k, v := range ids {
			row := out.Row(k)
			p.ConvRow(m.enc, v, p.Feat, row, xw)
			reluInPlace(row)
		}
		return out
	}
	ci, cf, co, cg := m.cell.Gates()
	out := tensor.New(len(ids), 2*hd)
	xh := make([]float64, 2*hd)
	input := func(u int) []float64 {
		copy(xh[:hd], p.StageRow(0, u))
		m.hState.rowInto(u, xh[hd:])
		return xh
	}
	gi := make([]float64, hd)
	gf := make([]float64, hd)
	go_ := make([]float64, hd)
	gg := make([]float64, hd)
	cv := make([]float64, hd)
	for k, v := range ids {
		p.ConvRow(ci.(*nn.GCNConv), v, input, gi, xw)
		sigmoidInPlace(gi)
		p.ConvRow(cf.(*nn.GCNConv), v, input, gf, xw)
		sigmoidInPlace(gf)
		p.ConvRow(co.(*nn.GCNConv), v, input, go_, xw)
		sigmoidInPlace(go_)
		p.ConvRow(cg.(*nn.GCNConv), v, input, gg, xw)
		tanhInPlace(gg)
		m.cState.rowInto(v, cv)
		row := out.Row(k)
		for j := 0; j < hd; j++ {
			cNew := gf[j]*cv[j] + gi[j]*gg[j]
			row[hd+j] = cNew
			row[j] = go_[j] * math.Tanh(cNew)
		}
	}
	return out
}

// DeltaCommit implements DeltaForwarder: stage 1 carries [h|c].
func (m *GCLSTMModel) DeltaCommit(s int, ids []int, rows *tensor.Matrix) bool {
	if s != 1 {
		return false
	}
	m.hState.writeRows(ids, rows, 0)
	m.cState.writeRows(ids, rows, m.hidden)
	return true
}

// ---------------------------------------------------------------- ROLAND
// Stage 0 (commits h1): new1 = GRU(ReLU(conv1(x)), h1); stage 1 (embedding,
// commits h2): new2 = GRU(ReLU(conv2(new1)), h2). The dense GRUs have no
// neighbor dependencies, so each layer is one stage.

// DeltaStages implements DeltaForwarder.
func (m *ROLANDModel) DeltaStages() int { return 2 }

// DeltaStageCols implements DeltaForwarder.
func (m *ROLANDModel) DeltaStageCols(s int) int { return m.hidden }

// DeltaFull implements DeltaForwarder.
func (m *ROLANDModel) DeltaFull(g *graph.Dynamic, st *DeltaState) *tensor.Matrix {
	n := g.N()
	norm := g.NormAdj()
	c1 := tensor.Apply(fullConv(m.conv1, norm, g.Features()), reluVal)
	new1 := fullGRU(m.upd1, c1, m.h1.liveMatrix(n))
	c2 := tensor.Apply(fullConv(m.conv2, norm, new1), reluVal)
	new2 := fullGRU(m.upd2, c2, m.h2.liveMatrix(n))
	m.h1.setAll(new1)
	m.h2.setAll(new2)
	st.setStages(new1, new2.Clone())
	return new2
}

// DeltaRows implements DeltaForwarder.
func (m *ROLANDModel) DeltaRows(p *DeltaPass, s int, ids []int) *tensor.Matrix {
	hd := m.hidden
	out := tensor.New(len(ids), hd)
	xw := make([]float64, hd)
	cx := make([]float64, hd)
	hv := make([]float64, hd)
	xh := make([]float64, 2*hd)
	xr := make([]float64, 2*hd)
	z := make([]float64, hd)
	r := make([]float64, hd)
	cand := make([]float64, hd)
	conv, upd, state := m.conv1, m.upd1, m.h1
	input := p.Feat
	if s == 1 {
		conv, upd, state = m.conv2, m.upd2, m.h2
		input = func(u int) []float64 { return p.StageRow(0, u) }
	}
	for k, v := range ids {
		p.ConvRow(conv, v, input, cx, xw)
		reluInPlace(cx)
		state.rowInto(v, hv)
		gruRow(upd, cx, hv, out.Row(k), xh, xr, z, r, cand)
	}
	return out
}

// DeltaCommit implements DeltaForwarder: each stage is that layer's state.
func (m *ROLANDModel) DeltaCommit(s int, ids []int, rows *tensor.Matrix) bool {
	if s == 0 {
		m.h1.writeRows(ids, rows, 0)
	} else {
		m.h2.writeRows(ids, rows, 0)
	}
	return true
}

// ----------------------------------------------------------- DyGrEncoder
// Stage 0: x1 = ReLU(enc1(x)); stage 1: x2 = ReLU(enc2(x1)); stage 2
// (embedding = first third, commits h and c): [emb|hNew|cNew] with a dense
// per-row LSTM and emb = tanh(dec(hNew)).

// DeltaStages implements DeltaForwarder.
func (m *DyGrEncoderModel) DeltaStages() int { return 3 }

// DeltaStageCols implements DeltaForwarder.
func (m *DyGrEncoderModel) DeltaStageCols(s int) int {
	if s == 2 {
		return 3 * m.hidden
	}
	return m.hidden
}

// DeltaFull implements DeltaForwarder.
func (m *DyGrEncoderModel) DeltaFull(g *graph.Dynamic, st *DeltaState) *tensor.Matrix {
	n := g.N()
	norm := g.NormAdj()
	x1 := tensor.Apply(fullConv(m.enc1, norm, g.Features()), reluVal)
	x2 := tensor.Apply(fullConv(m.enc2, norm, x1), reluVal)
	h := m.hState.liveMatrix(n)
	c := m.cState.liveMatrix(n)
	hNew, cNew := fullLSTM(m.lstm, x2, h, c)
	emb := tensor.Apply(fullLinear(m.dec, hNew), math.Tanh)
	m.hState.setAll(hNew)
	m.cState.setAll(cNew)
	st.setStages(x1, x2, tensor.ConcatCols(tensor.ConcatCols(emb, hNew), cNew))
	return emb
}

// DeltaRows implements DeltaForwarder.
func (m *DyGrEncoderModel) DeltaRows(p *DeltaPass, s int, ids []int) *tensor.Matrix {
	hd := m.hidden
	xw := make([]float64, hd)
	switch s {
	case 0, 1:
		conv := m.enc1
		input := p.Feat
		if s == 1 {
			conv = m.enc2
			input = func(u int) []float64 { return p.StageRow(0, u) }
		}
		out := tensor.New(len(ids), hd)
		for k, v := range ids {
			row := out.Row(k)
			p.ConvRow(conv, v, input, row, xw)
			reluInPlace(row)
		}
		return out
	default:
		wi, wf, wo, wg := m.lstm.Gates()
		out := tensor.New(len(ids), 3*hd)
		xh := make([]float64, 2*hd)
		gi := make([]float64, hd)
		gf := make([]float64, hd)
		go_ := make([]float64, hd)
		gg := make([]float64, hd)
		hv := make([]float64, hd)
		cv := make([]float64, hd)
		for k, v := range ids {
			copy(xh[:hd], p.StageRow(1, v))
			m.hState.rowInto(v, hv)
			copy(xh[hd:], hv)
			linearRow(xh, wi, gi)
			sigmoidInPlace(gi)
			linearRow(xh, wf, gf)
			sigmoidInPlace(gf)
			linearRow(xh, wo, go_)
			sigmoidInPlace(go_)
			linearRow(xh, wg, gg)
			tanhInPlace(gg)
			m.cState.rowInto(v, cv)
			row := out.Row(k)
			for j := 0; j < hd; j++ {
				cNew := gf[j]*cv[j] + gi[j]*gg[j]
				row[2*hd+j] = cNew
				row[hd+j] = go_[j] * math.Tanh(cNew)
			}
			linearRow(row[hd:2*hd], m.dec, row[:hd])
			tanhInPlace(row[:hd])
		}
		return out
	}
}

// DeltaCommit implements DeltaForwarder: stage 2 carries [emb|h|c].
func (m *DyGrEncoderModel) DeltaCommit(s int, ids []int, rows *tensor.Matrix) bool {
	if s != 2 {
		return false
	}
	m.hState.writeRows(ids, rows, m.hidden)
	m.cState.writeRows(ids, rows, 2*m.hidden)
	return true
}
