package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// EvolveGCNModel is EvolveGCN (Pareja et al., "-O" variant): a two-layer GCN
// whose layer weight matrices are not trained directly but *evolved* through
// time by a GRU that treats the weight matrix as its recurrent state. The
// GRU's own parameters are trained by gradients flowing through the evolved
// weights. Evolution happens once per stream step: every Forward within a
// step recomputes the same on-tape evolution from the step's starting
// weights, and the first Forward of a step captures the evolved value as the
// next step's starting point.
type EvolveGCNModel struct {
	layers []*evolveLayer
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	//streamlint:ckpt-exempt step bookkeeping, re-established by BeginStep on the first resumed step
	curStep int
	//streamlint:ckpt-exempt step bookkeeping, re-established by BeginStep on the first resumed step
	haveStep bool
}

type evolveLayer struct {
	gru    *nn.GRUCell
	bias   *autodiff.Node
	wStart *tensor.Matrix // W_{t-1}: weights the current step evolves from
	wNext  *tensor.Matrix // W_t captured at the step's first forward
}

// NewEvolveGCN returns an EvolveGCN-O with two layers.
func NewEvolveGCN(rng *rand.Rand, featDim, hidden int) *EvolveGCNModel {
	mk := func(in int) *evolveLayer {
		return &evolveLayer{
			gru:    nn.NewGRUCell(rng, hidden, hidden),
			bias:   autodiff.Param(tensor.New(1, hidden)),
			wStart: tensor.Glorot(rng, in, hidden),
		}
	}
	return &EvolveGCNModel{
		layers: []*evolveLayer{mk(featDim), mk(hidden)},
		hidden: hidden,
	}
}

// Name implements Model.
func (m *EvolveGCNModel) Name() string { return "EvolveGCN" }

// Layers implements Model.
func (m *EvolveGCNModel) Layers() int { return len(m.layers) }

// Hidden implements Model.
func (m *EvolveGCNModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *EvolveGCNModel) Params() []*autodiff.Node {
	var out []*autodiff.Node
	for _, l := range m.layers {
		out = append(out, l.gru.Params()...)
		out = append(out, l.bias)
	}
	return out
}

// BeginStep implements Model: promotes the captured evolved weights to the
// new step's starting weights.
func (m *EvolveGCNModel) BeginStep(t int) {
	if m.haveStep && t == m.curStep {
		return
	}
	m.curStep = t
	m.haveStep = true
	for _, l := range m.layers {
		if l.wNext != nil {
			l.wStart = l.wNext
			l.wNext = nil
		}
	}
}

// Memoryless implements Model: the weight matrices evolve every step, so a
// cached embedding row reflects the weights of the step it was computed at.
func (m *EvolveGCNModel) Memoryless() bool { return false }

// Reset implements Model: forgets captured evolutions (starting weights are
// kept, as they are the model's only weights).
func (m *EvolveGCNModel) Reset() {
	for _, l := range m.layers {
		l.wNext = nil
	}
}

// WrapOptimizer implements Model.
func (m *EvolveGCNModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// Forward implements Model.
func (m *EvolveGCNModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	h := autodiff.Constant(v.Feat)
	for i, l := range m.layers {
		w0 := autodiff.Constant(l.wStart)
		wt := l.gru.Apply(tp, w0, w0) // evolve: rows of W are the GRU batch
		if l.wNext == nil && !v.NoCommit {
			l.wNext = wt.Value.Clone()
		}
		h = tp.AddBias(tp.SpMM(v.Norm, tp.MatMul(h, wt)), l.bias)
		if i+1 < len(m.layers) {
			h = tp.ReLU(h)
		} else {
			h = tp.Tanh(h)
		}
	}
	return h
}
