package dgnn

import (
	"streamgnn/internal/tensor"
)

// nodeState stores per-node recurrent state (hidden/cell vectors) indexed by
// global node id, growing as the stream adds nodes. State written back after
// a forward pass is detached: gradients never flow across time steps
// (truncated BPTT window 1), keeping online memory bounded.
// Committed (inference) forwards read and write the live state. NoCommit
// (training) forwards read the snapshot taken at BeginStep — the state as it
// was *before* this step's inference — so a training partition replays
// exactly the computation whose output the prediction heads are evaluated
// on, rather than advancing the recurrence a second time within the step.
type nodeState struct {
	dim  int
	data []float64 // n × dim, live
	prev []float64 // snapshot taken at BeginStep; nil before the first one
	n    int
}

func newNodeState(dim int) *nodeState { return &nodeState{dim: dim} }

// snapshot archives the live state for this step's NoCommit forwards.
func (s *nodeState) snapshot() {
	if cap(s.prev) < len(s.data) {
		s.prev = make([]float64, len(s.data))
	}
	s.prev = s.prev[:len(s.data)]
	copy(s.prev, s.data)
}

// pregrow extends the live buffer — and the BeginStep snapshot, when one
// exists — to n node rows ahead of a concurrent fan-out. Growth is the only
// nodeState mutation that is not row-disjoint, so it must happen on one
// goroutine before shard workers start; the new rows are zero in both
// buffers (a node first seen this step has no prior state), so pregrowing
// never changes a computed value. The snapshot must grow too: a SnapshotState
// gather of a just-added node would otherwise fall back to the live buffer,
// racing with other shards' commits.
func (s *nodeState) pregrow(n int) {
	s.ensure(n)
	if s.prev == nil || len(s.prev) >= len(s.data) {
		return
	}
	need := len(s.data)
	if cap(s.prev) >= need {
		old := len(s.prev)
		s.prev = s.prev[:need]
		for i := old; i < need; i++ {
			s.prev[i] = 0
		}
		return
	}
	grown := make([]float64, need, 2*need)
	copy(grown, s.prev)
	s.prev = grown
}

func (s *nodeState) ensure(n int) {
	if n <= s.n {
		return
	}
	need := n * s.dim
	if need > cap(s.data) {
		grown := make([]float64, need, 2*need)
		copy(grown, s.data)
		s.data = grown
	} else {
		s.data = s.data[:need]
	}
	s.n = n
}

func (s *nodeState) maxID(v View) int {
	if v.IDs == nil {
		return v.N - 1
	}
	m := -1
	for _, id := range v.IDs {
		if id > m {
			m = id
		}
	}
	return m
}

// gather returns the state rows for the view's nodes (a copy). NoCommit and
// SnapshotState views read the BeginStep snapshot when one exists.
//
// NoCommit gathers are strictly read-only: nodes the state has never seen
// read as zero rows instead of growing the state, exactly the values ensure
// would append. Training forwards (always NoCommit) therefore never mutate
// shared model state and can run concurrently on worker goroutines.
// Committed SnapshotState gathers (the sharded fan-out) rely on pregrow
// having sized both buffers already, making the ensure below a no-op.
func (s *nodeState) gather(v View) *tensor.Matrix {
	if !v.NoCommit {
		s.ensure(s.maxID(v) + 1)
	}
	src := s.data
	if (v.NoCommit || v.SnapshotState) && s.prev != nil {
		src = s.prev
	}
	out := tensor.New(v.N, s.dim)
	for i := 0; i < v.N; i++ {
		id := v.globalID(i)
		off := id * s.dim
		switch {
		case off+s.dim <= len(src):
			copy(out.Row(i), src[off:off+s.dim])
		case off+s.dim <= len(s.data):
			copy(out.Row(i), s.data[off:off+s.dim])
		}
		// Otherwise the node has no stored state yet; its row stays zero.
	}
	return out
}

// write stores m's rows back into the view's nodes. When the view carries a
// CommitRows mask (incremental forwards), only the exact rows land; boundary
// rows of the compute region keep their previous state.
func (s *nodeState) write(v View, m *tensor.Matrix) {
	if m.Rows != v.N || m.Cols != s.dim {
		panic("dgnn: state write shape mismatch")
	}
	s.ensure(s.maxID(v) + 1)
	if v.CommitRows != nil {
		for _, i := range v.CommitRows {
			id := v.globalID(i)
			copy(s.data[id*s.dim:(id+1)*s.dim], m.Row(i))
		}
		return
	}
	for i := 0; i < v.N; i++ {
		id := v.globalID(i)
		copy(s.data[id*s.dim:(id+1)*s.dim], m.Row(i))
	}
}

// row returns node id's live state row, or nil when the node has no stored
// state yet (reads as zero). The returned slice aliases the live buffer;
// callers must not hold it across a write.
func (s *nodeState) row(id int) []float64 {
	off := id * s.dim
	if off+s.dim <= len(s.data) {
		return s.data[off : off+s.dim]
	}
	return nil
}

// rowInto copies node id's live state row into dst, zero-filling when the
// node has no stored state yet — the value a gather would produce.
func (s *nodeState) rowInto(id int, dst []float64) {
	if row := s.row(id); row != nil {
		copy(dst, row)
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

// writeRows commits m's rows (columns [colOff, colOff+dim)) to the given
// global node ids: the delta path's masked state write.
func (s *nodeState) writeRows(ids []int, m *tensor.Matrix, colOff int) {
	maxID := -1
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	s.ensure(maxID + 1)
	for k, id := range ids {
		copy(s.data[id*s.dim:(id+1)*s.dim], m.Row(k)[colOff:colOff+s.dim])
	}
}

// setAll replaces the state of nodes [0, m.Rows) with m — a full forward's
// unmasked commit on the delta path.
func (s *nodeState) setAll(m *tensor.Matrix) {
	if m.Cols != s.dim {
		panic("dgnn: setAll state dim mismatch")
	}
	s.ensure(m.Rows)
	copy(s.data[:m.Rows*s.dim], m.Data)
}

// reset zeroes all stored state and drops the snapshot.
func (s *nodeState) reset() {
	for i := range s.data {
		s.data[i] = 0
	}
	s.prev = nil
}
