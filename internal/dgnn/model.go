// Package dgnn implements the seven dynamic graph neural network baselines
// of the paper's evaluation — TGCN, DCRNN, GCLSTM, DyGrEncoder, ROLAND,
// WinGNN, and EvolveGCN — behind a single Model interface that supports both
// full-graph forwards and forwards over induced subgraphs (the node-level
// training partitions of Section III-C).
//
// All models are discrete-time: they consume one snapshot view per call and
// carry per-node recurrent state forward with truncated backpropagation
// (window 1), which is the natural regime for online continuous training.
package dgnn

import (
	"fmt"
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/tensor"
)

// View is a model-facing snapshot of either the full graph or an induced
// subgraph. IDs maps view rows to global node ids; nil means row i is node i.
type View struct {
	N     int
	Feat  *tensor.Matrix
	Norm  *tensor.CSR
	RWFwd *tensor.CSR
	RWRev *tensor.CSR
	IDs   []int
	// NoCommit, when set, prevents the forward pass from writing updated
	// recurrent state back (useful for what-if evaluation).
	NoCommit bool
	// CommitRows, when non-nil on a committed view, restricts recurrent-state
	// write-back to these local row indices (ascending). Incremental forwards
	// use it: the view spans the whole compute region, but only the exact
	// rows — the dirty nodes' L-hop frontier — may overwrite live state;
	// boundary rows have truncated receptive fields and must not.
	CommitRows []int
	// SnapshotState makes a committed forward gather recurrent state from
	// the BeginStep snapshot instead of the live buffer (writes still land
	// live, masked by CommitRows). The sharded fan-out sets it on every
	// per-shard view: at forward time the snapshot equals the live state
	// (BeginStep just copied it), so values are unchanged, but concurrent
	// shard workers never read a row another worker is committing.
	SnapshotState bool
	// TypedFn lazily builds per-relation normalized adjacencies for
	// relation-aware models (RTGCN); nil for views that cannot provide it.
	TypedFn func(ntypes int) []*tensor.CSR
}

// FullView builds the view of a full snapshot.
func FullView(g *graph.Dynamic) View {
	return View{
		N:       g.N(),
		Feat:    g.Features(),
		Norm:    g.NormAdj(),
		RWFwd:   g.RWAdj(false),
		RWRev:   g.RWAdj(true),
		TypedFn: g.TypedAdj,
	}
}

// SubView builds the view of an induced subgraph.
func SubView(s *graph.Subgraph) View {
	return View{
		N:       s.N(),
		Feat:    s.Features(),
		Norm:    s.NormAdj(),
		RWFwd:   s.RWAdj(false),
		RWRev:   s.RWAdj(true),
		IDs:     s.Nodes,
		TypedFn: s.TypedAdj,
	}
}

// DirtyView builds the view of an incremental forward: the induced subgraph
// of the compute region (the dirty nodes' 2L-hop ball), with recurrent-state
// commit restricted to the exact rows (the dirty nodes' L-hop ball, as local
// indices). Rows listed in commitRows come out bit-identical to a full-graph
// forward for memoryless models, because the subgraph normalization uses
// global degrees and every node within L hops of an exact row is inside the
// region.
func DirtyView(s *graph.Subgraph, commitRows []int) View {
	v := SubView(s)
	v.CommitRows = commitRows
	return v
}

// LocalRows returns the positions in nodes (ascending, unique) of the ids in
// subset (ascending, a subset of nodes) — the local row indices a DirtyView
// commits and an EmbStore splices.
func LocalRows(nodes, subset []int) []int {
	rows := make([]int, 0, len(subset))
	j := 0
	for i, v := range nodes {
		if j < len(subset) && subset[j] == v {
			rows = append(rows, i)
			j++
		}
	}
	if j != len(subset) {
		panic(fmt.Sprintf("dgnn: LocalRows subset has %d ids outside nodes", len(subset)-j))
	}
	return rows
}

// globalID returns the global node id of view row i.
func (v View) globalID(i int) int {
	if v.IDs == nil {
		return i
	}
	return v.IDs[i]
}

// Model is a pluggable dynamic graph neural network.
type Model interface {
	// Name returns the model's published name.
	Name() string
	// Layers returns the GNN depth L; node partitions use L-hop balls.
	Layers() int
	// Hidden returns the embedding dimension.
	Hidden() int
	// Params returns all trainable parameters.
	Params() []*autodiff.Node
	// BeginStep announces that the stream advanced to step t. Models with
	// per-step weight dynamics (EvolveGCN) hook this.
	BeginStep(t int)
	// Memoryless reports whether Forward is a pure function of the view —
	// no recurrent state and no per-step weight dynamics. For memoryless
	// models incremental dirty-region inference is exact (bit-identical to
	// a full forward); for stateful models it is bounded-staleness: rows
	// outside the dirty frontier keep their last committed state.
	Memoryless() bool
	// Forward computes gradient-tracked embeddings (view.N × Hidden) and,
	// unless view.NoCommit, writes updated recurrent state for the view's
	// nodes (detached).
	Forward(tp *autodiff.Tape, v View) *autodiff.Node
	// Reset clears all recurrent state (training restart).
	Reset()
	// WrapOptimizer lets the model interpose on parameter updates
	// (WinGNN's random gradient-aggregation window); most models return
	// opt unchanged.
	WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer
	// DumpState returns the model's recurrent state for checkpointing.
	DumpState() []StateDump
	// RestoreState replaces the recurrent state from a checkpoint.
	RestoreState([]StateDump) error
}

// StatePregrower is implemented by models whose committed forwards are safe
// to run concurrently on disjoint node sets once per-node state buffers have
// been grown up front. PregrowState(n) sizes every recurrent-state buffer
// (live and BeginStep snapshot) for n nodes on the calling goroutine, so the
// shard fan-out's subsequent gathers and row-disjoint writes never reallocate
// shared slices. Models with per-step *weight* dynamics on the committed path
// (EvolveGCN advances its weight recurrence inside Forward) must not
// implement it; the fan-out runs them serially in shard order instead.
type StatePregrower interface {
	PregrowState(n int)
}

// Kind enumerates the implemented baselines.
type Kind int

// The seven baselines of the paper's Section VI-C.
const (
	TGCN Kind = iota
	DCRNN
	GCLSTM
	DyGrEncoder
	ROLAND
	WinGNN
	EvolveGCN
	// RTGCN is this repository's relation-aware extension beyond the
	// paper's seven baselines: TGCN with RGCN-style per-relation weights,
	// for the heterogeneous streams of the paper's Example 1.
	RTGCN
)

// String returns the published model name.
func (k Kind) String() string {
	switch k {
	case TGCN:
		return "TGCN"
	case DCRNN:
		return "DCRNN"
	case GCLSTM:
		return "GCLSTM"
	case DyGrEncoder:
		return "DyGrEncoder"
	case ROLAND:
		return "ROLAND"
	case WinGNN:
		return "WinGNN"
	case EvolveGCN:
		return "EvolveGCN"
	case RTGCN:
		return "RTGCN"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a model name (case-sensitive published spelling).
func ParseKind(name string) (Kind, error) {
	for k := TGCN; k <= RTGCN; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dgnn: unknown model %q", name)
}

// Kinds returns all implemented models: the paper's seven baselines plus
// the RTGCN extension.
func Kinds() []Kind {
	return []Kind{TGCN, DCRNN, GCLSTM, DyGrEncoder, ROLAND, WinGNN, EvolveGCN, RTGCN}
}

// BaselineKinds returns only the paper's seven baselines.
func BaselineKinds() []Kind {
	return Kinds()[:7]
}

// New constructs a baseline of the given kind.
func New(kind Kind, rng *rand.Rand, featDim, hidden int) Model {
	switch kind {
	case TGCN:
		return NewTGCN(rng, featDim, hidden)
	case DCRNN:
		return NewDCRNN(rng, featDim, hidden)
	case GCLSTM:
		return NewGCLSTM(rng, featDim, hidden)
	case DyGrEncoder:
		return NewDyGrEncoder(rng, featDim, hidden)
	case ROLAND:
		return NewROLAND(rng, featDim, hidden)
	case WinGNN:
		return NewWinGNN(rng, featDim, hidden)
	case EvolveGCN:
		return NewEvolveGCN(rng, featDim, hidden)
	case RTGCN:
		return NewRTGCN(rng, featDim, hidden, DefaultRelations)
	default:
		panic(fmt.Sprintf("dgnn: unknown kind %d", kind))
	}
}
