package dgnn

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
)

// Dump/restore round trip: after restoring state into a freshly built model
// with identical parameters, forwards reproduce the original embeddings.
func TestCheckpointRoundTripAllModels(t *testing.T) {
	g := ring(9, 3)
	for _, k := range Kinds() {
		rng := rand.New(rand.NewSource(9))
		m1 := New(k, rng, 3, 4)
		// Advance a few committed steps to build non-trivial state.
		for step := 0; step < 3; step++ {
			m1.BeginStep(step)
			tp := autodiff.NewTape()
			m1.Forward(tp, FullView(g))
		}
		dumped := m1.DumpState()

		rng2 := rand.New(rand.NewSource(9)) // identical params
		m2 := New(k, rng2, 3, 4)
		if err := m2.RestoreState(dumped); err != nil {
			t.Fatalf("%s: restore failed: %v", k, err)
		}
		m1.BeginStep(3)
		m2.BeginStep(3)
		tp := autodiff.NewTape()
		out1 := m1.Forward(tp, FullView(g)).Value
		tp = autodiff.NewTape()
		out2 := m2.Forward(tp, FullView(g)).Value
		if !out1.AllClose(out2, 1e-12) {
			t.Fatalf("%s: restored model diverges", k)
		}
	}
}

func TestCheckpointRestoreValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGCLSTM(rng, 3, 4)
	if err := m.RestoreState(nil); err == nil {
		t.Fatal("wrong state count accepted")
	}
	bad := []StateDump{{Rows: 2, Cols: 99, Data: make([]float64, 2*99)}, {Rows: 0, Cols: 4}}
	if err := m.RestoreState(bad); err == nil {
		t.Fatal("wrong state dim accepted")
	}
	short := []StateDump{{Rows: 2, Cols: 4, Data: make([]float64, 3)}, {Rows: 0, Cols: 4}}
	if err := m.RestoreState(short); err == nil {
		t.Fatal("short data accepted")
	}
	w := NewWinGNN(rng, 3, 4)
	if err := w.RestoreState([]StateDump{{}}); err == nil {
		t.Fatal("WinGNN with state accepted")
	}
	ev := NewEvolveGCN(rng, 3, 4)
	if err := ev.RestoreState(nil); err == nil {
		t.Fatal("EvolveGCN wrong count accepted")
	}
	wrongShape := ev.DumpState()
	wrongShape[0].Rows++
	wrongShape[0].Data = append(wrongShape[0].Data, make([]float64, 4)...)
	if err := ev.RestoreState(wrongShape); err == nil {
		t.Fatal("EvolveGCN wrong shape accepted")
	}
	corrupt := ev.DumpState()
	corrupt[0].Data = corrupt[0].Data[:1]
	if err := ev.RestoreState(corrupt); err == nil {
		t.Fatal("EvolveGCN corrupt data accepted")
	}
}

func TestResetAllModels(t *testing.T) {
	g := ring(6, 3)
	for _, k := range Kinds() {
		rng := rand.New(rand.NewSource(2))
		m := New(k, rng, 3, 4)
		m.BeginStep(0)
		tp := autodiff.NewTape()
		m.Forward(tp, FullView(g))
		m.Reset() // must not panic; state-carrying models verified elsewhere
	}
}

func TestBaselineKinds(t *testing.T) {
	base := BaselineKinds()
	if len(base) != 7 || base[6] != EvolveGCN {
		t.Fatalf("BaselineKinds = %v", base)
	}
}
