package dgnn

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/tensor"
)

// typedRing builds a ring alternating between two edge types.
func typedRing(n, featDim int) *graph.Dynamic {
	g := graph.NewDynamic(featDim)
	for i := 0; i < n; i++ {
		f := make([]float64, featDim)
		f[0] = float64(i%3) - 1
		g.AddNode(0, f)
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, graph.EdgeType(i%2), int64(i))
	}
	return g
}

func TestRTGCNRelations(t *testing.T) {
	g := typedRing(8, 3)
	rng := rand.New(rand.NewSource(1))
	m := NewRTGCN(rng, 3, 4, 2)
	if m.Relations() != 2 {
		t.Fatalf("Relations = %d", m.Relations())
	}
	m.BeginStep(0)
	tp := autodiff.NewTape()
	out := m.Forward(tp, FullView(g))
	loss := tp.MSE(out, tensor.New(8, 4))
	tp.Backward(loss)
	for i, p := range m.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d detached (both relations present in graph)", i)
		}
	}
}

func TestRTGCNDistinguishesRelations(t *testing.T) {
	// Two graphs with identical topology but different edge types must
	// produce different embeddings whenever the encoder is alive (a plain
	// GCN could not tell them apart). A ReLU can zero the encoder for an
	// unlucky seed, so several seeds are tried.
	g1 := graph.NewDynamic(2)
	g2 := graph.NewDynamic(2)
	for i := 0; i < 4; i++ {
		g1.AddNode(0, []float64{1, -0.5})
		g2.AddNode(0, []float64{1, -0.5})
	}
	for i := 0; i < 4; i++ {
		g1.AddUndirectedEdge(i, (i+1)%4, 0, 0)
		g2.AddUndirectedEdge(i, (i+1)%4, 1, 0)
	}
	alive, distinguished := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewRTGCN(rng, 2, 4, 2)
		m.BeginStep(0)
		tp := autodiff.NewTape()
		v1 := FullView(g1)
		v1.NoCommit = true
		out1 := m.Forward(tp, v1).Value.Clone()
		tp = autodiff.NewTape()
		v2 := FullView(g2)
		v2.NoCommit = true
		out2 := m.Forward(tp, v2).Value
		if out1.MaxAbs() == 0 && out2.MaxAbs() == 0 {
			continue // dead ReLU for this seed
		}
		alive++
		if !out1.AllClose(out2, 1e-9) {
			distinguished++
		}
	}
	if alive == 0 {
		t.Fatal("every seed produced a dead encoder")
	}
	if distinguished != alive {
		t.Fatalf("RTGCN ignored edge types on %d/%d alive seeds", alive-distinguished, alive)
	}
}

func TestRTGCNFallsBackWithoutTypedAdj(t *testing.T) {
	g := typedRing(6, 3)
	rng := rand.New(rand.NewSource(3))
	m := NewRTGCN(rng, 3, 4, 2)
	m.BeginStep(0)
	v := FullView(g)
	v.TypedFn = nil // view without typed support
	v.NoCommit = true
	tp := autodiff.NewTape()
	out := m.Forward(tp, v)
	if out.Value.Rows != 6 || out.Value.Cols != 4 {
		t.Fatal("fallback forward wrong shape")
	}
}

func TestRTGCNRelationBudgetClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewRTGCN(rng, 2, 3, 0)
	if m.Relations() != 1 {
		t.Fatalf("relations not clamped: %d", m.Relations())
	}
}

// TypedAdj per-type matrices must cover exactly the typed edges, with the
// same normalization scale as the untyped adjacency.
func TestTypedAdjPartition(t *testing.T) {
	g := typedRing(8, 2)
	typed := g.TypedAdj(2)
	if len(typed) != 2 {
		t.Fatalf("typed count %d", len(typed))
	}
	// Every off-diagonal entry of NormAdj appears in exactly one type.
	total := typed[0].NNZ() + typed[1].NNZ()
	// NormAdj has self loops (8) plus 4 entries per node (2 out, 2 in).
	if total != g.NormAdj().NNZ()-8 {
		t.Fatalf("typed entries %d, want %d", total, g.NormAdj().NNZ()-8)
	}
	// Subgraph typed adjacency matches the full one on interior nodes.
	sub := g.Partition(3, 2)
	st := sub.TypedAdj(2)
	li := sub.Center
	full := typed[1].Dense()
	sb := st[1].Dense()
	for lj, vj := range sub.Nodes {
		if d := sb.At(li, lj) - full.At(3, vj); d > 1e-12 || d < -1e-12 {
			t.Fatalf("subgraph typed entry differs at (%d,%d)", li, lj)
		}
	}
}

func TestNumEdgeTypes(t *testing.T) {
	g := graph.NewDynamic(1)
	g.AddNode(0, nil)
	if g.NumEdgeTypes() != 0 {
		t.Fatal("edgeless graph should have 0 types")
	}
	g.AddNode(0, nil)
	g.AddEdge(0, 1, 3, 0)
	if g.NumEdgeTypes() != 4 {
		t.Fatalf("NumEdgeTypes = %d", g.NumEdgeTypes())
	}
}
