package dgnn

import (
	"sync"
	"testing"

	"streamgnn/internal/tensor"
)

func filled(rows, cols int, base float64) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = base + float64(i)
	}
	return m
}

func TestEmbStorePublishCopyOnWrite(t *testing.T) {
	s := NewEmbStore()
	if s.Publish() != nil {
		t.Fatal("invalid store should publish nil")
	}
	s.SetFull(filled(3, 2, 0), 1)

	snap := s.Publish()
	if snap != s.Matrix() {
		t.Fatal("publish should hand out the live matrix, not a copy")
	}
	want := append([]float64(nil), snap.Data...)

	// An in-place splice after publication must clone: the snapshot keeps its
	// bits, the store diverges.
	patch := filled(1, 2, 100)
	s.Splice(patch, []int{0}, []int{1})
	if s.Matrix() == snap {
		t.Fatal("splice did not copy-on-write the published matrix")
	}
	for i, v := range want {
		if snap.Data[i] != v {
			t.Fatalf("published snapshot mutated at %d: %v != %v", i, snap.Data[i], v)
		}
	}
	if s.Matrix().At(1, 0) != 100 || s.Matrix().At(1, 1) != 101 {
		t.Fatalf("store row not spliced: %v", s.Matrix().Row(1))
	}

	// Only one clone per published matrix: a second splice stays in place.
	private := s.Matrix()
	s.Splice(filled(1, 2, 200), []int{0}, []int{0})
	if s.Matrix() != private {
		t.Fatal("unpublished matrix was cloned needlessly")
	}

	// Growth replaces the matrix, so a published snapshot survives it too.
	snap2 := s.Publish()
	grown := append([]float64(nil), snap2.Data...)
	s.Splice(filled(1, 2, 300), []int{0}, []int{5})
	if s.Rows() != 6 || s.Matrix() == snap2 {
		t.Fatalf("grow kept the published matrix (rows=%d)", s.Rows())
	}
	for i, v := range grown {
		if snap2.Data[i] != v {
			t.Fatalf("snapshot mutated by grow at %d", i)
		}
	}

	// Invalidate and SetFull drop the matrix without touching the snapshot.
	snap3 := s.Publish()
	s.Invalidate()
	if s.Publish() != nil {
		t.Fatal("invalidated store should publish nil")
	}
	s.SetFull(filled(2, 2, 400), 9)
	if s.Matrix() == snap3 {
		t.Fatal("SetFull reused the published matrix")
	}
}

// A reader holding a published snapshot must see bit-identical rows no matter
// how the store is spliced, grown, invalidated or refilled concurrently. Run
// with -race: any write to the published matrix is a data race.
func TestEmbStoreSnapshotConcurrentWriters(t *testing.T) {
	s := NewEmbStore()
	s.SetFull(filled(32, 4, 0), 0)
	snap := s.Publish()
	want := append([]float64(nil), snap.Data...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: continuously verify the held snapshot
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, v := range want {
				if snap.Data[i] != v {
					t.Errorf("snapshot bits changed at %d: %v != %v", i, snap.Data[i], v)
					return
				}
			}
		}
	}()

	patch := filled(2, 4, 1000)
	for iter := 0; iter < 2000; iter++ {
		switch iter % 40 {
		case 38:
			s.Invalidate()
		case 39:
			s.SetFull(filled(32, 4, float64(iter)), iter)
		default:
			if s.Valid() {
				s.Publish() // republish every step, like the engine does
				s.Splice(patch, []int{0, 1}, []int{iter % 30, iter%30 + 1})
			}
		}
	}
	close(stop)
	wg.Wait()
}
