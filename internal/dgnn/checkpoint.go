package dgnn

import (
	"fmt"

	"streamgnn/internal/tensor"
)

// StateDump is one serializable recurrent-state matrix of a model
// checkpoint. Together with the parameter values (reachable via Params())
// it captures everything a model needs to resume mid-stream.
type StateDump struct {
	Rows, Cols int
	Data       []float64
}

func dumpMatrix(m *tensor.Matrix) StateDump {
	d := StateDump{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(d.Data, m.Data)
	return d
}

func (d StateDump) matrix() (*tensor.Matrix, error) {
	if len(d.Data) != d.Rows*d.Cols {
		return nil, fmt.Errorf("dgnn: state dump %dx%d carries %d values", d.Rows, d.Cols, len(d.Data))
	}
	m := tensor.New(d.Rows, d.Cols)
	copy(m.Data, d.Data)
	return m, nil
}

func (s *nodeState) dump() StateDump {
	d := StateDump{Rows: s.n, Cols: s.dim, Data: make([]float64, s.n*s.dim)}
	copy(d.Data, s.data)
	return d
}

func (s *nodeState) restore(d StateDump) error {
	if d.Cols != s.dim {
		return fmt.Errorf("dgnn: state dim %d does not match model dim %d", d.Cols, s.dim)
	}
	if len(d.Data) != d.Rows*d.Cols {
		return fmt.Errorf("dgnn: state dump %dx%d carries %d values", d.Rows, d.Cols, len(d.Data))
	}
	s.data = append(s.data[:0], d.Data...)
	s.n = d.Rows
	s.prev = nil
	return nil
}

func restoreStates(dumps []StateDump, states ...*nodeState) error {
	if len(dumps) != len(states) {
		return fmt.Errorf("dgnn: checkpoint has %d states, model needs %d", len(dumps), len(states))
	}
	for i, st := range states {
		if err := st.restore(dumps[i]); err != nil {
			return err
		}
	}
	return nil
}

// DumpState implements Model.
func (m *TGCNModel) DumpState() []StateDump { return []StateDump{m.state.dump()} }

// RestoreState implements Model.
func (m *TGCNModel) RestoreState(d []StateDump) error { return restoreStates(d, m.state) }

// DumpState implements Model.
func (m *DCRNNModel) DumpState() []StateDump { return []StateDump{m.state.dump()} }

// RestoreState implements Model.
func (m *DCRNNModel) RestoreState(d []StateDump) error { return restoreStates(d, m.state) }

// DumpState implements Model.
func (m *GCLSTMModel) DumpState() []StateDump {
	return []StateDump{m.hState.dump(), m.cState.dump()}
}

// RestoreState implements Model.
func (m *GCLSTMModel) RestoreState(d []StateDump) error {
	return restoreStates(d, m.hState, m.cState)
}

// DumpState implements Model.
func (m *DyGrEncoderModel) DumpState() []StateDump {
	return []StateDump{m.hState.dump(), m.cState.dump()}
}

// RestoreState implements Model.
func (m *DyGrEncoderModel) RestoreState(d []StateDump) error {
	return restoreStates(d, m.hState, m.cState)
}

// DumpState implements Model.
func (m *ROLANDModel) DumpState() []StateDump {
	return []StateDump{m.h1.dump(), m.h2.dump()}
}

// RestoreState implements Model.
func (m *ROLANDModel) RestoreState(d []StateDump) error {
	return restoreStates(d, m.h1, m.h2)
}

// DumpState implements Model: WinGNN carries no recurrent state.
func (m *WinGNNModel) DumpState() []StateDump { return nil }

// RestoreState implements Model.
func (m *WinGNNModel) RestoreState(d []StateDump) error {
	if len(d) != 0 {
		return fmt.Errorf("dgnn: WinGNN checkpoint must carry no state, got %d", len(d))
	}
	return nil
}

// DumpState implements Model: EvolveGCN's state is each layer's weight
// matrix as of the end of the current step — the captured evolution when one
// exists (so a restore resumes exactly where the dumped model would have
// continued), else the step's starting weights.
func (m *EvolveGCNModel) DumpState() []StateDump {
	out := make([]StateDump, len(m.layers))
	for i, l := range m.layers {
		w := l.wStart
		if l.wNext != nil {
			w = l.wNext
		}
		out[i] = dumpMatrix(w)
	}
	return out
}

// RestoreState implements Model.
func (m *EvolveGCNModel) RestoreState(d []StateDump) error {
	if len(d) != len(m.layers) {
		return fmt.Errorf("dgnn: EvolveGCN checkpoint has %d weight states, need %d", len(d), len(m.layers))
	}
	for i, l := range m.layers {
		w, err := d[i].matrix()
		if err != nil {
			return err
		}
		if w.Rows != l.wStart.Rows || w.Cols != l.wStart.Cols {
			return fmt.Errorf("dgnn: EvolveGCN layer %d weight shape %dx%d, need %dx%d",
				i, w.Rows, w.Cols, l.wStart.Rows, l.wStart.Cols)
		}
		l.wStart = w
		l.wNext = nil
	}
	return nil
}
