package dgnn

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	srng "streamgnn/internal/rng"
	"streamgnn/internal/tensor"
)

// ring builds a ring graph with simple features.
func ring(n, featDim int) *graph.Dynamic {
	g := graph.NewDynamic(featDim)
	for i := 0; i < n; i++ {
		f := make([]float64, featDim)
		f[0] = float64(i%3) - 1
		g.AddNode(0, f)
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, int64(i))
	}
	return g
}

func allModels(t *testing.T) []Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var out []Model
	for _, k := range Kinds() {
		out = append(out, New(k, rng, 3, 4))
	}
	return out
}

func TestKindStringAndParse(t *testing.T) {
	names := []string{"TGCN", "DCRNN", "GCLSTM", "DyGrEncoder", "ROLAND", "WinGNN", "EvolveGCN", "RTGCN"}
	for i, k := range Kinds() {
		if k.String() != names[i] {
			t.Fatalf("Kind %d String = %q", i, k.String())
		}
		parsed, err := ParseKind(names[i])
		if err != nil || parsed != k {
			t.Fatalf("ParseKind(%q) = %v, %v", names[i], parsed, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind should reject unknown names")
	}
}

func TestModelMetadata(t *testing.T) {
	for _, m := range allModels(t) {
		if m.Hidden() != 4 {
			t.Fatalf("%s Hidden = %d", m.Name(), m.Hidden())
		}
		if m.Layers() < 1 || m.Layers() > 3 {
			t.Fatalf("%s Layers = %d", m.Name(), m.Layers())
		}
		if len(m.Params()) == 0 {
			t.Fatalf("%s has no parameters", m.Name())
		}
	}
}

func TestFullForwardShapes(t *testing.T) {
	g := ring(7, 3)
	for _, m := range allModels(t) {
		m.BeginStep(0)
		tp := autodiff.NewTape()
		out := m.Forward(tp, FullView(g))
		if out.Value.Rows != 7 || out.Value.Cols != 4 {
			t.Fatalf("%s forward shape %dx%d", m.Name(), out.Value.Rows, out.Value.Cols)
		}
	}
}

func TestSubgraphForwardShapes(t *testing.T) {
	g := ring(9, 3)
	for _, m := range allModels(t) {
		m.BeginStep(0)
		sub := g.Partition(4, m.Layers())
		tp := autodiff.NewTape()
		out := m.Forward(tp, SubView(sub))
		if out.Value.Rows != sub.N() || out.Value.Cols != 4 {
			t.Fatalf("%s subgraph forward shape %dx%d", m.Name(), out.Value.Rows, out.Value.Cols)
		}
	}
}

func TestAllParamsReceiveGradients(t *testing.T) {
	g := ring(6, 3)
	for _, m := range allModels(t) {
		if m.Name() == "RTGCN" {
			continue // needs multi-type edges; see TestRTGCNRelations
		}
		m.BeginStep(0)
		tp := autodiff.NewTape()
		out := m.Forward(tp, FullView(g))
		loss := tp.MSE(out, tensor.New(out.Value.Rows, out.Value.Cols))
		tp.Backward(loss)
		for i, p := range m.Params() {
			if p.Grad == nil || p.Grad.MaxAbs() == 0 {
				// Biases initialized at zero can still get gradients; a nil
				// or all-zero gradient everywhere indicates a detached param.
				if p.Grad == nil {
					t.Fatalf("%s param %d detached from loss", m.Name(), i)
				}
			}
		}
	}
}

func TestRecurrentStatePersistsAcrossSteps(t *testing.T) {
	g := ring(5, 3)
	for _, k := range []Kind{TGCN, DCRNN, GCLSTM, DyGrEncoder, ROLAND} {
		rng := rand.New(rand.NewSource(2))
		m := New(k, rng, 3, 4)
		m.BeginStep(0)
		tp := autodiff.NewTape()
		out1 := m.Forward(tp, FullView(g)).Value.Clone()
		m.BeginStep(1)
		tp = autodiff.NewTape()
		out2 := m.Forward(tp, FullView(g)).Value.Clone()
		if out1.AllClose(out2, 1e-12) {
			t.Fatalf("%s: identical outputs across steps — state not carried", k)
		}
		// After Reset, replaying from scratch must reproduce step-1 output.
		m.Reset()
		m.BeginStep(2)
		tp = autodiff.NewTape()
		out3 := m.Forward(tp, FullView(g)).Value
		if !out1.AllClose(out3, 1e-9) {
			t.Fatalf("%s: Reset did not restore initial state", k)
		}
	}
}

func TestNoCommitLeavesStateUntouched(t *testing.T) {
	g := ring(5, 3)
	for _, m := range allModels(t) {
		m.BeginStep(0)
		v := FullView(g)
		v.NoCommit = true
		tp := autodiff.NewTape()
		out1 := m.Forward(tp, v).Value.Clone()
		tp = autodiff.NewTape()
		out2 := m.Forward(tp, v).Value
		if !out1.AllClose(out2, 1e-12) {
			t.Fatalf("%s: NoCommit forward is not idempotent", m.Name())
		}
	}
}

func TestSubgraphTrainingOnlyTouchesItsRows(t *testing.T) {
	g := ring(8, 3)
	for _, k := range []Kind{TGCN, GCLSTM, ROLAND} {
		rng := rand.New(rand.NewSource(3))
		m := New(k, rng, 3, 4)
		m.BeginStep(0)
		// Commit full state once.
		tp := autodiff.NewTape()
		m.Forward(tp, FullView(g))
		// Forward on a partition around node 0.
		sub := g.Partition(0, m.Layers())
		inSub := map[int]bool{}
		for _, v := range sub.Nodes {
			inSub[v] = true
		}
		m.BeginStep(1)
		tp = autodiff.NewTape()
		m.Forward(tp, SubView(sub))
		// A later NoCommit full forward should show that only partition rows
		// changed state: rows far from the partition evolved only via their
		// own (unchanged) state. We detect by comparing two full NoCommit
		// forwards before/after another partition pass — cheaper: ensure a
		// second partition pass changes partition-row outputs only through
		// its own state rows.
		far := -1
		for v := 0; v < g.N(); v++ {
			if !inSub[v] {
				far = v
				break
			}
		}
		if far < 0 {
			t.Skipf("%s: partition covers the whole ring", k)
		}
	}
}

func TestEvolveGCNWeightEvolutionOncePerStep(t *testing.T) {
	g := ring(5, 3)
	rng := rand.New(rand.NewSource(4))
	m := NewEvolveGCN(rng, 3, 4)
	m.BeginStep(0)
	tp := autodiff.NewTape()
	m.Forward(tp, FullView(g))
	w0 := m.layers[0].wNext.Clone()
	// Second forward within the same step must not change the capture.
	tp = autodiff.NewTape()
	m.Forward(tp, FullView(g))
	if !m.layers[0].wNext.Equal(w0) {
		t.Fatal("wNext changed within a step")
	}
	start0 := m.layers[0].wStart
	m.BeginStep(1)
	if m.layers[0].wStart == start0 {
		t.Fatal("BeginStep did not promote evolved weights")
	}
	if !m.layers[0].wStart.Equal(w0) {
		t.Fatal("promoted weights differ from captured evolution")
	}
	// Repeated BeginStep with the same t is a no-op.
	tp = autodiff.NewTape()
	m.Forward(tp, FullView(g))
	w1 := m.layers[0].wNext.Clone()
	m.BeginStep(1)
	if m.layers[0].wNext == nil || !m.layers[0].wNext.Equal(w1) {
		t.Fatal("same-step BeginStep should not promote")
	}
}

func TestEvolveGCNGradReachesGRU(t *testing.T) {
	g := ring(5, 3)
	rng := rand.New(rand.NewSource(5))
	m := NewEvolveGCN(rng, 3, 4)
	m.BeginStep(0)
	tp := autodiff.NewTape()
	out := m.Forward(tp, FullView(g))
	loss := tp.MSE(out, tensor.New(5, 4))
	tp.Backward(loss)
	sawGrad := false
	for _, p := range m.Params() {
		if p.Grad != nil && p.Grad.MaxAbs() > 0 {
			sawGrad = true
		}
	}
	if !sawGrad {
		t.Fatal("no gradient reached EvolveGCN's GRU parameters")
	}
}

func TestWinOptimizerAveragesGradients(t *testing.T) {
	p := autodiff.Param(tensor.FromSlice(1, 1, []float64{0}))
	inner := autodiff.NewSGD(1, []*autodiff.Node{p})
	inner.ClipNorm = 0
	w := &winOptimizer{inner: inner, window: 4, src: srng.New(1)}
	// Feed constant gradient 2: any suffix average is 2, so each step moves
	// the param by exactly -2.
	for i := 1; i <= 3; i++ {
		p.Grad = tensor.FromSlice(1, 1, []float64{2})
		w.Step()
		want := -2 * float64(i)
		if p.Value.Data[0] != want {
			t.Fatalf("after %d steps value = %v, want %v", i, p.Value.Data[0], want)
		}
	}
	if len(w.history) != 3 {
		t.Fatalf("history length %d", len(w.history))
	}
	// Window caps the history.
	for i := 0; i < 5; i++ {
		p.Grad = tensor.FromSlice(1, 1, []float64{0})
		w.Step()
	}
	if len(w.history) != 4 {
		t.Fatalf("history exceeded window: %d", len(w.history))
	}
}

func TestWinGNNWrapOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewWinGNN(rng, 3, 4)
	opt := autodiff.NewSGD(0.1, m.Params())
	wrapped := m.WrapOptimizer(opt)
	if _, ok := wrapped.(*winOptimizer); !ok {
		t.Fatal("WinGNN should wrap its optimizer")
	}
	// Other models pass through.
	tg := NewTGCN(rng, 3, 4)
	if tg.WrapOptimizer(opt) != autodiff.Optimizer(opt) {
		t.Fatal("TGCN should not wrap")
	}
}

func TestModelsLearnNodeSignal(t *testing.T) {
	// Each model should be able to reduce loss predicting a fixed target
	// pattern from node features within a modest number of steps.
	g := ring(10, 3)
	target := tensor.New(10, 4)
	for i := 0; i < 10; i++ {
		target.Set(i, 0, float64(i%2))
	}
	for _, k := range Kinds() {
		rng := rand.New(rand.NewSource(7))
		m := New(k, rng, 3, 4)
		opt := m.WrapOptimizer(autodiff.NewAdam(0.02, m.Params()))
		var first, last float64
		for step := 0; step < 60; step++ {
			m.BeginStep(step)
			tp := autodiff.NewTape()
			out := m.Forward(tp, FullView(g))
			loss := tp.MSE(out, target)
			if step == 0 {
				first = loss.Value.Data[0]
			}
			last = loss.Value.Data[0]
			tp.Backward(loss)
			opt.Step()
		}
		if last >= first {
			t.Fatalf("%s did not reduce loss: %v -> %v", k, first, last)
		}
	}
}

func TestNodeStateGatherWrite(t *testing.T) {
	s := newNodeState(2)
	v := View{N: 3, IDs: []int{5, 1, 7}}
	m := s.gather(v)
	if m.Rows != 3 || m.Cols != 2 || m.MaxAbs() != 0 {
		t.Fatal("fresh gather should be zeros")
	}
	upd := tensor.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	s.write(v, upd)
	full := s.gather(View{N: 8})
	if full.At(5, 0) != 1 || full.At(1, 1) != 4 || full.At(7, 0) != 5 || full.At(0, 0) != 0 {
		t.Fatalf("state rows wrong: %v", full)
	}
	s.reset()
	if s.gather(View{N: 8}).MaxAbs() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNodeStateGrowth(t *testing.T) {
	s := newNodeState(3)
	s.ensure(2)
	s.write(View{N: 2}, tensor.FromSlice(2, 3, []float64{1, 1, 1, 2, 2, 2}))
	s.ensure(100)
	m := s.gather(View{N: 100})
	if m.At(1, 0) != 2 || m.At(99, 2) != 0 {
		t.Fatal("growth corrupted state")
	}
}
