package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
	"streamgnn/internal/tensor"
)

// WinGNNModel is WinGNN (Zhu et al.): a plain two-layer GCN with *no*
// explicit temporal module; temporal adaptation comes from training with a
// randomized sliding window of per-snapshot gradients. The window mechanism
// lives in the winOptimizer returned by WrapOptimizer: each update applies
// the mean of a random-length suffix of recently observed gradients instead
// of only the newest one (random gradient-aggregation window).
type WinGNNModel struct {
	conv1, conv2 *nn.GCNConv
	skip         *nn.Linear
	hidden       int
	window       int
	rng          *rand.Rand
}

// NewWinGNN returns a WinGNN with gradient window 8.
func NewWinGNN(rng *rand.Rand, featDim, hidden int) *WinGNNModel {
	return &WinGNNModel{
		conv1:  nn.NewGCNConv(rng, featDim, hidden),
		conv2:  nn.NewGCNConv(rng, hidden, hidden),
		skip:   nn.NewLinear(rng, featDim, hidden),
		hidden: hidden,
		window: 8,
		rng:    rand.New(rand.NewSource(rng.Int63())),
	}
}

// Name implements Model.
func (m *WinGNNModel) Name() string { return "WinGNN" }

// Layers implements Model.
func (m *WinGNNModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *WinGNNModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *WinGNNModel) Params() []*autodiff.Node {
	return nn.CollectParams(m.conv1, m.conv2, m.skip)
}

// BeginStep implements Model.
func (m *WinGNNModel) BeginStep(t int) {}

// Memoryless implements Model: WinGNN is a pure GCN stack — its temporal
// adaptation lives entirely in the optimizer's gradient window, so Forward
// depends only on the view and incremental inference is exact.
func (m *WinGNNModel) Memoryless() bool { return true }

// Reset implements Model.
func (m *WinGNNModel) Reset() {}

// WrapOptimizer implements Model: wraps opt in the random
// gradient-aggregation window.
func (m *WinGNNModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer {
	return &winOptimizer{inner: opt, window: m.window, rng: m.rng}
}

// Forward implements Model.
func (m *WinGNNModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	x := autodiff.Constant(v.Feat)
	h := tp.ReLU(m.conv1.Apply(tp, v.Norm, x))
	h = m.conv2.Apply(tp, v.Norm, h)
	return tp.Tanh(tp.Add(h, m.skip.Apply(tp, x)))
}

// winOptimizer implements WinGNN's random gradient-aggregation window: it
// remembers the last `window` gradient snapshots and, on each Step, replaces
// the live gradient with the mean of a uniformly random-length suffix of the
// history before delegating to the wrapped optimizer.
type winOptimizer struct {
	inner   autodiff.Optimizer
	window  int
	rng     *rand.Rand
	history [][]*tensor.Matrix
}

// Params implements autodiff.Optimizer.
func (w *winOptimizer) Params() []*autodiff.Node { return w.inner.Params() }

// ZeroGrad implements autodiff.Optimizer.
func (w *winOptimizer) ZeroGrad() { w.inner.ZeroGrad() }

// Step implements autodiff.Optimizer.
func (w *winOptimizer) Step() {
	params := w.inner.Params()
	// Snapshot the live gradients (nil grads are zero).
	snap := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		if p.Grad != nil {
			snap[i] = p.Grad.Clone()
		}
	}
	w.history = append(w.history, snap)
	if len(w.history) > w.window {
		w.history = w.history[1:]
	}
	n := 1 + w.rng.Intn(len(w.history))
	suffix := w.history[len(w.history)-n:]
	// Replace live gradients with the suffix mean.
	for i, p := range params {
		if p.Grad == nil {
			continue
		}
		p.Grad.Zero()
		for _, s := range suffix {
			if s[i] != nil {
				tensor.AddScaledInPlace(p.Grad, s[i], 1/float64(n))
			}
		}
	}
	w.inner.Step()
}
