package dgnn

import (
	"fmt"
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
	srng "streamgnn/internal/rng"
	"streamgnn/internal/tensor"
)

// WinGNNModel is WinGNN (Zhu et al.): a plain two-layer GCN with *no*
// explicit temporal module; temporal adaptation comes from training with a
// randomized sliding window of per-snapshot gradients. The window mechanism
// lives in the winOptimizer returned by WrapOptimizer: each update applies
// the mean of a random-length suffix of recently observed gradients instead
// of only the newest one (random gradient-aggregation window).
type WinGNNModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	conv1, conv2 *nn.GCNConv
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	skip *nn.Linear
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	//streamlint:ckpt-exempt window size is configuration; the window CONTENTS checkpoint via winOptimizer's optimizer state
	window int
	//streamlint:ckpt-exempt derived from the construction seed; the live stream position checkpoints via winOptimizer's optimizer state
	optSeed int64
}

// NewWinGNN returns a WinGNN with gradient window 8.
func NewWinGNN(rng *rand.Rand, featDim, hidden int) *WinGNNModel {
	return &WinGNNModel{
		conv1:   nn.NewGCNConv(rng, featDim, hidden),
		conv2:   nn.NewGCNConv(rng, hidden, hidden),
		skip:    nn.NewLinear(rng, featDim, hidden),
		hidden:  hidden,
		window:  8,
		optSeed: rng.Int63(),
	}
}

// Name implements Model.
func (m *WinGNNModel) Name() string { return "WinGNN" }

// Layers implements Model.
func (m *WinGNNModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *WinGNNModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *WinGNNModel) Params() []*autodiff.Node {
	return nn.CollectParams(m.conv1, m.conv2, m.skip)
}

// BeginStep implements Model.
func (m *WinGNNModel) BeginStep(t int) {}

// Memoryless implements Model: WinGNN is a pure GCN stack — its temporal
// adaptation lives entirely in the optimizer's gradient window, so Forward
// depends only on the view and incremental inference is exact.
func (m *WinGNNModel) Memoryless() bool { return true }

// PregrowState is a no-op: WinGNN keeps no per-node state. Implementing the
// interface opts the model into the parallel shard fan-out.
func (m *WinGNNModel) PregrowState(n int) {}

// Reset implements Model.
func (m *WinGNNModel) Reset() {}

// WrapOptimizer implements Model: wraps opt in the random
// gradient-aggregation window. The window draws from a private SplitMix64
// stream seeded at model construction, so its whole position is one word
// that the optimizer state dumps and restores across checkpoints.
func (m *WinGNNModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer {
	return &winOptimizer{inner: opt, window: m.window, src: srng.New(m.optSeed)}
}

// Forward implements Model.
func (m *WinGNNModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	x := autodiff.Constant(v.Feat)
	h := tp.ReLU(m.conv1.Apply(tp, v.Norm, x))
	h = m.conv2.Apply(tp, v.Norm, h)
	return tp.Tanh(tp.Add(h, m.skip.Apply(tp, x)))
}

// winOptimizer implements WinGNN's random gradient-aggregation window: it
// remembers the last `window` gradient snapshots and, on each Step, replaces
// the live gradient with the mean of a uniformly random-length suffix of the
// history before delegating to the wrapped optimizer. It is fully Stateful:
// the gradient history, the random stream position and the wrapped
// optimizer's own state all round-trip through DumpState/RestoreState, which
// is what makes a WinGNN resume bit-identical to the uninterrupted run.
type winOptimizer struct {
	inner   autodiff.Optimizer
	window  int
	src     *srng.SplitMix64
	history [][]*tensor.Matrix
}

// Params implements autodiff.Optimizer.
func (w *winOptimizer) Params() []*autodiff.Node { return w.inner.Params() }

// ZeroGrad implements autodiff.Optimizer.
func (w *winOptimizer) ZeroGrad() { w.inner.ZeroGrad() }

// Step implements autodiff.Optimizer.
func (w *winOptimizer) Step() {
	params := w.inner.Params()
	// Snapshot the live gradients (nil grads are zero).
	snap := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		if p.Grad != nil {
			snap[i] = p.Grad.Clone()
		}
	}
	w.history = append(w.history, snap)
	if len(w.history) > w.window {
		w.history = w.history[1:]
	}
	n := 1 + w.intn(len(w.history))
	suffix := w.history[len(w.history)-n:]
	// Replace live gradients with the suffix mean.
	for i, p := range params {
		if p.Grad == nil {
			continue
		}
		p.Grad.Zero()
		for _, s := range suffix {
			if s[i] != nil {
				tensor.AddScaledInPlace(p.Grad, s[i], 1/float64(n))
			}
		}
	}
	w.inner.Step()
}

// intn draws uniformly from [0, n) off the private stream. The window is
// tiny (≤8), so plain modulo reduction's bias is far below anything the
// gradient averaging could notice.
func (w *winOptimizer) intn(n int) int {
	return int(w.src.Uint64() % uint64(n))
}

// DumpState implements autodiff.Stateful: the wrapped optimizer's state
// nests under Inner, the window's random stream position under RNG, and the
// gradient history (flattened, parameter order; empty slice = nil gradient)
// under History.
func (w *winOptimizer) DumpState() autodiff.OptState {
	st := autodiff.OptState{RNG: w.src.State(), HasRNG: true}
	if s, ok := w.inner.(autodiff.Stateful); ok {
		inner := s.DumpState()
		st.Inner = &inner
	}
	for _, snap := range w.history {
		row := make([][]float64, len(snap))
		for i, g := range snap {
			if g != nil {
				row[i] = append([]float64(nil), g.Data...)
			}
		}
		st.History = append(st.History, row)
	}
	return st
}

// RestoreState implements autodiff.Stateful. All validations that can fail
// come before any mutation, so a rejected state leaves the optimizer intact.
func (w *winOptimizer) RestoreState(st autodiff.OptState) error {
	if len(st.History) > w.window {
		return fmt.Errorf("dgnn: WinGNN state has %d gradient snapshots, window is %d", len(st.History), w.window)
	}
	params := w.inner.Params()
	history := make([][]*tensor.Matrix, 0, len(st.History))
	for k, row := range st.History {
		if len(row) != len(params) {
			return fmt.Errorf("dgnn: WinGNN gradient snapshot %d covers %d params, optimizer has %d", k, len(row), len(params))
		}
		snap := make([]*tensor.Matrix, len(params))
		for i, data := range row {
			if len(data) == 0 {
				continue // parameter had a nil gradient at snapshot time
			}
			if len(data) != len(params[i].Value.Data) {
				return fmt.Errorf("dgnn: WinGNN gradient snapshot %d param %d has %d values, want %d", k, i, len(data), len(params[i].Value.Data))
			}
			g := tensor.New(params[i].Value.Rows, params[i].Value.Cols)
			copy(g.Data, data)
			snap[i] = g
		}
		history = append(history, snap)
	}
	if s, ok := w.inner.(autodiff.Stateful); ok {
		if st.Inner == nil {
			return fmt.Errorf("dgnn: WinGNN state carries no inner optimizer state")
		}
		if err := s.RestoreState(*st.Inner); err != nil {
			return err
		}
	}
	w.history = history
	if st.HasRNG {
		w.src.SetState(st.RNG)
	}
	return nil
}
