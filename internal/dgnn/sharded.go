package dgnn

import (
	"sync"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/tensor"
)

// Sharded incremental forward: the engine computes a step's exact rows and
// compute region globally (so the full-forward fallback decision and the
// region itself never depend on P), partitions the region by connected
// component with graph.RegionParts, runs one forward per shard part, and
// merges the results back into the shared embedding store in a deterministic
// order. Component isolation makes each part's rows bit-identical to the
// same rows of a whole-region forward, so shards=1 and shards=P agree bit
// for bit on seeded runs.

// ShardForward is one shard's slice of a sharded incremental forward.
type ShardForward struct {
	// Shard is the owning shard index.
	Shard int
	// IDs are the exact rows that fell inside this shard's region part —
	// ascending global ids, the rows Out carries committed values for and
	// the rows MergeShards splices.
	IDs []int
	// Rows are the positions of IDs inside the shard's region part.
	Rows []int
	// Out is the part's embedding matrix (part × hidden); nil for a shard
	// with no region nodes.
	Out *tensor.Matrix
}

// ForwardShards runs one committed incremental forward per non-empty shard
// part and returns the per-shard results, indexed like parts. parts must be
// a component-respecting partition of the step's compute region
// (graph.RegionParts) and exact the global exact-row set (ascending) whose
// L-hop balls that region covers; each shard commits exactly the exact rows
// its part contains, so the union of commits over shards equals the
// unsharded commit set.
//
// Models implementing StatePregrower run in parallel: state buffers are
// grown up front on this goroutine, every per-shard view sets SnapshotState
// so gathers read the BeginStep snapshot (identical to live state at this
// point in the step), and the parts' disjoint node sets keep state writes
// row-disjoint across workers. Models without it — EvolveGCN mutates weight
// recurrences inside a committed Forward — fall back to a serial loop in
// shard index order, which computes the same values since each shard still
// sees only its own components.
//
// The caller must have called m.BeginStep for this step already (the engine
// does), so a snapshot exists and matches the live state.
func ForwardShards(g *graph.Dynamic, m Model, parts [][]int, exact []int) []ShardForward {
	res := make([]ShardForward, len(parts))
	pg, parallel := m.(StatePregrower)
	if parallel {
		pg.PregrowState(g.N())
	}
	run := func(s int) {
		res[s] = ForwardPart(g, m, s, parts[s], exact)
	}
	if !parallel {
		for s := range parts {
			run(s)
		}
		return res
	}
	var wg sync.WaitGroup
	for s := range parts {
		if len(parts[s]) == 0 {
			res[s].Shard = s
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			run(s)
		}(s)
	}
	wg.Wait()
	return res
}

// ForwardPart runs one shard part's slice of a sharded incremental forward:
// the committed subgraph forward over the part's nodes, with state gathered
// from the BeginStep snapshot and write-back masked to the exact rows the
// part contains. It is the unit of work ForwardShards fans out — and the
// exact computation a shard replica executes remotely (internal/cluster), so
// distributed and in-process runs share one code path and stay bit-identical.
// nodes must be one component-respecting part (graph.RegionParts) and exact
// the global exact-row set (ascending); both may span other shards — the
// intersection is taken here. The caller is responsible for BeginStep and,
// when parts run concurrently, for PregrowState.
func ForwardPart(g *graph.Dynamic, m Model, s int, nodes, exact []int) ShardForward {
	res := ShardForward{Shard: s}
	if len(nodes) == 0 {
		return res
	}
	sub := g.Induced(nodes, nodes[0])
	ids := IntersectSorted(exact, nodes)
	rows := LocalRows(sub.Nodes, ids)
	v := DirtyView(sub, rows)
	v.SnapshotState = true
	res.IDs = ids
	res.Rows = rows
	res.Out = m.Forward(autodiff.NewTape(), v).Value
	return res
}

// IntersectSorted returns the elements common to two ascending id slices.
func IntersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// MergeShards splices every shard's exact rows into the shared embedding
// store, in shard index order with each shard's rows ascending — a fixed
// total order, so the merged store is identical however the per-shard
// forwards were scheduled. Returns the number of rows spliced. (Order only
// matters for determinism of iteration-sensitive consumers; the row sets
// themselves are disjoint across shards.)
func MergeShards(store *EmbStore, res []ShardForward) int {
	rows := 0
	for _, r := range res {
		if r.Out == nil {
			continue
		}
		store.Splice(r.Out, r.Rows, r.IDs)
		rows += len(r.IDs)
	}
	return rows
}
