package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
)

// ROLANDModel is ROLAND (You et al.): a layerwise hidden-state GNN. Each GNN
// layer keeps a per-node hidden state that is updated from the layer's fresh
// convolution output with a GRU-style embedding-update module, trained in
// the live-update regime (truncated BPTT, window 1).
type ROLANDModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	conv1, conv2 *nn.GCNConv
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	upd1, upd2 *nn.GRUCell
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	h1, h2 *nodeState
}

// NewROLAND returns a two-layer ROLAND with GRU embedding updates.
func NewROLAND(rng *rand.Rand, featDim, hidden int) *ROLANDModel {
	return &ROLANDModel{
		conv1:  nn.NewGCNConv(rng, featDim, hidden),
		conv2:  nn.NewGCNConv(rng, hidden, hidden),
		upd1:   nn.NewGRUCell(rng, hidden, hidden),
		upd2:   nn.NewGRUCell(rng, hidden, hidden),
		hidden: hidden,
		h1:     newNodeState(hidden),
		h2:     newNodeState(hidden),
	}
}

// Name implements Model.
func (m *ROLANDModel) Name() string { return "ROLAND" }

// Layers implements Model.
func (m *ROLANDModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *ROLANDModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *ROLANDModel) Params() []*autodiff.Node {
	return nn.CollectParams(m.conv1, m.conv2, m.upd1, m.upd2)
}

// BeginStep implements Model: snapshots layer states for the step's
// training forwards.
func (m *ROLANDModel) BeginStep(t int) {
	m.h1.snapshot()
	m.h2.snapshot()
}

// Memoryless implements Model: ROLAND carries per-node layerwise state.
func (m *ROLANDModel) Memoryless() bool { return false }

// PregrowState sizes both layers' hidden-state buffers for n nodes ahead of
// a concurrent shard fan-out.
func (m *ROLANDModel) PregrowState(n int) {
	m.h1.pregrow(n)
	m.h2.pregrow(n)
}

// Reset implements Model.
func (m *ROLANDModel) Reset() {
	m.h1.reset()
	m.h2.reset()
}

// WrapOptimizer implements Model.
func (m *ROLANDModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// Forward implements Model.
func (m *ROLANDModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	// Layer 1: conv on raw features, then hidden-state update.
	c1 := tp.ReLU(m.conv1.Apply(tp, v.Norm, autodiff.Constant(v.Feat)))
	prev1 := autodiff.Constant(m.h1.gather(v))
	new1 := m.upd1.Apply(tp, c1, prev1)

	// Layer 2: conv on layer-1 state, then hidden-state update.
	c2 := tp.ReLU(m.conv2.Apply(tp, v.Norm, new1))
	prev2 := autodiff.Constant(m.h2.gather(v))
	new2 := m.upd2.Apply(tp, c2, prev2)

	if !v.NoCommit {
		m.h1.write(v, new1.Value)
		m.h2.write(v, new2.Value)
	}
	return new2
}
