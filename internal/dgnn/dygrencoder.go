package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
)

// DyGrEncoderModel is DyGrEncoder (Taheri & Berger-Wolf): a two-layer GCN
// encoder producing per-snapshot node embeddings, an LSTM carrying each
// node's embedding sequence through time, and a linear decoder.
type DyGrEncoderModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	enc1, enc2 *nn.GCNConv
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	lstm *nn.LSTMCell
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	dec *nn.Linear
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	hState *nodeState
	cState *nodeState
}

// NewDyGrEncoder returns a DyGrEncoder with the given dimensions.
func NewDyGrEncoder(rng *rand.Rand, featDim, hidden int) *DyGrEncoderModel {
	return &DyGrEncoderModel{
		enc1:   nn.NewGCNConv(rng, featDim, hidden),
		enc2:   nn.NewGCNConv(rng, hidden, hidden),
		lstm:   nn.NewLSTMCell(rng, hidden, hidden),
		dec:    nn.NewLinear(rng, hidden, hidden),
		hidden: hidden,
		hState: newNodeState(hidden),
		cState: newNodeState(hidden),
	}
}

// Name implements Model.
func (m *DyGrEncoderModel) Name() string { return "DyGrEncoder" }

// Layers implements Model.
func (m *DyGrEncoderModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *DyGrEncoderModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *DyGrEncoderModel) Params() []*autodiff.Node {
	return nn.CollectParams(m.enc1, m.enc2, m.lstm, m.dec)
}

// BeginStep implements Model: snapshots recurrent state for the step's
// training forwards.
func (m *DyGrEncoderModel) BeginStep(t int) {
	m.hState.snapshot()
	m.cState.snapshot()
}

// Memoryless implements Model: DyGrEncoder carries per-node LSTM state.
func (m *DyGrEncoderModel) Memoryless() bool { return false }

// PregrowState sizes the hidden- and cell-state buffers for n nodes ahead of
// a concurrent shard fan-out.
func (m *DyGrEncoderModel) PregrowState(n int) {
	m.hState.pregrow(n)
	m.cState.pregrow(n)
}

// Reset implements Model.
func (m *DyGrEncoderModel) Reset() {
	m.hState.reset()
	m.cState.reset()
}

// WrapOptimizer implements Model.
func (m *DyGrEncoderModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// Forward implements Model.
func (m *DyGrEncoderModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	x := tp.ReLU(m.enc1.Apply(tp, v.Norm, autodiff.Constant(v.Feat)))
	x = tp.ReLU(m.enc2.Apply(tp, v.Norm, x))
	h := autodiff.Constant(m.hState.gather(v))
	c := autodiff.Constant(m.cState.gather(v))
	hNew, cNew := m.lstm.Apply(tp, x, h, c)
	if !v.NoCommit {
		m.hState.write(v, hNew.Value)
		m.cState.write(v, cNew.Value)
	}
	return tp.Tanh(m.dec.Apply(tp, hNew))
}
