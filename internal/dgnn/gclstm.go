package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
)

// GCLSTMModel is GC-LSTM (Chen et al.): an LSTM whose gate transforms are
// graph convolutions, preceded by a GCN encoder layer (Layers() == 2).
type GCLSTMModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	enc *nn.GCNConv
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	cell *nn.ConvLSTMCell
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	hState *nodeState
	cState *nodeState
}

// NewGCLSTM returns a GC-LSTM with the given dimensions.
func NewGCLSTM(rng *rand.Rand, featDim, hidden int) *GCLSTMModel {
	return &GCLSTMModel{
		enc: nn.NewGCNConv(rng, featDim, hidden),
		cell: nn.NewConvLSTMCell(hidden, func() nn.Module {
			return nn.NewGCNConv(rng, hidden+hidden, hidden)
		}),
		hidden: hidden,
		hState: newNodeState(hidden),
		cState: newNodeState(hidden),
	}
}

// Name implements Model.
func (m *GCLSTMModel) Name() string { return "GCLSTM" }

// Layers implements Model.
func (m *GCLSTMModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *GCLSTMModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *GCLSTMModel) Params() []*autodiff.Node { return nn.CollectParams(m.enc, m.cell) }

// BeginStep implements Model: snapshots recurrent state for the step's
// training forwards.
func (m *GCLSTMModel) BeginStep(t int) {
	m.hState.snapshot()
	m.cState.snapshot()
}

// Memoryless implements Model: GC-LSTM carries per-node LSTM state.
func (m *GCLSTMModel) Memoryless() bool { return false }

// PregrowState sizes the hidden- and cell-state buffers for n nodes ahead of
// a concurrent shard fan-out.
func (m *GCLSTMModel) PregrowState(n int) {
	m.hState.pregrow(n)
	m.cState.pregrow(n)
}

// Reset implements Model.
func (m *GCLSTMModel) Reset() {
	m.hState.reset()
	m.cState.reset()
}

// WrapOptimizer implements Model.
func (m *GCLSTMModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// Forward implements Model.
func (m *GCLSTMModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	x := tp.ReLU(m.enc.Apply(tp, v.Norm, autodiff.Constant(v.Feat)))
	h := autodiff.Constant(m.hState.gather(v))
	c := autodiff.Constant(m.cState.gather(v))
	conv := func(mod nn.Module, in *autodiff.Node) *autodiff.Node {
		return mod.(*nn.GCNConv).Apply(tp, v.Norm, in)
	}
	hNew, cNew := m.cell.Apply(tp, conv, x, h, c)
	if !v.NoCommit {
		m.hState.write(v, hNew.Value)
		m.cState.write(v, cNew.Value)
	}
	return hNew
}
