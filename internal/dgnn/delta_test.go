package dgnn

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
)

// deltaKinds are the model kinds implementing DeltaForwarder.
func deltaKinds(t *testing.T) []Kind {
	t.Helper()
	var out []Kind
	for _, k := range Kinds() {
		if _, ok := New(k, rand.New(rand.NewSource(1)), 4, 4).(DeltaForwarder); ok {
			out = append(out, k)
		}
	}
	if len(out) != 5 {
		t.Fatalf("expected 5 delta-capable kinds, got %v", out)
	}
	return out
}

func buildDeltaGraph(featDim, n int) *graph.Dynamic {
	g := graph.NewDynamic(featDim)
	for i := 0; i < n; i++ {
		f := make([]float64, featDim)
		f[i%featDim] = 1 + 0.1*float64(i)
		g.AddNode(0, f)
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 0, 0)
		if i%3 == 0 {
			g.AddEdge(i, (i*7+2)%n, 0, 0)
		}
	}
	return g
}

func mutateDeltaGraph(g *graph.Dynamic, rng *rand.Rand, step int) {
	n := g.N()
	for k := 0; k < 2; k++ {
		v := rng.Intn(n)
		f := make([]float64, g.FeatDim())
		f[rng.Intn(g.FeatDim())] = rng.NormFloat64()
		g.SetFeature(v, f)
	}
	if step%4 == 1 {
		g.AddEdge(rng.Intn(n), rng.Intn(n), 0, int64(step))
	}
	if step%5 == 2 {
		f := make([]float64, g.FeatDim())
		f[0] = 1
		id := g.AddNode(0, f)
		g.AddEdge(id, rng.Intn(id), 0, int64(step))
	}
}

// At epsilon 0 the delta pass must be bit-identical to the tape's full
// forward for every delta-capable kind, across feature rewrites, edge
// inserts, and node adds — the cornerstone invariant of the delta path.
func TestDeltaEpsilonZeroBitEqualsFull(t *testing.T) {
	for _, kind := range deltaKinds(t) {
		const featDim, n, steps = 5, 24, 30
		ref := New(kind, rand.New(rand.NewSource(7)), featDim, 6)
		dm := New(kind, rand.New(rand.NewSource(7)), featDim, 6).(DeltaForwarder)

		gRef := buildDeltaGraph(featDim, n)
		gDel := buildDeltaGraph(featDim, n)
		gDel.EnableDirtyTracking()
		gDel.TakeDirty()

		st := &DeltaState{}
		emb := NewEmbStore()
		emb.SetFull(RunDeltaFull(gDel, dm, st), 0)
		ref.Forward(autodiff.NewTape(), FullView(gRef)) // match the delta side's step-0 state commit

		rngRef := rand.New(rand.NewSource(99))
		rngDel := rand.New(rand.NewSource(99))
		for step := 1; step <= steps; step++ {
			mutateDeltaGraph(gRef, rngRef, step)
			mutateDeltaGraph(gDel, rngDel, step)

			tp := autodiff.NewTape()
			want := ref.Forward(tp, FullView(gRef)).Value

			dirty := gDel.TakeDirty()
			res := RunDelta(gDel, dm, st, emb, dirty, 0, gDel.N())
			if res.Aborted {
				t.Fatalf("%s step %d: delta pass aborted with budget n", kind, step)
			}
			got := res.Out
			if got.Rows != want.Rows || got.Cols != want.Cols {
				t.Fatalf("%s step %d: shape %dx%d, want %dx%d", kind, step, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] && !(math.IsNaN(want.Data[i]) && math.IsNaN(got.Data[i])) {
					t.Fatalf("%s step %d: emb[%d] = %v, want %v", kind, step, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// DeltaFull must be bit-identical to the tape's full forward — the two code
// paths share every kernel, and this pins that they stay shared.
func TestDeltaFullBitEqualsForward(t *testing.T) {
	for _, kind := range deltaKinds(t) {
		const featDim = 5
		ref := New(kind, rand.New(rand.NewSource(3)), featDim, 6)
		dm := New(kind, rand.New(rand.NewSource(3)), featDim, 6).(DeltaForwarder)
		g := buildDeltaGraph(featDim, 17)
		for step := 0; step < 3; step++ {
			tp := autodiff.NewTape()
			want := ref.Forward(tp, FullView(g)).Value
			got := RunDeltaFull(g, dm, &DeltaState{})
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s step %d: full[%d] = %v, want %v", kind, step, i, got.Data[i], want.Data[i])
				}
			}
			mutateDeltaGraph(g, rand.New(rand.NewSource(int64(step))), step)
		}
	}
}

// perturbFeature nudges one node's attribute vector by ~1e-5 — small enough
// that the change attenuates below epsilon within a hop or two, exercising
// the pruning path.
func perturbFeature(g *graph.Dynamic, rng *rand.Rand) {
	v := rng.Intn(g.N())
	f := append([]float64(nil), g.Feature(v)...)
	f[rng.Intn(len(f))] += 1e-5 * rng.NormFloat64()
	g.SetFeature(v, f)
}

// At epsilon > 0 the delta pass prunes sub-epsilon rows; every embedding row
// must stay within a small multiple of epsilon per stage of the exact value
// (memoryless models) — the bounded-error regime.
func TestDeltaEpsilonBoundedError(t *testing.T) {
	const featDim, n, steps, eps = 5, 24, 20, 1e-4
	for _, kind := range deltaKinds(t) {
		ref := New(kind, rand.New(rand.NewSource(7)), featDim, 6)
		dm := New(kind, rand.New(rand.NewSource(7)), featDim, 6).(DeltaForwarder)

		gRef := buildDeltaGraph(featDim, n)
		gDel := buildDeltaGraph(featDim, n)
		gDel.EnableDirtyTracking()
		gDel.TakeDirty()

		st := &DeltaState{}
		emb := NewEmbStore()
		emb.SetFull(RunDeltaFull(gDel, dm, st), 0)
		ref.Forward(autodiff.NewTape(), FullView(gRef)) // match the delta side's step-0 state commit

		rngRef := rand.New(rand.NewSource(42))
		rngDel := rand.New(rand.NewSource(42))
		pruned := 0
		for step := 1; step <= steps; step++ {
			perturbFeature(gRef, rngRef)
			perturbFeature(gDel, rngDel)
			tp := autodiff.NewTape()
			want := ref.Forward(tp, FullView(gRef)).Value
			res := RunDelta(gDel, dm, st, emb, gDel.TakeDirty(), eps, gDel.N())
			if res.Aborted {
				t.Fatalf("%s step %d: aborted", kind, step)
			}
			pruned += res.Pruned
			// Stateful models accumulate bounded per-step drift; memoryless
			// ones stay within a per-stage epsilon amplification. A loose
			// structural bound keeps the test meaningful without modeling
			// Lipschitz constants exactly.
			tol := eps * 1e3 * float64(step)
			for i := range want.Data {
				if d := math.Abs(want.Data[i] - res.Out.Data[i]); d > tol {
					t.Fatalf("%s step %d: emb[%d] drifted %v > %v", kind, step, i, d, tol)
				}
			}
		}
		if pruned == 0 && kind == WinGNN {
			t.Fatalf("%s: epsilon %v pruned nothing across %d steps", kind, eps, steps)
		}
	}
}

// An aborted pass must leave caches, recurrent state, and the store
// untouched, and a subsequent full refresh must resynchronize exactly.
func TestDeltaAbortCommitsNothing(t *testing.T) {
	const featDim, n = 5, 24
	dm := New(WinGNN, rand.New(rand.NewSource(7)), featDim, 6).(DeltaForwarder)
	g := buildDeltaGraph(featDim, n)
	g.EnableDirtyTracking()
	g.TakeDirty()
	st := &DeltaState{}
	emb := NewEmbStore()
	emb.SetFull(RunDeltaFull(g, dm, st), 0)
	before := emb.Matrix().Clone()
	stage0 := st.stages[0].Clone()

	f := make([]float64, featDim)
	f[1] = 2.5
	g.SetFeature(3, f)
	res := RunDelta(g, dm, st, emb, g.TakeDirty(), 0, 0) // budget 0 forces abort
	if !res.Aborted {
		t.Fatal("budget 0 did not abort")
	}
	for i := range before.Data {
		if emb.Matrix().Data[i] != before.Data[i] {
			t.Fatal("aborted pass mutated the embedding store")
		}
	}
	for i := range stage0.Data {
		if st.stages[0].Data[i] != stage0.Data[i] {
			t.Fatal("aborted pass mutated a stage cache")
		}
	}
}
