package dgnn

import (
	"fmt"

	"streamgnn/internal/tensor"
)

// EmbStore is the managed per-node embedding matrix behind incremental
// forward inference. A full forward installs its output wholesale with
// SetFull; an incremental forward computes embeddings for a dirty region's
// compute subgraph and splices only the exact rows back with Splice. The
// store owns the matrices handed to it and mutates them in place; callers
// that need a stable copy must clone before handing over.
//
// Publish hands out an immutable snapshot of the current matrix with
// copy-on-write semantics: publication is O(1), and the next in-place Splice
// pays one clone so the published matrix is never mutated again. Concurrent
// readers may therefore score against a published snapshot, lock-free, while
// the engine's step loop keeps splicing.
type EmbStore struct {
	emb      *tensor.Matrix
	lastFull int // step index of the most recent full forward
	// shared marks emb as published: in-place writes must clone first.
	//streamlint:ckpt-exempt transient copy-on-write marker; snapshots never outlive a process
	shared bool
}

// NewEmbStore returns an empty, invalid store.
func NewEmbStore() *EmbStore { return &EmbStore{lastFull: -1} }

// Valid reports whether the store holds an embedding matrix to splice into.
func (s *EmbStore) Valid() bool { return s.emb != nil }

// Rows returns the number of node rows held, 0 when invalid.
func (s *EmbStore) Rows() int {
	if s.emb == nil {
		return 0
	}
	return s.emb.Rows
}

// LastFullStep returns the step index of the last full forward, -1 if none.
func (s *EmbStore) LastFullStep() int { return s.lastFull }

// SetFull installs m as the complete embedding matrix computed at step t,
// taking ownership of m. Any previously published snapshot keeps the old
// matrix untouched.
func (s *EmbStore) SetFull(m *tensor.Matrix, t int) {
	s.emb = m
	s.lastFull = t
	s.shared = false
}

// Matrix returns the live embedding matrix (not a copy); nil when invalid.
func (s *EmbStore) Matrix() *tensor.Matrix { return s.emb }

// Publish returns the current embedding matrix as an immutable snapshot
// (nil when invalid). The store guarantees the returned matrix is never
// mutated afterwards: the next in-place Splice clones first, and SetFull /
// Invalidate / growth replace the matrix rather than touch it. Publication
// itself copies nothing — quiet steps republish the same matrix for free,
// and at most one clone is paid per published matrix regardless of how many
// snapshots were handed out.
func (s *EmbStore) Publish() *tensor.Matrix {
	if s.emb == nil {
		return nil
	}
	s.shared = true
	return s.emb
}

// Splice overwrites the stored rows for the given global node ids with the
// corresponding local rows of m. rows are local indices into m, ids the
// matching global node ids (same length, ids ascending). Nodes beyond the
// current row count grow the store; grown-but-unwritten rows stay zero
// until their own splice or the next full forward.
func (s *EmbStore) Splice(m *tensor.Matrix, rows, ids []int) {
	if s.emb == nil {
		panic("dgnn: Splice on invalid EmbStore")
	}
	if len(rows) != len(ids) {
		panic(fmt.Sprintf("dgnn: Splice rows/ids length mismatch: %d vs %d", len(rows), len(ids)))
	}
	if m.Cols != s.emb.Cols {
		panic(fmt.Sprintf("dgnn: Splice column mismatch: %d vs %d", m.Cols, s.emb.Cols))
	}
	if n := len(ids); n > 0 && ids[n-1] >= s.emb.Rows {
		s.grow(ids[n-1] + 1)
	} else if s.shared {
		// Copy-on-write: the current matrix is published, so the in-place
		// row writes below must go to a private clone.
		s.emb = s.emb.Clone()
		s.shared = false
	}
	for k, i := range rows {
		copy(s.emb.Row(ids[k]), m.Row(i))
	}
}

// grow extends the embedding matrix to n rows, preserving existing rows and
// zero-filling the new ones. The replacement matrix is private even if the
// old one was published.
func (s *EmbStore) grow(n int) {
	grown := tensor.New(n, s.emb.Cols)
	copy(grown.Data, s.emb.Data)
	s.emb = grown
	s.shared = false
}

// Invalidate drops the stored matrix, forcing the next forward to be full.
// A published snapshot keeps the dropped matrix alive and untouched.
func (s *EmbStore) Invalidate() {
	s.emb = nil
	s.lastFull = -1
	s.shared = false
}

// Dump serializes the store's matrix for checkpointing; nil when invalid.
func (s *EmbStore) Dump() *StateDump {
	if s.emb == nil {
		return nil
	}
	d := dumpMatrix(s.emb)
	return &d
}

// Restore replaces the store's contents from a checkpoint dump. A nil dump
// invalidates the store.
func (s *EmbStore) Restore(d *StateDump, lastFull int) error {
	if d == nil {
		s.Invalidate()
		return nil
	}
	m, err := d.matrix()
	if err != nil {
		return err
	}
	s.emb = m
	s.lastFull = lastFull
	s.shared = false
	return nil
}
