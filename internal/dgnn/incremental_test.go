package dgnn

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/tensor"
)

func TestEmbStoreSpliceAndGrow(t *testing.T) {
	s := NewEmbStore()
	if s.Valid() || s.Rows() != 0 || s.LastFullStep() != -1 {
		t.Fatal("fresh store should be invalid and empty")
	}

	full := tensor.New(3, 2)
	for i := range full.Data {
		full.Data[i] = float64(i)
	}
	s.SetFull(full, 5)
	if !s.Valid() || s.Rows() != 3 || s.LastFullStep() != 5 {
		t.Fatalf("after SetFull: valid=%v rows=%d last=%d", s.Valid(), s.Rows(), s.LastFullStep())
	}

	// Splice rows 0 and 2 of a patch matrix into global ids 1 and 4 (4 grows
	// the store to 5 rows; row 3 stays zero).
	patch := tensor.New(3, 2)
	for i := range patch.Data {
		patch.Data[i] = 100 + float64(i)
	}
	s.Splice(patch, []int{0, 2}, []int{1, 4})
	m := s.Matrix()
	if m.Rows != 5 {
		t.Fatalf("splice should grow to 5 rows, got %d", m.Rows)
	}
	want := [][]float64{{0, 1}, {100, 101}, {4, 5}, {0, 0}, {104, 105}}
	for i, row := range want {
		for j, v := range row {
			if m.At(i, j) != v {
				t.Fatalf("row %d col %d = %v, want %v", i, j, m.At(i, j), v)
			}
		}
	}

	s.Invalidate()
	if s.Valid() || s.LastFullStep() != -1 {
		t.Fatal("Invalidate should drop the matrix")
	}
}

func TestEmbStoreDumpRestore(t *testing.T) {
	s := NewEmbStore()
	if s.Dump() != nil {
		t.Fatal("invalid store should dump nil")
	}
	m := tensor.New(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.5
	}
	s.SetFull(m, 7)

	d := s.Dump()
	r := NewEmbStore()
	if err := r.Restore(d, s.LastFullStep()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !r.Valid() || r.LastFullStep() != 7 {
		t.Fatal("restored store metadata wrong")
	}
	if !r.Matrix().AllClose(s.Matrix(), 0) {
		t.Fatal("restored matrix differs")
	}
	if err := r.Restore(nil, 0); err != nil || r.Valid() {
		t.Fatal("nil dump should invalidate")
	}
	bad := &StateDump{Rows: 2, Cols: 3, Data: []float64{1}}
	if err := r.Restore(bad, 0); err == nil {
		t.Fatal("malformed dump accepted")
	}
}

func TestLocalRows(t *testing.T) {
	nodes := []int{2, 5, 7, 9, 12}
	got := LocalRows(nodes, []int{5, 9, 12})
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("LocalRows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LocalRows = %v, want %v", got, want)
		}
	}
	if rows := LocalRows(nodes, nil); len(rows) != 0 {
		t.Fatalf("empty subset should give no rows, got %v", rows)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("subset outside nodes should panic")
		}
	}()
	LocalRows(nodes, []int{5, 8})
}

// CommitRows must restrict recurrent-state write-back to the listed rows.
func TestCommitRowsMasksStateWriteback(t *testing.T) {
	g := ring(8, 3)
	rng := rand.New(rand.NewSource(3))
	m := NewTGCN(rng, 3, 4)

	// One committed full forward to seed state everywhere.
	m.BeginStep(0)
	tp := autodiff.NewTape()
	m.Forward(tp, FullView(g))
	before := m.state.gather(FullView(g))

	// Forward on a subgraph of nodes {1,2,3}, committing only row 1 (node 2).
	sub := g.Induced([]int{1, 2, 3}, 2)
	v := DirtyView(sub, []int{1})
	m.BeginStep(1)
	tp = autodiff.NewTape()
	out := m.Forward(tp, v)
	after := m.state.gather(FullView(g))

	for id := 0; id < 8; id++ {
		changed := false
		for j := 0; j < 4; j++ {
			if before.At(id, j) != after.At(id, j) {
				changed = true
			}
		}
		if id == 2 && !changed {
			t.Fatal("committed row's state did not update")
		}
		if id != 2 && changed {
			t.Fatalf("node %d state changed despite commit mask", id)
		}
	}
	// And the committed state matches the forward's output row.
	for j := 0; j < 4; j++ {
		if after.At(2, j) != out.Value.At(1, j) {
			t.Fatal("committed state does not match forward output")
		}
	}
}

// Memoryless flags: WinGNN alone is a pure function of the view.
func TestMemorylessFlags(t *testing.T) {
	for _, m := range allModels(t) {
		want := m.Name() == "WinGNN"
		if m.Memoryless() != want {
			t.Fatalf("%s Memoryless = %v, want %v", m.Name(), m.Memoryless(), want)
		}
	}
}

// The core exactness property: for a memoryless model, forwarding the
// induced compute region (dirty ball expanded by L hops) and reading the
// exact rows is bit-identical to the same rows of a full-graph forward.
func TestWinGNNDirtyRegionBitExact(t *testing.T) {
	g := ring(20, 3)
	rng := rand.New(rand.NewSource(11))
	m := NewWinGNN(rng, 3, 4)
	L := m.Layers()

	for _, src := range [][]int{{0}, {3, 4}, {7, 15}} {
		tp := autodiff.NewTape()
		full := m.Forward(tp, FullView(g)).Value

		exact := g.Ball(src, L)
		region := g.Ball(exact, L)
		sub := g.Induced(region, src[0])
		rows := LocalRows(sub.Nodes, exact)
		tp = autodiff.NewTape()
		inc := m.Forward(tp, DirtyView(sub, rows)).Value

		for k, i := range rows {
			id := exact[k]
			for j := 0; j < 4; j++ {
				if inc.At(i, j) != full.At(id, j) {
					t.Fatalf("src %v node %d col %d: incremental %v != full %v",
						src, id, j, inc.At(i, j), full.At(id, j))
				}
			}
		}
	}
}
