package dgnn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/nn"
)

// TGCNModel is TGCN (Zhao et al.): a GRU whose gate transforms are GCN
// convolutions. We use one GCN encoder layer followed by a graph-gated GRU,
// giving a 2-hop receptive field per step (Layers() == 2).
type TGCNModel struct {
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	enc *nn.GCNConv
	//streamlint:ckpt-exempt trainable parameters, serialized through Params() by the engine checkpoint
	cell *nn.ConvGRUCell
	//streamlint:ckpt-exempt architecture configuration, validated against the checkpoint header
	hidden int
	state  *nodeState
}

// NewTGCN returns a TGCN with the given feature and hidden dimensions.
func NewTGCN(rng *rand.Rand, featDim, hidden int) *TGCNModel {
	return &TGCNModel{
		enc: nn.NewGCNConv(rng, featDim, hidden),
		cell: nn.NewConvGRUCell(hidden, func() nn.Module {
			return nn.NewGCNConv(rng, hidden+hidden, hidden)
		}),
		hidden: hidden,
		state:  newNodeState(hidden),
	}
}

// Name implements Model.
func (m *TGCNModel) Name() string { return "TGCN" }

// Layers implements Model.
func (m *TGCNModel) Layers() int { return 2 }

// Hidden implements Model.
func (m *TGCNModel) Hidden() int { return m.hidden }

// Params implements Model.
func (m *TGCNModel) Params() []*autodiff.Node { return nn.CollectParams(m.enc, m.cell) }

// BeginStep implements Model: snapshots recurrent state for the step's
// training forwards.
func (m *TGCNModel) BeginStep(t int) { m.state.snapshot() }

// Memoryless implements Model: TGCN carries per-node GRU state.
func (m *TGCNModel) Memoryless() bool { return false }

// PregrowState sizes the hidden-state buffers for n nodes ahead of a
// concurrent shard fan-out.
func (m *TGCNModel) PregrowState(n int) { m.state.pregrow(n) }

// Reset implements Model.
func (m *TGCNModel) Reset() { m.state.reset() }

// WrapOptimizer implements Model.
func (m *TGCNModel) WrapOptimizer(opt autodiff.Optimizer) autodiff.Optimizer { return opt }

// Forward implements Model.
func (m *TGCNModel) Forward(tp *autodiff.Tape, v View) *autodiff.Node {
	x := tp.ReLU(m.enc.Apply(tp, v.Norm, autodiff.Constant(v.Feat)))
	h := autodiff.Constant(m.state.gather(v))
	conv := func(mod nn.Module, in *autodiff.Node) *autodiff.Node {
		return mod.(*nn.GCNConv).Apply(tp, v.Norm, in)
	}
	hNew := m.cell.Apply(tp, conv, x, h)
	if !v.NoCommit {
		m.state.write(v, hNew.Value)
	}
	return hNew
}
