package dgnn

import (
	"math/rand"
	"reflect"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/shard"
)

// islands builds k disjoint rings of n nodes each — a region over scattered
// dirty nodes then decomposes into several components, exercising a real
// multi-shard fan-out.
func islands(k, n, featDim int) *graph.Dynamic {
	g := graph.NewDynamic(featDim)
	for i := 0; i < k*n; i++ {
		f := make([]float64, featDim)
		f[0] = float64(i%3) - 1
		g.AddNode(0, f)
	}
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			g.AddUndirectedEdge(c*n+i, c*n+(i+1)%n, 0, int64(i))
		}
	}
	return g
}

// The sharded fan-out invariant, at the dgnn layer: for every model,
// partitioning a step's compute region by component ownership, forwarding
// each shard's part, and merging gives bit-identical embeddings *and*
// recurrent state to the single unsharded whole-region forward.
func TestForwardShardsMatchesUnsharded(t *testing.T) {
	s, err := shard.New(4, shard.Hash)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			gA := islands(5, 8, 3)
			gB := islands(5, 8, 3)
			gB.AttachSharding(s)
			mA := New(k, rand.New(rand.NewSource(7)), 3, 4)
			mB := New(k, rand.New(rand.NewSource(7)), 3, 4)
			storeA, storeB := NewEmbStore(), NewEmbStore()

			// Step 0: committed full forward on both, seeding state and the
			// embedding stores identically.
			mA.BeginStep(0)
			storeA.SetFull(mA.Forward(autodiff.NewTape(), FullView(gA)).Value.Clone(), 0)
			mB.BeginStep(0)
			storeB.SetFull(mB.Forward(autodiff.NewTape(), FullView(gB)).Value.Clone(), 0)

			// Step 1: one dirty node in four of the five islands; both sides
			// compute the same global exact set and compute region.
			src := []int{1, 9, 17, 33}
			exact := gA.Ball(src, mA.Layers())
			region := gA.Ball(exact, mA.Layers())

			// A: the unsharded reference — one forward over the whole region.
			mA.BeginStep(1)
			sub := gA.Induced(region, region[0])
			rows := LocalRows(sub.Nodes, exact)
			out := mA.Forward(autodiff.NewTape(), DirtyView(sub, rows))
			storeA.Splice(out.Value, rows, exact)

			// B: the sharded fan-out over the component partition.
			mB.BeginStep(1)
			parts := gB.RegionParts(region)
			nonEmpty := 0
			for _, p := range parts {
				if len(p) > 0 {
					nonEmpty++
				}
			}
			if nonEmpty < 2 {
				t.Fatalf("region did not fan out: %d non-empty parts", nonEmpty)
			}
			res := ForwardShards(gB, mB, parts, exact)
			if n := MergeShards(storeB, res); n != len(exact) {
				t.Fatalf("MergeShards spliced %d rows, want %d", n, len(exact))
			}

			if !storeA.Matrix().AllClose(storeB.Matrix(), 0) {
				t.Fatal("sharded embeddings differ from unsharded reference")
			}
			if !reflect.DeepEqual(mA.DumpState(), mB.DumpState()) {
				t.Fatal("sharded recurrent state differs from unsharded reference")
			}
		})
	}
}

// RegionParts keeps components whole, assigns them to the owner of their
// smallest node, and covers the region exactly.
func TestRegionPartsComponentAssignment(t *testing.T) {
	g := islands(3, 6, 2)
	s, err := shard.New(2, shard.Hash)
	if err != nil {
		t.Fatal(err)
	}
	g.AttachSharding(s)
	region := []int{0, 1, 2, 6, 7, 12, 13, 14}
	parts := g.RegionParts(region)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	covered := 0
	for _, p := range parts {
		covered += len(p)
	}
	if covered != len(region) {
		t.Fatalf("parts cover %d nodes, want %d", covered, len(region))
	}
	// Each island's fragment is one component; it must land whole on the
	// shard owning its smallest node.
	for _, comp := range [][]int{{0, 1, 2}, {6, 7}, {12, 13, 14}} {
		owner := s.Of(comp[0])
		for _, v := range comp {
			found := false
			for _, u := range parts[owner] {
				if u == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d not in part %d with its component", v, owner)
			}
		}
	}
	if empty := g.RegionParts(nil); len(empty) != 2 || empty[0] != nil || empty[1] != nil {
		t.Fatalf("empty region should yield empty parts, got %v", empty)
	}
}

// Empty shard parts produce nil outputs that the merge skips.
func TestForwardShardsEmptyParts(t *testing.T) {
	g := ring(8, 3)
	m := NewWinGNN(rand.New(rand.NewSource(2)), 3, 4)
	m.BeginStep(0)
	st := NewEmbStore()
	st.SetFull(m.Forward(autodiff.NewTape(), FullView(g)).Value.Clone(), 0)

	res := ForwardShards(g, m, [][]int{nil, {1, 2, 3, 4}, nil}, []int{2, 3})
	if res[0].Out != nil || res[2].Out != nil {
		t.Fatal("empty parts should yield nil outputs")
	}
	if res[1].Out == nil || res[1].Shard != 1 || len(res[1].IDs) != 2 {
		t.Fatalf("shard 1 result malformed: %+v", res[1])
	}
	if n := MergeShards(st, res); n != 2 {
		t.Fatalf("MergeShards spliced %d rows, want 2", n)
	}
}
