package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Param(tensor.NewRandom(rng, 3, 5, 3))
	tp := NewTape()
	y := tp.Softmax(a)
	for r := 0; r < 3; r++ {
		var sum float64
		for _, v := range y.Value.Row(r) {
			if v < 0 {
				t.Fatal("negative softmax output")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	a := Param(tensor.FromSlice(1, 2, []float64{1000, 1001}))
	tp := NewTape()
	y := tp.Softmax(a)
	if math.IsNaN(y.Value.Data[0]) || math.IsInf(y.Value.Data[1], 0) {
		t.Fatal("softmax overflowed on large logits")
	}
}

func TestSoftmaxGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Param(tensor.NewRandom(rng, 2, 4, 1))
	w := Param(tensor.NewRandom(rng, 4, 1, 1))
	checkGrad(t, []*Node{a, w}, func(tp *Tape) *Node {
		return tp.Mean(tp.MatMul(tp.Softmax(a), w))
	})
}

func TestCrossEntropyValueAndGrad(t *testing.T) {
	// Uniform logits over k classes give loss ln(k).
	a := Param(tensor.New(2, 4))
	tp := NewTape()
	loss := tp.CrossEntropy(a, []int{0, 3})
	if math.Abs(loss.Value.Data[0]-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform CE = %v, want ln4", loss.Value.Data[0])
	}
	rng := rand.New(rand.NewSource(3))
	b := Param(tensor.NewRandom(rng, 3, 5, 1))
	classes := []int{1, 4, 0}
	checkGrad(t, []*Node{b}, func(tp *Tape) *Node {
		return tp.CrossEntropy(b, classes)
	})
}

func TestCrossEntropyLearnsClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := Param(tensor.Glorot(rng, 2, 3))
	x := tensor.FromSlice(3, 2, []float64{1, 0, 0, 1, -1, -1})
	classes := []int{0, 1, 2}
	opt := NewAdam(0.1, []*Node{w})
	var last float64
	for i := 0; i < 300; i++ {
		tp := NewTape()
		loss := tp.CrossEntropy(tp.MatMul(Constant(x), w), classes)
		tp.Backward(loss)
		opt.Step()
		last = loss.Value.Data[0]
	}
	if last > 0.05 {
		t.Fatalf("CE classifier did not converge: %v", last)
	}
}

func TestCrossEntropyValidation(t *testing.T) {
	a := Param(tensor.New(2, 3))
	tp := NewTape()
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { tp.CrossEntropy(a, []int{0}) })
	mustPanic(func() { tp.CrossEntropy(a, []int{0, 9}) })
}

func TestDropoutTrainBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Param(tensor.FromSlice(1, 10000, onesSlice(10000)))
	tp := NewTape()
	y := tp.Dropout(a, 0.3, rng)
	zeros := 0
	var sum float64
	for _, v := range y.Value.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	if math.Abs(float64(zeros)/10000-0.3) > 0.02 {
		t.Fatalf("dropped fraction %v", float64(zeros)/10000)
	}
	// Inverted dropout preserves the expected sum.
	if math.Abs(sum-10000) > 500 {
		t.Fatalf("dropout sum %v, want ~10000", sum)
	}
	// Gradient flows only through the surviving mask.
	loss := tp.Mean(y)
	tp.Backward(loss)
	for i, g := range a.Grad.Data {
		if (y.Value.Data[i] == 0) != (g == 0) {
			t.Fatal("gradient mask mismatch")
		}
	}
}

func TestDropoutZeroIsIdentity(t *testing.T) {
	a := Param(tensor.FromSlice(1, 3, []float64{1, 2, 3}))
	tp := NewTape()
	if tp.Dropout(a, 0, nil) != a {
		t.Fatal("p=0 should return the input node")
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := Param(tensor.New(1, 1))
	NewTape().Dropout(a, 1, rand.New(rand.NewSource(1)))
}

func TestSumGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Param(tensor.NewRandom(rng, 2, 3, 1))
	checkGrad(t, []*Node{a}, func(tp *Tape) *Node {
		return tp.Sum(a)
	})
	tp := NewTape()
	out := tp.Sum(a)
	if math.Abs(out.Value.Data[0]-a.Value.Sum()) > 1e-12 {
		t.Fatal("Sum value wrong")
	}
}

func onesSlice(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
