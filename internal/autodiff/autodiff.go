// Package autodiff implements a small tape-based reverse-mode automatic
// differentiation engine over dense matrices. It provides exactly the set of
// operations needed to express the seven dynamic-graph-neural-network
// baselines used in the paper's evaluation, plus SGD and Adam optimizers.
//
// A Tape records the forward computation; Backward walks the tape in reverse
// and accumulates gradients into the nodes that require them. Parameters are
// long-lived nodes whose Value persists across steps; the tape itself is
// rebuilt for every forward pass.
package autodiff

import (
	"fmt"
	"math"

	"streamgnn/internal/tensor"
)

// opKind selects a node's backward rule. Backward logic lives in a single
// switch (runBack) over these codes rather than per-node closures: closures
// capture their environment on the heap for every recorded op, which on the
// training hot path costs an allocation per op per unit; opcode dispatch
// stores the same state in the node shell, which Release recycles.
type opKind uint8

const (
	opNone opKind = iota // leaf: Param, Constant, Owned scratch
	opMatMul
	opSpMM
	opAdd
	opSub
	opMul
	opScale
	opAddBias
	opSigmoid
	opTanh
	opReLU
	opOneMinus
	opConcatCols
	opGatherRows
	opMean
	opMSE
	opBCEWithLogits
	opAddScalarMul
	opSoftmax
	opCrossEntropy
	opDropout
	opSum
)

// Node is one value in the computation graph.
type Node struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	requiresGrad bool
	op           opKind
	parents      []*Node
	visited      bool

	// Backward-rule state (meaning depends on op): aux holds a matrix the
	// rule reads (MSE residual, BCE target, dropout mask, ...), auxCSR the
	// sparse operand of SpMM, auxF a scalar (Scale/AddScalarMul factor), and
	// auxInts an index list (GatherRows rows, CrossEntropy classes). aux
	// matrices are either tape-owned (recycled via their own record) or
	// caller-owned; they are never recycled through this field.
	aux     *tensor.Matrix
	auxCSR  *tensor.CSR
	auxF    float64
	auxInts []int
}

// RequiresGrad reports whether gradients are accumulated into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Tape records a forward computation for reverse-mode differentiation.
type Tape struct {
	nodes []*Node
	// free holds node shells recovered by Release; newNode reuses them (and
	// their parents/auxInts slice capacity) so a reused tape records a whole
	// forward pass with almost no allocation.
	free []*Node
	// order is Backward's topological-sort scratch, reused across calls.
	order []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations so the tape can be reused.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Release recycles every buffer recorded on the tape back into the tensor
// pool and resets the tape, keeping the node shells for reuse by the next
// forward pass on this tape. Only op outputs are recycled: Param and Constant
// nodes are never recorded, so persistent parameters, their gradients, and
// caller-owned constants are untouched. Every recorded op allocates a fresh
// output matrix (no op aliases its parents' storage), so a buffer is released
// at most once. Call only when nothing retains the tape's values — e.g. after
// the optimizer step of a training unit, never on the inference tape whose
// embeddings outlive the step.
func (t *Tape) Release() {
	for _, n := range t.nodes {
		tensor.Recycle(n.Value)
		if n.Grad != nil {
			tensor.Recycle(n.Grad)
			n.Grad = nil
		}
		n.Value = nil
		n.op = opNone
		n.aux = nil
		n.auxCSR = nil
		n.parents = n.parents[:0]
	}
	t.free = append(t.free, t.nodes...)
	t.nodes = t.nodes[:0]
}

// Len returns the number of recorded nodes (for tests).
func (t *Tape) Len() int { return len(t.nodes) }

// Param wraps a persistent parameter matrix in a gradient-tracked node.
// The node's Grad buffer is allocated lazily by Backward.
func Param(v *tensor.Matrix) *Node {
	return &Node{Value: v, requiresGrad: true}
}

// Constant wraps a matrix that does not require a gradient.
func Constant(v *tensor.Matrix) *Node {
	return &Node{Value: v}
}

// alloc returns a recorded node shell, reusing one recovered by Release.
func (t *Tape) alloc(v *tensor.Matrix, reqGrad bool) *Node {
	var n *Node
	if k := len(t.free); k > 0 {
		n = t.free[k-1]
		t.free = t.free[:k-1]
		n.Value = v
		n.requiresGrad = reqGrad
	} else {
		n = &Node{Value: v, requiresGrad: reqGrad}
	}
	t.nodes = append(t.nodes, n)
	return n
}

// Owned registers a gradient-free scratch matrix on the tape so Release
// recycles its buffer along with the op outputs. Use only for matrices built
// fresh for this forward pass (loss targets, gathered features, sampled
// batches) that nothing reads after Backward. Returns m for chaining.
func (t *Tape) Owned(m *tensor.Matrix) *tensor.Matrix {
	t.alloc(m, false)
	return m
}

// newNode1 records a node with one parent (fixed arity avoids a variadic
// argument slice on the hot path).
func (t *Tape) newNode1(op opKind, v *tensor.Matrix, reqGrad bool, p *Node) *Node {
	n := t.alloc(v, reqGrad)
	n.op = op
	n.parents = append(n.parents, p)
	return n
}

// newNode2 records a node with two parents.
func (t *Tape) newNode2(op opKind, v *tensor.Matrix, reqGrad bool, p1, p2 *Node) *Node {
	n := t.alloc(v, reqGrad)
	n.op = op
	n.parents = append(n.parents, p1, p2)
	return n
}

func anyGrad(ps ...*Node) bool {
	for _, p := range ps {
		if p.requiresGrad {
			return true
		}
	}
	return false
}

func ensureGrad(n *Node) {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (1x1) node produced by this tape. Gradients accumulate into every
// reachable node with requiresGrad.
func (t *Tape) Backward(root *Node) {
	t.backward(root, nil)
}

// backward is the shared body of Backward and BackwardTo. With a non-nil
// sink, parameter-leaf gradients are accumulated into the sink's private
// buffers instead of the leaves' shared Grad matrices (see GradSink).
func (t *Tape) backward(root *Node, sink *GradSink) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	// Topological order via DFS over recorded nodes; the order slice is tape
	// scratch reused across Backward calls.
	t.order = t.order[:0]
	var visit func(n *Node)
	visit = func(n *Node) {
		if n.visited || n.op == opNone {
			return
		}
		n.visited = true
		for _, p := range n.parents {
			visit(p)
		}
		t.order = append(t.order, n)
	}
	visit(root)
	for _, n := range t.order {
		n.visited = false
	}
	ensureGrad(root)
	root.Grad.Data[0] = 1
	for i := len(t.order) - 1; i >= 0; i-- {
		n := t.order[i]
		if n.Grad != nil {
			n.runBack(sink)
		}
	}
}

// gradOf returns the buffer a gradient write into n should accumulate into:
// with a non-nil sink, parameter leaves (op == opNone — Param nodes are never
// tape-recorded) get the sink's private buffer; everything else — and every
// node when sink is nil — uses n's own Grad, which for interior nodes is
// private to the tape. Callers have already checked n.requiresGrad.
func gradOf(n *Node, sink *GradSink) *tensor.Matrix {
	if sink != nil && n.op == opNone {
		return sink.of(n)
	}
	ensureGrad(n)
	return n.Grad
}

// runBack applies node n's backward rule, accumulating into its parents'
// gradients (redirected through sink for parameter leaves when non-nil).
// One switch instead of per-node closures: see opKind.
func (out *Node) runBack(sink *GradSink) {
	switch out.op {
	case opMatMul:
		a, b := out.parents[0], out.parents[1]
		// Gradient temporaries are recycled immediately: they are not tape
		// nodes, so without this they would drain the buffer pool every step.
		if a.requiresGrad {
			ag := gradOf(a, sink)
			tmp := tensor.MatMulTransB(out.Grad, b.Value)
			tensor.AddInPlace(ag, tmp)
			tensor.Recycle(tmp)
		}
		if b.requiresGrad {
			bg := gradOf(b, sink)
			tmp := tensor.MatMulTransA(a.Value, out.Grad)
			tensor.AddInPlace(bg, tmp)
			tensor.Recycle(tmp)
		}
	case opSpMM:
		x := out.parents[0]
		if x.requiresGrad {
			xg := gradOf(x, sink)
			tmp := tensor.SpMMTrans(out.auxCSR, out.Grad)
			tensor.AddInPlace(xg, tmp)
			tensor.Recycle(tmp)
		}
	case opAdd:
		a, b := out.parents[0], out.parents[1]
		if a.requiresGrad {
			tensor.AddInPlace(gradOf(a, sink), out.Grad)
		}
		if b.requiresGrad {
			tensor.AddInPlace(gradOf(b, sink), out.Grad)
		}
	case opSub:
		a, b := out.parents[0], out.parents[1]
		if a.requiresGrad {
			tensor.AddInPlace(gradOf(a, sink), out.Grad)
		}
		if b.requiresGrad {
			tensor.AddScaledInPlace(gradOf(b, sink), out.Grad, -1)
		}
	case opMul:
		a, b := out.parents[0], out.parents[1]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			tmp := tensor.Mul(out.Grad, b.Value)
			tensor.AddInPlace(ag, tmp)
			tensor.Recycle(tmp)
		}
		if b.requiresGrad {
			bg := gradOf(b, sink)
			tmp := tensor.Mul(out.Grad, a.Value)
			tensor.AddInPlace(bg, tmp)
			tensor.Recycle(tmp)
		}
	case opScale:
		a := out.parents[0]
		if a.requiresGrad {
			tensor.AddScaledInPlace(gradOf(a, sink), out.Grad, out.auxF)
		}
	case opAddBias:
		m, b := out.parents[0], out.parents[1]
		if m.requiresGrad {
			tensor.AddInPlace(gradOf(m, sink), out.Grad)
		}
		if b.requiresGrad {
			bg := gradOf(b, sink)
			for r := 0; r < out.Grad.Rows; r++ {
				row := out.Grad.Row(r)
				for c, v := range row {
					bg.Data[c] += v
				}
			}
		}
	case opSigmoid:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			for i, y := range out.Value.Data {
				ag.Data[i] += out.Grad.Data[i] * y * (1 - y)
			}
		}
	case opTanh:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			for i, y := range out.Value.Data {
				ag.Data[i] += out.Grad.Data[i] * (1 - y*y)
			}
		}
	case opReLU:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			for i := range out.Value.Data {
				if a.Value.Data[i] > 0 {
					ag.Data[i] += out.Grad.Data[i]
				}
			}
		}
	case opOneMinus:
		a := out.parents[0]
		if a.requiresGrad {
			tensor.AddScaledInPlace(gradOf(a, sink), out.Grad, -1)
		}
	case opConcatCols:
		a, b := out.parents[0], out.parents[1]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			tmp := tensor.SliceCols(out.Grad, 0, a.Value.Cols)
			tensor.AddInPlace(ag, tmp)
			tensor.Recycle(tmp)
		}
		if b.requiresGrad {
			bg := gradOf(b, sink)
			tmp := tensor.SliceCols(out.Grad, a.Value.Cols, out.Grad.Cols)
			tensor.AddInPlace(bg, tmp)
			tensor.Recycle(tmp)
		}
	case opGatherRows:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			for i, r := range out.auxInts {
				grow := out.Grad.Row(i)
				arow := ag.Row(r)
				for c, v := range grow {
					arow[c] += v
				}
			}
		}
	case opMean:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			g := out.Grad.Data[0] / float64(len(a.Value.Data))
			for i := range ag.Data {
				ag.Data[i] += g
			}
		}
	case opMSE:
		// aux is the residual pred−target; auxF its element count.
		pred := out.parents[0]
		if pred.requiresGrad {
			pg := gradOf(pred, sink)
			g := out.Grad.Data[0] * 2 / out.auxF
			for i, v := range out.aux.Data {
				pg.Data[i] += g * v
			}
		}
	case opBCEWithLogits:
		// aux is the 0/1 target matrix.
		logits := out.parents[0]
		if logits.requiresGrad {
			lg := gradOf(logits, sink)
			g := out.Grad.Data[0] / float64(len(out.aux.Data))
			for i, z := range logits.Value.Data {
				lg.Data[i] += g * (tensor.Sigmoid(z) - out.aux.Data[i])
			}
		}
	case opAddScalarMul:
		a, b := out.parents[0], out.parents[1]
		if a.requiresGrad {
			tensor.AddInPlace(gradOf(a, sink), out.Grad)
		}
		if b.requiresGrad {
			tensor.AddScaledInPlace(gradOf(b, sink), out.Grad, out.auxF)
		}
	case opSoftmax:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			val := out.Value
			for r := 0; r < val.Rows; r++ {
				y := val.Row(r)
				g := out.Grad.Row(r)
				var dot float64
				for c := range y {
					dot += y[c] * g[c]
				}
				arow := ag.Row(r)
				for c := range y {
					arow[c] += y[c] * (g[c] - dot)
				}
			}
		}
	case opCrossEntropy:
		// aux is the row-wise softmax of the logits; auxInts the classes.
		logits := out.parents[0]
		if logits.requiresGrad {
			lgrad := gradOf(logits, sink)
			n := out.aux.Rows
			g := out.Grad.Data[0] / float64(n)
			for r := 0; r < n; r++ {
				p := out.aux.Row(r)
				grow := lgrad.Row(r)
				for j, pj := range p {
					grad := pj
					if j == out.auxInts[r] {
						grad -= 1
					}
					grow[j] += g * grad
				}
			}
		}
	case opDropout:
		// aux is the 0-or-1/(1-p) keep mask.
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			for i, m := range out.aux.Data {
				ag.Data[i] += out.Grad.Data[i] * m
			}
		}
	case opSum:
		a := out.parents[0]
		if a.requiresGrad {
			ag := gradOf(a, sink)
			g := out.Grad.Data[0]
			for i := range ag.Data {
				ag.Data[i] += g
			}
		}
	}
}

// --- operations ---

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	return t.newNode2(opMatMul, tensor.MatMul(a.Value, b.Value), anyGrad(a, b), a, b)
}

// SpMM returns s·x where s is a constant sparse matrix (no gradient flows
// into s; this matches graph adjacency use).
func (t *Tape) SpMM(s *tensor.CSR, x *Node) *Node {
	out := t.newNode1(opSpMM, tensor.SpMM(s, x.Value), x.requiresGrad, x)
	out.auxCSR = s
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	return t.newNode2(opAdd, tensor.Add(a.Value, b.Value), anyGrad(a, b), a, b)
}

// Sub returns a−b.
func (t *Tape) Sub(a, b *Node) *Node {
	return t.newNode2(opSub, tensor.Sub(a.Value, b.Value), anyGrad(a, b), a, b)
}

// Mul returns the Hadamard product a∘b.
func (t *Tape) Mul(a, b *Node) *Node {
	return t.newNode2(opMul, tensor.Mul(a.Value, b.Value), anyGrad(a, b), a, b)
}

// Scale returns s·a for scalar constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	out := t.newNode1(opScale, tensor.Scale(a.Value, s), a.requiresGrad, a)
	out.auxF = s
	return out
}

// AddBias returns m with the 1×cols bias row b added to every row.
func (t *Tape) AddBias(m, b *Node) *Node {
	return t.newNode2(opAddBias, tensor.AddRowVector(m.Value, b.Value), anyGrad(m, b), m, b)
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.newNode1(opSigmoid, tensor.Apply(a.Value, tensor.Sigmoid), a.requiresGrad, a)
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.newNode1(opTanh, tensor.Apply(a.Value, math.Tanh), a.requiresGrad, a)
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	val := tensor.Apply(a.Value, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
	return t.newNode1(opReLU, val, a.requiresGrad, a)
}

// OneMinus returns 1−a elementwise (used by GRU gates).
func (t *Tape) OneMinus(a *Node) *Node {
	val := tensor.Apply(a.Value, func(v float64) float64 { return 1 - v })
	return t.newNode1(opOneMinus, val, a.requiresGrad, a)
}

// ConcatCols returns [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	return t.newNode2(opConcatCols, tensor.ConcatCols(a.Value, b.Value), anyGrad(a, b), a, b)
}

// GatherRows selects the given rows of a.
func (t *Tape) GatherRows(a *Node, rows []int) *Node {
	out := t.newNode1(opGatherRows, tensor.GatherRows(a.Value, rows), a.requiresGrad, a)
	// Defensive copy into the shell's reusable index scratch: the caller may
	// mutate rows before Backward runs.
	out.auxInts = append(out.auxInts[:0], rows...)
	return out
}

// Mean returns the scalar mean of all elements of a.
func (t *Tape) Mean(a *Node) *Node {
	val := tensor.FromSlice(1, 1, []float64{a.Value.Mean()})
	return t.newNode1(opMean, val, a.requiresGrad, a)
}

// MSE returns mean squared error between pred and the constant target.
func (t *Tape) MSE(pred *Node, target *tensor.Matrix) *Node {
	diff := t.Owned(tensor.Sub(pred.Value, target))
	var s float64
	for _, v := range diff.Data {
		s += v * v
	}
	n := float64(len(diff.Data))
	out := t.newNode1(opMSE, tensor.FromSlice(1, 1, []float64{s / n}), pred.requiresGrad, pred)
	out.aux = diff
	out.auxF = n
	return out
}

// BCEWithLogits returns mean binary cross-entropy of logits against the
// constant 0/1 target matrix, computed in a numerically stable form.
func (t *Tape) BCEWithLogits(logits *Node, target *tensor.Matrix) *Node {
	if logits.Value.Rows != target.Rows || logits.Value.Cols != target.Cols {
		panic("autodiff: BCEWithLogits shape mismatch")
	}
	n := float64(len(target.Data))
	var s float64
	for i, z := range logits.Value.Data {
		y := target.Data[i]
		// log(1+e^z) - y*z, stable for both signs of z.
		if z > 0 {
			s += z - y*z + math.Log1p(math.Exp(-z))
		} else {
			s += -y*z + math.Log1p(math.Exp(z))
		}
	}
	out := t.newNode1(opBCEWithLogits, tensor.FromSlice(1, 1, []float64{s / n}), logits.requiresGrad, logits)
	out.aux = target
	return out
}

// AddScalarMul returns a + s·b, a fused helper for residual-style updates.
func (t *Tape) AddScalarMul(a, b *Node, s float64) *Node {
	val := a.Value.Clone()
	tensor.AddScaledInPlace(val, b.Value, s)
	out := t.newNode2(opAddScalarMul, val, anyGrad(a, b), a, b)
	out.auxF = s
	return out
}
