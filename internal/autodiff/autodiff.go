// Package autodiff implements a small tape-based reverse-mode automatic
// differentiation engine over dense matrices. It provides exactly the set of
// operations needed to express the seven dynamic-graph-neural-network
// baselines used in the paper's evaluation, plus SGD and Adam optimizers.
//
// A Tape records the forward computation; Backward walks the tape in reverse
// and accumulates gradients into the nodes that require them. Parameters are
// long-lived nodes whose Value persists across steps; the tape itself is
// rebuilt for every forward pass.
package autodiff

import (
	"fmt"
	"math"

	"streamgnn/internal/tensor"
)

// Node is one value in the computation graph.
type Node struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	requiresGrad bool
	back         func()
	parents      []*Node
	visited      bool
}

// RequiresGrad reports whether gradients are accumulated into this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Tape records a forward computation for reverse-mode differentiation.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded operations so the tape can be reused.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded nodes (for tests).
func (t *Tape) Len() int { return len(t.nodes) }

// Param wraps a persistent parameter matrix in a gradient-tracked node.
// The node's Grad buffer is allocated lazily by Backward.
func Param(v *tensor.Matrix) *Node {
	return &Node{Value: v, requiresGrad: true}
}

// Constant wraps a matrix that does not require a gradient.
func Constant(v *tensor.Matrix) *Node {
	return &Node{Value: v}
}

func (t *Tape) record(n *Node) *Node {
	t.nodes = append(t.nodes, n)
	return n
}

func anyGrad(ps ...*Node) bool {
	for _, p := range ps {
		if p.requiresGrad {
			return true
		}
	}
	return false
}

func ensureGrad(n *Node) {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (1x1) node produced by this tape. Gradients accumulate into every
// reachable node with requiresGrad.
func (t *Tape) Backward(root *Node) {
	if root.Value.Rows != 1 || root.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward root must be 1x1, got %dx%d", root.Value.Rows, root.Value.Cols))
	}
	// Topological order via DFS over recorded nodes.
	order := make([]*Node, 0, len(t.nodes))
	var visit func(n *Node)
	visit = func(n *Node) {
		if n.visited || n.back == nil {
			return
		}
		n.visited = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	for _, n := range order {
		n.visited = false
	}
	ensureGrad(root)
	root.Grad.Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.Grad != nil {
			n.back()
		}
	}
}

// --- operations ---

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := &Node{Value: tensor.MatMul(a.Value, b.Value), requiresGrad: anyGrad(a, b), parents: []*Node{a, b}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddInPlace(a.Grad, tensor.MatMulTransB(out.Grad, b.Value))
		}
		if b.requiresGrad {
			ensureGrad(b)
			tensor.AddInPlace(b.Grad, tensor.MatMulTransA(a.Value, out.Grad))
		}
	}
	return t.record(out)
}

// SpMM returns s·x where s is a constant sparse matrix (no gradient flows
// into s; this matches graph adjacency use).
func (t *Tape) SpMM(s *tensor.CSR, x *Node) *Node {
	out := &Node{Value: tensor.SpMM(s, x.Value), requiresGrad: x.requiresGrad, parents: []*Node{x}}
	out.back = func() {
		if x.requiresGrad {
			ensureGrad(x)
			tensor.AddInPlace(x.Grad, tensor.SpMMTrans(s, out.Grad))
		}
	}
	return t.record(out)
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	out := &Node{Value: tensor.Add(a.Value, b.Value), requiresGrad: anyGrad(a, b), parents: []*Node{a, b}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			ensureGrad(b)
			tensor.AddInPlace(b.Grad, out.Grad)
		}
	}
	return t.record(out)
}

// Sub returns a−b.
func (t *Tape) Sub(a, b *Node) *Node {
	out := &Node{Value: tensor.Sub(a.Value, b.Value), requiresGrad: anyGrad(a, b), parents: []*Node{a, b}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			ensureGrad(b)
			tensor.AddScaledInPlace(b.Grad, out.Grad, -1)
		}
	}
	return t.record(out)
}

// Mul returns the Hadamard product a∘b.
func (t *Tape) Mul(a, b *Node) *Node {
	out := &Node{Value: tensor.Mul(a.Value, b.Value), requiresGrad: anyGrad(a, b), parents: []*Node{a, b}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddInPlace(a.Grad, tensor.Mul(out.Grad, b.Value))
		}
		if b.requiresGrad {
			ensureGrad(b)
			tensor.AddInPlace(b.Grad, tensor.Mul(out.Grad, a.Value))
		}
	}
	return t.record(out)
}

// Scale returns s·a for scalar constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	out := &Node{Value: tensor.Scale(a.Value, s), requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddScaledInPlace(a.Grad, out.Grad, s)
		}
	}
	return t.record(out)
}

// AddBias returns m with the 1×cols bias row b added to every row.
func (t *Tape) AddBias(m, b *Node) *Node {
	out := &Node{Value: tensor.AddRowVector(m.Value, b.Value), requiresGrad: anyGrad(m, b), parents: []*Node{m, b}}
	out.back = func() {
		if m.requiresGrad {
			ensureGrad(m)
			tensor.AddInPlace(m.Grad, out.Grad)
		}
		if b.requiresGrad {
			ensureGrad(b)
			for r := 0; r < out.Grad.Rows; r++ {
				row := out.Grad.Row(r)
				for c, v := range row {
					b.Grad.Data[c] += v
				}
			}
		}
	}
	return t.record(out)
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	val := tensor.Apply(a.Value, tensor.Sigmoid)
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i, y := range val.Data {
				a.Grad.Data[i] += out.Grad.Data[i] * y * (1 - y)
			}
		}
	}
	return t.record(out)
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	val := tensor.Apply(a.Value, math.Tanh)
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i, y := range val.Data {
				a.Grad.Data[i] += out.Grad.Data[i] * (1 - y*y)
			}
		}
	}
	return t.record(out)
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	val := tensor.Apply(a.Value, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i := range val.Data {
				if a.Value.Data[i] > 0 {
					a.Grad.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return t.record(out)
}

// OneMinus returns 1−a elementwise (used by GRU gates).
func (t *Tape) OneMinus(a *Node) *Node {
	val := tensor.Apply(a.Value, func(v float64) float64 { return 1 - v })
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddScaledInPlace(a.Grad, out.Grad, -1)
		}
	}
	return t.record(out)
}

// ConcatCols returns [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	out := &Node{Value: tensor.ConcatCols(a.Value, b.Value), requiresGrad: anyGrad(a, b), parents: []*Node{a, b}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddInPlace(a.Grad, tensor.SliceCols(out.Grad, 0, a.Value.Cols))
		}
		if b.requiresGrad {
			ensureGrad(b)
			tensor.AddInPlace(b.Grad, tensor.SliceCols(out.Grad, a.Value.Cols, out.Grad.Cols))
		}
	}
	return t.record(out)
}

// GatherRows selects the given rows of a.
func (t *Tape) GatherRows(a *Node, rows []int) *Node {
	idx := append([]int(nil), rows...)
	out := &Node{Value: tensor.GatherRows(a.Value, idx), requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i, r := range idx {
				grow := out.Grad.Row(i)
				arow := a.Grad.Row(r)
				for c, v := range grow {
					arow[c] += v
				}
			}
		}
	}
	return t.record(out)
}

// Mean returns the scalar mean of all elements of a.
func (t *Tape) Mean(a *Node) *Node {
	val := tensor.FromSlice(1, 1, []float64{a.Value.Mean()})
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			g := out.Grad.Data[0] / float64(len(a.Value.Data))
			for i := range a.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
	}
	return t.record(out)
}

// MSE returns mean squared error between pred and the constant target.
func (t *Tape) MSE(pred *Node, target *tensor.Matrix) *Node {
	diff := tensor.Sub(pred.Value, target)
	var s float64
	for _, v := range diff.Data {
		s += v * v
	}
	n := float64(len(diff.Data))
	out := &Node{Value: tensor.FromSlice(1, 1, []float64{s / n}), requiresGrad: pred.requiresGrad, parents: []*Node{pred}}
	out.back = func() {
		if pred.requiresGrad {
			ensureGrad(pred)
			g := out.Grad.Data[0] * 2 / n
			for i, v := range diff.Data {
				pred.Grad.Data[i] += g * v
			}
		}
	}
	return t.record(out)
}

// BCEWithLogits returns mean binary cross-entropy of logits against the
// constant 0/1 target matrix, computed in a numerically stable form.
func (t *Tape) BCEWithLogits(logits *Node, target *tensor.Matrix) *Node {
	if logits.Value.Rows != target.Rows || logits.Value.Cols != target.Cols {
		panic("autodiff: BCEWithLogits shape mismatch")
	}
	n := float64(len(target.Data))
	var s float64
	for i, z := range logits.Value.Data {
		y := target.Data[i]
		// log(1+e^z) - y*z, stable for both signs of z.
		if z > 0 {
			s += z - y*z + math.Log1p(math.Exp(-z))
		} else {
			s += -y*z + math.Log1p(math.Exp(z))
		}
	}
	out := &Node{Value: tensor.FromSlice(1, 1, []float64{s / n}), requiresGrad: logits.requiresGrad, parents: []*Node{logits}}
	out.back = func() {
		if logits.requiresGrad {
			ensureGrad(logits)
			g := out.Grad.Data[0] / n
			for i, z := range logits.Value.Data {
				logits.Grad.Data[i] += g * (tensor.Sigmoid(z) - target.Data[i])
			}
		}
	}
	return t.record(out)
}

// AddScalarMul returns a + s·b, a fused helper for residual-style updates.
func (t *Tape) AddScalarMul(a, b *Node, s float64) *Node {
	val := a.Value.Clone()
	tensor.AddScaledInPlace(val, b.Value, s)
	out := &Node{Value: val, requiresGrad: anyGrad(a, b), parents: []*Node{a, b}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			tensor.AddInPlace(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			ensureGrad(b)
			tensor.AddScaledInPlace(b.Grad, out.Grad, s)
		}
	}
	return t.record(out)
}
