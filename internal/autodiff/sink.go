package autodiff

import "streamgnn/internal/tensor"

// GradSink redirects parameter-leaf gradient accumulation away from the
// shared Node.Grad buffers. BackwardTo(root, sink) accumulates every
// parameter gradient into a per-sink matrix instead of the parameter's own
// Grad, so backward passes over independent tapes can run on concurrent
// goroutines without racing on the persistent parameters: interior gradients
// live on each tape's private node shells, and the only shared leaves — the
// parameters — are written through the caller's private sink.
//
// The concurrency contract is one sink per goroutine. Afterwards, MergeInto
// folds the sink's sums into the parameters' Grad buffers serially; calling
// it in a fixed order across sinks keeps the merged gradient (and therefore
// the optimizer step) bit-deterministic regardless of how many goroutines ran
// the backward passes.
//
// A sink keeps its gradient matrices across Reset calls, so a warm sink adds
// no allocation to the training hot path.
type GradSink struct {
	grads map[*Node]*tensor.Matrix
	// params records insertion order so Reset never iterates the map (map
	// order is randomized; Reset only zeroes, but the repo's determinism
	// lint budget is easier to audit when no hot-path map iteration exists).
	params []*Node
}

// NewGradSink returns an empty sink.
func NewGradSink() *GradSink {
	return &GradSink{grads: make(map[*Node]*tensor.Matrix)}
}

// of returns the sink's accumulation buffer for parameter leaf n, allocating
// a zeroed matrix on first use.
func (s *GradSink) of(n *Node) *tensor.Matrix {
	if g, ok := s.grads[n]; ok {
		return g
	}
	g := tensor.New(n.Value.Rows, n.Value.Cols)
	s.grads[n] = g
	s.params = append(s.params, n)
	return g
}

// Reset zeroes every held gradient buffer, keeping the matrices for reuse by
// the next backward pass.
func (s *GradSink) Reset() {
	for _, n := range s.params {
		g := s.grads[n]
		for i := range g.Data {
			g.Data[i] = 0
		}
	}
}

// MergeInto accumulates the sink's gradients into each parameter's Grad
// buffer, iterating params in the caller's order (use the optimizer's stable
// Params() slice). Parameters the sink never touched are skipped. Must be
// called serially; merging several sinks in a fixed order before one
// optimizer step reproduces the exact floating-point sum on every run.
func (s *GradSink) MergeInto(params []*Node) {
	for _, p := range params {
		if g, ok := s.grads[p]; ok {
			ensureGrad(p)
			tensor.AddInPlace(p.Grad, g)
		}
	}
}

// BackwardTo runs reverse-mode differentiation from root like Backward, but
// accumulates parameter-leaf gradients into sink instead of the parameters'
// shared Grad buffers (interior tape nodes keep using their own Grad — they
// are private to this tape). A nil sink is exactly Backward. root must be a
// scalar (1x1) node produced by this tape.
func (t *Tape) BackwardTo(root *Node, sink *GradSink) {
	t.backward(root, sink)
}
