package autodiff

import (
	"fmt"
	"math"

	"streamgnn/internal/tensor"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients and clears the gradients afterwards.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters and then zeroes them.
	Step()
	// ZeroGrad clears all parameter gradients without updating.
	ZeroGrad()
	// Params returns the parameter nodes managed by the optimizer.
	Params() []*Node
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	//streamlint:ckpt-exempt learning rate is configuration, rebuilt from Config on resume
	LR float64
	//streamlint:ckpt-exempt clip threshold is configuration (0 disables clipping)
	ClipNorm float64
	//streamlint:ckpt-exempt parameter wiring, re-established at engine construction
	params []*Node
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(lr float64, params []*Node) *SGD {
	return &SGD{LR: lr, ClipNorm: 5, params: params}
}

// Params implements Optimizer.
func (o *SGD) Params() []*Node { return o.params }

// ZeroGrad implements Optimizer.
func (o *SGD) ZeroGrad() { zeroGrads(o.params) }

// Step implements Optimizer.
func (o *SGD) Step() {
	scale := clipScale(o.params, o.ClipNorm)
	for _, p := range o.params {
		if p.Grad == nil {
			continue
		}
		tensor.AddScaledInPlace(p.Value, p.Grad, -o.LR*scale)
	}
	o.ZeroGrad()
}

// Adam implements the Adam optimizer (Kingma & Ba) with bias correction and
// optional global-norm gradient clipping.
type Adam struct {
	//streamlint:ckpt-exempt learning rate is configuration, rebuilt from Config on resume
	LR float64
	//streamlint:ckpt-exempt decay rate is configuration, rebuilt from Config on resume
	Beta1 float64
	//streamlint:ckpt-exempt decay rate is configuration, rebuilt from Config on resume
	Beta2 float64
	//streamlint:ckpt-exempt numerical epsilon is configuration, rebuilt from Config on resume
	Eps float64
	//streamlint:ckpt-exempt clip threshold is configuration (0 disables clipping)
	ClipNorm float64
	params   []*Node
	m, v     []*tensor.Matrix
	step     int
}

// NewAdam returns an Adam optimizer over params with standard defaults.
func NewAdam(lr float64, params []*Node) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5, params: params}
	a.m = make([]*tensor.Matrix, len(params))
	a.v = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Rows, p.Value.Cols)
		a.v[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return a
}

// Params implements Optimizer.
func (o *Adam) Params() []*Node { return o.params }

// ZeroGrad implements Optimizer.
func (o *Adam) ZeroGrad() { zeroGrads(o.params) }

// Step implements Optimizer.
func (o *Adam) Step() {
	o.step++
	scale := clipScale(o.params, o.ClipNorm)
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for i, p := range o.params {
		if p.Grad == nil {
			continue
		}
		m, v := o.m[i], o.v[i]
		for j, g := range p.Grad.Data {
			g *= scale
			m.Data[j] = o.Beta1*m.Data[j] + (1-o.Beta1)*g
			v.Data[j] = o.Beta2*v.Data[j] + (1-o.Beta2)*g*g
			mhat := m.Data[j] / bc1
			vhat := v.Data[j] / bc2
			p.Value.Data[j] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
	o.ZeroGrad()
}

// OptState is a checkpointable snapshot of an optimizer's internal state:
// the step counter and any per-parameter moment buffers (flattened, in
// parameter order). SGD has no moments; Adam has two per parameter.
// Decorating optimizers use the remaining fields: Inner nests the wrapped
// optimizer's state, RNG/HasRNG carry a private random stream's position,
// and History holds a window of per-parameter gradient snapshots (an empty
// inner slice marks a parameter whose gradient was nil at snapshot time).
// All fields are gob-encoded by name, so states saved before a field existed
// still decode (the new fields read back as zero values).
type OptState struct {
	Step    int
	Moments [][]float64
	Inner   *OptState
	RNG     uint64
	HasRNG  bool
	History [][][]float64
}

// Stateful is implemented by optimizers whose internal state can be dumped
// and restored across a checkpoint/resume cycle. Restoring the moments makes
// post-resume parameter updates bit-identical to an uninterrupted run, which
// checkpoint resume tests rely on. Decorating optimizers that keep extra
// state of their own (e.g. WinGNN's gradient-aggregation window) implement
// it by nesting the wrapped optimizer's state in OptState.Inner.
type Stateful interface {
	// DumpState captures the optimizer's internal state.
	DumpState() OptState
	// RestoreState restores a state captured by DumpState on an optimizer
	// over the same parameter set.
	RestoreState(OptState) error
}

// DumpState implements Stateful (SGD keeps no moments).
func (o *SGD) DumpState() OptState { return OptState{} }

// RestoreState implements Stateful.
func (o *SGD) RestoreState(OptState) error { return nil }

// DumpState implements Stateful.
func (o *Adam) DumpState() OptState {
	st := OptState{Step: o.step, Moments: make([][]float64, 0, 2*len(o.params))}
	for _, m := range o.m {
		st.Moments = append(st.Moments, append([]float64(nil), m.Data...))
	}
	for _, v := range o.v {
		st.Moments = append(st.Moments, append([]float64(nil), v.Data...))
	}
	return st
}

// RestoreState implements Stateful.
func (o *Adam) RestoreState(st OptState) error {
	if len(st.Moments) != 2*len(o.params) {
		return fmt.Errorf("autodiff: optimizer state has %d moment buffers, Adam over %d params needs %d",
			len(st.Moments), len(o.params), 2*len(o.params))
	}
	for i, m := range o.m {
		if len(st.Moments[i]) != len(m.Data) {
			return fmt.Errorf("autodiff: moment buffer %d has %d values, want %d", i, len(st.Moments[i]), len(m.Data))
		}
	}
	for i, v := range o.v {
		j := len(o.m) + i
		if len(st.Moments[j]) != len(v.Data) {
			return fmt.Errorf("autodiff: moment buffer %d has %d values, want %d", j, len(st.Moments[j]), len(v.Data))
		}
	}
	o.step = st.Step
	for i, m := range o.m {
		copy(m.Data, st.Moments[i])
	}
	for i, v := range o.v {
		copy(v.Data, st.Moments[len(o.m)+i])
	}
	return nil
}

func zeroGrads(params []*Node) {
	for _, p := range params {
		if p.Grad != nil {
			p.Grad.Zero()
		}
	}
}

// clipScale returns the factor that rescales the global gradient norm to at
// most clip (1 when clipping is disabled or the norm is within bounds).
func clipScale(params []*Node, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	var sq float64
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= clip || norm == 0 {
		return 1
	}
	return clip / norm
}
