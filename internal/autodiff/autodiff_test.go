package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/tensor"
)

// numericalGrad computes the finite-difference gradient of loss() with
// respect to p.Value, where loss rebuilds the whole forward pass.
func numericalGrad(p *Node, loss func() float64) *tensor.Matrix {
	const h = 1e-6
	g := tensor.New(p.Value.Rows, p.Value.Cols)
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		up := loss()
		p.Value.Data[i] = orig - h
		down := loss()
		p.Value.Data[i] = orig
		g.Data[i] = (up - down) / (2 * h)
	}
	return g
}

// checkGrad compares the tape gradient of a scalar-valued forward function
// against finite differences for every parameter in params.
func checkGrad(t *testing.T, params []*Node, forward func(tp *Tape) *Node) {
	t.Helper()
	loss := func() float64 {
		tp := NewTape()
		return forward(tp).Value.Data[0]
	}
	tp := NewTape()
	out := forward(tp)
	tp.Backward(out)
	for pi, p := range params {
		want := numericalGrad(p, loss)
		if p.Grad == nil {
			if want.MaxAbs() > 1e-4 {
				t.Fatalf("param %d: tape grad nil but numeric grad %v", pi, want)
			}
			continue
		}
		if !p.Grad.AllClose(want, 1e-4) {
			t.Fatalf("param %d gradient mismatch:\n tape %v\n num  %v", pi, p.Grad, want)
		}
		p.Grad.Zero()
	}
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Param(tensor.NewRandom(rng, 3, 4, 1))
	b := Param(tensor.NewRandom(rng, 4, 2, 1))
	checkGrad(t, []*Node{a, b}, func(tp *Tape) *Node {
		return tp.Mean(tp.MatMul(a, b))
	})
}

func TestElementwiseGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Param(tensor.NewRandom(rng, 2, 3, 1))
	b := Param(tensor.NewRandom(rng, 2, 3, 1))
	cases := map[string]func(tp *Tape) *Node{
		"add":      func(tp *Tape) *Node { return tp.Mean(tp.Add(a, b)) },
		"sub":      func(tp *Tape) *Node { return tp.Mean(tp.Sub(a, b)) },
		"mul":      func(tp *Tape) *Node { return tp.Mean(tp.Mul(a, b)) },
		"scale":    func(tp *Tape) *Node { return tp.Mean(tp.Scale(a, -2.5)) },
		"sigmoid":  func(tp *Tape) *Node { return tp.Mean(tp.Sigmoid(a)) },
		"tanh":     func(tp *Tape) *Node { return tp.Mean(tp.Tanh(a)) },
		"oneminus": func(tp *Tape) *Node { return tp.Mean(tp.OneMinus(tp.Sigmoid(a))) },
		"addsm":    func(tp *Tape) *Node { return tp.Mean(tp.AddScalarMul(a, b, 0.3)) },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) { checkGrad(t, []*Node{a, b}, f) })
	}
}

func TestReLUGrad(t *testing.T) {
	// Avoid kink at 0 by keeping values away from it.
	a := Param(tensor.FromSlice(2, 2, []float64{-1.5, 0.7, 2.2, -0.4}))
	checkGrad(t, []*Node{a}, func(tp *Tape) *Node {
		return tp.Mean(tp.ReLU(a))
	})
}

func TestSpMMGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj := tensor.NewCSR(3, 3, [][]tensor.CSREntry{
		{{Col: 0, Val: 0.5}, {Col: 1, Val: 0.5}},
		{{Col: 2, Val: 1.0}},
		{{Col: 0, Val: 0.3}, {Col: 2, Val: 0.7}},
	})
	x := Param(tensor.NewRandom(rng, 3, 2, 1))
	checkGrad(t, []*Node{x}, func(tp *Tape) *Node {
		return tp.Mean(tp.SpMM(adj, x))
	})
}

func TestAddBiasGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Param(tensor.NewRandom(rng, 3, 2, 1))
	b := Param(tensor.NewRandom(rng, 1, 2, 1))
	checkGrad(t, []*Node{m, b}, func(tp *Tape) *Node {
		return tp.Mean(tp.AddBias(m, b))
	})
}

func TestConcatGatherGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Param(tensor.NewRandom(rng, 3, 2, 1))
	b := Param(tensor.NewRandom(rng, 3, 3, 1))
	checkGrad(t, []*Node{a, b}, func(tp *Tape) *Node {
		cat := tp.ConcatCols(a, b)
		return tp.Mean(tp.GatherRows(cat, []int{2, 0, 2}))
	})
}

func TestMSEGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Param(tensor.NewRandom(rng, 3, 2, 1))
	target := tensor.NewRandom(rng, 3, 2, 1)
	checkGrad(t, []*Node{p}, func(tp *Tape) *Node {
		return tp.MSE(p, target)
	})
}

func TestBCEWithLogitsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Param(tensor.NewRandom(rng, 4, 1, 2))
	target := tensor.New(4, 1)
	target.Data[1] = 1
	target.Data[3] = 1
	checkGrad(t, []*Node{p}, func(tp *Tape) *Node {
		return tp.BCEWithLogits(p, target)
	})
}

func TestBCEWithLogitsValue(t *testing.T) {
	// logit 0 against any target gives ln 2.
	p := Param(tensor.New(1, 1))
	tp := NewTape()
	out := tp.BCEWithLogits(p, tensor.FromSlice(1, 1, []float64{1}))
	if math.Abs(out.Value.Data[0]-math.Ln2) > 1e-12 {
		t.Fatalf("BCE(0,1) = %v, want ln2", out.Value.Data[0])
	}
	// Large positive logit against target 1 -> ~0 loss.
	p.Value.Data[0] = 30
	tp = NewTape()
	out = tp.BCEWithLogits(p, tensor.FromSlice(1, 1, []float64{1}))
	if out.Value.Data[0] > 1e-10 {
		t.Fatalf("BCE(30,1) = %v, want ~0", out.Value.Data[0])
	}
}

func TestCompositeGRUStyleGrad(t *testing.T) {
	// A GRU-flavored composite: h' = z∘h + (1−z)∘tanh(x·W), z = σ(x·Wz).
	rng := rand.New(rand.NewSource(8))
	x := Constant(tensor.NewRandom(rng, 2, 3, 1))
	h := Param(tensor.NewRandom(rng, 2, 2, 1))
	w := Param(tensor.NewRandom(rng, 3, 2, 1))
	wz := Param(tensor.NewRandom(rng, 3, 2, 1))
	target := tensor.NewRandom(rng, 2, 2, 1)
	checkGrad(t, []*Node{h, w, wz}, func(tp *Tape) *Node {
		z := tp.Sigmoid(tp.MatMul(x, wz))
		cand := tp.Tanh(tp.MatMul(x, w))
		hNew := tp.Add(tp.Mul(z, h), tp.Mul(tp.OneMinus(z), cand))
		return tp.MSE(hNew, target)
	})
}

func TestGradAccumulatesAcrossSharedUse(t *testing.T) {
	// y = mean(a + a) has gradient 2/n per element.
	a := Param(tensor.FromSlice(1, 2, []float64{1, 2}))
	tp := NewTape()
	out := tp.Mean(tp.Add(a, a))
	tp.Backward(out)
	want := tensor.FromSlice(1, 2, []float64{1, 1})
	if !a.Grad.AllClose(want, 1e-12) {
		t.Fatalf("shared-use grad = %v, want %v", a.Grad, want)
	}
}

func TestConstantGetsNoGrad(t *testing.T) {
	c := Constant(tensor.FromSlice(1, 1, []float64{3}))
	p := Param(tensor.FromSlice(1, 1, []float64{2}))
	tp := NewTape()
	out := tp.Mean(tp.Mul(c, p))
	tp.Backward(out)
	if c.Grad != nil {
		t.Fatal("constant received a gradient buffer")
	}
	if p.Grad == nil || math.Abs(p.Grad.Data[0]-3) > 1e-12 {
		t.Fatalf("param grad = %v, want 3", p.Grad)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar root")
		}
	}()
	a := Param(tensor.New(2, 2))
	tp := NewTape()
	tp.Backward(tp.Add(a, a))
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize mean((w - target)^2) by SGD.
	w := Param(tensor.FromSlice(1, 3, []float64{5, -4, 3}))
	target := tensor.FromSlice(1, 3, []float64{1, 2, 3})
	opt := NewSGD(0.3, []*Node{w})
	for i := 0; i < 200; i++ {
		tp := NewTape()
		loss := tp.MSE(w, target)
		tp.Backward(loss)
		opt.Step()
	}
	if !w.Value.AllClose(target, 1e-3) {
		t.Fatalf("SGD did not converge: %v", w.Value)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := Param(tensor.FromSlice(1, 3, []float64{5, -4, 3}))
	target := tensor.FromSlice(1, 3, []float64{1, 2, 3})
	opt := NewAdam(0.1, []*Node{w})
	for i := 0; i < 500; i++ {
		tp := NewTape()
		loss := tp.MSE(w, target)
		tp.Backward(loss)
		opt.Step()
	}
	if !w.Value.AllClose(target, 1e-2) {
		t.Fatalf("Adam did not converge: %v", w.Value)
	}
}

func TestClipScaleBoundsGradient(t *testing.T) {
	w := Param(tensor.FromSlice(1, 2, []float64{0, 0}))
	w.Grad = tensor.FromSlice(1, 2, []float64{30, 40}) // norm 50
	s := clipScale([]*Node{w}, 5)
	if math.Abs(s-0.1) > 1e-12 {
		t.Fatalf("clipScale = %v, want 0.1", s)
	}
	if clipScale([]*Node{w}, 0) != 1 {
		t.Fatal("clip disabled should return 1")
	}
	w.Grad = tensor.FromSlice(1, 2, []float64{0.3, 0.4})
	if clipScale([]*Node{w}, 5) != 1 {
		t.Fatal("within-bound gradient should not be scaled")
	}
}

func TestOptimizerZeroGrad(t *testing.T) {
	w := Param(tensor.FromSlice(1, 1, []float64{1}))
	w.Grad = tensor.FromSlice(1, 1, []float64{9})
	opt := NewSGD(0.1, []*Node{w})
	opt.ZeroGrad()
	if w.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad did not clear gradient")
	}
}

func TestTapeReset(t *testing.T) {
	a := Param(tensor.FromSlice(1, 1, []float64{1}))
	tp := NewTape()
	tp.Mean(tp.Add(a, a))
	if tp.Len() == 0 {
		t.Fatal("tape recorded nothing")
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatal("Reset did not clear tape")
	}
}
