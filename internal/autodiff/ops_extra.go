package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"streamgnn/internal/tensor"
)

// Additional operations beyond the minimal DGNN set: row-wise softmax,
// multi-class cross-entropy, dropout, and scalar sum — available for custom
// models and heads built on the engine (e.g. multi-class event taxonomies).

// Softmax applies a numerically stable row-wise softmax.
func (t *Tape) Softmax(a *Node) *Node {
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for r := 0; r < a.Value.Rows; r++ {
		row := a.Value.Row(r)
		out := val.Row(r)
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for c, v := range row {
			out[c] = math.Exp(v - maxV)
			sum += out[c]
		}
		for c := range out {
			out[c] /= sum
		}
	}
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for r := 0; r < val.Rows; r++ {
			y := val.Row(r)
			g := out.Grad.Row(r)
			var dot float64
			for c := range y {
				dot += y[c] * g[c]
			}
			arow := a.Grad.Row(r)
			for c := range y {
				arow[c] += y[c] * (g[c] - dot)
			}
		}
	}
	return t.record(out)
}

// CrossEntropy returns the mean negative log-likelihood of the given class
// indices under row-wise softmax of the logits (fused, numerically stable).
func (t *Tape) CrossEntropy(logits *Node, classes []int) *Node {
	n := logits.Value.Rows
	if len(classes) != n {
		panic(fmt.Sprintf("autodiff: CrossEntropy got %d classes for %d rows", len(classes), n))
	}
	probs := tensor.New(n, logits.Value.Cols)
	var loss float64
	for r := 0; r < n; r++ {
		row := logits.Value.Row(r)
		c := classes[r]
		if c < 0 || c >= len(row) {
			panic(fmt.Sprintf("autodiff: class %d out of range [0,%d)", c, len(row)))
		}
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		p := probs.Row(r)
		for j, v := range row {
			p[j] = math.Exp(v - maxV)
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		loss += -math.Log(p[c] + 1e-300)
	}
	out := &Node{
		Value:        tensor.FromSlice(1, 1, []float64{loss / float64(n)}),
		requiresGrad: logits.requiresGrad,
		parents:      []*Node{logits},
	}
	out.back = func() {
		if !logits.requiresGrad {
			return
		}
		ensureGrad(logits)
		g := out.Grad.Data[0] / float64(n)
		for r := 0; r < n; r++ {
			p := probs.Row(r)
			grow := logits.Grad.Row(r)
			for j, pj := range p {
				grad := pj
				if j == classes[r] {
					grad -= 1
				}
				grow[j] += g * grad
			}
		}
	}
	return t.record(out)
}

// Dropout zeroes each element independently with probability p and scales
// survivors by 1/(1-p) (inverted dropout). p = 0 is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand) *Node {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("autodiff: dropout probability %v outside [0,1)", p))
	}
	if p == 0 {
		return a
	}
	scale := 1 / (1 - p)
	mask := tensor.New(a.Value.Rows, a.Value.Cols)
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
			val.Data[i] = v * scale
		}
	}
	out := &Node{Value: val, requiresGrad: a.requiresGrad, parents: []*Node{a}}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i, m := range mask.Data {
				a.Grad.Data[i] += out.Grad.Data[i] * m
			}
		}
	}
	return t.record(out)
}

// Sum returns the scalar sum of all elements of a.
func (t *Tape) Sum(a *Node) *Node {
	out := &Node{
		Value:        tensor.FromSlice(1, 1, []float64{a.Value.Sum()}),
		requiresGrad: a.requiresGrad,
		parents:      []*Node{a},
	}
	out.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			g := out.Grad.Data[0]
			for i := range a.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
	}
	return t.record(out)
}
