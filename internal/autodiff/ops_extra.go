package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"streamgnn/internal/tensor"
)

// Additional operations beyond the minimal DGNN set: row-wise softmax,
// multi-class cross-entropy, dropout, and scalar sum — available for custom
// models and heads built on the engine (e.g. multi-class event taxonomies).

// Softmax applies a numerically stable row-wise softmax.
func (t *Tape) Softmax(a *Node) *Node {
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for r := 0; r < a.Value.Rows; r++ {
		row := a.Value.Row(r)
		out := val.Row(r)
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for c, v := range row {
			out[c] = math.Exp(v - maxV)
			sum += out[c]
		}
		for c := range out {
			out[c] /= sum
		}
	}
	return t.newNode1(opSoftmax, val, a.requiresGrad, a)
}

// CrossEntropy returns the mean negative log-likelihood of the given class
// indices under row-wise softmax of the logits (fused, numerically stable).
func (t *Tape) CrossEntropy(logits *Node, classes []int) *Node {
	n := logits.Value.Rows
	if len(classes) != n {
		panic(fmt.Sprintf("autodiff: CrossEntropy got %d classes for %d rows", len(classes), n))
	}
	probs := t.Owned(tensor.New(n, logits.Value.Cols))
	var loss float64
	for r := 0; r < n; r++ {
		row := logits.Value.Row(r)
		c := classes[r]
		if c < 0 || c >= len(row) {
			panic(fmt.Sprintf("autodiff: class %d out of range [0,%d)", c, len(row)))
		}
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		p := probs.Row(r)
		for j, v := range row {
			p[j] = math.Exp(v - maxV)
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		loss += -math.Log(p[c] + 1e-300)
	}
	out := t.newNode1(opCrossEntropy, tensor.FromSlice(1, 1, []float64{loss / float64(n)}), logits.requiresGrad, logits)
	out.aux = probs
	out.auxInts = append(out.auxInts[:0], classes...)
	return out
}

// Dropout zeroes each element independently with probability p and scales
// survivors by 1/(1-p) (inverted dropout). p = 0 is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand) *Node {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("autodiff: dropout probability %v outside [0,1)", p))
	}
	if p == 0 {
		return a
	}
	scale := 1 / (1 - p)
	mask := t.Owned(tensor.New(a.Value.Rows, a.Value.Cols))
	val := tensor.New(a.Value.Rows, a.Value.Cols)
	for i, v := range a.Value.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
			val.Data[i] = v * scale
		}
	}
	out := t.newNode1(opDropout, val, a.requiresGrad, a)
	out.aux = mask
	return out
}

// Sum returns the scalar sum of all elements of a.
func (t *Tape) Sum(a *Node) *Node {
	return t.newNode1(opSum, tensor.FromSlice(1, 1, []float64{a.Value.Sum()}), a.requiresGrad, a)
}
