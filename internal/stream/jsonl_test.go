package stream

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"streamgnn/internal/graph"
)

func sampleBatches() []Batch {
	return []Batch{
		{Step: 0, Events: []Event{
			AddNode{Type: 1, Feat: []float64{1, 2}},
			AddNode{Type: 2, Feat: []float64{3, 4}},
		}},
		{Step: 1, Events: []Event{
			AddEdge{U: 0, V: 1, Type: 3, Time: 1, Label: 0.5},
			AddEdge{U: 1, V: 0, Type: 0, Time: 1, Label: math.NaN()},
		}},
		{Step: 3, Events: []Event{ // gap in steps is legal
			SetFeature{V: 0, Feat: []float64{9, 9}},
			SetLabel{V: 1, Label: 1},
		}},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleBatches()); err != nil {
		t.Fatal(err)
	}
	src := NewJSONLSource(&buf)
	g1 := graph.NewDynamic(2)
	r1 := NewReplayer(g1, src, 0)
	steps := []int{}
	for r1.Advance() {
		steps = append(steps, r1.Step())
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if len(steps) != 3 || steps[0] != 0 || steps[2] != 3 {
		t.Fatalf("steps = %v", steps)
	}
	// Compare against direct replay.
	g2 := graph.NewDynamic(2)
	r2 := NewReplayer(g2, &SliceSource{Batches: sampleBatches()}, 0)
	for r2.Advance() {
	}
	if g1.N() != g2.N() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	if !g1.Features().Equal(g2.Features()) {
		t.Fatal("features differ after round trip")
	}
	if g1.OutEdges(0)[0].Label != 0.5 || g1.OutEdges(1)[0].HasLabel() {
		t.Fatal("edge labels wrong after round trip")
	}
	if y, ok := g1.Label(1); !ok || y != 1 {
		t.Fatal("node label lost")
	}
	if g1.Type(0) != 1 || g1.Type(1) != 2 {
		t.Fatal("node types lost")
	}
}

func TestJSONLBatchGrouping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleBatches()); err != nil {
		t.Fatal(err)
	}
	src := NewJSONLSource(&buf)
	b1, ok := src.Next()
	if !ok || b1.Step != 0 || len(b1.Events) != 2 {
		t.Fatalf("batch 1 = %+v ok=%v", b1, ok)
	}
	b2, _ := src.Next()
	if b2.Step != 1 || len(b2.Events) != 2 {
		t.Fatalf("batch 2 = %+v", b2)
	}
	b3, _ := src.Next()
	if b3.Step != 3 {
		t.Fatalf("batch 3 = %+v", b3)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source should be exhausted")
	}
}

func TestJSONLRejectsOutOfOrder(t *testing.T) {
	input := `{"step":2,"op":"node"}
{"step":1,"op":"node"}
`
	src := NewJSONLSource(strings.NewReader(input))
	src.Next()
	src.Next()
	if src.Err() == nil {
		t.Fatal("out-of-order records accepted")
	}
}

func TestJSONLRejectsUnknownOp(t *testing.T) {
	src := NewJSONLSource(strings.NewReader(`{"step":0,"op":"frobnicate"}` + "\n"))
	src.Next()
	if src.Err() == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	src := NewJSONLSource(strings.NewReader("not json\n"))
	if _, ok := src.Next(); ok {
		t.Fatal("garbage produced a batch")
	}
	if src.Err() == nil {
		t.Fatal("garbage accepted")
	}
}

func TestJSONLEmptyInput(t *testing.T) {
	src := NewJSONLSource(strings.NewReader(""))
	if _, ok := src.Next(); ok {
		t.Fatal("empty input produced a batch")
	}
	if src.Err() != nil {
		t.Fatalf("EOF should not be an error: %v", src.Err())
	}
}

func TestReadJSONLAndInferFeatDim(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleBatches()); err != nil {
		t.Fatal(err)
	}
	batches, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("batches = %d", len(batches))
	}
	if InferFeatDim(batches) != 2 {
		t.Fatalf("InferFeatDim = %d", InferFeatDim(batches))
	}
	if InferFeatDim(nil) != 0 {
		t.Fatal("empty stream should infer 0")
	}
	if _, err := ReadJSONL(strings.NewReader("oops\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
