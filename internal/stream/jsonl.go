package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"streamgnn/internal/graph"
)

// Record is the wire format of one event in the JSONL stream encoding: one
// JSON object per line, ordered by step. It lets real graph streams be
// replayed through the engine and the built-in workloads be exported for
// inspection or use by other tools.
//
//	{"step":3,"op":"node","type":1,"feat":[0.2,1]}
//	{"step":3,"op":"edge","u":10,"v":4,"etype":0,"label":1}
//	{"step":4,"op":"feat","v":10,"feat":[0.4,1]}
//	{"step":4,"op":"label","v":10,"value":1}
type Record struct {
	Step int    `json:"step"`
	Op   string `json:"op"` // "node", "edge", "feat", "label"

	// node
	Type int `json:"type,omitempty"`
	// edge
	U     int      `json:"u,omitempty"`
	V     int      `json:"v"`
	EType int      `json:"etype,omitempty"`
	Label *float64 `json:"label,omitempty"` // edge or node label
	// feat / node
	Feat []float64 `json:"feat,omitempty"`
	// label
	Value float64 `json:"value,omitempty"`
}

// Ops accepted in Record.Op.
const (
	OpNode  = "node"
	OpEdge  = "edge"
	OpFeat  = "feat"
	OpLabel = "label"
)

func (r Record) event() (Event, error) {
	switch r.Op {
	case OpNode:
		return AddNode{Type: graph.NodeType(r.Type), Feat: r.Feat}, nil
	case OpEdge:
		label := math.NaN()
		if r.Label != nil {
			label = *r.Label
		}
		return AddEdge{U: r.U, V: r.V, Type: graph.EdgeType(r.EType), Time: int64(r.Step), Label: label}, nil
	case OpFeat:
		return SetFeature{V: r.V, Feat: r.Feat}, nil
	case OpLabel:
		return SetLabel{V: r.V, Label: r.Value}, nil
	default:
		return nil, fmt.Errorf("stream: unknown op %q", r.Op)
	}
}

// recordOf converts an event back to its wire form (inverse of event).
func recordOf(step int, e Event) (Record, error) {
	switch ev := e.(type) {
	case AddNode:
		return Record{Step: step, Op: OpNode, Type: int(ev.Type), Feat: ev.Feat}, nil
	case AddEdge:
		r := Record{Step: step, Op: OpEdge, U: ev.U, V: ev.V, EType: int(ev.Type)}
		if !math.IsNaN(ev.Label) {
			l := ev.Label
			r.Label = &l
		}
		return r, nil
	case SetFeature:
		return Record{Step: step, Op: OpFeat, V: ev.V, Feat: ev.Feat}, nil
	case SetLabel:
		return Record{Step: step, Op: OpLabel, V: ev.V, Value: ev.Label}, nil
	default:
		return Record{}, fmt.Errorf("stream: unencodable event %T", e)
	}
}

// WriteJSONL encodes batches as JSON Lines.
func WriteJSONL(w io.Writer, batches []Batch) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, b := range batches {
		for _, e := range b.Events {
			rec, err := recordOf(b.Step, e)
			if err != nil {
				return err
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// JSONLSource streams batches from a JSONL reader. Records must be ordered
// by non-decreasing step; all records of one step form one batch.
type JSONLSource struct {
	dec      *json.Decoder
	pending  *Record
	lastStep int
	started  bool
	err      error
}

// NewJSONLSource wraps r (typically a file) as a stream source.
func NewJSONLSource(r io.Reader) *JSONLSource {
	return &JSONLSource{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Err returns the first decoding error encountered (io.EOF excluded).
func (s *JSONLSource) Err() error { return s.err }

func (s *JSONLSource) next() (*Record, error) {
	if s.pending != nil {
		r := s.pending
		s.pending = nil
		return r, nil
	}
	var rec Record
	if err := s.dec.Decode(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Next implements Source.
func (s *JSONLSource) Next() (Batch, bool) {
	if s.err != nil {
		return Batch{}, false
	}
	var batch Batch
	haveStep := false
	for {
		rec, err := s.next()
		if err != nil {
			if err != io.EOF {
				s.err = err
			}
			return batch, haveStep
		}
		if s.started && rec.Step < s.lastStep {
			s.err = fmt.Errorf("stream: records out of order (step %d after %d)", rec.Step, s.lastStep)
			return batch, haveStep
		}
		if haveStep && rec.Step != batch.Step {
			s.pending = rec // belongs to the next batch
			return batch, true
		}
		ev, err := rec.event()
		if err != nil {
			s.err = err
			return batch, haveStep
		}
		if !haveStep {
			batch.Step = rec.Step
			haveStep = true
			s.started = true
			s.lastStep = rec.Step
		}
		batch.Events = append(batch.Events, ev)
	}
}

// ReadJSONL decodes an entire JSONL stream into batches.
func ReadJSONL(r io.Reader) ([]Batch, error) {
	src := NewJSONLSource(r)
	var out []Batch
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, b)
	}
	return out, src.Err()
}

// InferFeatDim returns the attribute dimension of the first node event in
// the batches (0 if none).
func InferFeatDim(batches []Batch) int {
	for _, b := range batches {
		for _, e := range b.Events {
			if n, ok := e.(AddNode); ok {
				return len(n.Feat)
			}
		}
	}
	return 0
}
