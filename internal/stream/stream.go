// Package stream models graph streams as per-step event batches applied to a
// dynamic graph snapshot, with optional sliding-window edge expiry. A
// workload generator implements Source; the Replayer drives a graph.Dynamic
// through the stream one time step at a time, which is the unit at which the
// engine alternates query answering and online training.
package stream

import (
	"math"

	"streamgnn/internal/graph"
)

// Event is one mutation of the graph snapshot.
type Event interface {
	Apply(g *graph.Dynamic)
}

// AddNode creates a node. The id is assigned by insertion order; generators
// construct events sequentially and therefore know the id in advance.
type AddNode struct {
	Type graph.NodeType
	Feat []float64
}

// Apply implements Event.
func (e AddNode) Apply(g *graph.Dynamic) { g.AddNode(e.Type, e.Feat) }

// AddEdge inserts a directed edge; Label NaN means unlabeled. Use
// math.NaN() or the NoLabel constant helper.
type AddEdge struct {
	U, V  int
	Type  graph.EdgeType
	Time  int64
	Label float64
}

// Apply implements Event.
func (e AddEdge) Apply(g *graph.Dynamic) { g.AddLabeledEdge(e.U, e.V, e.Type, e.Time, e.Label) }

// SetFeature replaces a node's attribute vector.
type SetFeature struct {
	V    int
	Feat []float64
}

// Apply implements Event.
func (e SetFeature) Apply(g *graph.Dynamic) { g.SetFeature(e.V, e.Feat) }

// SetLabel attaches a self-supervision label to a node.
type SetLabel struct {
	V     int
	Label float64
}

// Apply implements Event.
func (e SetLabel) Apply(g *graph.Dynamic) { g.SetLabel(e.V, e.Label) }

// NoLabel is the sentinel for unlabeled edges.
func NoLabel() float64 { return math.NaN() }

// Batch is the set of events belonging to one time step.
type Batch struct {
	Step   int
	Events []Event
}

// Source produces the stream, one batch per time step.
type Source interface {
	// Next returns the batch for the next step, or ok=false when the
	// stream is exhausted.
	Next() (b Batch, ok bool)
}

// SliceSource replays a pre-built batch slice (testing and recording).
type SliceSource struct {
	Batches []Batch
	pos     int
}

// Next implements Source.
func (s *SliceSource) Next() (Batch, bool) {
	if s.pos >= len(s.Batches) {
		return Batch{}, false
	}
	b := s.Batches[s.pos]
	s.pos++
	return b, true
}

// Replayer drives a dynamic graph through a stream.
type Replayer struct {
	G *graph.Dynamic
	// WindowSteps, if positive, keeps only edges whose Time is within the
	// most recent WindowSteps steps (a sliding window over the stream).
	WindowSteps int

	src  Source
	step int
	done bool
}

// NewReplayer returns a replayer applying src to g.
func NewReplayer(g *graph.Dynamic, src Source, windowSteps int) *Replayer {
	return &Replayer{G: g, WindowSteps: windowSteps, src: src, step: -1}
}

// Step returns the index of the last applied step (-1 before the first).
func (r *Replayer) Step() int { return r.step }

// Done reports whether the source is exhausted.
func (r *Replayer) Done() bool { return r.done }

// Advance applies the next step's events and the sliding-window expiry.
// It reports whether a step was applied.
func (r *Replayer) Advance() bool {
	if r.done {
		return false
	}
	b, ok := r.src.Next()
	if !ok {
		r.done = true
		return false
	}
	for _, e := range b.Events {
		e.Apply(r.G)
	}
	r.step = b.Step
	if r.WindowSteps > 0 {
		r.G.ExpireEdgesBefore(int64(b.Step - r.WindowSteps + 1))
	}
	return true
}
