package stream

import (
	"testing"

	"streamgnn/internal/graph"
)

func TestEventsApply(t *testing.T) {
	g := graph.NewDynamic(2)
	AddNode{Type: 1, Feat: []float64{1, 2}}.Apply(g)
	AddNode{Type: 2}.Apply(g)
	AddEdge{U: 0, V: 1, Type: 3, Time: 7, Label: 0.5}.Apply(g)
	SetFeature{V: 1, Feat: []float64{9, 9}}.Apply(g)
	SetLabel{V: 0, Label: 1}.Apply(g)

	if g.N() != 2 || g.Type(0) != 1 || g.Type(1) != 2 {
		t.Fatal("AddNode events wrong")
	}
	es := g.OutEdges(0)
	if len(es) != 1 || es[0].To != 1 || es[0].Time != 7 || !es[0].HasLabel() {
		t.Fatalf("AddEdge event wrong: %+v", es)
	}
	if g.Feature(1)[0] != 9 {
		t.Fatal("SetFeature event wrong")
	}
	if y, ok := g.Label(0); !ok || y != 1 {
		t.Fatal("SetLabel event wrong")
	}
}

func TestUnlabeledEdgeEvent(t *testing.T) {
	g := graph.NewDynamic(1)
	AddNode{}.Apply(g)
	AddNode{}.Apply(g)
	AddEdge{U: 0, V: 1, Time: 0, Label: NoLabel()}.Apply(g)
	if g.OutEdges(0)[0].HasLabel() {
		t.Fatal("NoLabel edge should be unlabeled")
	}
}

func TestSliceSourceAndReplayer(t *testing.T) {
	batches := []Batch{
		{Step: 0, Events: []Event{AddNode{}, AddNode{}}},
		{Step: 1, Events: []Event{AddEdge{U: 0, V: 1, Time: 1, Label: NoLabel()}}},
		{Step: 2, Events: []Event{AddEdge{U: 1, V: 0, Time: 2, Label: NoLabel()}}},
	}
	g := graph.NewDynamic(1)
	r := NewReplayer(g, &SliceSource{Batches: batches}, 0)
	if r.Step() != -1 || r.Done() {
		t.Fatal("initial state wrong")
	}
	steps := 0
	for r.Advance() {
		steps++
	}
	if steps != 3 || r.Step() != 2 || !r.Done() {
		t.Fatalf("steps=%d step=%d done=%v", steps, r.Step(), r.Done())
	}
	if g.N() != 2 || g.NumEdges() != 2 {
		t.Fatal("replay produced wrong graph")
	}
	if r.Advance() {
		t.Fatal("Advance after done should be false")
	}
}

func TestReplayerSlidingWindow(t *testing.T) {
	batches := []Batch{
		{Step: 0, Events: []Event{AddNode{}, AddNode{}, AddEdge{U: 0, V: 1, Time: 0, Label: NoLabel()}}},
		{Step: 1, Events: []Event{AddEdge{U: 1, V: 0, Time: 1, Label: NoLabel()}}},
		{Step: 2, Events: []Event{AddEdge{U: 0, V: 1, Time: 2, Label: NoLabel()}}},
	}
	g := graph.NewDynamic(1)
	r := NewReplayer(g, &SliceSource{Batches: batches}, 2) // keep 2 steps of edges
	for r.Advance() {
	}
	// After step 2 with window 2, only edges with Time >= 1 survive.
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	for _, e := range g.OutEdges(0) {
		if e.Time < 1 {
			t.Fatal("expired edge still present")
		}
	}
}

func TestReplayerTracksUpdates(t *testing.T) {
	batches := []Batch{
		{Step: 0, Events: []Event{AddNode{}, AddNode{}, AddNode{}}},
		{Step: 1, Events: []Event{AddEdge{U: 0, V: 1, Time: 1, Label: NoLabel()}}},
	}
	g := graph.NewDynamic(1)
	r := NewReplayer(g, &SliceSource{Batches: batches}, 0)
	r.Advance()
	g.ResetUpdated() // engine consumes updates per step
	r.Advance()
	got := g.Updated()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Updated = %v", got)
	}
}
