// Package sampling provides weighted random sampling over dynamic item sets:
// a Fenwick (binary indexed) tree for O(log n) weight updates and samples,
// and the chip distribution D of the paper's Algorithm 1 built on top of it.
package sampling

import (
	"fmt"
	"math/rand"
)

// Fenwick is a binary indexed tree over non-negative float64 weights that
// supports O(log n) point updates, prefix sums, and inverse-CDF sampling.
// The item set can grow (amortized O(1) per added item).
type Fenwick struct {
	tree    []float64 // 1-based
	weights []float64 // raw per-item weights, for O(n) rebuilds on growth
	n       int
}

// NewFenwick returns a Fenwick tree over n zero-weight items.
func NewFenwick(n int) *Fenwick {
	f := &Fenwick{}
	f.growTo(n)
	return f
}

// N returns the number of items.
func (f *Fenwick) N() int { return f.n }

func (f *Fenwick) growTo(n int) {
	if n <= f.n {
		return
	}
	f.weights = append(f.weights, make([]float64, n-f.n)...)
	f.n = n
	// Linear-time rebuild: tree[j] accumulates into its parent.
	f.tree = make([]float64, n+1)
	for i := 1; i <= n; i++ {
		f.tree[i] += f.weights[i-1]
		if p := i + (i & -i); p <= n {
			f.tree[p] += f.tree[i]
		}
	}
}

// Grow extends the item set to n items; new items have zero weight.
func (f *Fenwick) Grow(n int) { f.growTo(n) }

// Add adds delta to item i's weight.
func (f *Fenwick) Add(i int, delta float64) {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("sampling: Fenwick index %d out of range [0,%d)", i, f.n))
	}
	f.weights[i] += delta
	for j := i + 1; j <= f.n; j += j & (-j) {
		f.tree[j] += delta
	}
}

// Prefix returns the sum of weights of items [0, i].
func (f *Fenwick) Prefix(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= f.n {
		i = f.n - 1
	}
	var s float64
	for j := i + 1; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// Weight returns item i's weight.
func (f *Fenwick) Weight(i int) float64 { return f.weights[i] }

// Total returns the sum of all weights.
func (f *Fenwick) Total() float64 { return f.Prefix(f.n - 1) }

// Sample draws an item with probability proportional to its weight.
// It panics if the total weight is not positive.
func (f *Fenwick) Sample(rng *rand.Rand) int {
	total := f.Total()
	if total <= 0 {
		panic("sampling: Fenwick.Sample on empty distribution")
	}
	r := rng.Float64() * total
	// Binary search down the implicit tree.
	idx := 0
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] < r {
			idx = next
			r -= f.tree[next]
		}
	}
	if idx >= f.n {
		idx = f.n - 1 // guard against floating-point edge
	}
	return idx
}
