package sampling

import (
	"math/rand"
	"testing"
)

// BenchmarkSamplerFenwickVsLinear justifies the Fenwick-tree sampler: at
// graph-stream node counts, O(log n) sampling beats the naive linear scan.
func BenchmarkSamplerFenwickVsLinear(b *testing.B) {
	const n = 100000
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	f := NewFenwick(n)
	var total float64
	for i := range weights {
		weights[i] = rng.Float64()
		f.Add(i, weights[i])
		total += weights[i]
	}
	b.Run("fenwick", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			f.Sample(rng)
		}
	})
	b.Run("linear", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			r := rng.Float64() * total
			for j, w := range weights {
				r -= w
				if r < 0 {
					_ = j
					break
				}
			}
		}
	})
}

// BenchmarkChipsMove measures the chip-move hot path of Algorithm 1.
func BenchmarkChipsMove(b *testing.B) {
	c := NewChips(100000, 5)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Move(rng.Intn(c.N()), rng.Intn(c.N()))
	}
}

// BenchmarkAliasVsFenwickStatic compares O(1) alias sampling against the
// Fenwick tree for a static distribution.
func BenchmarkAliasVsFenwickStatic(b *testing.B) {
	const n = 100000
	rng := rand.New(rand.NewSource(4))
	weights := make([]float64, n)
	f := NewFenwick(n)
	for i := range weights {
		weights[i] = rng.Float64()
		f.Add(i, weights[i])
	}
	a, err := NewAlias(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alias", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < b.N; i++ {
			a.Sample(rng)
		}
	})
	b.Run("fenwick", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < b.N; i++ {
			f.Sample(rng)
		}
	})
}
