package sampling

import (
	"fmt"
	"math/rand"
)

// Chips is the node-weight distribution D of Algorithm 1, stored as integer
// chip counts backed by a Fenwick tree for O(log n) sampling and moves.
//
// Invariants maintained (and relied on by the Markov-chain analysis):
//   - every node holds at least MinChips chips;
//   - Move conserves the total chip count.
//
// Chips also supports deactivating nodes: under a sliding-window stream,
// nodes whose edges have all expired are no longer part of the current
// snapshot G_t and must not be sampled for training, but they keep their
// chips so the distribution is intact if they become active again.
type Chips struct {
	// MinChips is the floor below which a node's count cannot drop
	// (1 in the paper, lines 12 and 15 of Algorithm 1).
	MinChips int

	k      int
	counts []int
	active []bool
	total  int
	f      *Fenwick
}

// NewChips returns a distribution over n nodes with k chips each.
func NewChips(n, k int) *Chips {
	if k < 1 {
		panic(fmt.Sprintf("sampling: initial chips k must be >= 1, got %d", k))
	}
	c := &Chips{MinChips: 1, k: k, f: NewFenwick(0)}
	c.EnsureN(n)
	return c
}

// N returns the number of nodes covered.
func (c *Chips) N() int { return len(c.counts) }

// K returns the initial per-node chip count.
func (c *Chips) K() int { return c.k }

// Total returns the total number of chips.
func (c *Chips) Total() int { return c.total }

// Count returns node v's chip count.
func (c *Chips) Count(v int) int { return c.counts[v] }

// Prob returns node v's normalized probability under D.
func (c *Chips) Prob(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[v]) / float64(c.total)
}

// EnsureN grows the distribution so nodes [0, n) exist; nodes that arrive
// in the stream start with k chips, like the initial nodes, and active.
func (c *Chips) EnsureN(n int) {
	if n <= len(c.counts) {
		return
	}
	c.f.Grow(n)
	for v := len(c.counts); v < n; v++ {
		c.counts = append(c.counts, c.k)
		c.active = append(c.active, true)
		c.total += c.k
		c.f.Add(v, float64(c.k))
	}
}

// SetActive marks node v as (in)eligible for sampling. Inactive nodes keep
// their chips but carry zero sampling weight.
func (c *Chips) SetActive(v int, on bool) {
	if c.active[v] == on {
		return
	}
	c.active[v] = on
	if on {
		c.f.Add(v, float64(c.counts[v]))
	} else {
		c.f.Add(v, -float64(c.counts[v]))
	}
}

// Active reports whether node v is eligible for sampling.
func (c *Chips) Active(v int) bool { return c.active[v] }

// EffectiveWeight returns node v's sampling weight (0 when inactive).
func (c *Chips) EffectiveWeight(v int) float64 {
	if !c.active[v] {
		return 0
	}
	return float64(c.counts[v])
}

// TotalWeight returns the total sampling weight over active nodes.
func (c *Chips) TotalWeight() float64 { return c.f.Total() }

// Move transfers one chip from node `from` to node `to`, refusing (and
// returning false) if it would drop `from` below MinChips or if from == to.
func (c *Chips) Move(from, to int) bool {
	if from == to {
		return false
	}
	if c.counts[from] <= c.MinChips {
		return false
	}
	c.counts[from]--
	c.counts[to]++
	if c.active[from] {
		c.f.Add(from, -1)
	}
	if c.active[to] {
		c.f.Add(to, 1)
	}
	return true
}

// Sample draws a node with probability proportional to its chip count.
func (c *Chips) Sample(rng *rand.Rand) int {
	return c.f.Sample(rng)
}

// SampleFrom draws a node from the conditional distribution D|subset
// (Algorithm 1 line 19), considering only active subset members. It panics
// on an empty subset and returns ok=false when no member is active.
func (c *Chips) SampleFrom(rng *rand.Rand, subset []int) (v int, ok bool) {
	if len(subset) == 0 {
		panic("sampling: SampleFrom with empty subset")
	}
	var total float64
	for _, u := range subset {
		total += c.EffectiveWeight(u)
	}
	if total <= 0 {
		return 0, false
	}
	r := rng.Float64() * total
	for _, u := range subset {
		r -= c.EffectiveWeight(u)
		if r < 0 {
			return u, true
		}
	}
	return subset[len(subset)-1], true
}

// Counts returns a copy of all chip counts (analysis/testing helper).
func (c *Chips) Counts() []int {
	out := make([]int, len(c.counts))
	copy(out, c.counts)
	return out
}

// Restore replaces all chip counts from a checkpoint, re-activating every
// node (activity is re-derived from the snapshot on the next step).
func (c *Chips) Restore(counts []int) error {
	for v, n := range counts {
		if n < c.MinChips {
			return fmt.Errorf("sampling: restored count %d at node %d below floor %d", n, v, c.MinChips)
		}
	}
	c.counts = append(c.counts[:0], counts...)
	c.active = make([]bool, len(counts))
	c.total = 0
	c.f = NewFenwick(len(counts))
	for v, n := range counts {
		c.active[v] = true
		c.total += n
		c.f.Add(v, float64(n))
	}
	return nil
}
