package sampling

import (
	"fmt"
	"math/rand"
)

// Alias is Walker's alias method: O(n) construction, O(1) sampling from a
// fixed discrete distribution. Use it where the weights do not change
// between samples (static mixture components); the Fenwick tree remains the
// right structure for the chip distribution, whose weights move constantly.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table over the given non-negative weights.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: alias table over empty weights")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %v at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range append(small, large...) {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of items.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one item in O(1).
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
