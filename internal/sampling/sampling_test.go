package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(5)
	if f.N() != 5 || f.Total() != 0 {
		t.Fatal("initial state wrong")
	}
	f.Add(0, 1)
	f.Add(2, 3)
	f.Add(4, 2)
	if f.Total() != 6 {
		t.Fatalf("Total = %v", f.Total())
	}
	if f.Weight(2) != 3 || f.Weight(1) != 0 {
		t.Fatal("Weight wrong")
	}
	if f.Prefix(2) != 4 || f.Prefix(4) != 6 || f.Prefix(-1) != 0 {
		t.Fatal("Prefix wrong")
	}
	f.Add(2, -3)
	if f.Weight(2) != 0 || f.Total() != 3 {
		t.Fatal("negative delta wrong")
	}
}

func TestFenwickGrowPreservesWeights(t *testing.T) {
	f := NewFenwick(3)
	f.Add(0, 1)
	f.Add(2, 5)
	f.Grow(10)
	if f.N() != 10 {
		t.Fatalf("N = %d", f.N())
	}
	if f.Weight(0) != 1 || f.Weight(2) != 5 || f.Weight(7) != 0 {
		t.Fatal("Grow corrupted weights")
	}
	f.Add(9, 2)
	if f.Total() != 8 {
		t.Fatalf("Total = %v", f.Total())
	}
}

func TestFenwickPrefixMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		fw := NewFenwick(n)
		naive := make([]float64, n)
		for op := 0; op < 60; op++ {
			i := rng.Intn(n)
			d := rng.Float64() * 3
			fw.Add(i, d)
			naive[i] += d
		}
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j <= i; j++ {
				want += naive[j]
			}
			if math.Abs(fw.Prefix(i)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFenwickSampleDistribution(t *testing.T) {
	f := NewFenwick(4)
	weights := []float64{1, 0, 3, 6}
	for i, w := range weights {
		f.Add(i, w)
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 4)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[f.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight item sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10 * trials
		if w == 0 {
			continue
		}
		if math.Abs(float64(counts[i])-want) > 0.05*trials {
			t.Fatalf("item %d sampled %d times, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestFenwickSamplePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFenwick(3).Sample(rand.New(rand.NewSource(1)))
}

func TestChipsInit(t *testing.T) {
	c := NewChips(4, 5)
	if c.N() != 4 || c.Total() != 20 || c.K() != 5 {
		t.Fatal("init wrong")
	}
	for v := 0; v < 4; v++ {
		if c.Count(v) != 5 {
			t.Fatal("per-node count wrong")
		}
		if math.Abs(c.Prob(v)-0.25) > 1e-12 {
			t.Fatal("Prob wrong")
		}
	}
}

func TestChipsEnsureN(t *testing.T) {
	c := NewChips(2, 3)
	c.EnsureN(5)
	if c.N() != 5 || c.Total() != 15 || c.Count(4) != 3 {
		t.Fatal("EnsureN wrong")
	}
	c.EnsureN(3) // shrink is a no-op
	if c.N() != 5 {
		t.Fatal("EnsureN shrank")
	}
}

func TestChipsMoveAndFloor(t *testing.T) {
	c := NewChips(2, 2)
	if !c.Move(0, 1) {
		t.Fatal("legal move refused")
	}
	if c.Count(0) != 1 || c.Count(1) != 3 || c.Total() != 4 {
		t.Fatal("move bookkeeping wrong")
	}
	if c.Move(0, 1) {
		t.Fatal("move below floor allowed")
	}
	if c.Move(1, 1) {
		t.Fatal("self-move allowed")
	}
}

func TestChipsSampleRespectsCounts(t *testing.T) {
	c := NewChips(3, 1)
	// Push chips to node 2: 1,1,7 via EnsureN+moves from a bigger pool.
	c.EnsureN(3)
	// Manually move: grow node 2 by taking from a temp node is impossible;
	// instead create asymmetry with repeated moves from 0 and 1 after topping up.
	c2 := NewChips(3, 5)
	for i := 0; i < 4; i++ {
		c2.Move(0, 2)
	}
	rng := rand.New(rand.NewSource(7))
	hits := make([]int, 3)
	const trials = 60000
	for i := 0; i < trials; i++ {
		hits[c2.Sample(rng)]++
	}
	// counts: node0=1, node1=5, node2=9, total 15
	wants := []float64{1.0 / 15, 5.0 / 15, 9.0 / 15}
	for v, w := range wants {
		got := float64(hits[v]) / trials
		if math.Abs(got-w) > 0.02 {
			t.Fatalf("node %d frequency %v, want %v", v, got, w)
		}
	}
}

func TestChipsSampleFromSubset(t *testing.T) {
	c := NewChips(5, 2)
	rng := rand.New(rand.NewSource(9))
	subset := []int{1, 3}
	for i := 0; i < 100; i++ {
		v, ok := c.SampleFrom(rng, subset)
		if !ok || (v != 1 && v != 3) {
			t.Fatalf("SampleFrom left subset: %d ok=%v", v, ok)
		}
	}
}

func TestSampleFromInactiveSubset(t *testing.T) {
	c := NewChips(4, 2)
	c.SetActive(1, false)
	c.SetActive(3, false)
	rng := rand.New(rand.NewSource(2))
	if _, ok := c.SampleFrom(rng, []int{1, 3}); ok {
		t.Fatal("all-inactive subset should report ok=false")
	}
	v, ok := c.SampleFrom(rng, []int{1, 2})
	if !ok || v != 2 {
		t.Fatalf("should sample the only active member, got %d ok=%v", v, ok)
	}
}

func TestChipsActivity(t *testing.T) {
	c := NewChips(3, 2)
	if !c.Active(0) || c.EffectiveWeight(0) != 2 || c.TotalWeight() != 6 {
		t.Fatal("initial activity wrong")
	}
	c.SetActive(0, false)
	if c.Active(0) || c.EffectiveWeight(0) != 0 || c.TotalWeight() != 4 {
		t.Fatal("deactivation wrong")
	}
	// Chips are kept; moves to/from inactive nodes keep weights consistent.
	if !c.Move(1, 0) {
		t.Fatal("move into inactive refused")
	}
	if c.Count(0) != 3 || c.TotalWeight() != 3 {
		t.Fatalf("weights after move wrong: count=%d total=%v", c.Count(0), c.TotalWeight())
	}
	c.SetActive(0, true)
	if c.EffectiveWeight(0) != 3 || c.TotalWeight() != 6 {
		t.Fatal("reactivation wrong")
	}
	// Sampling never returns inactive nodes.
	c.SetActive(2, false)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if v := c.Sample(rng); v == 2 {
			t.Fatal("sampled inactive node")
		}
	}
}

func TestChipsSampleFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChips(2, 1).SampleFrom(rand.New(rand.NewSource(1)), nil)
}

// Property: random sequences of moves conserve the total and the floor.
func TestChipsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(4)
		c := NewChips(n, k)
		for op := 0; op < 200; op++ {
			c.Move(rng.Intn(n), rng.Intn(n))
		}
		total := 0
		for v := 0; v < n; v++ {
			cnt := c.Count(v)
			if cnt < c.MinChips {
				return false
			}
			total += cnt
		}
		return total == n*k && total == c.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fenwick weights always mirror chip counts.
func TestChipsFenwickConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewChips(6, 3)
	for op := 0; op < 500; op++ {
		c.Move(rng.Intn(6), rng.Intn(6))
		if op%100 == 0 {
			c.EnsureN(c.N() + 1)
		}
	}
	for v := 0; v < c.N(); v++ {
		if math.Abs(c.f.Weight(v)-float64(c.Count(v))) > 1e-9 {
			t.Fatalf("fenwick weight %v != count %d at node %d", c.f.Weight(v), c.Count(v), v)
		}
	}
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, 4)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[a.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight item sampled %d times", counts[1])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		got := float64(counts[i]) / trials
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("item %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("zero total accepted")
	}
}

// Property: alias sampling matches the normalized weights for random tables.
func TestAliasMatchesWeightsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		weights := make([]float64, n)
		var total float64
		for i := range weights {
			weights[i] = rng.Float64() * 5
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		const trials = 30000
		counts := make([]float64, n)
		for i := 0; i < trials; i++ {
			counts[a.Sample(rng)]++
		}
		for i := range weights {
			if math.Abs(counts[i]/trials-weights[i]/total) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
