package nn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/tensor"
)

// GRUCell is a dense gated recurrent unit over row-batched inputs:
//
//	z = σ([x|h]·Wz + bz)   r = σ([x|h]·Wr + br)
//	c = tanh([x|r∘h]·Wc + bc)   h' = z∘h + (1−z)∘c
type GRUCell struct {
	wz, wr, wc *Linear
	hidden     int
}

// NewGRUCell returns a GRU cell with the given input and hidden sizes.
func NewGRUCell(rng *rand.Rand, in, hidden int) *GRUCell {
	return &GRUCell{
		wz:     NewLinear(rng, in+hidden, hidden),
		wr:     NewLinear(rng, in+hidden, hidden),
		wc:     NewLinear(rng, in+hidden, hidden),
		hidden: hidden,
	}
}

// Apply advances the cell one step.
func (c *GRUCell) Apply(tp *autodiff.Tape, x, h *autodiff.Node) *autodiff.Node {
	xh := tp.ConcatCols(x, h)
	z := tp.Sigmoid(c.wz.Apply(tp, xh))
	r := tp.Sigmoid(c.wr.Apply(tp, xh))
	cand := tp.Tanh(c.wc.Apply(tp, tp.ConcatCols(x, tp.Mul(r, h))))
	return tp.Add(tp.Mul(z, h), tp.Mul(tp.OneMinus(z), cand))
}

// Params implements Module.
func (c *GRUCell) Params() []*autodiff.Node {
	return CollectParams(c.wz, c.wr, c.wc)
}

// Hidden returns the hidden dimension.
func (c *GRUCell) Hidden() int { return c.hidden }

// Gates exposes the update, reset, and candidate transforms for value-level
// row kernels.
func (c *GRUCell) Gates() (z, r, cand *Linear) { return c.wz, c.wr, c.wc }

// LSTMCell is a dense long short-term memory cell over row-batched inputs.
type LSTMCell struct {
	wi, wf, wo, wg *Linear
	hidden         int
}

// NewLSTMCell returns an LSTM cell with the given input and hidden sizes.
func NewLSTMCell(rng *rand.Rand, in, hidden int) *LSTMCell {
	return &LSTMCell{
		wi:     NewLinear(rng, in+hidden, hidden),
		wf:     NewLinear(rng, in+hidden, hidden),
		wo:     NewLinear(rng, in+hidden, hidden),
		wg:     NewLinear(rng, in+hidden, hidden),
		hidden: hidden,
	}
}

// Apply advances the cell one step, returning the new hidden and cell state.
func (c *LSTMCell) Apply(tp *autodiff.Tape, x, h, cell *autodiff.Node) (hNew, cellNew *autodiff.Node) {
	xh := tp.ConcatCols(x, h)
	i := tp.Sigmoid(c.wi.Apply(tp, xh))
	f := tp.Sigmoid(c.wf.Apply(tp, xh))
	o := tp.Sigmoid(c.wo.Apply(tp, xh))
	g := tp.Tanh(c.wg.Apply(tp, xh))
	cellNew = tp.Add(tp.Mul(f, cell), tp.Mul(i, g))
	hNew = tp.Mul(o, tp.Tanh(cellNew))
	return hNew, cellNew
}

// Params implements Module.
func (c *LSTMCell) Params() []*autodiff.Node {
	return CollectParams(c.wi, c.wf, c.wo, c.wg)
}

// Hidden returns the hidden dimension.
func (c *LSTMCell) Hidden() int { return c.hidden }

// Gates exposes the input, forget, output, and candidate transforms for
// value-level row kernels.
func (c *LSTMCell) Gates() (i, f, o, g *Linear) { return c.wi, c.wf, c.wo, c.wg }

// GraphConvFn applies some graph convolution to x; it abstracts over GCN and
// diffusion convolutions so the gated cells below can host either.
type GraphConvFn func(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node

// ConvGRUCell is a GRU whose gate transforms are graph convolutions (the
// recurrence of TGCN and DCRNN).
type ConvGRUCell struct {
	convZ, convR, convC Module
	hidden              int
}

// NewConvGRUCell builds a graph-gated GRU from three conv constructors;
// newConv produces a conv mapping in+hidden -> hidden channels.
func NewConvGRUCell(hidden int, newConv func() Module) *ConvGRUCell {
	return &ConvGRUCell{convZ: newConv(), convR: newConv(), convC: newConv(), hidden: hidden}
}

// Apply advances the cell: conv is invoked with each gate's conv module and
// the gate input. The caller binds the adjacency inside conv.
func (c *ConvGRUCell) Apply(tp *autodiff.Tape, conv func(m Module, x *autodiff.Node) *autodiff.Node, x, h *autodiff.Node) *autodiff.Node {
	xh := tp.ConcatCols(x, h)
	z := tp.Sigmoid(conv(c.convZ, xh))
	r := tp.Sigmoid(conv(c.convR, xh))
	cand := tp.Tanh(conv(c.convC, tp.ConcatCols(x, tp.Mul(r, h))))
	return tp.Add(tp.Mul(z, h), tp.Mul(tp.OneMinus(z), cand))
}

// Params implements Module.
func (c *ConvGRUCell) Params() []*autodiff.Node {
	return CollectParams(c.convZ, c.convR, c.convC)
}

// Hidden returns the hidden dimension.
func (c *ConvGRUCell) Hidden() int { return c.hidden }

// Gates exposes the update, reset, and candidate conv modules for value-level
// row kernels.
func (c *ConvGRUCell) Gates() (z, r, cand Module) { return c.convZ, c.convR, c.convC }

// ConvLSTMCell is an LSTM whose gate transforms are graph convolutions
// (the recurrence of GCLSTM).
type ConvLSTMCell struct {
	convI, convF, convO, convG Module
	hidden                     int
}

// NewConvLSTMCell builds a graph-gated LSTM from four conv constructors.
func NewConvLSTMCell(hidden int, newConv func() Module) *ConvLSTMCell {
	return &ConvLSTMCell{convI: newConv(), convF: newConv(), convO: newConv(), convG: newConv(), hidden: hidden}
}

// Apply advances the cell, returning new hidden and cell state.
func (c *ConvLSTMCell) Apply(tp *autodiff.Tape, conv func(m Module, x *autodiff.Node) *autodiff.Node, x, h, cell *autodiff.Node) (hNew, cellNew *autodiff.Node) {
	xh := tp.ConcatCols(x, h)
	i := tp.Sigmoid(conv(c.convI, xh))
	f := tp.Sigmoid(conv(c.convF, xh))
	o := tp.Sigmoid(conv(c.convO, xh))
	g := tp.Tanh(conv(c.convG, xh))
	cellNew = tp.Add(tp.Mul(f, cell), tp.Mul(i, g))
	hNew = tp.Mul(o, tp.Tanh(cellNew))
	return hNew, cellNew
}

// Params implements Module.
func (c *ConvLSTMCell) Params() []*autodiff.Node {
	return CollectParams(c.convI, c.convF, c.convO, c.convG)
}

// Hidden returns the hidden dimension.
func (c *ConvLSTMCell) Hidden() int { return c.hidden }

// Gates exposes the input, forget, output, and candidate conv modules for
// value-level row kernels.
func (c *ConvLSTMCell) Gates() (i, f, o, g Module) { return c.convI, c.convF, c.convO, c.convG }

// ZeroState returns an n×dim zero matrix (initial recurrent state).
func ZeroState(n, dim int) *tensor.Matrix { return tensor.New(n, dim) }
