// Package nn provides the neural building blocks shared by the seven dynamic
// graph neural network baselines: linear layers, graph convolutions
// (GCN-normalized and diffusion), graph-gated GRU/LSTM cells, dense GRU/LSTM
// cells, and MLPs. Every module exposes its parameters for an optimizer.
package nn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/tensor"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*autodiff.Node
}

// CollectParams concatenates the parameters of several modules.
func CollectParams(ms ...Module) []*autodiff.Node {
	var out []*autodiff.Node
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W, B    *autodiff.Node
	in, out int
}

// NewLinear returns a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		W:   autodiff.Param(tensor.Glorot(rng, in, out)),
		B:   autodiff.Param(tensor.New(1, out)),
		in:  in,
		out: out,
	}
}

// Apply computes x·W + b.
func (l *Linear) Apply(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	return tp.AddBias(tp.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*autodiff.Node { return []*autodiff.Node{l.W, l.B} }

// Clone returns a deep value copy of the layer with fresh parameter nodes,
// detached from any optimizer state or tape.
func (l *Linear) Clone() *Linear {
	return &Linear{
		W:   autodiff.Param(l.W.Value.Clone()),
		B:   autodiff.Param(l.B.Value.Clone()),
		in:  l.in,
		out: l.out,
	}
}

// In returns the input dimension.
func (l *Linear) In() int { return l.in }

// Out returns the output dimension.
func (l *Linear) Out() int { return l.out }

// GCNConv is a graph convolution h = Â·x·W + b with Â the symmetric
// GCN-normalized adjacency (Kipf & Welling).
type GCNConv struct {
	lin *Linear
}

// NewGCNConv returns a GCN convolution from in to out channels.
func NewGCNConv(rng *rand.Rand, in, out int) *GCNConv {
	return &GCNConv{lin: NewLinear(rng, in, out)}
}

// Apply computes Â·x·W + b.
func (c *GCNConv) Apply(tp *autodiff.Tape, adj *tensor.CSR, x *autodiff.Node) *autodiff.Node {
	return tp.AddBias(tp.SpMM(adj, tp.MatMul(x, c.lin.W)), c.lin.B)
}

// Params implements Module.
func (c *GCNConv) Params() []*autodiff.Node { return c.lin.Params() }

// Out returns the output dimension.
func (c *GCNConv) Out() int { return c.lin.out }

// Weight exposes the convolution's weight node for value-level row kernels
// (the delta-forward path recomputes single rows outside the tape).
func (c *GCNConv) Weight() *autodiff.Node { return c.lin.W }

// Bias exposes the convolution's bias node.
func (c *GCNConv) Bias() *autodiff.Node { return c.lin.B }

// DiffusionConv is DCRNN's bidirectional diffusion convolution
// h = Σ_{k=0..K} (P_f^k·x)·Wf_k + (P_r^k·x)·Wr_k + b, where P_f and P_r are
// the forward and reverse random-walk transition matrices.
type DiffusionConv struct {
	K      int
	Wf, Wr []*autodiff.Node
	B      *autodiff.Node
	out    int
}

// NewDiffusionConv returns a K-step bidirectional diffusion convolution.
func NewDiffusionConv(rng *rand.Rand, in, out, k int) *DiffusionConv {
	c := &DiffusionConv{K: k, B: autodiff.Param(tensor.New(1, out)), out: out}
	for i := 0; i <= k; i++ {
		c.Wf = append(c.Wf, autodiff.Param(tensor.Glorot(rng, in, out)))
		c.Wr = append(c.Wr, autodiff.Param(tensor.Glorot(rng, in, out)))
	}
	return c
}

// Apply computes the diffusion convolution with the given forward and
// reverse transition matrices.
func (c *DiffusionConv) Apply(tp *autodiff.Tape, fwd, rev *tensor.CSR, x *autodiff.Node) *autodiff.Node {
	sum := tp.MatMul(x, c.Wf[0])
	sum = tp.Add(sum, tp.MatMul(x, c.Wr[0]))
	xf, xr := x, x
	for k := 1; k <= c.K; k++ {
		xf = tp.SpMM(fwd, xf)
		xr = tp.SpMM(rev, xr)
		sum = tp.Add(sum, tp.MatMul(xf, c.Wf[k]))
		sum = tp.Add(sum, tp.MatMul(xr, c.Wr[k]))
	}
	return tp.AddBias(sum, c.B)
}

// Params implements Module.
func (c *DiffusionConv) Params() []*autodiff.Node {
	out := append([]*autodiff.Node{}, c.Wf...)
	out = append(out, c.Wr...)
	return append(out, c.B)
}

// Out returns the output dimension.
func (c *DiffusionConv) Out() int { return c.out }

// MLP is a multilayer perceptron with ReLU activations between layers
// (the per-query prediction head of the paper's architecture, Figure 2).
type MLP struct {
	layers []*Linear
}

// NewMLP returns an MLP with the given layer widths, e.g. (rng, 16, 8, 1).
func NewMLP(rng *rand.Rand, dims ...int) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, NewLinear(rng, dims[i], dims[i+1]))
	}
	return m
}

// Apply runs the MLP; the final layer has no activation (logits/regression).
func (m *MLP) Apply(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	h := x
	for i, l := range m.layers {
		h = l.Apply(tp, h)
		if i+1 < len(m.layers) {
			h = tp.ReLU(h)
		}
	}
	return h
}

// Params implements Module.
func (m *MLP) Params() []*autodiff.Node {
	var out []*autodiff.Node
	for _, l := range m.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Out returns the output dimension.
func (m *MLP) Out() int { return m.layers[len(m.layers)-1].out }

// Clone returns a deep value copy of the MLP: same widths, independent
// parameter matrices. Cloned heads let serving snapshots score concurrently
// while training keeps updating the originals in place.
func (m *MLP) Clone() *MLP {
	c := &MLP{layers: make([]*Linear, len(m.layers))}
	for i, l := range m.layers {
		c.layers[i] = l.Clone()
	}
	return c
}
