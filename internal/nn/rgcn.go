package nn

import (
	"math/rand"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/tensor"
)

// RGCNConv is a relational graph convolution (Schlichtkrull et al.): one
// learned transform per edge type plus an explicit self transform,
//
//	h = x·W_self + Σ_r Â_r·x·W_r + b,
//
// the natural layer for the heterogeneous streams of the paper's Example 1,
// where lab events, prescriptions and diagnoses should not share one weight
// matrix.
type RGCNConv struct {
	Self *autodiff.Node
	Rel  []*autodiff.Node
	B    *autodiff.Node
	out  int
}

// NewRGCNConv returns an RGCN convolution over `relations` edge types.
func NewRGCNConv(rng *rand.Rand, in, out, relations int) *RGCNConv {
	c := &RGCNConv{
		Self: autodiff.Param(tensor.Glorot(rng, in, out)),
		B:    autodiff.Param(tensor.New(1, out)),
		out:  out,
	}
	for r := 0; r < relations; r++ {
		c.Rel = append(c.Rel, autodiff.Param(tensor.Glorot(rng, in, out)))
	}
	return c
}

// Relations returns the number of relation transforms.
func (c *RGCNConv) Relations() int { return len(c.Rel) }

// Apply computes the relational convolution; typed must hold one adjacency
// per relation (extra relations see a zero adjacency contribution if typed
// is shorter — the stream may not have surfaced every type yet).
func (c *RGCNConv) Apply(tp *autodiff.Tape, typed []*tensor.CSR, x *autodiff.Node) *autodiff.Node {
	sum := tp.MatMul(x, c.Self)
	for r, w := range c.Rel {
		if r >= len(typed) || typed[r].NNZ() == 0 {
			continue
		}
		sum = tp.Add(sum, tp.SpMM(typed[r], tp.MatMul(x, w)))
	}
	return tp.AddBias(sum, c.B)
}

// Params implements Module.
func (c *RGCNConv) Params() []*autodiff.Node {
	out := []*autodiff.Node{c.Self}
	out = append(out, c.Rel...)
	return append(out, c.B)
}

// Out returns the output dimension.
func (c *RGCNConv) Out() int { return c.out }
