package nn

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/tensor"
)

func adj3() *tensor.CSR {
	// Path 0-1-2, symmetric GCN-normalized with self loops.
	return tensor.NewCSR(3, 3, [][]tensor.CSREntry{
		{{Col: 0, Val: 0.5}, {Col: 1, Val: 0.4}},
		{{Col: 0, Val: 0.4}, {Col: 1, Val: 0.33}, {Col: 2, Val: 0.4}},
		{{Col: 1, Val: 0.4}, {Col: 2, Val: 0.5}},
	})
}

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 2)
	if l.In() != 4 || l.Out() != 2 || len(l.Params()) != 2 {
		t.Fatal("linear metadata wrong")
	}
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 5, 4, 1))
	y := l.Apply(tp, x)
	if y.Value.Rows != 5 || y.Value.Cols != 2 {
		t.Fatalf("output shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
}

func TestLinearLearnsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 2, 2)
	opt := autodiff.NewAdam(0.05, l.Params())
	for i := 0; i < 400; i++ {
		tp := autodiff.NewTape()
		x := autodiff.Constant(tensor.NewRandom(rng, 8, 2, 1))
		loss := tp.MSE(l.Apply(tp, x), x.Value)
		tp.Backward(loss)
		opt.Step()
	}
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 8, 2, 1))
	loss := tp.MSE(l.Apply(tp, x), x.Value)
	if loss.Value.Data[0] > 1e-3 {
		t.Fatalf("linear did not learn identity: loss %v", loss.Value.Data[0])
	}
}

func TestGCNConvMixesNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewGCNConv(rng, 2, 2)
	if c.Out() != 2 || len(c.Params()) != 2 {
		t.Fatal("gcn metadata wrong")
	}
	tp := autodiff.NewTape()
	x := tensor.New(3, 2)
	x.Set(0, 0, 1) // only node 0 has signal
	y := c.Apply(tp, adj3(), autodiff.Constant(x))
	// Node 1 is adjacent to 0, so it must receive nonzero output; node 2 is
	// 2 hops away and must only see the bias.
	biasOnly := c.lin.B.Value
	row2 := y.Value.Row(2)
	for j := range row2 {
		if math.Abs(row2[j]-biasOnly.Data[j]) > 1e-12 {
			t.Fatal("2-hop node influenced by single conv")
		}
	}
	row1 := y.Value.Row(1)
	influenced := false
	for j := range row1 {
		if math.Abs(row1[j]-biasOnly.Data[j]) > 1e-9 {
			influenced = true
		}
	}
	if !influenced {
		t.Fatal("neighbor not influenced by conv")
	}
}

func TestDiffusionConvParamsAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewDiffusionConv(rng, 3, 5, 2)
	if c.Out() != 5 {
		t.Fatal("out dim wrong")
	}
	if len(c.Params()) != 2*(2+1)+1 {
		t.Fatalf("param count %d", len(c.Params()))
	}
	fwd := tensor.Identity(4)
	rev := tensor.Identity(4)
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 4, 3, 1))
	y := c.Apply(tp, fwd, rev, x)
	if y.Value.Rows != 4 || y.Value.Cols != 5 {
		t.Fatalf("shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
}

func TestDiffusionConvGradientFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewDiffusionConv(rng, 2, 2, 2)
	fwd := adj3()
	rev := adj3()
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 3, 2, 1))
	loss := tp.MSE(c.Apply(tp, fwd, rev, x), tensor.New(3, 2))
	tp.Backward(loss)
	for i, p := range c.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d got no gradient", i)
		}
	}
}

func TestMLPShapesAndLearning(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, 2, 8, 1)
	if m.Out() != 1 {
		t.Fatal("out wrong")
	}
	// Learn XOR-ish function: y = x0*x1 on {-1,1}^2.
	xs := tensor.FromSlice(4, 2, []float64{-1, -1, -1, 1, 1, -1, 1, 1})
	ys := tensor.FromSlice(4, 1, []float64{1, -1, -1, 1})
	opt := autodiff.NewAdam(0.05, m.Params())
	var last float64
	for i := 0; i < 1500; i++ {
		tp := autodiff.NewTape()
		loss := tp.MSE(m.Apply(tp, autodiff.Constant(xs)), ys)
		tp.Backward(loss)
		opt.Step()
		last = loss.Value.Data[0]
	}
	if last > 0.05 {
		t.Fatalf("MLP failed to learn XOR: loss %v", last)
	}
}

func TestMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(rand.New(rand.NewSource(1)), 4)
}

func TestGRUCellStepAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewGRUCell(rng, 3, 4)
	if c.Hidden() != 4 || len(c.Params()) != 6 {
		t.Fatal("gru metadata wrong")
	}
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 2, 3, 1))
	h := autodiff.Constant(ZeroState(2, 4))
	h2 := c.Apply(tp, x, h)
	if h2.Value.Rows != 2 || h2.Value.Cols != 4 {
		t.Fatalf("shape %dx%d", h2.Value.Rows, h2.Value.Cols)
	}
	// Outputs bounded: GRU output is a convex combination of h (0) and tanh.
	if h2.Value.MaxAbs() > 1 {
		t.Fatal("GRU output out of range")
	}
}

func TestGRUCellLearnsToRemember(t *testing.T) {
	// Train a GRU (1 step) to copy its input to hidden state.
	rng := rand.New(rand.NewSource(8))
	c := NewGRUCell(rng, 1, 1)
	opt := autodiff.NewAdam(0.05, c.Params())
	var last float64
	for i := 0; i < 800; i++ {
		tp := autodiff.NewTape()
		x := tensor.FromSlice(4, 1, []float64{0.9, -0.9, 0.5, -0.5})
		h := autodiff.Constant(ZeroState(4, 1))
		out := c.Apply(tp, autodiff.Constant(x), h)
		loss := tp.MSE(out, x)
		tp.Backward(loss)
		opt.Step()
		last = loss.Value.Data[0]
	}
	if last > 0.02 {
		t.Fatalf("GRU failed to learn copy: loss %v", last)
	}
}

func TestLSTMCellStep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewLSTMCell(rng, 2, 3)
	if c.Hidden() != 3 || len(c.Params()) != 8 {
		t.Fatal("lstm metadata wrong")
	}
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 2, 2, 1))
	h := autodiff.Constant(ZeroState(2, 3))
	cell := autodiff.Constant(ZeroState(2, 3))
	h2, c2 := c.Apply(tp, x, h, cell)
	if h2.Value.Rows != 2 || c2.Value.Rows != 2 {
		t.Fatal("shapes wrong")
	}
	if h2.Value.MaxAbs() > 1 {
		t.Fatal("LSTM hidden out of range")
	}
}

func TestConvGRUCell(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	adj := adj3()
	cell := NewConvGRUCell(2, func() Module { return NewGCNConv(rng, 3+2, 2) })
	if len(cell.Params()) != 6 {
		t.Fatalf("param count %d", len(cell.Params()))
	}
	tp := autodiff.NewTape()
	convFn := func(m Module, x *autodiff.Node) *autodiff.Node {
		return m.(*GCNConv).Apply(tp, adj, x)
	}
	x := autodiff.Constant(tensor.NewRandom(rng, 3, 3, 1))
	h := autodiff.Constant(ZeroState(3, 2))
	h2 := cell.Apply(tp, convFn, x, h)
	if h2.Value.Rows != 3 || h2.Value.Cols != 2 {
		t.Fatal("shape wrong")
	}
	loss := tp.MSE(h2, tensor.New(3, 2))
	tp.Backward(loss)
	for i, p := range cell.Params() {
		if p.Grad == nil {
			t.Fatalf("conv-GRU param %d got no gradient", i)
		}
	}
}

func TestConvLSTMCell(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adj := adj3()
	cell := NewConvLSTMCell(2, func() Module { return NewGCNConv(rng, 1+2, 2) })
	if len(cell.Params()) != 8 {
		t.Fatalf("param count %d", len(cell.Params()))
	}
	tp := autodiff.NewTape()
	convFn := func(m Module, x *autodiff.Node) *autodiff.Node {
		return m.(*GCNConv).Apply(tp, adj, x)
	}
	x := autodiff.Constant(tensor.NewRandom(rng, 3, 1, 1))
	h := autodiff.Constant(ZeroState(3, 2))
	c := autodiff.Constant(ZeroState(3, 2))
	h2, c2 := cell.Apply(tp, convFn, x, h, c)
	loss := tp.MSE(tp.Add(h2, c2), tensor.New(3, 2))
	tp.Backward(loss)
	for i, p := range cell.Params() {
		if p.Grad == nil {
			t.Fatalf("conv-LSTM param %d got no gradient", i)
		}
	}
}

func TestCollectParams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewLinear(rng, 1, 1)
	b := NewLinear(rng, 1, 1)
	if got := len(CollectParams(a, b)); got != 4 {
		t.Fatalf("CollectParams = %d", got)
	}
}

func TestRGCNConvShapesAndGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := NewRGCNConv(rng, 3, 4, 2)
	if c.Out() != 4 || c.Relations() != 2 {
		t.Fatal("metadata wrong")
	}
	if len(c.Params()) != 1+2+1 {
		t.Fatalf("param count %d", len(c.Params()))
	}
	typed := []*tensor.CSR{adj3(), adj3()}
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 3, 3, 1))
	y := c.Apply(tp, typed, x)
	if y.Value.Rows != 3 || y.Value.Cols != 4 {
		t.Fatalf("shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
	loss := tp.MSE(y, tensor.New(3, 4))
	tp.Backward(loss)
	for i, p := range c.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d detached", i)
		}
	}
}

func TestRGCNConvSkipsMissingRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := NewRGCNConv(rng, 2, 2, 3)
	// Only one adjacency available; empty second one; third missing.
	empty := tensor.NewCSR(3, 3, nil)
	tp := autodiff.NewTape()
	x := autodiff.Constant(tensor.NewRandom(rng, 3, 2, 1))
	y := c.Apply(tp, []*tensor.CSR{adj3(), empty}, x)
	if y.Value.Rows != 3 {
		t.Fatal("shape wrong with partial relations")
	}
}
