// Package serve implements the query admission queue for batched predictive
// serving: callers submit small groups of queries from many goroutines, the
// batcher coalesces them into micro-batches — flushing when B queries have
// accumulated or T has elapsed since the first, whichever comes first — and
// each batch is answered by one shared forward pass (see query.AnswerBatch).
// Batches run on their own goroutines, so under load multiple batches are in
// flight concurrently: the answer function must be safe for concurrent use
// (it is, when it reads an immutable engine QuerySnapshot).
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"streamgnn/internal/obs"
	"streamgnn/internal/query"
)

// Answerer answers one micro-batch of queries, returning answers in request
// order (one per request). It is called from batch goroutines concurrently.
type Answerer func(reqs []query.Request) []query.Answer

// Config sets the micro-batching knobs.
type Config struct {
	// MaxBatch is B: a flush triggers as soon as this many queries are
	// pending. Default 64.
	MaxBatch int
	// MaxWait is T: a flush triggers this long after the first query of a
	// batch was admitted, even if the batch is short. Default 2ms.
	MaxWait time.Duration
}

func (c Config) fill() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	return c
}

// submission is one caller's group of queries awaiting a batch.
type submission struct {
	reqs []query.Request
	out  chan []query.Answer
	enq  time.Time
}

// Batcher is the admission queue. Submit is safe from any number of
// goroutines; a nil *Batcher is not usable.
type Batcher struct {
	cfg    Config
	answer Answerer

	mu      sync.Mutex
	pending []submission
	npend   int // queries (not submissions) pending
	gen     uint64
	timer   *time.Timer
	closed  bool

	wg    sync.WaitGroup // in-flight batch goroutines
	depth atomic.Int64   // queries admitted but not yet answered

	queries obs.Counter
	batches obs.Counter
	latency *obs.Histogram // per-query admission-to-answer latency
	sizes   *obs.Histogram // flushed batch sizes, in queries
}

// NewBatcher returns a running batcher over the answer function.
func NewBatcher(cfg Config, answer Answerer) *Batcher {
	return &Batcher{
		cfg:     cfg.fill(),
		answer:  answer,
		latency: obs.NewHistogram(obs.DefaultLatencyBuckets()),
		sizes:   obs.NewHistogram(obs.BatchSizeBuckets()),
	}
}

// Submit admits a group of queries and blocks until their batch is answered,
// returning the answers in request order. Returns nil after Close (or for an
// empty group).
func (b *Batcher) Submit(reqs []query.Request) []query.Answer {
	if len(reqs) == 0 {
		return nil
	}
	s := submission{reqs: reqs, out: make(chan []query.Answer, 1), enq: time.Now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.depth.Add(int64(len(reqs)))
	wasEmpty := len(b.pending) == 0
	b.pending = append(b.pending, s)
	b.npend += len(reqs)
	if b.npend >= b.cfg.MaxBatch {
		batch := b.take()
		b.mu.Unlock()
		b.run(batch)
	} else {
		if wasEmpty {
			b.armTimer()
		}
		b.mu.Unlock()
	}
	return <-s.out
}

// armTimer schedules the T-ms flush for the batch that just opened. Called
// with mu held. The generation guard keeps a stale timer — one whose batch
// was already flushed by size — from flushing the next batch early.
func (b *Batcher) armTimer() {
	gen := b.gen
	b.timer = time.AfterFunc(b.cfg.MaxWait, func() { b.flushGen(gen) })
}

// take claims the pending batch and resets admission state. Called with mu
// held.
func (b *Batcher) take() []submission {
	batch := b.pending
	b.pending = nil
	b.npend = 0
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushGen is the timer path: flush only if the batch the timer was armed
// for is still the pending one.
func (b *Batcher) flushGen(gen uint64) {
	b.mu.Lock()
	if b.closed || gen != b.gen {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.mu.Unlock()
	b.run(batch)
}

// run answers one flushed batch on its own goroutine and distributes the
// answer slices back to the submitters. It must never reacquire b.mu (both
// callers flush after unlocking, and a lock here would serialize in-flight
// batches) or reach the engine's step loop.
//
//streamlint:lockfree
func (b *Batcher) run(batch []submission) {
	if len(batch) == 0 {
		return
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		total := 0
		for _, s := range batch {
			total += len(s.reqs)
		}
		reqs := make([]query.Request, 0, total)
		for _, s := range batch {
			reqs = append(reqs, s.reqs...)
		}
		answers := b.answer(reqs)
		b.batches.Inc()
		b.queries.Add(int64(total))
		b.sizes.Observe(float64(total))
		off := 0
		for _, s := range batch {
			if answers != nil && len(answers) >= off+len(s.reqs) {
				s.out <- answers[off : off+len(s.reqs)]
			} else {
				s.out <- nil
			}
			off += len(s.reqs)
			lat := time.Since(s.enq).Seconds()
			for range s.reqs {
				b.latency.Observe(lat)
			}
			b.depth.Add(-int64(len(s.reqs)))
		}
	}()
}

// Close flushes any pending queries, waits for in-flight batches to finish,
// and makes further Submits return nil. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	b.run(batch)
	b.wg.Wait()
}

// QueueDepth returns the number of queries admitted but not yet answered
// (the admission-queue depth gauge).
func (b *Batcher) QueueDepth() int64 { return b.depth.Load() }

// Queries returns the total queries answered.
func (b *Batcher) Queries() int64 { return b.queries.Value() }

// Batches returns the total micro-batches flushed.
func (b *Batcher) Batches() int64 { return b.batches.Value() }

// LatencySnapshot returns the per-query admission-to-answer latency
// distribution (seconds).
func (b *Batcher) LatencySnapshot() obs.Snapshot { return b.latency.Snapshot() }

// BatchSizeSnapshot returns the distribution of flushed batch sizes, in
// queries per batch.
func (b *Batcher) BatchSizeSnapshot() obs.Snapshot { return b.sizes.Snapshot() }
