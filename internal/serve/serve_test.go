package serve

import (
	"sync"
	"testing"
	"time"

	"streamgnn/internal/query"
)

// echoAnswerer answers each request with its anchor as the score, so tests
// can verify that every submitter got exactly its own slice back.
func echoAnswerer(reqs []query.Request) []query.Answer {
	answers := make([]query.Answer, len(reqs))
	for i, r := range reqs {
		answers[i] = query.Answer{Score: float64(r.Anchor), OK: true}
	}
	return answers
}

func eventReq(anchor int) query.Request {
	return query.Request{Kind: query.KindEvent, Anchor: anchor}
}

func TestFlushOnBatchSize(t *testing.T) {
	// MaxWait is effectively infinite: only the size trigger can flush, so
	// the four single-query submissions must coalesce into exactly one batch.
	b := NewBatcher(Config{MaxBatch: 4, MaxWait: time.Hour}, echoAnswerer)
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := b.Submit([]query.Request{eventReq(i)})
			if len(got) != 1 || got[0].Score != float64(i) {
				t.Errorf("submitter %d got %+v", i, got)
			}
		}(i)
	}
	wg.Wait()
	if b.Batches() != 1 || b.Queries() != 4 {
		t.Fatalf("batches=%d queries=%d, want 1 and 4", b.Batches(), b.Queries())
	}
	if b.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after drain", b.QueueDepth())
	}
	if s := b.BatchSizeSnapshot(); s.Count != 1 || s.Sum != 4 {
		t.Fatalf("batch-size histogram count=%d sum=%v", s.Count, s.Sum)
	}
	if s := b.LatencySnapshot(); s.Count != 4 {
		t.Fatalf("latency histogram count=%d, want 4", s.Count)
	}
}

func TestFlushOnTimer(t *testing.T) {
	// The batch never reaches MaxBatch, so only the T trigger can flush it.
	b := NewBatcher(Config{MaxBatch: 1 << 20, MaxWait: 5 * time.Millisecond}, echoAnswerer)
	defer b.Close()
	got := b.Submit([]query.Request{eventReq(3), eventReq(9)})
	if len(got) != 2 || got[0].Score != 3 || got[1].Score != 9 {
		t.Fatalf("timer flush answers = %+v", got)
	}
	if b.Batches() != 1 {
		t.Fatalf("batches = %d, want 1", b.Batches())
	}
}

func TestAnswersKeepSubmissionOrder(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 8, MaxWait: time.Millisecond}, echoAnswerer)
	defer b.Close()
	reqs := []query.Request{eventReq(5), eventReq(1), eventReq(8)}
	got := b.Submit(reqs)
	if len(got) != len(reqs) {
		t.Fatalf("answers len %d", len(got))
	}
	for i, r := range reqs {
		if got[i].Score != float64(r.Anchor) {
			t.Fatalf("answer %d = %+v, want score %d", i, got[i], r.Anchor)
		}
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 8, MaxWait: 100 * time.Microsecond}, echoAnswerer)
	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := c*perClient + i
				reqs := []query.Request{eventReq(id), eventReq(id + 1)}
				got := b.Submit(reqs)
				if len(got) != 2 || got[0].Score != float64(id) || got[1].Score != float64(id+1) {
					t.Errorf("client %d submit %d got %+v", c, i, got)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.Close()
	if want := int64(clients * perClient * 2); b.Queries() != want {
		t.Fatalf("queries = %d, want %d", b.Queries(), want)
	}
	if b.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after close", b.QueueDepth())
	}
	// Coalescing happened at all: fewer batches than submissions.
	if b.Batches() >= int64(clients*perClient) {
		t.Fatalf("no coalescing: %d batches for %d submissions", b.Batches(), clients*perClient)
	}
}

func TestCloseFlushesPendingAndRejectsNew(t *testing.T) {
	b := NewBatcher(Config{MaxBatch: 1 << 20, MaxWait: time.Hour}, echoAnswerer)
	done := make(chan []query.Answer, 1)
	go func() { done <- b.Submit([]query.Request{eventReq(7)}) }()
	// Wait for the submission to be admitted, then close: the straggler must
	// be flushed, not dropped.
	for b.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if got := <-done; len(got) != 1 || got[0].Score != 7 {
		t.Fatalf("straggler answer = %+v", got)
	}
	if got := b.Submit([]query.Request{eventReq(1)}); got != nil {
		t.Fatalf("submit after close = %+v, want nil", got)
	}
	b.Close() // idempotent
}

func TestEmptySubmitAndShortAnswerer(t *testing.T) {
	b := NewBatcher(Config{}, echoAnswerer)
	if got := b.Submit(nil); got != nil {
		t.Fatalf("empty submit = %+v", got)
	}
	b.Close()
	// An answerer returning too few answers must yield nil, not panic.
	short := NewBatcher(Config{MaxBatch: 1}, func(reqs []query.Request) []query.Answer { return nil })
	defer short.Close()
	if got := short.Submit([]query.Request{eventReq(0)}); got != nil {
		t.Fatalf("short answerer = %+v, want nil", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.fill()
	if c.MaxBatch != 64 || c.MaxWait != 2*time.Millisecond {
		t.Fatalf("defaults = %+v", c)
	}
}
