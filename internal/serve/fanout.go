package serve

import (
	"sync"

	"streamgnn/internal/query"
)

// Router decides where one query is answered: an index into the fan-out's
// remote answerers, or -1 for the local one. It is called from batch
// goroutines and must be safe for concurrent use.
type Router func(req query.Request) int

// NewFanout composes an Answerer that splits each micro-batch between the
// local answerer and per-replica remote answerers (cluster mode: one per
// shard-replica serving mirror), reassembling the answers in request order.
// Remote slices run concurrently with the local slice. A remote that fails —
// returns nil, or the wrong number of answers — has its slice re-answered
// locally, so fan-out can only accelerate a batch, never fail it or change
// an answer: the local answerer reads the same serving snapshot the replicas
// mirror.
func NewFanout(local Answerer, route Router, remotes []Answerer) Answerer {
	if len(remotes) == 0 || route == nil {
		return local
	}
	return func(reqs []query.Request) []query.Answer {
		localIdx := make([]int, 0, len(reqs))
		remoteIdx := make([][]int, len(remotes))
		for i, r := range reqs {
			if t := route(r); t >= 0 && t < len(remotes) && remotes[t] != nil {
				remoteIdx[t] = append(remoteIdx[t], i)
			} else {
				localIdx = append(localIdx, i)
			}
		}
		answers := make([]query.Answer, len(reqs))
		scatter := func(idx []int, res []query.Answer) {
			for k, i := range idx {
				answers[i] = res[k]
			}
		}
		gather := func(idx []int) []query.Request {
			sub := make([]query.Request, len(idx))
			for k, i := range idx {
				sub[k] = reqs[i]
			}
			return sub
		}

		remoteRes := make([][]query.Answer, len(remotes))
		var wg sync.WaitGroup
		for t := range remotes {
			if len(remoteIdx[t]) == 0 {
				continue
			}
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				remoteRes[t] = remotes[t](gather(remoteIdx[t]))
			}(t)
		}
		if len(localIdx) > 0 {
			if res := local(gather(localIdx)); len(res) == len(localIdx) {
				scatter(localIdx, res)
			}
		}
		wg.Wait()

		var retry []int
		for t := range remotes {
			if len(remoteIdx[t]) == 0 {
				continue
			}
			if len(remoteRes[t]) == len(remoteIdx[t]) {
				scatter(remoteIdx[t], remoteRes[t])
			} else {
				retry = append(retry, remoteIdx[t]...)
			}
		}
		if len(retry) > 0 {
			if res := local(gather(retry)); len(res) == len(retry) {
				scatter(retry, res)
			}
		}
		return answers
	}
}
