package serve

import (
	"sync/atomic"
	"testing"

	"streamgnn/internal/query"
)

func scoreAnswerer(base float64, calls *atomic.Int64) Answerer {
	return func(reqs []query.Request) []query.Answer {
		if calls != nil {
			calls.Add(1)
		}
		out := make([]query.Answer, len(reqs))
		for i, r := range reqs {
			out[i] = query.Answer{Score: base + float64(r.Anchor), OK: true}
		}
		return out
	}
}

func TestFanoutSplitsAndReassembles(t *testing.T) {
	var localCalls atomic.Int64
	local := scoreAnswerer(1000, &localCalls)
	remotes := []Answerer{scoreAnswerer(0, nil), scoreAnswerer(100, nil)}
	route := func(r query.Request) int {
		if r.Kind != query.KindEvent {
			return -1
		}
		return r.Anchor % 2
	}
	fan := NewFanout(local, route, remotes)

	reqs := []query.Request{
		{Kind: query.KindEvent, Anchor: 0},                // remote 0
		{Kind: query.KindEvent, Anchor: 1},                // remote 1
		{Kind: query.KindLink, Src: 1, Dst: 2, Anchor: 7}, // local
		{Kind: query.KindEvent, Anchor: 2},                // remote 0
	}
	got := fan(reqs)
	want := []float64{0, 101, 1007, 2}
	if len(got) != len(want) {
		t.Fatalf("got %d answers, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Score != w {
			t.Fatalf("answer %d score %v, want %v (order not preserved)", i, got[i].Score, w)
		}
	}
	if localCalls.Load() != 1 {
		t.Fatalf("local answered %d slices, want 1", localCalls.Load())
	}
}

// A failing remote must not fail (or reorder) the batch: its slice is
// re-answered locally.
func TestFanoutLocalFallback(t *testing.T) {
	var localCalls atomic.Int64
	local := scoreAnswerer(1000, &localCalls)
	dead := func(reqs []query.Request) []query.Answer { return nil }
	short := func(reqs []query.Request) []query.Answer { return make([]query.Answer, len(reqs)-1) }
	fan := NewFanout(local, func(r query.Request) int { return r.Anchor % 2 }, []Answerer{dead, short})

	reqs := []query.Request{
		{Kind: query.KindEvent, Anchor: 0},
		{Kind: query.KindEvent, Anchor: 1},
		{Kind: query.KindEvent, Anchor: 2},
		{Kind: query.KindEvent, Anchor: 3},
	}
	got := fan(reqs)
	for i, r := range reqs {
		if want := 1000 + float64(r.Anchor); got[i].Score != want {
			t.Fatalf("answer %d score %v, want local %v", i, got[i].Score, want)
		}
	}
}

// With no remotes, NewFanout is the local answerer — no wrapper overhead in
// single-process mode.
func TestFanoutDegeneratesToLocal(t *testing.T) {
	local := scoreAnswerer(0, nil)
	fan := NewFanout(local, nil, nil)
	got := fan([]query.Request{{Kind: query.KindEvent, Anchor: 4}})
	if len(got) != 1 || got[0].Score != 4 {
		t.Fatalf("degenerate fan-out answered %+v", got)
	}
}
