package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism for the two dominant kernels (MatMul, SpMM) is opt-in and
// deterministic: work is sharded by row, so results are bit-identical to the
// serial path regardless of worker count. Off by default — at the library's
// typical partition sizes the goroutine overhead usually exceeds the win;
// enable it for large full-graph workloads (see BenchmarkParallelKernels).

var parWorkers int64 = 1

// SetParallelism sets the worker count for large matrix kernels. n <= 1
// restores serial execution; n > NumCPU is clamped.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	if max := runtime.NumCPU(); n > max {
		n = max
	}
	atomic.StoreInt64(&parWorkers, int64(n))
}

// Parallelism returns the current kernel worker count.
func Parallelism() int { return int(atomic.LoadInt64(&parWorkers)) }

// parThreshold is the minimum per-worker row count worth a goroutine.
const parThreshold = 64

// parRange runs f over [0, n) shards. Serial when parallelism is off or the
// problem is too small.
func parRange(n int, f func(lo, hi int)) {
	workers := Parallelism()
	if workers <= 1 || n < 2*parThreshold {
		f(0, n)
		return
	}
	if n/workers < parThreshold {
		workers = n / parThreshold
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
