package tensor

import "testing"

func TestSizeClass(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, -1}, {-3, -1},
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 26, 26}, {1<<26 + 1, -1},
	}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.want {
			t.Fatalf("sizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestRecycledBuffersComeBackZeroed(t *testing.T) {
	EnablePooling(true)
	defer EnablePooling(false)
	m := New(3, 5)
	m.Fill(7)
	Recycle(m)
	if m.Data != nil {
		t.Fatal("Recycle left the matrix attached to recycled storage")
	}
	// Next allocation of a same-class size may reuse the dirtied buffer; it
	// must still read as all zeros.
	fresh := New(4, 4) // 16 floats, same class as 15
	for i, v := range fresh.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestRecycleSkipsForeignStorage(t *testing.T) {
	EnablePooling(true)
	defer EnablePooling(false)
	backing := make([]float64, 10) // cap 10: not an exact size class
	m := FromSlice(2, 5, backing)
	Recycle(m) // must not pool it, and must not panic
	if m.Data != nil {
		t.Fatal("Recycle left foreign storage attached")
	}
	backing[0] = 1 // still ours: the pool must never hand this slice out
}

func TestRecycleNoOpWhenDisabled(t *testing.T) {
	EnablePooling(false)
	m := New(2, 2)
	Recycle(m)
	if m.Data == nil {
		t.Fatal("Recycle detached storage with pooling off")
	}
}

// TestMeterIdenticalWithPooling runs the same allocation workload with
// pooling off and on; the meter must report identical totals and peaks — the
// acceptance criterion that pooling never changes metered accounting.
func TestMeterIdenticalWithPooling(t *testing.T) {
	run := func(pool bool) (total, peak int64) {
		EnablePooling(pool)
		defer EnablePooling(false)
		EnableMeter(true)
		defer EnableMeter(false)
		ResetMeter()
		for round := 0; round < 4; round++ {
			a := New(8, 8)
			b := New(8, 8)
			a.Fill(1)
			b.Fill(2)
			c := MatMul(a, b)
			Recycle(a)
			Recycle(b)
			Recycle(c)
		}
		return TotalFloats(), PeakFloats()
	}
	t1, p1 := run(false)
	t2, p2 := run(true)
	if t1 != t2 || p1 != p2 {
		t.Fatalf("meter diverged: pooling off (%d, %d) vs on (%d, %d)", t1, p1, t2, p2)
	}
	if t1 == 0 || p1 == 0 {
		t.Fatal("meter recorded nothing")
	}
}
