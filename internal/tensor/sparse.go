package tensor

import "fmt"

// CSR is a compressed-sparse-row matrix with float64 values. It is used for
// (normalized) graph adjacency matrices; values do not participate in
// automatic differentiation (the adjacency is a constant of each snapshot).
type CSR struct {
	NRows, NCols int
	RowPtr       []int
	ColIdx       []int
	Val          []float64
}

// NewCSR builds a CSR matrix from per-row (col, val) entry lists. Entries
// within a row keep their given order; duplicate columns are allowed and sum
// under multiplication.
func NewCSR(nrows, ncols int, entries [][]CSREntry) *CSR {
	c := &CSR{NRows: nrows, NCols: ncols, RowPtr: make([]int, nrows+1)}
	nnz := 0
	for r := 0; r < nrows; r++ {
		if r < len(entries) {
			nnz += len(entries[r])
		}
		c.RowPtr[r+1] = nnz
	}
	c.ColIdx = make([]int, 0, nnz)
	c.Val = make([]float64, 0, nnz)
	for r := 0; r < nrows && r < len(entries); r++ {
		for _, e := range entries[r] {
			if e.Col < 0 || e.Col >= ncols {
				panic(fmt.Sprintf("tensor: CSR column %d out of range [0,%d)", e.Col, ncols))
			}
			c.ColIdx = append(c.ColIdx, e.Col)
			c.Val = append(c.Val, e.Val)
		}
	}
	return c
}

// CSREntry is one stored (column, value) pair of a CSR row.
type CSREntry struct {
	Col int
	Val float64
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// RowNNZ returns the number of stored entries in row r.
func (c *CSR) RowNNZ(r int) int { return c.RowPtr[r+1] - c.RowPtr[r] }

// SpMM returns c·x for dense x.
func SpMM(c *CSR, x *Matrix) *Matrix {
	if c.NCols != x.Rows {
		panic(fmt.Sprintf("tensor: SpMM inner mismatch %dx%d · %dx%d", c.NRows, c.NCols, x.Rows, x.Cols))
	}
	out := New(c.NRows, x.Cols)
	if Parallelism() <= 1 || c.NRows < 2*parThreshold {
		// Serial fast path: avoids heap-allocating the shard closure.
		spMMRange(c, x, out, 0, c.NRows)
		return out
	}
	parRange(c.NRows, func(lo, hi int) { spMMRange(c, x, out, lo, hi) })
	return out
}

func spMMRange(c *CSR, x, out *Matrix, lo, hi int) {
	for r := lo; r < hi; r++ {
		orow := out.Row(r)
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			v := c.Val[p]
			xrow := x.Row(c.ColIdx[p])
			for j, xv := range xrow {
				orow[j] += v * xv
			}
		}
	}
}

// SpMMTrans returns cᵀ·x for dense x (used for gradients through SpMM).
func SpMMTrans(c *CSR, x *Matrix) *Matrix {
	if c.NRows != x.Rows {
		panic(fmt.Sprintf("tensor: SpMMTrans inner mismatch (%dx%d)ᵀ · %dx%d", c.NRows, c.NCols, x.Rows, x.Cols))
	}
	out := New(c.NCols, x.Cols)
	for r := 0; r < c.NRows; r++ {
		xrow := x.Row(r)
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			v := c.Val[p]
			orow := out.Row(c.ColIdx[p])
			for j, xv := range xrow {
				orow[j] += v * xv
			}
		}
	}
	return out
}

// Dense converts c to a dense matrix (testing helper; duplicates sum).
func (c *CSR) Dense() *Matrix {
	out := New(c.NRows, c.NCols)
	for r := 0; r < c.NRows; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			out.Data[r*c.NCols+c.ColIdx[p]] += c.Val[p]
		}
	}
	return out
}

// Identity returns the n×n identity as CSR.
func Identity(n int) *CSR {
	entries := make([][]CSREntry, n)
	for i := range entries {
		entries[i] = []CSREntry{{Col: i, Val: 1}}
	}
	return NewCSR(n, n, entries)
}
