package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Buffer pooling for tape intermediates. Training builds and discards a full
// set of matrices per partition; recycling those buffers through a sized-class
// sync.Pool removes the dominant source of GC pressure on the hot path.
//
// Pooling is orthogonal to the allocation meter: New always records the
// logical allocation, whether the backing slice came from the pool or from
// make, so metered working-set numbers stay comparable with pooling on or off.

var poolEnabled int32

// 1<<poolClasses is the largest pooled buffer (2^26 floats = 512 MB); larger
// requests always fall through to make.
const poolClasses = 27

// pools[c] holds *[]float64 with cap exactly 1<<c; contents are arbitrary
// (grab zeroes the prefix it hands out).
var pools [poolClasses]sync.Pool

// rings[c] is a small bounded stack in front of pools[c]. sync.Pool is
// drained on every GC cycle, so on an allocation-heavy training step the hot
// buffer shapes are re-made from scratch right after each collection; the
// ring keeps that working set alive across GCs. Retention is bounded at
// ringFloats floats per class (larger classes hold proportionally fewer
// buffers, the largest none), and overflow still drains through the
// sync.Pool to the collector.
type classRing struct {
	mu sync.Mutex
	// buf stores slice headers by value: pushing a buffer must not allocate
	// (boxing a header into a *[]float64 costs a heap object per Recycle).
	buf [][]float64
}

var rings [poolClasses]classRing

// ringFloats caps the floats a class ring may retain (1<<20 floats = 8 MB).
const ringFloats = 1 << 20

// ringCap returns the maximum buffers ring c may hold.
func ringCap(c int) int {
	n := ringFloats >> uint(c)
	if n > 64 {
		n = 64
	}
	return n
}

// ringGet pops a buffer from ring c, or nil if the ring is empty.
//
//streamlint:lockfree-exempt bounded O(1) sized-class ring pop — a few pointer moves under a per-class mutex, never the engine step lock
func ringGet(c int) []float64 {
	r := &rings[c]
	r.mu.Lock()
	k := len(r.buf)
	if k == 0 {
		r.mu.Unlock()
		return nil
	}
	s := r.buf[k-1]
	r.buf[k-1] = nil
	r.buf = r.buf[:k-1]
	r.mu.Unlock()
	return s
}

// ringPut offers a buffer to ring c; returns false when the ring is full.
//
//streamlint:lockfree-exempt bounded O(1) sized-class ring push — a few pointer moves under a per-class mutex, never the engine step lock
func ringPut(c int, s []float64) bool {
	r := &rings[c]
	r.mu.Lock()
	if len(r.buf) >= ringCap(c) {
		r.mu.Unlock()
		return false
	}
	r.buf = append(r.buf, s)
	r.mu.Unlock()
	return true
}

// EnablePooling turns buffer recycling on or off process-wide. Off by
// default; safe to toggle at any time (outstanding buffers are simply
// garbage-collected).
func EnablePooling(on bool) {
	if on {
		atomic.StoreInt32(&poolEnabled, 1)
	} else {
		atomic.StoreInt32(&poolEnabled, 0)
	}
}

// PoolingEnabled reports whether buffer recycling is active.
func PoolingEnabled() bool { return atomic.LoadInt32(&poolEnabled) != 0 }

// sizeClass returns the pool class for n floats, or -1 if n is not poolable.
func sizeClass(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
	if c >= poolClasses {
		return -1
	}
	return c
}

// grab returns a zeroed length-n slice, drawn from the pool when possible.
func grab(n int) []float64 {
	if atomic.LoadInt32(&poolEnabled) != 0 {
		if c := sizeClass(n); c >= 0 {
			s := ringGet(c)
			if s == nil {
				if p, ok := pools[c].Get().(*[]float64); ok {
					s = *p
				}
			}
			if s != nil {
				s = s[:n]
				for i := range s {
					s[i] = 0
				}
				return s
			}
			return make([]float64, n, 1<<c)
		}
	}
	return make([]float64, n)
}

// grabUninit is grab without the zeroing pass: pooled buffers come back with
// arbitrary contents. Only for callers that write every element before any
// read (make-backed buffers are zeroed by the runtime regardless).
func grabUninit(n int) []float64 {
	if atomic.LoadInt32(&poolEnabled) != 0 {
		if c := sizeClass(n); c >= 0 {
			s := ringGet(c)
			if s == nil {
				if p, ok := pools[c].Get().(*[]float64); ok {
					s = *p
				}
			}
			if s != nil {
				return s[:n]
			}
			return make([]float64, n, 1<<c)
		}
	}
	return make([]float64, n)
}

// Recycle returns m's backing buffer to the pool and detaches it from m, so
// a stale reference to the matrix fails loudly instead of reading recycled
// data. Only buffers whose capacity is an exact size class are pooled;
// anything else (including matrices built with FromSlice over foreign
// storage) is left to the garbage collector. No-op when pooling is off.
func Recycle(m *Matrix) {
	if m == nil || atomic.LoadInt32(&poolEnabled) == 0 {
		return
	}
	s := m.Data
	m.Data = nil
	c := sizeClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		return
	}
	s = s[:cap(s)]
	if !ringPut(c, s) {
		pools[c].Put(&s)
	}
}
