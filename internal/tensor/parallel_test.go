package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

func TestSetParallelismClamps(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism = %d, want 1", Parallelism())
	}
	SetParallelism(1 << 20)
	if Parallelism() != runtime.NumCPU() {
		t.Fatalf("Parallelism = %d, want NumCPU", Parallelism())
	}
}

// Determinism: parallel kernels produce bit-identical results.
func TestParallelKernelsMatchSerial(t *testing.T) {
	defer SetParallelism(1)
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(rng, 300, 40, 1)
	b := NewRandom(rng, 40, 24, 1)
	c := randomCSR(rng, 300, 300, 0.02)
	x := NewRandom(rng, 300, 24, 1)
	// TransA shards over a's columns, TransB over a's rows: both dimensions
	// must cross 2*parThreshold for the parallel paths to engage.
	wideA := NewRandom(rng, 500, 3*parThreshold, 1)
	wideB := NewRandom(rng, 500, 48, 1)
	tallA := NewRandom(rng, 3*parThreshold, 48, 1)
	tallB := NewRandom(rng, 200, 48, 1)
	// Exact zeros exercise the skip branches in both TransA paths.
	for i := 0; i < len(wideA.Data); i += 7 {
		wideA.Data[i] = 0
	}

	SetParallelism(1)
	mmSerial := MatMul(a, b)
	spSerial := SpMM(c, x)
	taSerial := MatMulTransA(wideA, wideB)
	tbSerial := MatMulTransB(tallA, tallB)
	SetParallelism(4)
	mmPar := MatMul(a, b)
	spPar := SpMM(c, x)
	taPar := MatMulTransA(wideA, wideB)
	tbPar := MatMulTransB(tallA, tallB)
	if !mmSerial.Equal(mmPar) {
		t.Fatal("parallel MatMul differs from serial")
	}
	if !spSerial.Equal(spPar) {
		t.Fatal("parallel SpMM differs from serial")
	}
	if !taSerial.Equal(taPar) {
		t.Fatal("parallel MatMulTransA differs from serial")
	}
	if !tbSerial.Equal(tbPar) {
		t.Fatal("parallel MatMulTransB differs from serial")
	}
}

func TestParRangeCoversEverything(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	n := 1000
	hit := make([]int32, n)
	parRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Small problems stay serial but still cover the range.
	small := make([]int32, 10)
	parRange(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			small[i]++
		}
	})
	for i, h := range small {
		if h != 1 {
			t.Fatalf("small index %d visited %d times", i, h)
		}
	}
}

// BenchmarkParallelKernels shows when SetParallelism pays off.
func BenchmarkParallelKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := NewRandom(rng, 2000, 64, 1)
	w := NewRandom(rng, 64, 64, 1)
	wideA := NewRandom(rng, 2000, 256, 1)
	wideB := NewRandom(rng, 2000, 64, 1)
	tallB := NewRandom(rng, 500, 64, 1)
	for _, workers := range []int{1, 4} {
		b.Run(benchName("matmul", workers), func(b *testing.B) {
			SetParallelism(workers)
			defer SetParallelism(1)
			for i := 0; i < b.N; i++ {
				MatMul(a, w)
			}
		})
		b.Run(benchName("matmultransa", workers), func(b *testing.B) {
			SetParallelism(workers)
			defer SetParallelism(1)
			for i := 0; i < b.N; i++ {
				MatMulTransA(wideA, wideB)
			}
		})
		b.Run(benchName("matmultransb", workers), func(b *testing.B) {
			SetParallelism(workers)
			defer SetParallelism(1)
			for i := 0; i < b.N; i++ {
				MatMulTransB(a, tallB)
			}
		})
	}
}

func benchName(op string, workers int) string {
	if workers == 1 {
		return op + "/serial"
	}
	return op + "/parallel"
}
