package tensor

import "sync/atomic"

// The allocation meter counts float64 values allocated through New. It gives
// a deterministic, machine-independent proxy for the working set ("maximum
// memory consumption during training" in the paper): full-graph training
// materializes O(n·d) intermediates per layer, subgraph training only
// O(|G_v|·d), and the meter makes that difference directly observable.
//
// The meter is cumulative-with-high-watermark over explicit epochs: call
// ResetMeter at the start of a measured region; PeakFloats reports the
// largest number of floats allocated by any single tensor since the reset,
// and TotalFloats the cumulative allocation volume.

var (
	meterEnabled int64 // non-zero when metering
	totalFloats  int64
	peakFloats   int64
)

// EnableMeter turns the allocation meter on or off. The meter is off by
// default so hot paths pay only one atomic load.
func EnableMeter(on bool) {
	if on {
		atomic.StoreInt64(&meterEnabled, 1)
	} else {
		atomic.StoreInt64(&meterEnabled, 0)
	}
}

// ResetMeter zeroes the cumulative and peak counters.
func ResetMeter() {
	atomic.StoreInt64(&totalFloats, 0)
	atomic.StoreInt64(&peakFloats, 0)
}

// TotalFloats returns the number of float64s allocated since the last reset.
func TotalFloats() int64 { return atomic.LoadInt64(&totalFloats) }

// PeakFloats returns the largest single-tensor allocation since the last
// reset, in float64s.
func PeakFloats() int64 { return atomic.LoadInt64(&peakFloats) }

// TotalBytes returns TotalFloats expressed in bytes.
func TotalBytes() int64 { return TotalFloats() * 8 }

func recordAlloc(n int) {
	if atomic.LoadInt64(&meterEnabled) == 0 || n == 0 {
		return
	}
	atomic.AddInt64(&totalFloats, int64(n))
	for {
		p := atomic.LoadInt64(&peakFloats)
		if int64(n) <= p || atomic.CompareAndSwapInt64(&peakFloats, p, int64(n)) {
			return
		}
	}
}
