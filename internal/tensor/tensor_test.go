package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row view does not share storage: %v", row)
	}
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("writing through Row view not visible")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(rng, 4, 4, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).AllClose(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !MatMul(id, a).AllClose(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewRandom(rng, 3, 5, 1)
	b := NewRandom(rng, 5, 4, 1)
	// a·b via MatMulTransB(a, bᵀ)
	bt := Transpose(b)
	if !MatMulTransB(a, bt).AllClose(MatMul(a, b), 1e-12) {
		t.Fatal("MatMulTransB inconsistent with MatMul")
	}
	// aᵀ·b via MatMulTransA
	c := NewRandom(rng, 3, 4, 1)
	if !MatMulTransA(a, c).AllClose(MatMul(Transpose(a), c), 1e-12) {
		t.Fatal("MatMulTransA inconsistent with MatMul")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewRandom(rng, r, c, 3)
		return Transpose(Transpose(m)).Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b); !got.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12})) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice(2, 2, []float64{4, 4, 4, 4})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromSlice(2, 2, []float64{5, 12, 21, 32})) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2); !got.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8})) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	got := AddRowVector(m, v)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !got.Equal(want) {
		t.Fatalf("AddRowVector = %v", got)
	}
}

func TestGatherScatterRows(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	g := GatherRows(m, []int{2, 0})
	if !g.Equal(FromSlice(2, 2, []float64{5, 6, 1, 2})) {
		t.Fatalf("GatherRows = %v", g)
	}
	dst := New(3, 2)
	ScatterRows(dst, g, []int{2, 0})
	if !dst.Equal(FromSlice(3, 2, []float64{1, 2, 0, 0, 5, 6})) {
		t.Fatalf("ScatterRows = %v", dst)
	}
}

func TestConcatSliceCols(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{9, 10})
	cat := ConcatCols(a, b)
	if !cat.Equal(FromSlice(2, 3, []float64{1, 2, 9, 3, 4, 10})) {
		t.Fatalf("ConcatCols = %v", cat)
	}
	if !SliceCols(cat, 0, 2).Equal(a) || !SliceCols(cat, 2, 3).Equal(b) {
		t.Fatal("SliceCols does not invert ConcatCols")
	}
}

func TestSumMeanNorms(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -2, 3, -4})
	if m.Sum() != -2 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != -0.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.Norm2()-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v", m.Norm2())
	}
}

func TestApplyAndClip(t *testing.T) {
	m := FromSlice(1, 3, []float64{-2, 0, 2})
	sq := Apply(m, func(v float64) float64 { return v * v })
	if !sq.Equal(FromSlice(1, 3, []float64{4, 0, 4})) {
		t.Fatalf("Apply = %v", sq)
	}
	ClipInPlace(m, 1)
	if !m.Equal(FromSlice(1, 3, []float64{-1, 0, 1})) {
		t.Fatalf("ClipInPlace = %v", m)
	}
}

func TestAddScaledInPlace(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 1})
	b := FromSlice(1, 2, []float64{2, 3})
	AddScaledInPlace(a, b, 0.5)
	if !a.Equal(FromSlice(1, 2, []float64{2, 2.5})) {
		t.Fatalf("AddScaledInPlace = %v", a)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Add(New(1, 2), New(2, 1))
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := NewRandom(rng, n, n, 1)
		b := NewRandom(rng, n, n, 1)
		c := NewRandom(rng, n, n, 1)
		return MatMul(MatMul(a, b), c).AllClose(MatMul(a, MatMul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Glorot(rng, 10, 20)
	bound := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if math.Abs(v) > bound {
			t.Fatalf("Glorot value %v out of bound %v", v, bound)
		}
	}
}

func TestMeter(t *testing.T) {
	EnableMeter(true)
	defer EnableMeter(false)
	ResetMeter()
	New(10, 10)
	New(3, 3)
	if TotalFloats() != 109 {
		t.Fatalf("TotalFloats = %d, want 109", TotalFloats())
	}
	if PeakFloats() != 100 {
		t.Fatalf("PeakFloats = %d, want 100", PeakFloats())
	}
	if TotalBytes() != 109*8 {
		t.Fatalf("TotalBytes = %d", TotalBytes())
	}
	ResetMeter()
	if TotalFloats() != 0 || PeakFloats() != 0 {
		t.Fatal("ResetMeter did not clear counters")
	}
}
