// Package tensor provides dense row-major float64 matrices and the small set
// of linear-algebra primitives the rest of the library is built on.
//
// The package also maintains a process-wide allocation meter (see meter.go)
// used by the benchmark harness to report the peak working-set size of a
// training strategy in a machine-independent way.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Matrices returned by New are backed
// by a single contiguous slice; Row returns views sharing that storage.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix. When pooling is enabled (see
// EnablePooling) the backing buffer may be drawn from the recycle pool; the
// allocation meter records the logical allocation either way.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	recordAlloc(rows * cols)
	return &Matrix{Rows: rows, Cols: cols, Data: grab(rows * cols)}
}

// newUninit returns a rows×cols matrix whose contents are arbitrary when the
// backing buffer comes from the recycle pool. Internal ops that write every
// output element before any read use it to skip New's zeroing pass;
// accumulating ops (MatMul, SpMM and friends) must use New.
func newUninit(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	recordAlloc(rows * cols)
	return &Matrix{Rows: rows, Cols: cols, Data: grabUninit(rows * cols)}
}

// FromSlice wraps data (row-major) in a rows×cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// NewRandom returns a rows×cols matrix with entries drawn uniformly from
// [-scale, scale] using rng. Glorot-style initialization passes
// scale = sqrt(6/(fanIn+fanOut)).
func NewRandom(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// Glorot returns a rows×cols matrix with Glorot/Xavier uniform initialization.
func Glorot(rng *rand.Rand, rows, cols int) *Matrix {
	return NewRandom(rng, rows, cols, math.Sqrt(6.0/float64(rows+cols)))
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r sharing the matrix storage.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := newUninit(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and o have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and o have identical shape and elementwise
// absolute differences no greater than tol.
func (m *Matrix) AllClose(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		s += " ["
		for r := 0; r < m.Rows; r++ {
			if r > 0 {
				s += "; "
			}
			for c := 0; c < m.Cols; c++ {
				if c > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(r, c))
			}
		}
		s += "]"
	}
	return s
}

func shapeCheck(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	if Parallelism() <= 1 || a.Rows < 2*parThreshold {
		// Serial fast path: calling matMulRange directly keeps the shard
		// closure (which escapes through parRange) off the heap.
		matMulRange(a, b, out, 0, a.Rows)
		return out
	}
	parRange(a.Rows, func(lo, hi int) { matMulRange(a, b, out, lo, hi) })
	return out
}

func matMulRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ. Like MatMul, large outputs are sharded over
// output rows across the kernel worker pool; each output element is written
// by exactly one worker with the same inner summation as the serial path,
// so results are bit-identical for every worker count.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := newUninit(a.Rows, b.Rows)
	if Parallelism() <= 1 || a.Rows < 2*parThreshold {
		matMulTransBRange(a, b, out, 0, a.Rows)
		return out
	}
	parRange(a.Rows, func(lo, hi int) { matMulTransBRange(a, b, out, lo, hi) })
	return out
}

func matMulTransBRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ·b. The parallel path shards over *output* rows
// (columns of a) rather than the shared k dimension: each worker owns its
// output rows outright and accumulates them in the same ascending-k order
// as the serial path, keeping results bit-identical for every worker count
// (a k-sharded reduction would reorder the floating-point sums). Narrow
// outputs — the hidden-dim gradients dominating training — stay on the
// serial k-outer path, which streams a and b once.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	if Parallelism() <= 1 || a.Cols < 2*parThreshold {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}
	parRange(a.Cols, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := newUninit(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*m.Rows+r] = v
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	shapeCheck("Add", a, b)
	out := newUninit(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Matrix) *Matrix {
	shapeCheck("Sub", a, b)
	out := newUninit(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Mul returns the Hadamard (elementwise) product a∘b.
func Mul(a, b *Matrix) *Matrix {
	shapeCheck("Mul", a, b)
	out := newUninit(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Scale returns s·m.
func Scale(m *Matrix, s float64) *Matrix {
	out := newUninit(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	shapeCheck("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// AddScaledInPlace adds s·b into a.
func AddScaledInPlace(a, b *Matrix, s float64) {
	shapeCheck("AddScaledInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
}

// AddRowVector returns m with the 1×cols row vector v added to every row.
func AddRowVector(m, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector needs 1x%d, got %dx%d", m.Cols, v.Rows, v.Cols))
	}
	out := newUninit(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		orow := out.Row(r)
		for c, x := range row {
			orow[c] = x + v.Data[c]
		}
	}
	return out
}

// Apply returns f applied elementwise to m.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	out := newUninit(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// GatherRows returns the matrix whose i-th row is m's rows[i]-th row.
func GatherRows(m *Matrix, rows []int) *Matrix {
	out := newUninit(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// ScatterRows copies src's rows into dst at the given destination indices.
func ScatterRows(dst, src *Matrix, rows []int) {
	if src.Rows != len(rows) || src.Cols != dst.Cols {
		panic(fmt.Sprintf("tensor: ScatterRows shape mismatch src %dx%d rows %d dst cols %d",
			src.Rows, src.Cols, len(rows), dst.Cols))
	}
	for i, r := range rows {
		copy(dst.Row(r), src.Row(i))
	}
}

// ConcatCols returns [a | b], the column-wise concatenation.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := newUninit(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// SliceCols returns the column range [from, to) of m as a new matrix.
func SliceCols(m *Matrix, from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", from, to, m.Cols))
	}
	out := newUninit(m.Rows, to-from)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[from:to])
	}
	return out
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ClipInPlace clamps every element of m to [-c, c].
func ClipInPlace(m *Matrix, c float64) {
	for i, v := range m.Data {
		if v > c {
			m.Data[i] = c
		} else if v < -c {
			m.Data[i] = -c
		}
	}
}
