package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(rng *rand.Rand, nrows, ncols int, density float64) *CSR {
	entries := make([][]CSREntry, nrows)
	for r := 0; r < nrows; r++ {
		for c := 0; c < ncols; c++ {
			if rng.Float64() < density {
				entries[r] = append(entries[r], CSREntry{Col: c, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(nrows, ncols, entries)
}

func TestCSRDenseRoundTrip(t *testing.T) {
	entries := [][]CSREntry{
		{{Col: 1, Val: 2}, {Col: 2, Val: 3}},
		{},
		{{Col: 0, Val: -1}},
	}
	c := NewCSR(3, 3, entries)
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	if c.RowNNZ(0) != 2 || c.RowNNZ(1) != 0 || c.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
	want := FromSlice(3, 3, []float64{0, 2, 3, 0, 0, 0, -1, 0, 0})
	if !c.Dense().Equal(want) {
		t.Fatalf("Dense = %v", c.Dense())
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, k := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(4)
		c := randomCSR(rng, n, m, 0.4)
		x := NewRandom(rng, m, k, 2)
		return SpMM(c, x).AllClose(MatMul(c.Dense(), x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMMTransMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, k := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(4)
		c := randomCSR(rng, n, m, 0.4)
		x := NewRandom(rng, n, k, 2)
		return SpMMTrans(c, x).AllClose(MatMul(Transpose(c.Dense()), x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := NewRandom(rng, 5, 3, 1)
	if !SpMM(Identity(5), x).AllClose(x, 1e-12) {
		t.Fatal("I·x != x")
	}
}

func TestCSRDuplicateColumnsSum(t *testing.T) {
	c := NewCSR(1, 2, [][]CSREntry{{{Col: 0, Val: 1}, {Col: 0, Val: 2}}})
	x := FromSlice(2, 1, []float64{10, 0})
	got := SpMM(c, x)
	if got.At(0, 0) != 30 {
		t.Fatalf("duplicate columns should sum: got %v", got.At(0, 0))
	}
}

func TestCSRColumnOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range column")
		}
	}()
	NewCSR(1, 1, [][]CSREntry{{{Col: 5, Val: 1}}})
}
