package cluster

import (
	"fmt"
	"io"

	"streamgnn"
)

// SeedFromEngineCheckpoint warm-starts the replica's model mirror from a
// coordinator engine checkpoint (any readable version, v3..v7): parameters
// and recurrent state land in the mirror so the first full sync after
// connecting moves no surprises — and a replica brought up from the same
// checkpoint as a resuming coordinator starts bit-identical to it.
//
// The checkpoint must match the replica's model geometry, and — for v5+
// checkpoints, which record the partition — its shard layout; a mismatch is
// rejected before anything is mutated. Engine checkpoints carry the head
// parameters after the model's (the engine's stable allParams order); the
// head tail seeds nothing here (serving heads arrive with the first
// Publish). The mirror's state version stays 0: a coordinator always full-
// syncs on first contact, so seeding is an optimization, never a substitute
// for synchronization.
func (r *Replica) SeedFromEngineCheckpoint(rd io.Reader) error {
	snap, err := streamgnn.ReadModelSnapshot(rd)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.configured {
		return fmt.Errorf("cluster: seed needs a configured replica")
	}
	if snap.Info.Model != r.cfg.Model || snap.Info.Hidden != r.cfg.Hidden {
		return fmt.Errorf("cluster: checkpoint is for %s/h=%d, replica mirrors %s/h=%d",
			snap.Info.Model, snap.Info.Hidden, r.cfg.Model, r.cfg.Hidden)
	}
	if snap.Info.Shards != 0 { // 0 = pre-v5: no partition recorded
		if snap.Info.Shards != r.cfg.Shards || (snap.Info.Shards > 1 && snap.Info.ShardLayout != r.cfg.Layout) {
			return fmt.Errorf("cluster: checkpoint partition shards=%d/%s does not match replica shards=%d/%s",
				snap.Info.Shards, snap.Info.ShardLayout, r.cfg.Shards, r.cfg.Layout)
		}
	}
	params := r.model.Params()
	if len(snap.Params) < len(params) {
		return fmt.Errorf("cluster: checkpoint carries %d parameters, model mirror needs %d", len(snap.Params), len(params))
	}
	dumps := make([]Dump, len(params))
	for i := range params {
		dumps[i] = dumpOf(snap.Params[i])
	}
	if err := restoreParams(params, dumps); err != nil {
		return err
	}
	return r.model.RestoreState(snap.States)
}
