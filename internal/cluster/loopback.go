package cluster

// Loopback is the in-process Transport: direct method calls into a Replica
// living in the same process, zero copies beyond what the wire types already
// make. It exists to prove the protocol exact — a coordinator driving P
// loopback replicas must produce bit-identical embeddings, answers and
// checkpoints to a single-process engine with Config.Shards = P — and to
// give tests a place to inject failures without sockets.
type Loopback struct {
	R *Replica
	// Fail, when set, is consulted before every RPC with the op name
	// ("hello", "forward", "publish", "answer"); a non-nil return is
	// surfaced as the transport error. Tests use it to knock a replica
	// out for a step range and watch the coordinator fall back locally.
	Fail func(op string) error
}

func (l *Loopback) Hello(req HelloRequest) (HelloResponse, error) {
	if l.Fail != nil {
		if err := l.Fail("hello"); err != nil {
			return HelloResponse{}, err
		}
	}
	return l.R.HandleHello(req)
}

func (l *Loopback) Forward(req ForwardRequest) (ForwardResponse, error) {
	if l.Fail != nil {
		if err := l.Fail("forward"); err != nil {
			return ForwardResponse{}, err
		}
	}
	return l.R.HandleForward(req)
}

func (l *Loopback) Publish(req PublishRequest) (PublishResponse, error) {
	if l.Fail != nil {
		if err := l.Fail("publish"); err != nil {
			return PublishResponse{}, err
		}
	}
	return l.R.HandlePublish(req)
}

func (l *Loopback) Answer(req AnswerRequest) (AnswerResponse, error) {
	if l.Fail != nil {
		if err := l.Fail("answer"); err != nil {
			return AnswerResponse{}, err
		}
	}
	return l.R.HandleAnswer(req)
}
