package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The HTTP transport speaks the same wire types as Loopback, JSON-encoded
// over POST. Floats ride inside Float64s (base64 of the IEEE-754 bits), so
// the JSON detour costs no precision: localhost HTTP replicas are held to
// the same bit-equality bar as in-process ones. Application errors come
// back as a non-200 status with an {"error": "..."} body.

// NewHTTPHandler serves a Replica's four RPCs under /cluster/.
func NewHTTPHandler(r *Replica) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/hello", func(w http.ResponseWriter, req *http.Request) {
		serveRPC(w, req, func(in HelloRequest) (HelloResponse, error) { return r.HandleHello(in) })
	})
	mux.HandleFunc("/cluster/forward", func(w http.ResponseWriter, req *http.Request) {
		serveRPC(w, req, func(in ForwardRequest) (ForwardResponse, error) { return r.HandleForward(in) })
	})
	mux.HandleFunc("/cluster/publish", func(w http.ResponseWriter, req *http.Request) {
		serveRPC(w, req, func(in PublishRequest) (PublishResponse, error) { return r.HandlePublish(in) })
	})
	mux.HandleFunc("/cluster/answer", func(w http.ResponseWriter, req *http.Request) {
		serveRPC(w, req, func(in AnswerRequest) (AnswerResponse, error) { return r.HandleAnswer(in) })
	})
	return mux
}

func serveRPC[Req, Resp any](w http.ResponseWriter, r *http.Request, handle func(Req) (Resp, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	var req Req
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeRPCError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := handle(req)
	if err != nil {
		writeRPCError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func writeRPCError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// HTTPTransport is the coordinator-side client for a replica served by
// NewHTTPHandler at Base (e.g. "http://127.0.0.1:9201").
type HTTPTransport struct {
	Base   string
	Client *http.Client // nil means http.DefaultClient
}

func (t *HTTPTransport) call(op string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimRight(t.Base, "/") + "/cluster/" + op
	httpResp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var appErr struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		if json.Unmarshal(raw, &appErr) == nil && appErr.Error != "" {
			return fmt.Errorf("cluster: %s: %s", op, appErr.Error)
		}
		return fmt.Errorf("cluster: %s: HTTP %d", op, httpResp.StatusCode)
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

func (t *HTTPTransport) Hello(req HelloRequest) (HelloResponse, error) {
	var resp HelloResponse
	err := t.call("hello", req, &resp)
	return resp, err
}

func (t *HTTPTransport) Forward(req ForwardRequest) (ForwardResponse, error) {
	var resp ForwardResponse
	err := t.call("forward", req, &resp)
	return resp, err
}

func (t *HTTPTransport) Publish(req PublishRequest) (PublishResponse, error) {
	var resp PublishResponse
	err := t.call("publish", req, &resp)
	return resp, err
}

func (t *HTTPTransport) Answer(req AnswerRequest) (AnswerResponse, error) {
	var resp AnswerResponse
	err := t.call("answer", req, &resp)
	return resp, err
}
