package cluster

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"streamgnn"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/query"
)

func baseReplicaConfig() ReplicaConfig {
	return ReplicaConfig{Shard: 1, Shards: 2, Layout: "hash", Model: "TGCN",
		Hidden: 8, FeatDim: 3, WindowSteps: 0}
}

// A coordinator whose partition, model geometry or window disagrees with
// what a replica restored must be rejected at Hello with an error naming
// both sides — silently adopting either configuration would break the
// bit-equality contract mid-stream.
func TestHelloRejectsConfigMismatch(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ReplicaConfig)
	}{
		{"shard index", func(c *ReplicaConfig) { c.Shard = 0 }},
		{"shard count", func(c *ReplicaConfig) { c.Shards = 4 }},
		{"layout", func(c *ReplicaConfig) { c.Layout = "range" }},
		{"model", func(c *ReplicaConfig) { c.Model = "WinGNN" }},
		{"hidden", func(c *ReplicaConfig) { c.Hidden = 16 }},
		{"feature dim", func(c *ReplicaConfig) { c.FeatDim = 5 }},
		{"window", func(c *ReplicaConfig) { c.WindowSteps = 64 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewConfiguredReplica(baseReplicaConfig())
			if err != nil {
				t.Fatal(err)
			}
			cfg := baseReplicaConfig()
			tc.mutate(&cfg)
			if _, err := r.HandleHello(HelloRequest{Config: cfg}); err == nil {
				t.Fatal("mismatched Hello accepted")
			} else if !strings.Contains(err.Error(), "coordinator wants") {
				t.Fatalf("mismatch error does not name both sides: %v", err)
			}
			// The matching config stays accepted.
			if _, err := r.HandleHello(HelloRequest{Config: baseReplicaConfig()}); err != nil {
				t.Fatalf("matching Hello rejected: %v", err)
			}
		})
	}
}

func TestHelloRespectsExpectShard(t *testing.T) {
	r := NewReplica()
	r.SetExpectShard(0)
	if _, err := r.HandleHello(HelloRequest{Config: baseReplicaConfig()}); err == nil {
		t.Fatal("replica pinned to shard 0 accepted a shard-1 Hello")
	}
	cfg := baseReplicaConfig()
	cfg.Shard = 0
	if _, err := r.HandleHello(HelloRequest{Config: cfg}); err != nil {
		t.Fatal(err)
	}
}

// A replica checkpoint only restores into a replica of the same identity.
func TestRestoreCheckpointRejectsMismatch(t *testing.T) {
	r, err := NewConfiguredReplica(baseReplicaConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := r.SaveCheckpoint(&ck); err != nil {
		t.Fatal(err)
	}
	other := baseReplicaConfig()
	other.Shards = 4
	wrong, err := NewConfiguredReplica(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.RestoreCheckpoint(bytes.NewReader(ck.Bytes())); err == nil {
		t.Fatal("checkpoint for shards=2 restored into a shards=4 replica")
	}
	fresh := NewReplica()
	if err := fresh.RestoreCheckpoint(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatalf("fresh replica rejected its own checkpoint: %v", err)
	}
	if fresh.Config() != baseReplicaConfig() {
		t.Fatalf("restored config %+v", fresh.Config())
	}
}

// forgedCheckpoint re-encodes an engine checkpoint's learned state under an
// older version stamp. Gob matches struct fields by name, so this stands in
// for bytes written by the actual v5/v6 builds (which carried the same
// fields plus runtime state this test does not need).
type forgedCheckpoint struct {
	Version     int
	Model       string
	Strategy    string
	Hidden      int
	Step        int
	Params      []dgnn.StateDump
	States      []dgnn.StateDump
	Shards      int
	ShardLayout string
}

// Engine checkpoints from every readable version (v5, v6, v7 sharded; v3
// without a recorded partition) must seed a replica's model mirror — and a
// recorded partition that disagrees with the replica's must be rejected.
func TestSeedFromEngineCheckpointVersions(t *testing.T) {
	cfg := clusterConfig("TGCN", 23, 2)
	eng, err := streamgnn.NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := testStream{n: 24}
	for s := 0; s < 30; s++ {
		applyEvents(t, eng, d.eventsFor(s))
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var v7 bytes.Buffer
	if err := eng.SaveCheckpoint(&v7); err != nil {
		t.Fatal(err)
	}
	snap, err := streamgnn.ReadModelSnapshot(bytes.NewReader(v7.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Info.Version < 7 {
		t.Fatalf("engine writes checkpoint v%d, test assumes >= 7", snap.Info.Version)
	}

	forge := func(mutate func(*forgedCheckpoint)) []byte {
		ck := forgedCheckpoint{
			Version: snap.Info.Version, Model: snap.Info.Model, Strategy: snap.Info.Strategy,
			Hidden: snap.Info.Hidden, Step: snap.Info.Step,
			Params: snap.Params, States: snap.States,
			Shards: snap.Info.Shards, ShardLayout: snap.Info.ShardLayout,
		}
		mutate(&ck)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	repCfg := ReplicaConfig{Shard: 0, Shards: 2, Layout: "hash", Model: cfg.Model,
		Hidden: cfg.Hidden, FeatDim: 3, WindowSteps: cfg.WindowSteps}

	seed := func(t *testing.T, data []byte) error {
		r, err := NewConfiguredReplica(repCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SeedFromEngineCheckpoint(bytes.NewReader(data)); err != nil {
			return err
		}
		// The mirror's model parameters must now hold the checkpoint bits.
		for i, p := range r.model.Params() {
			for j, v := range p.Value.Data {
				if want := snap.Params[i].Data[j]; v != want {
					t.Fatalf("seeded parameter %d[%d] = %v, checkpoint holds %v", i, j, v, want)
				}
			}
		}
		return nil
	}

	if err := seed(t, v7.Bytes()); err != nil {
		t.Fatalf("v7: %v", err)
	}
	for _, v := range []int{5, 6} {
		if err := seed(t, forge(func(ck *forgedCheckpoint) { ck.Version = v })); err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
	}
	// v3/v4 predate the recorded partition: Shards = 0 means "unknown",
	// which seeds without a partition check.
	if err := seed(t, forge(func(ck *forgedCheckpoint) { ck.Version = 3; ck.Shards = 0; ck.ShardLayout = "" })); err != nil {
		t.Fatalf("v3: %v", err)
	}

	if err := seed(t, forge(func(ck *forgedCheckpoint) { ck.Shards = 4 })); err == nil {
		t.Fatal("shards=4 checkpoint seeded a shards=2 replica")
	} else if !strings.Contains(err.Error(), "does not match replica") {
		t.Fatalf("partition mismatch error unclear: %v", err)
	}
	if err := seed(t, forge(func(ck *forgedCheckpoint) { ck.ShardLayout = "range" })); err == nil {
		t.Fatal("range-layout checkpoint seeded a hash-layout replica")
	}
	if err := seed(t, forge(func(ck *forgedCheckpoint) { ck.Hidden = 16 })); err == nil {
		t.Fatal("hidden=16 checkpoint seeded a hidden=8 replica")
	}
	if err := seed(t, forge(func(ck *forgedCheckpoint) { ck.Version = 2 })); err == nil {
		t.Fatal("unreadable v2 checkpoint accepted")
	}
}

// Float64s must round-trip every representable value through JSON — NaN,
// infinities, signed zero and denormals included — because the HTTP
// transport's bit-equality rests on it.
func TestFloat64sJSONRoundTrip(t *testing.T) {
	vals := Float64s{0, math.Copysign(0, -1), 1.0 / 3.0, math.NaN(), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, math.MaxFloat64, 1e-310}
	data, err := json.Marshal(vals)
	if err != nil {
		t.Fatal(err)
	}
	var got Float64s
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %v -> %v (bits %x -> %x)", i, vals[i], got[i],
				math.Float64bits(vals[i]), math.Float64bits(got[i]))
		}
	}
	var bad Float64s
	if err := bad.UnmarshalJSON([]byte(`"AAAA"`)); err == nil {
		t.Fatal("3-byte payload accepted")
	}
}

func TestWireAnswersRoundTrip(t *testing.T) {
	in := []query.Answer{
		{Score: math.NaN(), OK: false, Err: "no label"},
		{Score: 0.25, OK: true},
	}
	out, err := unwireAnswers(wireAnswers(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1] != in[1] {
		t.Fatalf("round-trip %+v", out)
	}
	if math.Float64bits(out[0].Score) != math.Float64bits(in[0].Score) || out[0].Err != "no label" {
		t.Fatalf("NaN answer mangled: %+v", out[0])
	}
	if _, err := unwireAnswers([]WireAnswer{{}}); err == nil {
		t.Fatal("scoreless answer accepted")
	}
}
