package cluster

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/shard"
	"streamgnn/internal/tensor"
)

// Replica is one shard-replica service: a full graph mirror fed by
// replicated event batches, a model mirror synchronized by the coordinator
// (full syncs after training, row patches between), and a lock-free serving
// mirror (embedding matrix + prediction heads) for fanned-out predictive
// queries. It executes dgnn.ForwardPart for its shard — exactly the
// computation the in-process fan-out runs — so distributed steps stay
// bit-identical to single-process sharded ones.
//
// A replica starts unconfigured; the coordinator's first Hello configures it
// (or validates the configuration it restored from a checkpoint). All
// handlers are safe for concurrent use: Hello/Forward/Publish serialize on a
// mutex, HandleAnswer reads only the atomic serving snapshot.
type Replica struct {
	mu          sync.Mutex
	configured  bool
	cfg         ReplicaConfig
	expectShard int // -1 = accept any shard index from Hello
	g           *graph.Dynamic
	sh          *shard.Sharding
	model       dgnn.Model

	lastApplied  int // last step whose event batch has been applied; -1 none
	stateVersion uint64
	headsVersion uint64
	heads        *query.Heads // current serving heads (immutable once built)

	serving atomic.Pointer[replicaSnapshot]
	wal     *WAL

	stats replicaCounters
}

// replicaSnapshot is the replica's immutable serving state for one step.
type replicaSnapshot struct {
	step  int
	emb   *tensor.Matrix
	heads *query.Heads
}

// ReplicaStats is a point-in-time snapshot of the replica's observability
// counters (Stats()).
type ReplicaStats struct {
	EventsApplied int64
	OwnedEvents   int64
	HaloEvents    int64
	Forwards      int64
	FullSyncs     int64
	Patches       int64
	Publishes     int64
	Answers       int64
	LastApplied   int64
}

// replicaCounters are the live counters behind ReplicaStats; atomic.Int64
// keeps them alignment-safe on 32-bit targets regardless of struct layout.
type replicaCounters struct {
	eventsApplied atomic.Int64
	ownedEvents   atomic.Int64
	haloEvents    atomic.Int64
	forwards      atomic.Int64
	fullSyncs     atomic.Int64
	patches       atomic.Int64
	publishes     atomic.Int64
	answers       atomic.Int64
	lastApplied   atomic.Int64
}

// NewReplica returns an unconfigured replica that accepts any shard index;
// the coordinator's first Hello configures it.
func NewReplica() *Replica {
	return &Replica{expectShard: -1, lastApplied: -1}
}

// NewConfiguredReplica returns a replica pre-configured for cfg (tests and
// loopback clusters; services usually let Hello configure).
func NewConfiguredReplica(cfg ReplicaConfig) (*Replica, error) {
	r := NewReplica()
	if err := r.configure(cfg); err != nil {
		return nil, err
	}
	return r, nil
}

// SetExpectShard pins the shard index this replica will serve: a Hello for
// any other index is rejected (the queryd -replica-id flag).
func (r *Replica) SetExpectShard(s int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expectShard = s
}

// SetWAL attaches a write-ahead log: every applied event batch is appended,
// so a restarted replica rebuilds its graph mirror without coordinator
// history. Attach after ReplayWAL, not before.
func (r *Replica) SetWAL(w *WAL) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wal = w
}

// Config returns the replica's configuration (zero before configuration).
func (r *Replica) Config() ReplicaConfig {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// LastApplied returns the last event step applied to the graph mirror.
func (r *Replica) LastApplied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// Stats returns a snapshot of the replica's counters.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		EventsApplied: r.stats.eventsApplied.Load(),
		OwnedEvents:   r.stats.ownedEvents.Load(),
		HaloEvents:    r.stats.haloEvents.Load(),
		Forwards:      r.stats.forwards.Load(),
		FullSyncs:     r.stats.fullSyncs.Load(),
		Patches:       r.stats.patches.Load(),
		Publishes:     r.stats.publishes.Load(),
		Answers:       r.stats.answers.Load(),
		LastApplied:   r.stats.lastApplied.Load(),
	}
}

func (r *Replica) configure(cfg ReplicaConfig) error {
	if r.expectShard >= 0 && cfg.Shard != r.expectShard {
		return fmt.Errorf("cluster: this replica serves shard %d, asked to serve shard %d", r.expectShard, cfg.Shard)
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return fmt.Errorf("cluster: shard index %d outside [0, %d)", cfg.Shard, cfg.Shards)
	}
	if cfg.Hidden <= 0 || cfg.FeatDim < 0 {
		return fmt.Errorf("cluster: invalid model geometry hidden=%d featdim=%d", cfg.Hidden, cfg.FeatDim)
	}
	layout, err := shard.ParseLayout(cfg.Layout)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	sh, err := shard.New(cfg.Shards, layout)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	kind, err := dgnn.ParseKind(cfg.Model)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	// The mirror's initial random parameters are irrelevant: the first
	// Forward always carries a full sync. The rng only fixes shapes.
	r.model = dgnn.New(kind, rand.New(rand.NewSource(1)), cfg.FeatDim, cfg.Hidden)
	r.g = graph.NewDynamic(cfg.FeatDim)
	r.sh = sh
	r.cfg = cfg
	r.configured = true
	return nil
}

// HandleHello implements the Hello RPC: configure on first contact, validate
// configuration equality afterwards, and report how far the mirror is.
func (r *Replica) HandleHello(req HelloRequest) (HelloResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.configured {
		if err := r.configure(req.Config); err != nil {
			return HelloResponse{}, err
		}
	} else if err := req.Config.validateAgainst(r.cfg); err != nil {
		return HelloResponse{}, err
	}
	return HelloResponse{LastApplied: r.lastApplied, StateVersion: r.stateVersion}, nil
}

// applyBatches replays unseen event batches onto the graph mirror, in step
// order, deduplicating by step (at-least-once delivery: the coordinator
// resends its whole outbox until acknowledged). Caller holds the mutex.
func (r *Replica) applyBatches(batches []StepEvents) error {
	scratch := make([]int, 0, 2)
	for _, b := range batches {
		if b.Step <= r.lastApplied {
			continue
		}
		for _, ev := range b.Events {
			scratch = ev.touches(r.g.N(), scratch[:0])
			owned := false
			for _, v := range scratch {
				if r.sh.Of(v) == r.cfg.Shard {
					owned = true
					break
				}
			}
			if owned {
				r.stats.ownedEvents.Add(1)
			} else {
				r.stats.haloEvents.Add(1)
			}
			if err := ev.apply(r.g); err != nil {
				return err
			}
			r.stats.eventsApplied.Add(1)
		}
		if r.wal != nil {
			if err := r.wal.Append(b); err != nil {
				return fmt.Errorf("cluster: wal append: %w", err)
			}
		}
		r.lastApplied = b.Step
		r.stats.lastApplied.Store(int64(b.Step))
	}
	return nil
}

// HandleForward implements the Forward RPC. The phase order reproduces the
// engine's step exactly: apply pending events, run the sliding-window
// expiry for this step (idempotent — a replica that skipped steps catches up
// with one call), bring the model mirror to the coordinator's pre-step live
// state (full sync or row patch), snapshot it with BeginStep, and run the
// part's committed forward. The response carries the committed embedding
// rows plus, for recurrent models, the advanced live state rows at the same
// ids — everything the coordinator needs to stay authoritative.
func (r *Replica) HandleForward(req ForwardRequest) (ForwardResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.configured {
		return ForwardResponse{}, fmt.Errorf("cluster: replica not configured (no Hello yet)")
	}
	if err := r.applyBatches(req.Events); err != nil {
		return ForwardResponse{}, err
	}
	if r.cfg.WindowSteps > 0 {
		r.g.ExpireEdgesBefore(int64(req.Step - r.cfg.WindowSteps + 1))
	}
	switch {
	case req.Sync != nil:
		if err := restoreParams(r.model.Params(), req.Sync.Params); err != nil {
			return ForwardResponse{}, err
		}
		if err := r.model.RestoreState(stateDumps(req.Sync.States)); err != nil {
			return ForwardResponse{}, err
		}
		r.stateVersion = req.Sync.Version
		r.stats.fullSyncs.Add(1)
	case req.StateVersion != r.stateVersion:
		return ForwardResponse{}, fmt.Errorf("cluster: model mirror at version %d, coordinator assumes %d (resync needed)",
			r.stateVersion, req.StateVersion)
	case req.Patch != nil:
		sr, ok := r.model.(dgnn.StateRows)
		if !ok {
			return ForwardResponse{}, fmt.Errorf("cluster: model %s cannot apply state-row patches", r.cfg.Model)
		}
		if err := sr.ScatterStateRows(req.Patch.IDs, stateDumps(req.Patch.States)); err != nil {
			return ForwardResponse{}, err
		}
		r.stats.patches.Add(1)
	}
	r.model.BeginStep(req.Step)
	sf := dgnn.ForwardPart(r.g, r.model, r.cfg.Shard, req.Part, req.Exact)
	resp := ForwardResponse{Shard: r.cfg.Shard, IDs: sf.IDs, LastApplied: r.lastApplied}
	hidden := r.cfg.Hidden
	out := Dump{Rows: len(sf.IDs), Cols: hidden, Data: make(Float64s, len(sf.IDs)*hidden)}
	for k, row := range sf.Rows {
		copy(out.Data[k*hidden:(k+1)*hidden], sf.Out.Row(row))
	}
	resp.Out = out
	if sr, ok := r.model.(dgnn.StateRows); ok {
		resp.StateRows = dumpsOf(sr.GatherStateRows(sf.IDs))
	}
	r.stats.forwards.Add(1)
	return resp, nil
}

// HandlePublish implements the Publish RPC: refresh the serving mirror
// (embedding rows, heads when their version moved) and flush the event
// outbox. The new snapshot is built aside and installed atomically, so
// concurrent HandleAnswer readers keep a consistent view.
func (r *Replica) HandlePublish(req PublishRequest) (PublishResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.configured {
		return PublishResponse{}, fmt.Errorf("cluster: replica not configured (no Hello yet)")
	}
	if err := r.applyBatches(req.Events); err != nil {
		return PublishResponse{}, err
	}
	hidden := r.cfg.Hidden
	heads := r.heads
	if req.Heads != nil {
		h := query.NewHeads(rand.New(rand.NewSource(1)), hidden)
		if err := restoreParams(h.Params(), req.Heads); err != nil {
			return PublishResponse{}, err
		}
		heads = h
		r.heads = h
		r.headsVersion = req.HeadsVersion
	} else if req.HeadsVersion != r.headsVersion || heads == nil {
		return PublishResponse{}, fmt.Errorf("cluster: serving heads at version %d, publish assumes %d", r.headsVersion, req.HeadsVersion)
	}
	m := tensor.New(req.N, hidden)
	if req.Full {
		if req.Rows.Rows != req.N || req.Rows.Cols != hidden || len(req.Rows.Data) != req.N*hidden {
			return PublishResponse{}, fmt.Errorf("cluster: full publish payload %dx%d for %d rows", req.Rows.Rows, req.Rows.Cols, req.N)
		}
		copy(m.Data, req.Rows.Data)
	} else {
		prev := r.serving.Load()
		if prev == nil {
			return PublishResponse{}, fmt.Errorf("cluster: incremental publish without a base snapshot")
		}
		if prev.emb.Rows > req.N {
			return PublishResponse{}, fmt.Errorf("cluster: publish shrinks the snapshot (%d -> %d rows)", prev.emb.Rows, req.N)
		}
		copy(m.Data, prev.emb.Data)
		if req.Rows.Rows != len(req.IDs) || req.Rows.Cols != hidden {
			return PublishResponse{}, fmt.Errorf("cluster: publish payload %dx%d for %d changed rows", req.Rows.Rows, req.Rows.Cols, len(req.IDs))
		}
		for k, id := range req.IDs {
			if id < 0 || id >= req.N {
				return PublishResponse{}, fmt.Errorf("cluster: published row %d outside [0, %d)", id, req.N)
			}
			copy(m.Row(id), req.Rows.Data[k*hidden:(k+1)*hidden])
		}
	}
	r.serving.Store(&replicaSnapshot{step: req.Step, emb: m, heads: heads})
	r.stats.publishes.Add(1)
	return PublishResponse{LastApplied: r.lastApplied}, nil
}

// HandleAnswer implements the Answer RPC against the atomic serving
// snapshot — no locks, so query fan-out never contends with the step loop.
// A snapshot at any step other than the requested one is refused; the
// coordinator then answers locally, keeping answers step-exact.
//
//streamlint:lockfree
func (r *Replica) HandleAnswer(req AnswerRequest) (AnswerResponse, error) {
	snap := r.serving.Load()
	if snap == nil {
		return AnswerResponse{}, fmt.Errorf("cluster: no serving snapshot published yet")
	}
	if snap.step != req.Step {
		return AnswerResponse{}, fmt.Errorf("cluster: serving mirror at step %d, batch wants %d", snap.step, req.Step)
	}
	answers := query.AnswerBatch(snap.heads, snap.emb, req.Reqs, nil)
	r.stats.answers.Add(int64(len(req.Reqs)))
	return AnswerResponse{Step: snap.step, Answers: wireAnswers(answers)}, nil
}

// replicaCheckpointVersion guards the per-replica checkpoint format.
const replicaCheckpointVersion = 1

// replicaCheckpoint is the gob-encoded independent recovery state of one
// replica: its identity plus the model mirror. The graph mirror is NOT
// included — it is rebuilt by replaying the WAL (or redelivered by the
// coordinator's outbox after a fresh Hello).
type replicaCheckpoint struct {
	Version      int
	Config       ReplicaConfig
	LastApplied  int
	StateVersion uint64
	Params       []dgnn.StateDump
	States       []dgnn.StateDump
}

// SaveCheckpoint writes the replica's recovery state to w.
func (r *Replica) SaveCheckpoint(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.configured {
		return fmt.Errorf("cluster: cannot checkpoint an unconfigured replica")
	}
	ck := replicaCheckpoint{
		Version:      replicaCheckpointVersion,
		Config:       r.cfg,
		LastApplied:  r.lastApplied,
		StateVersion: r.stateVersion,
		States:       r.model.DumpState(),
	}
	for _, p := range r.model.Params() {
		ck.Params = append(ck.Params, dgnn.StateDump{
			Rows: p.Value.Rows, Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		})
	}
	return gob.NewEncoder(w).Encode(ck)
}

// RestoreCheckpoint loads a replica checkpoint into this replica,
// configuring it when fresh and rejecting a partition/model mismatch when
// already configured. The graph mirror starts empty: replay the WAL next
// (ReplayWAL), or let the coordinator's outbox redeliver. lastApplied is
// deliberately left at -1 so the WAL replay re-applies every batch to the
// empty graph; the model mirror's state version is kept, but the next
// coordinator contact performs a full sync regardless (reconnects always
// do), so a stale mirror can never leak into results.
func (r *Replica) RestoreCheckpoint(rd io.Reader) error {
	var ck replicaCheckpoint
	if err := gob.NewDecoder(rd).Decode(&ck); err != nil {
		return fmt.Errorf("cluster: decoding replica checkpoint: %w", err)
	}
	if ck.Version != replicaCheckpointVersion {
		return fmt.Errorf("cluster: replica checkpoint version %d, want %d", ck.Version, replicaCheckpointVersion)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.configured {
		if err := ck.Config.validateAgainst(r.cfg); err != nil {
			return err
		}
	} else if err := r.configure(ck.Config); err != nil {
		return err
	}
	dumps := make([]Dump, len(ck.Params))
	for i, d := range ck.Params {
		dumps[i] = dumpOf(d)
	}
	if err := restoreParams(r.model.Params(), dumps); err != nil {
		return err
	}
	if err := r.model.RestoreState(ck.States); err != nil {
		return err
	}
	r.stateVersion = ck.StateVersion
	return nil
}
