// Package cluster splits the streamgnn engine into a coordinator and N
// shard-replica services behind a small transport abstraction, turning the
// in-process sharded fan-out (DESIGN.md §12) into a distributable one
// without giving up bit-equality.
//
// The division of labor keeps every P-dependent decision on the coordinator:
// it runs the authoritative Engine — dirty tracking, exact/region expansion,
// the full-forward fallback decision, training, workload bookkeeping — and
// hands out only the per-shard region forwards via the engine's
// ShardForwarder seam. A replica mirrors the full graph (events are
// replicated to every replica: connected components may span shards and
// subgraph normalization needs global degrees, so the halo closure of any
// part is the whole snapshot) plus the model parameters and the recurrent
// state rows it needs, executes dgnn.ForwardPart — the exact code path the
// in-process fan-out runs — and returns the committed rows. The coordinator
// scatters the returned state rows into its own model and merges embeddings
// in the usual deterministic MergeShards order, so a 2-replica run is
// bit-identical to shards=2 in-process. Any replica failure degrades to the
// coordinator running that part locally, which is the in-process path and
// therefore preserves equality. See DESIGN.md §17.
//
// Two Transport implementations ship: Loopback (direct in-process calls,
// zero-copy — proves the architecture against single-process mode) and
// HTTPTransport (localhost HTTP/JSON for queryd -role=coordinator|replica).
// All floating-point payloads travel as Float64s — base64 of the raw IEEE-754
// little-endian bits — so the JSON wire format is exact for every value,
// NaN and infinities included.
package cluster

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
	"streamgnn/internal/tensor"
)

// Float64s is a float slice that marshals to JSON as base64 of its raw
// little-endian IEEE-754 bits: compact, and exact for every representable
// value (encoding/json cannot carry NaN or ±Inf, and decimal round-trips,
// while exact for finite float64s in Go, triple the payload size).
type Float64s []float64

// MarshalJSON implements json.Marshaler.
func (f Float64s) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(buf))
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float64s) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return err
	}
	if len(buf)%8 != 0 {
		return fmt.Errorf("cluster: float payload of %d bytes is not a multiple of 8", len(buf))
	}
	out := make(Float64s, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	*f = out
	return nil
}

// Dump is a wire-encodable matrix (the transport twin of dgnn.StateDump).
type Dump struct {
	Rows int      `json:"rows"`
	Cols int      `json:"cols"`
	Data Float64s `json:"data"`
}

func dumpOf(d dgnn.StateDump) Dump {
	return Dump{Rows: d.Rows, Cols: d.Cols, Data: Float64s(d.Data)}
}

func dumpsOf(ds []dgnn.StateDump) []Dump {
	out := make([]Dump, len(ds))
	for i, d := range ds {
		out[i] = dumpOf(d)
	}
	return out
}

func (d Dump) stateDump() dgnn.StateDump {
	return dgnn.StateDump{Rows: d.Rows, Cols: d.Cols, Data: []float64(d.Data)}
}

func stateDumps(ds []Dump) []dgnn.StateDump {
	out := make([]dgnn.StateDump, len(ds))
	for i, d := range ds {
		out[i] = d.stateDump()
	}
	return out
}

func dumpMatrix(m *tensor.Matrix) Dump {
	data := make(Float64s, len(m.Data))
	copy(data, m.Data)
	return Dump{Rows: m.Rows, Cols: m.Cols, Data: data}
}

func (d Dump) matrix() (*tensor.Matrix, error) {
	if len(d.Data) != d.Rows*d.Cols {
		return nil, fmt.Errorf("cluster: %dx%d matrix payload carries %d values", d.Rows, d.Cols, len(d.Data))
	}
	m := tensor.New(d.Rows, d.Cols)
	copy(m.Data, d.Data)
	return m, nil
}

// Wire event ops.
const (
	opNode  = "node"
	opEdge  = "edge"
	opFeat  = "feat"
	opLabel = "label"
)

// WireEvent is one graph mutation in transit: the four stream.Event kinds,
// with every float carried bit-exactly (AddEdge's NaN no-label sentinel
// included) via Float64s.
type WireEvent struct {
	Op    string   `json:"op"`
	Type  int      `json:"type,omitempty"`
	U     int      `json:"u,omitempty"`
	V     int      `json:"v,omitempty"`
	Time  int64    `json:"time,omitempty"`
	Label Float64s `json:"label,omitempty"` // one element when present
	Feat  Float64s `json:"feat,omitempty"`
}

// EncodeEvents converts one step's stream events to the wire form.
func EncodeEvents(events []stream.Event) ([]WireEvent, error) {
	out := make([]WireEvent, len(events))
	for i, ev := range events {
		switch e := ev.(type) {
		case stream.AddNode:
			out[i] = WireEvent{Op: opNode, Type: int(e.Type), Feat: append(Float64s(nil), e.Feat...)}
		case stream.AddEdge:
			out[i] = WireEvent{Op: opEdge, U: e.U, V: e.V, Type: int(e.Type), Time: e.Time,
				Label: Float64s{e.Label}}
		case stream.SetFeature:
			out[i] = WireEvent{Op: opFeat, V: e.V, Feat: append(Float64s(nil), e.Feat...)}
		case stream.SetLabel:
			out[i] = WireEvent{Op: opLabel, V: e.V, Label: Float64s{e.Label}}
		default:
			return nil, fmt.Errorf("cluster: cannot encode stream event %T", ev)
		}
	}
	return out, nil
}

// apply replays the event onto a graph mirror — the same mutations the
// event's stream.Event counterpart performs on the coordinator's graph.
func (w WireEvent) apply(g *graph.Dynamic) error {
	switch w.Op {
	case opNode:
		g.AddNode(graph.NodeType(w.Type), w.Feat)
	case opEdge:
		if len(w.Label) != 1 {
			return fmt.Errorf("cluster: edge event carries %d label values, want 1", len(w.Label))
		}
		g.AddLabeledEdge(w.U, w.V, graph.EdgeType(w.Type), w.Time, w.Label[0])
	case opFeat:
		g.SetFeature(w.V, w.Feat)
	case opLabel:
		if len(w.Label) != 1 {
			return fmt.Errorf("cluster: label event carries %d label values, want 1", len(w.Label))
		}
		g.SetLabel(w.V, w.Label[0])
	default:
		return fmt.Errorf("cluster: unknown event op %q", w.Op)
	}
	return nil
}

// touches appends the node ids an event mentions (for owned/halo telemetry);
// nextID is the id an opNode event will be assigned.
func (w WireEvent) touches(nextID int, dst []int) []int {
	switch w.Op {
	case opNode:
		return append(dst, nextID)
	case opEdge:
		return append(dst, w.U, w.V)
	default:
		return append(dst, w.V)
	}
}

// StepEvents is one step's replicated event batch.
type StepEvents struct {
	Step   int         `json:"step"`
	Events []WireEvent `json:"events"`
}

// ReplicaConfig identifies a shard replica: which slice of which partition
// it owns and the model geometry it mirrors. Hello carries it so coordinator
// and replica agree before any state moves; a mismatch on any field is a
// configuration error, reported verbatim.
type ReplicaConfig struct {
	// Shard is this replica's shard index in [0, Shards).
	Shard int `json:"shard"`
	// Shards and Layout name the node-space partition (shard.ParseLayout).
	Shards int    `json:"shards"`
	Layout string `json:"layout"`
	// Model, Hidden and FeatDim fix the mirrored model's geometry.
	Model   string `json:"model"`
	Hidden  int    `json:"hidden"`
	FeatDim int    `json:"feat_dim"`
	// WindowSteps is the engine's sliding-window expiry (0 = none); the
	// replica applies the same expiry to its graph mirror.
	WindowSteps int `json:"window_steps"`
}

func (c ReplicaConfig) validateAgainst(have ReplicaConfig) error {
	if c != have {
		return fmt.Errorf("cluster: replica configured as shard %d of %d (%s) model=%s hidden=%d featdim=%d window=%d, coordinator wants shard %d of %d (%s) model=%s hidden=%d featdim=%d window=%d",
			have.Shard, have.Shards, have.Layout, have.Model, have.Hidden, have.FeatDim, have.WindowSteps,
			c.Shard, c.Shards, c.Layout, c.Model, c.Hidden, c.FeatDim, c.WindowSteps)
	}
	return nil
}

// HelloRequest opens (or re-opens) a coordinator→replica session.
type HelloRequest struct {
	Config ReplicaConfig `json:"config"`
}

// HelloResponse reports how far the replica's mirror has advanced, letting
// the coordinator prune its outbox and decide what to redeliver.
type HelloResponse struct {
	// LastApplied is the last step whose event batch the replica has
	// applied (-1 before any).
	LastApplied int `json:"last_applied"`
	// StateVersion is the model-mirror version the replica holds (0 before
	// the first full sync).
	StateVersion uint64 `json:"state_version"`
}

// ModelSync is a full model-mirror refresh: every parameter plus every
// recurrent-state matrix, stamped with the coordinator's mirror version.
type ModelSync struct {
	Version uint64 `json:"version"`
	Params  []Dump `json:"params"`
	States  []Dump `json:"states"`
}

// StatePatch carries the live recurrent-state rows for the ids committed
// since the replica's last sync or patch — the incremental alternative to a
// full ModelSync between training steps, when parameters are unchanged.
type StatePatch struct {
	IDs    []int  `json:"ids"`
	States []Dump `json:"states"` // one per state matrix, len(IDs) rows each
}

// ForwardRequest asks a replica to execute one shard part of a step's
// sharded incremental forward.
type ForwardRequest struct {
	Step int `json:"step"`
	// Events is the coordinator's outbox for this replica: every step batch
	// not yet acknowledged, in step order. The replica applies the ones it
	// has not seen (dedup by step) before forwarding.
	Events []StepEvents `json:"events,omitempty"`
	// StateVersion is the model-mirror version this request assumes. When
	// Sync is present the replica adopts it; otherwise a mismatch with the
	// replica's held version is an error (the coordinator resyncs).
	StateVersion uint64      `json:"state_version"`
	Sync         *ModelSync  `json:"sync,omitempty"`
	Patch        *StatePatch `json:"patch,omitempty"`
	// Part is this shard's component-respecting region part; Exact the
	// step's global exact-row set (both ascending global ids).
	Part  []int `json:"part"`
	Exact []int `json:"exact"`
}

// ForwardResponse returns the part's committed rows: embedding values and,
// for recurrent models, the advanced live state rows at the same ids.
type ForwardResponse struct {
	Shard int   `json:"shard"`
	IDs   []int `json:"ids"`
	// Out is len(IDs) × hidden: row k is the committed embedding of IDs[k].
	Out Dump `json:"out"`
	// StateRows holds the live recurrent-state rows at IDs after the
	// forward, one Dump per state matrix; nil for stateless models.
	StateRows   []Dump `json:"state_rows,omitempty"`
	LastApplied int    `json:"last_applied"`
}

// PublishRequest pushes the coordinator's post-step serving snapshot to a
// replica's serving mirror (and flushes the event outbox, so replicas whose
// shard had no work this step still keep their graph mirror fresh).
type PublishRequest struct {
	Step   int          `json:"step"`
	Events []StepEvents `json:"events,omitempty"`
	// N is the snapshot's row count. Full publishes carry the whole N ×
	// hidden matrix in Rows (IDs nil); incremental ones carry only the
	// changed rows, spliced into the previous mirror.
	N    int   `json:"n"`
	Full bool  `json:"full"`
	IDs  []int `json:"ids,omitempty"`
	Rows Dump  `json:"rows"`
	// HeadsVersion stamps the serving heads; Heads carries their parameter
	// dumps when the replica's held version is stale.
	HeadsVersion uint64 `json:"heads_version"`
	Heads        []Dump `json:"heads,omitempty"`
}

// PublishResponse acknowledges a publish.
type PublishResponse struct {
	LastApplied int `json:"last_applied"`
}

// AnswerRequest fans part of a predictive-query batch out to a replica. Step
// pins the serving snapshot the answers must come from: a replica whose
// mirror is at any other step refuses, and the coordinator answers locally —
// remote serving accelerates, it never changes an answer.
type AnswerRequest struct {
	Step int             `json:"step"`
	Reqs []query.Request `json:"reqs"`
}

// WireAnswer is query.Answer with the score carried bit-exactly.
type WireAnswer struct {
	Score Float64s `json:"score"` // one element
	OK    bool     `json:"ok"`
	Err   string   `json:"error,omitempty"`
}

// AnswerResponse returns one answer per request, in request order.
type AnswerResponse struct {
	Step    int          `json:"step"`
	Answers []WireAnswer `json:"answers"`
}

func wireAnswers(as []query.Answer) []WireAnswer {
	out := make([]WireAnswer, len(as))
	for i, a := range as {
		out[i] = WireAnswer{Score: Float64s{a.Score}, OK: a.OK, Err: a.Err}
	}
	return out
}

func unwireAnswers(ws []WireAnswer) ([]query.Answer, error) {
	out := make([]query.Answer, len(ws))
	for i, w := range ws {
		if len(w.Score) != 1 {
			return nil, fmt.Errorf("cluster: answer %d carries %d score values, want 1", i, len(w.Score))
		}
		out[i] = query.Answer{Score: w.Score[0], OK: w.OK, Err: w.Err}
	}
	return out, nil
}

// Transport is one coordinator→replica session: the four RPCs of the
// protocol. Implementations must be safe for concurrent use (Answer runs on
// serving goroutines while Forward/Publish run on the step loop). Any
// returned error means the call may or may not have been applied; the
// coordinator marks the replica down, falls back to local execution, and
// renegotiates with Hello.
type Transport interface {
	Hello(req HelloRequest) (HelloResponse, error)
	Forward(req ForwardRequest) (ForwardResponse, error)
	Publish(req PublishRequest) (PublishResponse, error)
	Answer(req AnswerRequest) (AnswerResponse, error)
}

// mergeSorted returns the ascending union of two ascending id slices.
func mergeSorted(a, b []int) []int {
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// restoreParams overwrites parameter values from wire dumps, validating
// every shape first so a bad payload never half-applies.
func restoreParams(params []*autodiff.Node, dumps []Dump) error {
	if len(dumps) != len(params) {
		return fmt.Errorf("cluster: sync carries %d parameters, model has %d", len(dumps), len(params))
	}
	for i, p := range params {
		d := dumps[i]
		if d.Rows != p.Value.Rows || d.Cols != p.Value.Cols || len(d.Data) != len(p.Value.Data) {
			return fmt.Errorf("cluster: parameter %d shape mismatch (%dx%d vs %dx%d)",
				i, d.Rows, d.Cols, p.Value.Rows, p.Value.Cols)
		}
	}
	for i, p := range params {
		copy(p.Value.Data, dumps[i].Data)
	}
	return nil
}

func gatherParams(params []*autodiff.Node) []Dump {
	out := make([]Dump, len(params))
	for i, p := range params {
		out[i] = dumpMatrix(p.Value)
	}
	return out
}
