package cluster

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"streamgnn"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

// testStream mirrors the root package's sharding-equality stream through
// stream.Event values, so the identical mutation sequence can drive an
// in-process engine and a clustered one from the same source of truth.
type testStream struct{ n int }

func (d testStream) eventsFor(s int) []stream.Event {
	var evs []stream.Event
	if s == 0 {
		for i := 0; i < d.n; i++ {
			evs = append(evs, stream.AddNode{Feat: []float64{float64(i % 3), 0, 1}})
		}
		for i := 0; i < d.n; i++ {
			evs = append(evs, stream.SetLabel{V: i, Label: float64(i % 2)})
		}
		for i := 0; i < d.n; i++ {
			evs = append(evs,
				stream.AddEdge{U: i, V: (i + 1) % d.n, Label: math.NaN()},
				stream.AddEdge{U: (i + 1) % d.n, V: i, Label: math.NaN()})
		}
	}
	v := (s * 7) % d.n
	evs = append(evs, stream.SetFeature{V: v, Feat: []float64{float64(s%5) * 0.2, 1, 1}})
	if s%3 == 0 {
		evs = append(evs, stream.AddEdge{U: (s * 11) % d.n, V: (s * 13) % d.n, Time: int64(s), Label: math.NaN()})
	}
	return evs
}

func applyEvents(t *testing.T, e *streamgnn.Engine, events []stream.Event) {
	t.Helper()
	wire, err := EncodeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range wire {
		if err := ev.apply(e.Graph()); err != nil {
			t.Fatal(err)
		}
	}
}

func addTestQuery(t *testing.T, e *streamgnn.Engine, n int) {
	t.Helper()
	err := e.AddQuery(streamgnn.Query{
		Name: "act", Anchors: []int{0, n / 2}, Delta: 1, Threshold: 0.5,
		Labeler: func(anchor, step int) (float64, bool) {
			return float64((anchor+step)%2) * 0.8, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func clusterConfig(model string, seed int64, shards int) streamgnn.Config {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = model
	cfg.Strategy = streamgnn.StrategyWeighted
	cfg.Hidden = 8
	cfg.Seed = seed
	cfg.Interval = 25
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1
	cfg.Shards = shards
	return cfg
}

func sameMatrix(t *testing.T, step int, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("step %d: embedding lengths differ: %d vs %d", step, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: embeddings differ at %d: %v vs %v", step, i, a[i], b[i])
		}
	}
}

// harness is a coordinator engine wired to shard replicas over some
// transport, stepped in lockstep with a plain in-process sharded engine.
type harness struct {
	flat  *streamgnn.Engine // reference: in-process shards=P
	eng   *streamgnn.Engine // the coordinator's engine, same config
	coord *Coordinator
	reps  []*Replica
	d     testStream
}

type transportFactory func(t *testing.T, reps []*Replica) []Transport

func loopbackFactory(t *testing.T, reps []*Replica) []Transport {
	trans := make([]Transport, len(reps))
	for s := range reps {
		trans[s] = &Loopback{R: reps[s]}
	}
	return trans
}

func httpFactory(t *testing.T, reps []*Replica) []Transport {
	trans := make([]Transport, len(reps))
	for s := range reps {
		srv := httptest.NewServer(NewHTTPHandler(reps[s]))
		t.Cleanup(srv.Close)
		trans[s] = &HTTPTransport{Base: srv.URL}
	}
	return trans
}

func newHarness(t *testing.T, model string, seed int64, n, shards int, mk transportFactory) *harness {
	t.Helper()
	cfg := clusterConfig(model, seed, shards)
	flat, err := streamgnn.NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamgnn.NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, shards)
	for s := range reps {
		reps[s] = NewReplica()
	}
	coord, err := NewCoordinator(eng, mk(t, reps))
	if err != nil {
		t.Fatal(err)
	}
	return &harness{flat: flat, eng: eng, coord: coord, reps: reps, d: testStream{n: n}}
}

// step advances both runs through stream step s and asserts bit-identical
// serving snapshots.
func (h *harness) step(t *testing.T, s int) {
	t.Helper()
	evs := h.d.eventsFor(s)
	if err := h.coord.RouteEvents(s, evs); err != nil {
		t.Fatal(err)
	}
	applyEvents(t, h.flat, evs)
	applyEvents(t, h.eng, evs)
	if s == 0 {
		addTestQuery(t, h.flat, h.d.n)
		addTestQuery(t, h.eng, h.d.n)
	}
	if err := h.flat.Step(); err != nil {
		t.Fatal(err)
	}
	if err := h.eng.Step(); err != nil {
		t.Fatal(err)
	}
	h.coord.PublishStep(s)
	a, b := h.flat.QuerySnapshot(), h.eng.QuerySnapshot()
	if a == nil || b == nil {
		t.Fatalf("step %d: missing serving snapshot", s)
	}
	sameMatrix(t, s, a.Emb().Data, b.Emb().Data)
}

// checkRemoteServing answers event queries through the replica fan-out and
// asserts bit-equality with the coordinator's own snapshot answers.
func (h *harness) checkRemoteServing(t *testing.T, step int) {
	t.Helper()
	reqs := []query.Request{
		{Kind: query.KindEvent, Anchor: 0},
		{Kind: query.KindEvent, Anchor: h.d.n / 2},
		{Kind: query.KindEvent, Anchor: h.d.n - 1},
	}
	snap := h.eng.QuerySnapshot()
	want := snap.Answer(reqs, nil)
	remotes := h.coord.RemoteAnswerers()
	for i, r := range reqs {
		s := h.coord.Route(r)
		if s < 0 {
			continue
		}
		got := remotes[s]([]query.Request{r})
		if got == nil {
			t.Fatalf("step %d: replica %d refused to answer anchor %d", step, s, r.Anchor)
		}
		if got[0] != want[i] {
			t.Fatalf("step %d: remote answer %+v != local %+v", step, got[0], want[i])
		}
	}
	// Link and density queries always stay on the coordinator.
	if s := h.coord.Route(query.Request{Kind: query.KindLink, Src: 0, Dst: 1}); s != -1 {
		t.Fatalf("link query routed to replica %d, want local", s)
	}
	if s := h.coord.Route(query.Request{Kind: query.KindDensity, Node: 0}); s != -1 {
		t.Fatalf("density query routed to replica %d, want local", s)
	}
}

func (h *harness) finish(t *testing.T) {
	t.Helper()
	o1, o2 := h.flat.Outcomes(), h.eng.Outcomes()
	if fmt.Sprintf("%+v", o1) != fmt.Sprintf("%+v", o2) {
		t.Fatal("query outcomes diverged between in-process and clustered runs")
	}
	m1, m2 := h.flat.Metrics(), h.eng.Metrics()
	if fmt.Sprintf("%+v", m1) != fmt.Sprintf("%+v", m2) {
		t.Fatalf("metrics diverged:\n  in-process: %+v\n  clustered:  %+v", m1, m2)
	}
}

// The tentpole guarantee: a coordinator driving 2 loopback replicas is
// bit-identical to the in-process shards=2 engine over a 200-step seeded
// stream — embeddings every step, remote answers every step, and the query
// outcomes and metrics at the end. Training every 25 steps makes the
// equality survive mirror invalidation and full resyncs.
func TestClusterLoopbackBitEquality200(t *testing.T) {
	h := newHarness(t, "WinGNN", 7, 80, 2, loopbackFactory)
	for s := 0; s < 200; s++ {
		h.step(t, s)
		h.checkRemoteServing(t, s)
	}
	h.finish(t)
	if v := h.coord.tele.forwardRPCs.Value(); v == 0 {
		t.Fatal("no forward RPCs issued; test proved nothing")
	}
	if v := h.coord.tele.localFallbacks.Value(); v != 0 {
		t.Fatalf("%d local fallbacks in a healthy cluster", v)
	}
	for s, r := range h.reps {
		st := r.Stats()
		if st.Forwards == 0 || st.Publishes == 0 || st.Answers == 0 {
			t.Fatalf("replica %d sat idle: %+v", s, st)
		}
		if st.HaloEvents == 0 {
			t.Fatalf("replica %d saw no halo traffic; replication rule untested", s)
		}
	}
}

// The same equality for a recurrent model: TGCN's per-node state rows are
// mirrored by full syncs and row patches, and the advanced rows the replicas
// return must land back in the coordinator's model bit-exactly.
func TestClusterLoopbackRecurrent200(t *testing.T) {
	h := newHarness(t, "TGCN", 11, 60, 2, loopbackFactory)
	for s := 0; s < 200; s++ {
		h.step(t, s)
		if s%10 == 0 {
			h.checkRemoteServing(t, s)
		}
	}
	h.finish(t)
	var patches int64
	for _, r := range h.reps {
		patches += r.Stats().Patches
	}
	if patches == 0 {
		t.Fatal("no state-row patches shipped; the incremental mirror path never ran")
	}
}

// The localhost HTTP transport is held to the same bar: JSON round-trips of
// every payload (Float64s carries raw IEEE-754 bits) must not perturb a
// single bit over 200 steps, for a memoryless and a recurrent model.
func TestClusterHTTPBitEquality200(t *testing.T) {
	for _, model := range []string{"WinGNN", "TGCN"} {
		t.Run(model, func(t *testing.T) {
			h := newHarness(t, model, 7, 48, 2, httpFactory)
			for s := 0; s < 200; s++ {
				h.step(t, s)
				if s%25 == 0 {
					h.checkRemoteServing(t, s)
				}
			}
			h.finish(t)
		})
	}
}

// Three replicas and the range layout: the coordinator must be agnostic to
// both the shard count and the partition function.
func TestClusterThreeReplicasRangeLayout(t *testing.T) {
	cfg := clusterConfig("WinGNN", 5, 3)
	cfg.ShardLayout = "range"
	flat, err := streamgnn.NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamgnn.NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, 3)
	for s := range reps {
		reps[s] = NewReplica()
	}
	coord, err := NewCoordinator(eng, loopbackFactory(t, reps))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{flat: flat, eng: eng, coord: coord, reps: reps, d: testStream{n: 64}}
	for s := 0; s < 60; s++ {
		h.step(t, s)
	}
	h.finish(t)
}

// A replica failing mid-stream degrades to local execution without touching
// a bit: the coordinator falls back to in-process ForwardPart for the dead
// shard, then resyncs the replica when it comes back.
func TestClusterReplicaFailureFallback(t *testing.T) {
	h := newHarness(t, "TGCN", 13, 48, 2, loopbackFactory)
	failing := false
	h.coord.trans[0].(*Loopback).Fail = func(op string) error {
		if failing {
			return fmt.Errorf("injected %s failure", op)
		}
		return nil
	}
	for s := 0; s < 120; s++ {
		if s == 40 {
			failing = true
		}
		if s == 80 {
			failing = false
		}
		h.step(t, s)
	}
	h.finish(t)
	if v := h.coord.tele.localFallbacks.Value(); v == 0 {
		t.Fatal("failure window produced no local fallbacks")
	}
	if !h.coord.reps[0].connected.Load() {
		t.Fatal("replica 0 never reconnected after the failure window")
	}
	if h.reps[0].Stats().FullSyncs < 2 {
		t.Fatal("reconnect did not trigger a fresh full sync")
	}
}

// Kill one replica mid-stream, bring up a fresh process from its own
// checkpoint plus WAL replay, swap the transport — equality must survive,
// which is the per-replica crash-recovery contract.
func TestClusterKillReplicaResume(t *testing.T) {
	h := newHarness(t, "TGCN", 17, 48, 2, loopbackFactory)
	var wal bytes.Buffer
	h.reps[1].SetWAL(NewWAL(&wal))

	var ck bytes.Buffer
	for s := 0; s < 120; s++ {
		h.step(t, s)
		if s == 99 {
			if err := h.reps[1].SaveCheckpoint(&ck); err != nil {
				t.Fatal(err)
			}
		}
	}

	// "Crash" replica 1 and restart it from checkpoint + WAL.
	fresh := NewReplica()
	if err := fresh.RestoreCheckpoint(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Config(); got.Shard != 1 {
		t.Fatalf("restored replica serves shard %d, want 1", got.Shard)
	}
	if err := fresh.ReplayWAL(bytes.NewReader(wal.Bytes())); err != nil {
		t.Fatal(err)
	}
	if la := fresh.LastApplied(); la != 119 {
		t.Fatalf("WAL replay brought the mirror to step %d, want 119", la)
	}
	fresh.SetWAL(NewWAL(&wal))
	h.reps[1] = fresh
	h.coord.SetTransport(1, &Loopback{R: fresh})

	for s := 120; s < 200; s++ {
		h.step(t, s)
		if s%10 == 0 {
			h.checkRemoteServing(t, s)
		}
	}
	h.finish(t)
	if fresh.Stats().Forwards == 0 {
		t.Fatal("restarted replica never forwarded")
	}
}

// A replica restarted with nothing but its checkpoint (WAL lost) is still
// brought current by outbox redelivery alone, because the coordinator keeps
// every unacknowledged batch and re-routes replayed history on resume.
func TestClusterReplicaRestartWithoutWAL(t *testing.T) {
	h := newHarness(t, "WinGNN", 19, 32, 2, loopbackFactory)
	for s := 0; s < 30; s++ {
		h.step(t, s)
	}
	// The outbox was pruned as batches were acknowledged; a fresh unseeded
	// replica therefore needs redelivery from step 0. Simulate a coordinator
	// restart having re-routed history (RouteEvents for every replayed step).
	fresh := NewReplica()
	h.reps[1] = fresh
	h.coord.SetTransport(1, &Loopback{R: fresh})
	for s := 0; s < 30; s++ {
		if err := h.coord.RouteEvents(s, h.d.eventsFor(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Replica 0 deduplicates the replayed batches by step; replica 1 applies
	// them all on its next contact.
	for s := 30; s < 60; s++ {
		h.step(t, s)
	}
	h.finish(t)
	if la := fresh.LastApplied(); la != 59 {
		t.Fatalf("redelivered replica at step %d, want 59", la)
	}
}
