package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"streamgnn"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/obs"
	"streamgnn/internal/query"
	"streamgnn/internal/shard"
	"streamgnn/internal/stream"
)

// Coordinator owns the authoritative Engine and drives one replica per
// shard over a Transport. It implements streamgnn.ShardForwarder: the
// engine keeps computing everything P-dependent-free (dirty sets, regions,
// fallback decisions, training, workload), and the coordinator farms out
// only the per-shard region forwards, folding the returned embedding and
// state rows back so the engine's model stays the single source of truth.
//
// Failure handling is fallback-first: any transport error marks the replica
// down and the coordinator runs that part locally via dgnn.ForwardPart —
// the in-process code path, so results never change, only where they are
// computed. Delivery is at-least-once: every routed event batch stays in a
// per-replica outbox until the replica acknowledges it (dedup by step on
// the replica), and a reconnecting replica is brought current with a fresh
// Hello, outbox redelivery and a full model sync.
//
// The coordinator is driven from the step loop (RouteEvents before the
// engine step, PublishStep after) and is not itself goroutine-safe, with
// one deliberate exception: the serving fan-out path (Route/RemoteAnswerers)
// touches only atomics and the transports, so query serving never contends
// with stepping.
type Coordinator struct {
	eng    *streamgnn.Engine
	g      *graph.Dynamic
	model  dgnn.Model
	sh     *shard.Sharding
	hidden int
	base   ReplicaConfig // template; Shard is filled per replica

	trans []Transport
	reps  []repState

	stateVersion uint64
	headsVersion uint64
	// stepChanged collects the ids committed by the current step's sharded
	// forward; PublishStep turns them into the incremental serving delta.
	stepChanged []int

	tele coordTelemetry
}

type repState struct {
	connected atomic.Bool
	needFull  bool
	serveFull bool
	sentHeads uint64
	pending   []int // ids committed since the replica's last sync/patch
	outbox    []StepEvents
}

// serveStep is the step whose serving snapshot replicas currently mirror;
// read by the answer fan-out concurrently with the step loop.
type coordTelemetry struct {
	serveStep atomic.Int64

	forwardRPCs    obs.Counter
	forwardErrors  obs.Counter
	localFallbacks obs.Counter
	fullSyncs      obs.Counter
	patches        obs.Counter
	patchRows      obs.Counter
	publishes      obs.Counter
	publishErrors  obs.Counter
	remoteAnswers  obs.Counter
	answerErrors   obs.Counter
	reconnects     obs.Counter

	forwardLatency *obs.Histogram
	publishLatency *obs.Histogram
	answerLatency  *obs.Histogram

	ownedEvents []int64 // per replica, atomic
	haloEvents  []int64 // per replica, atomic
	lastApplied []int64 // per replica, atomic: last acked event step
	outboxLen   []int64 // per replica, atomic
}

// NewCoordinator wraps eng — a sharded engine (Config.Shards == len(trans))
// — and installs itself as the engine's shard forwarder. The model must
// support distribution: per-node recurrent state only (dgnn.StatePregrower;
// EvolveGCN's per-step weight dynamics cannot be mirrored row-wise) and no
// DeltaForward (its stage caches have no per-shard decomposition).
func NewCoordinator(eng *streamgnn.Engine, trans []Transport) (*Coordinator, error) {
	g := eng.Graph()
	sh := g.Sharding()
	if sh == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a sharded engine (Config.Shards > 1)")
	}
	if sh.P != len(trans) {
		return nil, fmt.Errorf("cluster: engine has %d shards, got %d replica transports", sh.P, len(trans))
	}
	model := eng.Model()
	if _, ok := model.(dgnn.StatePregrower); !ok {
		return nil, fmt.Errorf("cluster: model %s cannot be distributed (per-step weight dynamics on the committed path)", model.Name())
	}
	cfg := eng.Config()
	c := &Coordinator{
		eng:    eng,
		g:      g,
		model:  model,
		sh:     sh,
		hidden: model.Hidden(),
		base: ReplicaConfig{
			Shards:      sh.P,
			Layout:      sh.Layout.String(),
			Model:       cfg.Model,
			Hidden:      cfg.Hidden,
			FeatDim:     g.FeatDim(),
			WindowSteps: cfg.WindowSteps,
		},
		trans:        trans,
		reps:         make([]repState, sh.P),
		stateVersion: 1,
		headsVersion: 1,
	}
	for r := range c.reps {
		c.reps[r].needFull = true
		c.reps[r].serveFull = true
	}
	c.tele.serveStep.Store(-1)
	c.tele.forwardLatency = obs.NewHistogram(obs.DefaultLatencyBuckets())
	c.tele.publishLatency = obs.NewHistogram(obs.DefaultLatencyBuckets())
	c.tele.answerLatency = obs.NewHistogram(obs.DefaultLatencyBuckets())
	c.tele.ownedEvents = make([]int64, sh.P)
	c.tele.haloEvents = make([]int64, sh.P)
	c.tele.lastApplied = make([]int64, sh.P)
	for s := range c.tele.lastApplied {
		c.tele.lastApplied[s] = -1
	}
	c.tele.outboxLen = make([]int64, sh.P)
	if err := eng.SetShardForwarder(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Replicas returns the shard count.
func (c *Coordinator) Replicas() int { return c.sh.P }

// SetTransport swaps the transport for one shard (a replica restarted at a
// new address) and marks the replica down so the next contact renegotiates.
func (c *Coordinator) SetTransport(s int, t Transport) {
	c.trans[s] = t
	c.reps[s].connected.Store(false)
	c.reps[s].needFull = true
	c.reps[s].serveFull = true
}

// RouteEvents replicates one step's event batch to every replica outbox.
// Full replication is the halo rule taken to its closure: region parts are
// connected components that may span shards, and subgraph normalization
// reads global degrees, so every replica needs the whole event stream; the
// owned/halo split is accounted per replica for telemetry (see DESIGN.md
// §17). Call it for every step batch, before the engine step that consumes
// it — including during resume fast-forward, so replicas behind a restarted
// coordinator are redelivered the replayed history (they dedup by step).
func (c *Coordinator) RouteEvents(step int, events []stream.Event) error {
	if len(events) == 0 {
		return nil
	}
	wire, err := EncodeEvents(events)
	if err != nil {
		return err
	}
	// Owned/halo accounting: an event is "owned" by every replica holding
	// one of the nodes it touches, halo traffic for the rest.
	nextID := c.g.N()
	scratch := make([]int, 0, 2)
	ownerHit := make([]bool, c.sh.P)
	for _, ev := range wire {
		scratch = ev.touches(nextID, scratch[:0])
		if ev.Op == opNode {
			nextID++
		}
		for r := range ownerHit {
			ownerHit[r] = false
		}
		for _, v := range scratch {
			ownerHit[c.sh.Of(v)] = true
		}
		for r := range ownerHit {
			if ownerHit[r] {
				atomic.AddInt64(&c.tele.ownedEvents[r], 1)
			} else {
				atomic.AddInt64(&c.tele.haloEvents[r], 1)
			}
		}
	}
	batch := StepEvents{Step: step, Events: wire}
	for r := range c.reps {
		c.reps[r].outbox = append(c.reps[r].outbox, batch)
		atomic.StoreInt64(&c.tele.outboxLen[r], int64(len(c.reps[r].outbox)))
	}
	return nil
}

// hello (re)opens the session with replica s: prune the outbox to what the
// replica already holds and schedule a full model sync plus a full serving
// publish — reconnects never assume any mirror survived.
func (c *Coordinator) hello(s int) bool {
	resp, err := c.trans[s].Hello(HelloRequest{Config: c.replicaConfig(s)})
	if err != nil {
		c.reps[s].connected.Store(false)
		return false
	}
	c.pruneOutbox(s, resp.LastApplied)
	c.reps[s].needFull = true
	c.reps[s].serveFull = true
	c.reps[s].sentHeads = 0
	c.reps[s].connected.Store(true)
	c.tele.reconnects.Inc()
	return true
}

func (c *Coordinator) replicaConfig(s int) ReplicaConfig {
	cfg := c.base
	cfg.Shard = s
	return cfg
}

func (c *Coordinator) pruneOutbox(s, lastApplied int) {
	ob := c.reps[s].outbox
	keep := 0
	for keep < len(ob) && ob[keep].Step <= lastApplied {
		keep++
	}
	if keep > 0 {
		c.reps[s].outbox = append([]StepEvents(nil), ob[keep:]...)
	}
	atomic.StoreInt64(&c.tele.outboxLen[s], int64(len(c.reps[s].outbox)))
	atomic.StoreInt64(&c.tele.lastApplied[s], int64(lastApplied))
}

func (c *Coordinator) markDown(s int) {
	c.reps[s].connected.Store(false)
	c.reps[s].needFull = true
	c.reps[s].serveFull = true
}

// ForwardShards implements streamgnn.ShardForwarder in three phases. Phase
// one (serial) prepares every request: state buffers are pregrown for the
// whole graph, and each replica's sync or patch is gathered from the
// model's live state *before any part runs* — at this point live state
// equals the BeginStep snapshot, which is exactly the state the replica
// must forward from. Phase two (parallel) issues the RPCs, with local
// dgnn.ForwardPart fallbacks for down replicas running on workers exactly
// like the in-process fan-out. Phase three (serial, shard order) validates
// responses, scatters the returned live state rows into the engine's model,
// and assembles the dgnn.ShardForward results the engine merges; any
// failure inside a response falls back to running that part locally, which
// is always safe because the coordinator holds the full graph and model.
func (c *Coordinator) ForwardShards(step int, parts [][]int, exact []int) []dgnn.ShardForward {
	P := len(parts)
	res := make([]dgnn.ShardForward, P)
	c.stepChanged = append([]int(nil), exact...)
	if pg, ok := c.model.(dgnn.StatePregrower); ok {
		pg.PregrowState(c.g.N())
	}
	sr, hasStateRows := c.model.(dgnn.StateRows)

	// Phase 1: prepare requests serially, before any state moves.
	reqs := make([]*ForwardRequest, P)
	for s := 0; s < P; s++ {
		if len(parts[s]) == 0 {
			res[s].Shard = s
			continue
		}
		if !c.reps[s].connected.Load() && !c.hello(s) {
			continue // phase 2 runs this part locally
		}
		req := &ForwardRequest{
			Step:         step,
			Events:       c.reps[s].outbox,
			StateVersion: c.stateVersion,
			Part:         parts[s],
			Exact:        exact,
		}
		if c.reps[s].needFull {
			req.Sync = &ModelSync{
				Version: c.stateVersion,
				Params:  gatherParams(c.model.Params()),
				States:  dumpsOf(c.model.DumpState()),
			}
		} else if hasStateRows && len(c.reps[s].pending) > 0 {
			ids := c.reps[s].pending
			req.Patch = &StatePatch{IDs: ids, States: dumpsOf(sr.GatherStateRows(ids))}
		}
		reqs[s] = req
	}

	// Phase 2: remote forwards and local fallbacks in parallel; remote
	// responses do not touch the engine's model until phase 3.
	resps := make([]*ForwardResponse, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for s := 0; s < P; s++ {
		if len(parts[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if reqs[s] == nil {
				res[s] = dgnn.ForwardPart(c.g, c.model, s, parts[s], exact)
				c.tele.localFallbacks.Inc()
				return
			}
			t0 := time.Now() //streamlint:ordered-ok RPC latency telemetry; the timestamp never feeds computation
			resp, err := c.trans[s].Forward(*reqs[s])
			c.tele.forwardLatency.ObserveSince(t0)
			c.tele.forwardRPCs.Inc()
			if err != nil {
				errs[s] = err
				return
			}
			resps[s] = &resp
		}(s)
	}
	wg.Wait()

	// Phase 3: fold results back in shard order.
	for s := 0; s < P; s++ {
		if len(parts[s]) == 0 || reqs[s] == nil {
			continue
		}
		sf, err := c.adoptForward(s, reqs[s], resps[s], errs[s])
		if err != nil {
			c.tele.forwardErrors.Inc()
			c.markDown(s)
			res[s] = dgnn.ForwardPart(c.g, c.model, s, parts[s], exact)
			c.tele.localFallbacks.Inc()
			continue
		}
		res[s] = sf
	}

	// Every replica owes the rows this step committed — its own included
	// (harmless: the values are identical) — until its next sync or patch.
	for s := 0; s < P; s++ {
		c.reps[s].pending = mergeSorted(c.reps[s].pending, exact)
	}
	return res
}

// adoptForward validates one replica's forward response, scatters its state
// rows into the engine's model, and returns the merged ShardForward. The
// validation runs before any mutation, so a bad response leaves the model
// untouched for the local fallback.
func (c *Coordinator) adoptForward(s int, req *ForwardRequest, resp *ForwardResponse, rpcErr error) (dgnn.ShardForward, error) {
	if rpcErr != nil {
		return dgnn.ShardForward{}, rpcErr
	}
	want := dgnn.IntersectSorted(req.Exact, req.Part)
	if resp.Shard != s || len(resp.IDs) != len(want) {
		return dgnn.ShardForward{}, fmt.Errorf("cluster: shard %d returned %d rows, part holds %d exact rows", resp.Shard, len(resp.IDs), len(want))
	}
	for i := range want {
		if resp.IDs[i] != want[i] {
			return dgnn.ShardForward{}, fmt.Errorf("cluster: shard %d returned row id %d, want %d", s, resp.IDs[i], want[i])
		}
	}
	out, err := resp.Out.matrix()
	if err != nil {
		return dgnn.ShardForward{}, err
	}
	if out.Rows != len(want) || out.Cols != c.hidden {
		return dgnn.ShardForward{}, fmt.Errorf("cluster: shard %d embedding payload %dx%d, want %dx%d", s, out.Rows, out.Cols, len(want), c.hidden)
	}
	if sr, ok := c.model.(dgnn.StateRows); ok {
		if err := sr.ScatterStateRows(resp.IDs, stateDumps(resp.StateRows)); err != nil {
			return dgnn.ShardForward{}, err
		}
	} else if len(resp.StateRows) != 0 {
		return dgnn.ShardForward{}, fmt.Errorf("cluster: stateless model %s returned %d state matrices", c.model.Name(), len(resp.StateRows))
	}
	// Bookkeeping: the replica is now current through this sync/patch.
	c.pruneOutbox(s, resp.LastApplied)
	c.reps[s].needFull = false
	c.reps[s].pending = nil
	if req.Sync != nil {
		c.tele.fullSyncs.Inc()
	} else if req.Patch != nil {
		c.tele.patches.Inc()
		c.tele.patchRows.Add(int64(len(req.Patch.IDs)))
	}
	rows := make([]int, len(resp.IDs))
	for i := range rows {
		rows[i] = i
	}
	return dgnn.ShardForward{Shard: s, IDs: resp.IDs, Rows: rows, Out: out}, nil
}

// InvalidateMirrors implements streamgnn.ShardForwarder: training moved the
// parameters (or a full forward rewrote every state row), so every model
// mirror, state patch baseline and serving mirror is stale.
func (c *Coordinator) InvalidateMirrors() {
	c.stateVersion++
	c.headsVersion++
	for s := range c.reps {
		c.reps[s].needFull = true
		c.reps[s].serveFull = true
		c.reps[s].pending = nil
	}
}

// PublishStep pushes the engine's post-step serving snapshot to every
// replica's serving mirror: the rows this step's forward committed (or the
// whole matrix after a full forward, invalidation or reconnect), the heads
// when their version moved, plus the event outbox so replicas stay fresh
// even on steps their shard sat out. Call it after every Engine.Step.
// Replica failures only mark the replica down — serving falls back to the
// coordinator, never blocks the stream.
func (c *Coordinator) PublishStep(step int) {
	snap := c.eng.QuerySnapshot()
	if snap == nil {
		return
	}
	emb := snap.Emb()
	heads := snap.Heads()
	changed := c.stepChanged
	c.stepChanged = nil
	var headDumps []Dump
	var wg sync.WaitGroup
	P := c.sh.P
	reqs := make([]*PublishRequest, P)
	for s := 0; s < P; s++ {
		if !c.reps[s].connected.Load() && !c.hello(s) {
			continue
		}
		req := &PublishRequest{
			Step:         step,
			Events:       c.reps[s].outbox,
			N:            emb.Rows,
			HeadsVersion: c.headsVersion,
		}
		if c.reps[s].serveFull {
			req.Full = true
			req.Rows = dumpMatrix(emb)
		} else {
			req.IDs = changed
			rows := Dump{Rows: len(changed), Cols: c.hidden, Data: make(Float64s, len(changed)*c.hidden)}
			for k, id := range changed {
				copy(rows.Data[k*c.hidden:(k+1)*c.hidden], emb.Row(id))
			}
			req.Rows = rows
		}
		if c.reps[s].sentHeads != c.headsVersion {
			if headDumps == nil {
				headDumps = gatherParams(heads.Params())
			}
			req.Heads = headDumps
		}
		reqs[s] = req
	}
	resps := make([]*PublishResponse, P)
	errs := make([]error, P)
	for s := 0; s < P; s++ {
		if reqs[s] == nil {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			t0 := time.Now() //streamlint:ordered-ok RPC latency telemetry; the timestamp never feeds computation
			resp, err := c.trans[s].Publish(*reqs[s])
			c.tele.publishLatency.ObserveSince(t0)
			if err != nil {
				errs[s] = err
				return
			}
			resps[s] = &resp
		}(s)
	}
	wg.Wait()
	for s := 0; s < P; s++ {
		if reqs[s] == nil {
			continue
		}
		if errs[s] != nil {
			c.tele.publishErrors.Inc()
			c.markDown(s)
			continue
		}
		c.tele.publishes.Inc()
		c.pruneOutbox(s, resps[s].LastApplied)
		c.reps[s].serveFull = false
		c.reps[s].sentHeads = c.headsVersion
	}
	c.tele.serveStep.Store(int64(step))
}

// Route decides where a predictive query is answered: event queries go to
// the replica owning the anchor, everything else (link pairs span shards,
// density needs the coordinator's KDE state) stays local. Lock-free — safe
// on serving goroutines (serve.Router for serve.NewFanout).
func (c *Coordinator) Route(req query.Request) int {
	if req.Kind != query.KindEvent || req.Anchor < 0 {
		return -1
	}
	s := c.sh.Of(req.Anchor)
	if !c.reps[s].connected.Load() {
		return -1
	}
	return s
}

// RemoteAnswerers returns one serve.Answerer-shaped function per replica,
// for serve.NewFanout. Each pins the coordinator's last published step, so
// a lagging replica refuses and the batch falls back to the local answerer
// — remote serving is an accelerator, never a source of different answers.
// A transport error returns nil (fan-out falls back locally) without
// touching replica state: the step loop owns reconnection.
func (c *Coordinator) RemoteAnswerers() []func([]query.Request) []query.Answer {
	out := make([]func([]query.Request) []query.Answer, c.sh.P)
	for s := range out {
		s := s
		out[s] = func(reqs []query.Request) []query.Answer {
			step := c.tele.serveStep.Load()
			if step < 0 || !c.reps[s].connected.Load() {
				return nil
			}
			t0 := time.Now() //streamlint:ordered-ok RPC latency telemetry; the timestamp never feeds computation
			resp, err := c.trans[s].Answer(AnswerRequest{Step: int(step), Reqs: reqs})
			c.tele.answerLatency.ObserveSince(t0)
			if err != nil {
				c.tele.answerErrors.Inc()
				return nil
			}
			answers, err := unwireAnswers(resp.Answers)
			if err != nil {
				c.tele.answerErrors.Inc()
				return nil
			}
			c.tele.remoteAnswers.Add(int64(len(reqs)))
			return answers
		}
	}
	return out
}

// WriteMetrics appends the streamgnn_cluster_* metric family in Prometheus
// text format: RPC and fallback counters, sync/patch traffic, per-replica
// owned/halo event replication, per-replica lag and outbox depth, and the
// three fan-out latency histograms. Counters and gauges are atomics, so
// this is safe to call from the /metrics handler while the step loop runs.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	obs.WriteHeader(w, "streamgnn_cluster_replicas", "Configured shard replicas.", "gauge")
	obs.WriteIntValue(w, "streamgnn_cluster_replicas", "", int64(c.sh.P))
	obs.WriteHeader(w, "streamgnn_cluster_forward_rpcs_total", "Forward RPCs issued to replicas.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_forward_rpcs_total", "", c.tele.forwardRPCs.Value())
	obs.WriteHeader(w, "streamgnn_cluster_forward_errors_total", "Forward RPCs that failed or returned invalid results.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_forward_errors_total", "", c.tele.forwardErrors.Value())
	obs.WriteHeader(w, "streamgnn_cluster_local_fallbacks_total", "Shard parts the coordinator ran locally (replica down or failed).", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_local_fallbacks_total", "", c.tele.localFallbacks.Value())
	obs.WriteHeader(w, "streamgnn_cluster_full_syncs_total", "Full model-mirror syncs shipped to replicas.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_full_syncs_total", "", c.tele.fullSyncs.Value())
	obs.WriteHeader(w, "streamgnn_cluster_state_patches_total", "Incremental state-row patches shipped to replicas.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_state_patches_total", "", c.tele.patches.Value())
	obs.WriteHeader(w, "streamgnn_cluster_state_patch_rows_total", "State rows shipped in incremental patches.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_state_patch_rows_total", "", c.tele.patchRows.Value())
	obs.WriteHeader(w, "streamgnn_cluster_publishes_total", "Serving-snapshot publishes delivered to replicas.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_publishes_total", "", c.tele.publishes.Value())
	obs.WriteHeader(w, "streamgnn_cluster_publish_errors_total", "Serving-snapshot publishes that failed.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_publish_errors_total", "", c.tele.publishErrors.Value())
	obs.WriteHeader(w, "streamgnn_cluster_remote_answers_total", "Predictive queries answered by replicas via fan-out.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_remote_answers_total", "", c.tele.remoteAnswers.Value())
	obs.WriteHeader(w, "streamgnn_cluster_answer_errors_total", "Answer fan-out calls that fell back to local serving.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_answer_errors_total", "", c.tele.answerErrors.Value())
	obs.WriteHeader(w, "streamgnn_cluster_reconnects_total", "Successful Hello handshakes (first connects included).", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_reconnects_total", "", c.tele.reconnects.Value())
	obs.WriteHeader(w, "streamgnn_cluster_events_owned_total", "Replicated events touching a node the replica owns.", "counter")
	obs.WriteIndexedIntValues(w, "streamgnn_cluster_events_owned_total", "replica", atomicSnapshot(c.tele.ownedEvents))
	obs.WriteHeader(w, "streamgnn_cluster_events_halo_total", "Replicated events that are pure halo traffic for the replica.", "counter")
	obs.WriteIndexedIntValues(w, "streamgnn_cluster_events_halo_total", "replica", atomicSnapshot(c.tele.haloEvents))
	serveStep := c.tele.serveStep.Load()
	lags := make([]int64, c.sh.P)
	for s := range lags {
		la := atomic.LoadInt64(&c.tele.lastApplied[s])
		if serveStep >= 0 {
			lags[s] = serveStep - la
		}
	}
	obs.WriteHeader(w, "streamgnn_cluster_replica_lag_steps", "Steps between the last published step and the replica's last applied event batch.", "gauge")
	obs.WriteIndexedIntValues(w, "streamgnn_cluster_replica_lag_steps", "replica", lags)
	obs.WriteHeader(w, "streamgnn_cluster_outbox_batches", "Unacknowledged event batches queued per replica.", "gauge")
	obs.WriteIndexedIntValues(w, "streamgnn_cluster_outbox_batches", "replica", atomicSnapshot(c.tele.outboxLen))
	obs.WriteHistogram(w, "streamgnn_cluster_forward_latency_seconds", "", c.tele.forwardLatency.Snapshot())
	obs.WriteHistogram(w, "streamgnn_cluster_publish_latency_seconds", "", c.tele.publishLatency.Snapshot())
	obs.WriteHistogram(w, "streamgnn_cluster_answer_latency_seconds", "", c.tele.answerLatency.Snapshot())
}

func atomicSnapshot(vals []int64) []int64 {
	out := make([]int64, len(vals))
	for i := range vals {
		out[i] = atomic.LoadInt64(&vals[i])
	}
	return out
}
