package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WAL is the replica's write-ahead log of applied event batches: one JSON
// line per StepEvents, in the wire encoding (floats bit-exact via Float64s).
// A restarted replica replays it to rebuild its graph mirror independently
// of the coordinator; anything the log misses is redelivered by the
// coordinator's outbox after the reconnect Hello, deduplicated by step.
type WAL struct {
	w   io.Writer
	buf *bufio.Writer
	enc *json.Encoder
}

// NewWAL returns a WAL appending to w (typically an os.File opened with
// O_APPEND). Batches are flushed to w per append; callers that need
// durability against power loss should pass a file and Sync it themselves.
func NewWAL(w io.Writer) *WAL {
	buf := bufio.NewWriter(w)
	return &WAL{w: w, buf: buf, enc: json.NewEncoder(buf)}
}

// Append writes one applied batch.
func (l *WAL) Append(b StepEvents) error {
	if err := l.enc.Encode(b); err != nil {
		return err
	}
	return l.buf.Flush()
}

// ReplayWAL re-applies every batch in rd to the replica's graph mirror.
// Call it on a configured replica (after RestoreCheckpoint) and before
// SetWAL, so replayed batches are not re-appended to the log.
func (r *Replica) ReplayWAL(rd io.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.configured {
		return fmt.Errorf("cluster: replay needs a configured replica (restore the checkpoint first)")
	}
	if r.wal != nil {
		return fmt.Errorf("cluster: replay with a WAL attached would re-append every batch; attach it after")
	}
	dec := json.NewDecoder(rd)
	for {
		var b StepEvents
		if err := dec.Decode(&b); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("cluster: wal replay: %w", err)
		}
		if err := r.applyBatches([]StepEvents{b}); err != nil {
			return fmt.Errorf("cluster: wal replay: %w", err)
		}
	}
}
