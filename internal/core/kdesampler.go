package core

import (
	"fmt"
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/sampling"
)

// KDESampler is Algorithm 2 (GraphKDESampling): it maintains a sliding
// window of w seed nodes — the dynamic sample whose kernels make up the
// graph KDE — picks a seed proportionally to its chips, performs a random
// walk that stops with probability q per hop, and returns the stopping node
// as the sample. With probability p the sample replaces the oldest seed;
// otherwise a uniformly random node does (the "teleport" of line 12, which
// keeps the seed set from collapsing into one dense region).
type KDESampler struct {
	g     *graph.Dynamic
	chips *sampling.Chips
	cfg   Config
	rng   *rand.Rand

	seeds  []int // FIFO ring: oldest at head
	oldest int

	// Walks and WalkHops count random walks and their total hop length
	// (observability: mean hops ≈ (1-q)/q).
	Walks    int
	WalkHops int
}

// NewKDESampler initializes the seed window with w uniform nodes
// (Algorithm 2 line 1), preferring connected nodes.
func NewKDESampler(g *graph.Dynamic, chips *sampling.Chips, cfg Config, rng *rand.Rand) *KDESampler {
	if g.N() == 0 {
		panic("core: KDESampler needs a non-empty graph")
	}
	s := &KDESampler{g: g, chips: chips, cfg: cfg, rng: rng}
	for i := 0; i < cfg.Seeds; i++ {
		s.seeds = append(s.seeds, s.teleportNode())
	}
	return s
}

// teleportNode draws a uniform node, retrying a few times to find one that
// is part of the current snapshot (has edges).
func (s *KDESampler) teleportNode() int {
	v := s.rng.Intn(s.g.N())
	for try := 0; try < 8 && s.g.Degree(v) == 0; try++ {
		v = s.rng.Intn(s.g.N())
	}
	return v
}

// Seeds returns a copy of the current seed window.
func (s *KDESampler) Seeds() []int {
	out := make([]int, len(s.seeds))
	copy(out, s.seeds)
	return out
}

// SeedState returns the seed window and its FIFO cursor for checkpointing.
func (s *KDESampler) SeedState() (seeds []int, oldest int) {
	return s.Seeds(), s.oldest
}

// RestoreSeedState restores a window captured with SeedState. The restored
// window replaces the freshly initialized one so a resumed run continues the
// exact sampling trajectory of the saved run.
func (s *KDESampler) RestoreSeedState(seeds []int, oldest int) error {
	if len(seeds) == 0 {
		return fmt.Errorf("core: empty KDE seed window")
	}
	if oldest < 0 || oldest >= len(seeds) {
		return fmt.Errorf("core: KDE seed cursor %d out of range [0,%d)", oldest, len(seeds))
	}
	for _, v := range seeds {
		if v < 0 || v >= s.g.N() {
			return fmt.Errorf("core: KDE seed %d outside graph of %d nodes", v, s.g.N())
		}
	}
	s.seeds = append(s.seeds[:0], seeds...)
	s.oldest = oldest
	return nil
}

// SampleNode implements NodeSampler: one iteration of Algorithm 2's loop
// (lines 3-12), expected time O(1/q).
func (s *KDESampler) SampleNode() int {
	// Line 3: pick a seed proportionally to its chip weight.
	cur := s.pickSeed()
	// Lines 4-8: random walk with stop probability q per node.
	s.Walks++
	for s.rng.Float64() >= s.cfg.StopProb {
		next, ok := s.randomNeighbor(cur)
		if !ok {
			break // isolated node: the walk must stop here
		}
		cur = next
		s.WalkHops++
	}
	// Lines 9-12: slide the seed window. A node that is already a seed
	// would shrink the window's support (repeated re-insertion can collapse
	// every seed onto one node), so the window is kept duplicate-free:
	// duplicate candidates teleport, and if even the teleports collide the
	// old seed is kept.
	replacement := cur
	if s.cfg.Teleport && s.rng.Float64() >= s.cfg.SeedKeep {
		replacement = s.teleportNode()
	}
	for try := 0; try < 8 && s.contains(replacement); try++ {
		replacement = s.teleportNode()
	}
	if !s.contains(replacement) {
		s.seeds[s.oldest] = replacement
		s.oldest = (s.oldest + 1) % len(s.seeds)
	}
	return cur
}

func (s *KDESampler) contains(v int) bool {
	for _, u := range s.seeds {
		if u == v {
			return true
		}
	}
	return false
}

func (s *KDESampler) pickSeed() int {
	s.chips.EnsureN(s.g.N())
	var total float64
	for _, v := range s.seeds {
		total += s.chips.EffectiveWeight(v)
	}
	if total <= 0 {
		// No seed is part of the current snapshot; restart the window.
		for i := range s.seeds {
			s.seeds[i] = s.teleportNode()
		}
		return s.seeds[s.rng.Intn(len(s.seeds))]
	}
	r := s.rng.Float64() * total
	for _, v := range s.seeds {
		r -= s.chips.EffectiveWeight(v)
		if r < 0 {
			return v
		}
	}
	return s.seeds[len(s.seeds)-1]
}

// randomNeighbor picks a uniform neighbor over v's in- and out-edges.
func (s *KDESampler) randomNeighbor(v int) (int, bool) {
	out := s.g.OutEdges(v)
	in := s.g.InEdges(v)
	d := len(out) + len(in)
	if d == 0 {
		return 0, false
	}
	i := s.rng.Intn(d)
	if i < len(out) {
		return out[i].To, true
	}
	return in[i-len(out)].To, true
}
