package core

import "streamgnn/internal/graph"

// conflictScratch holds the reusable buffers of the dependency-aware
// scheduler's conflict-group build (Config.DependencySchedule). All slices
// grow to high-water marks and are reused across steps, so a warm build
// allocates nothing — the same discipline as AdaptiveLearner's
// units/nodes/seeds scratch.
//
// The build is pure bookkeeping over the step's sampled partitions: two
// units conflict iff their L-hop partition node sets intersect, conflicts
// are closed transitively with a union-find, and the resulting groups come
// out in CSR form. Everything is keyed by unit index and global node id, so
// the grouping depends only on the sampled units and the graph — never on
// worker count or timing.
type conflictScratch struct {
	// parent is the union-find forest over unit indices. Unions keep the
	// minimum unit index as the root, so roots double as deterministic group
	// representatives.
	parent []int32
	// stamp maps global node id -> (claiming unit index + 1), 0 = unclaimed.
	// Sized to the full graph like subgraph.build's scratch; re-zeroed after
	// the build by re-walking the partitions, so cost stays O(Σ|ball|).
	stamp []int32
	// groupOf maps unit index -> dense group id; rootGrp maps union-find
	// root -> dense group id during assignment.
	groupOf []int32
	rootGrp []int32
	// offsets/units are the CSR output: group g holds unit indices
	// units[offsets[g]:offsets[g+1]]. counts is the scatter cursor.
	offsets []int
	units   []int
	counts  []int
}

// find returns the root of x with path halving.
func (cs *conflictScratch) find(x int32) int32 {
	p := cs.parent
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// union merges the groups of a and b, keeping the smaller root (minimum unit
// index) as representative so group identity is order-independent.
func (cs *conflictScratch) union(a, b int32) {
	ra, rb := cs.find(a), cs.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		cs.parent[rb] = ra
	} else {
		cs.parent[ra] = rb
	}
}

// growInt32 returns buf resized to n, reallocating only past the high-water
// mark.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// build partitions the step's units into conflict groups. subs[i] is unit
// i's L-hop partition; nNodes is the graph's node count (stamp domain). It
// returns the CSR grouping: group g is units[offsets[g]:offsets[g+1]], unit
// indices ascending within each group, groups ordered by minimum unit index.
// The returned slices alias the scratch and are valid until the next build.
func (cs *conflictScratch) build(subs []*graph.Subgraph, nNodes int) (offsets, units []int, numGroups int) {
	n := len(subs)
	cs.parent = growInt32(cs.parent, n)
	for i := range cs.parent {
		cs.parent[i] = int32(i)
	}
	cs.stamp = growInt32(cs.stamp, nNodes)
	stamp := cs.stamp
	// Claim pass: the first unit to touch a node stamps it; later units
	// touching the same node union with the stamping unit. Transitive closure
	// comes free from the union-find, so each node is visited once.
	for i, sub := range subs {
		for _, v := range sub.Nodes {
			if s := stamp[v]; s != 0 {
				cs.union(s-1, int32(i))
			} else {
				stamp[v] = int32(i + 1)
			}
		}
	}
	// Re-zero only the touched entries (pool invariant: stamp is all-zero
	// between builds).
	for _, sub := range subs {
		for _, v := range sub.Nodes {
			stamp[v] = 0
		}
	}
	// Dense group ids in order of first appearance scanning units 0..n-1;
	// with min-root unions this orders groups by minimum unit index.
	cs.groupOf = growInt32(cs.groupOf, n)
	cs.rootGrp = growInt32(cs.rootGrp, n)
	for i := range cs.rootGrp {
		cs.rootGrp[i] = -1
	}
	numGroups = 0
	for i := 0; i < n; i++ {
		r := cs.find(int32(i))
		if cs.rootGrp[r] < 0 {
			cs.rootGrp[r] = int32(numGroups)
			numGroups++
		}
		cs.groupOf[i] = cs.rootGrp[r]
	}
	// Counting scatter into CSR; the ascending scan keeps unit indices
	// ascending within each group.
	if cap(cs.counts) < numGroups {
		cs.counts = make([]int, n)
	}
	counts := cs.counts[:numGroups]
	for g := range counts {
		counts[g] = 0
	}
	for i := 0; i < n; i++ {
		counts[cs.groupOf[i]]++
	}
	if cap(cs.offsets) < numGroups+1 {
		cs.offsets = make([]int, n+1)
	}
	offsets = cs.offsets[:numGroups+1]
	offsets[0] = 0
	for g := 0; g < numGroups; g++ {
		offsets[g+1] = offsets[g] + counts[g]
	}
	if cap(cs.units) < n {
		cs.units = make([]int, n)
	}
	units = cs.units[:n]
	for g := range counts {
		counts[g] = 0
	}
	for i := 0; i < n; i++ {
		g := cs.groupOf[i]
		units[offsets[g]+counts[g]] = i
		counts[g]++
	}
	return offsets, units, numGroups
}
