package core

import (
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/sampling"
)

func mkAnchorQuery(anchor int) query.EventQuery {
	return query.EventQuery{
		Name:    "anchored",
		Anchors: []int{anchor},
		Delta:   1,
		Labeler: func(_ *graph.Dynamic, a, s int) (float64, bool) { return 0, true },
	}
}

// Regression: on a graph dominated by isolated (window-expired) nodes, the
// KDE seed window must neither collapse onto a single node nor sample
// isolated nodes while connected ones exist.
func TestKDESamplerResistsIsolationCollapse(t *testing.T) {
	g := graph.NewDynamic(1)
	const connected = 10
	const isolated = 200
	for i := 0; i < connected+isolated; i++ {
		g.AddNode(0, nil)
	}
	for i := 0; i < connected; i++ {
		g.AddUndirectedEdge(i, (i+1)%connected, 0, 0)
	}
	chips := sampling.NewChips(g.N(), 5)
	for v := connected; v < g.N(); v++ {
		chips.SetActive(v, false)
	}
	cfg := DefaultConfig()
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(1)))
	for i := 0; i < 500; i++ {
		v := s.SampleNode()
		if v >= connected {
			t.Fatalf("sampled isolated node %d", v)
		}
	}
	// The window must hold more than one distinct seed.
	distinct := map[int]bool{}
	for _, v := range s.Seeds() {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("seed window collapsed: %v", s.Seeds())
	}
}

// Regression: duplicate samples must not crowd the seed window.
func TestKDESamplerSeedsStayDiverse(t *testing.T) {
	g := graph.NewDynamic(1)
	// Star graph: every walk gravitates to the hub.
	hub := g.AddNode(0, nil)
	for i := 0; i < 30; i++ {
		v := g.AddNode(0, nil)
		g.AddUndirectedEdge(hub, v, 0, 0)
	}
	chips := sampling.NewChips(g.N(), 5)
	cfg := DefaultConfig()
	cfg.SeedKeep = 1 // never teleport voluntarily; dedup must still protect
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(2)))
	for i := 0; i < 2000; i++ {
		s.SampleNode()
	}
	counts := map[int]int{}
	for _, v := range s.Seeds() {
		counts[v]++
	}
	for v, c := range counts {
		if c > 1 {
			t.Fatalf("seed %d appears %d times in the window", v, c)
		}
	}
}

// Anchors of the workload stay sampleable even when isolated.
func TestAnchorsRemainActive(t *testing.T) {
	g, tr, cfg := testSetup(t, 10, Weighted)
	// Isolate node 9 by expiring everything, then re-add edges elsewhere.
	g.ExpireEdgesBefore(100)
	for i := 0; i < 8; i++ {
		g.AddUndirectedEdge(i, (i+1)%8, 0, 200)
	}
	// Register a workload anchored at the isolated node 9.
	q9 := mkAnchorQuery(9)
	tr.Workload.AddQuery(&q9)
	a := NewAdaptiveLearner(tr, cfg, Weighted, rand.New(rand.NewSource(3)))
	a.Step(nil)
	if !a.Chips.Active(9) {
		t.Fatal("isolated anchor was deactivated")
	}
	// A non-anchor isolated node is deactivated.
	if a.Chips.Active(8) {
		t.Fatal("isolated non-anchor stayed active")
	}
}

// Inactive nodes never appear as weighted samples.
func TestAdaptiveSamplingSkipsInactive(t *testing.T) {
	g, tr, cfg := testSetup(t, 12, Weighted)
	g.ExpireEdgesBefore(100)
	for i := 0; i < 6; i++ {
		g.AddUndirectedEdge(i, (i+1)%6, 0, 200)
	}
	a := NewAdaptiveLearner(tr, cfg, Weighted, rand.New(rand.NewSource(4)))
	a.refreshActivity()
	for i := 0; i < 200; i++ {
		if v := a.sampler.SampleNode(); v >= 6 {
			t.Fatalf("sampled expired node %d", v)
		}
	}
}
