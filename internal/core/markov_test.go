package core

import (
	"math"
	"testing"

	"streamgnn/internal/kde"
)

func TestChipChainStateEnumeration(t *testing.T) {
	// n=3, k=2, min=1: compositions of 6 into 3 parts >= 1 -> C(5,2)=10.
	c := NewChipChain([]float64{0, 0, 0}, 2, 1, true)
	if len(c.States()) != 10 {
		t.Fatalf("states = %d, want 10", len(c.States()))
	}
	for _, s := range c.States() {
		sum := 0
		for _, v := range s {
			if v < 1 {
				t.Fatalf("state %v violates chip floor", s)
			}
			sum += v
		}
		if sum != 6 {
			t.Fatalf("state %v has wrong total", s)
		}
	}
}

func TestChipChainRowsAreStochastic(t *testing.T) {
	for _, uniform := range []bool{true, false} {
		c := NewChipChain([]float64{0.3, 1.1, 2.0}, 2, 1, uniform)
		for i, row := range c.TransitionMatrix() {
			var sum float64
			for _, p := range row {
				if p < -1e-15 {
					t.Fatalf("negative transition prob in row %d", i)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("row %d sums to %v (uniform=%v)", i, sum, uniform)
			}
		}
	}
}

// Theorem IV.4 under the proof's transition accounting (uniform pair
// selection): the stationary distribution is exactly e^{u_s}/Z.
func TestTheoremIV4ExactUnderUniformPairs(t *testing.T) {
	utilities := []float64{0.5, 2.0, 3.5}
	c := NewChipChain(utilities, 2, 1, true)
	got := c.Stationary(30000)
	want := c.TheoreticalStationary()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("state %v: stationary %v, want %v", c.States()[i], got[i], want[i])
		}
	}
}

// With Algorithm 1's chip-proportional sampling the law holds approximately:
// high-utility states still dominate and the ordering of state probabilities
// tracks e^{u_s}.
func TestTheoremIV4ApproximateUnderChipSampling(t *testing.T) {
	utilities := []float64{0.5, 2.0, 6.0}
	c := NewChipChain(utilities, 2, 1, false)
	got := c.Stationary(30000)
	want := c.TheoreticalStationary()
	if kde.TotalVariation(got, want) > 0.15 {
		t.Fatalf("TV distance %v too large", kde.TotalVariation(got, want))
	}
	// The max-utility state (all movable chips at node 2) must be the most
	// probable state.
	best, bestP := -1, -1.0
	for i, p := range got {
		if p > bestP {
			best, bestP = i, p
		}
	}
	s := c.States()[best]
	if s[2] != 4 || s[0] != 1 || s[1] != 1 {
		t.Fatalf("most probable state %v is not the max-utility one", s)
	}
}

// Theorem IV.3: the ratio of chip-move probabilities v1->v2 vs v2->v1 is
// exp((u2-u1)/(kn)) — an exponential function of the influence-function
// difference IF(v2) - IF(v1) = u2 - u1.
func TestTheoremIV3MoveRatio(t *testing.T) {
	utilities := []float64{1.0, 2.5}
	c := NewChipChain(utilities, 3, 1, true) // n=2, k=3, total 6
	P := c.TransitionMatrix()
	// Find an interior state (3,3).
	si := c.index[stateKey([]int{3, 3})]
	up := c.index[stateKey([]int{2, 4})]   // chip 0 -> 1 (toward higher utility)
	down := c.index[stateKey([]int{4, 2})] // chip 1 -> 0
	ratio := P[si][up] / P[si][down]
	want := math.Exp((utilities[1] - utilities[0]) / 6)
	if math.Abs(ratio-want) > 1e-12 {
		t.Fatalf("move ratio %v, want %v", ratio, want)
	}
}

func TestExpectedUtility(t *testing.T) {
	c := NewChipChain([]float64{1, 3}, 2, 1, true) // total 4 chips
	got := c.ExpectedUtility([]int{1, 3})
	want := 0.25*1 + 0.75*3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedUtility = %v, want %v", got, want)
	}
}

func TestChipChainRejectsTrivial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChipChain([]float64{1}, 2, 1, true)
}
