package core

import (
	"fmt"
	"math"
)

// ChipChain builds the exact Markov chain of Algorithm 1's chip state for a
// small graph with *fixed* node utilities, enabling a direct check of
// Theorem IV.4: the stationary probability of state s is proportional to
// e^{u_s}, u_s the expected temporal utility of s.
//
// With UniformPairs (pairs drawn uniformly rather than from D) the chain is
// exactly reversible with that stationary law — this matches the proof's
// transition accounting. With chip-proportional pair selection, as Algorithm
// 1 samples in practice, the pair-selection probability itself depends on
// the state and the law holds approximately; the test suite checks both.
type ChipChain struct {
	N            int
	K            int
	MinChips     int
	Utilities    []float64
	UniformPairs bool

	states [][]int
	index  map[string]int
}

// NewChipChain enumerates the state space: all chip vectors of length
// len(utilities) with every entry >= minChips summing to k*n.
func NewChipChain(utilities []float64, k, minChips int, uniformPairs bool) *ChipChain {
	n := len(utilities)
	if n < 2 {
		panic("core: ChipChain needs at least 2 nodes")
	}
	c := &ChipChain{
		N: n, K: k, MinChips: minChips,
		Utilities: utilities, UniformPairs: uniformPairs,
		index: make(map[string]int),
	}
	total := k * n
	cur := make([]int, n)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == n-1 {
			if left >= minChips {
				cur[pos] = left
				st := append([]int(nil), cur...)
				c.index[stateKey(st)] = len(c.states)
				c.states = append(c.states, st)
			}
			return
		}
		for v := minChips; v <= left-(n-1-pos)*minChips; v++ {
			cur[pos] = v
			rec(pos+1, left-v)
		}
	}
	rec(0, total)
	return c
}

func stateKey(s []int) string { return fmt.Sprint(s) }

// States returns the enumerated chip states.
func (c *ChipChain) States() [][]int { return c.states }

// ExpectedUtility returns u_s = Σ (c_i / total) · u_i for a state.
func (c *ChipChain) ExpectedUtility(state []int) float64 {
	total := float64(c.K * c.N)
	var u float64
	for i, ci := range state {
		u += float64(ci) / total * c.Utilities[i]
	}
	return u
}

// TransitionMatrix builds the exact one-step transition matrix of Algorithm
// 1 lines 2-16 with one pair per step and fixed utilities.
func (c *ChipChain) TransitionMatrix() [][]float64 {
	m := len(c.states)
	total := float64(c.K * c.N)
	P := make([][]float64, m)
	for si, s := range c.states {
		row := make([]float64, m)
		for v1 := 0; v1 < c.N; v1++ {
			for v2 := 0; v2 < c.N; v2++ {
				var pPair float64
				if c.UniformPairs {
					pPair = 1 / float64(c.N*c.N)
				} else {
					pPair = float64(s[v1]) / total * float64(s[v2]) / total
				}
				if pPair == 0 {
					continue
				}
				// Lines 8-10: ties favor v2 as winner.
				w, l := v2, v1
				if c.Utilities[v1] > c.Utilities[v2] {
					w, l = v1, v2
				}
				delta := c.Utilities[w] - c.Utilities[l]
				// Branch A (prob 1/2): chip l -> w.
				if w != l && s[l] > c.MinChips {
					row[c.moveIndex(s, l, w)] += pPair * 0.5
				} else {
					row[si] += pPair * 0.5
				}
				// Branch B (prob 1/2 * e^{-delta/kn}): chip w -> l.
				pB := 0.5 * math.Exp(-delta/total)
				if w != l && s[w] > c.MinChips {
					row[c.moveIndex(s, w, l)] += pPair * pB
				} else {
					row[si] += pPair * pB
				}
				// Remaining mass stays put.
				row[si] += pPair * (0.5 - pB)
			}
		}
		P[si] = row
	}
	return P
}

func (c *ChipChain) moveIndex(s []int, from, to int) int {
	next := append([]int(nil), s...)
	next[from]--
	next[to]++
	idx, ok := c.index[stateKey(next)]
	if !ok {
		panic(fmt.Sprintf("core: move produced unknown state %v", next))
	}
	return idx
}

// Stationary computes the stationary distribution by power iteration.
func (c *ChipChain) Stationary(iters int) []float64 {
	P := c.TransitionMatrix()
	m := len(c.states)
	pi := make([]float64, m)
	for i := range pi {
		pi[i] = 1 / float64(m)
	}
	next := make([]float64, m)
	for it := 0; it < iters; it++ {
		for j := range next {
			next[j] = 0
		}
		for i, p := range pi {
			if p == 0 {
				continue
			}
			row := P[i]
			for j, q := range row {
				next[j] += p * q
			}
		}
		pi, next = next, pi
	}
	return pi
}

// TheoreticalStationary returns the Theorem IV.4 law π_s = e^{u_s} / Z over
// the enumerated states.
func (c *ChipChain) TheoreticalStationary() []float64 {
	out := make([]float64, len(c.states))
	var z float64
	for i, s := range c.states {
		out[i] = math.Exp(c.ExpectedUtility(s))
		z += out[i]
	}
	for i := range out {
		out[i] /= z
	}
	return out
}
