package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/rng"
	"streamgnn/internal/tensor"
)

// Trainer executes units of training work: either one node's partition
// (Section III-C) or a full-graph pass (the Full/Uniform baseline). Each
// unit combines the two training parts of Section III-B — self-supervised
// targets from the graph's node/edge labels and supervised targets from the
// analytics workload's revealed query results — and returns the *temporal
// utility* of the unit: the training loss measured before backpropagation
// (the sample-hardness utility of Section IV-A).
type Trainer struct {
	// Stats counts training material consumed (observability). It leads the
	// struct so its int64 counters sit at 8-byte offsets even under 32-bit
	// layout rules: sync/atomic's 64-bit operations fault on 386/arm when the
	// word is not 8-byte aligned, and only the start of an allocation is
	// guaranteed to be.
	Stats TrainerStats

	Model    dgnn.Model
	Workload *query.Workload
	Opt      autodiff.Optimizer
	G        *graph.Dynamic

	SelfWeight float64
	SupWeight  float64
	// ReplaySize is the minibatch of revealed (embedding, truth) pairs
	// added to every partition's supervised loss. Replay trains only the
	// prediction heads (the cached embeddings are constants), curing the
	// catastrophic interference of single-target online head updates at a
	// cost independent of graph size.
	ReplaySize int
	// BallSupervision widens supervised targets to the whole partition.
	BallSupervision bool

	rng *rand.Rand
}

// TrainerStats counts the training targets consumed so far. Fields are
// updated atomically (loss construction runs on worker goroutines under
// parallel pair execution); sums are order-independent, so the counters stay
// deterministic regardless of worker count.
type TrainerStats struct {
	SelfNodeTargets int64
	SelfEdgeTargets int64
	SupNodeTargets  int64
	SupPairTargets  int64
	ReplayTargets   int64
}

// tapePool recycles training tapes across units and steps. A recycled tape
// brings back its node shells and scratch slices (see autodiff.Tape), so a
// warm training unit allocates little beyond its op closures. Safe for
// concurrent Get/Put from worker goroutines; each tape is used by one
// goroutine at a time.
var tapePool = sync.Pool{New: func() any { return autodiff.NewTape() }}

// putTape releases the tape's buffers and returns it to the pool.
func putTape(tp *autodiff.Tape) {
	tp.Release()
	tapePool.Put(tp)
}

// NewTrainer wires a trainer; opt must manage both model and head params.
func NewTrainer(g *graph.Dynamic, m dgnn.Model, w *query.Workload, opt autodiff.Optimizer, cfg Config, rng *rand.Rand) *Trainer {
	return &Trainer{
		Model:           m,
		Workload:        w,
		Opt:             opt,
		G:               g,
		SelfWeight:      cfg.SelfWeight,
		SupWeight:       cfg.SupWeight,
		ReplaySize:      cfg.ReplaySize,
		BallSupervision: cfg.BallSupervision,
		rng:             rng,
	}
}

// Unit is one evaluated-but-not-applied training partition: the forward
// pass and loss of node v's partition, with the temporal utility (the loss
// before backpropagation — Section IV-A) already measured. Units are the
// unit of parallelism: evaluation is read-only with respect to model
// parameters, recurrent state, and optimizer state, so many units can be
// built concurrently against the same parameter snapshot; ApplyUnit then
// backpropagates them serially in a fixed order.
type Unit struct {
	Node    int
	Utility float64
	OK      bool

	tape *autodiff.Tape
	loss *autodiff.Node
}

// EvalUnit builds node v's training unit using a private splitmix64 rng
// seeded with seed (O(1) seeding — the standard lagged-Fibonacci source pays
// a ~600-word initialization per seed, which profiles as several percent of
// a training step), so evaluation order (and worker count) cannot perturb
// the sampled replay batches and negatives. Safe to call from worker
// goroutines.
func (t *Trainer) EvalUnit(v int, seed int64) Unit {
	return t.evalUnit(v, rand.New(rng.New(seed)))
}

func (t *Trainer) evalUnit(v int, rng *rand.Rand) Unit {
	sub := t.G.Partition(v, t.Model.Layers())
	view := dgnn.SubView(sub)
	view.NoCommit = true // recurrent state advances only at inference time
	tp := tapePool.Get().(*autodiff.Tape)
	tp.Owned(view.Feat) // fresh per view; recycled with the tape
	emb := t.Model.Forward(tp, view)
	loss := t.buildLoss(tp, emb, t.partitionMaterial(v, sub, rng), rng)
	if loss == nil {
		putTape(tp)
		return Unit{Node: v}
	}
	return Unit{Node: v, Utility: loss.Value.Data[0], OK: true, tape: tp, loss: loss}
}

// ApplyUnit backpropagates an evaluated unit and applies the optimizer step,
// then recycles the unit's tape. Must be called serially (optimizer state is
// not synchronized); call in a deterministic order to keep seeded runs
// reproducible. No-op for units without training material.
func (t *Trainer) ApplyUnit(u Unit) {
	if !u.OK {
		return
	}
	u.tape.Backward(u.loss)
	t.Opt.Step()
	putTape(u.tape)
}

// AccumulateUnit backpropagates an evaluated unit into the shared parameter
// gradients without stepping the optimizer, then recycles the unit's tape.
// Must be called serially in a deterministic order; follow a batch of
// accumulations with a single Opt.Step() to apply the summed gradient. It
// reports whether the unit contributed a gradient.
func (t *Trainer) AccumulateUnit(u Unit) bool {
	if !u.OK {
		return false
	}
	u.tape.Backward(u.loss)
	putTape(u.tape)
	return true
}

// GradUnitTo backpropagates an evaluated unit into sink's private gradient
// buffers instead of the shared parameter gradients, then recycles the unit's
// tape. Unlike ApplyUnit/AccumulateUnit it touches no shared model or
// optimizer state, so units may run concurrently as long as each goroutine
// uses its own sinks (the tape and tensor pools are concurrency-safe).
// Merge the sinks serially in a fixed order (GradSink.MergeInto) and step the
// optimizer to apply the result. It reports whether the unit contributed a
// gradient.
func (t *Trainer) GradUnitTo(u Unit, sink *autodiff.GradSink) bool {
	if !u.OK {
		return false
	}
	u.tape.BackwardTo(u.loss, sink)
	putTape(u.tape)
	return true
}

// DiscardUnit recycles an evaluated unit without applying it.
func (t *Trainer) DiscardUnit(u Unit) {
	if u.tape != nil {
		putTape(u.tape)
	}
}

// TrainPartition performs node v's training partition and returns its
// temporal utility and whether any training material was available.
func (t *Trainer) TrainPartition(v int) (utility float64, trained bool) {
	u := t.evalUnit(v, t.rng)
	if !u.OK {
		return 0, false
	}
	t.ApplyUnit(u)
	return u.Utility, true
}

// TrainFull performs one full-graph training pass (the baseline) and
// returns its loss before backpropagation.
func (t *Trainer) TrainFull() (loss float64, trained bool) {
	view := dgnn.FullView(t.G)
	view.NoCommit = true
	tp := tapePool.Get().(*autodiff.Tape)
	tp.Owned(view.Feat)
	emb := t.Model.Forward(tp, view)
	l := t.buildLoss(tp, emb, fullMaterial(t.G, t.Workload), t.rng)
	if l == nil {
		putTape(tp)
		return 0, false
	}
	loss = l.Value.Data[0]
	tp.Backward(l)
	t.Opt.Step()
	putTape(tp)
	return loss, true
}

// EvalPartition measures node v's partition loss without updating anything
// (used by what-if analyses and tests).
func (t *Trainer) EvalPartition(v int) (utility float64, ok bool) {
	u := t.evalUnit(v, t.rng)
	if !u.OK {
		return 0, false
	}
	t.DiscardUnit(u)
	return u.Utility, true
}

// material is the training signal available in one unit of work.
type material struct {
	selfNodeRows    []int
	selfNodeTargets []float64
	selfEdgeSrc     []int
	selfEdgeDst     []int
	selfEdgeTargets []float64
	sup             query.Supervision
	replay          bool
	// linkNegRows are detached embedding rows of global negative-sample
	// nodes, paired with the partition center for link self-supervision.
	linkNegRows [][]float64
	center      int
}

// partitionMaterial gathers node v's training targets per Section III-C:
// self-supervision from v itself and its incident labeled edges (the
// partition's own share of the self-supervised work), and supervised query
// targets from every anchor inside G_v (the queries whose relevant data
// overlaps the partition). rng is the unit's private source for negative
// sampling (never the trainer's shared one when units run concurrently).
func (t *Trainer) partitionMaterial(v int, sub *graph.Subgraph, rng *rand.Rand) material {
	m := material{replay: true, center: sub.Center}
	center := sub.Center
	if y, ok := t.G.Label(v); ok {
		m.selfNodeRows = append(m.selfNodeRows, center)
		m.selfNodeTargets = append(m.selfNodeTargets, y)
	}
	src, dst, labels := sub.LabeledEdges()
	for i := range src {
		if src[i] == center || dst[i] == center {
			m.selfEdgeSrc = append(m.selfEdgeSrc, src[i])
			m.selfEdgeDst = append(m.selfEdgeDst, dst[i])
			m.selfEdgeTargets = append(m.selfEdgeTargets, labels[i])
		}
	}
	if t.Workload != nil {
		sup := t.Workload.Supervision(sub, rng)
		if t.BallSupervision {
			m.sup = sup
		} else {
			// Keep only targets whose embeddings the truncated subgraph
			// computes exactly: node targets at the center (whose L-hop
			// receptive field the partition contains in full) and pair
			// targets incident to it. Targets anchored deeper in the ball
			// are computed from truncated neighborhoods.
			for i, row := range sup.NodeRows {
				if row == center {
					m.sup.NodeRows = append(m.sup.NodeRows, row)
					m.sup.NodeTargets = append(m.sup.NodeTargets, sup.NodeTargets[i])
				}
			}
			for i := range sup.PairSrc {
				if sup.PairSrc[i] == center || sup.PairDst[i] == center {
					m.sup.PairSrc = append(m.sup.PairSrc, sup.PairSrc[i])
					m.sup.PairDst = append(m.sup.PairDst, sup.PairDst[i])
					m.sup.PairLabels = append(m.sup.PairLabels, sup.PairLabels[i])
				}
			}
		}
	}
	if lt := linkTaskOf(t.Workload); lt != nil && rng != nil && sub.N() > 2 {
		// Structural self-supervision for link workloads (Section III-B:
		// "predicting chosen nodes/links in the network"): the center's
		// current edges are positives. Negatives pair the center with
		// *global* random nodes (their embeddings taken, detached, from the
		// last inference): partitions are community-local, so in-partition
		// negatives would cancel the community signal that link ranking
		// needs.
		nbrs := map[int]bool{center: true}
		count := 0
		for _, e := range t.G.OutEdges(v) {
			if li := sub.LocalID(e.To); li >= 0 && !nbrs[li] {
				nbrs[li] = true
				m.sup.PairSrc = append(m.sup.PairSrc, center)
				m.sup.PairDst = append(m.sup.PairDst, li)
				m.sup.PairLabels = append(m.sup.PairLabels, 1)
				count++
				if count >= 8 {
					break
				}
			}
		}
		if n := lt.NumEmbedded(); n > 1 && count > 0 {
			for k := 0; k < 2*count; k++ {
				nv := rng.Intn(n)
				if nv == v {
					continue
				}
				if row, ok := lt.EmbeddingRow(nv); ok {
					m.linkNegRows = append(m.linkNegRows, row)
				}
			}
		}
	}
	return m
}

func fullMaterial(g *graph.Dynamic, w *query.Workload) material {
	m := material{center: -1}
	for v := 0; v < g.N(); v++ {
		if y, ok := g.Label(v); ok {
			m.selfNodeRows = append(m.selfNodeRows, v)
			m.selfNodeTargets = append(m.selfNodeTargets, y)
		}
		for _, e := range g.OutEdges(v) {
			if e.HasLabel() {
				m.selfEdgeSrc = append(m.selfEdgeSrc, v)
				m.selfEdgeDst = append(m.selfEdgeDst, e.To)
				m.selfEdgeTargets = append(m.selfEdgeTargets, e.Label)
			}
		}
	}
	if w != nil {
		m.sup = w.SupervisionFull(g.N())
	}
	return m
}

// buildLoss assembles the weighted training loss over emb for the given
// material; it returns nil when no targets are available. rng draws the
// replay minibatches; stats counters are updated atomically so concurrent
// unit evaluation stays race-free.
func (t *Trainer) buildLoss(tp *autodiff.Tape, emb *autodiff.Node, m material, rng *rand.Rand) *autodiff.Node {
	heads := t.Workload.Heads()
	var total *autodiff.Node
	// cv builds a tape-owned target column so its buffer is recycled with
	// the tape instead of leaking from the buffer pool every unit.
	cv := func(vals []float64) *tensor.Matrix { return tp.Owned(colVec(vals)) }
	add := func(term *autodiff.Node, weight float64) {
		if weight != 1 {
			term = tp.Scale(term, weight)
		}
		if total == nil {
			total = term
		} else {
			total = tp.Add(total, term)
		}
	}
	if len(m.selfNodeRows) > 0 {
		pred := heads.SelfNode.Apply(tp, tp.GatherRows(emb, m.selfNodeRows))
		add(tp.MSE(pred, cv(m.selfNodeTargets)), t.SelfWeight)
		atomic.AddInt64(&t.Stats.SelfNodeTargets, int64(len(m.selfNodeRows)))
	}
	if len(m.selfEdgeSrc) > 0 {
		pred := heads.SelfEdge.Apply(tp, query.PairInput(tp, emb, m.selfEdgeSrc, m.selfEdgeDst))
		add(tp.MSE(pred, cv(m.selfEdgeTargets)), t.SelfWeight)
		atomic.AddInt64(&t.Stats.SelfEdgeTargets, int64(len(m.selfEdgeSrc)))
	}
	if len(m.sup.NodeRows) > 0 {
		pred := heads.Event.Apply(tp, tp.GatherRows(emb, m.sup.NodeRows))
		add(tp.MSE(pred, cv(m.sup.NodeTargets)), t.SupWeight)
		atomic.AddInt64(&t.Stats.SupNodeTargets, int64(len(m.sup.NodeRows)))
	}
	if len(m.sup.PairSrc) > 0 {
		logits := heads.Link.Apply(tp, query.PairInput(tp, emb, m.sup.PairSrc, m.sup.PairDst))
		add(tp.BCEWithLogits(logits, cv(m.sup.PairLabels)), t.SupWeight)
		atomic.AddInt64(&t.Stats.SupPairTargets, int64(len(m.sup.PairSrc)))
	}
	if len(m.linkNegRows) > 0 && m.center >= 0 {
		k := len(m.linkNegRows)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = m.center
		}
		centerRep := tp.GatherRows(emb, idx)
		negs := tp.Owned(tensor.New(k, len(m.linkNegRows[0])))
		for i, row := range m.linkNegRows {
			copy(negs.Row(i), row)
		}
		nc := autodiff.Constant(negs)
		in := tp.ConcatCols(tp.ConcatCols(centerRep, nc), tp.Mul(centerRep, nc))
		logits := heads.Link.Apply(tp, in)
		add(tp.BCEWithLogits(logits, tp.Owned(tensor.New(k, 1))), t.SelfWeight)
		atomic.AddInt64(&t.Stats.SelfEdgeTargets, int64(k))
	}
	if m.replay && t.Workload != nil && t.ReplaySize > 0 && rng != nil {
		if re, truths := t.Workload.ReplayBatch(rng, t.ReplaySize); re != nil {
			pred := heads.Event.Apply(tp, autodiff.Constant(tp.Owned(re)))
			add(tp.MSE(pred, cv(truths)), t.SupWeight)
			atomic.AddInt64(&t.Stats.ReplayTargets, int64(len(truths)))
		}
		if lt := t.Workload.LinkTask(); lt != nil {
			if re, labels := lt.ReplayBatch(rng, t.ReplaySize); re != nil {
				logits := heads.Link.Apply(tp, autodiff.Constant(tp.Owned(re)))
				add(tp.BCEWithLogits(logits, cv(labels)), t.SupWeight)
				atomic.AddInt64(&t.Stats.ReplayTargets, int64(len(labels)))
			}
		}
	}
	return total
}

func linkTaskOf(w *query.Workload) *query.LinkPredTask {
	if w == nil {
		return nil
	}
	return w.LinkTask()
}

func colVec(vals []float64) *tensor.Matrix {
	m := tensor.New(len(vals), 1)
	copy(m.Data, vals)
	return m
}
