package core

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/tensor"
)

// workloadSetup builds a ring with anchors, predicts and reveals once so the
// workload has revealed targets and replay material.
func workloadSetup(t *testing.T, cfg Config) (*graph.Dynamic, *Trainer, *query.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	g := graph.NewDynamic(2)
	const n = 14
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 2), 1})
		g.SetLabel(i, float64(i%2))
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, 0)
	}
	m := dgnn.NewTGCN(rng, 2, 4)
	heads := query.NewHeads(rng, 4)
	w := query.NewWorkload(heads)
	w.AddQuery(&query.EventQuery{
		Name:    "q",
		Anchors: []int{0, 3, 7},
		Delta:   1,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return float64(anchor), true
		},
	})
	opt := autodiff.NewAdam(cfg.LR, append(m.Params(), heads.Params()...))
	tr := NewTrainer(g, m, w, opt, cfg, rng)
	// One predict/reveal cycle to populate targets and replay.
	m.BeginStep(0)
	tp := autodiff.NewTape()
	emb := m.Forward(tp, dgnn.FullView(g))
	w.Predict(emb.Value, 0)
	w.Reveal(g, 1)
	return g, tr, w
}

func TestReplayTrainsHeadsAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	_, tr, _ := workloadSetup(t, cfg)
	if _, ok := tr.TrainPartition(3); !ok {
		t.Fatal("partition should have material")
	}
	if tr.Stats.ReplayTargets == 0 {
		t.Fatal("replay targets not consumed")
	}
	if tr.Stats.SupNodeTargets == 0 {
		t.Fatal("revealed anchor targets not consumed")
	}
}

func TestReplayDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplaySize = 0
	_, tr, _ := workloadSetup(t, cfg)
	tr.TrainPartition(3)
	if tr.Stats.ReplayTargets != 0 {
		t.Fatal("replay ran despite ReplaySize=0")
	}
}

func TestBallSupervisionWidensTargets(t *testing.T) {
	cfgBall := DefaultConfig()
	cfgBall.BallSupervision = true
	cfgBall.ReplaySize = 0
	_, trBall, _ := workloadSetup(t, cfgBall)
	cfgCtr := cfgBall
	cfgCtr.BallSupervision = false
	_, trCtr, _ := workloadSetup(t, cfgCtr)
	// Node 4's 2-hop ball contains anchor 3 but 4 is not an anchor: ball
	// supervision sees it, center-only does not.
	trBall.TrainPartition(4)
	trCtr.TrainPartition(4)
	if trBall.Stats.SupNodeTargets == 0 {
		t.Fatal("ball supervision found no anchor in ball")
	}
	if trCtr.Stats.SupNodeTargets != 0 {
		t.Fatal("center-only supervision leaked ball anchors")
	}
}

func TestSelfSupervisionIsCenterOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplaySize = 0
	_, tr, _ := workloadSetup(t, cfg)
	tr.TrainPartition(5)
	// The ring is fully labeled; a 2-hop ball holds 5 nodes, but only the
	// center's label may be used.
	if tr.Stats.SelfNodeTargets != 1 {
		t.Fatalf("self node targets = %d, want 1 (center only)", tr.Stats.SelfNodeTargets)
	}
}

func TestLinkSelfSupervisionGlobalNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.NewDynamic(2)
	const n = 20
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 3), 1})
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, 0)
	}
	m := dgnn.NewROLAND(rng, 2, 4)
	heads := query.NewHeads(rng, 4)
	w := query.NewWorkload(heads)
	w.SetLinkTask(query.NewLinkPredTask(4))
	cfg := DefaultConfig()
	opt := autodiff.NewAdam(cfg.LR, append(m.Params(), heads.Params()...))
	tr := NewTrainer(g, m, w, opt, cfg, rng)
	// Observe embeddings so EmbeddingRow works.
	m.BeginStep(0)
	tp := autodiff.NewTape()
	emb := m.Forward(tp, dgnn.FullView(g))
	w.Predict(emb.Value, 0)
	if _, ok := tr.TrainPartition(3); !ok {
		t.Fatal("link self-supervision should provide material")
	}
	if tr.Stats.SupPairTargets == 0 {
		t.Fatal("no positive link pairs trained")
	}
	if tr.Stats.SelfEdgeTargets == 0 {
		t.Fatal("no global-negative link examples trained")
	}
}

func TestFullMaterialHasNoReplayFlag(t *testing.T) {
	cfg := DefaultConfig()
	_, tr, _ := workloadSetup(t, cfg)
	before := tr.Stats.ReplayTargets
	tr.TrainFull()
	if tr.Stats.ReplayTargets != before {
		t.Fatal("full training must not consume replay (it already sees all targets)")
	}
}

func TestTrainerStatsAccumulate(t *testing.T) {
	cfg := DefaultConfig()
	_, tr, _ := workloadSetup(t, cfg)
	tr.TrainPartition(0)
	s1 := tr.Stats
	tr.TrainPartition(0)
	if tr.Stats.SelfNodeTargets <= s1.SelfNodeTargets {
		t.Fatal("stats did not accumulate")
	}
	_ = tensor.New(1, 1) // keep tensor import for colVec coverage below
	if colVec([]float64{1, 2}).Rows != 2 {
		t.Fatal("colVec wrong")
	}
}
