package core

import (
	"math/rand"
)

// Scheduler runs the selected training strategy at the configured interval.
// It is the piece the engine calls once per stream step.
type Scheduler struct {
	Strategy Strategy
	Trainer  *Trainer
	Adaptive *AdaptiveLearner // nil for Full

	cfg Config
	// TrainSteps counts executed training steps (observability).
	TrainSteps int
}

// NewScheduler wires a scheduler for the strategy.
func NewScheduler(t *Trainer, cfg Config, strategy Strategy, rng *rand.Rand) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{Strategy: strategy, Trainer: t, cfg: cfg}
	if strategy != Full {
		s.Adaptive = NewAdaptiveLearner(t, cfg, strategy, rng)
		// Partition extraction dominates warm adaptive steps; attach the
		// version-keyed LRU cache (Full trains whole snapshots and never
		// extracts partitions, so it gets none).
		if cfg.PartitionCacheCap > 0 && t.G.PartitionCache() == nil {
			t.G.EnablePartitionCache(cfg.PartitionCacheCap)
		}
	}
	return s, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// OnStep performs the step's training work if the step falls on the
// training interval. updated is the update set U of the step. It reports
// whether training ran.
func (s *Scheduler) OnStep(step int, updated []int) bool {
	if step%s.cfg.Interval != 0 {
		return false
	}
	s.TrainSteps++
	for round := 0; round < s.cfg.RoundsPerStep; round++ {
		switch s.Strategy {
		case Full:
			s.Trainer.TrainFull()
		default:
			s.Adaptive.Step(updated)
		}
	}
	return true
}
