package core

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
)

// ringsGraph builds k disjoint rings of ringN labeled nodes each — a sparse
// topology whose 2-hop partitions never cross ring boundaries.
func ringsGraph(k, ringN int) *graph.Dynamic {
	g := graph.NewDynamic(3)
	for r := 0; r < k; r++ {
		base := r * ringN
		for i := 0; i < ringN; i++ {
			g.AddNode(0, []float64{float64(i % 2), float64(r % 3), 1})
			g.SetLabel(base+i, float64(i%2))
		}
		for i := 0; i < ringN; i++ {
			g.AddUndirectedEdge(base+i, base+(i+1)%ringN, 0, 0)
		}
	}
	return g
}

// starGraph builds one hub connected to n-1 spokes: every 2-hop partition
// contains the hub, so all training units conflict.
func starGraph(n int) *graph.Dynamic {
	g := graph.NewDynamic(3)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 2), 0, 1})
		g.SetLabel(i, float64(i%2))
	}
	for i := 1; i < n; i++ {
		g.AddUndirectedEdge(0, i, 0, 0)
	}
	return g
}

// partitionsOf extracts the L-hop partitions of the given centers.
func partitionsOf(g *graph.Dynamic, centers []int, L int) []*graph.Subgraph {
	subs := make([]*graph.Subgraph, len(centers))
	for i, v := range centers {
		subs[i] = g.Partition(v, L)
	}
	return subs
}

// TestConflictBuildGroupsDisjointRings checks the conflict build on the
// sparse topology: units centered in distinct rings land in distinct groups,
// units sharing a ring share a group, groups come out ordered by minimum
// unit index with ascending unit indices inside, and the grouping is
// reproducible (it depends only on the inputs).
func TestConflictBuildGroupsDisjointRings(t *testing.T) {
	g := ringsGraph(4, 8)
	// Units: ring0, ring1, ring0 again (conflicts with unit 0), ring2, ring3.
	centers := []int{2, 9, 4, 17, 27}
	subs := partitionsOf(g, centers, 2)
	var cs conflictScratch
	offsets, units, numGroups := cs.build(subs, g.N())
	if numGroups != 4 {
		t.Fatalf("numGroups = %d, want 4", numGroups)
	}
	wantGroups := [][]int{{0, 2}, {1}, {3}, {4}}
	for gi, want := range wantGroups {
		got := units[offsets[gi]:offsets[gi+1]]
		if len(got) != len(want) {
			t.Fatalf("group %d = %v, want %v", gi, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("group %d = %v, want %v", gi, got, want)
			}
		}
	}
	// Cross-group receptive fields must be pairwise disjoint (the property
	// that makes concurrent apply safe), checked with the exact Overlaps
	// intersection rather than the build's stamps.
	groupOf := make([]int, len(subs))
	for gi := 0; gi < numGroups; gi++ {
		for _, u := range units[offsets[gi]:offsets[gi+1]] {
			groupOf[u] = gi
		}
	}
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			overlaps := subs[i].Overlaps(subs[j])
			sameGroup := groupOf[i] == groupOf[j]
			if overlaps && !sameGroup {
				t.Fatalf("units %d and %d overlap but are in groups %d and %d", i, j, groupOf[i], groupOf[j])
			}
		}
	}
	// Rebuild from the same inputs: identical output (worker count and
	// timing never enter the build, so this is the full determinism surface).
	offsets2, units2, numGroups2 := cs.build(subs, g.N())
	if numGroups2 != numGroups {
		t.Fatalf("rebuild numGroups = %d, want %d", numGroups2, numGroups)
	}
	for i := 0; i <= numGroups; i++ {
		if offsets2[i] != offsets[i] {
			t.Fatalf("rebuild offsets diverged at %d", i)
		}
	}
	for i := range units {
		if units2[i] != units[i] {
			t.Fatalf("rebuild units diverged at %d", i)
		}
	}
}

// TestConflictBuildHubCollapse checks the documented degenerate case: on a
// hub-heavy graph every partition contains the hub, so all units collapse
// into a single group (the schedule then degenerates to the serial path).
func TestConflictBuildHubCollapse(t *testing.T) {
	g := starGraph(12)
	subs := partitionsOf(g, []int{1, 4, 7, 10}, 2)
	var cs conflictScratch
	offsets, units, numGroups := cs.build(subs, g.N())
	if numGroups != 1 {
		t.Fatalf("numGroups = %d, want 1 (hub collapse)", numGroups)
	}
	if offsets[1]-offsets[0] != len(subs) {
		t.Fatalf("collapsed group holds %d units, want %d", offsets[1]-offsets[0], len(subs))
	}
	for i, u := range units {
		if u != i {
			t.Fatalf("collapsed group order = %v, want ascending unit indices", units)
		}
	}
}

// TestConflictBuildTransitiveClosure checks that conflicts chain: A∩B and
// B∩C nonempty puts A, B, C in one group even when A∩C is empty.
func TestConflictBuildTransitiveClosure(t *testing.T) {
	// A path graph: partitions of nodes 0, 2, 4 with L=1 are {0,1}, {1,2,3},
	// {3,4,5} — 0 and 4 don't touch, but both touch the middle unit.
	g := graph.NewDynamic(3)
	for i := 0; i < 6; i++ {
		g.AddNode(0, []float64{1, 0, 1})
	}
	for i := 0; i < 5; i++ {
		g.AddUndirectedEdge(i, i+1, 0, 0)
	}
	subs := partitionsOf(g, []int{0, 2, 4}, 1)
	if subs[0].Overlaps(subs[2]) {
		t.Fatal("test topology broken: end partitions should be disjoint")
	}
	var cs conflictScratch
	_, _, numGroups := cs.build(subs, g.N())
	if numGroups != 1 {
		t.Fatalf("numGroups = %d, want 1 (transitive closure through the middle unit)", numGroups)
	}
}

// TestScheduledStepCounters drives full adaptive steps through both
// topologies and checks the observability counters: the sparse stream forms
// more than one group per step, the hub stream collapses every step.
func TestScheduledStepCounters(t *testing.T) {
	newLearner := func(g *graph.Dynamic) *AdaptiveLearner {
		rng := rand.New(rand.NewSource(11))
		cfg := DefaultConfig()
		cfg.DependencySchedule = true
		cfg.Workers = 4
		cfg.PairsPerStep = 3
		g.EnablePartitionCache(cfg.PartitionCacheCap)
		m := dgnn.NewTGCN(rng, 3, 4)
		heads := query.NewHeads(rng, 4)
		w := query.NewWorkload(heads)
		opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, append(m.Params(), heads.Params()...)))
		return NewAdaptiveLearner(NewTrainer(g, m, w, opt, cfg, rng), cfg, Weighted, rng)
	}

	sparse := newLearner(ringsGraph(12, 8))
	for i := 0; i < 6; i++ {
		sparse.Step(nil)
	}
	if sparse.SchedSteps != 6 || sparse.SchedUnits != 36 {
		t.Fatalf("sparse counters: steps=%d units=%d, want 6/36", sparse.SchedSteps, sparse.SchedUnits)
	}
	if sparse.SchedGroups <= sparse.SchedSteps {
		t.Fatalf("sparse stream formed %d groups over %d steps — expected real parallelism", sparse.SchedGroups, sparse.SchedSteps)
	}

	hub := newLearner(starGraph(24))
	for i := 0; i < 6; i++ {
		hub.Step(nil)
	}
	if hub.SchedGroups != hub.SchedSteps {
		t.Fatalf("hub stream formed %d groups over %d steps, want full collapse", hub.SchedGroups, hub.SchedSteps)
	}
	if hub.SchedCollapsed != hub.SchedSteps {
		t.Fatalf("hub SchedCollapsed = %d, want %d", hub.SchedCollapsed, hub.SchedSteps)
	}
}
