package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/graph"
	"streamgnn/internal/sampling"
)

// NodeSampler abstracts GetSampleNode of Algorithm 1: plain chip sampling
// (chipSampler) or graph-KDE sampling (KDESampler, Algorithm 2).
type NodeSampler interface {
	// SampleNode draws the next node to train.
	SampleNode() int
}

// chipSampler draws directly from the chip distribution D.
type chipSampler struct {
	chips *sampling.Chips
	rng   *rand.Rand
}

// SampleNode implements NodeSampler.
func (s *chipSampler) SampleNode() int { return s.chips.Sample(s.rng) }

// AdaptiveLearner is Algorithm 1 (OnlineAdaptiveLearning): it maintains the
// chip distribution D, samples pairs of nodes per training step — favoring
// the update set U with probability p_u — performs each node's training
// partition, and moves chips between winner and loser according to the
// randomized rule whose stationary distribution weights states by e^{u_s}
// (Theorem IV.4).
//
// Step executes in three phases so pair evaluation can run on worker
// goroutines without giving up determinism:
//
//  1. Sampling (serial): all 2·PairsPerStep pair nodes are drawn with the
//     learner's rng, then each unit is assigned a private seed from the same
//     rng. The random stream consumed is independent of worker count.
//  2. Evaluation (parallel): the units' forward passes and losses are built
//     concurrently against the same parameter snapshot θ_t — the paper
//     measures temporal utility *before* backpropagation, so utilities are
//     well-defined at θ_t and independent of evaluation order. Evaluation
//     is read-only: NoCommit forwards never write model state, each unit
//     has its own tape and rng, and stats counters are atomic.
//  3. Apply (serial, fixed order): gradients are backpropagated and the
//     optimizer stepped in unit-index order, then the chip moves of lines
//     8-16 are decided per pair with the learner's rng.
//
// Workers=1 runs phase 2 on the caller's goroutine with the exact same
// seeds, so a seeded run is bit-identical for every worker count.
type AdaptiveLearner struct {
	// ParallelUnits counts units evaluated on worker goroutines (0 when
	// Workers <= 1; observability for streamgnn.Stats). Like every counter
	// in this block it is written with sync/atomic — Telemetry() readers
	// run concurrently with Step — and leads the struct so the int64s stay
	// 8-aligned on 386.
	ParallelUnits int64
	// Dependency-schedule counters (observability for streamgnn.Stats and
	// telemetry): steps scheduled, conflict groups formed, units scheduled,
	// and steps whose units all collapsed into a single group (the serial
	// degenerate case on hub-heavy graphs).
	SchedSteps     int64
	SchedGroups    int64
	SchedUnits     int64
	SchedCollapsed int64

	Chips   *sampling.Chips
	Trainer *Trainer

	cfg     Config
	rng     *rand.Rand
	sampler NodeSampler
	anchors map[int]bool

	// Incremental activity state: genuine[v] mirrors the activity predicate
	// (degree > 0 or anchor) so refreshActivity only reconsiders nodes the
	// graph marked dirty since the previous step. forcedAll notes that the
	// degenerate all-inactive fallback is in effect.
	genuine       []bool
	genuineActive int
	forcedAll     bool
	scanned       bool

	// Step scratch, reused across calls to keep the hot path allocation-free.
	units []Unit
	nodes []int
	seeds []int64

	// Dependency-schedule scratch (cfg.DependencySchedule): per-unit
	// partitions, the conflict-group builder's buffers, and one gradient sink
	// per unit. Sinks are per-unit, not per-group, so the merge order (unit
	// index 0..n-1) — and therefore the optimizer input — is independent of
	// how units were grouped or which worker ran them.
	subs     []*graph.Subgraph
	conflict conflictScratch
	sinks    []*autodiff.GradSink

	// Moves counts accepted chip moves (observability/tests).
	Moves int
	// Trained counts executed training partitions.
	Trained int
}

// NewAdaptiveLearner builds Algorithm 1 over the trainer's graph. strategy
// selects plain chip sampling (Weighted) or graph-KDE sampling (KDE).
func NewAdaptiveLearner(t *Trainer, cfg Config, strategy Strategy, rng *rand.Rand) *AdaptiveLearner {
	chips := sampling.NewChips(t.G.N(), cfg.K)
	chips.MinChips = cfg.MinChips
	a := &AdaptiveLearner{Chips: chips, Trainer: t, cfg: cfg, rng: rng}
	switch strategy {
	case Weighted:
		a.sampler = &chipSampler{chips: chips, rng: rng}
	case KDE:
		a.sampler = NewKDESampler(t.G, chips, cfg, rng)
	default:
		panic("core: AdaptiveLearner requires Weighted or KDE strategy")
	}
	return a
}

// Sampler exposes the underlying node sampler (tests, analysis).
func (a *AdaptiveLearner) Sampler() NodeSampler { return a.sampler }

// getSampleNode is Algorithm 1 lines 17-22: with probability p_u sample
// from D restricted to the update set, otherwise from the sampler.
func (a *AdaptiveLearner) getSampleNode(updated []int) int {
	if len(updated) > 0 && a.rng.Float64() < a.cfg.PUpdate {
		if v, ok := a.Chips.SampleFrom(a.rng, updated); ok {
			return v
		}
	}
	return a.sampler.SampleNode()
}

// refreshActivity aligns sampling eligibility with the current snapshot:
// under a sliding window, nodes whose edges have all expired are not part
// of G_t and are excluded from D until they reconnect. Query anchors stay
// eligible regardless — the workload-aware half of the paper's selective
// training: data relevant to the continuous queries is always worth
// training, even when momentarily quiet.
//
// After the first full scan the refresh is incremental: only nodes the
// graph reports as activity-dirty (degree or attribute changes, including
// window expiry) are reconsidered, so quiet steps on large graphs cost
// O(|dirty|) instead of O(n).
func (a *AdaptiveLearner) refreshActivity() {
	g := a.Trainer.G
	a.Chips.EnsureN(g.N())
	if a.anchors == nil {
		a.anchors = make(map[int]bool)
		if w := a.Trainer.Workload; w != nil {
			for _, q := range w.Queries() {
				for _, v := range q.Anchors {
					a.anchors[v] = true
				}
			}
		}
	}
	if !a.scanned {
		a.scanned = true
		a.genuine = make([]bool, g.N())
		a.genuineActive = 0
		for v := 0; v < g.N(); v++ {
			on := g.Degree(v) > 0 || a.anchors[v]
			a.genuine[v] = on
			if on {
				a.genuineActive++
			}
		}
		g.TakeActivityDirty() // drained: the scan covered everything
		a.applyActivity(nil, true)
		return
	}
	dirty := g.TakeActivityDirty()
	for len(a.genuine) < g.N() {
		// Nodes added since the last refresh are in dirty (AddNode touches);
		// grow the mirror with placeholders settled below.
		a.genuine = append(a.genuine, false)
	}
	for _, v := range dirty {
		on := g.Degree(v) > 0 || a.anchors[v]
		if on != a.genuine[v] {
			a.genuine[v] = on
			if on {
				a.genuineActive++
			} else {
				a.genuineActive--
			}
		}
	}
	a.applyActivity(dirty, false)
}

// applyActivity pushes the genuine mirror into the chip distribution,
// handling the degenerate edgeless snapshot by activating everything.
func (a *AdaptiveLearner) applyActivity(dirty []int, full bool) {
	n := len(a.genuine)
	if a.genuineActive == 0 {
		// Degenerate edgeless snapshot: fall back to sampling everywhere.
		for v := 0; v < n; v++ {
			a.Chips.SetActive(v, true)
		}
		a.forcedAll = true
		return
	}
	if full || a.forcedAll {
		// Leaving the fallback (or first scan): resync every node.
		for v := 0; v < n; v++ {
			a.Chips.SetActive(v, a.genuine[v])
		}
		a.forcedAll = false
		return
	}
	for _, v := range dirty {
		a.Chips.SetActive(v, a.genuine[v])
	}
}

// Step runs one training step (Algorithm 1 lines 2-16): PairsPerStep pairs
// are sampled, their partitions evaluated (concurrently when cfg.Workers >
// 1), gradients applied serially, and chips moved between winner and loser.
// updated is the set U of nodes with new data since the previous step.
func (a *AdaptiveLearner) Step(updated []int) {
	a.refreshActivity()
	// Phase 1: sample every pair endpoint, then deal per-unit seeds, all
	// from the learner's rng so the stream is worker-count independent.
	n := 2 * a.cfg.PairsPerStep
	if cap(a.units) < n {
		a.units = make([]Unit, n)
		a.nodes = make([]int, n)
		a.seeds = make([]int64, n)
	}
	units, nodes, seeds := a.units[:n], a.nodes[:n], a.seeds[:n]
	for i := range nodes {
		nodes[i] = a.getSampleNode(updated)
	}
	for i := range seeds {
		seeds[i] = a.rng.Int63()
	}
	// Phase 2: evaluate all units against the current parameters. Under the
	// dependency schedule, backprop into per-unit sinks runs here too, fully
	// concurrent across conflict groups.
	if a.cfg.DependencySchedule {
		a.runScheduled(units, nodes, seeds)
	} else if workers := min(a.cfg.Workers, len(units)); workers <= 1 {
		for i := range units {
			units[i] = a.Trainer.EvalUnit(nodes[i], seeds[i])
		}
	} else {
		var cursor int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&cursor, 1))
					if i >= len(units) {
						return
					}
					units[i] = a.Trainer.EvalUnit(nodes[i], seeds[i])
				}
			}()
		}
		wg.Wait()
		atomic.AddInt64(&a.ParallelUnits, int64(len(units)))
	}
	// Phase 3: serial, fixed-order application and chip accounting. By
	// default the units' gradients accumulate into the shared parameters and
	// a single optimizer step applies their sum; PerUnitApply restores the
	// original one-optimizer-step-per-partition schedule. Under the
	// dependency schedule gradients were already computed into per-unit
	// sinks; here they are merged into the parameters strictly in unit-index
	// order, so the optimizer input never depends on grouping or timing.
	accumulated := false
	if a.cfg.DependencySchedule {
		params := a.Trainer.Opt.Params()
		for i := range units {
			if !units[i].OK {
				continue
			}
			a.sinks[i].MergeInto(params)
			if a.cfg.PerUnitApply {
				a.Trainer.Opt.Step()
			} else {
				accumulated = true
			}
		}
	}
	for pair := 0; pair < a.cfg.PairsPerStep; pair++ {
		u1, u2 := units[2*pair], units[2*pair+1]
		if a.cfg.DependencySchedule {
			// Gradients already merged above.
		} else if a.cfg.PerUnitApply {
			a.Trainer.ApplyUnit(u1)
			a.Trainer.ApplyUnit(u2)
		} else {
			accumulated = a.Trainer.AccumulateUnit(u1) || accumulated
			accumulated = a.Trainer.AccumulateUnit(u2) || accumulated
		}
		if u1.OK {
			a.Trained++
		}
		if u2.OK {
			a.Trained++
		}
		if !u1.OK || !u2.OK {
			continue // no utility signal to compare
		}
		// Lines 8-10: winner has the higher utility; ties favor v2.
		w, l := u2.Node, u1.Node
		uw, ul := u2.Utility, u1.Utility
		if u1.Utility > u2.Utility {
			w, l = u1.Node, u2.Node
			uw, ul = u1.Utility, u2.Utility
		}
		// Lines 11-16.
		kn := float64(a.Chips.Total())
		if a.rng.Float64() < 0.5 {
			if a.Chips.Move(l, w) {
				a.Moves++
			}
		} else if a.rng.Float64() < math.Exp(-(uw-ul)/kn) {
			if a.Chips.Move(w, l) {
				a.Moves++
			}
		}
	}
	if accumulated {
		a.Trainer.Opt.Step()
	}
}

// runScheduled is phase 2 under the dependency schedule: partition the
// step's units into conflict groups (units whose L-hop receptive fields
// intersect, closed transitively) and run whole groups concurrently on the
// worker pool — evaluation AND backprop, each unit's gradient going into its
// own private sink. Within a group, units run serially in unit-index order.
//
// Determinism: partitions are prefetched serially, so the partition cache
// warms in the same order on every run; the conflict build reads only the
// sampled units and the graph; each unit's backward writes only its own sink
// and its tape's private nodes; and the caller merges sinks in unit-index
// order. Nothing observable depends on worker count or goroutine timing, so
// seeded runs are bit-identical for every Workers value.
func (a *AdaptiveLearner) runScheduled(units []Unit, nodes []int, seeds []int64) {
	n := len(units)
	// Serial partition prefetch: shares the version-keyed cache with
	// evaluation (EvalUnit re-reads the same *Subgraph), and doubles as the
	// conflict build's input.
	if cap(a.subs) < n {
		a.subs = make([]*graph.Subgraph, n)
	}
	subs := a.subs[:n]
	L := a.Trainer.Model.Layers()
	for i := range subs {
		subs[i] = a.Trainer.G.Partition(nodes[i], L)
	}
	offsets, order, numGroups := a.conflict.build(subs, a.Trainer.G.N())
	for i := range subs {
		subs[i] = nil // release references; cache owns the partitions
	}
	for len(a.sinks) < n {
		a.sinks = append(a.sinks, autodiff.NewGradSink())
	}
	for i := 0; i < n; i++ {
		a.sinks[i].Reset()
	}
	runGroup := func(g int) {
		for _, i := range order[offsets[g]:offsets[g+1]] {
			u := a.Trainer.EvalUnit(nodes[i], seeds[i])
			a.Trainer.GradUnitTo(u, a.sinks[i])
			// Strip the consumed tape; phase 3 needs only node/utility/OK.
			units[i] = Unit{Node: u.Node, Utility: u.Utility, OK: u.OK}
		}
	}
	if workers := min(a.cfg.Workers, numGroups); workers <= 1 {
		for g := 0; g < numGroups; g++ {
			runGroup(g)
		}
	} else {
		var cursor int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					g := int(atomic.AddInt64(&cursor, 1))
					if g >= numGroups {
						return
					}
					runGroup(g)
				}
			}()
		}
		wg.Wait()
		atomic.AddInt64(&a.ParallelUnits, int64(n))
	}
	atomic.AddInt64(&a.SchedSteps, 1)
	atomic.AddInt64(&a.SchedGroups, int64(numGroups))
	atomic.AddInt64(&a.SchedUnits, int64(n))
	if numGroups == 1 && n > 1 {
		atomic.AddInt64(&a.SchedCollapsed, 1)
	}
}

// Probabilities returns the current normalized node-weight distribution D.
func (a *AdaptiveLearner) Probabilities() []float64 {
	counts := a.Chips.Counts()
	out := make([]float64, len(counts))
	total := float64(a.Chips.Total())
	for i, c := range counts {
		out[i] = float64(c) / total
	}
	return out
}
