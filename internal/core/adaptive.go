package core

import (
	"math"
	"math/rand"

	"streamgnn/internal/sampling"
)

// NodeSampler abstracts GetSampleNode of Algorithm 1: plain chip sampling
// (chipSampler) or graph-KDE sampling (KDESampler, Algorithm 2).
type NodeSampler interface {
	// SampleNode draws the next node to train.
	SampleNode() int
}

// chipSampler draws directly from the chip distribution D.
type chipSampler struct {
	chips *sampling.Chips
	rng   *rand.Rand
}

// SampleNode implements NodeSampler.
func (s *chipSampler) SampleNode() int { return s.chips.Sample(s.rng) }

// AdaptiveLearner is Algorithm 1 (OnlineAdaptiveLearning): it maintains the
// chip distribution D, samples pairs of nodes per training step — favoring
// the update set U with probability p_u — performs each node's training
// partition, and moves chips between winner and loser according to the
// randomized rule whose stationary distribution weights states by e^{u_s}
// (Theorem IV.4).
type AdaptiveLearner struct {
	Chips   *sampling.Chips
	Trainer *Trainer

	cfg     Config
	rng     *rand.Rand
	sampler NodeSampler
	anchors map[int]bool

	// Moves counts accepted chip moves (observability/tests).
	Moves int
	// Trained counts executed training partitions.
	Trained int
}

// NewAdaptiveLearner builds Algorithm 1 over the trainer's graph. strategy
// selects plain chip sampling (Weighted) or graph-KDE sampling (KDE).
func NewAdaptiveLearner(t *Trainer, cfg Config, strategy Strategy, rng *rand.Rand) *AdaptiveLearner {
	chips := sampling.NewChips(t.G.N(), cfg.K)
	chips.MinChips = cfg.MinChips
	a := &AdaptiveLearner{Chips: chips, Trainer: t, cfg: cfg, rng: rng}
	switch strategy {
	case Weighted:
		a.sampler = &chipSampler{chips: chips, rng: rng}
	case KDE:
		a.sampler = NewKDESampler(t.G, chips, cfg, rng)
	default:
		panic("core: AdaptiveLearner requires Weighted or KDE strategy")
	}
	return a
}

// Sampler exposes the underlying node sampler (tests, analysis).
func (a *AdaptiveLearner) Sampler() NodeSampler { return a.sampler }

// getSampleNode is Algorithm 1 lines 17-22: with probability p_u sample
// from D restricted to the update set, otherwise from the sampler.
func (a *AdaptiveLearner) getSampleNode(updated []int) int {
	if len(updated) > 0 && a.rng.Float64() < a.cfg.PUpdate {
		if v, ok := a.Chips.SampleFrom(a.rng, updated); ok {
			return v
		}
	}
	return a.sampler.SampleNode()
}

// refreshActivity aligns sampling eligibility with the current snapshot:
// under a sliding window, nodes whose edges have all expired are not part
// of G_t and are excluded from D until they reconnect. Query anchors stay
// eligible regardless — the workload-aware half of the paper's selective
// training: data relevant to the continuous queries is always worth
// training, even when momentarily quiet.
func (a *AdaptiveLearner) refreshActivity() {
	g := a.Trainer.G
	a.Chips.EnsureN(g.N())
	if a.anchors == nil {
		a.anchors = make(map[int]bool)
		if w := a.Trainer.Workload; w != nil {
			for _, q := range w.Queries() {
				for _, v := range q.Anchors {
					a.anchors[v] = true
				}
			}
		}
	}
	anyActive := false
	for v := 0; v < g.N(); v++ {
		on := g.Degree(v) > 0 || a.anchors[v]
		a.Chips.SetActive(v, on)
		anyActive = anyActive || on
	}
	if !anyActive {
		// Degenerate edgeless snapshot: fall back to sampling everywhere.
		for v := 0; v < g.N(); v++ {
			a.Chips.SetActive(v, true)
		}
	}
}

// Step runs one training step (Algorithm 1 lines 2-16): PairsPerStep pairs
// are sampled and trained, and chips move between winner and loser.
// updated is the set U of nodes with new data since the previous step.
func (a *AdaptiveLearner) Step(updated []int) {
	a.refreshActivity()
	for pair := 0; pair < a.cfg.PairsPerStep; pair++ {
		v1 := a.getSampleNode(updated)
		v2 := a.getSampleNode(updated)
		u1, ok1 := a.Trainer.TrainPartition(v1)
		u2, ok2 := a.Trainer.TrainPartition(v2)
		if ok1 {
			a.Trained++
		}
		if ok2 {
			a.Trained++
		}
		if !ok1 || !ok2 {
			continue // no utility signal to compare
		}
		// Lines 8-10: winner has the higher utility; ties favor v2.
		w, l := v2, v1
		uw, ul := u2, u1
		if u1 > u2 {
			w, l = v1, v2
			uw, ul = u1, u2
		}
		// Lines 11-16.
		kn := float64(a.Chips.Total())
		if a.rng.Float64() < 0.5 {
			if a.Chips.Move(l, w) {
				a.Moves++
			}
		} else if a.rng.Float64() < math.Exp(-(uw-ul)/kn) {
			if a.Chips.Move(w, l) {
				a.Moves++
			}
		}
	}
}

// Probabilities returns the current normalized node-weight distribution D.
func (a *AdaptiveLearner) Probabilities() []float64 {
	counts := a.Chips.Counts()
	out := make([]float64, len(counts))
	total := float64(a.Chips.Total())
	for i, c := range counts {
		out[i] = float64(c) / total
	}
	return out
}
