package core

import (
	"testing"
)

// TestConflictBuildZeroAllocWarm asserts the per-step cost promise of the
// conflict-graph build: after one warm-up call sizes every scratch buffer to
// its high-water mark, rebuilding the grouping allocates nothing. This is the
// guarantee that keeps the scheduler off the allocator on the hot training
// path.
func TestConflictBuildZeroAllocWarm(t *testing.T) {
	g := ringsGraph(8, 10)
	centers := []int{1, 11, 21, 3, 31, 41, 51, 13}
	subs := partitionsOf(g, centers, 2)
	var cs conflictScratch
	cs.build(subs, g.N()) // warm: grow all scratch to high-water mark
	allocs := testing.AllocsPerRun(100, func() {
		cs.build(subs, g.N())
	})
	if allocs != 0 {
		t.Fatalf("warm conflict build allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkConflictBuild measures the grouping cost per training step on a
// sparse community stream — the scheduler's fixed overhead over the serial
// apply path.
func BenchmarkConflictBuild(b *testing.B) {
	g := ringsGraph(32, 12)
	centers := make([]int, 16)
	for i := range centers {
		centers[i] = (i * 29) % g.N()
	}
	subs := partitionsOf(g, centers, 2)
	var cs conflictScratch
	cs.build(subs, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.build(subs, g.N())
	}
}
