// Package core implements the paper's contribution: node-level partitioning
// of online training work (Section III-C), the randomized adaptive
// node-weight learning of Algorithm 1 (Section IV), and the graph-KDE node
// sampling of Algorithm 2 (Section V), together with the Full/Uniform
// baseline trainer and an exact Markov-chain analyzer for Theorem IV.4.
package core

import "fmt"

// Strategy selects how online training work is scheduled each step.
type Strategy int

const (
	// Full is the default full/uniform training baseline: every training
	// step back-propagates over the whole snapshot.
	Full Strategy = iota
	// Weighted is Algorithm 1: adaptive node-weight learning with
	// chip-distribution sampling of node partitions.
	Weighted
	// KDE is Algorithm 1 with Algorithm 2's graph-KDE sampling replacing
	// GetSampleNode.
	KDE
)

// String returns the method name used in the paper's tables.
func (s Strategy) String() string {
	switch s {
	case Full:
		return "Full/Uniform"
	case Weighted:
		return "Weighted"
	case KDE:
		return "KDE"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy name ("full", "weighted", "kde").
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "full", "Full/Uniform", "Full":
		return Full, nil
	case "weighted", "Weighted":
		return Weighted, nil
	case "kde", "KDE":
		return KDE, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

// Config carries the paper's tunable parameters with their published
// defaults (Section VI-F).
type Config struct {
	// K is the initial chips per node (Algorithm 1 line 1); default 5.
	K int
	// PairsPerStep is the number of sampled node pairs per training round;
	// default 1 (Table III).
	PairsPerStep int
	// RoundsPerStep is the number of training rounds executed per training
	// step — the paper's training frequency f between snapshot arrivals.
	// Full training performs this many full-graph passes; the adaptive
	// strategies perform this many Algorithm-1 iterations, so the
	// per-update cost ratio between methods is preserved. Default 10.
	RoundsPerStep int
	// PUpdate is p_u, the probability of restricting sampling to the
	// update set U (Algorithm 1 lines 18-21); default 0.5.
	PUpdate float64
	// Interval is the number of stream steps between training steps;
	// default 1 (Table III).
	Interval int
	// Seeds is w, the KDE seed-window size (Algorithm 2); default 15.
	Seeds int
	// StopProb is q, the random-walk stop probability; default 0.5.
	StopProb float64
	// SeedKeep is p, the probability that the newest sample replaces the
	// oldest seed (vs. a uniform teleport node); default 0.8.
	SeedKeep float64
	// Teleport enables Algorithm 2 line 12; default true. Exposed for the
	// ablation bench.
	Teleport bool
	// MinChips is the chip floor (1 in the paper). Exposed for ablation.
	MinChips int
	// LR is the optimizer learning rate.
	LR float64
	// SelfWeight and SupWeight scale the self-supervised and supervised
	// loss terms.
	SelfWeight, SupWeight float64
	// ReplaySize is the minibatch of revealed query results added to each
	// partition's supervised loss (trains the prediction heads only;
	// default 24). 0 disables replay.
	ReplaySize int
	// BallSupervision trains supervised query targets anchored anywhere in
	// the partition ball (true) instead of only at the center (false).
	// Ball-wide targets are more numerous but computed from truncated
	// neighborhoods; see the ablation bench.
	BallSupervision bool
	// Workers is the number of goroutines evaluating training units
	// concurrently in the adaptive strategies (forward + loss only; gradient
	// application stays serial). 1 (the default) evaluates on the calling
	// goroutine; seeded runs are bit-identical for every value.
	Workers int
	// PartitionCacheCap is the capacity (in partitions) of the version-keyed
	// LRU partition cache attached to the graph by the scheduler; 0 disables
	// caching. Default 256.
	PartitionCacheCap int
	// PerUnitApply steps the optimizer once per training partition (the
	// original per-unit schedule) instead of accumulating the step's
	// gradients and applying them in one optimizer step. Accumulation (the
	// default) runs clipping, Adam moment updates and gradient zeroing once
	// per step instead of once per partition; both schedules apply gradients
	// serially in unit-index order and are bit-deterministic.
	PerUnitApply bool
	// DependencySchedule parallelizes backprop and gradient accumulation
	// across conflict groups of the step's training units (NeutronStream-style
	// dependency-aware scheduling). After sampling, units whose L-hop
	// receptive fields intersect are unioned into one conflict group; groups
	// run fully concurrently on the worker pool (eval + backward into private
	// gradient sinks), units within a group stay in unit-index order, and the
	// per-unit gradient sums are merged serially in unit-index order before
	// the optimizer step. Grouping depends only on the sampled units and the
	// graph — never on Workers or timing — so seeded runs stay bit-identical
	// for every Workers value. On hub-heavy graphs all units usually share a
	// ball and collapse into a single group, which degenerates to the serial
	// schedule. Default false.
	DependencySchedule bool
}

// DefaultConfig returns the paper's default parameter values.
func DefaultConfig() Config {
	return Config{
		K:                 5,
		PairsPerStep:      1,
		RoundsPerStep:     10,
		PUpdate:           0.5,
		Interval:          1,
		Seeds:             15,
		StopProb:          0.5,
		SeedKeep:          0.8,
		Teleport:          true,
		MinChips:          1,
		LR:                0.02,
		SelfWeight:        1,
		SupWeight:         1,
		ReplaySize:        24,
		BallSupervision:   true,
		Workers:           1,
		PartitionCacheCap: 256,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	case c.PairsPerStep < 1:
		return fmt.Errorf("core: PairsPerStep must be >= 1, got %d", c.PairsPerStep)
	case c.RoundsPerStep < 1:
		return fmt.Errorf("core: RoundsPerStep must be >= 1, got %d", c.RoundsPerStep)
	case c.PUpdate < 0 || c.PUpdate > 1:
		return fmt.Errorf("core: PUpdate must be in [0,1], got %v", c.PUpdate)
	case c.Interval < 1:
		return fmt.Errorf("core: Interval must be >= 1, got %d", c.Interval)
	case c.Seeds < 1:
		return fmt.Errorf("core: Seeds must be >= 1, got %d", c.Seeds)
	case c.StopProb <= 0 || c.StopProb > 1:
		return fmt.Errorf("core: StopProb must be in (0,1], got %v", c.StopProb)
	case c.SeedKeep < 0 || c.SeedKeep > 1:
		return fmt.Errorf("core: SeedKeep must be in [0,1], got %v", c.SeedKeep)
	case c.MinChips < 0:
		return fmt.Errorf("core: MinChips must be >= 0, got %d", c.MinChips)
	case c.LR <= 0:
		return fmt.Errorf("core: LR must be positive, got %v", c.LR)
	case c.Workers < 1:
		return fmt.Errorf("core: Workers must be >= 1, got %d", c.Workers)
	case c.PartitionCacheCap < 0:
		return fmt.Errorf("core: PartitionCacheCap must be >= 0, got %d", c.PartitionCacheCap)
	}
	return nil
}
