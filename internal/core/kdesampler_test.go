package core

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
	"streamgnn/internal/kde"
	"streamgnn/internal/sampling"
)

func gridGraph(side int) *graph.Dynamic {
	g := graph.NewDynamic(1)
	for i := 0; i < side*side; i++ {
		g.AddNode(0, nil)
	}
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddUndirectedEdge(id(r, c), id(r, c+1), 0, 0)
			}
			if r+1 < side {
				g.AddUndirectedEdge(id(r, c), id(r+1, c), 0, 0)
			}
		}
	}
	return g
}

func TestKDESamplerSeedWindow(t *testing.T) {
	g := gridGraph(4)
	chips := sampling.NewChips(g.N(), 5)
	cfg := DefaultConfig()
	cfg.Seeds = 6
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(1)))
	if len(s.Seeds()) != 6 {
		t.Fatalf("seed window size %d", len(s.Seeds()))
	}
	for i := 0; i < 100; i++ {
		v := s.SampleNode()
		if v < 0 || v >= g.N() {
			t.Fatalf("sample out of range: %d", v)
		}
	}
	if len(s.Seeds()) != 6 {
		t.Fatal("seed window size changed")
	}
}

func TestKDESamplerWalkLengthMatchesStopProb(t *testing.T) {
	g := gridGraph(6)
	chips := sampling.NewChips(g.N(), 5)
	cfg := DefaultConfig()
	cfg.StopProb = 0.5
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(2)))
	for i := 0; i < 20000; i++ {
		s.SampleNode()
	}
	meanHops := float64(s.WalkHops) / float64(s.Walks)
	// Geometric: mean hops = (1-q)/q = 1.
	if math.Abs(meanHops-1) > 0.05 {
		t.Fatalf("mean walk length %v, want ~1", meanHops)
	}
}

func TestKDESamplerSmallerStopProbWalksFarther(t *testing.T) {
	g := gridGraph(6)
	mk := func(q float64) float64 {
		chips := sampling.NewChips(g.N(), 5)
		cfg := DefaultConfig()
		cfg.StopProb = q
		s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(3)))
		for i := 0; i < 5000; i++ {
			s.SampleNode()
		}
		return float64(s.WalkHops) / float64(s.Walks)
	}
	if mk(0.1) <= mk(0.9) {
		t.Fatal("smaller q should walk farther")
	}
}

func TestKDESamplerIsolatedNodeStopsWalk(t *testing.T) {
	g := graph.NewDynamic(1)
	g.AddNode(0, nil) // single isolated node
	chips := sampling.NewChips(1, 5)
	cfg := DefaultConfig()
	cfg.StopProb = 0.01 // walks want to go far but cannot
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(4)))
	for i := 0; i < 50; i++ {
		if got := s.SampleNode(); got != 0 {
			t.Fatalf("sampled %d from single-node graph", got)
		}
	}
}

// Theorem V.1: the effective sampling density is a hop-distance-decaying
// smoothing of the chip distribution. We pile chips onto one grid node and
// check (a) the empirical density decays with hop distance from it, and
// (b) the KDE density is smoother along edges than the raw chip law.
func TestTheoremV1DensityDecaysAndSmooths(t *testing.T) {
	g := gridGraph(7)
	n := g.N()
	center := 24 // middle of the grid
	chips := sampling.NewChips(n, 1)
	chips.EnsureN(n)
	// Move lots of mass onto the center by constructing a fresh
	// distribution: k=1 everywhere, then top up the center via Move from a
	// rich auxiliary distribution is impossible; instead use k=2 and drain.
	chips = sampling.NewChips(n, 3)
	for v := 0; v < n; v++ {
		for chips.Count(v) > 1 && v != center {
			if !chips.Move(v, center) {
				break
			}
		}
	}
	cfg := DefaultConfig()
	cfg.Seeds = 10
	cfg.StopProb = 0.5
	cfg.SeedKeep = 0.8
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(5)))
	density := kde.EmpiricalDensity(n, 200000, s.SampleNode)

	prof := kde.HopProfile(g, center, density, 4)
	for h := 0; h+1 < len(prof); h++ {
		if math.IsNaN(prof[h]) || math.IsNaN(prof[h+1]) {
			continue
		}
		if prof[h] <= prof[h+1] {
			t.Fatalf("hop profile not decaying: %v", prof)
		}
	}
	raw := make([]float64, n)
	for v := 0; v < n; v++ {
		raw[v] = float64(chips.Count(v)) / float64(chips.Total())
	}
	if kde.EdgeSmoothness(g, density) >= kde.EdgeSmoothness(g, raw) {
		t.Fatal("KDE density is not smoother than the chip distribution")
	}
}

func TestKDESamplerTeleportRefreshesSeeds(t *testing.T) {
	g := gridGraph(5)
	chips := sampling.NewChips(g.N(), 5)
	cfg := DefaultConfig()
	cfg.SeedKeep = 0 // always teleport
	s := NewKDESampler(g, chips, cfg, rand.New(rand.NewSource(6)))
	before := s.Seeds()
	for i := 0; i < len(before)*4; i++ {
		s.SampleNode()
	}
	after := s.Seeds()
	same := 0
	for i := range before {
		if before[i] == after[i] {
			same++
		}
	}
	if same == len(before) {
		t.Fatal("teleport never refreshed the seed window")
	}
}

func TestKDESamplerPanicsOnEmptyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKDESampler(graph.NewDynamic(1), sampling.NewChips(0, 1), DefaultConfig(), rand.New(rand.NewSource(1)))
}
