package core

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
)

// adaptiveFingerprint runs a seeded adaptive learner for several steps over a
// mutating graph and returns everything observable: final chip counts, the
// Trained/Moves counters, and every model parameter value. mutate, when
// non-nil, adjusts the config before the learner is built.
func adaptiveFingerprint(t *testing.T, workers, pairs int, mutate func(*Config)) ([]int, int, int, []float64) {
	t.Helper()
	const n = 16
	rng := rand.New(rand.NewSource(7))
	g := graph.NewDynamic(3)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 2), float64(i % 3), 1})
		g.SetLabel(i, float64(i%2))
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, int64(i))
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.PairsPerStep = pairs
	if mutate != nil {
		mutate(&cfg)
	}
	g.EnablePartitionCache(cfg.PartitionCacheCap)
	m := dgnn.NewTGCN(rng, 3, 4)
	heads := query.NewHeads(rng, 4)
	w := query.NewWorkload(heads)
	params := append(m.Params(), heads.Params()...)
	opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, params))
	tr := NewTrainer(g, m, w, opt, cfg, rng)
	a := NewAdaptiveLearner(tr, cfg, Weighted, rng)

	for step := 0; step < 8; step++ {
		// Mutate the stream deterministically: new chords, then a window
		// expiry, exercising cache invalidation and dirty-activity tracking.
		g.AddUndirectedEdge(step, (step+5)%n, 0, int64(n+step))
		if step == 4 {
			g.ExpireEdgesBefore(3)
		}
		a.Step(g.Updated())
		g.ResetUpdated()
	}

	var flat []float64
	for _, p := range params {
		flat = append(flat, p.Value.Data...)
	}
	return a.Chips.Counts(), a.Trained, a.Moves, flat
}

// TestStepDeterministicAcrossWorkers is the headline determinism guarantee:
// a seeded run produces bit-identical chips, counters and parameters whether
// pair units are evaluated serially or on 4 worker goroutines.
func TestStepDeterministicAcrossWorkers(t *testing.T) {
	for _, pairs := range []int{1, 3} {
		c1, t1, m1, p1 := adaptiveFingerprint(t, 1, pairs, nil)
		c4, t4, m4, p4 := adaptiveFingerprint(t, 4, pairs, nil)
		compareFingerprints(t, "pairs", pairs, c1, t1, m1, p1, c4, t4, m4, p4)
	}
}

// compareFingerprints asserts two adaptive fingerprints are bit-identical.
func compareFingerprints(t *testing.T, label string, key int,
	c1 []int, t1, m1 int, p1 []float64, c2 []int, t2, m2 int, p2 []float64) {
	t.Helper()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("%s=%d: counters diverged: trained %d vs %d, moves %d vs %d", label, key, t1, t2, m1, m2)
	}
	if len(c1) != len(c2) {
		t.Fatalf("%s=%d: chip vector length %d vs %d", label, key, len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("%s=%d: chip counts diverged at node %d: %d vs %d", label, key, i, c1[i], c2[i])
		}
	}
	if len(p1) != len(p2) {
		t.Fatalf("%s=%d: parameter count %d vs %d", label, key, len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("%s=%d: parameter %d diverged: %v vs %v", label, key, i, p1[i], p2[i])
		}
	}
}

// TestStepDeterministicAcrossWorkersDependencySchedule extends the headline
// guarantee to the conflict-group scheduler: with DependencySchedule on,
// seeded runs are bit-identical across Workers ∈ {1,2,4,8}, for both the
// batched (single optimizer step) and PerUnitApply schedules. The grouping,
// the unit-index merge order, and the chip-move rng stream are all
// worker-count independent, so everything observable must match the
// single-worker run bit for bit.
func TestStepDeterministicAcrossWorkersDependencySchedule(t *testing.T) {
	for _, perUnit := range []bool{false, true} {
		mutate := func(cfg *Config) {
			cfg.DependencySchedule = true
			cfg.PerUnitApply = perUnit
		}
		c1, t1, m1, p1 := adaptiveFingerprint(t, 1, 3, mutate)
		for _, workers := range []int{2, 4, 8} {
			cw, tw, mw, pw := adaptiveFingerprint(t, workers, 3, mutate)
			t.Logf("perUnit=%v workers=%d", perUnit, workers)
			compareFingerprints(t, "workers", workers, c1, t1, m1, p1, cw, tw, mw, pw)
		}
	}
}

// TestDependencyScheduleSelfConsistent pins down that the scheduled
// trajectory is a pure function of the seed: two identical runs (same
// workers) match bit for bit, and the schedule trains exactly as many
// partitions as the serial path. Scheduled runs are NOT expected to equal
// unscheduled ones bitwise: the tape's backward rules read live parameter
// values, so the serial schedule computes unit k's gradient after unit k-1's
// update while the concurrent schedule evaluates every gradient against the
// same snapshot θ_t (see DESIGN.md §15) — a deterministic, not a bitwise,
// equivalence.
func TestDependencyScheduleSelfConsistent(t *testing.T) {
	schedOn := func(cfg *Config) { cfg.DependencySchedule = true }
	c1, t1, m1, p1 := adaptiveFingerprint(t, 4, 3, schedOn)
	c2, t2, m2, p2 := adaptiveFingerprint(t, 4, 3, schedOn)
	compareFingerprints(t, "rerun", 4, c1, t1, m1, p1, c2, t2, m2, p2)
	_, tOff, _, _ := adaptiveFingerprint(t, 1, 3, nil)
	if t1 != tOff {
		t.Fatalf("scheduled run trained %d partitions, serial %d", t1, tOff)
	}
}

// TestParallelUnitsCounter checks the observability counter: worker-pool runs
// count evaluated units, serial runs stay at zero.
func TestParallelUnitsCounter(t *testing.T) {
	_, tr, _ := testSetup(t, 12, Weighted)
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.PairsPerStep = 2
	a := NewAdaptiveLearner(tr, cfg, Weighted, rand.New(rand.NewSource(1)))
	a.Step(nil)
	if a.ParallelUnits != 4 {
		t.Fatalf("ParallelUnits = %d, want 4", a.ParallelUnits)
	}
	_, tr2, _ := testSetup(t, 12, Weighted)
	s := NewAdaptiveLearner(tr2, DefaultConfig(), Weighted, rand.New(rand.NewSource(1)))
	s.Step(nil)
	if s.ParallelUnits != 0 {
		t.Fatalf("serial ParallelUnits = %d, want 0", s.ParallelUnits)
	}
}

// TestIncrementalActivityMatchesFullScan mutates the graph through several
// steps and asserts the incrementally maintained active set always equals
// what a from-scratch scan of the snapshot would produce.
func TestIncrementalActivityMatchesFullScan(t *testing.T) {
	g, tr, _ := testSetup(t, 10, Weighted)
	a := NewAdaptiveLearner(tr, DefaultConfig(), Weighted, rand.New(rand.NewSource(3)))
	check := func(when string) {
		t.Helper()
		a.refreshActivity()
		anyActive := false
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 0 {
				anyActive = true
			}
		}
		for v := 0; v < g.N(); v++ {
			want := g.Degree(v) > 0 || !anyActive
			if got := a.Chips.Active(v); got != want {
				t.Fatalf("%s: node %d active=%v want %v", when, v, got, want)
			}
		}
	}
	check("initial")
	g.AddNode(0, []float64{1, 0, 1}) // isolated node 10
	check("after isolated add")
	g.AddUndirectedEdge(10, 3, 0, 100)
	check("after connecting")
	g.ExpireEdgesBefore(101) // everything but the new edge expires
	check("after mass expiry")
	g.ExpireEdgesBefore(200) // fully edgeless: degenerate fallback
	check("edgeless fallback")
	g.AddUndirectedEdge(0, 1, 0, 300) // leave the fallback again
	check("after recovery")
}
