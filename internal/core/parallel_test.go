package core

import (
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/query"
)

// adaptiveFingerprint runs a seeded adaptive learner for several steps over a
// mutating graph and returns everything observable: final chip counts, the
// Trained/Moves counters, and every model parameter value.
func adaptiveFingerprint(t *testing.T, workers, pairs int) ([]int, int, int, []float64) {
	t.Helper()
	const n = 16
	rng := rand.New(rand.NewSource(7))
	g := graph.NewDynamic(3)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 2), float64(i % 3), 1})
		g.SetLabel(i, float64(i%2))
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, int64(i))
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.PairsPerStep = pairs
	g.EnablePartitionCache(cfg.PartitionCacheCap)
	m := dgnn.NewTGCN(rng, 3, 4)
	heads := query.NewHeads(rng, 4)
	w := query.NewWorkload(heads)
	params := append(m.Params(), heads.Params()...)
	opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, params))
	tr := NewTrainer(g, m, w, opt, cfg, rng)
	a := NewAdaptiveLearner(tr, cfg, Weighted, rng)

	for step := 0; step < 8; step++ {
		// Mutate the stream deterministically: new chords, then a window
		// expiry, exercising cache invalidation and dirty-activity tracking.
		g.AddUndirectedEdge(step, (step+5)%n, 0, int64(n+step))
		if step == 4 {
			g.ExpireEdgesBefore(3)
		}
		a.Step(g.Updated())
		g.ResetUpdated()
	}

	var flat []float64
	for _, p := range params {
		flat = append(flat, p.Value.Data...)
	}
	return a.Chips.Counts(), a.Trained, a.Moves, flat
}

// TestStepDeterministicAcrossWorkers is the headline determinism guarantee:
// a seeded run produces bit-identical chips, counters and parameters whether
// pair units are evaluated serially or on 4 worker goroutines.
func TestStepDeterministicAcrossWorkers(t *testing.T) {
	for _, pairs := range []int{1, 3} {
		c1, t1, m1, p1 := adaptiveFingerprint(t, 1, pairs)
		c4, t4, m4, p4 := adaptiveFingerprint(t, 4, pairs)
		if t1 != t4 || m1 != m4 {
			t.Fatalf("pairs=%d: counters diverged: trained %d vs %d, moves %d vs %d", pairs, t1, t4, m1, m4)
		}
		if len(c1) != len(c4) {
			t.Fatalf("pairs=%d: chip vector length %d vs %d", pairs, len(c1), len(c4))
		}
		for i := range c1 {
			if c1[i] != c4[i] {
				t.Fatalf("pairs=%d: chip counts diverged at node %d: %d vs %d", pairs, i, c1[i], c4[i])
			}
		}
		if len(p1) != len(p4) {
			t.Fatalf("pairs=%d: parameter count %d vs %d", pairs, len(p1), len(p4))
		}
		for i := range p1 {
			if p1[i] != p4[i] {
				t.Fatalf("pairs=%d: parameter %d diverged: %v vs %v", pairs, i, p1[i], p4[i])
			}
		}
	}
}

// TestParallelUnitsCounter checks the observability counter: worker-pool runs
// count evaluated units, serial runs stay at zero.
func TestParallelUnitsCounter(t *testing.T) {
	_, tr, _ := testSetup(t, 12, Weighted)
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.PairsPerStep = 2
	a := NewAdaptiveLearner(tr, cfg, Weighted, rand.New(rand.NewSource(1)))
	a.Step(nil)
	if a.ParallelUnits != 4 {
		t.Fatalf("ParallelUnits = %d, want 4", a.ParallelUnits)
	}
	_, tr2, _ := testSetup(t, 12, Weighted)
	s := NewAdaptiveLearner(tr2, DefaultConfig(), Weighted, rand.New(rand.NewSource(1)))
	s.Step(nil)
	if s.ParallelUnits != 0 {
		t.Fatalf("serial ParallelUnits = %d, want 0", s.ParallelUnits)
	}
}

// TestIncrementalActivityMatchesFullScan mutates the graph through several
// steps and asserts the incrementally maintained active set always equals
// what a from-scratch scan of the snapshot would produce.
func TestIncrementalActivityMatchesFullScan(t *testing.T) {
	g, tr, _ := testSetup(t, 10, Weighted)
	a := NewAdaptiveLearner(tr, DefaultConfig(), Weighted, rand.New(rand.NewSource(3)))
	check := func(when string) {
		t.Helper()
		a.refreshActivity()
		anyActive := false
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 0 {
				anyActive = true
			}
		}
		for v := 0; v < g.N(); v++ {
			want := g.Degree(v) > 0 || !anyActive
			if got := a.Chips.Active(v); got != want {
				t.Fatalf("%s: node %d active=%v want %v", when, v, got, want)
			}
		}
	}
	check("initial")
	g.AddNode(0, []float64{1, 0, 1}) // isolated node 10
	check("after isolated add")
	g.AddUndirectedEdge(10, 3, 0, 100)
	check("after connecting")
	g.ExpireEdgesBefore(101) // everything but the new edge expires
	check("after mass expiry")
	g.ExpireEdgesBefore(200) // fully edgeless: degenerate fallback
	check("edgeless fallback")
	g.AddUndirectedEdge(0, 1, 0, 300) // leave the fallback again
	check("after recovery")
}
