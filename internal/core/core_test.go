package core

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/graph"
	"streamgnn/internal/nn"
	"streamgnn/internal/query"
)

// testSetup builds a small labeled ring graph, model, workload and trainer.
func testSetup(t *testing.T, n int, strategy Strategy) (*graph.Dynamic, *Trainer, Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.NewDynamic(3)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i % 2), float64(i % 3), 1})
		g.SetLabel(i, float64(i%2))
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, 0)
	}
	m := dgnn.NewTGCN(rng, 3, 4)
	heads := query.NewHeads(rng, 4)
	w := query.NewWorkload(heads)
	cfg := DefaultConfig()
	params := append(m.Params(), heads.Params()...)
	opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, params))
	return g, NewTrainer(g, m, w, opt, cfg, rng), cfg
}

func TestStrategyStringParse(t *testing.T) {
	for _, s := range []Strategy{Full, Weighted, KDE} {
		parsed, err := ParseStrategy(s.String())
		if err != nil || parsed != s {
			t.Fatalf("round trip failed for %v", s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.PairsPerStep = 0 },
		func(c *Config) { c.PUpdate = 1.5 },
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.Seeds = 0 },
		func(c *Config) { c.StopProb = 0 },
		func(c *Config) { c.SeedKeep = -0.1 },
		func(c *Config) { c.MinChips = -1 },
		func(c *Config) { c.LR = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d not rejected", i)
		}
	}
}

func TestTrainPartitionReturnsUtilityAndLearns(t *testing.T) {
	_, tr, _ := testSetup(t, 12, Weighted)
	u0, ok := tr.EvalPartition(3)
	if !ok {
		t.Fatal("no training material in labeled partition")
	}
	for i := 0; i < 50; i++ {
		if _, ok := tr.TrainPartition(3); !ok {
			t.Fatal("training refused")
		}
	}
	u1, _ := tr.EvalPartition(3)
	if u1 >= u0 {
		t.Fatalf("partition training did not reduce loss: %v -> %v", u0, u1)
	}
}

func TestTrainFullLearns(t *testing.T) {
	_, tr, _ := testSetup(t, 12, Full)
	l0, ok := tr.TrainFull()
	if !ok {
		t.Fatal("full training found no material")
	}
	var l1 float64
	for i := 0; i < 50; i++ {
		l1, _ = tr.TrainFull()
	}
	if l1 >= l0 {
		t.Fatalf("full training did not reduce loss: %v -> %v", l0, l1)
	}
}

func TestTrainPartitionNoMaterial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.NewDynamic(2)
	for i := 0; i < 4; i++ {
		g.AddNode(0, nil) // no labels anywhere
	}
	m := dgnn.NewTGCN(rng, 2, 3)
	heads := query.NewHeads(rng, 3)
	w := query.NewWorkload(heads)
	cfg := DefaultConfig()
	opt := autodiff.NewAdam(cfg.LR, nn.CollectParams(m))
	tr := NewTrainer(g, m, w, opt, cfg, rng)
	if _, ok := tr.TrainPartition(0); ok {
		t.Fatal("training without material should report ok=false")
	}
	if _, ok := tr.TrainFull(); ok {
		t.Fatal("full training without material should report ok=false")
	}
}

func TestAdaptiveLearnerStepMaintainsInvariants(t *testing.T) {
	g, tr, cfg := testSetup(t, 16, Weighted)
	rng := rand.New(rand.NewSource(5))
	a := NewAdaptiveLearner(tr, cfg, Weighted, rng)
	for step := 0; step < 30; step++ {
		a.Step(g.Updated())
		g.ResetUpdated()
	}
	if a.Trained == 0 {
		t.Fatal("no partitions trained")
	}
	total := 0
	for v := 0; v < a.Chips.N(); v++ {
		cnt := a.Chips.Count(v)
		if cnt < cfg.MinChips {
			t.Fatalf("node %v dropped below chip floor", v)
		}
		total += cnt
	}
	if total != a.Chips.Total() || total != cfg.K*16 {
		t.Fatalf("chip total drifted: %d", total)
	}
	p := a.Probabilities()
	var sum float64
	for _, x := range p {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestAdaptiveLearnerGrowsWithGraph(t *testing.T) {
	g, tr, cfg := testSetup(t, 8, Weighted)
	rng := rand.New(rand.NewSource(6))
	a := NewAdaptiveLearner(tr, cfg, Weighted, rng)
	a.Step(nil)
	v := g.AddNode(0, []float64{1, 1, 1})
	g.SetLabel(v, 1)
	g.AddUndirectedEdge(v, 0, 0, 1)
	a.Step(g.Updated())
	if a.Chips.N() != 9 || a.Chips.Count(v) < cfg.MinChips {
		t.Fatal("new node not covered by chips")
	}
}

func TestAdaptiveLearnerUpdateBias(t *testing.T) {
	// With PUpdate = 1 and a single-node update set, every sample must be
	// that node.
	g, tr, cfg := testSetup(t, 10, Weighted)
	cfg.PUpdate = 1
	rng := rand.New(rand.NewSource(7))
	a := NewAdaptiveLearner(tr, cfg, Weighted, rng)
	_ = g
	for i := 0; i < 20; i++ {
		if got := a.getSampleNode([]int{4}); got != 4 {
			t.Fatalf("update bias ignored: sampled %d", got)
		}
	}
}

func TestAdaptiveLearnerRejectsFullStrategy(t *testing.T) {
	_, tr, cfg := testSetup(t, 6, Full)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptiveLearner(tr, cfg, Full, rand.New(rand.NewSource(1)))
}

func TestSchedulerInterval(t *testing.T) {
	_, tr, cfg := testSetup(t, 10, Weighted)
	cfg.Interval = 3
	s, err := NewScheduler(tr, cfg, Weighted, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for step := 0; step < 12; step++ {
		if s.OnStep(step, nil) {
			ran++
		}
	}
	if ran != 4 { // steps 0, 3, 6, 9
		t.Fatalf("trained on %d steps, want 4", ran)
	}
	if s.TrainSteps != 4 {
		t.Fatalf("TrainSteps = %d", s.TrainSteps)
	}
}

func TestSchedulerFullStrategy(t *testing.T) {
	_, tr, cfg := testSetup(t, 10, Full)
	s, err := NewScheduler(tr, cfg, Full, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Adaptive != nil {
		t.Fatal("Full strategy should have no adaptive learner")
	}
	if !s.OnStep(0, nil) {
		t.Fatal("training should run at step 0")
	}
}

func TestSchedulerValidatesConfig(t *testing.T) {
	_, tr, cfg := testSetup(t, 6, Full)
	cfg.K = 0
	if _, err := NewScheduler(tr, cfg, Weighted, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// Chips should concentrate on the region where training is persistently
// harder. We fix utilities by giving half the ring large-magnitude labels
// that the model cannot fit (label noise), making those partitions
// persistently high-loss.
func TestChipsConcentrateOnHardRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 20
	g := graph.NewDynamic(2)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{1, 0})
		if i < n/2 {
			g.SetLabel(i, 0) // easy: constant target
		} else {
			g.SetLabel(i, 50) // hard: huge target, persistent loss
		}
	}
	for i := 0; i < n; i++ {
		g.AddUndirectedEdge(i, (i+1)%n, 0, 0)
	}
	m := dgnn.NewWinGNN(rng, 2, 4) // stateless: utilities stay comparable
	heads := query.NewHeads(rng, 4)
	w := query.NewWorkload(heads)
	cfg := DefaultConfig()
	cfg.PUpdate = 0
	opt := autodiff.NewAdam(1e-4, append(m.Params(), heads.Params()...))
	tr := NewTrainer(g, m, w, opt, cfg, rng)
	a := NewAdaptiveLearner(tr, cfg, Weighted, rng)
	for i := 0; i < 400; i++ {
		a.Step(nil)
	}
	easy, hard := 0, 0
	for v := 0; v < n/2; v++ {
		easy += a.Chips.Count(v)
	}
	for v := n / 2; v < n; v++ {
		hard += a.Chips.Count(v)
	}
	if hard <= easy {
		t.Fatalf("chips did not concentrate on hard region: easy=%d hard=%d", easy, hard)
	}
}
