package shard

import (
	"sort"
	"testing"
)

func TestParseLayout(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Layout
	}{{"", Hash}, {"hash", Hash}, {"range", Range}} {
		got, err := ParseLayout(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseLayout(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLayout("zebra"); err == nil {
		t.Fatal("ParseLayout accepted an unknown layout")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(0, Hash); err == nil {
		t.Fatal("New accepted P=0")
	}
	if _, err := New(-3, Range); err == nil {
		t.Fatal("New accepted a negative shard count")
	}
	if _, err := New(4, Layout(9)); err == nil {
		t.Fatal("New accepted an invalid layout")
	}
}

// Of must be a pure function of (id, P, layout): stable across calls and
// always in range, for both layouts.
func TestOfDeterministicAndInRange(t *testing.T) {
	for _, l := range []Layout{Hash, Range} {
		for _, p := range []int{1, 2, 4, 7} {
			s, err := New(p, l)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < 5000; v++ {
				si := s.Of(v)
				if si < 0 || si >= p {
					t.Fatalf("%v/P=%d: Of(%d) = %d out of range", l, p, v, si)
				}
				if si != s.Of(v) {
					t.Fatalf("%v/P=%d: Of(%d) unstable", l, p, v)
				}
			}
		}
	}
}

// Range keeps RangeBlock consecutive ids together; Hash spreads load so no
// shard owns a grossly unfair share of a dense id space.
func TestLayoutShapes(t *testing.T) {
	r, _ := New(4, Range)
	for v := 0; v < RangeBlock; v++ {
		if r.Of(v) != 0 {
			t.Fatalf("range: Of(%d) = %d, want 0 inside the first block", v, r.Of(v))
		}
	}
	if r.Of(RangeBlock) != 1 || r.Of(4*RangeBlock) != 0 {
		t.Fatal("range: blocks are not assigned round-robin")
	}

	h, _ := New(4, Hash)
	counts := make([]int, 4)
	const n = 8000
	for v := 0; v < n; v++ {
		counts[h.Of(v)]++
	}
	for si, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("hash: shard %d owns %d of %d ids — badly unbalanced", si, c, n)
		}
	}
}

// Split partitions without loss, preserves ascending order per shard, and
// Merge reassembles the original ascending input.
func TestSplitMergeRoundTrip(t *testing.T) {
	s, _ := New(3, Hash)
	ids := make([]int, 0, 500)
	for v := 0; v < 1000; v += 2 {
		ids = append(ids, v)
	}
	parts := s.Split(ids)
	if len(parts) != 3 {
		t.Fatalf("Split returned %d parts, want 3", len(parts))
	}
	for si, p := range parts {
		if !sort.IntsAreSorted(p) {
			t.Fatalf("shard %d part is not ascending", si)
		}
		for _, v := range p {
			if s.Of(v) != si {
				t.Fatalf("id %d landed on shard %d, owner is %d", v, si, s.Of(v))
			}
		}
	}
	merged := Merge(parts)
	if len(merged) != len(ids) {
		t.Fatalf("Merge lost ids: %d vs %d", len(merged), len(ids))
	}
	for i := range ids {
		if merged[i] != ids[i] {
			t.Fatalf("Merge[%d] = %d, want %d", i, merged[i], ids[i])
		}
	}
	if Merge(make([][]int, 3)) != nil {
		t.Fatal("Merge of empty parts should be nil")
	}
}
