// Package shard partitions the node-id space of a graph stream into P
// disjoint shards, the unit of parallelism of the engine's shard-aware
// pipeline: ingestion classifies each mutation by the shard that owns the
// touched node, dirty tracking keeps one tracker per shard, and the
// incremental forward fans the dirty frontier out to one worker per shard
// before a deterministic merge. Ownership is a pure function of (node id,
// shard count, layout) — no state, no randomness — so a seeded run assigns
// identical shards on every execution and a checkpointed layout can be
// re-derived exactly on resume.
package shard

import (
	"fmt"
	"sort"
)

// Layout selects the ownership function mapping node ids to shards.
type Layout int

const (
	// Hash scatters ids with a multiplicative bit-mix: occupancy stays
	// balanced for any id distribution, at the cost of splitting runs of
	// consecutive ids (an L-hop ball of a fresh region) across shards.
	Hash Layout = iota
	// Range assigns blocks of RangeBlock consecutive ids round-robin:
	// neighborhoods of consecutively numbered nodes stay shard-local, so
	// per-shard compute regions overlap less than under Hash.
	Range
)

// RangeBlock is the run length of consecutive ids a Range layout keeps on
// one shard before moving to the next.
const RangeBlock = 256

// String returns the layout's config spelling.
func (l Layout) String() string {
	switch l {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ParseLayout resolves a layout name; the empty string means the Hash
// default.
func ParseLayout(name string) (Layout, error) {
	switch name {
	case "", "hash":
		return Hash, nil
	case "range":
		return Range, nil
	default:
		return 0, fmt.Errorf("shard: unknown layout %q (want \"hash\" or \"range\")", name)
	}
}

// Sharding is a fixed partition of the node-id space into P shards.
type Sharding struct {
	P      int
	Layout Layout
}

// New returns a sharding over p shards (p >= 1) with the given layout.
func New(p int, l Layout) (*Sharding, error) {
	if p < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", p)
	}
	if l != Hash && l != Range {
		return nil, fmt.Errorf("shard: invalid layout %d", int(l))
	}
	return &Sharding{P: p, Layout: l}, nil
}

// Of returns the shard owning node v, in [0, P).
func (s *Sharding) Of(v int) int {
	if s.P <= 1 {
		return 0
	}
	if s.Layout == Range {
		return (v / RangeBlock) % s.P
	}
	// SplitMix64-style finalizer: a fixed odd multiplier then xor-fold, so
	// nearby ids land on unrelated shards without any stored table.
	x := uint64(v) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int(x % uint64(s.P))
}

// Split partitions ids by owning shard, preserving input order within each
// shard: ascending input yields P ascending (possibly empty) slices.
func (s *Sharding) Split(ids []int) [][]int {
	parts := make([][]int, s.P)
	for _, v := range ids {
		si := s.Of(v)
		parts[si] = append(parts[si], v)
	}
	return parts
}

// Merge flattens per-shard id slices back into one ascending slice (the
// inverse of Split for disjoint inputs). Nil when every part is empty.
func Merge(parts [][]int) []int {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	ids := make([]int, 0, total)
	for _, p := range parts {
		ids = append(ids, p...)
	}
	sort.Ints(ids)
	return ids
}
