// Package kde implements classical kernel density estimation (the paper's
// Section V-A preliminaries) and the measurement utilities used to validate
// the graph-KDE sampler of Algorithm 2: empirical sampling densities,
// hop-distance profiles, and edge-smoothness of distributions over graph
// nodes (Theorem V.1).
package kde

import (
	"fmt"
	"math"
	"math/rand"
)

// Kernel is a symmetric probability kernel K(t) with ∫K = 1.
type Kernel struct {
	Name string
	// Density evaluates K(t).
	Density func(t float64) float64
	// Draw samples from K.
	Draw func(rng *rand.Rand) float64
}

// Gaussian is the standard normal kernel.
var Gaussian = Kernel{
	Name:    "gaussian",
	Density: func(t float64) float64 { return math.Exp(-t*t/2) / math.Sqrt(2*math.Pi) },
	Draw:    func(rng *rand.Rand) float64 { return rng.NormFloat64() },
}

// Epanechnikov is the parabolic kernel 3/4·(1−t²) on [−1, 1].
var Epanechnikov = Kernel{
	Name: "epanechnikov",
	Density: func(t float64) float64 {
		if t < -1 || t > 1 {
			return 0
		}
		return 0.75 * (1 - t*t)
	},
	Draw: func(rng *rand.Rand) float64 {
		// Devroye's three-uniforms rule samples Epanechnikov exactly:
		// return u2 if |u3| is the largest, else u3.
		u1, u2, u3 := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
		if math.Abs(u3) >= math.Abs(u2) && math.Abs(u3) >= math.Abs(u1) {
			return u2
		}
		return u3
	},
}

// Exponential is the double-exponential (Laplace) kernel ½·e^{−|t|}.
var Exponential = Kernel{
	Name:    "exponential",
	Density: func(t float64) float64 { return 0.5 * math.Exp(-math.Abs(t)) },
	Draw: func(rng *rand.Rand) float64 {
		u := rng.Float64() - 0.5
		if u >= 0 {
			return -math.Log(1 - 2*u)
		}
		return math.Log(1 + 2*u)
	},
}

// Estimator is a (weighted) kernel density estimate built from a sample,
// Equation 5 of the paper with optional per-point weights (weighted KDE).
type Estimator struct {
	Data    []float64
	Weights []float64 // nil means uniform
	H       float64   // bandwidth, > 0
	Kernel  Kernel
}

// NewEstimator returns a KDE over data with bandwidth h.
func NewEstimator(data []float64, h float64, k Kernel) *Estimator {
	if h <= 0 {
		panic(fmt.Sprintf("kde: bandwidth must be positive, got %v", h))
	}
	if len(data) == 0 {
		panic("kde: empty sample")
	}
	return &Estimator{Data: data, H: h, Kernel: k}
}

// SetWeights attaches per-point weights (they need not be normalized).
func (e *Estimator) SetWeights(w []float64) {
	if len(w) != len(e.Data) {
		panic(fmt.Sprintf("kde: %d weights for %d points", len(w), len(e.Data)))
	}
	e.Weights = w
}

func (e *Estimator) totalWeight() float64 {
	if e.Weights == nil {
		return float64(len(e.Data))
	}
	var s float64
	for _, w := range e.Weights {
		s += w
	}
	return s
}

// Density evaluates the estimate f̃(x) = Σᵢ wᵢ·K_h(x−xᵢ) / Σᵢ wᵢ.
func (e *Estimator) Density(x float64) float64 {
	var s float64
	for i, xi := range e.Data {
		w := 1.0
		if e.Weights != nil {
			w = e.Weights[i]
		}
		s += w * e.Kernel.Density((x-xi)/e.H) / e.H
	}
	return s / e.totalWeight()
}

// Sample draws from the mixture: pick a kernel ∝ weight, then draw from it.
// This mirrors the two-stage sampling view that Algorithm 2 transplants to
// graphs (pick a seed ∝ chips, then random-walk from it).
func (e *Estimator) Sample(rng *rand.Rand) float64 {
	i := 0
	if e.Weights == nil {
		i = rng.Intn(len(e.Data))
	} else {
		r := rng.Float64() * e.totalWeight()
		for j, w := range e.Weights {
			r -= w
			if r < 0 {
				i = j
				break
			}
			i = j
		}
	}
	return e.Data[i] + e.H*e.Kernel.Draw(rng)
}
