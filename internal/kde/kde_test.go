package kde

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
)

func integrate(f func(float64) float64, lo, hi float64, steps int) float64 {
	h := (hi - lo) / float64(steps)
	var s float64
	for i := 0; i < steps; i++ {
		s += f(lo+(float64(i)+0.5)*h) * h
	}
	return s
}

func TestKernelsIntegrateToOne(t *testing.T) {
	for _, k := range []Kernel{Gaussian, Epanechnikov, Exponential} {
		got := integrate(k.Density, -10, 10, 20000)
		if math.Abs(got-1) > 1e-3 {
			t.Fatalf("kernel %s integrates to %v", k.Name, got)
		}
	}
}

func TestKernelsSymmetric(t *testing.T) {
	for _, k := range []Kernel{Gaussian, Epanechnikov, Exponential} {
		for _, x := range []float64{0.1, 0.5, 0.9, 2} {
			if math.Abs(k.Density(x)-k.Density(-x)) > 1e-12 {
				t.Fatalf("kernel %s not symmetric at %v", k.Name, x)
			}
		}
	}
}

func TestKernelDrawMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []Kernel{Gaussian, Epanechnikov, Exponential} {
		const n = 200000
		var within float64
		for i := 0; i < n; i++ {
			if math.Abs(k.Draw(rng)) <= 0.5 {
				within++
			}
		}
		want := integrate(k.Density, -0.5, 0.5, 2000)
		if math.Abs(within/n-want) > 0.01 {
			t.Fatalf("kernel %s: P(|X|<0.5) = %v, want %v", k.Name, within/n, want)
		}
	}
}

func TestEstimatorDensityIntegratesToOne(t *testing.T) {
	e := NewEstimator([]float64{-1, 0, 2}, 0.5, Gaussian)
	got := integrate(e.Density, -15, 15, 30000)
	if math.Abs(got-1) > 1e-3 {
		t.Fatalf("estimate integrates to %v", got)
	}
}

func TestWeightedEstimatorSkew(t *testing.T) {
	e := NewEstimator([]float64{-3, 3}, 0.5, Gaussian)
	e.SetWeights([]float64{1, 9})
	if e.Density(3) <= e.Density(-3) {
		t.Fatal("heavier point should dominate")
	}
	// Density near the heavy point should be ~9x the light point's.
	ratio := e.Density(3) / e.Density(-3)
	if ratio < 5 || ratio > 12 {
		t.Fatalf("weight ratio not respected: %v", ratio)
	}
}

func TestEstimatorSampleFollowsMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEstimator([]float64{-5, 5}, 0.3, Gaussian)
	e.SetWeights([]float64{1, 3})
	var right float64
	const n = 100000
	for i := 0; i < n; i++ {
		if e.Sample(rng) > 0 {
			right++
		}
	}
	if math.Abs(right/n-0.75) > 0.01 {
		t.Fatalf("P(right mode) = %v, want 0.75", right/n)
	}
}

func TestEstimatorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bandwidth", func() { NewEstimator([]float64{1}, 0, Gaussian) })
	mustPanic("empty sample", func() { NewEstimator(nil, 1, Gaussian) })
	mustPanic("weight length", func() {
		NewEstimator([]float64{1, 2}, 1, Gaussian).SetWeights([]float64{1})
	})
}

func chainGraph(n int) *graph.Dynamic {
	g := graph.NewDynamic(1)
	for i := 0; i < n; i++ {
		g.AddNode(0, nil)
	}
	for i := 0; i+1 < n; i++ {
		g.AddUndirectedEdge(i, i+1, 0, 0)
	}
	return g
}

func TestEmpiricalDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := EmpiricalDensity(3, 90000, func() int {
		r := rng.Float64()
		switch {
		case r < 0.5:
			return 0
		case r < 0.8:
			return 1
		default:
			return 2
		}
	})
	wants := []float64{0.5, 0.3, 0.2}
	for i, w := range wants {
		if math.Abs(p[i]-w) > 0.02 {
			t.Fatalf("density[%d] = %v, want %v", i, p[i], w)
		}
	}
}

func TestBFSDistancesAndHopProfile(t *testing.T) {
	g := chainGraph(5)
	d := BFSDistances(g, 2)
	want := []int{2, 1, 0, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist = %v", d)
		}
	}
	p := []float64{0.05, 0.15, 0.6, 0.15, 0.05}
	prof := HopProfile(g, 2, p, 3)
	if prof[0] != 0.6 || prof[1] != 0.15 || prof[2] != 0.05 {
		t.Fatalf("HopProfile = %v", prof)
	}
	if !math.IsNaN(prof[3]) {
		t.Fatal("empty ring should be NaN")
	}
}

func TestEdgeSmoothness(t *testing.T) {
	g := chainGraph(3)
	smooth := EdgeSmoothness(g, []float64{0.33, 0.34, 0.33})
	spiky := EdgeSmoothness(g, []float64{0.0, 1.0, 0.0})
	if smooth >= spiky {
		t.Fatalf("smoothness ordering wrong: %v vs %v", smooth, spiky)
	}
	empty := graph.NewDynamic(1)
	empty.AddNode(0, nil)
	if EdgeSmoothness(empty, []float64{1}) != 0 {
		t.Fatal("edgeless graph should have 0 smoothness")
	}
}

func TestTotalVariation(t *testing.T) {
	if tv := TotalVariation([]float64{1, 0}, []float64{0, 1}); math.Abs(tv-1) > 1e-12 {
		t.Fatalf("TV = %v, want 1", tv)
	}
	if tv := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5}); tv != 0 {
		t.Fatalf("TV = %v, want 0", tv)
	}
}
