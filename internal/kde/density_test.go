package kde

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
)

func TestGraphKDEDensityIsDistribution(t *testing.T) {
	g := chainGraph(9)
	d, err := GraphKDEDensity(g, []int{4}, []float64{1}, 0.5, 64, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range d {
		if p < 0 {
			t.Fatal("negative density")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("density sums to %v", sum)
	}
}

func TestGraphKDEDensityDecaysFromSeed(t *testing.T) {
	g := chainGraph(11)
	d, err := GraphKDEDensity(g, []int{5}, []float64{1}, 0.5, 64, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	prof := HopProfile(g, 5, d, 4)
	for h := 0; h+1 < len(prof); h++ {
		if prof[h] <= prof[h+1] {
			t.Fatalf("density not decaying: %v", prof)
		}
	}
}

func TestGraphKDEDensitySmallerQSpreadsFarther(t *testing.T) {
	g := chainGraph(15)
	at := func(q float64, v int) float64 {
		d, err := GraphKDEDensity(g, []int{7}, []float64{1}, q, 128, 1e-14)
		if err != nil {
			t.Fatal(err)
		}
		return d[v]
	}
	// Mass 4 hops away should be larger with a smaller stop probability.
	if at(0.2, 11) <= at(0.8, 11) {
		t.Fatal("smaller q should carry more mass to distant nodes")
	}
}

func TestGraphKDEDensityWeightedSeeds(t *testing.T) {
	g := chainGraph(9)
	d, err := GraphKDEDensity(g, []int{1, 7}, []float64{9, 1}, 0.6, 64, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if d[1] <= d[7] {
		t.Fatalf("heavier seed should dominate: %v vs %v", d[1], d[7])
	}
}

func TestGraphKDEDensityIsolatedSeed(t *testing.T) {
	g := graph.NewDynamic(1)
	g.AddNode(0, nil)
	g.AddNode(0, nil) // isolated pair
	d, err := GraphKDEDensity(g, []int{0}, []float64{1}, 0.3, 16, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-1) > 1e-12 || d[1] != 0 {
		t.Fatalf("isolated seed density wrong: %v", d)
	}
}

func TestGraphKDEDensityMatchesMonteCarlo(t *testing.T) {
	g := chainGraph(7)
	seeds := []int{1, 5}
	weights := []float64{2, 1}
	const q = 0.5
	d, err := GraphKDEDensity(g, seeds, weights, q, 128, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate Algorithm 2's walk with the same fixed seeds.
	rng := rand.New(rand.NewSource(8))
	emp := EmpiricalDensity(g.N(), 300000, func() int {
		s := seeds[0]
		if rng.Float64()*3 >= 2 {
			s = seeds[1]
		}
		for rng.Float64() >= q {
			deg := g.Degree(s)
			if deg == 0 {
				break
			}
			i := rng.Intn(deg)
			if i < len(g.OutEdges(s)) {
				s = g.OutEdges(s)[i].To
			} else {
				s = g.InEdges(s)[i-len(g.OutEdges(s))].To
			}
		}
		return s
	})
	for v := range d {
		if math.Abs(d[v]-emp[v]) > 0.01 {
			t.Fatalf("node %d: closed form %v vs Monte Carlo %v", v, d[v], emp[v])
		}
	}
}

func TestGraphKDEDensityValidation(t *testing.T) {
	g := chainGraph(3)
	cases := []struct {
		seeds   []int
		weights []float64
		q       float64
	}{
		{nil, nil, 0.5},
		{[]int{0}, []float64{1, 2}, 0.5},
		{[]int{0}, []float64{1}, 0},
		{[]int{0}, []float64{1}, 1.5},
		{[]int{9}, []float64{1}, 0.5},
		{[]int{0}, []float64{-1}, 0.5},
		{[]int{0, 1}, []float64{0, 0}, 0.5},
	}
	for i, c := range cases {
		if _, err := GraphKDEDensity(g, c.seeds, c.weights, c.q, 8, 1e-9); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
