package kde

import (
	"math"

	"streamgnn/internal/graph"
)

// EmpiricalDensity estimates the effective sampling density of a node
// sampler by Monte Carlo: it invokes draw `samples` times and returns the
// per-node frequency over n nodes. Used to validate Theorem V.1.
func EmpiricalDensity(n int, samples int, draw func() int) []float64 {
	counts := make([]float64, n)
	for i := 0; i < samples; i++ {
		counts[draw()]++
	}
	for v := range counts {
		counts[v] /= float64(samples)
	}
	return counts
}

// EdgeSmoothness returns the mean absolute density difference across the
// edges of g: (1/|E|)·Σ_{(u,v)∈E} |p(u)−p(v)|. Lower is smoother; the
// graph-KDE sampling distribution should be smoother than the raw chip
// distribution (Section V).
func EdgeSmoothness(g *graph.Dynamic, p []float64) float64 {
	var sum float64
	var edges int
	for u := 0; u < g.N(); u++ {
		for _, e := range g.OutEdges(u) {
			sum += math.Abs(p[u] - p[e.To])
			edges++
		}
	}
	if edges == 0 {
		return 0
	}
	return sum / float64(edges)
}

// HopProfile returns, for each hop distance 0..maxHop from center, the mean
// density of nodes in that ring (NaN for empty rings). For a KDE-style
// kernel the profile should decay with hop distance (Theorem V.1).
func HopProfile(g *graph.Dynamic, center int, p []float64, maxHop int) []float64 {
	dist := BFSDistances(g, center)
	sums := make([]float64, maxHop+1)
	counts := make([]int, maxHop+1)
	for v, d := range dist {
		if d >= 0 && d <= maxHop {
			sums[d] += p[v]
			counts[d]++
		}
	}
	out := make([]float64, maxHop+1)
	for h := range out {
		if counts[h] == 0 {
			out[h] = math.NaN()
		} else {
			out[h] = sums[h] / float64(counts[h])
		}
	}
	return out
}

// BFSDistances returns undirected BFS hop distances from src (-1 when
// unreachable).
func BFSDistances(g *graph.Dynamic, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.OutEdges(u) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
		for _, e := range g.InEdges(u) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// TotalVariation returns ½·Σ|p−q| between two distributions over the same
// node set.
func TotalVariation(p, q []float64) float64 {
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}
