package kde

import (
	"fmt"

	"streamgnn/internal/graph"
	"streamgnn/internal/tensor"
)

// GraphKDEDensity computes, in closed form, the sampling density that
// Algorithm 2's random walk induces for a *fixed* seed window: seed s is
// chosen with probability ∝ weights[s]; the walk stops at the current node
// with probability q, otherwise moves to a uniform (undirected) neighbor.
// Walks from isolated nodes stop immediately.
//
// This is the sum of graph-KDE kernels of Section V-B in explicit form
// (Algorithm 2 itself never materializes it — it only samples), useful for
// analysis: plotting kernels, verifying Theorem V.1's decay, and choosing q.
// The series Σ_h q(1−q)^h π_h is truncated once the remaining walk mass
// drops below tol, after at most maxHops steps.
func GraphKDEDensity(g *graph.Dynamic, seeds []int, weights []float64, q float64, maxHops int, tol float64) ([]float64, error) {
	return GraphKDEDensityCSR(g.WalkAdj(), seeds, weights, q, maxHops, tol)
}

// GraphKDEDensityCSR is GraphKDEDensity over a frozen walk adjacency (one row
// per node, entries the node's out-edge targets then in-edge sources — the
// shape graph.Dynamic.WalkAdj returns). Because the CSR is immutable, a
// serving snapshot can capture it at publish time and evaluate the density
// lock-free while the live graph keeps mutating; the per-entry accumulation
// order matches the live-graph walk exactly, so both paths are bit-identical.
func GraphKDEDensityCSR(adj *tensor.CSR, seeds []int, weights []float64, q float64, maxHops int, tol float64) ([]float64, error) {
	n := adj.NRows
	if len(seeds) == 0 {
		return nil, fmt.Errorf("kde: no seeds")
	}
	if len(weights) != len(seeds) {
		return nil, fmt.Errorf("kde: %d weights for %d seeds", len(weights), len(seeds))
	}
	if q <= 0 || q > 1 {
		return nil, fmt.Errorf("kde: stop probability q=%v outside (0,1]", q)
	}
	if maxHops < 0 {
		maxHops = 0
	}
	// Initial distribution over walk positions.
	cur := make([]float64, n)
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("kde: negative seed weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("kde: zero total seed weight")
	}
	for i, s := range seeds {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("kde: seed %d out of range [0,%d)", s, n)
		}
		cur[s] += weights[i] / total
	}

	density := make([]float64, n)
	next := make([]float64, n)
	walkMass := 1.0
	for hop := 0; ; hop++ {
		// Stop with probability q at the current position; isolated nodes
		// stop with probability 1 (the walk cannot continue).
		for v := 0; v < n; v++ {
			if cur[v] == 0 {
				continue
			}
			if adj.RowNNZ(v) == 0 {
				density[v] += cur[v]
			} else {
				density[v] += q * cur[v]
			}
		}
		if hop >= maxHops {
			break
		}
		// Advance the surviving mass one hop.
		for v := range next {
			next[v] = 0
		}
		var surviving float64
		for v := 0; v < n; v++ {
			if cur[v] == 0 {
				continue
			}
			deg := adj.RowNNZ(v)
			if deg == 0 {
				continue
			}
			move := (1 - q) * cur[v] / float64(deg)
			for p := adj.RowPtr[v]; p < adj.RowPtr[v+1]; p++ {
				next[adj.ColIdx[p]] += move
			}
			surviving += (1 - q) * cur[v]
		}
		cur, next = next, cur
		walkMass = surviving
		if walkMass < tol {
			// Attribute the truncated tail to its current positions so the
			// result remains a probability distribution.
			for v := 0; v < n; v++ {
				density[v] += cur[v]
			}
			break
		}
	}
	return density, nil
}
