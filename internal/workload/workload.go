// Package workload generates the five synthetic graph streams standing in
// for the paper's datasets (Bitcoin/Elliptic, Reddit, NYC Taxi, Stack
// Overflow, UCI Messages — Section VI-A). The originals are real datasets up
// to 30 GB; these generators reproduce, at laptop scale, the two phenomena
// the experiments depend on:
//
//  1. concept drift — the feature→target mapping changes over time, so a
//     model whose training stops deteriorates (Figure 4), and
//  2. localized utility — activity and label mass concentrate in "hot"
//     regions of the graph, so weighted/KDE training beats full training at
//     equal accuracy (Tables I–III).
//
// Every generator precomputes its ground-truth tables while emitting events,
// so query labelers are exact and O(1).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

// GenConfig controls a generator.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Steps is the number of stream steps to generate.
	Steps int
	// Scale multiplies node/edge counts (1 = default laptop scale).
	Scale float64
	// DriftPeriod is the number of steps between regime changes; 0 uses
	// the dataset default. Drift is what makes continuous training
	// necessary (RQ1).
	DriftPeriod int
}

func (c GenConfig) withDefaults(defaultDrift int) GenConfig {
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.DriftPeriod <= 0 {
		c.DriftPeriod = defaultDrift
	}
	return c
}

func (c GenConfig) scaled(n int) int {
	v := int(math.Round(float64(n) * c.Scale))
	if v < 1 {
		v = 1
	}
	return v
}

// Dataset is a generated graph stream plus its analytics workload.
type Dataset struct {
	// Name matches the paper's dataset name.
	Name string
	// FeatDim is the node attribute dimension.
	FeatDim int
	// Batches is the event stream, one batch per step.
	Batches []stream.Batch
	// WindowSteps, if > 0, is the sliding-window width in steps.
	WindowSteps int
	// Queries are the continuous predictive queries (event monitoring).
	Queries []*query.EventQuery
	// LinkPred marks the dataset as a link-prediction workload (Table II).
	LinkPred bool
	// Steps is the stream length.
	Steps int
}

// Source returns a fresh replayable source over the batches.
func (d *Dataset) Source() stream.Source {
	return &stream.SliceSource{Batches: d.Batches}
}

// Attach registers the dataset's queries (and link task) on a workload.
func (d *Dataset) Attach(w *query.Workload, seed int64) {
	for _, q := range d.Queries {
		w.AddQuery(q)
	}
	if d.LinkPred {
		w.SetLinkTask(query.NewLinkPredTask(seed))
	}
}

// ByName builds a dataset by its paper name.
func ByName(name string, cfg GenConfig) (*Dataset, error) {
	switch name {
	case "Bitcoin":
		return Bitcoin(cfg), nil
	case "Reddit":
		return Reddit(cfg), nil
	case "Taxi":
		return Taxi(cfg), nil
	case "StackOverflow":
		return StackOverflow(cfg), nil
	case "UCIMessages":
		return UCIMessages(cfg), nil
	case "Churn":
		return Churn(cfg), nil
	}
	return nil, fmt.Errorf("workload: unknown dataset %q", name)
}

// Names lists the built-in workloads: the five paper datasets plus the
// adversarial edge-churn stress stream.
func Names() []string {
	return []string{"Bitcoin", "Reddit", "Taxi", "StackOverflow", "UCIMessages", "Churn"}
}

// regimeProcess models drifting latent activity for a set of regions: each
// region's activity follows a mean-reverting AR(1) process whose mean is
// re-drawn every DriftPeriod steps (the regime change), and a small set of
// "hot" regions carries most of the activity mass.
type regimeProcess struct {
	rng      *rand.Rand
	activity []float64
	mean     []float64
	hot      []bool
	period   int
	step     int
}

func newRegimeProcess(rng *rand.Rand, regions, hotRegions, driftPeriod int) *regimeProcess {
	p := &regimeProcess{
		rng:      rng,
		activity: make([]float64, regions),
		mean:     make([]float64, regions),
		hot:      make([]bool, regions),
		period:   driftPeriod,
	}
	for _, r := range rng.Perm(regions)[:hotRegions] {
		p.hot[r] = true
	}
	p.redraw()
	copy(p.activity, p.mean)
	return p
}

// hotRegions returns the indices of the hot regions (ascending).
func (p *regimeProcess) hotRegions() []int {
	var out []int
	for r, h := range p.hot {
		if h {
			out = append(out, r)
		}
	}
	return out
}

func (p *regimeProcess) redraw() {
	for r := range p.mean {
		base := 0.15 + 0.1*p.rng.Float64()
		if p.hot[r] {
			base = 0.6 + 0.35*p.rng.Float64()
		}
		p.mean[r] = base
	}
}

// advance moves the process one step, re-drawing regime means on period
// boundaries, and returns the new activity vector (values in [0, 1]).
func (p *regimeProcess) advance() []float64 {
	p.step++
	if p.period > 0 && p.step%p.period == 0 {
		p.redraw()
	}
	for r := range p.activity {
		a := 0.8*p.activity[r] + 0.2*p.mean[r] + 0.03*p.rng.NormFloat64()
		p.activity[r] = clamp01(a)
	}
	return p.activity
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// gainSchedule models observation drift: the informative features are
// reported through a gain whose sign alternates and whose magnitude is
// re-drawn at every regime boundary, while ground truths stay in fixed
// units. A model whose training stops keeps using the stale gain and its
// predictions invert/rescale after the next boundary — this is the
// mapping-level drift that makes Figure 4's partial-training loss blow up,
// whereas a continuously trained model re-fits within a few steps.
type gainSchedule struct {
	rng    *rand.Rand
	period int
	gain   float64
	sign   float64
}

func newGainSchedule(rng *rand.Rand, period int) *gainSchedule {
	return &gainSchedule{rng: rng, period: period, gain: 1, sign: 1}
}

// at returns the gain for the given step, re-drawing on regime boundaries.
func (g *gainSchedule) at(step int) float64 {
	if g.period > 0 && step > 0 && step%g.period == 0 {
		g.sign = -g.sign
		g.gain = g.sign * (0.7 + 0.6*g.rng.Float64())
	}
	return g.gain
}

// levelSchedule models scale drift of the monitored quantity itself: the
// per-regime severity level multiplies the raw monitored counts, so the
// truth's magnitude jumps at regime boundaries. A frozen model keeps
// predicting at the old level and its squared error scales with the level
// gap — the mechanism behind Figure 4's partial-training blowup — while a
// continuously trained model re-fits the new level within a few steps from
// the revealed labels.
type levelSchedule struct {
	rng    *rand.Rand
	period int
	level  float64
}

func newLevelSchedule(rng *rand.Rand, period int) *levelSchedule {
	return &levelSchedule{rng: rng, period: period, level: 1}
}

// at returns the severity level for the given step.
func (l *levelSchedule) at(step int) float64 {
	if l.period > 0 && step > 0 && step%l.period == 0 {
		l.level = 1 + 9*l.rng.Float64()
	}
	return l.level
}

// truthTable stores per-(step, anchor) ground truth for O(1) labelers.
type truthTable struct {
	vals map[int]map[int]float64 // step -> anchor -> truth
}

func newTruthTable() *truthTable { return &truthTable{vals: make(map[int]map[int]float64)} }

func (t *truthTable) set(step, anchor int, v float64) {
	m := t.vals[step]
	if m == nil {
		m = make(map[int]float64)
		t.vals[step] = m
	}
	m[anchor] = v
}

// lookup returns the stored truth for (anchor, step).
func (t *truthTable) lookup(anchor, step int) (float64, bool) {
	m, ok := t.vals[step]
	if !ok {
		return 0, false
	}
	v, ok := m[anchor]
	return v, ok
}
