package workload

import (
	"math"
	"math/rand"
	"testing"

	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

func replay(t *testing.T, d *Dataset) *graph.Dynamic {
	t.Helper()
	g := graph.NewDynamic(d.FeatDim)
	r := stream.NewReplayer(g, d.Source(), d.WindowSteps)
	for r.Advance() {
	}
	if r.Step() != d.Steps-1 {
		t.Fatalf("%s: replay ended at step %d, want %d", d.Name, r.Step(), d.Steps-1)
	}
	return g
}

func TestAllDatasetsGenerateAndReplay(t *testing.T) {
	for _, name := range Names() {
		d, err := ByName(name, GenConfig{Seed: 1, Steps: 20})
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name || len(d.Batches) != 20 {
			t.Fatalf("%s: batches %d", name, len(d.Batches))
		}
		g := replay(t, d)
		if g.N() < 30 {
			t.Fatalf("%s: too few nodes: %d", name, g.N())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: no edges", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", GenConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := Bitcoin(GenConfig{Seed: 7, Steps: 15})
	b := Bitcoin(GenConfig{Seed: 7, Steps: 15})
	ga, gb := graph.NewDynamic(a.FeatDim), graph.NewDynamic(b.FeatDim)
	ra := stream.NewReplayer(ga, a.Source(), a.WindowSteps)
	rb := stream.NewReplayer(gb, b.Source(), b.WindowSteps)
	for ra.Advance() && rb.Advance() {
	}
	if ga.N() != gb.N() || ga.NumEdges() != gb.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	if !ga.Features().Equal(gb.Features()) {
		t.Fatal("same seed produced different features")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Bitcoin(GenConfig{Seed: 1, Steps: 15})
	b := Bitcoin(GenConfig{Seed: 2, Steps: 15})
	ga, gb := replay(t, a), replay(t, b)
	if ga.Features().Equal(gb.Features()) {
		t.Fatal("different seeds produced identical features")
	}
}

func TestScaleGrowsStream(t *testing.T) {
	small := Reddit(GenConfig{Seed: 1, Steps: 10, Scale: 0.5})
	big := Reddit(GenConfig{Seed: 1, Steps: 10, Scale: 2})
	gs, gb := replay(t, small), replay(t, big)
	if gb.NumEdges() <= gs.NumEdges() {
		t.Fatalf("scale did not grow edges: %d vs %d", gs.NumEdges(), gb.NumEdges())
	}
}

func TestBitcoinLabelsAndQueries(t *testing.T) {
	d := Bitcoin(GenConfig{Seed: 3, Steps: 15})
	g := replay(t, d)
	labeled := 0
	for v := 0; v < g.N(); v++ {
		if _, ok := g.Label(v); ok {
			labeled++
		}
	}
	if labeled == 0 {
		t.Fatal("no self-supervised node labels")
	}
	if len(d.Queries) != 1 || len(d.Queries[0].Anchors) != 10 {
		t.Fatalf("queries wrong: %+v", d.Queries)
	}
	// Truth is defined for all anchors at step >= 1.
	q := d.Queries[0]
	for _, a := range q.Anchors {
		if _, ok := q.Labeler(g, a, 5); !ok {
			t.Fatalf("missing truth for anchor %d", a)
		}
	}
	if _, ok := q.Labeler(g, q.Anchors[0], 999); ok {
		t.Fatal("truth for nonexistent step")
	}
}

func TestRedditEdgeLabels(t *testing.T) {
	d := Reddit(GenConfig{Seed: 4, Steps: 12})
	g := replay(t, d)
	labeled := 0
	for v := 0; v < g.N(); v++ {
		for _, e := range g.OutEdges(v) {
			if e.HasLabel() {
				labeled++
				if e.Label != 0 && e.Label != 1 {
					t.Fatalf("sentiment label %v not binary", e.Label)
				}
			}
		}
	}
	if labeled == 0 {
		t.Fatal("no sentiment edge labels")
	}
	// Truths are ratios in [0, 1].
	q := d.Queries[0]
	for _, a := range q.Anchors {
		v, ok := q.Labeler(g, a, 6)
		if !ok || v < 0 || v > 1 {
			t.Fatalf("bad ratio truth %v ok=%v", v, ok)
		}
	}
}

func TestTaxiHeterogeneousAndWindowed(t *testing.T) {
	d := Taxi(GenConfig{Seed: 5, Steps: 15})
	g := replay(t, d)
	grids, trips := 0, 0
	for v := 0; v < g.N(); v++ {
		switch g.Type(v) {
		case 0:
			grids++
		case 1:
			trips++
		}
	}
	if grids != 36 {
		t.Fatalf("grid nodes = %d", grids)
	}
	if trips == 0 {
		t.Fatal("no trip nodes")
	}
	// Sliding window: no edge older than WindowSteps.
	minTime := int64(d.Steps - 1 - d.WindowSteps)
	for v := 0; v < g.N(); v++ {
		for _, e := range g.OutEdges(v) {
			if e.Time < minTime {
				t.Fatalf("expired edge survived: time %d", e.Time)
			}
		}
	}
}

func TestLinkPredDatasetsAttach(t *testing.T) {
	for _, name := range []string{"StackOverflow", "UCIMessages"} {
		d, err := ByName(name, GenConfig{Seed: 6, Steps: 12})
		if err != nil {
			t.Fatal(err)
		}
		if !d.LinkPred || len(d.Queries) != 0 {
			t.Fatalf("%s should be link-pred only", name)
		}
		w := query.NewWorkload(query.NewHeads(rand.New(rand.NewSource(1)), 4))
		d.Attach(w, 9)
		if w.LinkTask() == nil {
			t.Fatalf("%s: link task not attached", name)
		}
	}
}

func TestEventDatasetAttach(t *testing.T) {
	d := Bitcoin(GenConfig{Seed: 6, Steps: 10})
	w := query.NewWorkload(query.NewHeads(rand.New(rand.NewSource(1)), 4))
	d.Attach(w, 9)
	if len(w.Queries()) != 1 || w.LinkTask() != nil {
		t.Fatal("attach wrong")
	}
}

// Drift must actually move the anchor truths: the truth sequence should
// change distribution across regimes (this is what makes RQ1's answer
// affirmative).
func TestDriftChangesTruthDistribution(t *testing.T) {
	d := Bitcoin(GenConfig{Seed: 8, Steps: 40, DriftPeriod: 10})
	q := d.Queries[0]
	g := replay(t, d)
	variance := func(from, to int) float64 {
		var vals []float64
		for s := from; s < to; s++ {
			for _, a := range q.Anchors {
				if v, ok := q.Labeler(g, a, s); ok {
					vals = append(vals, v)
				}
			}
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var sq float64
		for _, v := range vals {
			sq += (v - mean) * (v - mean)
		}
		return sq / float64(len(vals))
	}
	if variance(1, 40) == 0 {
		t.Fatal("truths are constant — no drift signal at all")
	}
	// Per-anchor means should differ between early and late regimes for at
	// least one anchor (hot set moves).
	moved := false
	for _, a := range q.Anchors {
		early, late, ne, nl := 0.0, 0.0, 0, 0
		for s := 1; s < 20; s++ {
			if v, ok := q.Labeler(g, a, s); ok {
				early += v
				ne++
			}
		}
		for s := 20; s < 40; s++ {
			if v, ok := q.Labeler(g, a, s); ok {
				late += v
				nl++
			}
		}
		if ne > 0 && nl > 0 && math.Abs(early/float64(ne)-late/float64(nl)) > 0.5 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no anchor's truth distribution moved across regimes")
	}
}

// The churn stream is the scheduler's stress workload: registered in
// Names() so generators and services list it, it must replay cleanly, keep
// every edge inside its short window, and actually churn — the live edge
// set should turn over between steps.
func TestChurnStream(t *testing.T) {
	d, err := ByName("Churn", GenConfig{Seed: 13, Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range Names() {
		found = found || name == "Churn"
	}
	if !found {
		t.Fatal("Churn missing from Names(); the stress stream is undiscoverable")
	}
	if d.WindowSteps <= 0 {
		t.Fatal("churn stream needs a sliding window to produce expiry storms")
	}
	g := replay(t, d)
	if g.N() != 12*8 {
		t.Fatalf("node population %d, want %d", g.N(), 12*8)
	}
	// No edge outlives the window (the expiry-storm half of the churn).
	minTime := int64(d.Steps - 1 - d.WindowSteps)
	for v := 0; v < g.N(); v++ {
		for _, e := range g.OutEdges(v) {
			if e.Time < minTime {
				t.Fatalf("expired edge survived: time %d", e.Time)
			}
		}
	}
	// The edge count fluctuates step to step (the insert-storm half):
	// replay incrementally and record the live edge counts.
	g2 := graph.NewDynamic(d.FeatDim)
	r := stream.NewReplayer(g2, d.Source(), d.WindowSteps)
	var counts []int
	for r.Advance() {
		counts = append(counts, g2.NumEdges())
	}
	distinct := make(map[int]bool)
	for _, c := range counts[d.WindowSteps:] {
		distinct[c] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("edge count never churned: %v", counts)
	}
	// Truths exist for every community hub once the stream is running.
	q := d.Queries[0]
	for _, a := range q.Anchors {
		if _, ok := q.Labeler(g, a, 5); !ok {
			t.Fatalf("missing truth for anchor %d", a)
		}
	}
}

func TestRegimeProcessHotRegionsDominate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := newRegimeProcess(rng, 10, 2, 100)
	var hotSum, coldSum float64
	var hotN, coldN float64
	for i := 0; i < 200; i++ {
		act := p.advance()
		for r, a := range act {
			if p.hot[r] {
				hotSum += a
				hotN++
			} else {
				coldSum += a
				coldN++
			}
		}
	}
	if hotSum/hotN <= coldSum/coldN {
		t.Fatal("hot regions are not hotter")
	}
}

func TestWeightedPick(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[weightedPick(rng, []float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
	// Degenerate all-zero weights fall back to uniform.
	if v := weightedPick(rng, []float64{0, 0}); v != 0 && v != 1 {
		t.Fatal("zero weights broken")
	}
}

func TestGenConfigDefaults(t *testing.T) {
	c := GenConfig{}.withDefaults(9)
	if c.Steps != 40 || c.Scale != 1 || c.DriftPeriod != 9 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if got := (GenConfig{Scale: 0.01}).scaled(10); got != 1 {
		t.Fatalf("scaled floor wrong: %d", got)
	}
}
