package workload

import (
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

// Bitcoin generates the Elliptic-style transaction stream: transactions are
// nodes carrying features, Bitcoin flows between transactions are dynamic
// edges, and each transaction is illicit or licit (the self-supervised node
// label). The supervised workload monitors, per region hub, the number of
// flows between licit and illicit transactions in the next step.
//
// Drift: the hidden illicitness feature is sign-modulated by the current
// regime, so the feature→label rule inverts at every regime change; hot
// regions carry most transaction volume.
func Bitcoin(cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults(12)
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		regions = 10
		hot     = 3
		featDim = 8
	)
	proc := newRegimeProcess(rng, regions, hot, cfg.DriftPeriod)
	gains := newGainSchedule(rng, cfg.DriftPeriod)
	levels := newLevelSchedule(rng, cfg.DriftPeriod)

	d := &Dataset{Name: "Bitcoin", FeatDim: featDim, Steps: cfg.Steps}
	truth := newTruthTable()

	nextID := 0
	newNode := func(events *[]stream.Event, feat []float64) int {
		*events = append(*events, stream.AddNode{Type: 0, Feat: feat})
		id := nextID
		nextID++
		return id
	}

	// Step 0: one hub per region plus a few seed transactions.
	var ev []stream.Event
	hubs := make([]int, regions)
	recent := make([][]int, regions) // recent transactions per region
	illicit := make(map[int]bool)
	for r := 0; r < regions; r++ {
		hubs[r] = newNode(&ev, hubFeatures(r, 0, 0))
		recent[r] = []int{hubs[r]}
	}
	batches := []stream.Batch{{Step: 0, Events: ev}}

	perStep := cfg.scaled(8)
	for step := 1; step < cfg.Steps; step++ {
		gain := gains.at(step)
		level := levels.at(step)
		act := proc.advance()
		ev = nil
		crossFlows := make([]int, regions)
		totalFlows := make([]int, regions)
		for i := 0; i < perStep; i++ {
			r := weightedPick(rng, act)
			// Hidden illicitness; the observable feature is sign-modulated
			// by the regime, so stale models mispredict after a flip.
			z := 1.0
			if rng.Float64() < 0.25+0.4*act[r] { // hot regions breed illicit txs
				z = -1
			}
			feat := []float64{
				act[r]*gain + 0.05*rng.NormFloat64(), // activity through the drifting gain
				rng.NormFloat64() * 0.1,
				z * sgn(gain),    // illicitness observed through the gain's sign
				float64(r%3) - 1, // coarse region hash
				float64(r/3) - 1,
				rng.Float64(), // amount
				rng.NormFloat64() * 0.1,
				1,
			}
			id := newNode(&ev, feat)
			isIllicit := z < 0
			illicit[id] = isIllicit
			ev = append(ev, stream.SetLabel{V: id, Label: b2f(isIllicit)})
			// Flows to recent transactions, mostly within the region.
			nFlows := 1 + rng.Intn(3)
			for f := 0; f < nFlows; f++ {
				tr := r
				if rng.Float64() < 0.1 {
					tr = rng.Intn(regions)
				}
				peer := recent[tr][rng.Intn(len(recent[tr]))]
				ev = append(ev, stream.AddEdge{U: id, V: peer, Type: 0, Time: int64(step), Label: stream.NoLabel()})
				totalFlows[tr]++
				if illicit[peer] != isIllicit {
					crossFlows[tr]++
				}
			}
			recent[r] = append(recent[r], id)
			if len(recent[r]) > 20 {
				recent[r] = recent[r][1:]
			}
		}
		// Refresh hub features so anchors observe current region state
		// (through the drifting gain; truths stay in fixed units).
		for r := 0; r < regions; r++ {
			ev = append(ev, stream.SetFeature{V: hubs[r], Feat: hubFeatures(r, act[r]*gain, gain)})
			// Monitored value: severity-weighted illicit-flow intensity of
			// the region (the smooth rate driving the realized flows above;
			// raw counts are a noisy draw from it).
			truth.set(step, hubs[r], 8*act[r]*level)
		}
		batches = append(batches, stream.Batch{Step: step, Events: ev})
	}

	d.Batches = batches
	anchors := append([]int(nil), hubs...)
	d.Queries = []*query.EventQuery{{
		Name:      "illicit-licit flows per region",
		Anchors:   anchors,
		Delta:     1,
		Threshold: 6,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return truth.lookup(anchor, step)
		},
	}}
	return d
}

// hubFeatures encodes the observed (gain-modulated) region activity; the
// gain itself is NOT observable, which is what forces online re-fitting.
func hubFeatures(r int, observedActivity, gain float64) []float64 {
	_ = gain // deliberately not exposed
	return []float64{observedActivity, 0, 0, float64(r%3) - 1, float64(r/3) - 1, 0, 0, 1}
}

func sgn(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func weightedPick(rng *rand.Rand, w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return rng.Intn(len(w))
	}
	r := rng.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}
