package workload

import (
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

// Churn generates the adversarial edge-churn stream used by the scheduler
// A/B (streambench -sched): a fixed population of small communities whose
// edge set is almost entirely transient. Every step re-asserts each
// community's ring at the current timestamp and slams a bursty storm of extra
// edges onto one rotating community — including cross-community chords — so
// with the short sliding window each burst later expires en masse. The stream
// therefore alternates insert storms with expiry storms while features and
// labels drift in the storm's wake: an ugly workload for anything that
// assumes a quiet edge set, partition caches included.
//
// Churn is not one of the paper's five datasets, but it is registered in
// Names() alongside them so generators and services can list it.
func Churn(cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults(8)
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		size    = 8 // nodes per community
		featDim = 6
		window  = 3 // sliding-window width: storm edges live this long
	)
	communities := cfg.scaled(12)
	gains := newGainSchedule(rng, cfg.DriftPeriod)

	d := &Dataset{Name: "Churn", FeatDim: featDim, Steps: cfg.Steps, WindowSteps: window}
	truth := newTruthTable()

	nodeFeat := func(c, i int, observed float64) []float64 {
		return []float64{
			observed,
			float64(i%2)*2 - 1,
			float64(c%3) - 1,
			float64((c/3)%3) - 1,
			rng.NormFloat64() * 0.1,
			1,
		}
	}

	// Step 0: the full node population; edges only ever arrive via storms.
	var ev []stream.Event
	hubs := make([]int, communities)
	for c := 0; c < communities; c++ {
		for i := 0; i < size; i++ {
			id := c*size + i
			ev = append(ev, stream.AddNode{Type: 0, Feat: nodeFeat(c, i, 0)})
			ev = append(ev, stream.SetLabel{V: id, Label: float64(i % 2)})
			if i == 0 {
				hubs[c] = id
			}
		}
	}
	batches := []stream.Batch{{Step: 0, Events: ev}}

	burst := cfg.scaled(18)
	for step := 1; step < cfg.Steps; step++ {
		gain := gains.at(step)
		ev = nil
		// Baseline structure, re-asserted every step so expiry never empties
		// a community: each ring edge carries the current timestamp and thus
		// survives exactly `window` steps.
		for c := 0; c < communities; c++ {
			base := c * size
			for i := 0; i < size; i++ {
				ev = append(ev, stream.AddEdge{U: base + i, V: base + (i+1)%size, Type: 0, Time: int64(step), Label: stream.NoLabel()})
			}
		}
		// The storm: a bursty batch of edges inside one rotating community,
		// with every fourth edge a chord into the next community — the chords
		// are what intermittently merge conflict groups under the scheduler.
		storm := step % communities
		base := storm * size
		intensity := burst/2 + rng.Intn(burst)
		for k := 0; k < intensity; k++ {
			u := base + rng.Intn(size)
			v := base + rng.Intn(size)
			if k%4 == 3 {
				v = ((storm+1)%communities)*size + rng.Intn(size)
			}
			ev = append(ev, stream.AddEdge{U: u, V: v, Type: 0, Time: int64(step), Label: stream.NoLabel()})
		}
		// The storm's wake: feature rewrites riding the drifting gain, and
		// labels that flip with its sign — stale models mispredict exactly
		// where the churn is.
		for i := 0; i < size; i++ {
			v := base + i
			ev = append(ev, stream.SetFeature{V: v, Feat: nodeFeat(storm, i, float64(intensity)/float64(burst)*gain)})
			lbl := float64(i % 2)
			if gain < 0 {
				lbl = 1 - lbl
			}
			ev = append(ev, stream.SetLabel{V: v, Label: lbl})
		}
		for c := 0; c < communities; c++ {
			mon := 0.0
			if c == storm {
				mon = float64(intensity)
			}
			truth.set(step, hubs[c], mon)
		}
		batches = append(batches, stream.Batch{Step: step, Events: ev})
	}

	d.Batches = batches
	d.Queries = []*query.EventQuery{{
		Name:      "churn burst intensity per community",
		Anchors:   append([]int(nil), hubs...),
		Delta:     1,
		Threshold: float64(burst),
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return truth.lookup(anchor, step)
		},
	}}
	return d
}
