package workload

import (
	"math"
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

// Taxi generates the NYC-taxi-style heterogeneous stream: a fixed grid of
// location nodes plus trip nodes arriving every step, each trip connecting
// its pickup and dropoff grid cells with two temporal edges. Trip distance
// is the self-supervised node label; the supervised workload monitors the
// fraction of slow trips touching anchor grid cells in the next step.
//
// Drift: per-cell congestion follows the regime process (rush epochs move
// around the city); a sliding window expires old trip edges, and the node
// set grows without bound — this is the generator that stresses full-graph
// training the hardest, mirroring the Taxi rows of Table I.
func Taxi(cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults(10)
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		side    = 6
		cells   = side * side
		hot     = 6
		featDim = 7
	)
	proc := newRegimeProcess(rng, cells, hot, cfg.DriftPeriod)
	gains := newGainSchedule(rng, cfg.DriftPeriod)

	d := &Dataset{Name: "Taxi", FeatDim: featDim, Steps: cfg.Steps, WindowSteps: 6}
	truth := newTruthTable()

	cellFeat := func(c int, congestion float64) []float64 {
		return []float64{
			1, // grid marker
			congestion,
			float64(c%side) / side,
			float64(c/side) / side,
			0, 0, 1,
		}
	}

	var ev []stream.Event
	nextID := 0
	for c := 0; c < cells; c++ {
		ev = append(ev, stream.AddNode{Type: 0, Feat: cellFeat(c, 0.3)})
		nextID++
	}
	batches := []stream.Batch{{Step: 0, Events: ev}}

	perStep := cfg.scaled(22)
	for step := 1; step < cfg.Steps; step++ {
		gain := gains.at(step)
		congestion := proc.advance()
		ev = nil
		slow := make([]float64, cells)
		total := make([]float64, cells)
		for i := 0; i < perStep; i++ {
			pick := weightedPick(rng, congestion)
			drop := rng.Intn(cells)
			dist := gridDist(pick, drop, side) + 0.3*rng.Float64()
			// Speed falls with congestion at both endpoints.
			cong := (congestion[pick] + congestion[drop]) / 2
			speed := clamp01(1.1-cong) * (0.7 + 0.6*rng.Float64())
			duration := dist / math.Max(speed, 0.05)
			// Meter readings pass through the drifting gain; labels stay in
			// true units.
			feat := []float64{
				0, // trip marker
				cong*gain + 0.05*rng.NormFloat64(),
				dist * gain / float64(side),
				speed * gain,
				duration / 10,
				math.Sin(float64(step) / 4),
				1,
			}
			trip := nextID
			nextID++
			ev = append(ev, stream.AddNode{Type: 1, Feat: feat})
			ev = append(ev, stream.SetLabel{V: trip, Label: dist / float64(side)})
			ev = append(ev, stream.AddEdge{U: trip, V: pick, Type: 0, Time: int64(step), Label: stream.NoLabel()})
			ev = append(ev, stream.AddEdge{U: trip, V: drop, Type: 1, Time: int64(step), Label: stream.NoLabel()})
			isSlow := speed < 0.5
			for _, c := range []int{pick, drop} {
				total[c]++
				if isSlow {
					slow[c]++
				}
			}
		}
		for c := 0; c < cells; c++ {
			// Only cells touched by trips this step get refreshed, keeping
			// the update set U informative.
			if total[c] > 0 {
				ev = append(ev, stream.SetFeature{V: c, Feat: cellFeat(c, congestion[c]*gain)})
			}
			// Monitored value: the cell's slow-trip intensity — the smooth
			// congestion-driven rate behind the realized slow counts.
			truth.set(step, c, 15*congestion[c]*congestion[c])
		}
		batches = append(batches, stream.Batch{Step: step, Events: ev})
	}

	d.Batches = batches
	// Anchors: all hot cells plus a spread of calm ones.
	anchors := proc.hotRegions()
	seen := make(map[int]bool)
	for _, a := range anchors {
		seen[a] = true
	}
	for c := 0; c < cells && len(anchors) < 14; c += cells / 10 {
		if !seen[c] {
			anchors = append(anchors, c)
		}
	}
	d.Queries = []*query.EventQuery{{
		Name:      "slow trips per grid cell",
		Anchors:   anchors,
		Delta:     1,
		Threshold: 4,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return truth.lookup(anchor, step)
		},
	}}
	return d
}

func gridDist(a, b, side int) float64 {
	ar, ac := a/side, a%side
	br, bc := b/side, b%side
	return math.Abs(float64(ar-br)) + math.Abs(float64(ac-bc))
}
