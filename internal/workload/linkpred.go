package workload

import (
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/stream"
)

// linkStreamParams configures the community-structured interaction streams
// shared by the two link-prediction datasets (Table II).
type linkStreamParams struct {
	name        string
	users       int
	newPerStep  int
	communities int
	hot         int
	edgesPer    int
	window      int
	drift       int
}

// StackOverflow generates the Q&A interaction stream: users answering and
// commenting on each other's posts, with community structure whose
// cross-community affinity drifts. The workload is continuous link
// prediction of next-step interactions (Table II, EvolveGCN row).
func StackOverflow(cfg GenConfig) *Dataset {
	// The original Stack Overflow graph has 2.6M users; the point of this
	// cell is the size asymmetry — full training pays O(n) per pass while
	// node partitions stay O(d^L) — so the synthetic version is the largest
	// of the five workloads.
	return linkStream(cfg, linkStreamParams{
		name:        "StackOverflow",
		users:       520,
		newPerStep:  10,
		communities: 8,
		hot:         3,
		edgesPer:    60,
		window:      6,
		drift:       12,
	})
}

// UCIMessages generates the student-message stream: a small fixed user base
// exchanging private messages with strong community recurrence. The workload
// is continuous link prediction (Table II, ROLAND row).
func UCIMessages(cfg GenConfig) *Dataset {
	return linkStream(cfg, linkStreamParams{
		name:        "UCIMessages",
		users:       190,
		newPerStep:  0,
		communities: 5,
		hot:         2,
		edgesPer:    26,
		window:      6,
		drift:       15,
	})
}

func linkStream(cfg GenConfig, p linkStreamParams) *Dataset {
	cfg = cfg.withDefaults(p.drift)
	rng := rand.New(rand.NewSource(cfg.Seed))
	const featDim = 6
	proc := newRegimeProcess(rng, p.communities, p.hot, cfg.DriftPeriod)

	d := &Dataset{Name: p.name, FeatDim: featDim, Steps: cfg.Steps, WindowSteps: p.window, LinkPred: true}

	userFeat := func(comm int, act float64) []float64 {
		f := make([]float64, featDim)
		f[0] = act
		// Soft community one-hot folded into three dims.
		f[1+comm%3] = 1
		f[4] = float64(comm) / float64(p.communities)
		f[5] = 1
		return f
	}

	users := cfg.scaled(p.users)
	comm := make([]int, 0, users)
	byComm := make([][]int, p.communities)
	var ev []stream.Event
	addUser := func(events *[]stream.Event) int {
		id := len(comm)
		c := rng.Intn(p.communities)
		comm = append(comm, c)
		byComm[c] = append(byComm[c], id)
		*events = append(*events, stream.AddNode{Type: 0, Feat: userFeat(c, 0)})
		return id
	}
	for i := 0; i < users; i++ {
		addUser(&ev)
	}
	batches := []stream.Batch{{Step: 0, Events: ev}}

	perStep := cfg.scaled(p.edgesPer)
	affinity := 0.85 // probability a new interaction stays in-community
	for step := 1; step < cfg.Steps; step++ {
		act := proc.advance()
		ev = nil
		for i := 0; i < p.newPerStep; i++ {
			addUser(&ev)
		}
		// Drift the affinity with the regime: some epochs are insular,
		// others cross-pollinate.
		if cfg.DriftPeriod > 0 && step%cfg.DriftPeriod == 0 {
			affinity = 0.55 + 0.4*rng.Float64()
		}
		for i := 0; i < perStep; i++ {
			srcComm := weightedPick(rng, act)
			if len(byComm[srcComm]) == 0 {
				continue
			}
			src := byComm[srcComm][rng.Intn(len(byComm[srcComm]))]
			dstComm := srcComm
			if rng.Float64() > affinity {
				dstComm = rng.Intn(p.communities)
			}
			if len(byComm[dstComm]) == 0 {
				continue
			}
			dst := byComm[dstComm][rng.Intn(len(byComm[dstComm]))]
			if dst == src {
				continue
			}
			et := graph.EdgeType(0) // answer
			if rng.Float64() < 0.4 {
				et = 1 // comment
			}
			ev = append(ev, stream.AddEdge{U: src, V: dst, Type: et, Time: int64(step), Label: stream.NoLabel()})
		}
		// Activity features keep anchors informative.
		for c := 0; c < p.communities; c++ {
			for _, u := range byComm[c] {
				if u%7 == step%7 { // refresh a rotating subset each step
					ev = append(ev, stream.SetFeature{V: u, Feat: userFeat(c, act[c])})
				}
			}
		}
		batches = append(batches, stream.Batch{Step: step, Events: ev})
	}
	d.Batches = batches
	return d
}
