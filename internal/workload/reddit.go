package workload

import (
	"math/rand"

	"streamgnn/internal/graph"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
)

// Reddit generates the subreddit hyperlink stream: a fixed set of subreddit
// nodes, with posts arriving as directed edges annotated with a sentiment
// label (the self-supervised edge label). The supervised workload monitors
// the negative-post ratio of anchor subreddits in the next step.
//
// Drift: each community's negativity level is tied to the drifting regime
// process; hot communities produce most posts.
func Reddit(cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults(14)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Enough subreddits that an L-hop training partition is a small
	// fraction of the graph — the regime the paper's node-level
	// partitioning targets.
	const (
		subs    = 400
		hot     = 12
		featDim = 6
	)
	proc := newRegimeProcess(rng, subs, hot, cfg.DriftPeriod)
	gains := newGainSchedule(rng, cfg.DriftPeriod)

	d := &Dataset{Name: "Reddit", FeatDim: featDim, Steps: cfg.Steps, WindowSteps: 8}
	truth := newTruthTable()

	subFeat := func(s int, act, negRate float64) []float64 {
		return []float64{act, negRate, float64(s%4) / 4, float64(s%7) / 7, rngStable(s), 1}
	}

	var ev []stream.Event
	for s := 0; s < subs; s++ {
		ev = append(ev, stream.AddNode{Type: 0, Feat: subFeat(s, 0, 0.5)})
	}
	batches := []stream.Batch{{Step: 0, Events: ev}}

	perStep := cfg.scaled(60)
	negRate := make([]float64, subs)
	for step := 1; step < cfg.Steps; step++ {
		gain := gains.at(step)
		act := proc.advance()
		// Negativity follows activity in the current regime: hot regions
		// are controversial; means re-draw with the regime process.
		for s := range negRate {
			negRate[s] = clamp01(0.15 + 0.7*act[s] + 0.05*rng.NormFloat64())
		}
		ev = nil
		negCount := make([]float64, subs)
		postCount := make([]float64, subs)
		for i := 0; i < perStep; i++ {
			src := weightedPick(rng, act)
			dst := rng.Intn(subs)
			for dst == src {
				dst = rng.Intn(subs)
			}
			sentiment := 1.0 // positive
			if rng.Float64() < negRate[src] {
				sentiment = 0
				negCount[src]++
			}
			postCount[src]++
			ev = append(ev, stream.AddEdge{U: src, V: dst, Type: 0, Time: int64(step), Label: sentiment})
		}
		for s := 0; s < subs; s++ {
			// Only subs with fresh posts get feature refreshes — this keeps
			// the update set U meaningful (Algorithm 1 biases sampling
			// toward nodes with new data). Truths exist for every step.
			if postCount[s] > 0 {
				ratio := negCount[s] / postCount[s]
				// Features observe activity and negativity through the
				// drifting gain; the truth is the underlying negativity rate
				// (the smooth quantity the realized ratio is a draw from).
				ev = append(ev, stream.SetFeature{V: s, Feat: subFeat(s, act[s]*gain, ratio*gain)})
			}
			truth.set(step, s, negRate[s])
		}
		batches = append(batches, stream.Batch{Step: step, Events: ev})
	}

	d.Batches = batches
	// Anchor the query at every hot subreddit plus a spread of cold ones,
	// so both event and non-event outcomes occur.
	anchors := proc.hotRegions()
	seen := make(map[int]bool)
	for _, a := range anchors {
		seen[a] = true
	}
	for s := 0; s < subs && len(anchors) < 48; s += subs / 40 {
		if !seen[s] {
			anchors = append(anchors, s)
		}
	}
	d.Queries = []*query.EventQuery{{
		Name:      "negative-post ratio per subreddit",
		Anchors:   anchors,
		Delta:     1,
		Threshold: 0.5,
		Labeler: func(_ *graph.Dynamic, anchor, step int) (float64, bool) {
			return truth.lookup(anchor, step)
		},
	}}
	return d
}

// rngStable returns a deterministic pseudo-random value in [0,1) keyed by i,
// used for static node identity features.
func rngStable(i int) float64 {
	x := uint64(i)*2654435761 + 12345
	x ^= x >> 16
	return float64(x%1000) / 1000
}
