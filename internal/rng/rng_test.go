package rng

import (
	"math/rand"
	"testing"
)

func TestDeterministicStream(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(7)
	r := rand.New(s)
	for i := 0; i < 100; i++ {
		r.Float64()
	}
	saved := s.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Float64()
	}
	// Restore mid-stream and replay: the continuation must be identical.
	s2 := New(0)
	s2.SetState(saved)
	r2 := rand.New(s2)
	for i := range want {
		if got := r2.Float64(); got != want[i] {
			t.Fatalf("draw %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestSeedResets(t *testing.T) {
	s := New(1)
	first := s.Uint64()
	s.Uint64()
	s.Seed(1)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed did not reset the stream: %d vs %d", got, first)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(99)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}
