// Package rng provides SplitMix64, a tiny deterministic rand.Source64 whose
// entire state is one exportable word. The engine uses it everywhere a random
// stream must survive a checkpoint/resume cycle: dumping the state after step
// t and restoring it before step t+1 makes the resumed run consume exactly
// the random stream the uninterrupted run would have, which is what makes
// bit-identical resume (and therefore resumable Stats accounting) possible.
//
// Statistically SplitMix64 passes BigCrush and is the generator Java uses to
// seed its splittable streams; it is more than adequate for the engine's
// sampling decisions. Seeding is O(1) (the lagged-Fibonacci source behind
// rand.NewSource pays a ~600-word warm-up per seed, which matters on the
// training hot path that seeds one private source per unit).
package rng

// SplitMix64 implements rand.Source64 with a single word of state.
type SplitMix64 struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed int64) *SplitMix64 {
	return &SplitMix64{state: uint64(seed)}
}

// Seed implements rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64 (Vigna's splitmix64).
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Int63 implements rand.Source.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// State returns the current state word (for checkpointing).
func (s *SplitMix64) State() uint64 { return s.state }

// SetState restores a state word captured with State.
func (s *SplitMix64) SetState(v uint64) { s.state = v }
