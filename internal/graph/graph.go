// Package graph implements the dynamic heterogeneous graph model of the
// paper's Section II: typed nodes carrying attribute vectors, typed
// timestamped edges, snapshot views with cached (normalized) adjacency
// matrices, L-hop induced subgraphs for node-level training partitions, and
// tracking of the update set U used by Algorithm 1's GetSampleNode.
package graph

import (
	"fmt"
	"math"
	"sort"

	"streamgnn/internal/tensor"
)

// NodeType identifies the entity type of a node (patient, transaction, ...).
type NodeType uint8

// EdgeType identifies the relation type of an edge (lab event, flow, ...).
type EdgeType uint8

// Edge is one stored directed edge.
type Edge struct {
	To   int
	Type EdgeType
	Time int64
	// Label is an optional edge label used as a self-supervision target
	// (e.g. post sentiment in the Reddit workload). NaN means unlabeled.
	Label float64
}

// HasLabel reports whether the edge carries a self-supervision label.
func (e Edge) HasLabel() bool { return !math.IsNaN(e.Label) }

// Dynamic is a mutable graph snapshot. It is the state of the graph stream
// "as of now": the stream layer applies events to it between training steps.
//
// Dynamic is not safe for concurrent mutation; the engine serializes stream
// application and training.
type Dynamic struct {
	featDim int
	ntype   []NodeType
	feat    []float64 // n × featDim, row-major
	label   []float64 // node labels; NaN = unlabeled

	out [][]Edge
	in  [][]Edge

	updated map[int]struct{}
	version int64

	// actDirty accumulates nodes whose incident edges or attributes changed
	// since the last TakeActivityDirty. Unlike updated (the algorithmic set
	// U, which window expiry deliberately does not feed), actDirty also
	// records expiry-driven degree changes, so activity refreshes can be
	// incremental.
	actDirty map[int]struct{}

	// fwdDirty accumulates forward-inference dirty nodes between TakeDirty
	// calls (see dirty.go); nil until EnableDirtyTracking. With a sharding
	// attached it stays nil and sh.dirty takes over, one tracker per shard.
	fwdDirty map[int]struct{}

	// sh is the shard-aware ingestion state (see sharding.go); nil until
	// AttachSharding.
	sh *shardState

	cache *PartitionCache

	cacheVersion int64
	normAdj      *tensor.CSR
	rwFwd        *tensor.CSR
	rwRev        *tensor.CSR

	// edgeVersion increases only on topology mutations (node adds, edge
	// inserts, window expiry) — not on feature or label writes. The cached
	// random-walk adjacency below keys on it, so feature-churn-heavy streams
	// never rebuild it.
	edgeVersion int64
	walkVersion int64
	walkAdj     *tensor.CSR

	typedVersion int64
	typedNTypes  int
	typedAdj     []*tensor.CSR
}

// NewDynamic returns an empty dynamic graph whose nodes carry featDim
// attributes.
func NewDynamic(featDim int) *Dynamic {
	if featDim <= 0 {
		panic(fmt.Sprintf("graph: feature dimension must be positive, got %d", featDim))
	}
	return &Dynamic{
		featDim:  featDim,
		updated:  make(map[int]struct{}),
		actDirty: make(map[int]struct{}),
	}
}

// N returns the number of nodes.
func (g *Dynamic) N() int { return len(g.ntype) }

// FeatDim returns the per-node attribute dimension.
func (g *Dynamic) FeatDim() int { return g.featDim }

// Version increases on every mutation; snapshot caches key on it.
func (g *Dynamic) Version() int64 { return g.version }

func (g *Dynamic) touch(v int) {
	g.updated[v] = struct{}{}
	g.version++
	g.actDirty[v] = struct{}{}
	if g.cache != nil {
		g.cache.invalidate(v)
	}
}

// markFwdDirty records v as forward-inference dirty (see dirty.go). Only
// mutations that change what Forward computes — features, incident edges,
// degrees — call it; label-only writes (delayed supervision) do not, so a
// step whose sole activity is truth reveal stays a quiet step. With a
// sharding attached the mark is routed to the tracker of v's owning shard.
func (g *Dynamic) markFwdDirty(v int) {
	if g.sh != nil {
		g.sh.dirty[g.sh.s.Of(v)][v] = struct{}{}
		return
	}
	if g.fwdDirty != nil {
		g.fwdDirty[v] = struct{}{}
	}
}

// AddNode appends a node of type t with the given attribute vector (padded
// or truncated to FeatDim) and returns its id. New nodes start unlabeled.
func (g *Dynamic) AddNode(t NodeType, feat []float64) int {
	id := len(g.ntype)
	g.edgeVersion++
	g.ntype = append(g.ntype, t)
	row := make([]float64, g.featDim)
	copy(row, feat)
	g.feat = append(g.feat, row...)
	g.label = append(g.label, math.NaN())
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if g.sh != nil {
		g.sh.occupancy[g.sh.s.Of(id)]++
		g.sh.crossDeg = append(g.sh.crossDeg, 0)
	}
	g.touch(id)
	g.markFwdDirty(id)
	return id
}

// Type returns node v's type.
func (g *Dynamic) Type(v int) NodeType { return g.ntype[v] }

// AddEdge inserts a directed edge u→v of type et at time ts with no label.
func (g *Dynamic) AddEdge(u, v int, et EdgeType, ts int64) {
	g.AddLabeledEdge(u, v, et, ts, math.NaN())
}

// AddLabeledEdge inserts a directed edge carrying a self-supervision label.
func (g *Dynamic) AddLabeledEdge(u, v int, et EdgeType, ts int64, label float64) {
	g.checkNode(u)
	g.checkNode(v)
	g.edgeVersion++
	g.out[u] = append(g.out[u], Edge{To: v, Type: et, Time: ts, Label: label})
	g.in[v] = append(g.in[v], Edge{To: u, Type: et, Time: ts, Label: label})
	if g.sh != nil {
		g.sh.noteEdge(u, v, +1)
	}
	g.touch(u)
	g.touch(v)
	g.markFwdDirty(u)
	g.markFwdDirty(v)
}

// AddUndirectedEdge inserts edges in both directions.
func (g *Dynamic) AddUndirectedEdge(u, v int, et EdgeType, ts int64) {
	g.AddEdge(u, v, et, ts)
	g.AddEdge(v, u, et, ts)
}

func (g *Dynamic) checkNode(v int) {
	if v < 0 || v >= len(g.ntype) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.ntype)))
	}
}

// SetFeature replaces node v's attribute vector.
func (g *Dynamic) SetFeature(v int, feat []float64) {
	g.checkNode(v)
	row := g.feat[v*g.featDim : (v+1)*g.featDim]
	for i := range row {
		if i < len(feat) {
			row[i] = feat[i]
		} else {
			row[i] = 0
		}
	}
	g.touch(v)
	g.markFwdDirty(v)
}

// Feature returns a view of node v's attribute vector.
func (g *Dynamic) Feature(v int) []float64 {
	g.checkNode(v)
	return g.feat[v*g.featDim : (v+1)*g.featDim]
}

// SetLabel attaches a self-supervision label to node v.
func (g *Dynamic) SetLabel(v int, y float64) {
	g.checkNode(v)
	g.label[v] = y
	g.touch(v)
}

// Label returns node v's label and whether one is set.
func (g *Dynamic) Label(v int) (float64, bool) {
	g.checkNode(v)
	y := g.label[v]
	return y, !math.IsNaN(y)
}

// OutEdges returns a view of v's outgoing edges.
func (g *Dynamic) OutEdges(v int) []Edge { g.checkNode(v); return g.out[v] }

// InEdges returns a view of v's incoming edges (Edge.To is the source).
func (g *Dynamic) InEdges(v int) []Edge { g.checkNode(v); return g.in[v] }

// Degree returns the total (in+out) degree of v.
func (g *Dynamic) Degree(v int) int { g.checkNode(v); return len(g.out[v]) + len(g.in[v]) }

// NumEdges returns the number of directed edges in the graph.
func (g *Dynamic) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// ExpireEdgesBefore drops every edge with Time < ts, implementing the
// sliding-window view of the stream. Nodes are kept. Expiry does not feed
// the update set U (Algorithm 1 reacts to new data, not to data aging out),
// but it does mark affected nodes activity-dirty and forward-dirty and
// invalidates their cached partitions.
func (g *Dynamic) ExpireEdgesBefore(ts int64) {
	changed := false
	filter := func(es []Edge) ([]Edge, bool) {
		k := 0
		for _, e := range es {
			if e.Time >= ts {
				es[k] = e
				k++
			}
		}
		return es[:k], k != len(es)
	}
	// Out-edge expiry additionally maintains the shard boundary index; each
	// directed edge is stored on both endpoints, so decrementing on the out
	// side alone counts it exactly once.
	filterOut := func(v int) ([]Edge, bool) {
		es := g.out[v]
		k := 0
		for _, e := range es {
			if e.Time >= ts {
				es[k] = e
				k++
			} else if g.sh != nil {
				g.sh.noteEdge(v, e.To, -1)
			}
		}
		return es[:k], k != len(es)
	}
	for v := range g.out {
		var co, ci bool
		g.out[v], co = filterOut(v)
		g.in[v], ci = filter(g.in[v])
		if co || ci {
			changed = true
			g.actDirty[v] = struct{}{}
			g.markFwdDirty(v)
			if g.cache != nil {
				g.cache.invalidate(v)
			}
		}
	}
	if changed {
		g.version++
		g.edgeVersion++
	}
}

// EdgeVersion increases on every topology mutation (node adds, edge inserts,
// window expiry); attribute and label writes leave it unchanged.
func (g *Dynamic) EdgeVersion() int64 { return g.edgeVersion }

// Updated returns the set of nodes touched (added, re-attributed, relabeled,
// or incident to a new edge) since the last ResetUpdated, in ascending order.
// This is the set U in Algorithm 1.
func (g *Dynamic) Updated() []int {
	ids := make([]int, 0, len(g.updated))
	for v := range g.updated {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	return ids
}

// ResetUpdated clears the update set (called once per training step).
func (g *Dynamic) ResetUpdated() {
	g.updated = make(map[int]struct{})
}

// TakeActivityDirty drains and returns, in ascending order, the nodes whose
// incident edges or attributes changed since the previous call (including
// window expiry). AdaptiveLearner.refreshActivity uses it to update sampling
// eligibility incrementally instead of rescanning all n nodes per step.
func (g *Dynamic) TakeActivityDirty() []int {
	if len(g.actDirty) == 0 {
		return nil
	}
	ids := make([]int, 0, len(g.actDirty))
	for v := range g.actDirty {
		ids = append(ids, v)
	}
	g.actDirty = make(map[int]struct{})
	sort.Ints(ids)
	return ids
}

// Features returns the n×FeatDim attribute matrix (copy).
func (g *Dynamic) Features() *tensor.Matrix {
	m := tensor.New(g.N(), g.featDim)
	copy(m.Data, g.feat)
	return m
}

// normDeg returns the GCN normalization degree of v: in+out degree plus the
// self loop. This is THE degree expression of the cached normalized
// adjacency; per-row delta recomputation must produce bit-identical entry
// values, so both paths call this one function.
func (g *Dynamic) normDeg(v int) float64 {
	return float64(len(g.out[v])+len(g.in[v])) + 1 // +1 self loop
}

// NormRowAppend appends row v of the symmetric GCN-normalized adjacency
// D^{-1/2}(A+Aᵀ+I)D^{-1/2} to dst, in the cache's entry order (self loop,
// out-edges, in-edges) and with the cache's exact floating-point expressions.
// The delta-forward path uses it to aggregate one node's neighborhood without
// rebuilding the full cached CSR.
func (g *Dynamic) NormRowAppend(v int, dst []tensor.CSREntry) []tensor.CSREntry {
	dv := math.Sqrt(g.normDeg(v))
	dst = append(dst, tensor.CSREntry{Col: v, Val: 1 / g.normDeg(v)})
	for _, e := range g.out[v] {
		dst = append(dst, tensor.CSREntry{Col: e.To, Val: 1 / (dv * math.Sqrt(g.normDeg(e.To)))})
	}
	for _, e := range g.in[v] {
		dst = append(dst, tensor.CSREntry{Col: e.To, Val: 1 / (dv * math.Sqrt(g.normDeg(e.To)))})
	}
	return dst
}

func (g *Dynamic) refreshCaches() {
	if g.cacheVersion == g.version && g.normAdj != nil {
		return
	}
	n := g.N()
	// Symmetric GCN normalization of A + Aᵀ + I.
	entries := make([][]tensor.CSREntry, n)
	fwd := make([][]tensor.CSREntry, n)
	rev := make([][]tensor.CSREntry, n)
	for v := 0; v < n; v++ {
		entries[v] = g.NormRowAppend(v, nil)
		for _, e := range g.out[v] {
			fwd[v] = append(fwd[v], tensor.CSREntry{Col: e.To, Val: 1 / float64(max(1, len(g.out[v])))})
		}
		for _, e := range g.in[v] {
			rev[v] = append(rev[v], tensor.CSREntry{Col: e.To, Val: 1 / float64(max(1, len(g.in[v])))})
		}
	}
	g.normAdj = tensor.NewCSR(n, n, entries)
	g.rwFwd = tensor.NewCSR(n, n, fwd)
	g.rwRev = tensor.NewCSR(n, n, rev)
	g.cacheVersion = g.version
}

// WalkAdj returns the unweighted undirected walk adjacency used by the
// graph-KDE density: row v lists v's out-edge targets then in-edge sources,
// each with unit value, so RowNNZ(v) == Degree(v) and the entry order matches
// iterating OutEdges then InEdges. The CSR is cached per EdgeVersion and
// rebuilt into a fresh allocation, so a pointer captured by a serving
// snapshot stays immutable while the graph keeps mutating.
func (g *Dynamic) WalkAdj() *tensor.CSR {
	if g.walkAdj != nil && g.walkVersion == g.edgeVersion && g.walkAdj.NRows == g.N() {
		return g.walkAdj
	}
	n := g.N()
	entries := make([][]tensor.CSREntry, n)
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			continue
		}
		row := make([]tensor.CSREntry, 0, g.Degree(v))
		for _, e := range g.out[v] {
			row = append(row, tensor.CSREntry{Col: e.To, Val: 1})
		}
		for _, e := range g.in[v] {
			row = append(row, tensor.CSREntry{Col: e.To, Val: 1})
		}
		entries[v] = row
	}
	g.walkAdj = tensor.NewCSR(n, n, entries)
	g.walkVersion = g.edgeVersion
	return g.walkAdj
}

// NormAdj returns the symmetric GCN-normalized adjacency
// D^{-1/2}(A+Aᵀ+I)D^{-1/2} of the current snapshot (cached per version).
func (g *Dynamic) NormAdj() *tensor.CSR {
	g.refreshCaches()
	return g.normAdj
}

// RWAdj returns the row-normalized random-walk adjacency. reverse selects
// the in-edge direction (used by DCRNN's bidirectional diffusion).
func (g *Dynamic) RWAdj(reverse bool) *tensor.CSR {
	g.refreshCaches()
	if reverse {
		return g.rwRev
	}
	return g.rwFwd
}

// KHopBall returns the nodes within L hops of v (including v), treating
// edges as undirected, in ascending id order. This is the node set of v's
// training partition G_v from Section III-C. Visited marks live in a pooled
// scratch slice instead of a per-call map.
func (g *Dynamic) KHopBall(v, L int) []int {
	g.checkNode(v)
	seen := getScratch(len(g.ntype))
	seen[v] = 1
	ids := []int{v}
	frontier := ids
	for hop := 0; hop < L && len(frontier) > 0; hop++ {
		var next []int
		for _, u := range frontier {
			for _, e := range g.out[u] {
				if seen[e.To] == 0 {
					seen[e.To] = 1
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if seen[e.To] == 0 {
					seen[e.To] = 1
					next = append(next, e.To)
				}
			}
		}
		ids = append(ids, next...)
		frontier = next
	}
	for _, u := range ids {
		seen[u] = 0
	}
	putScratch(seen)
	sort.Ints(ids)
	return ids
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
