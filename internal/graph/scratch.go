package graph

import "sync"

// scratchPool recycles the per-call []int32 working buffers used as
// global-id-indexed marker tables: local-index maps in Subgraph.build and
// visited marks in KHopBall. Replacing the former map[int]int{} per call
// removes the dominant allocation of partition extraction.
//
// Invariant: every buffer in the pool is fully zeroed. getScratch returns
// buffers without re-zeroing; callers must zero exactly the entries they set
// before calling putScratch. The pool is safe for concurrent use, so
// partition extraction can run on worker goroutines.
var scratchPool sync.Pool

// getScratch returns an all-zero length-n int32 slice.
func getScratch(n int) []int32 {
	if p, ok := scratchPool.Get().(*[]int32); ok {
		if s := *p; cap(s) >= n {
			return s[:n]
		}
		// Too small for this graph; drop it and grow.
	}
	return make([]int32, n)
}

// putScratch returns s to the pool. s must be fully zeroed again.
func putScratch(s []int32) {
	scratchPool.Put(&s)
}
