package graph

import (
	"sort"

	"streamgnn/internal/shard"
)

// Shard-aware ingestion. With a sharding attached, the graph classifies every
// mutation by the shard owning the touched node and keeps one forward-dirty
// tracker per shard, so the engine can route each shard's dirty frontier to
// its own worker goroutine without a global drain-and-split pass. Edge
// insertions are additionally classified shard-local vs cross-shard, and a
// per-node boundary index (the count of incident cross-shard edges) is
// maintained incrementally — including through window expiry — for telemetry
// and for reasoning about merge-phase work.
type shardState struct {
	s *shard.Sharding
	// dirty is the per-shard forward-dirty tracker: dirty[Of(v)] accumulates
	// v between TakeDirtySharded calls. Replaces the single fwdDirty map.
	dirty []map[int]struct{}
	// occupancy counts nodes owned by each shard.
	occupancy []int64
	// crossDeg[v] counts v's incident cross-shard edges (both directions):
	// the boundary-edge index. A node with crossDeg > 0 is a boundary node —
	// its L-hop ball spans shards, so its recomputation involves rows another
	// shard owns.
	crossDeg []int32
	// localEdges / crossEdges count live directed edges whose endpoints
	// share / do not share a shard.
	localEdges, crossEdges int64
}

// AttachSharding partitions the node-id space with s and switches dirty
// tracking to per-shard trackers (implicitly enabling it). Existing nodes,
// edges and accumulated dirty marks are re-indexed, so attaching to a
// populated graph is allowed; attaching twice or concurrently with use is
// not.
func (g *Dynamic) AttachSharding(s *shard.Sharding) {
	sh := &shardState{
		s:         s,
		dirty:     make([]map[int]struct{}, s.P),
		occupancy: make([]int64, s.P),
		crossDeg:  make([]int32, g.N()),
	}
	for i := range sh.dirty {
		sh.dirty[i] = make(map[int]struct{})
	}
	for v := 0; v < g.N(); v++ {
		sh.occupancy[s.Of(v)]++
		for _, e := range g.out[v] {
			sh.noteEdge(v, e.To, +1)
		}
	}
	// Carry over dirty marks accumulated under the unsharded tracker.
	for v := range g.fwdDirty {
		sh.dirty[s.Of(v)][v] = struct{}{}
	}
	g.fwdDirty = nil
	g.sh = sh
}

// Sharding returns the attached node-space partition, nil when unsharded.
func (g *Dynamic) Sharding() *shard.Sharding {
	if g.sh == nil {
		return nil
	}
	return g.sh.s
}

// noteEdge updates the cross/local counters and the boundary index for a
// directed edge u→v being inserted (delta +1) or expired (delta -1).
func (sh *shardState) noteEdge(u, v, delta int) {
	if sh.s.Of(u) != sh.s.Of(v) {
		sh.crossEdges += int64(delta)
		sh.crossDeg[u] += int32(delta)
		sh.crossDeg[v] += int32(delta)
		return
	}
	sh.localEdges += int64(delta)
}

// IsBoundary reports whether node v has at least one incident cross-shard
// edge (always false when unsharded).
func (g *Dynamic) IsBoundary(v int) bool {
	g.checkNode(v)
	return g.sh != nil && g.sh.crossDeg[v] > 0
}

// TakeDirtySharded drains the per-shard forward-dirty trackers and returns
// one ascending id slice per shard (empty shards yield nil slices). Nil when
// no sharding is attached — callers on the unsharded path use TakeDirty.
func (g *Dynamic) TakeDirtySharded() [][]int {
	if g.sh == nil {
		return nil
	}
	parts := make([][]int, len(g.sh.dirty))
	for si, m := range g.sh.dirty {
		if len(m) == 0 {
			continue
		}
		ids := make([]int, 0, len(m))
		for v := range m {
			ids = append(ids, v)
		}
		sort.Ints(ids)
		parts[si] = ids
		g.sh.dirty[si] = make(map[int]struct{})
	}
	return parts
}

// RegionParts partitions a compute region (ascending global ids, as produced
// by Ball) into one node list per shard, grouping by connected component:
// each component of the region's induced subgraph goes, whole, to the shard
// owning its smallest node id. Components are edge-isolated — no message can
// cross them at any layer and subgraph normalization uses global degrees —
// so forwarding a shard's part is bit-identical, row for row, to forwarding
// the whole region, whatever P is. That makes the assignment safe even for
// models whose effective receptive field exceeds Layers() (nested GRU gates
// convolve gated state): the per-shard computation never sees a differently
// truncated neighborhood, only a differently grouped one.
//
// Each part comes back ascending; shards with no components yield nil.
// Panics when no sharding is attached.
func (g *Dynamic) RegionParts(region []int) [][]int {
	if g.sh == nil {
		panic("graph: RegionParts without an attached sharding")
	}
	parts := make([][]int, g.sh.s.P)
	if len(region) == 0 {
		return parts
	}
	// mark: 0 = outside region, 1 = in region, 2 = assigned to a component.
	mark := getScratch(g.N())
	for _, v := range region {
		g.checkNode(v)
		mark[v] = 1
	}
	var frontier []int
	for _, v := range region {
		if mark[v] != 1 {
			continue
		}
		// v is the smallest unassigned node, hence the smallest of its
		// component (region is ascending): it names the owner.
		owner := g.sh.s.Of(v)
		mark[v] = 2
		comp := append([]int(nil), v)
		frontier = append(frontier[:0], v)
		for len(frontier) > 0 {
			var next []int
			for _, u := range frontier {
				for _, e := range g.out[u] {
					if mark[e.To] == 1 {
						mark[e.To] = 2
						next = append(next, e.To)
					}
				}
				for _, e := range g.in[u] {
					if mark[e.To] == 1 {
						mark[e.To] = 2
						next = append(next, e.To)
					}
				}
			}
			comp = append(comp, next...)
			frontier = next
		}
		parts[owner] = append(parts[owner], comp...)
	}
	for _, v := range region {
		mark[v] = 0
	}
	putScratch(mark)
	for si := range parts {
		sort.Ints(parts[si])
	}
	return parts
}

// ShardStats is a point-in-time summary of the shard layout's health.
type ShardStats struct {
	// Shards is the partition width P; 0 means no sharding is attached and
	// every other field is zero.
	Shards int
	Layout string
	// Occupancy[s] counts the nodes owned by shard s.
	Occupancy []int64
	// LocalEdges / CrossEdges count live directed edges by whether both
	// endpoints share a shard. BoundaryNodes counts nodes with at least one
	// incident cross-shard edge.
	LocalEdges    int64
	CrossEdges    int64
	BoundaryNodes int
}

// CrossFraction returns CrossEdges / (LocalEdges + CrossEdges), 0 when the
// graph has no edges.
func (st ShardStats) CrossFraction() float64 {
	total := st.LocalEdges + st.CrossEdges
	if total == 0 {
		return 0
	}
	return float64(st.CrossEdges) / float64(total)
}

// ShardStats summarizes the attached sharding (zero value when unsharded).
func (g *Dynamic) ShardStats() ShardStats {
	sh := g.sh
	if sh == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Shards:     sh.s.P,
		Layout:     sh.s.Layout.String(),
		Occupancy:  append([]int64(nil), sh.occupancy...),
		LocalEdges: sh.localEdges,
		CrossEdges: sh.crossEdges,
	}
	for _, d := range sh.crossDeg {
		if d > 0 {
			st.BoundaryNodes++
		}
	}
	return st
}
