package graph

import (
	"math"

	"streamgnn/internal/tensor"
)

// Typed adjacency support for relation-aware (RGCN-style) convolutions over
// the heterogeneous graph streams of the paper's Example 1: one normalized
// adjacency per edge type, so a layer can learn a separate transform per
// relation (lab event vs. prescription vs. diagnosis, ...).

// NumEdgeTypes returns 1 + the largest edge type present (0 for an edgeless
// graph).
func (g *Dynamic) NumEdgeTypes() int {
	maxType := -1
	for v := range g.out {
		for _, e := range g.out[v] {
			if int(e.Type) > maxType {
				maxType = int(e.Type)
			}
		}
	}
	return maxType + 1
}

// TypedAdj returns one symmetric-normalized adjacency per edge type
// (ntypes matrices; edges with types >= ntypes are ignored). Unlike
// NormAdj, no self loop is included — relation-aware layers add an explicit
// self-transform instead. Normalization uses each node's total degree
// across all types, so the per-type matrices sum to (roughly) the untyped
// normalized adjacency.
func (g *Dynamic) TypedAdj(ntypes int) []*tensor.CSR {
	if g.typedVersion == g.version && g.typedNTypes == ntypes && g.typedAdj != nil {
		return g.typedAdj
	}
	n := g.N()
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.Degree(v)) + 1
	}
	per := make([][][]tensor.CSREntry, ntypes)
	for t := range per {
		per[t] = make([][]tensor.CSREntry, n)
	}
	add := func(v int, e Edge) {
		if int(e.Type) >= ntypes {
			return
		}
		per[e.Type][v] = append(per[e.Type][v],
			tensor.CSREntry{Col: e.To, Val: 1 / (math.Sqrt(deg[v]) * math.Sqrt(deg[e.To]))})
	}
	for v := 0; v < n; v++ {
		for _, e := range g.out[v] {
			add(v, e)
		}
		for _, e := range g.in[v] {
			add(v, e)
		}
	}
	out := make([]*tensor.CSR, ntypes)
	for t := range out {
		out[t] = tensor.NewCSR(n, n, per[t])
	}
	g.typedAdj = out
	g.typedVersion = g.version
	g.typedNTypes = ntypes
	return out
}

// TypedAdj returns the subgraph's per-type normalized adjacencies, using
// global degrees like the untyped case so interior propagation matches the
// full graph exactly.
func (s *Subgraph) TypedAdj(ntypes int) []*tensor.CSR {
	n := len(s.Nodes)
	deg := make([]float64, n)
	for li, v := range s.Nodes {
		deg[li] = float64(s.g.Degree(v)) + 1
	}
	per := make([][][]tensor.CSREntry, ntypes)
	for t := range per {
		per[t] = make([][]tensor.CSREntry, n)
	}
	for li, v := range s.Nodes {
		dv := math.Sqrt(deg[li])
		add := func(e Edge) {
			if int(e.Type) >= ntypes {
				return
			}
			lj := s.LocalID(e.To)
			if lj < 0 {
				return
			}
			per[e.Type][li] = append(per[e.Type][li],
				tensor.CSREntry{Col: lj, Val: 1 / (dv * math.Sqrt(deg[lj]))})
		}
		for _, e := range s.g.out[v] {
			add(e)
		}
		for _, e := range s.g.in[v] {
			add(e)
		}
	}
	out := make([]*tensor.CSR, ntypes)
	for t := range out {
		out[t] = tensor.NewCSR(n, n, per[t])
	}
	return out
}
