package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamgnn/internal/tensor"
)

func TestInducedBasics(t *testing.T) {
	g := chain(6)
	s := g.Induced([]int{4, 2, 3, 2}, 3) // dedup, sorted
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.GlobalID(0) != 2 || s.GlobalID(1) != 3 || s.GlobalID(2) != 4 {
		t.Fatalf("Nodes = %v", s.Nodes)
	}
	if s.LocalID(3) != 1 || s.LocalID(5) != -1 {
		t.Fatal("LocalID wrong")
	}
	if s.Center != 1 {
		t.Fatalf("Center = %d", s.Center)
	}
}

func TestPartitionIsKHopBall(t *testing.T) {
	g := chain(9)
	s := g.Partition(4, 2)
	want := g.KHopBall(4, 2)
	if s.N() != len(want) {
		t.Fatalf("partition size %d want %d", s.N(), len(want))
	}
	for i, v := range want {
		if s.Nodes[i] != v {
			t.Fatalf("partition nodes %v want %v", s.Nodes, want)
		}
	}
	if s.GlobalID(s.Center) != 4 {
		t.Fatal("center not preserved")
	}
}

func TestSubgraphAdjacencyOnlyInside(t *testing.T) {
	g := chain(6)
	s := g.Induced([]int{2, 3}, -1)
	d := s.NormAdj().Dense()
	// 2-3 are connected; entries off the 2x2 block don't exist by shape.
	if d.Rows != 2 || d.Cols != 2 {
		t.Fatalf("shape %dx%d", d.Rows, d.Cols)
	}
	if d.At(0, 1) <= 0 || d.At(1, 0) <= 0 {
		t.Fatal("internal edge missing from subgraph adjacency")
	}
}

func TestSubgraphFeaturesMatchGlobal(t *testing.T) {
	g := chain(5)
	s := g.Induced([]int{1, 3}, -1)
	f := s.Features()
	if f.At(0, 0) != 1 || f.At(1, 0) != 3 {
		t.Fatalf("features %v", f)
	}
}

func TestSubgraphLabeledNodes(t *testing.T) {
	g := chain(5)
	g.SetLabel(1, 0.25)
	g.SetLabel(4, 0.75)
	s := g.Induced([]int{0, 1, 2}, -1)
	idx, labels := s.LabeledNodes()
	if len(idx) != 1 || idx[0] != 1 || labels[0] != 0.25 {
		t.Fatalf("labeled nodes %v %v", idx, labels)
	}
}

func TestSubgraphLabeledEdges(t *testing.T) {
	g := NewDynamic(1)
	for i := 0; i < 4; i++ {
		g.AddNode(0, nil)
	}
	g.AddLabeledEdge(0, 1, 0, 0, 1)
	g.AddLabeledEdge(1, 3, 0, 0, 0) // 3 outside subgraph
	g.AddEdge(1, 2, 0, 0)           // unlabeled
	s := g.Induced([]int{0, 1, 2}, -1)
	src, dst, labels := s.LabeledEdges()
	if len(src) != 1 || src[0] != 0 || dst[0] != 1 || labels[0] != 1 {
		t.Fatalf("labeled edges %v %v %v", src, dst, labels)
	}
}

func TestInducedCenterMustBeMember(t *testing.T) {
	g := chain(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Induced([]int{0, 1}, 2)
}

func TestSubgraphOverlaps(t *testing.T) {
	g := chain(10)
	a := g.Induced([]int{1, 3, 5}, -1)
	b := g.Induced([]int{0, 2, 4}, -1)
	c := g.Induced([]int{5, 6}, -1)
	empty := g.Induced(nil, -1)
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Fatal("disjoint interleaved sets reported as overlapping")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("sets sharing node 5 reported as disjoint")
	}
	if a.Overlaps(empty) || empty.Overlaps(a) || empty.Overlaps(empty) {
		t.Fatal("empty subgraph cannot overlap anything")
	}
	if !a.Overlaps(a) {
		t.Fatal("non-empty subgraph must overlap itself")
	}
}

// Property: Overlaps agrees with a brute-force set intersection.
func TestSubgraphOverlapsMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := chain(20)
		pick := func() *Subgraph {
			var nodes []int
			for v := 0; v < 20; v++ {
				if rng.Intn(3) == 0 {
					nodes = append(nodes, v)
				}
			}
			return g.Induced(nodes, -1)
		}
		a, b := pick(), pick()
		want := false
		in := make(map[int]bool, a.N())
		for _, v := range a.Nodes {
			in[v] = true
		}
		for _, v := range b.Nodes {
			if in[v] {
				want = true
			}
		}
		return a.Overlaps(b) == want && b.Overlaps(a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: subgraph normalization uses global degrees, so on the full node
// set the subgraph adjacency equals the graph's own.
func TestSubgraphOfWholeGraphMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := NewDynamic(1)
		all := make([]int, n)
		for i := 0; i < n; i++ {
			all[i] = g.AddNode(0, nil)
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 0, 0)
		}
		s := g.Induced(all, -1)
		return s.NormAdj().Dense().AllClose(g.NormAdj().Dense(), 1e-12) &&
			s.RWAdj(false).Dense().AllClose(g.RWAdj(false).Dense(), 1e-12) &&
			s.RWAdj(true).Dense().AllClose(g.RWAdj(true).Dense(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the center of an L-hop partition receives exactly the same
// L-step propagated signal on the subgraph as on the full graph — the
// correctness foundation of node-level training partitions (Section III-C).
func TestPartitionCenterPropagationExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(15)
		g := NewDynamic(1)
		for i := 0; i < n; i++ {
			g.AddNode(0, []float64{rng.NormFloat64()})
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 0, 0)
		}
		v := rng.Intn(n)
		const L = 2
		sub := g.Partition(v, L)
		// Propagate features L times with the symmetric normalized
		// adjacency on both representations.
		full := g.Features()
		for i := 0; i < L; i++ {
			full = tensor.SpMM(g.NormAdj(), full)
		}
		local := sub.Features()
		for i := 0; i < L; i++ {
			local = tensor.SpMM(sub.NormAdj(), local)
		}
		want := full.At(v, 0)
		got := local.At(sub.Center, 0)
		return math.Abs(want-got) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
