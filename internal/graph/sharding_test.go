package graph

import (
	"testing"

	"streamgnn/internal/shard"
)

func attach(t *testing.T, g *Dynamic, p int, l shard.Layout) *shard.Sharding {
	t.Helper()
	s, err := shard.New(p, l)
	if err != nil {
		t.Fatal(err)
	}
	g.AttachSharding(s)
	return s
}

// Dirty marks route to the owning shard's tracker, TakeDirtySharded drains
// them ascending and disjoint, and the merged TakeDirty view matches what an
// unsharded tracker would have produced.
func TestShardedDirtyRouting(t *testing.T) {
	g := NewDynamic(2)
	s := attach(t, g, 4, shard.Hash)
	for i := 0; i < 40; i++ {
		g.AddNode(0, []float64{1, 0})
	}
	if !g.DirtyTrackingEnabled() {
		t.Fatal("AttachSharding did not enable dirty tracking")
	}
	if g.DirtyCount() != 40 {
		t.Fatalf("DirtyCount = %d, want 40 (AddNode marks dirty)", g.DirtyCount())
	}
	parts := g.TakeDirtySharded()
	if len(parts) != 4 {
		t.Fatalf("TakeDirtySharded returned %d parts, want 4", len(parts))
	}
	total := 0
	for si, ids := range parts {
		for k, v := range ids {
			if s.Of(v) != si {
				t.Fatalf("node %d drained from shard %d, owner is %d", v, si, s.Of(v))
			}
			if k > 0 && ids[k-1] >= v {
				t.Fatalf("shard %d ids not strictly ascending", si)
			}
		}
		total += len(ids)
	}
	if total != 40 {
		t.Fatalf("drained %d ids, want 40", total)
	}
	// Drained: a second take is empty, and label writes stay clean.
	g.SetLabel(3, 1)
	if g.DirtyCount() != 0 {
		t.Fatal("label write marked forward-dirty under sharding")
	}
	g.SetFeature(7, []float64{0, 1})
	merged := g.TakeDirty()
	if len(merged) != 1 || merged[0] != 7 {
		t.Fatalf("merged TakeDirty = %v, want [7]", merged)
	}
}

// Dirty marks accumulated before AttachSharding survive the switch to
// per-shard trackers.
func TestAttachShardingCarriesDirtyMarks(t *testing.T) {
	g := NewDynamic(2)
	g.EnableDirtyTracking()
	for i := 0; i < 6; i++ {
		g.AddNode(0, nil)
	}
	attach(t, g, 2, shard.Hash)
	ids := g.TakeDirty()
	if len(ids) != 6 {
		t.Fatalf("carried %d dirty marks across AttachSharding, want 6", len(ids))
	}
}

// Edge classification: local vs cross counters, the boundary index, and
// occupancy — maintained through insertion, late attachment, and expiry.
func TestShardEdgeClassificationAndExpiry(t *testing.T) {
	g := NewDynamic(2)
	// Range layout with block 256: nodes 0..9 all land on shard 0 of 2 only
	// if ids stay under the block size — use ids around the block edge for a
	// guaranteed cross-shard pair.
	attach(t, g, 2, shard.Range)
	n := shard.RangeBlock + 4
	for i := 0; i < n; i++ {
		g.AddNode(0, nil)
	}
	g.AddEdge(0, 1, 0, 10)                                 // local (both shard 0)
	g.AddEdge(2, shard.RangeBlock, 0, 20)                  // cross (shard 0 → 1)
	g.AddEdge(shard.RangeBlock, shard.RangeBlock+1, 0, 30) // local on shard 1

	st := g.ShardStats()
	if st.Shards != 2 || st.Layout != "range" {
		t.Fatalf("stats header = %d/%s, want 2/range", st.Shards, st.Layout)
	}
	if st.LocalEdges != 2 || st.CrossEdges != 1 {
		t.Fatalf("edges = %d local / %d cross, want 2/1", st.LocalEdges, st.CrossEdges)
	}
	if got := st.CrossFraction(); got != 1.0/3.0 {
		t.Fatalf("CrossFraction = %v, want 1/3", got)
	}
	if st.BoundaryNodes != 2 {
		t.Fatalf("BoundaryNodes = %d, want 2", st.BoundaryNodes)
	}
	if !g.IsBoundary(2) || !g.IsBoundary(shard.RangeBlock) || g.IsBoundary(0) {
		t.Fatal("boundary index misclassified nodes")
	}
	if st.Occupancy[0] != int64(shard.RangeBlock) || st.Occupancy[1] != 4 {
		t.Fatalf("occupancy = %v", st.Occupancy)
	}

	// Expiring the cross edge must decrement the counters and clear the
	// boundary marks; the younger local edges survive.
	g.ExpireEdgesBefore(25)
	st = g.ShardStats()
	if st.CrossEdges != 0 || st.LocalEdges != 1 {
		t.Fatalf("after expiry: %d local / %d cross, want 1/0", st.LocalEdges, st.CrossEdges)
	}
	if st.BoundaryNodes != 0 || g.IsBoundary(2) {
		t.Fatal("boundary index not decremented by expiry")
	}
}

// Attaching to an already-populated graph re-indexes existing nodes and
// edges, matching what incremental maintenance would have produced.
func TestAttachShardingScansExistingGraph(t *testing.T) {
	g := NewDynamic(2)
	n := 2 * shard.RangeBlock
	for i := 0; i < n; i++ {
		g.AddNode(0, nil)
	}
	g.AddEdge(0, 1, 0, 0)                  // local after attach
	g.AddEdge(1, shard.RangeBlock+1, 0, 0) // cross after attach
	attach(t, g, 2, shard.Range)
	st := g.ShardStats()
	if st.LocalEdges != 1 || st.CrossEdges != 1 {
		t.Fatalf("rescan found %d local / %d cross, want 1/1", st.LocalEdges, st.CrossEdges)
	}
	if st.Occupancy[0] != int64(shard.RangeBlock) || st.Occupancy[1] != int64(shard.RangeBlock) {
		t.Fatalf("rescan occupancy = %v", st.Occupancy)
	}
}

// The unsharded graph reports zero-value stats and nil sharded drains.
func TestUnshardedStatsAreZero(t *testing.T) {
	g := NewDynamic(2)
	g.AddNode(0, nil)
	if st := g.ShardStats(); st.Shards != 0 {
		t.Fatalf("unsharded ShardStats = %+v", st)
	}
	if g.TakeDirtySharded() != nil {
		t.Fatal("unsharded TakeDirtySharded should be nil")
	}
	if g.Sharding() != nil || g.IsBoundary(0) {
		t.Fatal("unsharded accessors leaked shard state")
	}
}
