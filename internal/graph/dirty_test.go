package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestDirtyTrackingDisabledByDefault(t *testing.T) {
	g := NewDynamic(2)
	g.AddNode(0, []float64{1, 0})
	if g.DirtyTrackingEnabled() {
		t.Fatal("tracking enabled without EnableDirtyTracking")
	}
	if got := g.TakeDirty(); got != nil {
		t.Fatalf("TakeDirty = %v on a disabled tracker", got)
	}
}

func TestDirtyTrackingAccumulatesAndDrains(t *testing.T) {
	g := NewDynamic(2)
	g.EnableDirtyTracking()
	a := g.AddNode(0, []float64{1, 0})
	b := g.AddNode(0, []float64{0, 1})
	c := g.AddNode(0, []float64{1, 1})
	g.AddEdge(a, b, 0, 0)
	if got, want := g.TakeDirty(), []int{a, b, c}; !reflect.DeepEqual(got, want) {
		t.Fatalf("TakeDirty = %v, want %v", got, want)
	}
	// Drained: a quiet interval reports nothing.
	if got := g.TakeDirty(); got != nil {
		t.Fatalf("TakeDirty after drain = %v, want nil", got)
	}
	// Feature writes mark their node only; label writes are supervision
	// and do not affect forward inference at all.
	g.SetFeature(b, []float64{0.5, 0.5})
	g.SetLabel(c, 1)
	if got, want := g.TakeDirty(), []int{b}; !reflect.DeepEqual(got, want) {
		t.Fatalf("TakeDirty = %v, want %v", got, want)
	}
	if g.DirtyCount() != 0 {
		t.Fatalf("DirtyCount = %d after drain", g.DirtyCount())
	}
}

// Window expiry must feed the forward-dirty set even though it bypasses the
// update set U: dropping an edge changes degrees, hence normalization, hence
// the forward inputs of both endpoints.
func TestDirtyTrackingSeesExpiry(t *testing.T) {
	g := NewDynamic(2)
	g.EnableDirtyTracking()
	a := g.AddNode(0, nil)
	b := g.AddNode(0, nil)
	g.AddNode(0, nil)
	g.AddEdge(a, b, 0, 0)
	g.TakeDirty()
	g.ResetUpdated()
	g.ExpireEdgesBefore(5)
	if got, want := g.TakeDirty(), []int{a, b}; !reflect.DeepEqual(got, want) {
		t.Fatalf("TakeDirty after expiry = %v, want %v", got, want)
	}
	if got := g.Updated(); len(got) != 0 {
		t.Fatalf("expiry fed the update set U: %v", got)
	}
}

// Ball must equal the union of single-source KHopBalls.
func TestBallMatchesKHopBallUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewDynamic(1)
	const n = 60
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{1})
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 0, 0)
	}
	for i := 0; i < 25; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), 0, 0)
	}
	for _, L := range []int{0, 1, 2, 3} {
		sources := []int{3, 17, 17, 44} // duplicate on purpose
		union := map[int]struct{}{}
		for _, s := range sources {
			for _, v := range g.KHopBall(s, L) {
				union[v] = struct{}{}
			}
		}
		want := make([]int, 0, len(union))
		for v := range union {
			want = append(want, v)
		}
		sort.Ints(want)
		if got := g.Ball(sources, L); !reflect.DeepEqual(got, want) {
			t.Fatalf("L=%d: Ball = %v, want %v", L, got, want)
		}
	}
	if got := g.Ball(nil, 2); got != nil {
		t.Fatalf("Ball(nil) = %v, want nil", got)
	}
}
