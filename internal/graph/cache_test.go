package graph

import (
	"testing"

	"streamgnn/internal/tensor"
)

// sameCSR reports bit-identical sparse structure and values.
func sameCSR(a, b *tensor.CSR) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NRows != b.NRows || a.NCols != b.NCols {
		return false
	}
	if len(a.RowPtr) != len(b.RowPtr) || len(a.ColIdx) != len(b.ColIdx) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// sameSubgraph reports bit-identical node sets, centers and operators.
func sameSubgraph(a, b *Subgraph) bool {
	if a.N() != b.N() || a.Center != b.Center {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return sameCSR(a.NormAdj(), b.NormAdj()) &&
		sameCSR(a.RWAdj(false), b.RWAdj(false)) &&
		sameCSR(a.RWAdj(true), b.RWAdj(true))
}

// TestPartitionCacheBitIdentical drives the same mutation script against a
// cached and an uncached copy of the graph and asserts every cached
// extraction is bit-identical to a fresh build — including after mutations
// inside and outside the ball.
func TestPartitionCacheBitIdentical(t *testing.T) {
	cached, fresh := chain(12), chain(12)
	cached.EnablePartitionCache(64)

	check := func(when string) {
		t.Helper()
		for _, v := range []int{0, 4, 6, 11} {
			a, b := cached.Partition(v, 2), fresh.Partition(v, 2)
			if !sameSubgraph(a, b) {
				t.Fatalf("%s: cached partition of %d differs from fresh build", when, v)
			}
		}
	}
	check("cold")
	check("warm") // second pass hits the cache
	if s := cached.PartitionCacheStats(); s.Hits == 0 {
		t.Fatalf("warm pass recorded no hits: %+v", s)
	}

	// Mutation inside the ball of node 4: must invalidate and rebuild.
	cached.AddUndirectedEdge(3, 5, 0, 100)
	fresh.AddUndirectedEdge(3, 5, 0, 100)
	check("after in-ball edge")

	// Feature change inside the ball of node 6.
	cached.SetFeature(7, []float64{9, 9})
	fresh.SetFeature(7, []float64{9, 9})
	check("after feature change")

	// Mutation far from node 0's 2-hop ball: its entry must survive as a hit
	// and still match the fresh build.
	pre := cached.PartitionCacheStats()
	cached.AddUndirectedEdge(9, 11, 0, 101)
	fresh.AddUndirectedEdge(9, 11, 0, 101)
	a, b := cached.Partition(0, 2), fresh.Partition(0, 2)
	if !sameSubgraph(a, b) {
		t.Fatal("out-of-ball mutation corrupted cached partition")
	}
	if s := cached.PartitionCacheStats(); s.Hits != pre.Hits+1 {
		t.Fatalf("out-of-ball mutation evicted a survivable entry: %+v -> %+v", pre, s)
	}

	// Window expiry drops early chain edges; both graphs change identically.
	cached.ExpireEdgesBefore(3)
	fresh.ExpireEdgesBefore(3)
	check("after expiry")
}

func TestPartitionCacheCounters(t *testing.T) {
	g := chain(10)
	g.EnablePartitionCache(32)
	g.Partition(5, 2) // miss
	g.Partition(5, 2) // hit
	g.Partition(5, 1) // distinct key: miss
	s := g.PartitionCacheStats()
	if s.Misses != 2 || s.Hits != 1 || s.Size != 2 {
		t.Fatalf("stats %+v", s)
	}
	if got := s.HitRate(); got <= 0.33 || got >= 0.34 {
		t.Fatalf("hit rate %v", got)
	}
	g.AddUndirectedEdge(5, 7, 0, 50) // inside both balls
	if s = g.PartitionCacheStats(); s.Invalidations != 2 || s.Size != 0 {
		t.Fatalf("invalidation stats %+v", s)
	}
}

func TestPartitionCacheEviction(t *testing.T) {
	g := chain(12)
	g.EnablePartitionCache(2)
	g.Partition(1, 1)
	g.Partition(5, 1)
	g.Partition(9, 1) // evicts LRU (node 1)
	s := g.PartitionCacheStats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats %+v", s)
	}
	pre := s
	g.Partition(1, 1) // must rebuild: a miss, evicting node 5's entry
	if s = g.PartitionCacheStats(); s.Misses != pre.Misses+1 || s.Evictions != 2 {
		t.Fatalf("stats %+v", s)
	}
	// The evicted entries' inverted-index rows must be scrubbed: touching a
	// member of an evicted ball (5) affects no live entry, so nothing is
	// invalidated and both live entries survive.
	g.AddUndirectedEdge(5, 6, 0, 60)
	if s = g.PartitionCacheStats(); s.Size != 2 || s.Invalidations != 0 {
		t.Fatalf("stale index entry survived eviction: %+v", s)
	}
}

func TestPartitionCacheDisable(t *testing.T) {
	g := chain(6)
	g.EnablePartitionCache(8)
	g.Partition(2, 1)
	g.EnablePartitionCache(0) // detach
	if g.PartitionCache() != nil {
		t.Fatal("cache not detached")
	}
	g.Partition(2, 1) // must not panic without a cache
	if s := g.PartitionCacheStats(); s.Size != 0 || s.Hits != 0 {
		t.Fatalf("detached stats %+v", s)
	}
}
