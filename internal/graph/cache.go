package graph

import (
	"container/list"
	"sync"
)

// PartitionCache is a version-keyed LRU cache of training partitions
// (Subgraph values) keyed by (center node, hop count). Partition extraction
// — an L-hop BFS plus three CSR builds — dominates the cost of a training
// unit on quiet graphs, and the adaptive sampler revisits high-weight nodes
// constantly, so warm hits are the common case.
//
// Invalidation is driven by the mutation stream rather than by comparing
// versions on lookup: every graph mutation funnels through Dynamic.touch or
// ExpireEdgesBefore, which call invalidate(v) for each affected node, and
// invalidate drops exactly the cached partitions whose ball contains v. That
// is sufficient for correctness: any mutation that changes a partition's node
// set, its edge set, or the global degrees its normalization reads touches at
// least one node already inside the ball (both endpoints of an added or
// expired edge are touched, and feature/label writes touch their node).
// Flush remains as the coarse fallback.
//
// Cached Subgraphs are immutable after construction and may be shared across
// goroutines; all cache state is guarded by one mutex, so concurrent
// Partition calls from training workers are safe.
type PartitionCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[partKey]*list.Element
	// byNode is the inverted index ball-member -> cached partition keys,
	// kept exact (scrubbed on every removal) so invalidation is O(|ball|).
	byNode map[int][]partKey

	hits, misses, invalidations, evictions int64
}

type partKey struct{ node, hops int }

type cacheEntry struct {
	key partKey
	sub *Subgraph
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Evictions     int64
	Size          int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func newPartitionCache(capacity int) *PartitionCache {
	return &PartitionCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[partKey]*list.Element),
		byNode:  make(map[int][]partKey),
	}
}

// get returns the cached partition for (node, hops), or nil.
func (c *PartitionCache) get(node, hops int) *Subgraph {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[partKey{node, hops}]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).sub
}

// put inserts a freshly built partition, evicting LRU entries beyond cap.
func (c *PartitionCache) put(node, hops int, sub *Subgraph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := partKey{node, hops}
	if el, ok := c.entries[key]; ok {
		// A concurrent builder won the race; keep its entry.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, sub: sub})
	c.entries[key] = el
	for _, u := range sub.Nodes {
		c.byNode[u] = append(c.byNode[u], key)
	}
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back(), &c.evictions)
	}
}

// invalidate drops every cached partition whose ball contains v.
func (c *PartitionCache) invalidate(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byNode[v]
	if len(keys) == 0 {
		return
	}
	// Copy: removeLocked rewrites the byNode slices we are iterating.
	for _, k := range append([]partKey(nil), keys...) {
		if el, ok := c.entries[k]; ok {
			c.removeLocked(el, &c.invalidations)
		}
	}
}

func (c *PartitionCache) removeLocked(el *list.Element, counter *int64) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	for _, u := range ent.sub.Nodes {
		ks := c.byNode[u]
		for i, k := range ks {
			if k == ent.key {
				ks[i] = ks[len(ks)-1]
				ks = ks[:len(ks)-1]
				break
			}
		}
		if len(ks) == 0 {
			delete(c.byNode, u)
		} else {
			c.byNode[u] = ks
		}
	}
	*counter++
}

// Flush drops every entry (the coarse invalidation fallback).
func (c *PartitionCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back(), &c.invalidations)
	}
}

// Stats returns a snapshot of the counters.
func (c *PartitionCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Size:          c.ll.Len(),
	}
}

// EnablePartitionCache attaches a partition cache with the given capacity
// (number of cached partitions); capacity <= 0 detaches the cache.
func (g *Dynamic) EnablePartitionCache(capacity int) {
	if capacity <= 0 {
		g.cache = nil
		return
	}
	g.cache = newPartitionCache(capacity)
}

// PartitionCache returns the attached cache, or nil.
func (g *Dynamic) PartitionCache() *PartitionCache { return g.cache }

// PartitionCacheStats returns the cache counters (zero value when disabled).
func (g *Dynamic) PartitionCacheStats() CacheStats {
	if g.cache == nil {
		return CacheStats{}
	}
	return g.cache.Stats()
}
