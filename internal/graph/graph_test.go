package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds 0-1-2-...-n-1 as undirected edges.
func chain(n int) *Dynamic {
	g := NewDynamic(2)
	for i := 0; i < n; i++ {
		g.AddNode(0, []float64{float64(i), 1})
	}
	for i := 0; i+1 < n; i++ {
		g.AddUndirectedEdge(i, i+1, 0, int64(i))
	}
	return g
}

func TestAddNodeAndFeatures(t *testing.T) {
	g := NewDynamic(3)
	a := g.AddNode(1, []float64{1, 2, 3})
	b := g.AddNode(2, []float64{4}) // padded
	if a != 0 || b != 1 || g.N() != 2 {
		t.Fatalf("ids/N wrong: %d %d %d", a, b, g.N())
	}
	if g.Type(a) != 1 || g.Type(b) != 2 {
		t.Fatal("types wrong")
	}
	f := g.Features()
	if f.At(0, 2) != 3 || f.At(1, 0) != 4 || f.At(1, 1) != 0 {
		t.Fatalf("features wrong: %v", f)
	}
	g.SetFeature(b, []float64{9, 9, 9, 99}) // truncated
	if g.Feature(b)[2] != 9 {
		t.Fatal("SetFeature failed")
	}
}

func TestLabels(t *testing.T) {
	g := NewDynamic(1)
	v := g.AddNode(0, nil)
	if _, ok := g.Label(v); ok {
		t.Fatal("new node should be unlabeled")
	}
	g.SetLabel(v, 0.5)
	if y, ok := g.Label(v); !ok || y != 0.5 {
		t.Fatalf("label = %v %v", y, ok)
	}
}

func TestEdgesAndDegree(t *testing.T) {
	g := NewDynamic(1)
	a := g.AddNode(0, nil)
	b := g.AddNode(0, nil)
	c := g.AddNode(0, nil)
	g.AddEdge(a, b, 1, 10)
	g.AddEdge(c, a, 2, 20)
	if len(g.OutEdges(a)) != 1 || g.OutEdges(a)[0].To != b {
		t.Fatal("out edges wrong")
	}
	if len(g.InEdges(a)) != 1 || g.InEdges(a)[0].To != c {
		t.Fatal("in edges wrong")
	}
	if g.Degree(a) != 2 || g.Degree(b) != 1 {
		t.Fatal("degree wrong")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestEdgeLabels(t *testing.T) {
	g := NewDynamic(1)
	a := g.AddNode(0, nil)
	b := g.AddNode(0, nil)
	g.AddLabeledEdge(a, b, 0, 0, 1.0)
	g.AddEdge(a, b, 0, 1)
	if !g.OutEdges(a)[0].HasLabel() || g.OutEdges(a)[1].HasLabel() {
		t.Fatal("edge label flags wrong")
	}
}

func TestUpdatedSet(t *testing.T) {
	g := NewDynamic(1)
	a := g.AddNode(0, nil)
	b := g.AddNode(0, nil)
	g.ResetUpdated()
	if len(g.Updated()) != 0 {
		t.Fatal("update set not cleared")
	}
	g.AddEdge(a, b, 0, 0)
	got := g.Updated()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Updated = %v", got)
	}
	g.ResetUpdated()
	g.SetLabel(b, 1)
	if got := g.Updated(); len(got) != 1 || got[0] != b {
		t.Fatalf("Updated after SetLabel = %v", got)
	}
}

func TestExpireEdges(t *testing.T) {
	g := chain(4) // edge times 0,1,2
	g.ExpireEdgesBefore(2)
	// Only edge 2-3 (time 2) remains, in both directions.
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges after expiry = %d", g.NumEdges())
	}
	if g.Degree(0) != 0 || g.Degree(2) != 2 {
		t.Fatal("expiry left wrong edges")
	}
}

func TestNormAdjRowSumsAndSymmetry(t *testing.T) {
	g := chain(5)
	adj := g.NormAdj()
	d := adj.Dense()
	// Symmetric normalization of a symmetric graph must be symmetric.
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(d.At(i, j)-d.At(j, i)) > 1e-12 {
				t.Fatalf("NormAdj not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Every diagonal entry positive (self loops).
	for i := 0; i < 5; i++ {
		if d.At(i, i) <= 0 {
			t.Fatal("missing self loop")
		}
	}
}

func TestRWAdjRowStochastic(t *testing.T) {
	g := NewDynamic(1)
	for i := 0; i < 4; i++ {
		g.AddNode(0, nil)
	}
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(0, 2, 0, 0)
	g.AddEdge(3, 0, 0, 0)
	fwd := g.RWAdj(false).Dense()
	for r := 0; r < 4; r++ {
		var sum float64
		for c := 0; c < 4; c++ {
			sum += fwd.At(r, c)
		}
		wantSum := 0.0
		if len(g.OutEdges(r)) > 0 {
			wantSum = 1.0
		}
		if math.Abs(sum-wantSum) > 1e-12 {
			t.Fatalf("row %d of forward RW adj sums to %v, want %v", r, sum, wantSum)
		}
	}
	rev := g.RWAdj(true).Dense()
	if rev.At(0, 3) != 1 {
		t.Fatalf("reverse RW adj wrong: %v", rev)
	}
}

func TestAdjCacheInvalidation(t *testing.T) {
	g := chain(3)
	a1 := g.NormAdj()
	if g.NormAdj() != a1 {
		t.Fatal("cache should return the same CSR for unchanged graph")
	}
	g.AddUndirectedEdge(0, 2, 0, 99)
	a2 := g.NormAdj()
	if a2 == a1 {
		t.Fatal("cache not invalidated after mutation")
	}
	if a2.NNZ() <= a1.NNZ() {
		t.Fatal("new adjacency should have more entries")
	}
}

func TestKHopBallOnChain(t *testing.T) {
	g := chain(7)
	cases := []struct {
		v, L int
		want []int
	}{
		{3, 0, []int{3}},
		{3, 1, []int{2, 3, 4}},
		{3, 2, []int{1, 2, 3, 4, 5}},
		{0, 2, []int{0, 1, 2}},
		{6, 3, []int{3, 4, 5, 6}},
	}
	for _, c := range cases {
		got := g.KHopBall(c.v, c.L)
		if len(got) != len(c.want) {
			t.Fatalf("KHopBall(%d,%d) = %v, want %v", c.v, c.L, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("KHopBall(%d,%d) = %v, want %v", c.v, c.L, got, c.want)
			}
		}
	}
}

func TestKHopBallUsesBothDirections(t *testing.T) {
	g := NewDynamic(1)
	a := g.AddNode(0, nil)
	b := g.AddNode(0, nil)
	g.AddEdge(b, a, 0, 0) // only incoming at a
	ball := g.KHopBall(a, 1)
	if len(ball) != 2 {
		t.Fatalf("ball should include in-neighbor: %v", ball)
	}
}

// Property: for random graphs the L-hop ball is exactly the set of nodes
// with BFS distance <= L.
func TestKHopBallMatchesBFSDistances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := NewDynamic(1)
		for i := 0; i < n; i++ {
			g.AddNode(0, nil)
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 0, 0)
		}
		v := rng.Intn(n)
		L := rng.Intn(4)
		// Reference BFS over the undirected view.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[v] = 0
		queue := []int{v}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.OutEdges(u) {
				if dist[e.To] < 0 {
					dist[e.To] = dist[u] + 1
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.InEdges(u) {
				if dist[e.To] < 0 {
					dist[e.To] = dist[u] + 1
					queue = append(queue, e.To)
				}
			}
		}
		want := map[int]bool{}
		for u, d := range dist {
			if d >= 0 && d <= L {
				want[u] = true
			}
		}
		got := g.KHopBall(v, L)
		if len(got) != len(want) {
			return false
		}
		for _, u := range got {
			if !want[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	g := NewDynamic(1)
	g.AddNode(0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(0, 5, 0, 0)
}

func TestTypedAdjCacheAndCoverage(t *testing.T) {
	g := NewDynamic(1)
	for i := 0; i < 4; i++ {
		g.AddNode(0, nil)
	}
	g.AddEdge(0, 1, 0, 0)
	g.AddEdge(1, 2, 1, 0)
	g.AddEdge(2, 3, 5, 0) // beyond the requested budget: ignored
	if g.NumEdgeTypes() != 6 {
		t.Fatalf("NumEdgeTypes = %d", g.NumEdgeTypes())
	}
	typed := g.TypedAdj(2)
	if len(typed) != 2 {
		t.Fatalf("typed = %d", len(typed))
	}
	// Each directed edge contributes symmetric (out+in) entries.
	if typed[0].NNZ() != 2 || typed[1].NNZ() != 2 {
		t.Fatalf("nnz = %d/%d", typed[0].NNZ(), typed[1].NNZ())
	}
	// Cache: same slice until mutation or different budget.
	if got := g.TypedAdj(2); &got[0] != &typed[0] && got[0] != typed[0] {
		t.Fatal("typed adjacency not cached")
	}
	g.AddEdge(3, 0, 0, 1)
	if got := g.TypedAdj(2); got[0].NNZ() == typed[0].NNZ() {
		t.Fatal("cache not invalidated after mutation")
	}
}
