package graph

import (
	"fmt"
	"math"
	"sort"

	"streamgnn/internal/tensor"
)

// Subgraph is the induced subgraph on a node subset with local (dense)
// indexing. It is the unit of a node's training partition: forward and
// backward passes during weighted training run on a Subgraph instead of the
// full snapshot, which is where the paper's O(d^L) vs O(n) resource saving
// comes from.
type Subgraph struct {
	// Nodes maps local index -> global node id (ascending).
	Nodes []int
	// Center is the local index of the partition's center node, or -1.
	Center int

	local   map[int]int
	g       *Dynamic
	version int64

	normAdj *tensor.CSR
	rwFwd   *tensor.CSR
	rwRev   *tensor.CSR
}

// Induced returns the subgraph induced by the given global node ids
// (deduplicated, ascending). center, if non-negative, must be among nodes.
func (g *Dynamic) Induced(nodes []int, center int) *Subgraph {
	s := &Subgraph{g: g, version: g.version, Center: -1, local: make(map[int]int, len(nodes))}
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	for _, v := range sorted {
		g.checkNode(v)
		if _, dup := s.local[v]; dup {
			continue
		}
		s.local[v] = len(s.Nodes)
		s.Nodes = append(s.Nodes, v)
	}
	if center >= 0 {
		li, ok := s.local[center]
		if !ok {
			panic(fmt.Sprintf("graph: center %d not in induced node set", center))
		}
		s.Center = li
	}
	s.build()
	return s
}

// Partition returns node v's training partition: the induced subgraph of
// v's L-hop neighborhood with v as center (Section III-C).
func (g *Dynamic) Partition(v, L int) *Subgraph {
	return g.Induced(g.KHopBall(v, L), v)
}

// N returns the number of nodes in the subgraph.
func (s *Subgraph) N() int { return len(s.Nodes) }

// LocalID returns the local index of global node v, or -1.
func (s *Subgraph) LocalID(v int) int {
	if li, ok := s.local[v]; ok {
		return li
	}
	return -1
}

// GlobalID returns the global node id at local index li.
func (s *Subgraph) GlobalID(li int) int { return s.Nodes[li] }

// build assembles the subgraph's normalized adjacencies. Normalization uses
// each node's GLOBAL degree, not its degree inside the subgraph: message
// weights then match the full-graph convolution exactly, so the embedding of
// the center of an L-hop partition computed on the subgraph equals its
// full-graph embedding — edges to nodes outside the subgraph simply
// contribute nothing (they are outside the center's receptive field anyway).
func (s *Subgraph) build() {
	n := len(s.Nodes)
	type halfEdge struct{ to int }
	outs := make([][]halfEdge, n)
	ins := make([][]halfEdge, n)
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for li, v := range s.Nodes {
		outDeg[li] = len(s.g.out[v])
		inDeg[li] = len(s.g.in[v])
		for _, e := range s.g.out[v] {
			if lj, ok := s.local[e.To]; ok {
				outs[li] = append(outs[li], halfEdge{lj})
			}
		}
		for _, e := range s.g.in[v] {
			if lj, ok := s.local[e.To]; ok {
				ins[li] = append(ins[li], halfEdge{lj})
			}
		}
	}
	deg := make([]float64, n)
	for li := range s.Nodes {
		deg[li] = float64(outDeg[li]+inDeg[li]) + 1 // global degree + self loop
	}
	sym := make([][]tensor.CSREntry, n)
	fwd := make([][]tensor.CSREntry, n)
	rev := make([][]tensor.CSREntry, n)
	for li := range s.Nodes {
		dv := math.Sqrt(deg[li])
		sym[li] = append(sym[li], tensor.CSREntry{Col: li, Val: 1 / deg[li]})
		for _, e := range outs[li] {
			sym[li] = append(sym[li], tensor.CSREntry{Col: e.to, Val: 1 / (dv * math.Sqrt(deg[e.to]))})
			fwd[li] = append(fwd[li], tensor.CSREntry{Col: e.to, Val: 1 / float64(max(1, outDeg[li]))})
		}
		for _, e := range ins[li] {
			sym[li] = append(sym[li], tensor.CSREntry{Col: e.to, Val: 1 / (dv * math.Sqrt(deg[e.to]))})
			rev[li] = append(rev[li], tensor.CSREntry{Col: e.to, Val: 1 / float64(max(1, inDeg[li]))})
		}
	}
	s.normAdj = tensor.NewCSR(n, n, sym)
	s.rwFwd = tensor.NewCSR(n, n, fwd)
	s.rwRev = tensor.NewCSR(n, n, rev)
}

// NormAdj returns the subgraph's symmetric GCN-normalized adjacency.
func (s *Subgraph) NormAdj() *tensor.CSR { return s.normAdj }

// RWAdj returns the subgraph's row-normalized random-walk adjacency.
func (s *Subgraph) RWAdj(reverse bool) *tensor.CSR {
	if reverse {
		return s.rwRev
	}
	return s.rwFwd
}

// Features returns the |S|×FeatDim attribute matrix of the subgraph nodes.
func (s *Subgraph) Features() *tensor.Matrix {
	m := tensor.New(len(s.Nodes), s.g.featDim)
	for li, v := range s.Nodes {
		copy(m.Row(li), s.g.Feature(v))
	}
	return m
}

// LabeledNodes returns the local indices and labels of labeled nodes.
func (s *Subgraph) LabeledNodes() (idx []int, labels []float64) {
	for li, v := range s.Nodes {
		if y, ok := s.g.Label(v); ok {
			idx = append(idx, li)
			labels = append(labels, y)
		}
	}
	return idx, labels
}

// LabeledEdges returns local (src, dst) pairs and labels for labeled edges
// fully inside the subgraph.
func (s *Subgraph) LabeledEdges() (src, dst []int, labels []float64) {
	for li, v := range s.Nodes {
		for _, e := range s.g.out[v] {
			if !e.HasLabel() {
				continue
			}
			if lj, ok := s.local[e.To]; ok {
				src = append(src, li)
				dst = append(dst, lj)
				labels = append(labels, e.Label)
			}
		}
	}
	return src, dst, labels
}
