package graph

import (
	"fmt"
	"math"
	"sort"

	"streamgnn/internal/tensor"
)

// Subgraph is the induced subgraph on a node subset with local (dense)
// indexing. It is the unit of a node's training partition: forward and
// backward passes during weighted training run on a Subgraph instead of the
// full snapshot, which is where the paper's O(d^L) vs O(n) resource saving
// comes from.
//
// A Subgraph is immutable once built (the structural fields below are never
// rewritten), so instances may be cached and shared across goroutines.
// Features, LabeledNodes and LabeledEdges read through to the live graph.
type Subgraph struct {
	// Nodes maps local index -> global node id (ascending, unique).
	Nodes []int
	// Center is the local index of the partition's center node, or -1.
	Center int

	g       *Dynamic
	version int64

	normAdj *tensor.CSR
	rwFwd   *tensor.CSR
	rwRev   *tensor.CSR
}

// Induced returns the subgraph induced by the given global node ids
// (deduplicated, ascending). center, if non-negative, must be among nodes.
func (g *Dynamic) Induced(nodes []int, center int) *Subgraph {
	s := &Subgraph{g: g, version: g.version, Center: -1}
	owned := append([]int(nil), nodes...)
	if !sortedUnique(owned) {
		sort.Ints(owned)
		owned = dedupSorted(owned)
	}
	for _, v := range owned {
		g.checkNode(v)
	}
	s.Nodes = owned
	if center >= 0 {
		li := s.LocalID(center)
		if li < 0 {
			panic(fmt.Sprintf("graph: center %d not in induced node set", center))
		}
		s.Center = li
	}
	s.build()
	return s
}

// sortedUnique reports whether ids is strictly ascending (the order KHopBall
// already produces, letting Induced skip its sort+dedup pass).
func sortedUnique(ids []int) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

func dedupSorted(ids []int) []int {
	k := 0
	for i, v := range ids {
		if i == 0 || v != ids[k-1] {
			ids[k] = v
			k++
		}
	}
	return ids[:k]
}

// Partition returns node v's training partition: the induced subgraph of
// v's L-hop neighborhood with v as center (Section III-C). When a partition
// cache is attached (EnablePartitionCache), warm extractions are served from
// it; invalidation is handled by the mutation path (see PartitionCache).
func (g *Dynamic) Partition(v, L int) *Subgraph {
	if g.cache != nil {
		if s := g.cache.get(v, L); s != nil {
			return s
		}
		s := g.Induced(g.KHopBall(v, L), v)
		g.cache.put(v, L, s)
		return s
	}
	return g.Induced(g.KHopBall(v, L), v)
}

// N returns the number of nodes in the subgraph.
func (s *Subgraph) N() int { return len(s.Nodes) }

// LocalID returns the local index of global node v, or -1. Nodes is sorted,
// so this is a binary search — no per-subgraph map is kept.
func (s *Subgraph) LocalID(v int) int {
	li := sort.SearchInts(s.Nodes, v)
	if li < len(s.Nodes) && s.Nodes[li] == v {
		return li
	}
	return -1
}

// GlobalID returns the global node id at local index li.
func (s *Subgraph) GlobalID(li int) int { return s.Nodes[li] }

// Overlaps reports whether the two subgraphs share any node. Both Nodes
// slices are sorted ascending unique, so this is a two-pointer merge —
// O(|s|+|o|) worst case, and it exits at the first common node. Used by the
// dependency-aware training scheduler to decide whether two partitions'
// receptive fields conflict.
func (s *Subgraph) Overlaps(o *Subgraph) bool {
	a, b := s.Nodes, o.Nodes
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// build assembles the subgraph's normalized adjacencies. Normalization uses
// each node's GLOBAL degree, not its degree inside the subgraph: message
// weights then match the full-graph convolution exactly, so the embedding of
// the center of an L-hop partition computed on the subgraph equals its
// full-graph embedding — edges to nodes outside the subgraph simply
// contribute nothing (they are outside the center's receptive field anyway).
//
// The global->local index map is a pooled scratch slice (value = local index
// + 1, 0 = absent) rather than a per-call map[int]int.
func (s *Subgraph) build() {
	n := len(s.Nodes)
	loc := getScratch(s.g.N())
	for li, v := range s.Nodes {
		loc[v] = int32(li + 1)
	}
	deg := make([]float64, n)
	for li, v := range s.Nodes {
		deg[li] = float64(len(s.g.out[v])+len(s.g.in[v])) + 1 // global degree + self loop
	}
	sym := make([][]tensor.CSREntry, n)
	fwd := make([][]tensor.CSREntry, n)
	rev := make([][]tensor.CSREntry, n)
	for li, v := range s.Nodes {
		dv := math.Sqrt(deg[li])
		sym[li] = append(sym[li], tensor.CSREntry{Col: li, Val: 1 / deg[li]})
		outDeg := len(s.g.out[v])
		inDeg := len(s.g.in[v])
		for _, e := range s.g.out[v] {
			if lj := loc[e.To]; lj != 0 {
				j := int(lj - 1)
				sym[li] = append(sym[li], tensor.CSREntry{Col: j, Val: 1 / (dv * math.Sqrt(deg[j]))})
				fwd[li] = append(fwd[li], tensor.CSREntry{Col: j, Val: 1 / float64(max(1, outDeg))})
			}
		}
		for _, e := range s.g.in[v] {
			if lj := loc[e.To]; lj != 0 {
				j := int(lj - 1)
				sym[li] = append(sym[li], tensor.CSREntry{Col: j, Val: 1 / (dv * math.Sqrt(deg[j]))})
				rev[li] = append(rev[li], tensor.CSREntry{Col: j, Val: 1 / float64(max(1, inDeg))})
			}
		}
	}
	s.normAdj = tensor.NewCSR(n, n, sym)
	s.rwFwd = tensor.NewCSR(n, n, fwd)
	s.rwRev = tensor.NewCSR(n, n, rev)
	for _, v := range s.Nodes {
		loc[v] = 0
	}
	putScratch(loc)
}

// NormAdj returns the subgraph's symmetric GCN-normalized adjacency.
func (s *Subgraph) NormAdj() *tensor.CSR { return s.normAdj }

// RWAdj returns the subgraph's row-normalized random-walk adjacency.
func (s *Subgraph) RWAdj(reverse bool) *tensor.CSR {
	if reverse {
		return s.rwRev
	}
	return s.rwFwd
}

// Features returns the |S|×FeatDim attribute matrix of the subgraph nodes.
func (s *Subgraph) Features() *tensor.Matrix {
	m := tensor.New(len(s.Nodes), s.g.featDim)
	for li, v := range s.Nodes {
		copy(m.Row(li), s.g.Feature(v))
	}
	return m
}

// LabeledNodes returns the local indices and labels of labeled nodes.
func (s *Subgraph) LabeledNodes() (idx []int, labels []float64) {
	for li, v := range s.Nodes {
		if y, ok := s.g.Label(v); ok {
			idx = append(idx, li)
			labels = append(labels, y)
		}
	}
	return idx, labels
}

// LabeledEdges returns local (src, dst) pairs and labels for labeled edges
// fully inside the subgraph.
func (s *Subgraph) LabeledEdges() (src, dst []int, labels []float64) {
	for li, v := range s.Nodes {
		for _, e := range s.g.out[v] {
			if !e.HasLabel() {
				continue
			}
			if lj := s.LocalID(e.To); lj >= 0 {
				src = append(src, li)
				dst = append(dst, lj)
				labels = append(labels, e.Label)
			}
		}
	}
	return src, dst, labels
}
