package graph

import (
	"sort"

	"streamgnn/internal/shard"
)

// Forward-inference dirty tracking. When enabled, the graph accumulates the
// set of nodes whose forward-pass inputs changed — feature writes, label
// writes, incident-edge insertions, *and* window expiry (unlike the
// algorithmic update set U, which expiry deliberately does not feed; a
// degree change alters the GCN normalization of every incident message, so
// inference must see it). The engine drains the set once per step and
// expands it to the model's L-hop affected frontier with Ball; everything
// outside that frontier provably kept the same forward inputs, so its cached
// embedding row can be reused.
//
// Tracking rides the same mutation funnel (touch / ExpireEdgesBefore) that
// drives partition-cache invalidation, so no mutation path can bypass it.

// EnableDirtyTracking starts accumulating forward-dirty nodes. Idempotent;
// tracking is off by default so engines that always run full forwards pay
// nothing. With a sharding attached (AttachSharding), tracking is already on
// via the per-shard trackers and this is a no-op.
func (g *Dynamic) EnableDirtyTracking() {
	if g.sh == nil && g.fwdDirty == nil {
		g.fwdDirty = make(map[int]struct{})
	}
}

// DirtyTrackingEnabled reports whether EnableDirtyTracking (or
// AttachSharding, which implies it) was called.
func (g *Dynamic) DirtyTrackingEnabled() bool { return g.fwdDirty != nil || g.sh != nil }

// DirtyCount returns the number of accumulated dirty nodes (0 when tracking
// is disabled).
func (g *Dynamic) DirtyCount() int {
	if g.sh != nil {
		n := 0
		for _, m := range g.sh.dirty {
			n += len(m)
		}
		return n
	}
	return len(g.fwdDirty)
}

// TakeDirty drains and returns, in ascending order, the nodes whose forward
// inputs changed since the previous call. Nil when tracking is disabled or
// nothing changed. With a sharding attached it drains every per-shard
// tracker and merges the results; use TakeDirtySharded to keep them apart.
func (g *Dynamic) TakeDirty() []int {
	if g.sh != nil {
		return shard.Merge(g.TakeDirtySharded())
	}
	if len(g.fwdDirty) == 0 {
		return nil
	}
	ids := make([]int, 0, len(g.fwdDirty))
	for v := range g.fwdDirty {
		ids = append(ids, v)
	}
	g.fwdDirty = make(map[int]struct{})
	sort.Ints(ids)
	return ids
}

// Ball returns the nodes within L undirected hops of any source (sources
// included, deduplicated), in ascending id order — the multi-source
// generalization of KHopBall. Visited marks live in the same pooled scratch
// slice KHopBall uses.
func (g *Dynamic) Ball(sources []int, L int) []int {
	if len(sources) == 0 {
		return nil
	}
	seen := getScratch(len(g.ntype))
	ids := make([]int, 0, len(sources))
	for _, v := range sources {
		g.checkNode(v)
		if seen[v] == 0 {
			seen[v] = 1
			ids = append(ids, v)
		}
	}
	frontier := ids
	for hop := 0; hop < L && len(frontier) > 0; hop++ {
		var next []int
		for _, u := range frontier {
			for _, e := range g.out[u] {
				if seen[e.To] == 0 {
					seen[e.To] = 1
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[u] {
				if seen[e.To] == 0 {
					seen[e.To] = 1
					next = append(next, e.To)
				}
			}
		}
		ids = append(ids, next...)
		frontier = next
	}
	for _, u := range ids {
		seen[u] = 0
	}
	putScratch(seen)
	sort.Ints(ids)
	return ids
}
