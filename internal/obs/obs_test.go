package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) != 28 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 1e-6 {
		t.Fatalf("first bound %v", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d", i)
		}
	}
	if b[len(b)-1] < 100 {
		t.Fatalf("top bound %v does not cover slow steps", b[len(b)-1])
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // bucket 0 (le is inclusive)
	h.Observe(0.005)  // bucket 1
	h.Observe(0.05)   // bucket 2
	h.Observe(5)      // +Inf bucket
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Sum-5.0565) > 1e-12 {
		t.Fatalf("Sum = %v", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-5.0565/5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Sum-8000*1e-5) > 1e-9 {
		t.Fatalf("Sum = %v", s.Sum)
	}
}

func TestWriteHistogramPrometheus(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(3)
	var b strings.Builder
	WriteHeader(&b, "x_seconds", "test", "histogram")
	WriteHistogram(&b, "x_seconds", `phase="train"`, h.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{phase="train",le="0.5"} 1`,
		`x_seconds_bucket{phase="train",le="1"} 2`,
		`x_seconds_bucket{phase="train",le="+Inf"} 3`,
		`x_seconds_sum{phase="train"} 3.9`,
		`x_seconds_count{phase="train"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteIndexedIntValues(t *testing.T) {
	var b strings.Builder
	WriteIndexedIntValues(&b, "shard_nodes", "shard", []int64{7, 0, 3})
	want := "shard_nodes{shard=\"0\"} 7\nshard_nodes{shard=\"1\"} 0\nshard_nodes{shard=\"2\"} 3\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
	b.Reset()
	WriteIndexedIntValues(&b, "empty", "i", nil)
	if b.String() != "" {
		t.Fatalf("nil slice should emit nothing, got %q", b.String())
	}
}

func TestWriteValueNoLabels(t *testing.T) {
	var b strings.Builder
	WriteIntValue(&b, "steps_total", "", 42)
	WriteValue(&b, "rate", "", 0.25)
	out := b.String()
	if !strings.Contains(out, "steps_total 42\n") || !strings.Contains(out, "rate 0.25\n") {
		t.Fatalf("bad output:\n%s", out)
	}
}
