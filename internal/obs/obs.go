// Package obs provides the engine's observability primitives: lock-cheap
// atomic counters and fixed-bucket log-spaced latency histograms, plus
// encoders for the Prometheus text exposition format. It has no dependencies
// beyond the standard library and is safe for concurrent use: every mutation
// is a single atomic operation, so instrumenting the training hot path costs
// a few nanoseconds per observation.
package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefaultLatencyBuckets returns the histogram bounds used for step-phase
// latencies: 28 log-spaced (doubling) upper bounds from 1µs to ~134s. The
// range covers everything from a no-op expiry phase to a multi-second
// full-graph training pass; observations above the last bound land in the
// implicit +Inf bucket.
func DefaultLatencyBuckets() []float64 {
	bounds := make([]float64, 28)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// FractionBuckets returns histogram bounds for ratios in [0, 1] (e.g. the
// dirty fraction of incremental forward inference): 0 exactly, then 20
// linear 0.05-wide buckets up to 1. The zero bucket isolates quiet steps —
// cache reuse with no recomputation — from steps that touched any node.
func FractionBuckets() []float64 {
	bounds := make([]float64, 21)
	for i := 1; i < len(bounds); i++ {
		bounds[i] = float64(i) * 0.05
	}
	return bounds
}

// BatchSizeBuckets returns histogram bounds for micro-batch sizes: doubling
// integer bounds 1, 2, 4, ... 1024. Sizes above the last bound land in the
// implicit +Inf bucket.
func BatchSizeBuckets() []float64 {
	bounds := make([]float64, 11)
	b := 1.0
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram. Observations are recorded
// with atomic adds only (one bucket increment, one count increment, one CAS
// loop for the float sum), so it is safe and cheap to call from concurrent
// goroutines. Bucket bounds are upper bounds in seconds; an implicit +Inf
// bucket catches the overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits of the sum of observations
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds). Pass DefaultLatencyBuckets() for step-phase latencies.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one observation (seconds).
func (h *Histogram) Observe(v float64) {
	// Binary search the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Snapshot is a point-in-time copy of a histogram's state. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type Snapshot struct {
	Count  int64
	Sum    float64 // seconds
	Bounds []float64
	Counts []int64
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observation in seconds (0 before any observation).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observations from
// the bucket counts, interpolating linearly inside the landing bucket (from
// 0 for the first bucket). Observations in the +Inf bucket are reported as
// the last finite bound. Returns 0 before any observation. The estimate's
// resolution is the bucket width — good enough for p50/p99 latency
// reporting, which is what it exists for.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(s.Bounds[i]-lower)
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ---- Prometheus text exposition format ----

// WriteHeader emits the # HELP and # TYPE lines for a metric.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteValue emits one sample line. labels is either empty or a
// comma-separated label list without braces (e.g. `phase="train"`).
func WriteValue(w io.Writer, name, labels string, value float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(value))
}

// WriteIntValue emits one sample line with an integer value.
func WriteIntValue(w io.Writer, name, labels string, value int64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %d\n", name, labels, value)
}

// WriteIndexedIntValues emits one sample line per element of vals, labeled
// label="i" — the shape of per-shard series (shard="0", shard="1", ...).
func WriteIndexedIntValues(w io.Writer, name, label string, vals []int64) {
	for i, v := range vals {
		WriteIntValue(w, name, fmt.Sprintf("%s=%q", label, fmt.Sprint(i)), v)
	}
}

// WriteHistogram emits the _bucket/_sum/_count series of a histogram
// snapshot in Prometheus cumulative form. labels (may be empty) is merged
// with the per-bucket le label.
func WriteHistogram(w io.Writer, name, labels string, s Snapshot) {
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		WriteIntValue(w, name+"_bucket", joinLabels(labels, fmt.Sprintf(`le="%s"`, formatFloat(b))), cum)
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	WriteIntValue(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), cum)
	WriteValue(w, name+"_sum", labels, s.Sum)
	WriteIntValue(w, name+"_count", labels, s.Count)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
