package obs

import "testing"

func TestSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// One observation in the first bucket, two in the second, one overflow.
	for _, v := range []float64{5, 15, 15, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// rank 2 lands halfway through the (10, 20] bucket.
	if got := s.Quantile(0.5); got != 15 {
		t.Fatalf("p50 = %v, want 15", got)
	}
	// The +Inf bucket is reported as the last finite bound.
	if got := s.Quantile(1); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	// Out-of-range q is clamped.
	if got := s.Quantile(2); got != 40 {
		t.Fatalf("clamped q>1 = %v, want 40", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("clamped q<0 = %v, want 0", got)
	}
}

func TestBatchSizeBuckets(t *testing.T) {
	b := BatchSizeBuckets()
	if len(b) != 11 || b[0] != 1 || b[10] != 1024 {
		t.Fatalf("BatchSizeBuckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bounds not doubling: %v", b)
		}
	}
}
