package drift

import (
	"math/rand"
	"testing"
)

// stepSignal emits noisy values at level lo for n steps, then at hi.
func stepSignal(rng *rand.Rand, lo, hi float64, n, m int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, lo+0.05*rng.NormFloat64())
	}
	for i := 0; i < m; i++ {
		out = append(out, hi+0.05*rng.NormFloat64())
	}
	return out
}

func detectAt(d Detector, xs []float64) int {
	for i, x := range xs {
		if d.Add(x) {
			return i
		}
	}
	return -1
}

func TestPageHinkleyDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := stepSignal(rng, 1, 5, 30, 20)
	at := detectAt(NewPageHinkley(0.1, 2), xs)
	if at < 30 {
		t.Fatalf("false positive at %d", at)
	}
	if at < 0 || at > 36 {
		t.Fatalf("shift at step 30 detected at %d", at)
	}
}

func TestPageHinkleyQuietOnStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewPageHinkley(0.1, 5)
	for i := 0; i < 500; i++ {
		if d.Add(1 + 0.05*rng.NormFloat64()) {
			t.Fatalf("false positive on stationary signal at %d", i)
		}
	}
}

func TestPageHinkleyResetsAfterDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewPageHinkley(0.1, 2)
	xs := stepSignal(rng, 1, 5, 20, 10)
	if detectAt(d, xs) < 0 {
		t.Fatal("first shift missed")
	}
	// After reset, a fresh shift is detected again.
	xs2 := stepSignal(rng, 5, 15, 20, 10)
	if detectAt(d, xs2) < 0 {
		t.Fatal("second shift missed after reset")
	}
}

func TestPageHinkleyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPageHinkley(-1, 1)
}

func TestWindowShiftDetects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := stepSignal(rng, 1, 3, 30, 20)
	at := detectAt(NewWindowShift(8, 4), xs)
	if at < 30 {
		t.Fatalf("false positive at %d", at)
	}
	if at < 0 || at > 45 {
		t.Fatalf("shift detected at %d", at)
	}
}

func TestWindowShiftQuietOnStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewWindowShift(8, 6)
	for i := 0; i < 500; i++ {
		if d.Add(2 + 0.1*rng.NormFloat64()) {
			t.Fatalf("false positive at %d", i)
		}
	}
}

func TestWindowShiftConstantReference(t *testing.T) {
	// Zero-variance reference must not divide by zero; a clear shift still
	// registers.
	d := NewWindowShift(4, 3)
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 9}
	if detectAt(d, xs) != 7 {
		t.Fatal("shift from constant reference missed")
	}
}

func TestWindowShiftValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindowShift(1, 1)
}
