// Package drift provides online concept-drift detectors over the engine's
// per-step query loss. The paper's Figure 4 shows that graph streams drift
// and that a stale model's error spikes at regime boundaries; a detector
// turns those spikes into explicit signals that an operator (or an adaptive
// training schedule) can act on — e.g. temporarily raising the training
// budget, as the extension example in cmd/queryd demonstrates.
package drift

import (
	"fmt"
	"math"
)

// Detector consumes one observation per step and reports drift.
type Detector interface {
	// Add consumes the step's observation (e.g. mean query loss) and
	// reports whether a drift was detected at this step.
	Add(x float64) bool
	// Reset clears all detector state.
	Reset()
}

// PageHinkley is the Page-Hinkley test, a sequential changepoint detector
// for increases in the mean of a signal: it accumulates deviations above the
// running mean (minus a tolerance delta) and signals when the accumulation
// exceeds threshold lambda.
type PageHinkley struct {
	// Delta is the tolerated deviation magnitude (absorbs noise).
	//streamlint:ckpt-exempt detection tuning is configuration, rebuilt from Config on resume
	Delta float64
	// Lambda is the detection threshold on the cumulative statistic.
	//streamlint:ckpt-exempt detection tuning is configuration, rebuilt from Config on resume
	Lambda float64
	// MinSamples is the warm-up length before detection can fire.
	//streamlint:ckpt-exempt detection tuning is configuration, rebuilt from Config on resume
	MinSamples int

	n    int
	mean float64
	cum  float64
	min  float64
}

// NewPageHinkley returns a detector with the given tolerance and threshold.
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	if delta < 0 || lambda <= 0 {
		panic(fmt.Sprintf("drift: invalid PageHinkley(delta=%v, lambda=%v)", delta, lambda))
	}
	return &PageHinkley{Delta: delta, Lambda: lambda, MinSamples: 5}
}

// Add implements Detector.
func (p *PageHinkley) Add(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.cum += x - p.mean - p.Delta
	if p.cum < p.min {
		p.min = p.cum
	}
	if p.n >= p.MinSamples && p.cum-p.min > p.Lambda {
		p.Reset()
		return true
	}
	return false
}

// Reset implements Detector.
func (p *PageHinkley) Reset() {
	p.n, p.mean, p.cum, p.min = 0, 0, 0, 0
}

// PageHinkleyState is a checkpointable snapshot of the detector's running
// statistics.
type PageHinkleyState struct {
	N    int
	Mean float64
	Cum  float64
	Min  float64
}

// State captures the detector's running statistics for checkpointing.
func (p *PageHinkley) State() PageHinkleyState {
	return PageHinkleyState{N: p.n, Mean: p.mean, Cum: p.cum, Min: p.min}
}

// RestoreState restores statistics captured with State.
func (p *PageHinkley) RestoreState(s PageHinkleyState) {
	p.n, p.mean, p.cum, p.min = s.N, s.Mean, s.Cum, s.Min
}

// WindowShift detects drift by comparing the means of two adjacent sliding
// windows (reference vs. recent): a shift larger than Factor× the reference
// window's standard deviation signals drift. Simpler and more interpretable
// than Page-Hinkley, at the cost of a detection delay of about Window steps.
type WindowShift struct {
	// Window is the length of each of the two compared windows.
	Window int
	// Factor is the shift threshold in reference-window std units.
	Factor float64

	buf []float64
}

// NewWindowShift returns a detector comparing two windows of length window.
func NewWindowShift(window int, factor float64) *WindowShift {
	if window < 2 || factor <= 0 {
		panic(fmt.Sprintf("drift: invalid WindowShift(window=%d, factor=%v)", window, factor))
	}
	return &WindowShift{Window: window, Factor: factor}
}

// Add implements Detector.
func (w *WindowShift) Add(x float64) bool {
	w.buf = append(w.buf, x)
	if len(w.buf) > 2*w.Window {
		w.buf = w.buf[1:]
	}
	if len(w.buf) < 2*w.Window {
		return false
	}
	ref := w.buf[:w.Window]
	rec := w.buf[w.Window:]
	refMean, refStd := meanStd(ref)
	recMean, _ := meanStd(rec)
	if refStd < 1e-12 {
		refStd = 1e-12
	}
	if math.Abs(recMean-refMean) > w.Factor*refStd {
		w.Reset()
		return true
	}
	return false
}

// Reset implements Detector.
func (w *WindowShift) Reset() { w.buf = w.buf[:0] }

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sq / float64(len(xs)))
}
