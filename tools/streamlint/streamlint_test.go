package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"streamgnn/tools/streamlint/internal/analysistest"
	"streamgnn/tools/streamlint/internal/checks/atomalign"
	"streamgnn/tools/streamlint/internal/checks/atommix"
	"streamgnn/tools/streamlint/internal/checks/ckptstate"
	"streamgnn/tools/streamlint/internal/checks/detorder"
	"streamgnn/tools/streamlint/internal/checks/lockfree"
	"streamgnn/tools/streamlint/internal/checks/poolsafe"
	"streamgnn/tools/streamlint/internal/checks/snapimmut"
)

var fixtureRoot = filepath.Join("testdata", "src")

func TestDetOrderFixtures(t *testing.T) {
	analysistest.Run(t, fixtureRoot, detorder.Analyzer, "detorder/a")
}

func TestDetOrderBatchQueryScope(t *testing.T) {
	// internal/query (home of the batched serving path) is inside the
	// determinism scope: pending-batch maps must be collected then sorted.
	analysistest.Run(t, fixtureRoot, detorder.Analyzer, "streamgnn/internal/query")
}

func TestDetOrderScopedOut(t *testing.T) {
	// internal/bench is outside the determinism scope: the same constructs
	// that fire in detorder/a must stay silent there.
	analysistest.Run(t, fixtureRoot, detorder.Analyzer, "streamgnn/internal/bench")
}

func TestPoolSafeFixtures(t *testing.T) {
	analysistest.Run(t, fixtureRoot, poolsafe.Analyzer, "poolsafe/a")
}

func TestCkptStateFixtures(t *testing.T) {
	analysistest.Run(t, fixtureRoot, ckptstate.Analyzer, "ckptstate/a")
}

func TestAtomAlignFixtures(t *testing.T) {
	analysistest.Run(t, fixtureRoot, atomalign.Analyzer, "atomalign/a")
}

func TestLockfreeFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureRoot, lockfree.Analyzer, "lockfree/a")
}

func TestSnapImmutFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureRoot, snapimmut.Analyzer, "snapimmut/a")
}

func TestAtomMixFixtures(t *testing.T) {
	// atommix/a plainly reads a counter its dependency atommix/b writes
	// atomically; loading a's program pulls b in, and the cross-package mix
	// is caught program-wide.
	analysistest.RunProgram(t, fixtureRoot, atommix.Analyzer, "atommix/a")
}

// buildTool compiles the streamlint binary once for the protocol tests.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "streamlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building streamlint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneCleanTree is the acceptance gate: the suite must exit 0 over
// the repository's own packages.
func TestStandaloneCleanTree(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("streamlint over the tree: %v\n%s", err, out)
	}
}

// TestStandaloneFindsSeededViolation proves the standalone binary actually
// reports diagnostics (exit 2) on code that violates an invariant.
func TestStandaloneFindsSeededViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	src := `package bad

func keys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`
	writeModule(t, dir, src)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 with findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "randomized iteration order") {
		t.Fatalf("missing detorder diagnostic:\n%s", out)
	}
}

// seededLockfree is a module that annotates a serving function lock-free
// and then reaches a mutex two calls down.
const seededLockfree = `package bad

import "sync"

var mu sync.Mutex

//streamlint:lockfree
func Serve() int {
	return helper()
}

func helper() int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}
`

// TestStandaloneFindsSeededLockfreeViolation mirrors the CI self-test: a
// mutex acquisition behind a lockfree annotation must fail the run, and the
// diagnostic must spell out the whole call chain.
func TestStandaloneFindsSeededLockfreeViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeModule(t, dir, seededLockfree)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 with findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "call chain: example.com/scratch.Serve -> example.com/scratch.helper -> (*sync.Mutex).Lock") {
		t.Fatalf("missing lockfree call chain:\n%s", out)
	}
}

// TestStandaloneFindsSeededAtomMixViolation seeds a plain read of an
// atomically written counter.
func TestStandaloneFindsSeededAtomMixViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeModule(t, dir, `package bad

import "sync/atomic"

type stats struct{ ops int64 }

var s stats

func bump() { atomic.AddInt64(&s.ops, 1) }

func read() int64 { return s.ops }
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 with findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "atommix") || !strings.Contains(string(out), "accessed atomically") {
		t.Fatalf("missing atommix diagnostic:\n%s", out)
	}
}

// TestStandaloneFindsSeededSnapImmutViolation seeds a Set on a published
// matrix.
func TestStandaloneFindsSeededSnapImmutViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeModule(t, dir, `package bad

type Matrix struct{ Data []float64 }

func (m *Matrix) Set(i int, v float64) { m.Data[i] = v }

type store struct{ emb *Matrix }

func (s *store) Publish() *Matrix { return s.emb }

func corrupt(s *store) {
	m := s.Publish()
	m.Set(0, 1)
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 with findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "snapimmut") || !strings.Contains(string(out), "derived from Publish()") {
		t.Fatalf("missing snapimmut diagnostic:\n%s", out)
	}
}

// TestStandaloneJSON checks the -json satellite: stdout carries the sorted
// diagnostic array with the lockfree chain, machine-readable for CI diffs.
func TestStandaloneJSON(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeModule(t, dir, seededLockfree)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	stdout, err := cmd.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 with findings, got err=%v\n%s", err, stdout)
	}
	var diags []struct {
		File     string   `json:"file"`
		Line     int      `json:"line"`
		Col      int      `json:"col"`
		Analyzer string   `json:"analyzer"`
		Message  string   `json:"message"`
		Chain    []string `json:"chain"`
	}
	if err := json.Unmarshal(stdout, &diags); err != nil {
		t.Fatalf("parsing -json output: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics in JSON output")
	}
	found := false
	for _, d := range diags {
		if d.Analyzer != "lockfree" {
			continue
		}
		found = true
		if d.File == "" || d.Line == 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
		want := []string{"example.com/scratch.Serve", "example.com/scratch.helper", "(*sync.Mutex).Lock"}
		if len(d.Chain) != len(want) {
			t.Fatalf("chain = %v, want %v", d.Chain, want)
		}
		for i := range want {
			if d.Chain[i] != want[i] {
				t.Fatalf("chain = %v, want %v", d.Chain, want)
			}
		}
	}
	if !found {
		t.Fatalf("no lockfree diagnostic in JSON output: %s", stdout)
	}
}

// TestVettoolProtocol runs the binary the way cmd/go does: `go vet
// -vettool=streamlint`, exercising the -V/-flags probes and the *.cfg unit
// protocol end to end.
func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	src := `package bad

import "time"

func now() time.Time {
	return time.Now()
}
`
	writeModule(t, dir, src)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet should fail on a time.Now violation, output:\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now on a seeded deterministic path") {
		t.Fatalf("missing detorder diagnostic under vettool protocol:\n%s", out)
	}

	// And a clean package passes.
	writeModule(t, dir, "package bad\n\nfunc ok() int { return 1 }\n")
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet on clean package: %v\n%s", err, out)
	}
}

// writeModule lays out a single-file module named like an in-scope streamgnn
// package, so detorder's scoping applies to it.
func writeModule(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
