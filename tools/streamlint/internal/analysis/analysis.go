// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a check, a
// Pass hands it one type-checked package, and diagnostics flow back through
// Pass.Reportf. The repository cannot vendor x/tools (builds must work
// offline), so streamlint carries this ~150-line substitute instead; the
// analyzer source is written so that a later migration to the real
// go/analysis API is a mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one streamlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer with one type-checked package and a sink for
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)

	// directives is the lazily built per-file index of streamlint comment
	// directives, keyed by file name then line number.
	directives map[string]map[int][]directive
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// directive is one parsed //streamlint:<name> <justification> comment.
type directive struct {
	name   string
	reason string
}

// DirectivePrefix is the comment marker shared by every escape hatch.
const DirectivePrefix = "//streamlint:"

// Directive reports whether a `//streamlint:<name> <justification>` comment
// with a non-empty justification is attached to the line of pos or to the
// line immediately above it. A directive without a justification never
// suppresses anything: the invariant may only be waived for a stated reason.
func (p *Pass) Directive(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = make(map[string]map[int][]directive)
		for _, f := range p.Files {
			position := p.Fset.Position(f.Pos())
			byLine := make(map[int][]directive)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					byLine[p.Fset.Position(c.Pos()).Line] = append(byLine[p.Fset.Position(c.Pos()).Line], d)
				}
			}
			p.directives[position.Filename] = byLine
		}
	}
	at := p.Fset.Position(pos)
	byLine := p.directives[at.Filename]
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == name && d.reason != "" {
				return true
			}
		}
	}
	return false
}

func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	return directive{name: name, reason: strings.TrimSpace(reason)}, name != ""
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves the *types.Func a call expression invokes (package
// function or method), or nil for indirect calls, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// PkgPathOf returns the import path of fn's package ("" for builtins).
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
