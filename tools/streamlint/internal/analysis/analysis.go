// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer holds a check, a
// Pass hands it one type-checked package, and diagnostics flow back through
// Pass.Reportf. The repository cannot vendor x/tools (builds must work
// offline), so streamlint carries this ~300-line substitute instead; the
// analyzer source is written so that a later migration to the real
// go/analysis API is a mechanical rename.
//
// Two analyzer shapes exist: Analyzer checks one package at a time (the
// x/tools unit model), while ProgramAnalyzer receives every loaded package
// at once so it can reason interprocedurally — call graphs, cross-package
// taint, whole-program access-discipline checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one streamlint check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass provides one analyzer with one type-checked package and a sink for
// its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)

	// directives is the lazily built per-file index of streamlint comment
	// directives.
	directives directiveIndex
}

// Unit is one type-checked package inside a whole-program pass.
type Unit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ProgramAnalyzer describes one whole-program streamlint check: its Run sees
// every loaded package at once, so it can build call graphs and follow flows
// across package boundaries.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run applies the check to the whole program.
	Run func(*ProgramPass) error
}

// ProgramPass provides a ProgramAnalyzer with every loaded unit and a sink
// for its diagnostics. Units appear in load order, which is deterministic
// for a given pattern list.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Fset     *token.FileSet
	Units    []*Unit

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)

	directives directiveIndex
}

// Diagnostic is one finding. Chain, when non-empty, is the call chain from
// an annotated root to the offending site (interprocedural analyzers only).
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	Chain    []string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// ReportChainf reports a formatted diagnostic at pos carrying the call chain
// that led to it.
func (p *ProgramPass) ReportChainf(pos token.Pos, chain []string, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name, Chain: chain})
}

// directive is one parsed //streamlint:<name> <justification> comment.
type directive struct {
	name   string
	reason string
}

// directiveIndex maps file name then line number to the directives on that
// line.
type directiveIndex map[string]map[int][]directive

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File, idx directiveIndex) {
	for _, f := range files {
		position := fset.Position(f.Pos())
		byLine := idx[position.Filename]
		if byLine == nil {
			byLine = make(map[int][]directive)
			idx[position.Filename] = byLine
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				byLine[line] = append(byLine[line], d)
			}
		}
	}
}

// at reports whether a directive named name sits on the line of pos or the
// line immediately above it. requireReason enforces the escape-hatch rule:
// an exemption without a stated justification never suppresses anything.
func (idx directiveIndex) at(fset *token.FileSet, pos token.Pos, name string, requireReason bool) bool {
	at := fset.Position(pos)
	byLine := idx[at.Filename]
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == name && (!requireReason || d.reason != "") {
				return true
			}
		}
	}
	return false
}

// DirectivePrefix is the comment marker shared by every escape hatch.
const DirectivePrefix = "//streamlint:"

// Directive reports whether a `//streamlint:<name> <justification>` comment
// with a non-empty justification is attached to the line of pos or to the
// line immediately above it. A directive without a justification never
// suppresses anything: the invariant may only be waived for a stated reason.
func (p *Pass) Directive(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = make(directiveIndex)
		buildDirectiveIndex(p.Fset, p.Files, p.directives)
	}
	return p.directives.at(p.Fset, pos, name, true)
}

func (p *ProgramPass) index() directiveIndex {
	if p.directives == nil {
		p.directives = make(directiveIndex)
		for _, u := range p.Units {
			buildDirectiveIndex(p.Fset, u.Files, p.directives)
		}
	}
	return p.directives
}

// Directive is the whole-program counterpart of Pass.Directive: an escape
// hatch with a non-empty justification on the line of pos or the line above.
func (p *ProgramPass) Directive(pos token.Pos, name string) bool {
	return p.index().at(p.Fset, pos, name, true)
}

// Marked reports whether a bare `//streamlint:<name>` marker is attached to
// the line of pos or the line above it. Unlike Directive, no justification
// is required: markers declare an obligation (e.g. lockfree roots, the step
// loop), they do not waive one.
func (p *ProgramPass) Marked(pos token.Pos, name string) bool {
	return p.index().at(p.Fset, pos, name, false)
}

func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	return directive{name: name, reason: strings.TrimSpace(reason)}, name != ""
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *ProgramPass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves the *types.Func a call expression invokes (package
// function or method), or nil for indirect calls, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// PkgPathOf returns the import path of fn's package ("" for builtins).
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
