// Package analysistest runs a streamlint analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want "regexp"` comment
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line may carry one or more expectations:
//
//	for k := range m { // want `keys .* consumed without sorting`
//
// Each quoted (or backquoted) string is a regular expression that must match
// the message of exactly one diagnostic reported on that line; diagnostics
// with no matching expectation, and expectations with no matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"streamgnn/tools/streamlint/internal/analysis"
	"streamgnn/tools/streamlint/internal/load"
)

// expectation is one `// want` pattern anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from root (a testdata/src directory), runs
// the analyzer over it, and reports any mismatch between diagnostics and
// expectations as test errors.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		pkg, fset, err := load.Fixture(root, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		expects, err := expectations(fset, pkg.Files)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", path, err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if !claim(expects, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
			}
		}
	}
}

// RunProgram loads the fixture packages (plus any fixture dependencies they
// import) as one program, runs the whole-program analyzer once over it, and
// checks diagnostics against the `// want` expectations of every loaded
// fixture file — dependency fixtures included, so cross-package cases can
// anchor expectations in either package.
func RunProgram(t *testing.T, root string, a *analysis.ProgramAnalyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, fset, err := load.FixtureProgram(root, pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixture program %v: %v", pkgPaths, err)
	}
	var units []*analysis.Unit
	var files []*ast.File
	for _, p := range pkgs {
		units = append(units, &analysis.Unit{Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info})
		files = append(files, p.Files...)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.ProgramPass{
		Analyzer: a,
		Fset:     fset,
		Units:    units,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %v: %v", a.Name, pkgPaths, err)
	}
	expects, err := expectations(fset, files)
	if err != nil {
		t.Fatalf("parsing want comments in %v: %v", pkgPaths, err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose pattern
// matches msg, reporting whether one existed.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// expectations extracts every `// want` comment from the files.
func expectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitPatterns(text)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad pattern %q: %v", pos, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of space-separated quoted or backquoted
// strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want pattern must be quoted: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern: %q", s)
		}
		raw := s[:end+2]
		unquoted, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %s: %v", raw, err)
		}
		out = append(out, unquoted)
		s = s[end+2:]
	}
}
