package callgraph

import (
	"path/filepath"
	"testing"

	"streamgnn/tools/streamlint/internal/analysis"
	"streamgnn/tools/streamlint/internal/load"
)

// buildFixture loads the callgraph fixture package and builds its graph.
func buildFixture(t *testing.T) *Graph {
	t.Helper()
	root := filepath.Join("..", "..", "testdata", "src")
	pkgs, _, err := load.FixtureProgram(root, "callgraph/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var units []*analysis.Unit
	for _, p := range pkgs {
		units = append(units, &analysis.Unit{Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info})
	}
	return Build(units)
}

// edges returns the set of callee FullNames reachable from node via edges
// of the given kinds.
func edges(n *Node, kinds ...EdgeKind) map[string]bool {
	want := make(map[EdgeKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	out := make(map[string]bool)
	for _, e := range n.Out {
		if want[e.Kind] {
			out[e.Callee.FullName] = true
		}
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	g := buildFixture(t)
	root := g.Node("callgraph/a.Root")
	if root == nil {
		t.Fatal("Root node missing")
	}
	if root.Decl == nil || root.Unit == nil {
		t.Fatal("Root should carry its declaration and unit")
	}

	static := edges(root, KindStatic)
	// Plain, deferred, goroutine and closure-body calls all attribute to
	// Root: function literals have no node of their own.
	for _, callee := range []string{
		"callgraph/a.plain",
		"callgraph/a.deferred",
		"callgraph/a.spawned",
		"callgraph/a.inClosure",
		"(callgraph/a.Doer).Do",
	} {
		if !static[callee] {
			t.Errorf("missing static edge Root -> %s (have %v)", callee, static)
		}
	}

	// The interface dispatch fans out to both implementations.
	dynamic := edges(root, KindDynamic)
	for _, callee := range []string{"(callgraph/a.A).Do", "(callgraph/a.B).Do"} {
		if !dynamic[callee] {
			t.Errorf("missing dynamic edge Root -> %s (have %v)", callee, dynamic)
		}
	}
	if dynamic["(callgraph/a.T).M"] {
		t.Error("T.M must not be a dispatch candidate for Doer.Do")
	}

	// The method value t.M is a reference edge: not called at the selector,
	// but reachable.
	refs := edges(root, KindRef)
	if !refs["(callgraph/a.T).M"] {
		t.Errorf("missing ref edge Root -> (callgraph/a.T).M (have %v)", refs)
	}
	// Ordinary call callees must not be duplicated as references.
	if refs["callgraph/a.plain"] {
		t.Error("plain() must not produce a ref edge on top of its call edge")
	}
}

func TestCallGraphDeterministic(t *testing.T) {
	g1, g2 := buildFixture(t), buildFixture(t)
	n1, n2 := g1.Nodes(), g2.Nodes()
	if len(n1) != len(n2) {
		t.Fatalf("node counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].FullName != n2[i].FullName {
			t.Fatalf("node order differs at %d: %s vs %s", i, n1[i].FullName, n2[i].FullName)
		}
		if len(n1[i].Out) != len(n2[i].Out) {
			t.Fatalf("%s: edge counts differ", n1[i].FullName)
		}
		for j := range n1[i].Out {
			if n1[i].Out[j].Callee.FullName != n2[i].Out[j].Callee.FullName {
				t.Fatalf("%s: edge %d differs", n1[i].FullName, j)
			}
		}
	}
}
