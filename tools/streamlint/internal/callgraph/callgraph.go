// Package callgraph builds a whole-program call graph over the units of a
// streamlint ProgramPass, in the CHA (class-hierarchy analysis) style:
// static calls resolve to their one callee, interface method calls fan out
// to the matching method of every named type in the program whose method
// set covers the interface. The graph is deliberately an over-approximation
// — CHA ignores which concrete types actually reach a call site — because
// the analyzers built on it (lockfree, snapimmut) enforce safety
// invariants, where false edges cost a review and missing edges cost a
// race.
//
// Nodes are keyed by types.Func.FullName() strings rather than *types.Func
// identity: the standalone loader type-checks each target package from
// source but resolves its imports from compiler export data, so the same
// function is represented by distinct objects in different type-checker
// universes. FullName ("(*sync.Mutex).Lock", "streamgnn/internal/query.
// AnswerBatch") is stable across them.
//
// Soundness limits, shared by every client: calls through plain function
// values (fields, parameters, closures passed around) produce no edge;
// reflection and unsafe are invisible; function literals are attributed to
// their enclosing declared function (a closure's body is reached whenever
// its creator runs — conservative for reachability checks). Method values
// and other references to functions outside call position produce KindRef
// edges, which reachability clients should treat as potential calls.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"streamgnn/tools/streamlint/internal/analysis"
)

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind int

const (
	// KindStatic is a direct call to a known function or concrete method.
	KindStatic EdgeKind = iota
	// KindDynamic is a CHA-resolved edge from an interface method call to
	// one possible concrete implementation.
	KindDynamic
	// KindRef is a reference outside call position: a method value bound to
	// a variable, a function passed as an argument. The function may run
	// later, so reachability analyses treat refs as calls.
	KindRef
)

// Edge is one caller→callee relationship at one source position.
type Edge struct {
	Site   token.Pos
	Kind   EdgeKind
	Callee *Node
}

// Node is one function in the program. Decl and Unit are nil for functions
// known only through export data (no source body was loaded); such nodes
// still exist so clients can test their FullName against forbidden sets.
type Node struct {
	FullName string
	Func     *types.Func
	Decl     *ast.FuncDecl
	Unit     *analysis.Unit
	Out      []Edge
}

// Graph is the whole-program call graph.
type Graph struct {
	nodes map[string]*Node
}

// Node returns the node with the given FullName, or nil.
func (g *Graph) Node(fullName string) *Node { return g.nodes[fullName] }

// NodeOf returns the node for fn, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.FullName()]
}

// Nodes returns every node sorted by FullName, for deterministic iteration.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName < out[j].FullName })
	return out
}

// Build constructs the call graph over units. Construction order — units,
// then files, then declarations, then AST traversal — is fully
// deterministic, so edge order (and therefore every chain a client prints)
// is reproducible run to run.
func Build(units []*analysis.Unit) *Graph {
	g := &Graph{nodes: make(map[string]*Node)}

	// Pass 1: register every declared function, and collect the named types
	// declared in source — the CHA candidate set for interface dispatch.
	var named []*types.Named
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := u.Info.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					n := g.ensure(fn)
					n.Decl = d
					n.Unit = u
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						obj, _ := u.Info.Defs[ts.Name].(*types.TypeName)
						if obj == nil || obj.IsAlias() {
							continue
						}
						if nt, ok := obj.Type().(*types.Named); ok {
							named = append(named, nt)
						}
					}
				}
			}
		}
	}

	// Pass 2: walk every function body and record edges.
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := u.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.addEdges(g.ensure(fn), u, fd.Body, named)
			}
		}
	}
	return g
}

// ensure returns the node for fn, creating a bodiless one if needed.
func (g *Graph) ensure(fn *types.Func) *Node {
	key := fn.FullName()
	n := g.nodes[key]
	if n == nil {
		n = &Node{FullName: key, Func: fn}
		g.nodes[key] = n
	}
	return n
}

// addEdges records every call and function reference in body as outgoing
// edges of caller. Function literals are not given their own nodes: their
// bodies are traversed as part of the enclosing declaration, so a deferred
// closure or a goroutine body contributes edges to its creator.
func (g *Graph) addEdges(caller *Node, u *analysis.Unit, body ast.Node, named []*types.Named) {
	// callFuns marks the Fun expression of each call so the reference walk
	// below does not double-report it as a KindRef edge.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		callFuns[fun] = true
		fn := analysis.CalleeFunc(u.Info, call)
		if fn == nil {
			return true // indirect call, conversion, or builtin
		}
		if iface := interfaceRecv(u.Info, fun); iface != nil {
			// Interface dispatch: an edge to the interface method itself
			// (its FullName may be in a client's forbidden set) plus CHA
			// edges to every candidate implementation.
			g.link(caller, call.Pos(), KindStatic, fn)
			for _, impl := range implementations(iface, fn.Name(), named) {
				g.link(caller, call.Pos(), KindDynamic, impl)
			}
			return true
		}
		g.link(caller, call.Pos(), KindStatic, fn)
		return true
	})

	// Reference walk: method values and function identifiers outside call
	// position. The Sel ident of every selector is skipped — the selector
	// node itself accounts for it, whether as a call or a reference.
	selIdents := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		var fn *types.Func
		var site token.Pos
		switch e := n.(type) {
		case *ast.SelectorExpr:
			selIdents[e.Sel] = true
			if callFuns[e] {
				return true
			}
			fn, _ = u.Info.Uses[e.Sel].(*types.Func)
			site = e.Pos()
		case *ast.Ident:
			if callFuns[e] || selIdents[e] {
				return true
			}
			fn, _ = u.Info.Uses[e].(*types.Func)
			site = e.Pos()
		default:
			return true
		}
		if fn == nil {
			return true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if iface := interfaceRecv(u.Info, sel); iface != nil {
				g.link(caller, site, KindRef, fn)
				for _, impl := range implementations(iface, fn.Name(), named) {
					g.link(caller, site, KindRef, impl)
				}
				return true
			}
		}
		g.link(caller, site, KindRef, fn)
		return true
	})
}

func (g *Graph) link(caller *Node, site token.Pos, kind EdgeKind, callee *types.Func) {
	caller.Out = append(caller.Out, Edge{Site: site, Kind: kind, Callee: g.ensure(callee)})
}

// interfaceRecv returns the interface type a method expression selects
// through, or nil when fun is not an interface method selection.
func interfaceRecv(info *types.Info, fun ast.Expr) *types.Interface {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil
	}
	recv := selection.Recv()
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// implementations returns, for every candidate named type whose method set
// covers iface, the concrete method with the given name. Matching is by
// method-set names rather than types.Implements: named types loaded from
// source and the same types seen through export data are distinct objects,
// so identity-based checks fail across universes. Name matching
// over-approximates (two interfaces with the same method names conflate),
// which is the safe direction for invariant checking.
func implementations(iface *types.Interface, method string, named []*types.Named) []*types.Func {
	want := make(map[string]bool, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		want[iface.Method(i).Name()] = true
	}
	var out []*types.Func
	for _, nt := range named {
		if types.IsInterface(nt) {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(nt))
		have := make(map[string]*types.Func, ms.Len())
		for i := 0; i < ms.Len(); i++ {
			if fn, ok := ms.At(i).Obj().(*types.Func); ok {
				have[fn.Name()] = fn
			}
		}
		covered := true
		for name := range want {
			if have[name] == nil {
				covered = false
				break
			}
		}
		if covered && have[method] != nil {
			out = append(out, have[method])
		}
	}
	return out
}
