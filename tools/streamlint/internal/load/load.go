// Package load type-checks Go packages for streamlint without any
// dependency beyond the standard library and the go command. Two loaders
// are provided:
//
//   - Packages resolves package patterns with `go list -deps -export`,
//     parses the target packages from source, and satisfies every import —
//     standard library and intra-module alike — from the compiler export
//     data the go command materialized in the build cache. This works fully
//     offline and never type-checks a dependency from source.
//
//   - Fixture loads GOPATH-style fixture trees for analysistest: imports
//     resolve against the fixture root first and fall back to export data
//     for the standard library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"streamgnn/tools/streamlint/internal/analysis"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
}

const listFields = "ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly"

// goList runs `go list -deps -export -json` over args and decodes the
// package stream.
func goList(dir string, args []string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=" + listFields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies imports from a path→export-file map using the
// standard library's gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Packages loads and type-checks the packages matching patterns (resolved
// relative to dir; empty dir means the current directory).
func Packages(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			// Cgo packages cannot be parsed as plain Go; none exist in this
			// repository, so skipping is safer than mis-typechecking.
			continue
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkg, info, err := check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{Path: t.ImportPath, Files: files, Types: pkg, Info: info})
	}
	return out, fset, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := analysis.NewInfo()
	pkg, _ := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return pkg, info, nil
}

// ---- fixture loading (analysistest) ----

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

// stdlibExports materializes export data for the standard-library packages
// fixtures may import. One `go list std` covers them all; the result is
// cached for the life of the test process.
func stdlibExports() (map[string]string, error) {
	stdExportsOnce.Do(func() {
		pkgs, err := goList("", []string{"std"})
		if err != nil {
			stdExportsErr = err
			return
		}
		stdExports = make(map[string]string, len(pkgs))
		for _, p := range pkgs {
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	return stdExports, stdExportsErr
}

// fixtureImporter resolves imports against a GOPATH-style fixture tree
// first, then against standard-library export data.
type fixtureImporter struct {
	root   string // the testdata/src directory
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package
}

// Import implements types.Importer.
func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, err := fi.load(path); err != nil {
		return nil, err
	} else if p != nil {
		return p.Types, nil
	}
	return fi.std.Import(path)
}

// load parses and type-checks the fixture package at root/path, or returns
// (nil, nil) when no such directory exists.
func (fi *fixtureImporter) load(path string) (*Package, error) {
	if p, ok := fi.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil // not a fixture package; caller falls back to stdlib
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}
	files, err := parseFiles(fi.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := check(fi.fset, path, files, fi)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	p := &Package{Path: path, Files: files, Types: pkg, Info: info}
	fi.loaded[path] = p
	return p, nil
}

// Fixture loads the fixture package at root/<path> (root is a GOPATH-style
// src directory, typically testdata/src).
func Fixture(root, path string) (*Package, *token.FileSet, error) {
	pkgs, fset, err := FixtureProgram(root, path)
	if err != nil {
		return nil, nil, err
	}
	return pkgs[0], fset, nil
}

// FixtureProgram loads the fixture packages at root/<paths> plus every
// fixture dependency they pulled in, as one program sharing a FileSet —
// the whole-program analyzers need all units at once. The requested
// packages come first in request order; dependencies follow sorted by
// import path.
func FixtureProgram(root string, paths ...string) ([]*Package, *token.FileSet, error) {
	std, err := stdlibExports()
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	fi := &fixtureImporter{root: root, fset: fset, std: exportImporter(fset, std), loaded: make(map[string]*Package)}
	var out []*Package
	requested := make(map[string]bool, len(paths))
	for _, path := range paths {
		p, err := fi.load(path)
		if err != nil {
			return nil, nil, err
		}
		if p == nil {
			return nil, nil, fmt.Errorf("no fixture package at %s", filepath.Join(root, path))
		}
		requested[path] = true
		out = append(out, p)
	}
	var deps []string
	for path := range fi.loaded {
		if !requested[path] {
			deps = append(deps, path)
		}
	}
	sort.Strings(deps)
	for _, path := range deps {
		out = append(out, fi.loaded[path])
	}
	return out, fset, nil
}
