// Package lockfree enforces the no-stall serving guarantee mechanically:
// any function annotated `//streamlint:lockfree` must not transitively
// acquire a sync.Mutex or sync.RWMutex, and must not call into the engine
// step loop (any function marked `//streamlint:steploop`). The serving-path
// roots — QuerySnapshot.Answer, QuerySnapshot.Density, the serve.Batcher
// flush path — ride published snapshots precisely so they never contend
// with Step; a lock sneaking into that path silently reintroduces the stall
// the design exists to avoid (DESIGN.md §13).
//
// The check walks the whole-program call graph (see internal/callgraph)
// breadth-first from each annotated root, so diagnostics carry the
// shortest offending call chain. Justified exceptions are waived with
// `//streamlint:lockfree-exempt <reason>` on the callee declaration (the
// whole function is trusted) or on the call site (one edge is trusted);
// the justification must be non-empty.
//
// Known blind spots, inherited from the call graph: calls through plain
// function values produce no edge (the Batcher's answer callback is wired
// at construction and audited by the fixture suite instead), and locks
// taken inside bodiless stdlib functions other than the sync methods
// themselves (e.g. the slow path of sync.Once.Do) are invisible.
package lockfree

import (
	"go/ast"
	"go/types"
	"strings"

	"streamgnn/tools/streamlint/internal/analysis"
	"streamgnn/tools/streamlint/internal/callgraph"
)

// Analyzer is the lockfree check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "lockfree",
	Doc:  "functions marked //streamlint:lockfree must not transitively acquire sync locks or call the engine step loop",
	Run:  run,
}

const (
	marker     = "lockfree"
	stepMarker = "steploop"
	exempt     = "lockfree-exempt"
)

// forbidden is the set of lock-acquisition functions, by FullName. Unlock
// is deliberately absent: an unlock without a matching lock is a crash the
// race detector and tests catch on the first run, while a silent lock is
// the latent stall this analyzer exists for.
var forbidden = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

type queueItem struct {
	node  *callgraph.Node
	chain []string
}

func run(pass *analysis.ProgramPass) error {
	graph := callgraph.Build(pass.Units)
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !pass.Marked(fd.Pos(), marker) {
					continue
				}
				fn, _ := u.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if root := graph.NodeOf(fn); root != nil {
					check(pass, graph, root)
				}
			}
		}
	}
	return nil
}

// check walks breadth-first from root, reporting the shortest chain to each
// distinct forbidden callee.
func check(pass *analysis.ProgramPass, graph *callgraph.Graph, root *callgraph.Node) {
	visited := map[*callgraph.Node]bool{root: true}
	reported := map[string]bool{}
	queue := []queueItem{{node: root, chain: []string{root.FullName}}}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		for _, edge := range item.node.Out {
			callee := edge.Callee
			if pass.Directive(edge.Site, exempt) {
				continue // the call site carries a justified waiver
			}
			if callee.Decl != nil && pass.Directive(callee.Decl.Pos(), exempt) {
				continue // the whole callee carries a justified waiver
			}
			chain := append(append([]string{}, item.chain...), callee.FullName)
			switch {
			case forbidden[callee.FullName]:
				if !reported[callee.FullName+"|"+pass.Fset.Position(edge.Site).String()] {
					reported[callee.FullName+"|"+pass.Fset.Position(edge.Site).String()] = true
					pass.ReportChainf(root.Decl.Name.Pos(), chain,
						"%s is annotated //streamlint:lockfree but transitively acquires %s (at %s): call chain: %s",
						root.FullName, callee.FullName, pass.Fset.Position(edge.Site), strings.Join(chain, " -> "))
				}
			case callee.Decl != nil && pass.Marked(callee.Decl.Pos(), stepMarker):
				if !reported["step|"+callee.FullName] {
					reported["step|"+callee.FullName] = true
					pass.ReportChainf(root.Decl.Name.Pos(), chain,
						"%s is annotated //streamlint:lockfree but transitively calls step-loop function %s: call chain: %s",
						root.FullName, callee.FullName, strings.Join(chain, " -> "))
				}
			case callee.Decl != nil && !visited[callee]:
				visited[callee] = true
				queue = append(queue, queueItem{node: callee, chain: chain})
			}
		}
	}
}
