// Package ckptstate enforces the checkpoint completeness invariant: every
// type wired into checkpoint encode/decode must account for all of its
// fields, so that no runtime state silently survives outside the checkpoint
// (the WinGNN gap — a gradient-window history and private RNG that resume
// could not restore — is exactly this class of bug).
//
// A type is "checkpointable" when it declares both a dump-side method (one
// of DumpState, State, Dump, dumpState, dump) and a restore-side method
// (RestoreState, Restore, SetState, restoreState, restore). For each such
// struct type, every field must either be referenced in at least one of the
// two method bodies (serialized or restored through the receiver) or carry
// an explicit `//streamlint:ckpt-exempt <justification>` on its declaration
// line or the line above — typically because the field is configuration, a
// trainable parameter serialized through Params(), or state re-derived on
// resume.
package ckptstate

import (
	"go/ast"
	"go/types"

	"streamgnn/tools/streamlint/internal/analysis"
)

// Analyzer is the ckptstate check.
var Analyzer = &analysis.Analyzer{
	Name: "ckptstate",
	Doc:  "verifies every field of checkpointable types is serialized or explicitly exempted",
	Run:  run,
}

const directive = "ckpt-exempt"

var dumpNames = map[string]bool{"DumpState": true, "State": true, "Dump": true, "dumpState": true, "dump": true}
var restoreNames = map[string]bool{"RestoreState": true, "Restore": true, "SetState": true, "restoreState": true, "restore": true}

// typeMethods collects the dump/restore FuncDecls declared on one named type.
type typeMethods struct {
	dump, restore []*ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	methods := make(map[*types.TypeName]*typeMethods)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			isDump, isRestore := dumpNames[fd.Name.Name], restoreNames[fd.Name.Name]
			if !isDump && !isRestore {
				continue
			}
			tn := receiverTypeName(pass, fd)
			if tn == nil {
				continue
			}
			m := methods[tn]
			if m == nil {
				m = &typeMethods{}
				methods[tn] = m
			}
			if isDump {
				m.dump = append(m.dump, fd)
			}
			if isRestore {
				m.restore = append(m.restore, fd)
			}
		}
	}
	for tn, m := range methods {
		if len(m.dump) == 0 || len(m.restore) == 0 {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		referenced := make(map[*types.Var]bool)
		for _, fd := range append(append([]*ast.FuncDecl(nil), m.dump...), m.restore...) {
			collectFieldRefs(pass, fd, st, referenced)
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if referenced[field] {
				continue
			}
			if pass.Directive(field.Pos(), directive) {
				continue
			}
			pass.Reportf(field.Pos(), "field %s of checkpointable type %s is neither dumped nor restored by its %s/%s methods; serialize it or justify with %s%s", field.Name(), tn.Name(), m.dump[0].Name.Name, m.restore[0].Name.Name, analysis.DirectivePrefix, directive)
		}
	}
	return nil
}

// receiverTypeName resolves the named type a method is declared on.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip instantiation for generic receivers.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, _ := pass.TypesInfo.Uses[id].(*types.TypeName)
	if tn == nil {
		tn, _ = pass.TypesInfo.Defs[id].(*types.TypeName)
	}
	return tn
}

// collectFieldRefs marks every field of st selected anywhere in fd's body.
func collectFieldRefs(pass *analysis.Pass, fd *ast.FuncDecl, st *types.Struct, out map[*types.Var]bool) {
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		// Walk the whole selection path: x.a.b marks both a and b.
		t := s.Recv()
		for _, idx := range s.Index() {
			cur, ok := deref(t).Underlying().(*types.Struct)
			if !ok {
				break
			}
			f := cur.Field(idx)
			if fields[f] {
				out[f] = true
			}
			t = f.Type()
		}
		return true
	})
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
