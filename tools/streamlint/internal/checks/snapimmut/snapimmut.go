// Package snapimmut enforces snapshot immutability: a tensor.Matrix or
// dgnn.EmbStore value obtained from a Publish() call, or read out of a
// QuerySnapshot, must never be mutated — not by a mutating method (Set,
// Zero, Fill, Splice, ...), not by a store through an aliasing view
// (Row(i)[j] = v, m.Data[k] = v), not by copy() into it, and not by
// passing it to a function that mutates the corresponding parameter. The
// serving design publishes embeddings copy-on-write (DESIGN.md §13): the
// step loop clones before its next write, so a consumer-side mutation
// corrupts every concurrently served query without any lock to catch it.
//
// The check is interprocedural: a fixpoint over the whole-program call
// graph computes, for every function with source, which of its parameters
// (receiver included) it mutates — a store through the parameter or one of
// its field/index/Row aliases, a copy() into it, or handing it to another
// mutator. Interface calls union the summaries of every CHA candidate.
// Taint then flows forward through local assignments from the two source
// shapes; Clone() breaks the taint, Row()/Matrix() carry it.
//
// Limits: taint is tracked per function in source order (no back-edges), a
// callee with no loaded source has an unknown summary and is assumed
// read-only except for the well-known mutator names on tracked types, and
// values laundered through interface{} or containers escape tracking. The
// sanctioned clone-once COW path is waived with
// `//streamlint:cow-exempt <reason>` on the mutation line or the line
// above; the justification must be non-empty.
package snapimmut

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"streamgnn/tools/streamlint/internal/analysis"
	"streamgnn/tools/streamlint/internal/callgraph"
)

// Analyzer is the snapimmut check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "snapimmut",
	Doc:  "values derived from Publish() or a QuerySnapshot must not be mutated (COW snapshots)",
	Run:  run,
}

const directive = "cow-exempt"

// trackedType names the value types whose published instances are immutable.
var trackedType = map[string]bool{"Matrix": true, "EmbStore": true}

// aliasMethod results alias their receiver's storage; cloneMethod results
// are fresh copies.
var (
	aliasMethod = map[string]bool{"Row": true, "Matrix": true}
	cloneMethod = map[string]bool{"Clone": true}
)

// bodilessMut is the fallback for callees with no loaded source (vettool
// single-unit mode): the known mutating methods of the tracked types.
var bodilessMut = map[string]bool{
	"Set": true, "Zero": true, "Fill": true,
	"Splice": true, "SetFull": true, "Invalidate": true, "Restore": true,
}

const snapshotType = "QuerySnapshot"

// summary records which of a function's parameters it mutates. Slot 0 is
// the receiver when the function is a method; parameters follow.
type summary struct {
	hasRecv bool
	mut     []bool
}

func (s *summary) argSlot(i int) int {
	if s.hasRecv {
		return i + 1
	}
	return i
}

func (s *summary) equal(o *summary) bool {
	if o == nil || len(s.mut) != len(o.mut) {
		return false
	}
	for i := range s.mut {
		if s.mut[i] != o.mut[i] {
			return false
		}
	}
	return true
}

func run(pass *analysis.ProgramPass) error {
	graph := callgraph.Build(pass.Units)
	summaries := mutationSummaries(graph)

	for _, u := range pass.Units {
		for _, f := range u.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				scanFunc(pass, u, fd, graph, summaries)
			}
		}
	}
	return nil
}

// mutationSummaries runs the interprocedural fixpoint: a function's summary
// can only grow (bits flip from false to true), so iterating until no
// summary changes terminates.
func mutationSummaries(graph *callgraph.Graph) map[string]*summary {
	nodes := graph.Nodes()
	sums := make(map[string]*summary)
	for changed, rounds := true, 0; changed && rounds < 32; rounds++ {
		changed = false
		for _, n := range nodes {
			if n.Decl == nil || n.Decl.Body == nil || n.Unit == nil {
				continue
			}
			s := analyzeFunc(n, graph, sums)
			if !s.equal(sums[n.FullName]) {
				sums[n.FullName] = s
				changed = true
			}
		}
	}
	return sums
}

// paramSlots maps each parameter object (receiver first) to its slot.
func paramSlots(u *analysis.Unit, fd *ast.FuncDecl) (map[types.Object]int, *summary) {
	slots := make(map[types.Object]int)
	s := &summary{}
	add := func(name *ast.Ident) {
		if obj := u.Info.Defs[name]; obj != nil {
			slots[obj] = len(s.mut)
		}
		s.mut = append(s.mut, false)
	}
	if fd.Recv != nil {
		s.hasRecv = true
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				add(name)
			}
			if len(field.Names) == 0 {
				s.mut = append(s.mut, false) // anonymous receiver
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				add(name)
			}
			if len(field.Names) == 0 {
				s.mut = append(s.mut, false)
			}
		}
	}
	return slots, s
}

// calleesAt indexes a node's call/dispatch edges by site, so the scan can
// resolve interface calls to their CHA candidates.
func calleesAt(n *callgraph.Node) map[token.Pos][]*callgraph.Node {
	out := make(map[token.Pos][]*callgraph.Node)
	for _, e := range n.Out {
		if e.Kind == callgraph.KindRef {
			continue
		}
		out[e.Site] = append(out[e.Site], e.Callee)
	}
	return out
}

// analyzeFunc computes one function's mutation summary under the current
// fixpoint state.
func analyzeFunc(n *callgraph.Node, graph *callgraph.Graph, sums map[string]*summary) *summary {
	u, fd := n.Unit, n.Decl
	slots, s := paramSlots(u, fd)
	sites := calleesAt(n)

	// aliases maps local objects to the parameter slot they alias.
	aliases := make(map[types.Object]int)
	slotOf := func(e ast.Expr) int {
		return rootSlot(u.Info, e, slots, aliases)
	}
	mark := func(slot int) {
		if slot >= 0 && slot < len(s.mut) {
			s.mut[slot] = true
		}
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if slot := storeTarget(u.Info, lhs, slots, aliases); slot >= 0 {
					mark(slot)
				}
			}
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := u.Info.Defs[id]
					if obj == nil {
						obj = u.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if slot := slotOf(st.Rhs[i]); slot >= 0 {
						aliases[obj] = slot
					} else {
						delete(aliases, obj)
					}
				}
			}
		case *ast.IncDecStmt:
			if slot := storeTarget(u.Info, st.X, slots, aliases); slot >= 0 {
				mark(slot)
			}
		case *ast.CallExpr:
			if isCopyBuiltin(u.Info, st) && len(st.Args) > 0 {
				mark(slotOf(st.Args[0]))
				return true
			}
			callees := sites[st.Pos()]
			fn := analysis.CalleeFunc(u.Info, st)
			// Receiver mutation: x.M(...) where M mutates its receiver.
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok && fn != nil && fn.Type().(*types.Signature).Recv() != nil {
				if slot := slotOf(sel.X); slot >= 0 {
					if calleesMutate(callees, sums, 0, fn, true) {
						mark(slot)
					}
				}
			}
			// Argument mutation: f(x) where f mutates that parameter.
			for i, arg := range st.Args {
				if slot := slotOf(arg); slot >= 0 {
					if calleesMutateArg(callees, sums, i) {
						mark(slot)
					}
				}
			}
		}
		return true
	})
	return s
}

// calleesMutate reports whether any callee mutates the given slot; for
// bodiless callees (no summary) it falls back to the well-known mutator
// names when askRecv is set.
func calleesMutate(callees []*callgraph.Node, sums map[string]*summary, slot int, fn *types.Func, askRecv bool) bool {
	known := false
	for _, c := range callees {
		if sum := sums[c.FullName]; sum != nil {
			known = true
			if slot < len(sum.mut) && sum.mut[slot] {
				return true
			}
		}
	}
	if !known && askRecv && fn != nil && bodilessMut[fn.Name()] {
		return true
	}
	return false
}

func calleesMutateArg(callees []*callgraph.Node, sums map[string]*summary, arg int) bool {
	for _, c := range callees {
		if sum := sums[c.FullName]; sum != nil {
			slot := sum.argSlot(arg)
			if slot < len(sum.mut) && sum.mut[slot] {
				return true
			}
		}
	}
	return false
}

// storeTarget returns the parameter slot a store through lhs mutates, or
// -1. A plain identifier rebinds a variable rather than mutating storage,
// so only index/field/pointer stores count.
func storeTarget(info *types.Info, lhs ast.Expr, slots map[types.Object]int, aliases map[types.Object]int) int {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		return rootSlot(info, e, slots, aliases)
	}
	return -1
}

// rootSlot resolves the parameter slot an expression's storage is rooted
// in, following field/index/slice paths and the aliasing methods.
func rootSlot(info *types.Info, e ast.Expr, slots map[types.Object]int, aliases map[types.Object]int) int {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return -1
		}
		if slot, ok := slots[obj]; ok {
			return slot
		}
		if slot, ok := aliases[obj]; ok {
			return slot
		}
	case *ast.SelectorExpr:
		return rootSlot(info, e.X, slots, aliases)
	case *ast.IndexExpr:
		return rootSlot(info, e.X, slots, aliases)
	case *ast.SliceExpr:
		return rootSlot(info, e.X, slots, aliases)
	case *ast.StarExpr:
		return rootSlot(info, e.X, slots, aliases)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootSlot(info, e.X, slots, aliases)
		}
	case *ast.CallExpr:
		if fn := analysis.CalleeFunc(info, e); fn != nil && aliasMethod[fn.Name()] {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				return rootSlot(info, sel.X, slots, aliases)
			}
		}
	}
	return -1
}

func isCopyBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// ---- consumer-side taint scan ----

// taint records where a tracked value came from, for the diagnostic text.
type taint struct {
	origin string
}

// scanFunc flows taint forward through one function body and reports every
// mutation of a tainted value.
func scanFunc(pass *analysis.ProgramPass, u *analysis.Unit, fd *ast.FuncDecl, graph *callgraph.Graph, sums map[string]*summary) {
	fn, _ := u.Info.Defs[fd.Name].(*types.Func)
	var sites map[token.Pos][]*callgraph.Node
	if fn != nil {
		if n := graph.NodeOf(fn); n != nil {
			sites = calleesAt(n)
		}
	}
	tainted := make(map[types.Object]taint)

	taintEval := func(e ast.Expr) (taint, bool) {
		return taintOf(u.Info, e, tainted)
	}

	report := func(pos token.Pos, what string, tn taint) {
		if pass.Directive(pos, directive) {
			return
		}
		pass.Reportf(pos, "%s %s; published snapshot state is copy-on-write — clone before mutating or annotate //streamlint:cow-exempt <reason>", what, tn.origin)
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				switch ast.Unparen(lhs).(type) {
				case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
					if tn, ok := taintEval(lhs); ok {
						report(lhs.Pos(), "store into a value", tn)
					}
				}
			}
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := u.Info.Defs[id]
					if obj == nil {
						obj = u.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if tn, ok := taintEval(st.Rhs[i]); ok {
						tainted[obj] = tn
					} else {
						delete(tainted, obj)
					}
				}
			}
		case *ast.CallExpr:
			if isCopyBuiltin(u.Info, st) && len(st.Args) > 0 {
				if tn, ok := taintEval(st.Args[0]); ok {
					report(st.Pos(), "copy() into a value", tn)
				}
				return true
			}
			fn := analysis.CalleeFunc(u.Info, st)
			callees := sites[st.Pos()]
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok && fn != nil && fn.Type().(*types.Signature).Recv() != nil {
				if tn, ok := taintEval(sel.X); ok && !aliasMethod[fn.Name()] && !cloneMethod[fn.Name()] {
					if calleesMutate(callees, sums, 0, fn, true) {
						report(st.Pos(), fmt.Sprintf("%s mutates a value", fn.FullName()), tn)
					}
				}
			}
			for i, arg := range st.Args {
				if tn, ok := taintEval(arg); ok {
					if calleesMutateArg(callees, sums, i) {
						report(arg.Pos(), fmt.Sprintf("argument %d of %s is mutated by the callee; it is a value", i+1, calleeName(fn)), tn)
					}
				}
			}
		}
		return true
	})
}

func calleeName(fn *types.Func) string {
	if fn == nil {
		return "the called function"
	}
	return fn.FullName()
}

// taintOf decides whether an expression denotes a published/snapshot value.
func taintOf(info *types.Info, e ast.Expr, tainted map[types.Object]taint) (taint, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj != nil {
			tn, ok := tainted[obj]
			return tn, ok
		}
	case *ast.SelectorExpr:
		// Reading a tracked-type field out of a QuerySnapshot is a source.
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			if namedName(sel.Recv()) == snapshotType && trackedType[namedName(sel.Obj().Type())] {
				return taint{origin: "captured in a QuerySnapshot"}, true
			}
		}
		return taintOf(info, e.X, tainted)
	case *ast.IndexExpr:
		return taintOf(info, e.X, tainted)
	case *ast.SliceExpr:
		return taintOf(info, e.X, tainted)
	case *ast.StarExpr:
		return taintOf(info, e.X, tainted)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return taintOf(info, e.X, tainted)
		}
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(info, e)
		if fn == nil {
			return taint{}, false
		}
		if fn.Name() == "Publish" {
			return taint{origin: "derived from Publish()"}, true
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if aliasMethod[fn.Name()] {
				return taintOf(info, sel.X, tainted)
			}
		}
	}
	return taint{}, false
}

// namedName returns the name of the named type under t (behind pointers).
func namedName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
