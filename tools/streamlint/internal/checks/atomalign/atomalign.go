// Package atomalign verifies that every struct field passed to a 64-bit
// sync/atomic operation is 64-bit aligned on 32-bit platforms. The Go
// runtime guarantees such alignment only for the first word in an allocated
// struct; any other int64/uint64 field is aligned only if its offset is a
// multiple of 8 under 32-bit layout rules (where int64 has 4-byte
// alignment). A misaligned field panics at runtime on 386/arm — a class of
// bug invisible on the amd64 machines tests run on.
//
// The atomic.Int64/atomic.Uint64 wrapper types self-align since Go 1.19 and
// are always safe; this check covers the remaining raw
// atomic.AddInt64(&s.field, ...) call sites. Fields threaded through
// pointer indirections restart layout at the allocation and are checked
// against their immediate struct only. An explicit
// `//streamlint:atomic-ok <justification>` waives the check.
package atomalign

import (
	"go/ast"
	"go/types"

	"streamgnn/tools/streamlint/internal/analysis"
)

// Analyzer is the atomalign check.
var Analyzer = &analysis.Analyzer{
	Name: "atomalign",
	Doc:  "verifies 64-bit sync/atomic operations target fields that stay 8-byte aligned on 32-bit platforms",
	Run:  run,
}

const directive = "atomic-ok"

// ops64 are the sync/atomic functions operating on 64-bit words.
var ops64 = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 models the strictest supported 32-bit platform: 4-byte words,
// and (crucially) 4-byte alignment for 8-byte scalars.
var sizes32 = types.SizesFor("gc", "386")

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || analysis.PkgPathOf(fn) != "sync/atomic" || !ops64[fn.Name()] {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op.String() != "&" {
				return true // pointer came from elsewhere; out of scope
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true // locals, globals and slice elements are aligned
			}
			checkField(pass, call, sel, fn.Name())
			return true
		})
	}
	return nil
}

// checkField verifies the selected field's offset under 32-bit layout.
func checkField(pass *analysis.Pass, call *ast.CallExpr, sel *ast.SelectorExpr, op string) {
	// Collect the full selector chain x.a.b.c outermost-last, so offsets
	// accumulate from the base allocation outwards.
	var chain []*ast.SelectorExpr
	for e := sel; ; {
		s := pass.TypesInfo.Selections[e]
		if s == nil || s.Kind() != types.FieldVal {
			break
		}
		chain = append([]*ast.SelectorExpr{e}, chain...)
		inner, ok := ast.Unparen(e.X).(*ast.SelectorExpr)
		if !ok {
			break
		}
		e = inner
	}
	if len(chain) == 0 {
		return // qualified package identifier (a global): always aligned
	}
	// Accumulate the offset within the current allocation. A pointer hop
	// moves to a fresh allocation whose start the runtime 8-aligns, so the
	// running offset resets.
	offset := int64(0)
	for _, link := range chain {
		s := pass.TypesInfo.Selections[link]
		t := deref(s.Recv())
		for _, idx := range s.Index() {
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				return
			}
			offset += offsetOf(st, idx)
			f := st.Field(idx)
			t = f.Type()
			if _, ok := f.Type().(*types.Pointer); ok {
				t = deref(f.Type())
				offset = 0
			}
		}
	}
	if offset%8 == 0 {
		return
	}
	if pass.Directive(call.Pos(), directive) {
		return
	}
	pass.Reportf(call.Pos(), "atomic.%s on field %s at 32-bit offset %d (not 8-byte aligned): this faults on 386/arm; move the field first, pad to 8 bytes, use atomic.Int64, or justify with %s%s", op, sel.Sel.Name, offset, analysis.DirectivePrefix, directive)
}

// offsetOf returns field idx's byte offset within st under 32-bit layout.
func offsetOf(st *types.Struct, idx int) int64 {
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return sizes32.Offsetsof(fields)[idx]
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
