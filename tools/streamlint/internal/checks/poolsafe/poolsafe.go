// Package poolsafe enforces the tensor buffer-pool safety invariant:
// a matrix handed back to the pool with tensor.Recycle, and every tape node
// recycled by autodiff's Tape.Release, must not be touched again.
//
// The analysis is intraprocedural and flow-sensitive along straight-line
// statement sequences:
//
//   - after tensor.Recycle(m), any further use of m in the same block (or a
//     nested one) is a use-after-release, and a second Recycle(m) is a
//     double release; reassigning m kills the taint;
//   - after tp.Release() on an *autodiff.Tape, any use of a node variable
//     previously produced by that tape (a tp.Op(...) method call, or any
//     call such as Forward(tp, ...) that takes the tape and returns a
//     *autodiff.Node) is a use of recycled storage.
//
// Releases inside a conditional or loop body do not taint statements after
// the enclosing statement (the branch may not execute), which keeps the
// check free of path-insensitive false positives at the cost of missing
// some cross-branch bugs. An explicit `//streamlint:pool-ok <justification>`
// on the flagged line or the line above waives the check.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"streamgnn/tools/streamlint/internal/analysis"
)

// Analyzer is the poolsafe check.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flags use-after-release and double-release of pooled tensor buffers and released tape nodes",
	Run:  run,
}

const directive = "pool-ok"

// release records why an object is tainted.
type release struct {
	pos  token.Pos
	kind string // "recycled matrix" or "released tape node"
}

// state maps released objects to their release site. Copies are cheap: the
// maps stay tiny (a handful of released locals per function).
type state map[types.Object]release

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// checker carries the per-function analysis state.
type checker struct {
	pass *analysis.Pass
	// derived maps a tape object to the node objects produced from it.
	derived map[types.Object][]types.Object
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, derived: make(map[types.Object][]types.Object)}
			c.block(fd.Body.List, make(state))
		}
	}
	return nil
}

// block scans a statement list in order, threading the taint state through.
func (c *checker) block(stmts []ast.Stmt, st state) {
	for _, stmt := range stmts {
		c.stmt(stmt, st)
	}
}

// stmt processes one statement: reports uses of tainted objects, applies
// kills for reassignments, and adds taints for releases.
func (c *checker) stmt(stmt ast.Stmt, st state) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if c.releaseCall(s.X, st) {
			return
		}
		c.uses(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.uses(rhs, st)
		}
		c.recordDerived(s)
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				// Reassignment (or redeclaration) gives the name a fresh
				// value: kill the taint.
				if obj := c.objOf(id); obj != nil {
					delete(st, obj)
				}
				continue
			}
			c.uses(lhs, st)
		}
	case *ast.DeferStmt:
		// Deferred releases run at function exit; later statements in the
		// body may still use the value safely.
	case *ast.BlockStmt:
		c.block(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.uses(s.Cond, st)
		c.block(s.Body.List, st.clone())
		if s.Else != nil {
			c.stmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		inner := st.clone()
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.uses(s.Cond, inner)
		}
		c.block(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.uses(s.X, st)
		c.block(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.uses(s.Tag, st)
		}
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, st.clone())
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, st.clone())
		}
	default:
		if stmt != nil {
			c.usesNode(stmt, st)
		}
	}
}

// releaseCall handles `tensor.Recycle(x)` and `tp.Release()` expression
// statements, returning true when expr was one of them.
func (c *checker) releaseCall(expr ast.Expr, st state) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if isTensorRecycle(fn) && len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			obj := c.objOf(id)
			if obj == nil {
				return true
			}
			if prev, released := st[obj]; released {
				if !c.pass.Directive(call.Pos(), directive) {
					c.pass.Reportf(call.Pos(), "double release: %s was already recycled at %s; justify with %s%s if intended", id.Name, c.pass.Fset.Position(prev.pos), analysis.DirectivePrefix, directive)
				}
				return true
			}
			st[obj] = release{pos: call.Pos(), kind: "recycled matrix"}
			return true
		}
		// Recycling a non-identifier (field, call result): nothing to track.
		return true
	}
	if isTapeRelease(fn) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if tape := c.objOf(id); tape != nil {
					for _, node := range c.derived[tape] {
						if _, released := st[node]; !released {
							st[node] = release{pos: call.Pos(), kind: "released tape node"}
						}
					}
				}
			}
		}
		return true
	}
	return false
}

// recordDerived tracks `n := tp.Op(...)` and `n := f(tp, ...)` bindings of
// tape-produced nodes.
func (c *checker) recordDerived(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isNodePtr(c.pass.TypesInfo.Types[as.Rhs[0]].Type) {
		return
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	node := c.objOf(lhs)
	if node == nil {
		return
	}
	// The tape may appear as the method receiver or as any argument.
	var tapeExprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		tapeExprs = append(tapeExprs, sel.X)
	}
	tapeExprs = append(tapeExprs, call.Args...)
	for _, e := range tapeExprs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || !isTapePtr(c.pass.TypesInfo.Types[e].Type) {
			continue
		}
		if tape := c.objOf(id); tape != nil {
			c.derived[tape] = append(c.derived[tape], node)
			return
		}
	}
}

// uses reports every read of a tainted object within expr.
func (c *checker) uses(expr ast.Expr, st state) {
	if expr == nil {
		return
	}
	c.usesNode(expr, st)
}

func (c *checker) usesNode(n ast.Node, st state) {
	ast.Inspect(n, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		rel, released := st[obj]
		if !released {
			return true
		}
		if c.pass.Directive(id.Pos(), directive) {
			return true
		}
		c.pass.Reportf(id.Pos(), "use after release: %s is a %s (released at %s) and its buffer may already be reused; justify with %s%s if intended", id.Name, rel.kind, c.pass.Fset.Position(rel.pos), analysis.DirectivePrefix, directive)
		return true
	})
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

// isTensorRecycle matches streamgnn/internal/tensor.Recycle (by path suffix,
// so fixtures can provide a stub package).
func isTensorRecycle(fn *types.Func) bool {
	return fn.Name() == "Recycle" && hasPathSuffix(analysis.PkgPathOf(fn), "internal/tensor")
}

// isTapeRelease matches (*autodiff.Tape).Release.
func isTapeRelease(fn *types.Func) bool {
	if fn.Name() != "Release" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && isTapePtr(recv.Type())
}

func isTapePtr(t types.Type) bool { return isNamedPtr(t, "internal/autodiff", "Tape") }
func isNodePtr(t types.Type) bool { return isNamedPtr(t, "internal/autodiff", "Node") }

func isNamedPtr(t types.Type, pathSuffix, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && hasPathSuffix(named.Obj().Pkg().Path(), pathSuffix)
}

func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
