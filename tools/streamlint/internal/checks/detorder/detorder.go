// Package detorder enforces the repository's determinism invariant: seeded
// runs must be bit-identical, so code on seeded paths must not let Go's
// randomized map iteration order, the global (unseeded) math/rand source, or
// wall-clock reads leak into computation.
//
// Three checks, scoped to the packages where the invariant holds
// (internal/core, dgnn, graph, tensor, kde, sampling, query, shard,
// cluster):
//
//  1. A `range` over a map whose body feeds ordered computation — a
//     floating-point accumulation into one variable, an RNG draw, or an
//     append whose slice is not sorted afterwards in the same block — is
//     order-sensitive and flagged. The repository idiom "collect keys,
//     then sort.Ints" is recognized and allowed.
//  2. Calls to package-level math/rand functions draw from the process
//     global source, which is unseeded and lock-shared; seeded paths must
//     draw from an injected *rand.Rand.
//  3. time.Now has no place in a seeded computation (benchmarks live in
//     internal/bench, which is out of scope).
//
// An explicit `//streamlint:ordered-ok <justification>` on the flagged line
// or the line above waives the check.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"streamgnn/tools/streamlint/internal/analysis"
)

// Analyzer is the detorder check.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flags map-iteration order, global math/rand and time.Now leaking into seeded deterministic paths",
	Run:  run,
}

// scope lists the import paths whose determinism the engine's seeded-run
// bit-equality tests rely on. Packages outside the module (analysistest
// fixtures) are always in scope.
var scope = map[string]bool{
	"streamgnn/internal/core":     true,
	"streamgnn/internal/dgnn":     true,
	"streamgnn/internal/graph":    true,
	"streamgnn/internal/tensor":   true,
	"streamgnn/internal/kde":      true,
	"streamgnn/internal/sampling": true,
	"streamgnn/internal/query":    true,
	"streamgnn/internal/shard":    true,
	"streamgnn/internal/cluster":  true,
}

const directive = "ordered-ok"

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if (path == "streamgnn" || strings.HasPrefix(path, "streamgnn/")) && !scope[path] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n, 0)
			case *ast.RangeStmt:
				checkRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags global math/rand draws and time.Now. rangePos, when
// non-zero, is the position of an enclosing map-range statement whose
// directive also covers the call.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, rangePos token.Pos) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	suppressed := func() bool {
		return pass.Directive(call.Pos(), directive) ||
			(rangePos != token.NoPos && pass.Directive(rangePos, directive))
	}
	switch analysis.PkgPathOf(fn) {
	case "time":
		if fn.Name() == "Now" && !suppressed() {
			pass.Reportf(call.Pos(), "time.Now on a seeded deterministic path; inject a clock or justify with %s%s", analysis.DirectivePrefix, directive)
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[fn.Name()] && !suppressed() {
			pass.Reportf(call.Pos(), "global math/rand.%s draws from the unseeded process-wide source; use an injected *rand.Rand or justify with %s%s", fn.Name(), analysis.DirectivePrefix, directive)
		}
	}
}

// globalRandFuncs are the package-level math/rand functions that touch the
// process-global source (constructors like New and NewSource are fine).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint64N": true, "N": true,
}

// appendee identifies a slice being appended to: a plain identifier
// (field == nil) or a field selected off a base identifier, like st.Pending.
// Deeper chains collapse to (leftmost base, final field), which is precise
// enough to pair an append with a later sort of the same expression.
type appendee struct {
	base  types.Object
	field *types.Var
}

// checkRange flags order-sensitive bodies of map-range loops.
func checkRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// appends[a] is the first append into an outer slice seen in the body.
	appends := make(map[appendee]token.Pos)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isRandRand(recv.Type()) {
					if !suppressedAt(pass, n.Pos(), rng.Pos()) {
						pass.Reportf(n.Pos(), "RNG draw inside map iteration: the number of draws per key is fixed but their assignment to keys follows randomized map order; iterate sorted keys or justify with %s%s", analysis.DirectivePrefix, directive)
					}
				}
			}
			checkCall(pass, n, rng.Pos())
		case *ast.AssignStmt:
			checkAssign(pass, rng, n, appends)
		}
		return true
	})
	for a, pos := range appends {
		if sortedAfter(pass, file, rng, a) {
			continue
		}
		if suppressedAt(pass, pos, rng.Pos()) {
			continue
		}
		pass.Reportf(pos, "%s collects map keys in randomized iteration order and is not sorted afterwards in this block; sort it or justify with %s%s", a.name(), analysis.DirectivePrefix, directive)
	}
}

func (a appendee) name() string {
	if a.field != nil {
		return a.base.Name() + "." + a.field.Name()
	}
	return a.base.Name()
}

func suppressedAt(pass *analysis.Pass, pos, rangePos token.Pos) bool {
	return pass.Directive(pos, directive) || pass.Directive(rangePos, directive)
}

// checkAssign flags floating-point accumulation into a single outer variable
// and records appends to outer slices.
func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, appends map[appendee]token.Pos) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue // indexed accumulators are per-slot, order-insensitive
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !declaredOutside(obj, rng.Body) {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if !suppressedAt(pass, as.Pos(), rng.Pos()) {
					pass.Reportf(as.Pos(), "floating-point accumulation into %s inside map iteration is order-sensitive (float addition does not commute bitwise); iterate sorted keys or justify with %s%s", id.Name, analysis.DirectivePrefix, directive)
				}
			}
		}
	case token.ASSIGN, token.DEFINE:
		// s = append(s, ...) into a slice declared outside the loop.
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != nil && pass.TypesInfo.Uses[id].Pkg() != nil {
			return
		}
		a, ok := resolveAppendee(pass, as.Lhs[0])
		if !ok || !declaredOutside(a.base, rng.Body) {
			return
		}
		if _, seen := appends[a]; !seen {
			appends[a] = as.Pos()
		}
	}
}

// resolveAppendee maps an append target expression to its appendee: a plain
// identifier, or a selector chain whose leftmost base is an identifier.
func resolveAppendee(pass *analysis.Pass, expr ast.Expr) (appendee, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return appendee{base: obj}, true
		}
	case *ast.SelectorExpr:
		s := pass.TypesInfo.Selections[e]
		if s == nil || s.Kind() != types.FieldVal {
			return appendee{}, false
		}
		base := e.X
		for {
			inner, ok := ast.Unparen(base).(*ast.SelectorExpr)
			if !ok {
				break
			}
			base = inner.X
		}
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			return appendee{}, false
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return appendee{base: obj, field: s.Obj().(*types.Var)}, true
		}
	}
	return appendee{}, false
}

// declaredOutside reports whether obj's declaration lies outside the body.
func declaredOutside(obj types.Object, body *ast.BlockStmt) bool {
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}

// sortedAfter reports whether, in the innermost block containing the range
// statement, a later statement sorts the slice held by a.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, a appendee) bool {
	block := enclosingBlock(file, rng)
	if block == nil {
		return false
	}
	past := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rng) {
			past = true
			continue
		}
		if !past {
			continue
		}
		if stmtSorts(pass, stmt, a) {
			return true
		}
	}
	return false
}

// sortFuncs are the recognized "sort this slice" calls.
var sortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Float64s": true, "sort.Strings": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// stmtSorts reports whether stmt (at any depth) calls a sort function with
// a's slice as first argument.
func stmtSorts(pass *analysis.Pass, stmt ast.Stmt, a appendee) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if !sortFuncs[analysis.PkgPathOf(fn)+"."+fn.Name()] {
			return true
		}
		if arg, ok := resolveAppendee(pass, call.Args[0]); ok && arg == a {
			found = true
			return false
		}
		return true
	})
	return found
}

// enclosingBlock returns the innermost block statement containing n.
func enclosingBlock(file *ast.File, n ast.Stmt) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if node.Pos() > n.Pos() || node.End() < n.End() {
			return false
		}
		if b, ok := node.(*ast.BlockStmt); ok {
			for _, s := range b.List {
				if s == ast.Stmt(n) {
					best = b
					return false
				}
			}
		}
		return true
	})
	return best
}

// isRandRand reports whether t is math/rand.Rand or a pointer to it.
func isRandRand(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return (p == "math/rand" || p == "math/rand/v2") && named.Obj().Name() == "Rand"
}
