// Package atommix flags mixed atomic/plain access to shared state: once any
// code accesses a struct field or package-level variable through sync/atomic,
// every other access program-wide must be atomic too. A plain load racing an
// atomic store is the classic latent-race shape in Stats/Telemetry-style
// counters — it passes every test until the scheduler interleaves it, and
// the Go memory model makes the plain read undefined, not merely stale.
//
// Scope: named struct fields (keyed by the declaring struct, so an access
// through an embedded field matches) and package-level variables. Local
// variables are excluded on purpose — an atomic counter shared with worker
// goroutines and read plainly after WaitGroup.Wait is a correct and common
// idiom. Whole-struct copies and plain stores of a struct with atomically
// accessed fields count as plain accesses of those fields (`s := t.Stats`
// reads every counter non-atomically); taking the struct's address does
// not. Accesses in _test.go files are ignored: tests read counters after
// the goroutines they race with have joined.
//
// Fields of typed-atomic types (atomic.Int64 and friends) need no checking:
// their method set is the only access path. The escape hatch is
// `//streamlint:atommix <justification>` on the access line or the line
// above, matching the suite convention.
package atommix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"streamgnn/tools/streamlint/internal/analysis"
)

// Analyzer is the atommix check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "atommix",
	Doc:  "fields and globals accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

const directive = "atommix"

// access identifies one shared location: a struct field as
// "pkg.Struct.Field", a package-level var as "pkg.Var".
type access struct {
	key string
	pos token.Pos // the access site
}

func run(pass *analysis.ProgramPass) error {
	// Pass A: collect every location accessed through sync/atomic, keeping
	// the first site per key (unit/file/AST order — deterministic) for the
	// diagnostic text, plus the exact operand expressions so pass B does
	// not flag the atomic accesses themselves.
	atomicSite := make(map[string]token.Pos)
	operands := make(map[ast.Expr]bool)
	forEachUnit(pass, func(u *analysis.Unit, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(u.Info, call)
			if fn == nil || analysis.PkgPathOf(fn) != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			operand := ast.Unparen(addr.X)
			key := keyOf(u.Info, operand)
			if key == "" {
				return true
			}
			operands[operand] = true
			if _, seen := atomicSite[key]; !seen {
				atomicSite[key] = operand.Pos()
			}
			return true
		})
	})
	if len(atomicSite) == 0 {
		return nil
	}

	// Pass B: flag every plain access to a recorded key.
	forEachUnit(pass, func(u *analysis.Unit, f *ast.File) {
		if pass.IsTestFile(f.Pos()) {
			return
		}
		var parents []ast.Node
		selIdents := make(map[*ast.Ident]bool)
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				parents = parents[:len(parents)-1]
				return false
			}
			defer func() { parents = append(parents, n) }()
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch e := n.(type) {
			case *ast.SelectorExpr:
				// The Sel ident is accounted for by this node.
				selIdents[e.Sel] = true
			case *ast.Ident:
				// A declaration introduces a variable, it does not access
				// one; a Sel ident was handled by its selector.
				if selIdents[e] || u.Info.Defs[e] != nil {
					return true
				}
			default:
				return true
			}
			if operands[expr] {
				return true // this is the sanctioned atomic access
			}
			parent := enclosing(parents)
			if key := keyOf(u.Info, expr); key != "" {
				if site, tracked := atomicSite[key]; tracked {
					report(pass, u, expr.Pos(), "%s of %s, which is accessed atomically (first at %s); use sync/atomic everywhere or annotate //streamlint:atommix <reason>",
						accessVerb(parent, expr), key, pass.Fset.Position(site))
					return true
				}
			}
			// Whole-struct value use: copying or plainly storing a struct
			// that has atomically accessed fields touches every field
			// non-atomically.
			if skipStructUse(parent, expr) {
				return true
			}
			if sname, fields := structKeys(u.Info, expr, atomicSite); len(fields) > 0 {
				report(pass, u, expr.Pos(), "plain copy of struct %s whose field %s is accessed atomically (first at %s); copy field-by-field with atomic loads or annotate //streamlint:atommix <reason>",
					sname, fields[0], pass.Fset.Position(atomicSite[fields[0]]))
			}
			return true
		}
		ast.Inspect(f, walk)
	})
	return nil
}

func report(pass *analysis.ProgramPass, u *analysis.Unit, pos token.Pos, format string, args ...interface{}) {
	if pass.Directive(pos, directive) {
		return
	}
	pass.Reportf(pos, format, args...)
}

func forEachUnit(pass *analysis.ProgramPass, fn func(*analysis.Unit, *ast.File)) {
	for _, u := range pass.Units {
		for _, f := range u.Files {
			fn(u, f)
		}
	}
}

// enclosing returns the innermost parent node pushed by the walk.
func enclosing(parents []ast.Node) ast.Node {
	if len(parents) == 0 {
		return nil
	}
	return parents[len(parents)-1]
}

// accessVerb distinguishes reads from writes for the diagnostic text.
func accessVerb(parent ast.Node, expr ast.Expr) string {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == expr {
				return "plain write"
			}
		}
	case *ast.IncDecStmt:
		if p.X == expr {
			return "plain write"
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return "escaping address"
		}
	}
	return "plain read"
}

// skipStructUse reports whether a struct-typed expression use is harmless:
// the base of a field selection, or an address-take (a pointer to the
// struct is how the atomic accessors themselves reach it).
func skipStructUse(parent ast.Node, expr ast.Expr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == expr
	case *ast.UnaryExpr:
		return p.Op == token.AND && p.X == expr
	case *ast.KeyValueExpr:
		return p.Key == expr
	}
	return false
}

// keyOf returns the program-wide identity of the location expr denotes, or
// "" when it is not a struct field or package-level variable.
func keyOf(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			owner, field := fieldOwner(sel)
			if owner != nil {
				return fmt.Sprintf("%s.%s.%s", pkgPath(owner.Obj().Pkg()), owner.Obj().Name(), field.Name())
			}
			return ""
		}
		// Qualified identifier pkg.Var has no Selection.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return fmt.Sprintf("%s.%s", pkgPath(v.Pkg()), v.Name())
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
			return fmt.Sprintf("%s.%s", pkgPath(v.Pkg()), v.Name())
		}
	}
	return ""
}

func pkgPath(p *types.Package) string {
	if p == nil {
		return ""
	}
	return p.Path()
}

func isPackageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// fieldOwner resolves the named struct type that declares the selected
// field, following the selection's embedding path so promoted fields key on
// their true declaring struct.
func fieldOwner(sel *types.Selection) (*types.Named, *types.Var) {
	t := sel.Recv()
	index := sel.Index()
	for _, i := range index[:len(index)-1] {
		st := structUnder(t)
		if st == nil {
			return nil, nil
		}
		t = st.Field(i).Type()
	}
	named, _ := deref(t).(*types.Named)
	st := structUnder(t)
	if named == nil || st == nil {
		return nil, nil
	}
	last := index[len(index)-1]
	if last >= st.NumFields() {
		return nil, nil
	}
	return named, st.Field(last)
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func structUnder(t types.Type) *types.Struct {
	st, _ := deref(t).Underlying().(*types.Struct)
	return st
}

// structKeys returns, when expr's type is a named struct with atomically
// accessed fields, the struct's display name and those field keys (in field
// declaration order).
func structKeys(info *types.Info, expr ast.Expr, atomicSite map[string]token.Pos) (string, []string) {
	tv, ok := info.Types[expr]
	if !ok || !tv.IsValue() {
		// Type names (Stats{...}, var s Stats, receiver types) are uses of
		// the type, not copies of a value.
		return "", nil
	}
	// Only direct struct values count: copying a *pointer* to the struct
	// touches no fields.
	named, _ := tv.Type.(*types.Named)
	if named == nil {
		return "", nil
	}
	st, _ := named.Underlying().(*types.Struct)
	if st == nil {
		return "", nil
	}
	prefix := fmt.Sprintf("%s.%s", pkgPath(named.Obj().Pkg()), named.Obj().Name())
	var keys []string
	for i := 0; i < st.NumFields(); i++ {
		key := prefix + "." + st.Field(i).Name()
		if _, tracked := atomicSite[key]; tracked {
			keys = append(keys, key)
		}
	}
	return prefix, keys
}
