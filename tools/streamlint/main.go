// Command streamlint is the repository's invariant checker: a multichecker
// over seven repo-specific analyzers built on the stdlib-only analysis
// scaffolding in internal/analysis — the offline build environment cannot
// vendor golang.org/x/tools, so streamlint carries a miniature of its API
// instead. Four analyzers check one package at a time (detorder, poolsafe,
// ckptstate, atomalign); three reason over the whole program through the
// interprocedural call graph in internal/callgraph (lockfree, snapimmut,
// atommix).
//
// Two modes:
//
//	go run ./tools/streamlint [-json] ./...   # standalone, over package patterns
//	go vet -vettool=$(which streamlint)       # unit-checker protocol under cmd/go
//
// Standalone mode resolves patterns with `go list -deps -export` and
// type-checks targets against build-cache export data, so it needs no
// network and no pre-installed archives; the whole-program analyzers see
// every matched package at once. Vettool mode implements the cmd/go JSON
// config protocol (-V=full, -flags, then one *.cfg per package unit), which
// also covers _test.go files; there the whole-program analyzers see a
// single-unit program, so their cross-package edges are absent — the
// standalone run is the CI gate for those.
//
// -json additionally writes the diagnostics to stdout as a JSON array of
// {file, line, col, analyzer, message, chain} objects (sorted like the
// human output), for diffable CI artifacts.
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamgnn/tools/streamlint/internal/analysis"
	"streamgnn/tools/streamlint/internal/checks/atomalign"
	"streamgnn/tools/streamlint/internal/checks/atommix"
	"streamgnn/tools/streamlint/internal/checks/ckptstate"
	"streamgnn/tools/streamlint/internal/checks/detorder"
	"streamgnn/tools/streamlint/internal/checks/lockfree"
	"streamgnn/tools/streamlint/internal/checks/poolsafe"
	"streamgnn/tools/streamlint/internal/checks/snapimmut"
	"streamgnn/tools/streamlint/internal/load"
)

// analyzers is the per-package streamlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	detorder.Analyzer,
	poolsafe.Analyzer,
	ckptstate.Analyzer,
	atomalign.Analyzer,
}

// programAnalyzers is the whole-program suite: each Run sees every loaded
// unit at once.
var programAnalyzers = []*analysis.ProgramAnalyzer{
	lockfree.Analyzer,
	snapimmut.Analyzer,
	atommix.Analyzer,
}

func main() {
	args := os.Args[1:]
	// cmd/go probes the vettool twice before use: -V=full for the content
	// ID, -flags for the analyzer flags it may forward.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("streamlint version 1 buildID=streamlint-determinism-suite-v2\n")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && args[0] == "-help" {
		usage(os.Stdout)
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	jsonOut := false
	var patterns []string
	for _, a := range args {
		if a == "-json" {
			jsonOut = true
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns, jsonOut))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: streamlint [-json] [packages]   (or as go vet -vettool)\n\nper-package analyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nwhole-program analyzers:\n")
	for _, a := range programAnalyzers {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Doc)
	}
}

// runAll applies every per-package analyzer to one package and returns its
// diagnostics.
func runAll(fset *token.FileSet, pkg *load.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// runProgram applies every whole-program analyzer to the loaded units.
func runProgram(fset *token.FileSet, pkgs []*load.Package) ([]analysis.Diagnostic, error) {
	units := make([]*analysis.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &analysis.Unit{Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info})
	}
	var diags []analysis.Diagnostic
	for _, a := range programAnalyzers {
		pass := &analysis.ProgramPass{
			Analyzer: a,
			Fset:     fset,
			Units:    units,
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return diags, nil
}

// sortDiags orders diagnostics in the canonical file:line:col order.
func sortDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// print writes diagnostics in the canonical file:line:col form, sorted by
// position, and returns how many there were.
func print(fset *token.FileSet, diags []analysis.Diagnostic) int {
	sortDiags(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags)
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// printJSON writes the sorted diagnostics to stdout as a JSON array (always
// an array, [] when clean, so CI diffs are stable).
func printJSON(fset *token.FileSet, diags []analysis.Diagnostic) error {
	sortDiags(fset, diags)
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// standalone loads package patterns and checks them all.
func standalone(patterns []string, jsonOut bool) int {
	pkgs, fset, err := load.Packages("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := runAll(fset, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
		diags = append(diags, ds...)
	}
	ds, err := runProgram(fset, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	diags = append(diags, ds...)
	if jsonOut {
		if err := printJSON(fset, diags); err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
	}
	if print(fset, diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON configuration cmd/go hands a vettool for each
// package unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one cmd/go vet unit. The whole-program analyzers run
// over a single-unit program here: intra-package chains are still caught,
// cross-package ones need the standalone mode.
func unitCheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "streamlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file regardless of findings; streamlint
	// analyzers exchange no facts, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, Error: func(error) {}}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "streamlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkg := &load.Package{Path: cfg.ImportPath, Files: files, Types: tpkg, Info: info}
	diags, err := runAll(fset, pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	pds, err := runProgram(fset, []*load.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	diags = append(diags, pds...)
	if print(fset, diags) > 0 {
		return 2
	}
	return 0
}
