// Command streamlint is the repository's invariant checker: a multichecker
// over four repo-specific analyzers (detorder, poolsafe, ckptstate,
// atomalign) built on the stdlib-only analysis scaffolding in
// internal/analysis — the offline build environment cannot vendor
// golang.org/x/tools, so streamlint carries a miniature of its API instead.
//
// Two modes:
//
//	go run ./tools/streamlint ./...        # standalone, over package patterns
//	go vet -vettool=$(which streamlint)    # unit-checker protocol under cmd/go
//
// Standalone mode resolves patterns with `go list -deps -export` and
// type-checks targets against build-cache export data, so it needs no
// network and no pre-installed archives. Vettool mode implements the cmd/go
// JSON config protocol (-V=full, -flags, then one *.cfg per package unit),
// which also covers _test.go files.
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamgnn/tools/streamlint/internal/analysis"
	"streamgnn/tools/streamlint/internal/checks/atomalign"
	"streamgnn/tools/streamlint/internal/checks/ckptstate"
	"streamgnn/tools/streamlint/internal/checks/detorder"
	"streamgnn/tools/streamlint/internal/checks/poolsafe"
	"streamgnn/tools/streamlint/internal/load"
)

// analyzers is the streamlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	detorder.Analyzer,
	poolsafe.Analyzer,
	ckptstate.Analyzer,
	atomalign.Analyzer,
}

func main() {
	args := os.Args[1:]
	// cmd/go probes the vettool twice before use: -V=full for the content
	// ID, -flags for the analyzer flags it may forward.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("streamlint version 1 buildID=streamlint-determinism-suite-v1\n")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && args[0] == "-help" {
		usage(os.Stdout)
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: streamlint [packages]   (or as go vet -vettool)\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Doc)
	}
}

// runAll applies every analyzer to one package and returns its diagnostics.
func runAll(fset *token.FileSet, pkg *load.Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// print writes diagnostics in the canonical file:line:col form, sorted by
// position, and returns how many there were.
func print(fset *token.FileSet, diags []analysis.Diagnostic) int {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags)
}

// standalone loads package patterns and checks them all.
func standalone(patterns []string) int {
	pkgs, fset, err := load.Packages("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := runAll(fset, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
		diags = append(diags, ds...)
	}
	if print(fset, diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON configuration cmd/go hands a vettool for each
// package unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one cmd/go vet unit.
func unitCheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "streamlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file regardless of findings; streamlint
	// analyzers exchange no facts, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamlint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, Error: func(error) {}}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "streamlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkg := &load.Package{Path: cfg.ImportPath, Files: files, Types: tpkg, Info: info}
	diags, err := runAll(fset, pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamlint:", err)
		return 1
	}
	if print(fset, diags) > 0 {
		return 2
	}
	return 0
}
